(* Developer scratchpad: dump the speculator pass output for one
   built-in benchmark and run it at a few machine sizes.

     dune exec bin/debug.exe [benchmark] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "nqueen" in
  let w = Mutls.Workloads.find name in
  let m = Mutls.compile Mutls.C (w.Mutls.Workloads.small ()) in
  let seq = Mutls.run_sequential m in
  let t = Mutls.speculate m in
  print_string (Mutls.Printer.module_to_string t);
  Printf.printf "\n=== %s (small): Ts = %.0f ===\n" name seq.Mutls.Eval.scost;
  List.iter
    (fun ncpus ->
      let r = Mutls.run_tls { Mutls.Config.default with ncpus } t in
      assert (r.Mutls.Eval.toutput = seq.Mutls.Eval.soutput);
      Printf.printf "ncpus=%2d  TN=%8.0f  speedup=%5.2f\n" ncpus
        r.Mutls.Eval.tfinish
        (seq.Mutls.Eval.scost /. r.Mutls.Eval.tfinish))
    [ 1; 2; 4; 8 ]
