examples/auto_parallel.ml: List Mutls Printf
