examples/auto_parallel.mli:
