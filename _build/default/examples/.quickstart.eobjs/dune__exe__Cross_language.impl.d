examples/cross_language.ml: Mutls Mutls_workloads Printf String
