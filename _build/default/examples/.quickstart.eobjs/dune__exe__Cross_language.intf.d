examples/cross_language.mli:
