examples/custom_ir.ml: Int64 List Mutls Mutls_interp Mutls_mir Printf
