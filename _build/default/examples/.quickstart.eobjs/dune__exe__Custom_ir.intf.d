examples/custom_ir.mli:
