examples/quickstart.ml: List Mutls Printf String
