examples/quickstart.mli:
