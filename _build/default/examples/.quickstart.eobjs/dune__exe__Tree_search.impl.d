examples/tree_search.ml: List Mutls Printf
