(* Fully automatic parallelization (paper §VI future work): no
   annotations in the source at all — the Auto_annotate heuristic finds
   the profitable loop, inserts the fork/join pair, and TLS safety
   guarantees the result regardless of how good the heuristic was.

     dune exec examples/auto_parallel.exe *)

let plain_source =
  {|
int primes_in[64];

int count_primes(int lo, int hi) {
  int cnt = 0;
  for (int n = lo; n < hi; n++) {
    int is_prime = 1;
    for (int d = 2; d * d <= n; d++)
      if (n % d == 0) { is_prime = 0; break; }
    if (n >= 2 && is_prime) cnt++;
  }
  return cnt;
}

int main() {
  for (int c = 0; c < 64; c++)
    primes_in[c] = count_primes(c * 100, (c + 1) * 100);
  int total = 0;
  for (int c = 0; c < 64; c++) total += primes_in[c];
  print_int(total);
  print_newline();
  return 0;
}
|}

let () =
  print_endline "=== automatic parallelization: prime counting ===\n";
  print_endline "source has NO __builtin_MUTLS annotations.";
  let m = Mutls.compile Mutls.C plain_source in
  let seq = Mutls.run_sequential m in
  Printf.printf "sequential: %sTs = %.0f cycles\n" seq.Mutls.Eval.soutput
    seq.Mutls.Eval.scost;
  let npoints = Mutls.Auto_annotate.run m in
  Printf.printf "\nheuristic inserted %d speculation point(s) " npoints;
  print_endline "(the chunk loop in main).";
  let transformed = Mutls.speculate m in
  List.iter
    (fun ncpus ->
      let cfg = { Mutls.Config.default with ncpus } in
      let r = Mutls.run_tls cfg transformed in
      assert (r.Mutls.Eval.toutput = seq.Mutls.Eval.soutput);
      Printf.printf "%2d CPUs: speedup %5.2f\n" ncpus
        (seq.Mutls.Eval.scost /. r.Mutls.Eval.tfinish))
    [ 2; 4; 8; 16; 32 ];
  print_endline
    "\nSafety never depended on the heuristic: a badly placed fork point\n\
     would only roll back, not corrupt the program."
