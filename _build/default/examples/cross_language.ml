(* Universality: the same speculator pass and TLS runtime serve two
   different source languages (the paper's C and Fortran front-ends).
   The same molecular-dynamics kernel is compiled from MiniC and from
   MiniFortran down to one IR; both run speculatively and produce the
   same physics.

     dune exec examples/cross_language.exe *)

let run_one lang name source =
  let m = Mutls.compile lang source in
  let seq = Mutls.run_sequential m in
  let transformed = Mutls.speculate m in
  let cfg = { Mutls.Config.default with ncpus = 16 } in
  let r = Mutls.run_tls cfg transformed in
  assert (r.Mutls.Eval.toutput = seq.Mutls.Eval.soutput);
  let metrics = Mutls.Metrics.compute ~ts:seq.Mutls.Eval.scost r in
  Printf.printf "%-10s output %s" name r.Mutls.Eval.toutput;
  Printf.printf "%-10s Ts=%.0f  TN=%.0f  speedup %.2f  commits %d\n\n" ""
    metrics.Mutls.Metrics.ts metrics.Mutls.Metrics.tn
    metrics.Mutls.Metrics.speedup metrics.Mutls.Metrics.commits;
  r.Mutls.Eval.toutput

let () =
  print_endline "=== one IR, two languages: md in MiniC and MiniFortran ===\n";
  (* the same simulation, scaled identically in both languages *)
  let out_c =
    run_one Mutls.C "C" (Mutls_workloads.W_md.c ~n:96 ~steps:2 ~nchunks:32 ())
  in
  let out_f =
    run_one Mutls.Fortran "Fortran"
      (Mutls_workloads.W_md.fortran ~n:96 ~steps:2 ~nchunks:32 ())
  in
  if String.trim out_c = String.trim out_f then
    print_endline "C and Fortran runs agree on the final positions."
  else begin
    (* column-major vs row-major layouts make bit-identical agreement a
       real cross-language test *)
    Printf.printf "MISMATCH: %s vs %s\n" out_c out_f;
    exit 1
  end
