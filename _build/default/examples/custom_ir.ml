(* Arbitrary-point speculation straight at the IR level: MUTLS is
   language-neutral, so a compiler front-end (or a code generator for a
   dynamic language, the paper's future-work target) can emit MIR with
   fork/join annotations directly through the Builder API.

     dune exec examples/custom_ir.exe *)

module Ir = Mutls.Ir
module B = Mutls_mir.Builder

(* Build:   global sums[2]
   main() { fork(0); sums[0] = triangle(N);       <- parent
            join(0);  sums[1] = squares(N);       <- speculative thread
            barrier(0); return sums[0] + sums[1] } *)
let build_module n =
  let m = Ir.create_module () in
  List.iter (Ir.add_extern m) Mutls_interp.Externs.declarations;
  Ir.add_global m { Ir.gname = "sums"; gsize = 16; ginit = Ir.Zero };
  (* triangle(n) = sum 1..n, squares(n) = sum of squares, as loops *)
  let arith name square =
    let b = B.create m ~name ~params:[ ("n", Ir.I64) ] ~ret:Ir.I64 in
    let entry = B.add_block b "entry" in
    let hdr = B.add_block b "hdr" in
    let body = B.add_block b "body" in
    let exit_ = B.add_block b "exit" in
    B.position b entry;
    B.br b hdr.Ir.bname;
    B.position b hdr;
    let i = B.phi b Ir.I64 [ (entry.Ir.bname, Ir.i64 1); (body.Ir.bname, Ir.i64 0) ] in
    let acc = B.phi b Ir.I64 [ (entry.Ir.bname, Ir.i64 0); (body.Ir.bname, Ir.i64 0) ] in
    let c = B.icmp b Ir.Isle Ir.I64 i (Ir.Arg 0) in
    B.cbr b c body.Ir.bname exit_.Ir.bname;
    B.position b body;
    let term = if square then B.mul_ b i i else i in
    let acc' = B.add_ b acc term in
    let i' = B.add_ b i (Ir.i64 1) in
    (match hdr.Ir.phis with
    | [ pi; pa ] ->
      pi.Ir.incoming <-
        List.map (fun (l, v) -> if l = body.Ir.bname then (l, i') else (l, v))
          pi.Ir.incoming;
      pa.Ir.incoming <-
        List.map (fun (l, v) -> if l = body.Ir.bname then (l, acc') else (l, v))
          pa.Ir.incoming
    | _ -> assert false);
    B.br b hdr.Ir.bname;
    B.position b exit_;
    B.ret b (Some acc)
  in
  arith "triangle" false;
  arith "squares" true;
  let b = B.create m ~name:"main" ~params:[] ~ret:Ir.I64 in
  let entry = B.add_block b "entry" in
  B.position b entry;
  (* arbitrary-point annotation: not a loop, not a call boundary *)
  B.mutls_fork b ~point:0 ~model:0;
  let t = B.call b ~ret:Ir.I64 "triangle" [ Ir.i64 n ] in
  B.store b Ir.I64 t (Ir.Global "sums");
  B.mutls_join b ~point:0;
  let s = B.call b ~ret:Ir.I64 "squares" [ Ir.i64 n ] in
  let addr = B.ptradd b (Ir.Global "sums") (Ir.i64 8) in
  B.store b Ir.I64 s addr;
  B.mutls_barrier b ~point:0;
  let v1 = B.load b Ir.I64 (Ir.Global "sums") in
  let addr2 = B.ptradd b (Ir.Global "sums") (Ir.i64 8) in
  let v2 = B.load b Ir.I64 addr2 in
  B.ret b (Some (B.add_ b v1 v2));
  m

let () =
  print_endline "=== arbitrary-point speculation via the Builder API ===\n";
  let n = 4000 in
  let m = build_module n in
  Mutls.Verify.check_module m;
  let seq = Mutls.run_sequential m in
  let transformed = Mutls.speculate m in
  let cfg = { Mutls.Config.default with ncpus = 2 } in
  let r = Mutls.run_tls cfg transformed in
  let expect =
    Int64.add
      (Int64.of_int (n * (n + 1) / 2))
      (Int64.of_int (n * (n + 1) * ((2 * n) + 1) / 6))
  in
  let got =
    match r.Mutls.Eval.tret with
    | Some (Mutls_interp.Value.VI v) -> v
    | _ -> failwith "no result"
  in
  Printf.printf "triangle(%d) + squares(%d) = %Ld (expected %Ld)\n" n n got expect;
  assert (got = expect);
  Printf.printf "Ts = %.0f, TN = %.0f on 2 CPUs -> speedup %.2f\n"
    seq.Mutls.Eval.scost r.Mutls.Eval.tfinish
    (seq.Mutls.Eval.scost /. r.Mutls.Eval.tfinish);
  print_endline "\nThe two summation loops ran concurrently: the speculative\n\
                 thread executed squares() while the parent ran triangle()."
