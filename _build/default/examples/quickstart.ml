(* Quickstart: annotate a C program with MUTLS fork/join points (paper
   Fig. 1), compile it to MIR, run the speculator pass, and execute it
   under thread-level speculation.

     dune exec examples/quickstart.exe *)

let source =
  {|
int results[64];

int work_item(int i) {
  int acc = 0;
  for (int k = 1; k <= 400 + i * 13 % 97; k++)
    acc = acc + k * k % 101;
  return acc;
}

void work() {
  /* Before each chunk the parent forks a speculative thread that
     continues from the matching join point; with the mixed model the
     speculative threads fork further, pipelining the whole loop. */
  for (int c = 0; c < 64; c++) {
    __builtin_MUTLS_fork(0, mixed);
    results[c] = work_item(c);
    __builtin_MUTLS_join(0);
  }
}

int main() {
  work();
  int sum = 0;
  for (int c = 0; c < 64; c++) sum += results[c];
  print_int(sum);
  print_newline();
  return 0;
}
|}

let () =
  print_endline "=== MUTLS quickstart ===";
  (* 1. compile MiniC to the MIR intermediate representation *)
  let m = Mutls.compile Mutls.C source in
  (* 2. sequential baseline: Ts *)
  let seq = Mutls.run_sequential m in
  Printf.printf "sequential output: %s" seq.Mutls.Eval.soutput;
  Printf.printf "Ts = %.0f virtual cycles\n\n" seq.Mutls.Eval.scost;
  (* 3. the speculator pass adds speculative versions, fork/join
     surgery, speculation and synchronization tables *)
  let transformed = Mutls.speculate m in
  Printf.printf "functions after the pass: %s\n\n"
    (String.concat ", "
       (List.map (fun (f : Mutls.Ir.func) -> f.Mutls.Ir.fname)
          transformed.Mutls.Ir.funcs));
  (* 4. run under TLS on increasing machine sizes *)
  List.iter
    (fun ncpus ->
      let cfg = { Mutls.Config.default with ncpus } in
      let r = Mutls.run_tls cfg transformed in
      assert (r.Mutls.Eval.toutput = seq.Mutls.Eval.soutput);
      let metrics = Mutls.Metrics.compute ~ts:seq.Mutls.Eval.scost r in
      Printf.printf "%2d CPUs: TN = %8.0f  speedup = %5.2f  (%d commits, %d rollbacks)\n"
        ncpus r.Mutls.Eval.tfinish metrics.Mutls.Metrics.speedup
        metrics.Mutls.Metrics.commits metrics.Mutls.Metrics.rollbacks)
    [ 1; 2; 4; 8; 16; 32 ];
  print_endline "\n(outputs verified identical to the sequential run)"
