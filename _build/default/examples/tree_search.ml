(* Tree-form recursion under the three forking models — the paper's
   core claim (§II, Fig. 10): depth-first search parallelises under the
   mixed model, while in-order only extracts top-level parallelism and
   out-of-order descends a single branch.

     dune exec examples/tree_search.exe *)

let () =
  print_endline "=== forking models on depth-first search (nqueen) ===\n";
  let w = Mutls.Workloads.find "nqueen" in
  let m = Mutls.compile Mutls.C (w.Mutls.Workloads.c_source ()) in
  let seq = Mutls.run_sequential m in
  Printf.printf "solutions: %s" seq.Mutls.Eval.soutput;
  Printf.printf "Ts = %.0f cycles\n\n" seq.Mutls.Eval.scost;
  let transformed = Mutls.speculate m in
  Printf.printf "%-14s" "CPUs";
  List.iter (fun n -> Printf.printf "%8d" n) [ 2; 4; 8; 16; 32 ];
  print_newline ();
  List.iter
    (fun model ->
      Printf.printf "%-14s" (Mutls.Config.model_to_string model);
      List.iter
        (fun ncpus ->
          let cfg =
            { Mutls.Config.default with ncpus; model_override = Some model }
          in
          let r = Mutls.run_tls cfg transformed in
          assert (r.Mutls.Eval.toutput = seq.Mutls.Eval.soutput);
          Printf.printf "%8.2f" (seq.Mutls.Eval.scost /. r.Mutls.Eval.tfinish))
        [ 2; 4; 8; 16; 32 ];
      print_newline ())
    [ Mutls.Config.Mixed; Mutls.Config.In_order; Mutls.Config.Out_of_order ];
  print_endline
    "\nThe mixed model forks a *tree* of threads (each speculative thread\n\
     speculates further down the search tree); in-order forms a single\n\
     chain; out-of-order lets only the non-speculative thread fork, which\n\
     bounds it near 2 regardless of the machine size."
