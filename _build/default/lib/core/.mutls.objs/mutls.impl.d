lib/core/mutls.ml: Ablations Experiments Metrics Mutls_interp Mutls_minic Mutls_minifortran Mutls_mir Mutls_runtime Mutls_speculator Mutls_workloads Printf
