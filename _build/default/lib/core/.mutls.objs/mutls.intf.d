lib/core/mutls.mli: Ablations Experiments Metrics Mutls_interp Mutls_mir Mutls_runtime Mutls_speculator Mutls_workloads
