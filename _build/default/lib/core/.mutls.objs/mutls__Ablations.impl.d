lib/core/ablations.ml: List Metrics Mutls_interp Mutls_minic Mutls_runtime Mutls_speculator Mutls_workloads Printf
