lib/core/ablations.mli:
