lib/core/experiments.ml: Hashtbl List Metrics Mutls_interp Mutls_minic Mutls_minifortran Mutls_mir Mutls_runtime Mutls_speculator Mutls_workloads Printf String
