lib/core/experiments.mli: Metrics Mutls_runtime Mutls_workloads
