lib/core/metrics.ml: Float Format List Mutls_interp Mutls_runtime
