lib/core/metrics.mli: Format Mutls_interp
