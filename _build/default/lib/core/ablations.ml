(* Ablation studies for the design choices DESIGN.md calls out, plus
   the paper's §VI future-work features implemented in this repo:

   1. tree-form vs linear mixed-model cascading (the paper's central
      novelty over Mitosis/POSH/Safe futures);
   2. stride value prediction for fork-time locals;
   3. automatic fork heuristics vs manual annotation. *)

module Config = Mutls_runtime.Config
module Eval = Mutls_interp.Eval
module W = Mutls_workloads.Workloads

let run_with cfg m =
  let seq = Eval.run_sequential ~cost:cfg.Config.cost m in
  let t = Mutls_speculator.Pass.run m in
  let r = Eval.run_tls cfg t in
  if r.Eval.toutput <> seq.Eval.soutput then
    invalid_arg "Ablations: TLS output diverged";
  Metrics.compute ~ts:seq.Eval.scost r

(* --- 1. cascading rollback strategy ---------------------------------- *)

(* Under rollback pressure, the tree model preserves a rolled-back
   child's children (they are re-joined by the parent), while the
   linear model squashes the whole subtree.  matmult provides natural
   rollbacks; the other benchmarks get them injected. *)
let cascade ?(cpus = [ 4; 8; 16; 32 ]) () =
  List.map
    (fun (name, rollback) ->
      let w = W.find name in
      let rows =
        List.map
          (fun ncpus ->
            let base cascade =
              let cfg =
                { Config.default with
                  ncpus;
                  cascade;
                  rollback_probability = rollback }
              in
              (run_with cfg (Mutls_minic.Codegen.compile (w.W.c_source ())))
                .Metrics.speedup
            in
            (ncpus, base Config.Tree_cascade, base Config.Linear_cascade))
          cpus
      in
      (name, rollback, rows))
    [ ("matmult", 0.0); ("nqueen", 0.1); ("fft", 0.1) ]

(* --- 2. value prediction --------------------------------------------- *)

(* A loop whose accumulator is live at the join point: without
   prediction every speculation mispredicts the accumulator and rolls
   back; with stride prediction the runtime learns the +10 per
   iteration and speculation commits. *)
let accumulator_src =
  {|
int chunk[32];
int heavy(int c) {
  int s = 0;
  for (int k = 1; k < 500; k++) s = s + (c * k) % 17;
  return s;
}
int main() {
  int acc = 0;
  for (int c = 0; c < 32; c++) {
    __builtin_MUTLS_fork(0, mixed);
    chunk[c] = heavy(c);
    acc = acc + 10;
    __builtin_MUTLS_join(0);
  }
  int t = acc;
  for (int c = 0; c < 32; c++) t = t + chunk[c];
  print_int(t);
  print_newline();
  return 0;
}
|}

let value_prediction ?(cpus = [ 2; 4; 8; 16 ]) () =
  List.map
    (fun ncpus ->
      let m vp =
        run_with
          { Config.default with ncpus; value_prediction = vp }
          (Mutls_minic.Codegen.compile accumulator_src)
      in
      let off = m false and on = m true in
      ( ncpus,
        (off.Metrics.speedup, off.Metrics.rollbacks),
        (on.Metrics.speedup, on.Metrics.rollbacks) ))
    cpus

(* --- 3. automatic fork heuristics ------------------------------------ *)

(* A plain (unannotated) mandelbrot: Auto_annotate finds the outer
   pixel-row loop by itself. *)
let plain_mandelbrot =
  {|
int rows[64];
int pixel(double cr, double ci, int maxit) {
  double zr = 0.0;
  double zi = 0.0;
  int it = 0;
  while (it < maxit) {
    double zr2 = zr * zr;
    double zi2 = zi * zi;
    if (zr2 + zi2 > 4.0) return it;
    double nzr = zr2 - zi2 + cr;
    zi = 2.0 * zr * zi + ci;
    zr = nzr;
    it = it + 1;
  }
  return it;
}
int main() {
  for (int y = 0; y < 64; y++) {
    double ci = -1.25 + 2.5 * (double)y / 64.0;
    int acc = 0;
    for (int x = 0; x < 64; x++)
      acc = acc + pixel(-2.0 + 3.0 * (double)x / 64.0, ci, 150);
    rows[y] = acc;
  }
  int t = 0;
  for (int y = 0; y < 64; y++) t = t + rows[y];
  print_int(t);
  print_newline();
  return 0;
}
|}

let auto ?(cpus = [ 2; 4; 8; 16; 32 ]) () =
  let m = Mutls_minic.Codegen.compile plain_mandelbrot in
  let npoints = Mutls_speculator.Auto_annotate.run m in
  let rows =
    List.map
      (fun ncpus ->
        let metrics = run_with { Config.default with ncpus } m in
        (ncpus, metrics.Metrics.speedup))
      cpus
  in
  (npoints, rows)

(* --- rendering -------------------------------------------------------- *)

let print_cascade () =
  Printf.printf
    "\n== Ablation: tree-form vs linear mixed-model cascading ==\n";
  List.iter
    (fun (name, rollback, rows) ->
      Printf.printf "-- %s%s --\n" name
        (if rollback > 0.0 then
           Printf.sprintf " (%.0f%% injected rollbacks)" (100. *. rollback)
         else " (natural rollbacks)");
      Printf.printf "%6s %10s %10s %8s\n" "CPUs" "tree" "linear" "gain";
      List.iter
        (fun (n, tree, linear) ->
          Printf.printf "%6d %10.2f %10.2f %7.2fx\n" n tree linear
            (if linear > 0.0 then tree /. linear else nan))
        rows)
    (cascade ())

let print_value_prediction () =
  Printf.printf "\n== Ablation: stride value prediction (paper end VI) ==\n";
  Printf.printf "%6s %22s %22s\n" "CPUs" "off: speedup/rollbacks"
    "on: speedup/rollbacks";
  List.iter
    (fun (n, (s0, r0), (s1, r1)) ->
      Printf.printf "%6d %15.2f / %-4d %16.2f / %-4d\n" n s0 r0 s1 r1)
    (value_prediction ())

let print_auto () =
  Printf.printf "\n== Ablation: automatic fork heuristics (paper end VI) ==\n";
  let npoints, rows = auto () in
  Printf.printf "speculation points auto-inserted: %d\n" npoints;
  Printf.printf "%6s %10s\n" "CPUs" "speedup";
  List.iter (fun (n, s) -> Printf.printf "%6d %10.2f\n" n s) rows
