(** Ablation studies for the design choices DESIGN.md calls out, plus
    the paper's §VI future-work features implemented in this repo:
    tree-form vs linear cascading, stride value prediction, and
    automatic fork heuristics. *)

val accumulator_src : string
(** A loop whose accumulator is live at the join point: every
    speculation mispredicts without value prediction. *)

val plain_mandelbrot : string
(** An entirely unannotated program for the auto-annotation study. *)

val cascade :
  ?cpus:int list -> unit -> (string * float * (int * float * float) list) list
(** (benchmark, injected rollback probability,
    (cpus, tree speedup, linear speedup) rows). *)

val value_prediction :
  ?cpus:int list -> unit -> (int * (float * int) * (float * int)) list
(** (cpus, (speedup, rollbacks) without, (speedup, rollbacks) with). *)

val auto : ?cpus:int list -> unit -> int * (int * float) list
(** (points inserted, (cpus, speedup) rows). *)

val print_cascade : unit -> unit
val print_value_prediction : unit -> unit
val print_auto : unit -> unit
