(** Metrics from §V of the paper:

    - absolute speedup          Ts / TN
    - critical path efficiency  ncrit  = Twork_nonsp / Truntime_nonsp
    - speculative path eff.     nsp    = sum Twork_sp / sum Truntime_sp
    - power efficiency          npower = Ts / (Truntime_nonsp + sum Truntime_sp)
    - parallel coverage         C      = sum Truntime_sp / Truntime_nonsp

    plus the critical/speculative path breakdowns of Figures 8 and 9. *)

type breakdown = (string * float) list
(** Category -> fraction of the relevant runtime; fractions sum to 1. *)

type t = {
  ts : float;
  tn : float;
  speedup : float;
  crit_efficiency : float;
  spec_efficiency : float;
  power_efficiency : float;
  coverage : float;
  crit_breakdown : breakdown;
  spec_breakdown : breakdown;
  commits : int;
  rollbacks : int;
  forks : int;
  rollback_rate : float;
}

val compute : ts:float -> Mutls_interp.Eval.tls_result -> t
val pp : Format.formatter -> t -> unit
