lib/interp/eval.ml: Array Buffer Char Config Externs Hashtbl Int64 Ir List Local_buffer Memory Mutls_mir Mutls_runtime Mutls_sim Option Printf Stats Thread_data Thread_manager Value
