lib/interp/eval.mli: Mutls_mir Mutls_runtime Value
