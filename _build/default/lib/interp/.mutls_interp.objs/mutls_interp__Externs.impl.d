lib/interp/externs.ml: Float Int64 List Mutls_mir Value
