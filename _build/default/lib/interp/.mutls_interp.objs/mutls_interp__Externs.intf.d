lib/interp/externs.mli: Mutls_mir Value
