lib/interp/memory.ml: Array Bytes Char Hashtbl Int64 List Mutls_mir Mutls_runtime String
