lib/interp/memory.mli: Bytes Hashtbl Mutls_mir Mutls_runtime
