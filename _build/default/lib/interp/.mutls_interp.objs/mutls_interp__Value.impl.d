lib/interp/value.ml: Int64 Mutls_mir Mutls_runtime Printf
