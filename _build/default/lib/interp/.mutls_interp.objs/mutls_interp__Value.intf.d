lib/interp/value.mli: Mutls_mir Mutls_runtime
