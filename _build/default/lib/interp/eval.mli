(** The MIR interpreter.  Runs either the untransformed module
    (sequential baseline; MUTLS source intrinsics are no-ops) or the
    speculator-pass output under the TLS runtime on the discrete-event
    engine.  All MUTLS_* runtime-library calls are dispatched to
    {!Mutls_runtime.Thread_manager}. *)

exception Trap of string
(** Runtime error in the interpreted program (division by zero, stack
    overflow, unknown callee, executed [unreachable], ...). *)

(** {1 Sequential baseline} *)

type seq_result = {
  sret : Value.v option;  (** main's return value *)
  soutput : string;  (** everything printed *)
  scost : float;  (** Ts in virtual cycles, under the same cost model *)
}

val default_heap : int
val default_stack : int
val default_globals : int

val run_sequential :
  ?cost:Mutls_runtime.Config.cost ->
  ?heap_size:int ->
  ?globals_size:int ->
  Mutls_mir.Ir.modul ->
  seq_result

(** {1 TLS execution} *)

type tls_result = {
  tret : Value.v option;
  toutput : string;
  tfinish : float;  (** virtual time when the main thread completed *)
  tmain_stats : Mutls_runtime.Stats.t;
  tretired : Mutls_runtime.Thread_manager.retired list;
}

val run_tls :
  ?heap_size:int ->
  ?globals_size:int ->
  Mutls_runtime.Config.t ->
  Mutls_mir.Ir.modul ->
  tls_result
(** Run the speculator-pass output on [cfg.ncpus] virtual CPUs. *)
