(** External functions callable from MIR programs.  The pure math
    functions are "known, safe external calls" (paper §IV-C) and may
    run speculatively; I/O and allocation are unsafe and force
    terminate points in speculative code. *)

type outcome = Ret of Value.v | Ret_void

val safe_names : string list
val is_safe : string -> bool

val declarations : Mutls_mir.Ir.edecl list
(** The declarations every front-end injects. *)

val eval_pure : string -> Value.v list -> outcome option
(** Evaluate a pure extern; [None] for names the evaluator itself
    handles (I/O, allocation) or unknown names. *)
