(* Flat byte-addressable main memory shared by every simulated thread:
   a globals region, a bump-allocated heap and one fixed-size stack
   slot per virtual CPU (rank 0 = the non-speculative thread).  Word
   operations are little-endian; floats travel as their IEEE bits. *)

let null_guard = 0x1000 (* addresses below this always fault *)

type t = {
  data : Bytes.t;
  globals_base : int;
  globals_end : int;
  heap_base : int;
  heap_end : int;
  mutable heap_ptr : int;
  stack_base : int;
  stack_size : int;
  nstacks : int;
  symbols : (string, int) Hashtbl.t; (* global name -> address *)
  mutable allocations : (int * int) list; (* live heap blocks *)
}

exception Fault of int

let align8 n = (n + 7) land lnot 7

let create ~globals_size ~heap_size ~stack_size ~nstacks =
  let globals_base = null_guard in
  let globals_end = globals_base + align8 globals_size in
  let heap_base = globals_end in
  let heap_end = heap_base + align8 heap_size in
  let stack_base = heap_end in
  let total = stack_base + (nstacks * stack_size) in
  {
    data = Bytes.make total '\000';
    globals_base;
    globals_end;
    heap_base;
    heap_end;
    heap_ptr = heap_base;
    stack_base;
    stack_size;
    nstacks;
    symbols = Hashtbl.create 32;
    allocations = [];
  }

let check t addr size =
  if addr < null_guard || addr + size > Bytes.length t.data then raise (Fault addr)

let read_i64 t addr =
  check t addr 8;
  Bytes.get_int64_le t.data addr

let write_i64 t addr v =
  check t addr 8;
  Bytes.set_int64_le t.data addr v

let read_i32 t addr =
  check t addr 4;
  Int64.of_int32 (Bytes.get_int32_le t.data addr)

let write_i32 t addr v =
  check t addr 4;
  Bytes.set_int32_le t.data addr (Int64.to_int32 v)

let read_i8 t addr =
  check t addr 1;
  Int64.of_int (Char.code (Bytes.get t.data addr))

let write_i8 t addr v =
  check t addr 1;
  Bytes.set t.data addr (Char.chr (Int64.to_int v land 0xff))

let read_f64 t addr = Int64.float_of_bits (read_i64 t addr)
let write_f64 t addr x = write_i64 t addr (Int64.bits_of_float x)

let read_byte t addr =
  check t addr 1;
  Char.code (Bytes.get t.data addr)

let write_byte t addr v =
  check t addr 1;
  Bytes.set t.data addr (Char.chr (v land 0xff))

(* Runtime-facing view for validation, commit and stack copies. *)
let memio t =
  {
    Mutls_runtime.Memio.read_word = read_i64 t;
    write_word = write_i64 t;
    read_byte = read_byte t;
    write_byte = write_byte t;
  }

(* --- globals --------------------------------------------------------- *)

(* Lay out the module's globals; returns the registered size. *)
let install_globals t (m : Mutls_mir.Ir.modul) =
  let cursor = ref t.globals_base in
  List.iter
    (fun (g : Mutls_mir.Ir.gdef) ->
      let addr = !cursor in
      if addr + g.gsize > t.globals_end then
        invalid_arg ("Memory: globals region too small at @" ^ g.gname);
      Hashtbl.replace t.symbols g.gname addr;
      (match g.ginit with
      | Mutls_mir.Ir.Zero -> ()
      | Mutls_mir.Ir.Bytes_init s ->
        String.iteri (fun i c -> Bytes.set t.data (addr + i) c) s
      | Mutls_mir.Ir.Words_init ws ->
        Array.iteri (fun i w -> write_i64 t (addr + (8 * i)) w) ws
      | Mutls_mir.Ir.Floats_init fs ->
        Array.iteri (fun i x -> write_f64 t (addr + (8 * i)) x) fs);
      cursor := addr + align8 g.gsize)
    m.globals;
  !cursor - t.globals_base

let symbol t name =
  match Hashtbl.find_opt t.symbols name with
  | Some a -> a
  | None -> invalid_arg ("Memory.symbol: unknown global " ^ name)

(* --- heap ------------------------------------------------------------ *)

let malloc t size =
  let size = align8 (max 8 size) in
  let addr = t.heap_ptr in
  if addr + size > t.heap_end then raise (Fault addr);
  t.heap_ptr <- addr + size;
  t.allocations <- (addr, size) :: t.allocations;
  addr

let free t addr =
  (* bump allocator: space is not recycled, but the block is dropped
     from the live list (and callers unregister its address range) *)
  match List.assoc_opt addr t.allocations with
  | Some size ->
    t.allocations <- List.filter (fun (a, _) -> a <> addr) t.allocations;
    Some size
  | None -> None

(* --- stacks ---------------------------------------------------------- *)

let stack_slot t rank =
  if rank < 0 || rank >= t.nstacks then invalid_arg "Memory.stack_slot";
  let base = t.stack_base + (rank * t.stack_size) in
  (base, base + t.stack_size)
