(** Flat byte-addressable main memory shared by every simulated thread:
    a globals region, a bump-allocated heap, and one fixed-size stack
    slot per virtual CPU (rank 0 = the non-speculative thread).  Word
    operations are little-endian; floats travel as their IEEE bits. *)

val null_guard : int
(** Addresses below this always fault. *)

exception Fault of int

type t = {
  data : Bytes.t;
  globals_base : int;
  globals_end : int;
  heap_base : int;
  heap_end : int;
  mutable heap_ptr : int;
  stack_base : int;
  stack_size : int;
  nstacks : int;
  symbols : (string, int) Hashtbl.t;
  mutable allocations : (int * int) list;
}

val align8 : int -> int

val create :
  globals_size:int -> heap_size:int -> stack_size:int -> nstacks:int -> t

(** {1 Typed access} *)

val read_i64 : t -> int -> int64
val write_i64 : t -> int -> int64 -> unit
val read_i32 : t -> int -> int64
val write_i32 : t -> int -> int64 -> unit
val read_i8 : t -> int -> int64
val write_i8 : t -> int -> int64 -> unit
val read_f64 : t -> int -> float
val write_f64 : t -> int -> float -> unit
val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit

val memio : t -> Mutls_runtime.Memio.t
(** The runtime-facing view used for validation, commit and stack
    copies. *)

(** {1 Globals, heap, stacks} *)

val install_globals : t -> Mutls_mir.Ir.modul -> int
(** Lay out and initialize the module's globals; returns the number of
    bytes used (for address-space registration). *)

val symbol : t -> string -> int

val malloc : t -> int -> int
(** Bump allocation, 8-aligned.  @raise Fault when the heap is full. *)

val free : t -> int -> int option
(** Drops the block from the live list and returns its size (the bump
    allocator does not recycle space). *)

val stack_slot : t -> int -> int * int
(** [(base, limit)] of a rank's stack. *)
