(* Interpreter values.  Pointers are integer addresses; i1/i8/i32
   values are kept zero-extended in the int64 payload and truncated on
   store. *)

type v = VI of int64 | VF of float

let to_i64 = function
  | VI n -> n
  | VF _ -> invalid_arg "Value.to_i64: float"

let to_f64 = function
  | VF x -> x
  | VI _ -> invalid_arg "Value.to_f64: int"

let to_addr v = Int64.to_int (to_i64 v)
let to_bool v = to_i64 v <> 0L
let of_bool b = VI (if b then 1L else 0L)
let of_int n = VI (Int64.of_int n)

(* Truncate an int64 payload to the bit width of [ty], keeping the
   stored representation canonical (zero-extended). *)
let truncate_to ty n =
  match ty with
  | Mutls_mir.Ir.I1 -> Int64.logand n 1L
  | Mutls_mir.Ir.I8 -> Int64.logand n 0xFFL
  | Mutls_mir.Ir.I32 -> Int64.logand n 0xFFFFFFFFL
  | _ -> n

(* Sign-extend the low bits of [n] according to [ty]. *)
let sext_of ty n =
  match ty with
  | Mutls_mir.Ir.I1 -> if Int64.logand n 1L = 1L then -1L else 0L
  | Mutls_mir.Ir.I8 -> Int64.shift_right (Int64.shift_left n 56) 56
  | Mutls_mir.Ir.I32 -> Int64.shift_right (Int64.shift_left n 32) 32
  | _ -> n

let of_const (c : Mutls_mir.Ir.const) =
  match c with
  | Mutls_mir.Ir.Cint (n, t) -> VI (truncate_to t n)
  | Mutls_mir.Ir.Cfloat x -> VF x
  | Mutls_mir.Ir.Cnull -> VI 0L

(* Runtime <-> interpreter value conversion (same shape, different
   libraries to avoid a dependency cycle). *)
let to_runtime = function
  | VI n -> Mutls_runtime.Local_buffer.Vi n
  | VF x -> Mutls_runtime.Local_buffer.Vf x

let of_runtime = function
  | Mutls_runtime.Local_buffer.Vi n -> VI n
  | Mutls_runtime.Local_buffer.Vf x -> VF x

let to_string = function
  | VI n -> Int64.to_string n
  | VF x -> Printf.sprintf "%g" x
