(** Interpreter values.  Pointers are integer addresses; i1/i8/i32
    values are kept zero-extended in the int64 payload and truncated on
    store. *)

type v = VI of int64 | VF of float

val to_i64 : v -> int64
val to_f64 : v -> float
val to_addr : v -> int
val to_bool : v -> bool
val of_bool : bool -> v
val of_int : int -> v

val truncate_to : Mutls_mir.Ir.ty -> int64 -> int64
(** Truncate a payload to the bit width of the type, keeping the stored
    representation canonical (zero-extended). *)

val sext_of : Mutls_mir.Ir.ty -> int64 -> int64
(** Sign-extend the low bits according to the type. *)

val of_const : Mutls_mir.Ir.const -> v
val to_runtime : v -> Mutls_runtime.Local_buffer.v
val of_runtime : Mutls_runtime.Local_buffer.v -> v
val to_string : v -> string
