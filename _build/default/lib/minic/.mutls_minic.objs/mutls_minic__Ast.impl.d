lib/minic/ast.ml: Printf
