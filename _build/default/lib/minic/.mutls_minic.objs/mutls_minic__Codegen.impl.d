lib/minic/codegen.ml: Array Ast Char Hashtbl Int64 List Mutls_interp Mutls_mir Parser Printf
