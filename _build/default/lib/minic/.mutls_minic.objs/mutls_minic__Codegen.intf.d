lib/minic/codegen.mli: Ast Mutls_mir
