lib/minic/lexer.ml: Int64 List Printf String Token
