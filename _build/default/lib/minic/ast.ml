(* Abstract syntax of MiniC. *)

type cty =
  | Tint (* 64-bit *)
  | Tint32
  | Tchar
  | Tdouble
  | Tvoid
  | Tptr of cty
  | Tarray of cty * int

let rec cty_to_string = function
  | Tint -> "int"
  | Tint32 -> "int32"
  | Tchar -> "char"
  | Tdouble -> "double"
  | Tvoid -> "void"
  | Tptr t -> cty_to_string t ^ "*"
  | Tarray (t, n) -> Printf.sprintf "%s[%d]" (cty_to_string t) n

type unop = Neg | Not | Bnot
type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Gt | Le | Ge | Eq | Ne
  | Band | Bor | Bxor | Shl | Shr
  | Land | Lor

type expr = { desc : expr_desc; eline : int }

and expr_desc =
  | Int_lit of int64
  | Float_lit of float
  | Char_lit of char
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of expr * expr (* lvalue, value *)
  | Op_assign of binop * expr * expr
  | Incr of bool * expr (* prefix?, lvalue; ++ *)
  | Decr of bool * expr
  | Call of string * expr list
  | Index of expr * expr (* base, index *)
  | Deref of expr
  | Addr_of of expr
  | Cast of cty * expr
  | Ternary of expr * expr * expr

type stmt = { sdesc : stmt_desc; sline : int }

and stmt_desc =
  | Expr of expr
  | Decl of cty * string * expr option
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | Return of expr option
  | Break
  | Continue
  | Block of stmt list
  | Fork of int * int (* point id, model *)
  | Join of int
  | Barrier of int

type global = {
  g_ty : cty;
  g_name : string;
  g_init : init option;
}

and init = Init_scalar of expr | Init_list of expr list

type fundef = {
  f_ret : cty;
  f_name : string;
  f_params : (cty * string) list;
  f_body : stmt list;
}

type decl = Global of global | Function of fundef

type program = decl list
