(* MiniC -> MIR code generation.  Clang -O0 style: every local lives in
   an alloca and is promoted to SSA registers by a final mem2reg pass,
   exactly the pipeline the paper's LLVM front-ends produce. *)

open Ast
module I = Mutls_mir.Ir

exception Error of string

let fail line fmt =
  Printf.ksprintf (fun s -> raise (Error (Printf.sprintf "line %d: %s" line s))) fmt

let rec sizeof = function
  | Tint -> 8
  | Tint32 -> 4
  | Tchar -> 1
  | Tdouble -> 8
  | Tvoid -> 0
  | Tptr _ -> 8
  | Tarray (t, n) -> n * sizeof t

let rec ir_ty = function
  | Tint -> I.I64
  | Tint32 -> I.I32
  | Tchar -> I.I8
  | Tdouble -> I.F64
  | Tvoid -> I.Void
  | Tptr _ -> I.Ptr
  | Tarray (t, _) ->
    ignore (ir_ty t);
    I.Ptr

(* Expression values are normalised: integers to I64, floats to F64,
   pointers to Ptr (with their pointee type for arithmetic). *)
type vty = Vint | Vfloat | Vptr of cty

type fsig = { fs_ret : cty; fs_params : cty list }

type env = {
  m : I.modul;
  globals : (string, cty) Hashtbl.t;
  funcs : (string, fsig) Hashtbl.t;
  mutable locals : (string * (I.reg * cty)) list;
  f : I.func;
  entry : I.block;
  mutable cur : I.block;
  mutable label_counter : int;
  mutable loop_stack : (string * string) list; (* break, continue targets *)
}

let fresh_label env stem =
  let n = env.label_counter in
  env.label_counter <- n + 1;
  Printf.sprintf "%s.%d" stem n

let add_block env stem =
  let b =
    { I.bname = fresh_label env stem; phis = []; insts = []; term = I.Unreachable }
  in
  env.f.I.blocks <- env.f.I.blocks @ [ b ];
  b

let emit env ity kind =
  let id = if ity = I.Void then -1 else I.fresh_reg env.f ity in
  env.cur.I.insts <- env.cur.I.insts @ [ { I.id; ity; kind } ];
  if ity = I.Void then I.i64 0 else I.Reg id

let set_term env t = env.cur.I.term <- t

let alloca_in_entry env size =
  let id = I.fresh_reg env.f I.Ptr in
  env.entry.I.insts <-
    env.entry.I.insts @ [ { I.id; ity = I.Ptr; kind = I.Alloca size } ];
  id

(* --- conversions ------------------------------------------------------ *)

let normalise env (v : I.value) (t : cty) =
  match t with
  | Tint | Tdouble | Tvoid | Tptr _ | Tarray _ -> v
  | Tint32 -> emit env I.I64 (I.Cast (I.Sext, I.I32, I.I64, v))
  | Tchar -> emit env I.I64 (I.Cast (I.Sext, I.I8, I.I64, v))

let vty_of (t : cty) =
  match t with
  | Tint | Tint32 | Tchar -> Vint
  | Tdouble -> Vfloat
  | Tptr p -> Vptr p
  | Tarray (e, _) -> Vptr e
  | Tvoid -> Vint

let to_float env v = function
  | Vfloat -> v
  | Vint -> emit env I.F64 (I.Cast (I.Sitofp, I.I64, I.F64, v))
  | Vptr _ -> invalid_arg "pointer to float"

let as_i64 env v = function
  | Vint -> v
  | Vfloat -> emit env I.I64 (I.Cast (I.Fptosi, I.F64, I.I64, v))
  | Vptr _ -> emit env I.I64 (I.Cast (I.Ptrtoint, I.Ptr, I.I64, v))

let to_int env v vt = as_i64 env v vt

(* Denormalise to the memory representation of [t] for a store or an
   argument of declared type [t]. *)
let denormalise env (v : I.value) vt (t : cty) =
  match t with
  | Tint -> to_int env v vt
  | Tint32 -> emit env I.I32 (I.Cast (I.Trunc, I.I64, I.I32, to_int env v vt))
  | Tchar -> emit env I.I8 (I.Cast (I.Trunc, I.I64, I.I8, to_int env v vt))
  | Tdouble -> to_float env v vt
  | Tptr _ | Tarray _ -> (
    match vt with
    | Vptr _ -> v
    | Vint -> emit env I.Ptr (I.Cast (I.Inttoptr, I.I64, I.Ptr, v))
    | Vfloat -> invalid_arg "float to pointer")
  | Tvoid -> v

(* --- lvalues / rvalues ------------------------------------------------- *)

let find_local env name = List.assoc_opt name env.locals

let rec lvalue env (e : expr) : I.value * cty =
  match e.desc with
  | Var name -> (
    match find_local env name with
    | Some (a, t) -> (I.Reg a, t)
    | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some t -> (I.Global name, t)
      | None -> fail e.eline "unknown variable %s" name))
  | Index (base, idx) -> index_address env base idx
  | Deref p -> (
    let v, vt = rvalue env p in
    match vt with
    | Vptr pointee -> (v, pointee)
    | Vint -> (emit env I.Ptr (I.Cast (I.Inttoptr, I.I64, I.Ptr, v)), Tint)
    | Vfloat -> fail e.eline "cannot dereference a float")
  | _ -> fail e.eline "expression is not an lvalue"

and index_address env (base : expr) (idx : expr) : I.value * cty =
  let bv, elem =
    match base.desc with
    | Var _ | Index (_, _) | Deref _ -> (
      let addr, t = lvalue env base in
      match t with
      | Tarray (elem, _) -> (addr, elem)
      | Tptr elem ->
        let p = emit env I.Ptr (I.Load (I.Ptr, addr)) in
        (p, elem)
      | _ -> fail base.eline "indexing a non-array value")
    | _ -> (
      let v, vt = rvalue env base in
      match vt with
      | Vptr elem -> (v, elem)
      | _ -> fail base.eline "indexing a non-pointer value")
  in
  let iv, it = rvalue env idx in
  let i = to_int env iv it in
  let off = emit env I.I64 (I.Binop (I.Mul, I.I64, i, I.i64 (sizeof elem))) in
  (emit env I.Ptr (I.Ptradd (bv, off)), elem)

and load_lvalue env addr (t : cty) : I.value * vty =
  match t with
  | Tarray (e, _) -> (addr, Vptr e) (* arrays decay to their address *)
  | Tvoid -> (addr, Vint)
  | _ ->
    let raw = emit env (ir_ty t) (I.Load (ir_ty t, addr)) in
    (normalise env raw t, vty_of t)

and condition env (v, vt) =
  match vt with
  | Vfloat -> emit env I.I1 (I.Fcmp (I.Fne, v, I.f64 0.0))
  | Vint | Vptr _ -> emit env I.I1 (I.Icmp (I.Ine, I.I64, as_i64 env v vt, I.i64 0))

and rvalue env (e : expr) : I.value * vty =
  match e.desc with
  | Int_lit n -> (I.i64' n, Vint)
  | Float_lit x -> (I.f64 x, Vfloat)
  | Char_lit c -> (I.i64 (Char.code c), Vint)
  | Var _ | Index (_, _) | Deref _ ->
    let addr, t = lvalue env e in
    load_lvalue env addr t
  | Addr_of inner ->
    let addr, t = lvalue env inner in
    (addr, Vptr t)
  | Unop (op, a) -> (
    let v, vt = rvalue env a in
    match (op, vt) with
    | Neg, Vfloat -> (emit env I.F64 (I.Binop (I.Fsub, I.F64, I.f64 0.0, v)), Vfloat)
    | Neg, _ ->
      (emit env I.I64 (I.Binop (I.Sub, I.I64, I.i64 0, as_i64 env v vt)), Vint)
    | Not, _ ->
      let c = condition env (v, vt) in
      let z = emit env I.I1 (I.Binop (I.Xor, I.I1, c, I.i1 true)) in
      (emit env I.I64 (I.Cast (I.Zext, I.I1, I.I64, z)), Vint)
    | Bnot, _ ->
      (emit env I.I64 (I.Binop (I.Xor, I.I64, as_i64 env v vt, I.i64' (-1L))), Vint))
  | Binop ((Land | Lor) as op, a, b) -> short_circuit env op a b
  | Binop (op, a, b) ->
    apply_binop env e.eline op (rvalue env a) (rvalue env b)
  | Assign (lhs, rhs) ->
    let addr, t = lvalue env lhs in
    let v, vt = rvalue env rhs in
    let stored = denormalise env v vt t in
    ignore (emit env I.Void (I.Store (ir_ty t, stored, addr)));
    (v, vt)
  | Op_assign (op, lhs, rhs) ->
    let addr, t = lvalue env lhs in
    let cur = load_lvalue env addr t in
    let v, vt = apply_binop env e.eline op cur (rvalue env rhs) in
    let stored = denormalise env v vt t in
    ignore (emit env I.Void (I.Store (ir_ty t, stored, addr)));
    (v, vt)
  | Incr (prefix, lhs) -> incr_decr env prefix lhs 1
  | Decr (prefix, lhs) -> incr_decr env prefix lhs (-1)
  | Cast (t, inner) -> (
    let v, vt = rvalue env inner in
    match t with
    | Tdouble -> (to_float env v vt, Vfloat)
    | Tint -> (as_i64 env v vt, Vint)
    | Tint32 ->
      let tr = emit env I.I32 (I.Cast (I.Trunc, I.I64, I.I32, as_i64 env v vt)) in
      (emit env I.I64 (I.Cast (I.Sext, I.I32, I.I64, tr)), Vint)
    | Tchar ->
      let tr = emit env I.I8 (I.Cast (I.Trunc, I.I64, I.I8, as_i64 env v vt)) in
      (emit env I.I64 (I.Cast (I.Sext, I.I8, I.I64, tr)), Vint)
    | Tptr p -> (
      match vt with
      | Vptr _ -> (v, Vptr p)
      | Vint -> (emit env I.Ptr (I.Cast (I.Inttoptr, I.I64, I.Ptr, v)), Vptr p)
      | Vfloat -> fail e.eline "cannot cast float to pointer")
    | Tarray (_, _) | Tvoid -> fail e.eline "invalid cast")
  | Ternary (c, a, b) ->
    let res = alloca_in_entry env 8 in
    let cv = condition env (rvalue env c) in
    let thn = add_block env "tern.t" in
    let els = add_block env "tern.f" in
    let fin = add_block env "tern.end" in
    set_term env (I.Cbr (cv, thn.I.bname, els.I.bname));
    env.cur <- thn;
    let av, avt = rvalue env a in
    let is_float = avt = Vfloat in
    let sty = if is_float then I.F64 else I.I64 in
    let av = if is_float then to_float env av avt else as_i64 env av avt in
    ignore (emit env I.Void (I.Store (sty, av, I.Reg res)));
    set_term env (I.Br fin.I.bname);
    env.cur <- els;
    let bv, bvt = rvalue env b in
    let bv = if is_float then to_float env bv bvt else as_i64 env bv bvt in
    ignore (emit env I.Void (I.Store (sty, bv, I.Reg res)));
    set_term env (I.Br fin.I.bname);
    env.cur <- fin;
    (emit env sty (I.Load (sty, I.Reg res)), if is_float then Vfloat else Vint)
  | Call (name, args) -> call env e.eline name args

and incr_decr env prefix lhs delta =
  let addr, t = lvalue env lhs in
  let cur, curvt = load_lvalue env addr t in
  let next, nvt =
    match t with
    | Tdouble ->
      (emit env I.F64 (I.Binop (I.Fadd, I.F64, cur, I.f64 (float_of_int delta))),
       Vfloat)
    | Tptr p -> (emit env I.Ptr (I.Ptradd (cur, I.i64 (delta * sizeof p))), curvt)
    | _ -> (emit env I.I64 (I.Binop (I.Add, I.I64, cur, I.i64 delta)), Vint)
  in
  let stored = denormalise env next nvt t in
  ignore (emit env I.Void (I.Store (ir_ty t, stored, addr)));
  if prefix then (next, nvt) else (cur, curvt)

and short_circuit env op a b =
  let res = alloca_in_entry env 1 in
  let av = condition env (rvalue env a) in
  let more = add_block env "sc.more" in
  let fin = add_block env "sc.end" in
  ignore (emit env I.Void (I.Store (I.I1, av, I.Reg res)));
  (match op with
  | Land -> set_term env (I.Cbr (av, more.I.bname, fin.I.bname))
  | Lor -> set_term env (I.Cbr (av, fin.I.bname, more.I.bname))
  | _ -> assert false);
  env.cur <- more;
  let bv = condition env (rvalue env b) in
  ignore (emit env I.Void (I.Store (I.I1, bv, I.Reg res)));
  set_term env (I.Br fin.I.bname);
  env.cur <- fin;
  let c = emit env I.I1 (I.Load (I.I1, I.Reg res)) in
  (emit env I.I64 (I.Cast (I.Zext, I.I1, I.I64, c)), Vint)

and apply_binop env line op (av, avt) (bv, bvt) : I.value * vty =
  let is_cmp = match op with Lt | Gt | Le | Ge | Eq | Ne -> true | _ -> false in
  match (op, avt, bvt) with
  | Add, Vptr p, (Vint | Vfloat) ->
    let off = emit env I.I64 (I.Binop (I.Mul, I.I64, to_int env bv bvt, I.i64 (sizeof p))) in
    (emit env I.Ptr (I.Ptradd (av, off)), Vptr p)
  | Add, (Vint | Vfloat), Vptr p ->
    let off = emit env I.I64 (I.Binop (I.Mul, I.I64, to_int env av avt, I.i64 (sizeof p))) in
    (emit env I.Ptr (I.Ptradd (bv, off)), Vptr p)
  | Sub, Vptr p, (Vint | Vfloat) ->
    let neg = emit env I.I64 (I.Binop (I.Sub, I.I64, I.i64 0, to_int env bv bvt)) in
    let off = emit env I.I64 (I.Binop (I.Mul, I.I64, neg, I.i64 (sizeof p))) in
    (emit env I.Ptr (I.Ptradd (av, off)), Vptr p)
  | _ ->
    let bit_op = match op with Band | Bor | Bxor | Shl | Shr -> true | _ -> false in
    let float_op = (avt = Vfloat || bvt = Vfloat) && not bit_op in
    if float_op then
      let a = to_float env av avt and b = to_float env bv bvt in
      if is_cmp then begin
        let fop =
          match op with
          | Lt -> I.Flt | Gt -> I.Fgt | Le -> I.Fle | Ge -> I.Fge
          | Eq -> I.Feq | Ne -> I.Fne
          | _ -> assert false
        in
        let c = emit env I.I1 (I.Fcmp (fop, a, b)) in
        (emit env I.I64 (I.Cast (I.Zext, I.I1, I.I64, c)), Vint)
      end
      else begin
        let fop =
          match op with
          | Add -> I.Fadd | Sub -> I.Fsub | Mul -> I.Fmul | Div -> I.Fdiv
          | Mod -> fail line "%% on floats (use fmod)"
          | _ -> fail line "invalid float operation"
        in
        (emit env I.F64 (I.Binop (fop, I.F64, a, b)), Vfloat)
      end
    else
      let a = as_i64 env av avt and b = as_i64 env bv bvt in
      if is_cmp then begin
        let iop =
          match op with
          | Lt -> I.Islt | Gt -> I.Isgt | Le -> I.Isle | Ge -> I.Isge
          | Eq -> I.Ieq | Ne -> I.Ine
          | _ -> assert false
        in
        let c = emit env I.I1 (I.Icmp (iop, I.I64, a, b)) in
        (emit env I.I64 (I.Cast (I.Zext, I.I1, I.I64, c)), Vint)
      end
      else begin
        let iop =
          match op with
          | Add -> I.Add | Sub -> I.Sub | Mul -> I.Mul | Div -> I.Sdiv
          | Mod -> I.Srem | Band -> I.And | Bor -> I.Or | Bxor -> I.Xor
          | Shl -> I.Shl | Shr -> I.Ashr
          | _ -> fail line "invalid integer operation"
        in
        (emit env I.I64 (I.Binop (iop, I.I64, a, b)), Vint)
      end

and call env line name args : I.value * vty =
  match Hashtbl.find_opt env.funcs name with
  | Some fs ->
    if List.length args <> List.length fs.fs_params then
      fail line "call to %s with %d args, expected %d" name (List.length args)
        (List.length fs.fs_params);
    let vs =
      List.map2
        (fun a pt ->
          let v, vt = rvalue env a in
          denormalise env v vt pt)
        args fs.fs_params
    in
    let r = emit env (ir_ty fs.fs_ret) (I.Call (name, vs)) in
    if fs.fs_ret = Tvoid then (I.i64 0, Vint)
    else (normalise env r fs.fs_ret, vty_of fs.fs_ret)
  | None -> (
    match List.find_opt (fun (e : I.edecl) -> e.I.ename = name) env.m.I.externs with
    | Some decl ->
      let vs =
        List.mapi
          (fun k a ->
            let v, vt = rvalue env a in
            let want = try List.nth decl.I.eparams k with _ -> I.I64 in
            match want with
            | I.F64 -> to_float env v vt
            | I.Ptr -> denormalise env v vt (Tptr Tvoid)
            | _ -> as_i64 env v vt)
          args
      in
      let r = emit env decl.I.eret (I.Call (name, vs)) in
      (match decl.I.eret with
      | I.Void -> (I.i64 0, Vint)
      | I.F64 -> (r, Vfloat)
      | I.Ptr -> (r, Vptr Tvoid)
      | _ -> (r, Vint))
    | None -> fail line "call to unknown function %s" name)

(* --- statements --------------------------------------------------------- *)

let rec gen_stmt env (s : stmt) =
  match s.sdesc with
  | Expr e -> ignore (rvalue env e)
  | Decl (t, name, init) ->
    let size = max 1 (sizeof t) in
    let a = alloca_in_entry env size in
    env.locals <- (name, (a, t)) :: env.locals;
    (match init with
    | Some e ->
      let v, vt = rvalue env e in
      let stored = denormalise env v vt t in
      ignore (emit env I.Void (I.Store (ir_ty t, stored, I.Reg a)))
    | None -> ())
  | If (c, thn, els) ->
    let cv = condition env (rvalue env c) in
    let bt = add_block env "if.t" in
    let bf = add_block env "if.f" in
    let fin = add_block env "if.end" in
    set_term env (I.Cbr (cv, bt.I.bname, (if els = [] then fin else bf).I.bname));
    env.cur <- bt;
    gen_stmts env thn;
    set_term env (I.Br fin.I.bname);
    if els <> [] then begin
      env.cur <- bf;
      gen_stmts env els;
      set_term env (I.Br fin.I.bname)
    end
    else bf.I.term <- I.Br fin.I.bname (* unreachable placeholder *);
    env.cur <- fin
  | While (c, body) ->
    let hdr = add_block env "while.hdr" in
    let bdy = add_block env "while.body" in
    let fin = add_block env "while.end" in
    set_term env (I.Br hdr.I.bname);
    env.cur <- hdr;
    let cv = condition env (rvalue env c) in
    set_term env (I.Cbr (cv, bdy.I.bname, fin.I.bname));
    env.cur <- bdy;
    env.loop_stack <- (fin.I.bname, hdr.I.bname) :: env.loop_stack;
    gen_stmts env body;
    env.loop_stack <- List.tl env.loop_stack;
    set_term env (I.Br hdr.I.bname);
    env.cur <- fin
  | For (init, cond, step, body) ->
    let saved_locals = env.locals in
    (match init with Some s0 -> gen_stmt env s0 | None -> ());
    let hdr = add_block env "for.hdr" in
    let bdy = add_block env "for.body" in
    let stp = add_block env "for.step" in
    let fin = add_block env "for.end" in
    set_term env (I.Br hdr.I.bname);
    env.cur <- hdr;
    (match cond with
    | Some c ->
      let cv = condition env (rvalue env c) in
      set_term env (I.Cbr (cv, bdy.I.bname, fin.I.bname))
    | None -> set_term env (I.Br bdy.I.bname));
    env.cur <- bdy;
    env.loop_stack <- (fin.I.bname, stp.I.bname) :: env.loop_stack;
    gen_stmts env body;
    env.loop_stack <- List.tl env.loop_stack;
    set_term env (I.Br stp.I.bname);
    env.cur <- stp;
    (match step with Some s1 -> gen_stmt env s1 | None -> ());
    set_term env (I.Br hdr.I.bname);
    env.cur <- fin;
    env.locals <- saved_locals
  | Return v ->
    (match v with
    | Some e ->
      let ret_t =
        match Hashtbl.find_opt env.funcs env.f.I.fname with
        | Some fs -> fs.fs_ret
        | None -> Tint
      in
      let value, vt = rvalue env e in
      let rv = denormalise env value vt ret_t in
      set_term env (I.Ret (Some rv))
    | None -> set_term env (I.Ret None));
    env.cur <- add_block env "dead"
  | Break -> (
    match env.loop_stack with
    | (brk, _) :: _ ->
      set_term env (I.Br brk);
      env.cur <- add_block env "dead"
    | [] -> fail s.sline "break outside a loop")
  | Continue -> (
    match env.loop_stack with
    | (_, cont) :: _ ->
      set_term env (I.Br cont);
      env.cur <- add_block env "dead"
    | [] -> fail s.sline "continue outside a loop")
  | Block body ->
    let saved = env.locals in
    gen_stmts env body;
    env.locals <- saved
  | Fork (p, model) ->
    ignore
      (emit env I.Void (I.Call (I.fork_intrinsic, [ I.i64 p; I.i64 model ])))
  | Join p -> ignore (emit env I.Void (I.Call (I.join_intrinsic, [ I.i64 p ])))
  | Barrier p ->
    ignore (emit env I.Void (I.Call (I.barrier_intrinsic, [ I.i64 p ])))

and gen_stmts env stmts = List.iter (gen_stmt env) stmts

(* --- reachability pruning ---------------------------------------------- *)

(* Drop unreachable blocks ("dead" continuations after return/break);
   mem2reg's renaming only visits the dominator tree from the entry, so
   unreachable loads would keep demoted allocas alive incorrectly. *)
let prune_unreachable (f : I.func) =
  let reachable = Hashtbl.create 32 in
  let rec visit name =
    if not (Hashtbl.mem reachable name) then begin
      Hashtbl.replace reachable name ();
      let b = I.find_block_exn f name in
      List.iter visit (I.term_succs b.I.term)
    end
  in
  (match f.I.blocks with b :: _ -> visit b.I.bname | [] -> ());
  f.I.blocks <- List.filter (fun b -> Hashtbl.mem reachable b.I.bname) f.I.blocks

(* --- top level ----------------------------------------------------------- *)

let const_value (e : expr) =
  match e.desc with
  | Int_lit n -> `Int n
  | Float_lit x -> `Float x
  | Unop (Neg, { desc = Int_lit n; _ }) -> `Int (Int64.neg n)
  | Unop (Neg, { desc = Float_lit x; _ }) -> `Float (-.x)
  | Char_lit c -> `Int (Int64.of_int (Char.code c))
  | _ -> fail e.eline "global initialisers must be constants"

let global_init (g : global) =
  match g.g_init with
  | None -> I.Zero
  | Some (Init_scalar e) -> (
    match (g.g_ty, const_value e) with
    | Tdouble, `Float x -> I.Floats_init [| x |]
    | Tdouble, `Int n -> I.Floats_init [| Int64.to_float n |]
    | _, `Int n -> I.Words_init [| n |]
    | _, `Float _ -> fail e.eline "float initialiser for integer global")
  | Some (Init_list es) -> (
    let elem = match g.g_ty with Tarray (t, _) -> t | t -> t in
    match elem with
    | Tdouble ->
      I.Floats_init
        (Array.of_list
           (List.map
              (fun e ->
                match const_value e with
                | `Float x -> x
                | `Int n -> Int64.to_float n)
              es))
    | _ ->
      I.Words_init
        (Array.of_list
           (List.map
              (fun e ->
                match const_value e with
                | `Int n -> n
                | `Float _ -> fail e.eline "float in integer initialiser")
              es)))

(* Compile a MiniC source string into a verified MIR module. *)
let compile src : I.modul =
  let prog = Parser.parse_program src in
  let m = I.create_module () in
  List.iter (I.add_extern m) Mutls_interp.Externs.declarations;
  let globals = Hashtbl.create 16 in
  let funcs = Hashtbl.create 16 in
  (* first pass: collect signatures and globals *)
  List.iter
    (function
      | Global g ->
        Hashtbl.replace globals g.g_name g.g_ty;
        I.add_global m
          { I.gname = g.g_name; gsize = max 1 (sizeof g.g_ty); ginit = global_init g }
      | Function fd ->
        Hashtbl.replace funcs fd.f_name
          { fs_ret = fd.f_ret; fs_params = List.map fst fd.f_params })
    prog;
  (* second pass: function bodies *)
  List.iter
    (function
      | Global _ -> ()
      | Function fd ->
        let f =
          { I.fname = fd.f_name;
            params = List.map (fun (t, n) -> (n, ir_ty t)) fd.f_params;
            ret = ir_ty fd.f_ret;
            blocks = [];
            next_reg = 0;
            reg_tys = Hashtbl.create 32 }
        in
        m.I.funcs <- m.I.funcs @ [ f ];
        let entry = { I.bname = "entry"; phis = []; insts = []; term = I.Unreachable } in
        let body0 = { I.bname = "body"; phis = []; insts = []; term = I.Unreachable } in
        f.I.blocks <- [ entry; body0 ];
        entry.I.term <- I.Br "body";
        let env =
          { m; globals; funcs; locals = []; f; entry; cur = body0;
            label_counter = 0; loop_stack = [] }
        in
        (* parameters are copied into allocas so they are addressable *)
        List.iteri
          (fun i (t, n) ->
            let a = alloca_in_entry env (max 1 (sizeof t)) in
            env.locals <- (n, (a, t)) :: env.locals;
            ignore (emit env I.Void (I.Store (ir_ty t, I.Arg i, I.Reg a))))
          fd.f_params;
        gen_stmts env fd.f_body;
        (* implicit return *)
        (match env.cur.I.term with
        | I.Unreachable ->
          if fd.f_ret = Tvoid then env.cur.I.term <- I.Ret None
          else if fd.f_name = "main" then env.cur.I.term <- I.Ret (Some (I.i64 0))
          else env.cur.I.term <- I.Ret (Some (I.Const (I.Cint (0L, ir_ty fd.f_ret))))
        | _ -> ());
        prune_unreachable f)
    prog;
  Mutls_mir.Mem2reg.run_module m;
  (match Mutls_mir.Verify.check_module m with
  | () -> ()
  | exception Mutls_mir.Verify.Invalid msg ->
    raise (Error ("internal: generated IR does not verify: " ^ msg)));
  m
