(** MiniC -> MIR code generation.  Clang -O0 style: every local
    variable lives in an alloca and is promoted to SSA registers by a
    final mem2reg pass — the same pipeline the paper's LLVM front-ends
    produce before the speculator pass runs.

    The language is the C subset the paper's benchmarks need: [int]
    (64-bit), [int32], [char], [double], multi-dimensional arrays,
    pointers, [malloc]/[free], functions with forward references,
    full expression/statement syntax, and the three MUTLS builtins
    ([__builtin_MUTLS_fork(p, model)], [__builtin_MUTLS_join(p)],
    [__builtin_MUTLS_barrier(p)]).  No structs or varargs; I/O through
    [print_int]/[print_float]/[print_char]/[print_newline]. *)

exception Error of string

val sizeof : Ast.cty -> int
val ir_ty : Ast.cty -> Mutls_mir.Ir.ty

val compile : string -> Mutls_mir.Ir.modul
(** Parse, type-check, generate and verify a whole program.
    @raise Error with a line-numbered message on bad input. *)
