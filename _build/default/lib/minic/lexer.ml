(* Hand-written lexer for MiniC.  Tracks line numbers for error
   messages; supports // and /* */ comments. *)

exception Error of string

let fail line fmt =
  Printf.ksprintf (fun s -> raise (Error (Printf.sprintf "line %d: %s" line s))) fmt

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
}

let keywords =
  [ ("int", Token.KW_INT); ("int32", Token.KW_INT32); ("char", Token.KW_CHAR);
    ("double", Token.KW_DOUBLE); ("float", Token.KW_DOUBLE);
    ("void", Token.KW_VOID); ("if", Token.KW_IF); ("else", Token.KW_ELSE);
    ("while", Token.KW_WHILE); ("for", Token.KW_FOR);
    ("return", Token.KW_RETURN); ("break", Token.KW_BREAK);
    ("continue", Token.KW_CONTINUE); ("long", Token.KW_INT) ]

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_digit c || is_alpha c

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None
let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with Some '\n' -> st.line <- st.line + 1 | _ -> ());
  st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_ws st
  | Some '/' when peek2 st = Some '/' ->
    while peek st <> None && peek st <> Some '\n' do advance st done;
    skip_ws st
  | Some '/' when peek2 st = Some '*' ->
    advance st;
    advance st;
    let rec go () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | None, _ -> fail st.line "unterminated comment"
      | _ ->
        advance st;
        go ()
    in
    go ();
    skip_ws st
  | _ -> ()

let lex_number st =
  let start = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do advance st done;
  let is_float =
    match (peek st, peek2 st) with
    | Some '.', Some c when is_digit c -> true
    | Some '.', _ -> true
    | Some ('e' | 'E'), _ -> true
    | _ -> false
  in
  if is_float then begin
    if peek st = Some '.' then begin
      advance st;
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done
    end;
    (match peek st with
    | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done
    | _ -> ());
    Token.FLOAT_LIT (float_of_string (String.sub st.src start (st.pos - start)))
  end
  else Token.INT_LIT (Int64.of_string (String.sub st.src start (st.pos - start)))

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_alnum c | None -> false) do advance st done;
  let s = String.sub st.src start (st.pos - start) in
  match List.assoc_opt s keywords with
  | Some kw -> kw
  | None -> Token.IDENT s

let lex_char st =
  advance st;
  (* opening quote *)
  let c =
    match peek st with
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some 'n' -> '\n'
      | Some 't' -> '\t'
      | Some '0' -> '\000'
      | Some '\\' -> '\\'
      | Some '\'' -> '\''
      | _ -> fail st.line "bad escape")
    | Some c -> c
    | None -> fail st.line "unterminated char literal"
  in
  advance st;
  if peek st <> Some '\'' then fail st.line "unterminated char literal";
  advance st;
  Token.CHAR_LIT c

let next_token st =
  skip_ws st;
  let line = st.line in
  let tok =
    match peek st with
    | None -> Token.EOF
    | Some c when is_digit c -> lex_number st
    | Some c when is_alpha c -> lex_ident st
    | Some '\'' -> lex_char st
    | Some c ->
      let two rest tok1 tok2 =
        if peek2 st = Some rest then begin
          advance st;
          advance st;
          tok2
        end
        else begin
          advance st;
          tok1
        end
      in
      (match c with
      | '(' -> advance st; Token.LPAREN
      | ')' -> advance st; Token.RPAREN
      | '{' -> advance st; Token.LBRACE
      | '}' -> advance st; Token.RBRACE
      | '[' -> advance st; Token.LBRACKET
      | ']' -> advance st; Token.RBRACKET
      | ';' -> advance st; Token.SEMI
      | ',' -> advance st; Token.COMMA
      | '~' -> advance st; Token.TILDE
      | '^' -> advance st; Token.CARET
      | '?' -> advance st; Token.QUESTION
      | ':' -> advance st; Token.COLON
      | '+' ->
        if peek2 st = Some '+' then (advance st; advance st; Token.PLUSPLUS)
        else two '=' Token.PLUS Token.PLUS_ASSIGN
      | '-' ->
        if peek2 st = Some '-' then (advance st; advance st; Token.MINUSMINUS)
        else two '=' Token.MINUS Token.MINUS_ASSIGN
      | '*' -> two '=' Token.STAR Token.STAR_ASSIGN
      | '/' -> two '=' Token.SLASH Token.SLASH_ASSIGN
      | '%' -> advance st; Token.PERCENT
      | '&' -> two '&' Token.AMP Token.ANDAND
      | '|' -> two '|' Token.PIPE Token.OROR
      | '!' -> two '=' Token.BANG Token.NE
      | '=' -> two '=' Token.ASSIGN Token.EQ
      | '<' ->
        if peek2 st = Some '<' then (advance st; advance st; Token.SHL)
        else two '=' Token.LT Token.LE
      | '>' ->
        if peek2 st = Some '>' then (advance st; advance st; Token.SHR)
        else two '=' Token.GT Token.GE
      | c -> fail line "unexpected character %c" c)
  in
  (tok, line)

(* Tokenize the whole source. *)
let tokenize src =
  let st = { src; pos = 0; line = 1 } in
  let rec go acc =
    let tok, line = next_token st in
    if tok = Token.EOF then List.rev ((tok, line) :: acc)
    else go ((tok, line) :: acc)
  in
  go []
