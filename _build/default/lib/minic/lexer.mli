(** Hand-written MiniC lexer with line tracking and [//], [/* */]
    comments. *)

exception Error of string

val tokenize : string -> (Token.t * int) list
(** Token with its source line; ends with [EOF].
    @raise Error on malformed input. *)
