(* Recursive-descent parser for MiniC with precedence climbing. *)

open Ast

exception Error of string

let fail line fmt =
  Printf.ksprintf (fun s -> raise (Error (Printf.sprintf "line %d: %s" line s))) fmt

type state = {
  toks : (Token.t * int) array;
  mutable pos : int;
}

let peek st = fst st.toks.(st.pos)
let line st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let expect st tok =
  if peek st = tok then advance st
  else
    fail (line st) "expected %s, found %s" (Token.to_string tok)
      (Token.to_string (peek st))

let expect_ident st =
  match peek st with
  | Token.IDENT s ->
    advance st;
    s
  | t -> fail (line st) "expected identifier, found %s" (Token.to_string t)

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

(* --- types ----------------------------------------------------------- *)

let base_type st =
  match peek st with
  | Token.KW_INT -> advance st; Some Tint
  | Token.KW_INT32 -> advance st; Some Tint32
  | Token.KW_CHAR -> advance st; Some Tchar
  | Token.KW_DOUBLE -> advance st; Some Tdouble
  | Token.KW_VOID -> advance st; Some Tvoid
  | _ -> None

let with_stars st t =
  let t = ref t in
  while accept st Token.STAR do
    t := Tptr !t
  done;
  !t

let is_type_start st =
  match peek st with
  | Token.KW_INT | Token.KW_INT32 | Token.KW_CHAR | Token.KW_DOUBLE
  | Token.KW_VOID ->
    true
  | _ -> false

(* --- expressions ------------------------------------------------------ *)

let model_of_name ln = function
  | "mixed" -> 0
  | "inorder" | "in_order" -> 1
  | "outoforder" | "out_of_order" -> 2
  | s -> fail ln "unknown forking model %s" s

let rec parse_expr st = parse_assign st

and parse_assign st =
  let lhs = parse_ternary st in
  let ln = line st in
  match peek st with
  | Token.ASSIGN ->
    advance st;
    let rhs = parse_assign st in
    { desc = Assign (lhs, rhs); eline = ln }
  | Token.PLUS_ASSIGN ->
    advance st;
    let rhs = parse_assign st in
    { desc = Op_assign (Add, lhs, rhs); eline = ln }
  | Token.MINUS_ASSIGN ->
    advance st;
    let rhs = parse_assign st in
    { desc = Op_assign (Sub, lhs, rhs); eline = ln }
  | Token.STAR_ASSIGN ->
    advance st;
    let rhs = parse_assign st in
    { desc = Op_assign (Mul, lhs, rhs); eline = ln }
  | Token.SLASH_ASSIGN ->
    advance st;
    let rhs = parse_assign st in
    { desc = Op_assign (Div, lhs, rhs); eline = ln }
  | _ -> lhs

and parse_ternary st =
  let c = parse_binary st 0 in
  if peek st = Token.QUESTION then begin
    let ln = line st in
    advance st;
    let a = parse_assign st in
    expect st Token.COLON;
    let b = parse_assign st in
    { desc = Ternary (c, a, b); eline = ln }
  end
  else c

(* precedence climbing; higher binds tighter *)
and binop_of_token = function
  | Token.OROR -> Some (Lor, 1)
  | Token.ANDAND -> Some (Land, 2)
  | Token.PIPE -> Some (Bor, 3)
  | Token.CARET -> Some (Bxor, 4)
  | Token.AMP -> Some (Band, 5)
  | Token.EQ -> Some (Eq, 6)
  | Token.NE -> Some (Ne, 6)
  | Token.LT -> Some (Lt, 7)
  | Token.GT -> Some (Gt, 7)
  | Token.LE -> Some (Le, 7)
  | Token.GE -> Some (Ge, 7)
  | Token.SHL -> Some (Shl, 8)
  | Token.SHR -> Some (Shr, 8)
  | Token.PLUS -> Some (Add, 9)
  | Token.MINUS -> Some (Sub, 9)
  | Token.STAR -> Some (Mul, 10)
  | Token.SLASH -> Some (Div, 10)
  | Token.PERCENT -> Some (Mod, 10)
  | _ -> None

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match binop_of_token (peek st) with
    | Some (op, prec) when prec >= min_prec ->
      let ln = line st in
      advance st;
      let rhs = parse_binary st (prec + 1) in
      lhs := { desc = Binop (op, !lhs, rhs); eline = ln }
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  let ln = line st in
  match peek st with
  | Token.MINUS ->
    advance st;
    { desc = Unop (Neg, parse_unary st); eline = ln }
  | Token.BANG ->
    advance st;
    { desc = Unop (Not, parse_unary st); eline = ln }
  | Token.TILDE ->
    advance st;
    { desc = Unop (Bnot, parse_unary st); eline = ln }
  | Token.STAR ->
    advance st;
    { desc = Deref (parse_unary st); eline = ln }
  | Token.AMP ->
    advance st;
    { desc = Addr_of (parse_unary st); eline = ln }
  | Token.PLUSPLUS ->
    advance st;
    { desc = Incr (true, parse_unary st); eline = ln }
  | Token.MINUSMINUS ->
    advance st;
    { desc = Decr (true, parse_unary st); eline = ln }
  | Token.LPAREN when is_type_start { st with pos = st.pos + 1 } ->
    (* cast *)
    advance st;
    let t =
      match base_type st with Some t -> with_stars st t | None -> assert false
    in
    expect st Token.RPAREN;
    { desc = Cast (t, parse_unary st); eline = ln }
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    let ln = line st in
    match peek st with
    | Token.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st Token.RBRACKET;
      e := { desc = Index (!e, idx); eline = ln }
    | Token.PLUSPLUS ->
      advance st;
      e := { desc = Incr (false, !e); eline = ln }
    | Token.MINUSMINUS ->
      advance st;
      e := { desc = Decr (false, !e); eline = ln }
    | _ -> continue := false
  done;
  !e

and parse_primary st =
  let ln = line st in
  match peek st with
  | Token.INT_LIT n ->
    advance st;
    { desc = Int_lit n; eline = ln }
  | Token.FLOAT_LIT x ->
    advance st;
    { desc = Float_lit x; eline = ln }
  | Token.CHAR_LIT c ->
    advance st;
    { desc = Char_lit c; eline = ln }
  | Token.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Token.RPAREN;
    e
  | Token.IDENT name ->
    advance st;
    if peek st = Token.LPAREN then begin
      advance st;
      let args = ref [] in
      if peek st <> Token.RPAREN then begin
        args := [ parse_expr st ];
        while accept st Token.COMMA do
          args := parse_expr st :: !args
        done
      end;
      expect st Token.RPAREN;
      { desc = Call (name, List.rev !args); eline = ln }
    end
    else { desc = Var name; eline = ln }
  | t -> fail ln "unexpected token %s in expression" (Token.to_string t)

(* --- statements ------------------------------------------------------- *)

let const_int_expr (e : expr) =
  match e.desc with
  | Int_lit n -> Int64.to_int n
  | _ -> fail e.eline "expected an integer constant"

let rec parse_stmt st : stmt =
  let ln = line st in
  match peek st with
  | Token.LBRACE ->
    advance st;
    let body = parse_block st in
    { sdesc = Block body; sline = ln }
  | Token.KW_IF ->
    advance st;
    expect st Token.LPAREN;
    let c = parse_expr st in
    expect st Token.RPAREN;
    let thn = parse_stmt_as_block st in
    let els = if accept st Token.KW_ELSE then parse_stmt_as_block st else [] in
    { sdesc = If (c, thn, els); sline = ln }
  | Token.KW_WHILE ->
    advance st;
    expect st Token.LPAREN;
    let c = parse_expr st in
    expect st Token.RPAREN;
    let body = parse_stmt_as_block st in
    { sdesc = While (c, body); sline = ln }
  | Token.KW_FOR ->
    advance st;
    expect st Token.LPAREN;
    let init =
      if peek st = Token.SEMI then None else Some (parse_simple_stmt st)
    in
    expect st Token.SEMI;
    let cond = if peek st = Token.SEMI then None else Some (parse_expr st) in
    expect st Token.SEMI;
    let step =
      if peek st = Token.RPAREN then None
      else
        Some { sdesc = Expr (parse_expr st); sline = line st }
    in
    expect st Token.RPAREN;
    let body = parse_stmt_as_block st in
    { sdesc = For (init, cond, step, body); sline = ln }
  | Token.KW_RETURN ->
    advance st;
    let v = if peek st = Token.SEMI then None else Some (parse_expr st) in
    expect st Token.SEMI;
    { sdesc = Return v; sline = ln }
  | Token.KW_BREAK ->
    advance st;
    expect st Token.SEMI;
    { sdesc = Break; sline = ln }
  | Token.KW_CONTINUE ->
    advance st;
    expect st Token.SEMI;
    { sdesc = Continue; sline = ln }
  | _ ->
    let s = parse_simple_stmt st in
    expect st Token.SEMI;
    s

and parse_stmt_as_block st =
  match parse_stmt st with
  | { sdesc = Block b; _ } -> b
  | s -> [ s ]

(* declaration or expression, without the trailing semicolon *)
and parse_simple_stmt st : stmt =
  let ln = line st in
  if is_type_start st then begin
    let t = match base_type st with Some t -> with_stars st t | None -> assert false in
    let name = expect_ident st in
    (* array dimensions *)
    let dims = ref [] in
    while accept st Token.LBRACKET do
      let n = const_int_expr (parse_expr st) in
      expect st Token.RBRACKET;
      dims := n :: !dims
    done;
    let t = List.fold_left (fun acc n -> Tarray (acc, n)) t !dims in
    let init = if accept st Token.ASSIGN then Some (parse_expr st) else None in
    { sdesc = Decl (t, name, init); sline = ln }
  end
  else
    let e = parse_expr st in
    match e.desc with
    | Call ("__builtin_MUTLS_fork", [ p; m ]) ->
      let model =
        match m.desc with
        | Var name -> model_of_name m.eline name
        | _ -> const_int_expr m
      in
      { sdesc = Fork (const_int_expr p, model); sline = ln }
    | Call ("__builtin_MUTLS_join", [ p ]) ->
      { sdesc = Join (const_int_expr p); sline = ln }
    | Call ("__builtin_MUTLS_barrier", [ p ]) ->
      { sdesc = Barrier (const_int_expr p); sline = ln }
    | _ -> { sdesc = Expr e; sline = ln }

and parse_block st : stmt list =
  let stmts = ref [] in
  while peek st <> Token.RBRACE do
    stmts := parse_stmt st :: !stmts
  done;
  expect st Token.RBRACE;
  List.rev !stmts

(* --- top level ---------------------------------------------------------- *)

let parse_decl st : decl =
  let ln = line st in
  let t =
    match base_type st with
    | Some t -> with_stars st t
    | None -> fail ln "expected a declaration"
  in
  let name = expect_ident st in
  if peek st = Token.LPAREN then begin
    advance st;
    let params = ref [] in
    if peek st <> Token.RPAREN then begin
      let parse_param () =
        let pt =
          match base_type st with
          | Some t -> with_stars st t
          | None -> fail (line st) "expected a parameter type"
        in
        let pn = expect_ident st in
        (* array parameters decay to pointers *)
        let pt = ref pt in
        while accept st Token.LBRACKET do
          (match peek st with
          | Token.INT_LIT _ -> advance st
          | _ -> ());
          expect st Token.RBRACKET;
          pt := Tptr !pt
        done;
        (!pt, pn)
      in
      params := [ parse_param () ];
      while accept st Token.COMMA do
        params := parse_param () :: !params
      done
    end;
    expect st Token.RPAREN;
    expect st Token.LBRACE;
    let body = parse_block st in
    Function { f_ret = t; f_name = name; f_params = List.rev !params; f_body = body }
  end
  else begin
    let dims = ref [] in
    while accept st Token.LBRACKET do
      let n = const_int_expr (parse_expr st) in
      expect st Token.RBRACKET;
      dims := n :: !dims
    done;
    let t = List.fold_left (fun acc n -> Tarray (acc, n)) t !dims in
    let init =
      if accept st Token.ASSIGN then begin
        if accept st Token.LBRACE then begin
          let items = ref [ parse_expr st ] in
          while accept st Token.COMMA do
            items := parse_expr st :: !items
          done;
          expect st Token.RBRACE;
          Some (Init_list (List.rev !items))
        end
        else Some (Init_scalar (parse_expr st))
      end
      else None
    in
    expect st Token.SEMI;
    Global { g_ty = t; g_name = name; g_init = init }
  end

let parse_program src : program =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0 } in
  let decls = ref [] in
  while peek st <> Token.EOF do
    decls := parse_decl st :: !decls
  done;
  List.rev !decls
