(** Recursive-descent MiniC parser with precedence climbing. *)

exception Error of string

val parse_program : string -> Ast.program
(** @raise Error (or {!Lexer.Error}) with a line-numbered message. *)
