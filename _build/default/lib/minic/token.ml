(* Tokens of the MiniC language: the C subset the MUTLS benchmarks are
   written in (paper Table II). *)

type t =
  | INT_LIT of int64
  | FLOAT_LIT of float
  | CHAR_LIT of char
  | IDENT of string
  (* keywords *)
  | KW_INT
  | KW_INT32
  | KW_CHAR
  | KW_DOUBLE
  | KW_VOID
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  (* operators *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | SHL
  | SHR
  | LT
  | GT
  | LE
  | GE
  | EQ
  | NE
  | ANDAND
  | OROR
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | SLASH_ASSIGN
  | PLUSPLUS
  | MINUSMINUS
  | QUESTION
  | COLON
  | EOF

let to_string = function
  | INT_LIT n -> Printf.sprintf "int(%Ld)" n
  | FLOAT_LIT x -> Printf.sprintf "float(%g)" x
  | CHAR_LIT c -> Printf.sprintf "char(%c)" c
  | IDENT s -> Printf.sprintf "ident(%s)" s
  | KW_INT -> "int"
  | KW_INT32 -> "int32"
  | KW_CHAR -> "char"
  | KW_DOUBLE -> "double"
  | KW_VOID -> "void"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_FOR -> "for"
  | KW_RETURN -> "return"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | TILDE -> "~"
  | BANG -> "!"
  | SHL -> "<<"
  | SHR -> ">>"
  | LT -> "<"
  | GT -> ">"
  | LE -> "<="
  | GE -> ">="
  | EQ -> "=="
  | NE -> "!="
  | ANDAND -> "&&"
  | OROR -> "||"
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+="
  | MINUS_ASSIGN -> "-="
  | STAR_ASSIGN -> "*="
  | SLASH_ASSIGN -> "/="
  | PLUSPLUS -> "++"
  | MINUSMINUS -> "--"
  | QUESTION -> "?"
  | COLON -> ":"
  | EOF -> "<eof>"
