lib/minifortran/fast.ml:
