lib/minifortran/fcodegen.ml: Fast Fparser Hashtbl List Mutls_interp Mutls_mir Option Printf String
