lib/minifortran/fcodegen.mli: Mutls_mir
