lib/minifortran/fparser.ml: Array Fast Int64 List Option Printf String
