lib/minifortran/fparser.mli: Fast
