(* Abstract syntax of MiniFortran: a free-form Fortran-77-ish subset
   sufficient for the paper's Fortran benchmarks (3x+1, mandelbrot,
   md).  Arrays are 1-based and column-major; arguments are passed by
   reference, as in real Fortran. *)

type fty = Finteger | Freal (* real*8 *)

type var_decl = {
  v_ty : fty;
  v_name : string;
  v_dims : int list; (* [] = scalar; column-major *)
}

type expr = { desc : expr_desc; eline : int }

and expr_desc =
  | Int_lit of int64
  | Real_lit of float
  | Var of string
  | Ref of string * expr list (* array element or function call *)
  | Unop of unop * expr
  | Binop of binop * expr * expr

and unop = Neg | Not

and binop =
  | Add | Sub | Mul | Div | Pow
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type stmt = { sdesc : stmt_desc; sline : int }

and stmt_desc =
  | Assign of string * expr list * expr (* name, indices ([] = scalar), value *)
  | If of expr * stmt list * stmt list
  | Do of string * expr * expr * expr option * stmt list (* var, lo, hi, step *)
  | Do_while of expr * stmt list
  | Call of string * expr list
  | Print of expr list
  | Return
  | Exit_loop
  | Cycle
  | Fork of int * int
  | Join of int
  | Barrier of int

type unit_kind =
  | Subroutine
  | Function of fty
  | Program

type punit = {
  u_kind : unit_kind;
  u_name : string;
  u_params : string list; (* types come from declarations *)
  u_decls : var_decl list;
  u_body : stmt list;
}

type program = punit list
