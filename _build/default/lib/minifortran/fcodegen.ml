(* MiniFortran -> MIR.  Fortran semantics: arguments by reference,
   1-based column-major arrays, implicit typing (i..n integer),
   function results through a variable named after the function. *)

open Fast
module I = Mutls_mir.Ir

exception Error of string

let fail line fmt =
  Printf.ksprintf (fun s -> raise (Error (Printf.sprintf "line %d: %s" line s))) fmt

type vkind = Fint | Freal_v

let ir_of_fty = function Finteger -> I.I64 | Freal -> I.F64
let vkind_of_fty = function Finteger -> Fint | Freal -> Freal_v

let implicit_fty name =
  if name = "" then Finteger
  else
    let c = name.[0] in
    if c >= 'i' && c <= 'n' then Finteger else Freal

type sym = {
  s_alloca : I.reg; (* Ptr cell for params, data alloca for locals *)
  s_ty : fty;
  s_dims : int list;
  s_is_param : bool;
}

type usig = { us_kind : unit_kind; us_params : string list }

type env = {
  m : I.modul;
  units : (string, usig) Hashtbl.t;
  f : I.func;
  entry : I.block;
  mutable cur : I.block;
  mutable syms : (string * sym) list;
  mutable label_counter : int;
  mutable loop_stack : (string * string) list;
  ret_var : I.reg option; (* function result alloca *)
  ret_ty : fty;
  decls : (string, var_decl) Hashtbl.t; (* declared names for this unit *)
}

let fresh_label env stem =
  let n = env.label_counter in
  env.label_counter <- n + 1;
  Printf.sprintf "%s.%d" stem n

let add_block env stem =
  let b =
    { I.bname = fresh_label env stem; phis = []; insts = []; term = I.Unreachable }
  in
  env.f.I.blocks <- env.f.I.blocks @ [ b ];
  b

let emit env ity kind =
  let id = if ity = I.Void then -1 else I.fresh_reg env.f ity in
  env.cur.I.insts <- env.cur.I.insts @ [ { I.id; ity; kind } ];
  if ity = I.Void then I.i64 0 else I.Reg id

let set_term env t = env.cur.I.term <- t

let alloca_in_entry env size =
  let id = I.fresh_reg env.f I.Ptr in
  env.entry.I.insts <-
    env.entry.I.insts @ [ { I.id; ity = I.Ptr; kind = I.Alloca size } ];
  id

(* --- symbols -------------------------------------------------------------- *)

let elem_count dims = List.fold_left ( * ) 1 dims

let declare env (d : var_decl) ~is_param ~arg_index =
  let sym =
    if is_param then begin
      (* parameter cell holds the caller's address *)
      let cell = alloca_in_entry env 8 in
      (match arg_index with
      | Some i ->
        ignore (emit env I.Void (I.Store (I.Ptr, I.Arg i, I.Reg cell)))
      | None -> assert false);
      { s_alloca = cell; s_ty = d.v_ty; s_dims = d.v_dims; s_is_param = true }
    end
    else begin
      let size = max 8 (8 * elem_count d.v_dims) in
      let a = alloca_in_entry env size in
      { s_alloca = a; s_ty = d.v_ty; s_dims = d.v_dims; s_is_param = false }
    end
  in
  env.syms <- (d.v_name, sym) :: env.syms;
  sym

let lookup env line name =
  match List.assoc_opt name env.syms with
  | Some s -> Some s
  | None ->
    ignore line;
    None

(* Auto-declare an implicit scalar local. *)
let implicit_declare env name =
  declare env
    { v_ty = implicit_fty name; v_name = name; v_dims = [] }
    ~is_param:false ~arg_index:None

let get_sym env line name =
  match lookup env line name with
  | Some s -> s
  | None -> implicit_declare env name

(* Base address of a symbol's storage. *)
let base_addr env (s : sym) =
  if s.s_is_param then emit env I.Ptr (I.Load (I.Ptr, I.Reg s.s_alloca))
  else I.Reg s.s_alloca

(* Address of an element: 1-based, column-major. *)
let elem_addr env line (s : sym) (indices : I.value list) =
  match (s.s_dims, indices) with
  | [], [] -> base_addr env s
  | dims, idxs when List.length dims = List.length idxs ->
    let rec offset dims idxs =
      match (dims, idxs) with
      | [], [] -> I.i64 0
      | d :: drest, i :: irest ->
        let i0 = emit env I.I64 (I.Binop (I.Sub, I.I64, i, I.i64 1)) in
        let rest = offset drest irest in
        let scaled = emit env I.I64 (I.Binop (I.Mul, I.I64, rest, I.i64 d)) in
        emit env I.I64 (I.Binop (I.Add, I.I64, i0, scaled))
      | _ -> assert false
    in
    let off = offset dims idxs in
    let bytes = emit env I.I64 (I.Binop (I.Mul, I.I64, off, I.i64 8)) in
    emit env I.Ptr (I.Ptradd (base_addr env s, bytes))
  | dims, idxs ->
    fail line "wrong number of indices (%d for %d dimensions)" (List.length idxs)
      (List.length dims)

(* --- conversions ------------------------------------------------------------ *)

let to_real env v = function
  | Freal_v -> v
  | Fint -> emit env I.F64 (I.Cast (I.Sitofp, I.I64, I.F64, v))

let to_int env v = function
  | Fint -> v
  | Freal_v -> emit env I.I64 (I.Cast (I.Fptosi, I.F64, I.I64, v))

let coerce env v vk fty =
  match fty with
  | Finteger -> to_int env v vk
  | Freal -> to_real env v vk

let condition env (v, vk) =
  match vk with
  | Fint -> emit env I.I1 (I.Icmp (I.Ine, I.I64, v, I.i64 0))
  | Freal_v -> emit env I.I1 (I.Fcmp (I.Fne, v, I.f64 0.0))

(* --- intrinsics --------------------------------------------------------------- *)

let intrinsics =
  [ "sqrt"; "sin"; "cos"; "tan"; "exp"; "log"; "abs"; "mod"; "dble"; "int";
    "min"; "max"; "nint" ]

let is_intrinsic name = List.mem name intrinsics

(* --- expressions ---------------------------------------------------------------- *)

let rec gen_expr env (e : expr) : I.value * vkind =
  match e.desc with
  | Int_lit n -> (I.i64' n, Fint)
  | Real_lit x -> (I.f64 x, Freal_v)
  | Var name ->
    let s = get_sym env e.eline name in
    if s.s_dims <> [] then fail e.eline "array %s used as a scalar" name;
    let addr = base_addr env s in
    let v = emit env (ir_of_fty s.s_ty) (I.Load (ir_of_fty s.s_ty, addr)) in
    (v, vkind_of_fty s.s_ty)
  | Ref (name, args) -> (
    match lookup env e.eline name with
    | Some s when s.s_dims <> [] ->
      (* array element *)
      let idxs = List.map (fun a -> fst (gen_int env a)) args in
      let addr = elem_addr env e.eline s idxs in
      let v = emit env (ir_of_fty s.s_ty) (I.Load (ir_of_fty s.s_ty, addr)) in
      (v, vkind_of_fty s.s_ty)
    | _ ->
      (* a parenthesised reference to a scalar symbol is a call — in
         particular the recursive use of a function's own name *)
      if is_intrinsic name then gen_intrinsic env e.eline name args
      else gen_call env e.eline name args)
  | Unop (Neg, a) -> (
    let v, vk = gen_expr env a in
    match vk with
    | Fint -> (emit env I.I64 (I.Binop (I.Sub, I.I64, I.i64 0, v)), Fint)
    | Freal_v -> (emit env I.F64 (I.Binop (I.Fsub, I.F64, I.f64 0.0, v)), Freal_v))
  | Unop (Not, a) ->
    let c = condition env (gen_expr env a) in
    let x = emit env I.I1 (I.Binop (I.Xor, I.I1, c, I.i1 true)) in
    (emit env I.I64 (I.Cast (I.Zext, I.I1, I.I64, x)), Fint)
  | Binop (op, a, b) -> gen_binop env e.eline op a b

and gen_int env e =
  let v, vk = gen_expr env e in
  (to_int env v vk, Fint)

and gen_binop env line op a b : I.value * vkind =
  let av, avk = gen_expr env a in
  let bv, bvk = gen_expr env b in
  let both_int = avk = Fint && bvk = Fint in
  match op with
  | And | Or ->
    let ca = condition env (av, avk) in
    let cb = condition env (bv, bvk) in
    let k = match op with And -> I.And | _ -> I.Or in
    let r = emit env I.I1 (I.Binop (k, I.I1, ca, cb)) in
    (emit env I.I64 (I.Cast (I.Zext, I.I1, I.I64, r)), Fint)
  | Lt | Le | Gt | Ge | Eq | Ne ->
    if both_int then begin
      let iop =
        match op with
        | Lt -> I.Islt | Le -> I.Isle | Gt -> I.Isgt | Ge -> I.Isge
        | Eq -> I.Ieq | Ne -> I.Ine
        | _ -> assert false
      in
      let c = emit env I.I1 (I.Icmp (iop, I.I64, av, bv)) in
      (emit env I.I64 (I.Cast (I.Zext, I.I1, I.I64, c)), Fint)
    end
    else begin
      let fa = to_real env av avk and fb = to_real env bv bvk in
      let fop =
        match op with
        | Lt -> I.Flt | Le -> I.Fle | Gt -> I.Fgt | Ge -> I.Fge
        | Eq -> I.Feq | Ne -> I.Fne
        | _ -> assert false
      in
      let c = emit env I.I1 (I.Fcmp (fop, fa, fb)) in
      (emit env I.I64 (I.Cast (I.Zext, I.I1, I.I64, c)), Fint)
    end
  | Pow ->
    (* a ** b via pow(); integer results are rounded back *)
    let fa = to_real env av avk and fb = to_real env bv bvk in
    let r = emit env I.F64 (I.Call ("pow", [ fa; fb ])) in
    if both_int then
      (emit env I.I64 (I.Cast (I.Fptosi, I.F64, I.I64,
         emit env I.F64 (I.Call ("floor", [
           emit env I.F64 (I.Binop (I.Fadd, I.F64, r, I.f64 0.5)) ])))), Fint)
    else (r, Freal_v)
  | Add | Sub | Mul | Div ->
    if both_int then begin
      let iop =
        match op with
        | Add -> I.Add | Sub -> I.Sub | Mul -> I.Mul | Div -> I.Sdiv
        | _ -> assert false
      in
      (emit env I.I64 (I.Binop (iop, I.I64, av, bv)), Fint)
    end
    else begin
      let fa = to_real env av avk and fb = to_real env bv bvk in
      let fop =
        match op with
        | Add -> I.Fadd | Sub -> I.Fsub | Mul -> I.Fmul | Div -> I.Fdiv
        | _ -> assert false
      in
      ignore line;
      (emit env I.F64 (I.Binop (fop, I.F64, fa, fb)), Freal_v)
    end

and gen_intrinsic env line name args : I.value * vkind =
  let one () =
    match args with
    | [ a ] -> gen_expr env a
    | _ -> fail line "%s expects one argument" name
  in
  let two () =
    match args with
    | [ a; b ] -> (gen_expr env a, gen_expr env b)
    | _ -> fail line "%s expects two arguments" name
  in
  match name with
  | "sqrt" | "sin" | "cos" | "tan" | "exp" | "log" ->
    let v, vk = one () in
    (emit env I.F64 (I.Call (name, [ to_real env v vk ])), Freal_v)
  | "abs" -> (
    let v, vk = one () in
    match vk with
    | Fint -> (emit env I.I64 (I.Call ("abs", [ v ])), Fint)
    | Freal_v -> (emit env I.F64 (I.Call ("fabs", [ v ])), Freal_v))
  | "mod" -> (
    let (av, avk), (bv, bvk) = two () in
    if avk = Fint && bvk = Fint then
      (emit env I.I64 (I.Binop (I.Srem, I.I64, av, bv)), Fint)
    else
      ( emit env I.F64
          (I.Call ("fmod", [ to_real env av avk; to_real env bv bvk ])),
        Freal_v ))
  | "dble" ->
    let v, vk = one () in
    (to_real env v vk, Freal_v)
  | "int" ->
    let v, vk = one () in
    (to_int env v vk, Fint)
  | "nint" -> (
    let v, vk = one () in
    match vk with
    | Fint -> (v, Fint)
    | Freal_v ->
      let shifted = emit env I.F64 (I.Binop (I.Fadd, I.F64, v, I.f64 0.5)) in
      let fl = emit env I.F64 (I.Call ("floor", [ shifted ])) in
      (emit env I.I64 (I.Cast (I.Fptosi, I.F64, I.I64, fl)), Fint))
  | "min" | "max" -> (
    let (av, avk), (bv, bvk) = two () in
    if avk = Fint && bvk = Fint then
      (emit env I.I64 (I.Call ((if name = "min" then "min_i64" else "max_i64"),
                               [ av; bv ])), Fint)
    else
      ( emit env I.F64
          (I.Call ((if name = "min" then "fmin" else "fmax"),
                   [ to_real env av avk; to_real env bv bvk ])),
        Freal_v ))
  | _ -> fail line "unknown intrinsic %s" name

(* By-reference argument: lvalues pass their address, other expressions
   are materialised into a temporary. *)
and gen_arg env (a : expr) : I.value =
  match a.desc with
  | Var name when not (is_intrinsic name) -> (
    match lookup env a.eline name with
    | Some s -> base_addr env s
    | None ->
      let s = implicit_declare env name in
      base_addr env s)
  | Ref (name, idxs) when lookup env a.eline name <> None ->
    let s = Option.get (lookup env a.eline name) in
    let ivs = List.map (fun i -> fst (gen_int env i)) idxs in
    elem_addr env a.eline s ivs
  | _ ->
    let v, vk = gen_expr env a in
    let tmp = alloca_in_entry env 8 in
    let ity = match vk with Fint -> I.I64 | Freal_v -> I.F64 in
    ignore (emit env I.Void (I.Store (ity, v, I.Reg tmp)));
    I.Reg tmp

and gen_call env line name args : I.value * vkind =
  match Hashtbl.find_opt env.units name with
  | Some { us_kind = Function fty; us_params } ->
    if List.length args <> List.length us_params then
      fail line "call to %s with %d args, expected %d" name (List.length args)
        (List.length us_params);
    let vs = List.map (gen_arg env) args in
    let r = emit env (ir_of_fty fty) (I.Call (name, vs)) in
    (r, vkind_of_fty fty)
  | Some { us_kind = Subroutine; _ } ->
    fail line "subroutine %s used as a function" name
  | Some { us_kind = Program; _ } -> fail line "cannot call the main program"
  | None -> fail line "unknown function %s" name

(* --- statements -------------------------------------------------------------------- *)

let rec gen_stmt env (s : stmt) =
  let line = s.sline in
  match s.sdesc with
  | Assign (name, [], value) ->
    (* function-result variable or scalar *)
    let sym = get_sym env line name in
    if sym.s_dims <> [] then fail line "array %s needs indices" name;
    let v, vk = gen_expr env value in
    let v = coerce env v vk sym.s_ty in
    let addr = base_addr env sym in
    ignore (emit env I.Void (I.Store (ir_of_fty sym.s_ty, v, addr)))
  | Assign (name, idxs, value) ->
    let sym =
      match lookup env line name with
      | Some s -> s
      | None -> fail line "unknown array %s" name
    in
    let ivs = List.map (fun i -> fst (gen_int env i)) idxs in
    let addr = elem_addr env line sym ivs in
    let v, vk = gen_expr env value in
    let v = coerce env v vk sym.s_ty in
    ignore (emit env I.Void (I.Store (ir_of_fty sym.s_ty, v, addr)))
  | If (c, thn, els) ->
    let cv = condition env (gen_expr env c) in
    let bt = add_block env "if.t" in
    let bf = add_block env "if.f" in
    let fin = add_block env "if.end" in
    set_term env (I.Cbr (cv, bt.I.bname, (if els = [] then fin else bf).I.bname));
    env.cur <- bt;
    List.iter (gen_stmt env) thn;
    set_term env (I.Br fin.I.bname);
    if els <> [] then begin
      env.cur <- bf;
      List.iter (gen_stmt env) els;
      set_term env (I.Br fin.I.bname)
    end
    else bf.I.term <- I.Br fin.I.bname;
    env.cur <- fin
  | Do (v, lo, hi, step, body) ->
    let sym = get_sym env line v in
    let addr () = base_addr env sym in
    let lov, lovk = gen_expr env lo in
    ignore (emit env I.Void (I.Store (I.I64, to_int env lov lovk, addr ())));
    let hiv = fst (gen_int env hi) in
    (* loop bound and step are evaluated once *)
    let hi_cell = alloca_in_entry env 8 in
    ignore (emit env I.Void (I.Store (I.I64, hiv, I.Reg hi_cell)));
    let stepv =
      match step with Some e -> fst (gen_int env e) | None -> I.i64 1
    in
    let step_cell = alloca_in_entry env 8 in
    ignore (emit env I.Void (I.Store (I.I64, stepv, I.Reg step_cell)));
    let hdr = add_block env "do.hdr" in
    let bdy = add_block env "do.body" in
    let stp = add_block env "do.step" in
    let fin = add_block env "do.end" in
    set_term env (I.Br hdr.I.bname);
    env.cur <- hdr;
    (* direction-aware bound test: (hi - i) * step >= 0 *)
    let iv = emit env I.I64 (I.Load (I.I64, addr ())) in
    let hv = emit env I.I64 (I.Load (I.I64, I.Reg hi_cell)) in
    let sv = emit env I.I64 (I.Load (I.I64, I.Reg step_cell)) in
    let diff = emit env I.I64 (I.Binop (I.Sub, I.I64, hv, iv)) in
    let prod = emit env I.I64 (I.Binop (I.Mul, I.I64, diff, sv)) in
    let c = emit env I.I1 (I.Icmp (I.Isge, I.I64, prod, I.i64 0)) in
    set_term env (I.Cbr (c, bdy.I.bname, fin.I.bname));
    env.cur <- bdy;
    env.loop_stack <- (fin.I.bname, stp.I.bname) :: env.loop_stack;
    List.iter (gen_stmt env) body;
    env.loop_stack <- List.tl env.loop_stack;
    set_term env (I.Br stp.I.bname);
    env.cur <- stp;
    let iv2 = emit env I.I64 (I.Load (I.I64, addr ())) in
    let sv2 = emit env I.I64 (I.Load (I.I64, I.Reg step_cell)) in
    let next = emit env I.I64 (I.Binop (I.Add, I.I64, iv2, sv2)) in
    ignore (emit env I.Void (I.Store (I.I64, next, addr ())));
    set_term env (I.Br hdr.I.bname);
    env.cur <- fin
  | Do_while (c, body) ->
    let hdr = add_block env "while.hdr" in
    let bdy = add_block env "while.body" in
    let fin = add_block env "while.end" in
    set_term env (I.Br hdr.I.bname);
    env.cur <- hdr;
    let cv = condition env (gen_expr env c) in
    set_term env (I.Cbr (cv, bdy.I.bname, fin.I.bname));
    env.cur <- bdy;
    env.loop_stack <- (fin.I.bname, hdr.I.bname) :: env.loop_stack;
    List.iter (gen_stmt env) body;
    env.loop_stack <- List.tl env.loop_stack;
    set_term env (I.Br hdr.I.bname);
    env.cur <- fin
  | Call (name, args) -> (
    match Hashtbl.find_opt env.units name with
    | Some { us_kind = Subroutine; us_params } ->
      if List.length args <> List.length us_params then
        fail line "call to %s with %d args, expected %d" name (List.length args)
          (List.length us_params);
      let vs = List.map (gen_arg env) args in
      ignore (emit env I.Void (I.Call (name, vs)))
    | _ -> fail line "unknown subroutine %s" name)
  | Print args ->
    List.iteri
      (fun i a ->
        if i > 0 then
          ignore (emit env I.Void (I.Call ("print_char", [ I.i64 32 ])));
        let v, vk = gen_expr env a in
        match vk with
        | Fint -> ignore (emit env I.Void (I.Call ("print_int", [ v ])))
        | Freal_v -> ignore (emit env I.Void (I.Call ("print_float", [ v ]))))
      args;
    ignore (emit env I.Void (I.Call ("print_newline", [])))
  | Return ->
    emit_return env;
    env.cur <- add_block env "dead"
  | Exit_loop -> (
    match env.loop_stack with
    | (brk, _) :: _ ->
      set_term env (I.Br brk);
      env.cur <- add_block env "dead"
    | [] -> fail line "exit outside a loop")
  | Cycle -> (
    match env.loop_stack with
    | (_, cont) :: _ ->
      set_term env (I.Br cont);
      env.cur <- add_block env "dead"
    | [] -> fail line "cycle outside a loop")
  | Fork (p, model) ->
    ignore (emit env I.Void (I.Call (I.fork_intrinsic, [ I.i64 p; I.i64 model ])))
  | Join p -> ignore (emit env I.Void (I.Call (I.join_intrinsic, [ I.i64 p ])))
  | Barrier p ->
    ignore (emit env I.Void (I.Call (I.barrier_intrinsic, [ I.i64 p ])))

and emit_return env =
  match env.ret_var with
  | Some a ->
    let v = emit env (ir_of_fty env.ret_ty) (I.Load (ir_of_fty env.ret_ty, I.Reg a)) in
    set_term env (I.Ret (Some v))
  | None ->
    if env.f.I.fname = "main" then set_term env (I.Ret (Some (I.i64 0)))
    else set_term env (I.Ret None)

(* --- reachability pruning (same as the MiniC front-end) --------------------- *)

let prune_unreachable (f : I.func) =
  let reachable = Hashtbl.create 32 in
  let rec visit name =
    if not (Hashtbl.mem reachable name) then begin
      Hashtbl.replace reachable name ();
      let b = I.find_block_exn f name in
      List.iter visit (I.term_succs b.I.term)
    end
  in
  (match f.I.blocks with b :: _ -> visit b.I.bname | [] -> ());
  f.I.blocks <- List.filter (fun b -> Hashtbl.mem reachable b.I.bname) f.I.blocks

(* --- top level ------------------------------------------------------------------ *)

let compile src : I.modul =
  let prog = Fparser.parse_program src in
  let m = I.create_module () in
  List.iter (I.add_extern m) Mutls_interp.Externs.declarations;
  let units = Hashtbl.create 16 in
  List.iter
    (fun u ->
      Hashtbl.replace units u.u_name { us_kind = u.u_kind; us_params = u.u_params })
    prog;
  List.iter
    (fun u ->
      let fname = match u.u_kind with Program -> "main" | _ -> u.u_name in
      let ret_ty, ir_ret =
        match u.u_kind with
        | Program -> (Finteger, I.I64)
        | Subroutine -> (Finteger, I.Void)
        | Function fty -> (fty, ir_of_fty fty)
      in
      let f =
        { I.fname;
          params = List.map (fun p -> (p, I.Ptr)) u.u_params;
          ret = ir_ret;
          blocks = [];
          next_reg = 0;
          reg_tys = Hashtbl.create 32 }
      in
      m.I.funcs <- m.I.funcs @ [ f ];
      let entry = { I.bname = "entry"; phis = []; insts = []; term = I.Br "body" } in
      let body = { I.bname = "body"; phis = []; insts = []; term = I.Unreachable } in
      f.I.blocks <- [ entry; body ];
      let decls = Hashtbl.create 16 in
      List.iter (fun d -> Hashtbl.replace decls d.v_name d) u.u_decls;
      let env =
        { m; units; f; entry; cur = body; syms = []; label_counter = 0;
          loop_stack = []; ret_var = None; ret_ty; decls }
      in
      (* parameters (typed by declarations, implicit otherwise) *)
      List.iteri
        (fun i p ->
          let d =
            match Hashtbl.find_opt decls p with
            | Some d -> d
            | None -> { v_ty = implicit_fty p; v_name = p; v_dims = [] }
          in
          ignore (declare env d ~is_param:true ~arg_index:(Some i)))
        u.u_params;
      (* non-parameter declarations *)
      List.iter
        (fun d ->
          if not (List.mem d.v_name u.u_params) && d.v_name <> u.u_name then
            ignore (declare env d ~is_param:false ~arg_index:None))
        u.u_decls;
      (* function result variable *)
      let env =
        match u.u_kind with
        | Function fty ->
          let d =
            match Hashtbl.find_opt decls u.u_name with
            | Some d -> d
            | None -> { v_ty = fty; v_name = u.u_name; v_dims = [] }
          in
          let s = declare env d ~is_param:false ~arg_index:None in
          { env with ret_var = Some s.s_alloca; ret_ty = d.v_ty }
        | _ -> env
      in
      List.iter (gen_stmt env) u.u_body;
      (match env.cur.I.term with
      | I.Unreachable -> emit_return env
      | _ -> ());
      prune_unreachable f)
    prog;
  Mutls_mir.Mem2reg.run_module m;
  (match Mutls_mir.Verify.check_module m with
  | () -> ()
  | exception Mutls_mir.Verify.Invalid msg ->
    raise (Error ("internal: generated IR does not verify: " ^ msg)));
  m
