(** MiniFortran -> MIR, with real Fortran semantics: arguments passed
    by reference, 1-based column-major arrays, implicit typing (names
    starting i..n are integers), and function results assigned through
    a variable named after the function. *)

exception Error of string

val compile : string -> Mutls_mir.Ir.modul
(** Parse, generate and verify a whole program.
    @raise Error with a line-numbered message on bad input. *)
