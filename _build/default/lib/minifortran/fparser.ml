(* Lexer and parser for MiniFortran.  Free-form source, one statement
   per line (no continuation lines), `!` comments, case-insensitive
   keywords and identifiers. *)

open Fast

exception Error of string

let fail line fmt =
  Printf.ksprintf (fun s -> raise (Error (Printf.sprintf "line %d: %s" line s))) fmt

(* --- tokens ------------------------------------------------------------ *)

type tok =
  | INT of int64
  | REAL of float
  | ID of string (* lower-cased *)
  | LP
  | RP
  | COMMA
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | POW (* ** *)
  | ASSIGN
  | CMP of binop (* relational / logical *)
  | NOT
  | COLONCOLON

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_digit c || is_alpha c

(* Tokenize one source line. *)
let tokenize_line ln line =
  let n = String.length line in
  let toks = ref [] in
  let pos = ref 0 in
  let peek k = if !pos + k < n then Some line.[!pos + k] else None in
  let push t = toks := t :: !toks in
  (try
     while !pos < n do
       let c = line.[!pos] in
       if c = '!' then raise Exit
       else if c = ' ' || c = '\t' || c = '\r' then incr pos
       else if is_digit c || (c = '.' && peek 1 <> None && is_digit (Option.get (peek 1)))
       then begin
         let start = !pos in
         let is_real = ref false in
         while !pos < n && is_digit line.[!pos] do incr pos done;
         (* a '.' starts a fraction only if not a dotted operator like .lt. *)
         if !pos < n && line.[!pos] = '.'
            && not (!pos + 1 < n && is_alpha line.[!pos + 1])
         then begin
           is_real := true;
           incr pos;
           while !pos < n && is_digit line.[!pos] do incr pos done
         end;
         (match if !pos < n then Some line.[!pos] else None with
         | Some ('e' | 'E' | 'd' | 'D') ->
           is_real := true;
           incr pos;
           (match if !pos < n then Some line.[!pos] else None with
           | Some ('+' | '-') -> incr pos
           | _ -> ());
           while !pos < n && is_digit line.[!pos] do incr pos done
         | _ -> ());
         let s = String.sub line start (!pos - start) in
         if !is_real then
           let s = String.map (fun c -> if c = 'd' || c = 'D' then 'e' else c) s in
           push (REAL (float_of_string s))
         else push (INT (Int64.of_string s))
       end
       else if is_alpha c then begin
         let start = !pos in
         while !pos < n && is_alnum line.[!pos] do incr pos done;
         push (ID (String.lowercase_ascii (String.sub line start (!pos - start))))
       end
       else if c = '.' then begin
         (* dotted operator: .lt. .le. .gt. .ge. .eq. .ne. .and. .or. .not. *)
         let close = try String.index_from line (!pos + 1) '.' with Not_found -> -1 in
         if close < 0 then fail ln "unterminated dotted operator";
         let word =
           String.lowercase_ascii (String.sub line (!pos + 1) (close - !pos - 1))
         in
         pos := close + 1;
         match word with
         | "lt" -> push (CMP Lt)
         | "le" -> push (CMP Le)
         | "gt" -> push (CMP Gt)
         | "ge" -> push (CMP Ge)
         | "eq" -> push (CMP Eq)
         | "ne" -> push (CMP Ne)
         | "and" -> push (CMP And)
         | "or" -> push (CMP Or)
         | "not" -> push NOT
         | w -> fail ln "unknown operator .%s." w
       end
       else begin
         let two a b t =
           if peek 1 = Some b then begin
             pos := !pos + 2;
             push t;
             true
           end
           else begin
             ignore a;
             false
           end
         in
         match c with
         | '(' -> incr pos; push LP
         | ')' -> incr pos; push RP
         | ',' -> incr pos; push COMMA
         | '+' -> incr pos; push PLUS
         | '-' -> incr pos; push MINUS
         | '*' -> if not (two '*' '*' POW) then (incr pos; push STAR)
         | '/' -> if not (two '/' '=' (CMP Ne)) then (incr pos; push SLASH)
         | '=' -> if not (two '=' '=' (CMP Eq)) then (incr pos; push ASSIGN)
         | '<' -> if not (two '<' '=' (CMP Le)) then (incr pos; push (CMP Lt))
         | '>' -> if not (two '>' '=' (CMP Ge)) then (incr pos; push (CMP Gt))
         | ':' -> if not (two ':' ':' COLONCOLON) then fail ln "unexpected :"
         | c -> fail ln "unexpected character %c" c
       end
     done
   with Exit -> ());
  List.rev !toks

(* --- expression parser --------------------------------------------------- *)

type estate = { mutable toks : tok list; ln : int }

let epeek st = match st.toks with t :: _ -> Some t | [] -> None
let eadvance st = match st.toks with _ :: r -> st.toks <- r | [] -> ()

let eexpect st t =
  match st.toks with
  | t' :: r when t' = t -> st.toks <- r
  | _ -> fail st.ln "malformed expression"

let prec_of = function
  | Or -> 1
  | And -> 2
  | Eq | Ne | Lt | Le | Gt | Ge -> 3
  | Add | Sub -> 4
  | Mul | Div -> 5
  | Pow -> 7

let binop_of_tok = function
  | PLUS -> Some Add
  | MINUS -> Some Sub
  | STAR -> Some Mul
  | SLASH -> Some Div
  | POW -> Some Pow
  | CMP op -> Some op
  | _ -> None

let rec parse_expr st = parse_bin st 0

and parse_bin st min_prec =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match epeek st with
    | Some t -> (
      match binop_of_tok t with
      | Some op when prec_of op >= min_prec ->
        eadvance st;
        (* ** is right-associative *)
        let next = if op = Pow then prec_of op else prec_of op + 1 in
        let rhs = parse_bin st next in
        lhs := { desc = Binop (op, !lhs, rhs); eline = st.ln }
      | _ -> continue := false)
    | None -> continue := false
  done;
  !lhs

and parse_unary st =
  match epeek st with
  | Some MINUS ->
    eadvance st;
    { desc = Unop (Neg, parse_unary st); eline = st.ln }
  | Some NOT ->
    eadvance st;
    { desc = Unop (Not, parse_unary st); eline = st.ln }
  | _ -> parse_primary st

and parse_primary st =
  match epeek st with
  | Some (INT n) ->
    eadvance st;
    { desc = Int_lit n; eline = st.ln }
  | Some (REAL x) ->
    eadvance st;
    { desc = Real_lit x; eline = st.ln }
  | Some LP ->
    eadvance st;
    let e = parse_expr st in
    eexpect st RP;
    e
  | Some (ID name) ->
    eadvance st;
    if epeek st = Some LP then begin
      eadvance st;
      let args = ref [] in
      if epeek st <> Some RP then begin
        args := [ parse_expr st ];
        while epeek st = Some COMMA do
          eadvance st;
          args := parse_expr st :: !args
        done
      end;
      eexpect st RP;
      { desc = Ref (name, List.rev !args); eline = st.ln }
    end
    else { desc = Var name; eline = st.ln }
  | _ -> fail st.ln "malformed expression"

let parse_expr_toks ln toks =
  let st = { toks; ln } in
  let e = parse_expr st in
  if st.toks <> [] then fail ln "trailing tokens in expression";
  e

(* --- statement-level parser ----------------------------------------------- *)

type line = { l_no : int; l_toks : tok list }

let model_of ln = function
  | INT n -> Int64.to_int n
  | ID "mixed" -> 0
  | ID ("inorder" | "in_order") -> 1
  | ID ("outoforder" | "out_of_order") -> 2
  | _ -> fail ln "unknown forking model"

let const_int ln = function
  | INT n :: [] -> Int64.to_int n
  | _ -> fail ln "expected an integer constant"

(* splits a token list on top-level commas *)
let split_commas ln toks =
  let rec go depth cur acc = function
    | [] -> List.rev (List.rev cur :: acc)
    | LP :: r -> go (depth + 1) (LP :: cur) acc r
    | RP :: r ->
      if depth = 0 then fail ln "unbalanced parentheses";
      go (depth - 1) (RP :: cur) acc r
    | COMMA :: r when depth = 0 -> go 0 [] (List.rev cur :: acc) r
    | t :: r -> go depth (t :: cur) acc r
  in
  match toks with [] -> [] | _ -> go 0 [] [] toks

type pstate = { lines : line array; mutable idx : int }

let peek_line ps = if ps.idx < Array.length ps.lines then Some ps.lines.(ps.idx) else None
let next_line ps =
  match peek_line ps with
  | Some l ->
    ps.idx <- ps.idx + 1;
    l
  | None -> raise (Error "unexpected end of file")

let starts_with toks ids =
  let rec go toks ids =
    match (toks, ids) with
    | _, [] -> true
    | ID a :: tr, b :: ir when a = b -> go tr ir
    | _ -> false
  in
  go toks ids

let fty_of_decl toks =
  (* integer / real / real*8 / double precision, optional :: *)
  match toks with
  | ID "integer" :: rest -> Some (Finteger, rest)
  | ID "real" :: STAR :: INT 8L :: rest -> Some (Freal, rest)
  | ID "real" :: rest -> Some (Freal, rest)
  | ID "double" :: ID "precision" :: rest -> Some (Freal, rest)
  | _ -> None

let parse_decl_names ln ty rest =
  let rest = match rest with COLONCOLON :: r -> r | r -> r in
  let groups = split_commas ln rest in
  List.map
    (fun g ->
      match g with
      | ID name :: LP :: dims_toks ->
        (* dims up to closing paren *)
        let dims_toks =
          match List.rev dims_toks with
          | RP :: r -> List.rev r
          | _ -> fail ln "malformed array declaration"
        in
        let dims =
          split_commas ln dims_toks
          |> List.map (fun g ->
                 match g with
                 | [ INT n ] -> Int64.to_int n
                 | _ -> fail ln "array dimensions must be integer constants")
        in
        { v_ty = ty; v_name = name; v_dims = dims }
      | [ ID name ] -> { v_ty = ty; v_name = name; v_dims = [] }
      | _ -> fail ln "malformed declaration")
    groups

let rec parse_stmts ps stops =
  let out = ref [] in
  let continue = ref true in
  while !continue do
    match peek_line ps with
    | None -> raise (Error (Printf.sprintf "missing %s" (String.concat "/" (List.map (String.concat " ") stops))))
    | Some l ->
      if List.exists (starts_with l.l_toks) stops then continue := false
      else out := parse_stmt ps :: !out
  done;
  List.rev !out

and parse_stmt ps : stmt =
  let l = next_line ps in
  let ln = l.l_no in
  let mk d = { sdesc = d; sline = ln } in
  match l.l_toks with
  | ID "call" :: ID "mutls_fork" :: LP :: rest -> (
    match split_commas ln (strip_rp ln rest) with
    | [ [ INT p ]; [ m ] ] -> mk (Fork (Int64.to_int p, model_of ln m))
    | _ -> fail ln "MUTLS_FORK(point, model)")
  | ID "call" :: ID "mutls_join" :: LP :: rest ->
    mk (Join (const_int ln (strip_rp ln rest)))
  | ID "call" :: ID "mutls_barrier" :: LP :: rest ->
    mk (Barrier (const_int ln (strip_rp ln rest)))
  | ID "call" :: ID name :: LP :: rest ->
    let args =
      split_commas ln (strip_rp ln rest) |> List.map (parse_expr_toks ln)
    in
    mk (Call (name, args))
  | ID "call" :: ID name :: [] -> mk (Call (name, []))
  | ID "print" :: STAR :: COMMA :: rest ->
    let args = split_commas ln rest |> List.map (parse_expr_toks ln) in
    mk (Print args)
  | ID "print" :: STAR :: [] -> mk (Print [])
  | ID "return" :: [] -> mk Return
  | ID "exit" :: [] -> mk Exit_loop
  | ID "cycle" :: [] -> mk Cycle
  | ID "do" :: ID "while" :: LP :: rest ->
    let cond = parse_expr_toks ln (strip_rp ln rest) in
    let body = parse_stmts ps [ [ "end"; "do" ]; [ "enddo" ] ] in
    ignore (next_line ps);
    mk (Do_while (cond, body))
  | ID "do" :: ID v :: ASSIGN :: rest -> (
    let parts = split_commas ln rest in
    match parts with
    | [ lo; hi ] ->
      let body = parse_stmts ps [ [ "end"; "do" ]; [ "enddo" ] ] in
      ignore (next_line ps);
      mk (Do (v, parse_expr_toks ln lo, parse_expr_toks ln hi, None, body))
    | [ lo; hi; step ] ->
      let body = parse_stmts ps [ [ "end"; "do" ]; [ "enddo" ] ] in
      ignore (next_line ps);
      mk
        (Do
           ( v, parse_expr_toks ln lo, parse_expr_toks ln hi,
             Some (parse_expr_toks ln step), body ))
    | _ -> fail ln "malformed do")
  | ID "if" :: LP :: rest -> parse_if ps ln rest
  | ID name :: ASSIGN :: rest ->
    mk (Assign (name, [], parse_expr_toks ln rest))
  | ID name :: LP :: rest ->
    (* indexed assignment: name(idx...) = expr *)
    let idx_toks, rest = find_close ln 0 [] rest in
    let idxs = split_commas ln idx_toks |> List.map (parse_expr_toks ln) in
    (match rest with
    | ASSIGN :: value -> mk (Assign (name, idxs, parse_expr_toks ln value))
    | _ -> fail ln "expected = after indexed variable")
  | _ -> fail ln "unrecognised statement"

and find_close ln depth acc = function
  | [] -> fail ln "unbalanced parentheses"
  | LP :: r -> find_close ln (depth + 1) (LP :: acc) r
  | RP :: r ->
    if depth = 0 then (List.rev acc, r) else find_close ln (depth - 1) (RP :: acc) r
  | t :: r -> find_close ln depth (t :: acc) r

and strip_rp ln toks =
  match List.rev toks with
  | RP :: r -> List.rev r
  | _ -> fail ln "expected )"

and parse_if ps ln rest : stmt =
  let cond_toks, rest = find_close ln 0 [] rest in
  let cond = parse_expr_toks ln cond_toks in
  match rest with
  | [ ID "then" ] -> (
    let thn = parse_stmts ps [ [ "else" ]; [ "end"; "if" ]; [ "endif" ] ] in
    let l = next_line ps in
    if starts_with l.l_toks [ "else" ] then begin
      let els = parse_stmts ps [ [ "end"; "if" ]; [ "endif" ] ] in
      ignore (next_line ps);
      { sdesc = If (cond, thn, els); sline = ln }
    end
    else { sdesc = If (cond, thn, []); sline = ln })
  | [] -> fail ln "if without a statement"
  | _ ->
    (* one-line if *)
    let sub = { lines = [| { l_no = ln; l_toks = rest } |]; idx = 0 } in
    let s = parse_stmt sub in
    { sdesc = If (cond, [ s ], []); sline = ln }

(* --- program units ---------------------------------------------------------- *)

let parse_unit ps : punit =
  let l = next_line ps in
  let ln = l.l_no in
  let kind, name, params =
    match l.l_toks with
    | ID "program" :: ID name :: [] -> (Program, name, [])
    | ID "subroutine" :: ID name :: rest ->
      let params =
        match rest with
        | [] -> []
        | LP :: r ->
          split_commas ln (strip_rp ln r)
          |> List.map (function
               | [ ID p ] -> p
               | _ -> fail ln "malformed parameter list")
        | _ -> fail ln "malformed subroutine header"
      in
      (Subroutine, name, params)
    | toks -> (
      match fty_of_decl toks with
      | Some (ty, ID "function" :: ID name :: LP :: r) ->
        let params =
          split_commas ln (strip_rp ln r)
          |> List.map (function
               | [ ID p ] -> p
               | _ -> fail ln "malformed parameter list")
        in
        (Function ty, name, params)
      | _ -> fail ln "expected program, subroutine or function")
  in
  (* declarations *)
  let decls = ref [] in
  let continue = ref true in
  while !continue do
    match peek_line ps with
    | Some l -> (
      match fty_of_decl l.l_toks with
      | Some (ty, rest) when not (starts_with rest [ "function" ]) ->
        ignore (next_line ps);
        decls := !decls @ parse_decl_names l.l_no ty rest
      | _ -> continue := false)
    | None -> continue := false
  done;
  (* body until "end" *)
  let body = parse_stmts ps [ [ "end" ] ] in
  ignore (next_line ps);
  { u_kind = kind; u_name = name; u_params = params; u_decls = !decls; u_body = body }

let parse_program src : program =
  let lines =
    String.split_on_char '\n' src
    |> List.mapi (fun i s -> { l_no = i + 1; l_toks = tokenize_line (i + 1) s })
    |> List.filter (fun l -> l.l_toks <> [])
    |> Array.of_list
  in
  let ps = { lines; idx = 0 } in
  let units = ref [] in
  while peek_line ps <> None do
    units := parse_unit ps :: !units
  done;
  List.rev !units
