(** Lexer and parser for MiniFortran: free-form source, one statement
    per line, [!] comments, case-insensitive keywords, dotted operators
    ([.lt.] etc.), [do]/[end do], [if]/[then]/[else]/[end if],
    subroutines, functions, and [call MUTLS_FORK(p, model)] /
    [MUTLS_JOIN(p)] / [MUTLS_BARRIER(p)]. *)

exception Error of string

val parse_program : string -> Fast.program
(** @raise Error with a line-numbered message. *)
