lib/mir/builder.ml: Hashtbl Ir Printf
