lib/mir/builder.mli: Ir
