lib/mir/cfg.ml: Array Fun Hashtbl Ir List
