lib/mir/cfg.mli: Hashtbl Ir
