lib/mir/dom.ml: Array Cfg List
