lib/mir/dom.mli: Cfg
