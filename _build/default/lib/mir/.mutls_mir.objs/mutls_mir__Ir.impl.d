lib/mir/ir.ml: Hashtbl Int64 List Printf String
