lib/mir/ir.mli: Hashtbl
