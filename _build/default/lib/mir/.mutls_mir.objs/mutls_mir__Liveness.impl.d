lib/mir/liveness.ml: Array Cfg Hashtbl Int Ir List Set
