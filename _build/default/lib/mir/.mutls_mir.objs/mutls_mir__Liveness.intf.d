lib/mir/liveness.mli: Ir Set
