lib/mir/mem2reg.ml: Array Cfg Dom Hashtbl Int Ir List Option Queue Set
