lib/mir/mem2reg.mli: Ir
