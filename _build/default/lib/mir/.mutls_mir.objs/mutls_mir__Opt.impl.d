lib/mir/opt.ml: Array Cfg Hashtbl Int64 Ir List Option Verify
