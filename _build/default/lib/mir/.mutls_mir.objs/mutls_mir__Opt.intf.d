lib/mir/opt.mli: Ir
