lib/mir/parse.ml: Array Char Filename Hashtbl Int64 Ir List Option Printf String
