lib/mir/parse.mli: Ir
