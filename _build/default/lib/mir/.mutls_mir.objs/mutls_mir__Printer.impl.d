lib/mir/printer.ml: Array Buffer Char Int64 Ir List Printf String
