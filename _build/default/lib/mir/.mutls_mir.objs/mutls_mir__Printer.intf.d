lib/mir/printer.mli: Ir
