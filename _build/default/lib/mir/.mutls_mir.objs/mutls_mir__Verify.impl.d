lib/mir/verify.ml: Array Cfg Dom Hashtbl Int Ir List Printf Set String
