lib/mir/verify.mli: Ir
