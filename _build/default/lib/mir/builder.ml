(* Imperative construction of MIR functions, in the style of LLVM's
   IRBuilder: a cursor points at a block; emitted instructions are
   appended there. *)

open Ir

type t = {
  m : modul;
  f : func;
  mutable cur : block option;
  mutable label_counter : int;
}

let create m ~name ~params ~ret =
  let f =
    { fname = name; params; ret; blocks = []; next_reg = 0;
      reg_tys = Hashtbl.create 64 }
  in
  m.funcs <- m.funcs @ [ f ];
  { m; f; cur = None; label_counter = 0 }

let func b = b.f

let fresh_label b stem =
  let n = b.label_counter in
  b.label_counter <- n + 1;
  Printf.sprintf "%s.%d" stem n

(* Creates (but does not position on) a new block. *)
let add_block b name =
  let blk = { bname = name; phis = []; insts = []; term = Unreachable } in
  b.f.blocks <- b.f.blocks @ [ blk ];
  blk

let new_block b stem = add_block b (fresh_label b stem)

let position b blk = b.cur <- Some blk

let current b =
  match b.cur with
  | Some blk -> blk
  | None -> invalid_arg "Builder: no current block"

let emit b ity kind =
  let blk = current b in
  let id = if ity = Void then -1 else fresh_reg b.f ity in
  blk.insts <- blk.insts @ [ { id; ity; kind } ];
  if ity = Void then Const (Cint (0L, I64)) else Reg id

let binop b op ty a v = emit b ty (Binop (op, ty, a, v))
let add_ b a v = binop b Add I64 a v
let sub_ b a v = binop b Sub I64 a v
let mul_ b a v = binop b Mul I64 a v
let icmp b op ty a v = emit b I1 (Icmp (op, ty, a, v))
let fcmp b op a v = emit b I1 (Fcmp (op, a, v))
let alloca b size = emit b Ptr (Alloca size)
let load b ty addr = emit b ty (Load (ty, addr))
let store b ty v addr = ignore (emit b Void (Store (ty, v, addr)))
let ptradd b base off = emit b Ptr (Ptradd (base, off))
let select b c x y ty = emit b ty (Select (c, x, y))
let cast b c ~from ~into v = emit b into (Cast (c, from, into, v))

(* Direct call; the result type must be supplied by the caller (the
   builder does not resolve callees, which may not exist yet). *)
let call b ~ret name args = emit b ret (Call (name, args))

let phi b ty incoming =
  let blk = current b in
  let id = fresh_reg b.f ty in
  blk.phis <- blk.phis @ [ { pid = id; pty = ty; incoming } ];
  Reg id

let set_term b t = (current b).term <- t
let br b l = set_term b (Br l)
let cbr b c l1 l2 = set_term b (Cbr (c, l1, l2))
let ret b v = set_term b (Ret v)
let switch b v d cases = set_term b (Switch (v, d, cases))

(* MUTLS source-level annotations (Figure 1 of the paper). *)
let mutls_fork b ~point ~model =
  ignore (call b ~ret:Void fork_intrinsic [ i64 point; i64 model ])

let mutls_join b ~point = ignore (call b ~ret:Void join_intrinsic [ i64 point ])
let mutls_barrier b ~point =
  ignore (call b ~ret:Void barrier_intrinsic [ i64 point ])
