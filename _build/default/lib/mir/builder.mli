(** Imperative construction of MIR functions, in the style of LLVM's
    IRBuilder: a cursor points at a block and emitted instructions are
    appended there.  Used by both front-ends, by tests, and by clients
    doing arbitrary-point speculation straight at the IR level (see
    [examples/custom_ir.ml]). *)

type t

val create :
  Ir.modul -> name:string -> params:(string * Ir.ty) list -> ret:Ir.ty -> t
(** Create a function, register it in the module, and return a builder
    positioned nowhere (call {!position} first). *)

val func : t -> Ir.func

val fresh_label : t -> string -> string
(** A fresh block label derived from the given stem. *)

val add_block : t -> string -> Ir.block
(** Create a block with exactly this name (no uniquification). *)

val new_block : t -> string -> Ir.block
(** Create a block with a fresh name derived from the stem. *)

val position : t -> Ir.block -> unit
(** Subsequent emissions append to this block. *)

val current : t -> Ir.block

val emit : t -> Ir.ty -> Ir.instr_kind -> Ir.value
(** Append an instruction; returns its result value ([Void]
    instructions return a dummy). *)

(** {1 Typed emission helpers} *)

val binop : t -> Ir.binop -> Ir.ty -> Ir.value -> Ir.value -> Ir.value
val add_ : t -> Ir.value -> Ir.value -> Ir.value
val sub_ : t -> Ir.value -> Ir.value -> Ir.value
val mul_ : t -> Ir.value -> Ir.value -> Ir.value
val icmp : t -> Ir.icmp -> Ir.ty -> Ir.value -> Ir.value -> Ir.value
val fcmp : t -> Ir.fcmp -> Ir.value -> Ir.value -> Ir.value
val alloca : t -> int -> Ir.value
val load : t -> Ir.ty -> Ir.value -> Ir.value
val store : t -> Ir.ty -> Ir.value -> Ir.value -> unit
val ptradd : t -> Ir.value -> Ir.value -> Ir.value
val select : t -> Ir.value -> Ir.value -> Ir.value -> Ir.ty -> Ir.value
val cast : t -> Ir.cast -> from:Ir.ty -> into:Ir.ty -> Ir.value -> Ir.value

val call : t -> ret:Ir.ty -> string -> Ir.value list -> Ir.value
(** Direct call; the result type must be supplied (the callee may not
    exist yet). *)

val phi : t -> Ir.ty -> (string * Ir.value) list -> Ir.value

(** {1 Terminators} *)

val set_term : t -> Ir.terminator -> unit
val br : t -> string -> unit
val cbr : t -> Ir.value -> string -> string -> unit
val ret : t -> Ir.value option -> unit
val switch : t -> Ir.value -> string -> (int64 * string) list -> unit

(** {1 MUTLS source-level annotations (paper Fig. 1)} *)

val mutls_fork : t -> point:int -> model:int -> unit
(** [model]: 0 = mixed, 1 = in-order, 2 = out-of-order. *)

val mutls_join : t -> point:int -> unit
val mutls_barrier : t -> point:int -> unit
