(* Control-flow graph utilities over a function's block list. *)

open Ir

type t = {
  blocks : block array;
  index : (string, int) Hashtbl.t; (* label -> array index *)
  succs : int list array;
  preds : int list array;
}

let of_func (f : func) =
  let blocks = Array.of_list f.blocks in
  let n = Array.length blocks in
  let index = Hashtbl.create (2 * n) in
  Array.iteri (fun i b -> Hashtbl.replace index b.bname i) blocks;
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  Array.iteri
    (fun i b ->
      let ss =
        term_succs b.term
        |> List.map (fun l ->
               match Hashtbl.find_opt index l with
               | Some j -> j
               | None -> invalid_arg ("Cfg: branch to unknown block " ^ l))
      in
      succs.(i) <- ss;
      List.iter (fun j -> preds.(j) <- i :: preds.(j)) ss)
    blocks;
  Array.iteri (fun j ps -> preds.(j) <- List.rev ps) preds;
  { blocks; index; succs; preds }

let block_index t name =
  match Hashtbl.find_opt t.index name with
  | Some i -> i
  | None -> invalid_arg ("Cfg.block_index: unknown block " ^ name)

let nblocks t = Array.length t.blocks

(* Reverse postorder from the entry (index 0). Unreachable blocks are
   appended at the end in arbitrary order so analyses still see them. *)
let reverse_postorder t =
  let n = nblocks t in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter dfs t.succs.(i);
      order := i :: !order
    end
  in
  if n > 0 then dfs 0;
  let reachable = !order in
  let unreachable =
    List.filter (fun i -> not visited.(i)) (List.init n Fun.id)
  in
  reachable @ unreachable

let postorder t = List.rev (reverse_postorder t)
