(** Control-flow graph over a function's block list, with block
    indices, successor/predecessor arrays, and traversal orders. *)

type t = {
  blocks : Ir.block array;
  index : (string, int) Hashtbl.t;  (** label -> array index *)
  succs : int list array;
  preds : int list array;
}

val of_func : Ir.func -> t
(** @raise Invalid_argument on a branch to an unknown block. *)

val block_index : t -> string -> int
val nblocks : t -> int

val reverse_postorder : t -> int list
(** Reverse postorder from the entry; unreachable blocks are appended
    at the end so analyses still see them. *)

val postorder : t -> int list
