(* Dominator tree and dominance frontiers, using the Cooper-Harvey-
   Kennedy iterative algorithm.  Needed by mem2reg for phi placement. *)

type t = {
  idom : int array; (* immediate dominator; entry maps to itself; -1 = unreachable *)
  frontiers : int list array;
  children : int list array; (* dominator-tree children *)
}

let compute (cfg : Cfg.t) =
  let n = Cfg.nblocks cfg in
  let rpo = Cfg.reverse_postorder cfg in
  let rpo_pos = Array.make n (-1) in
  List.iteri (fun pos i -> rpo_pos.(i) <- pos) rpo;
  let idom = Array.make n (-1) in
  if n > 0 then idom.(0) <- 0;
  let intersect b1 b2 =
    let f1 = ref b1 and f2 = ref b2 in
    while !f1 <> !f2 do
      while rpo_pos.(!f1) > rpo_pos.(!f2) do f1 := idom.(!f1) done;
      while rpo_pos.(!f2) > rpo_pos.(!f1) do f2 := idom.(!f2) done
    done;
    !f1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> 0 then begin
          let preds = cfg.Cfg.preds.(b) in
          let processed = List.filter (fun p -> idom.(p) <> -1) preds in
          match processed with
          | [] -> () (* unreachable *)
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idom.(b) <> new_idom then begin
              idom.(b) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  let frontiers = Array.make n [] in
  for b = 0 to n - 1 do
    let preds = cfg.Cfg.preds.(b) in
    if List.length preds >= 2 && idom.(b) <> -1 then
      List.iter
        (fun p ->
          if idom.(p) <> -1 then begin
            let runner = ref p in
            while !runner <> idom.(b) do
              if not (List.mem b frontiers.(!runner)) then
                frontiers.(!runner) <- b :: frontiers.(!runner);
              runner := idom.(!runner)
            done
          end)
        preds
  done;
  let children = Array.make n [] in
  for b = n - 1 downto 1 do
    if idom.(b) <> -1 then children.(idom.(b)) <- b :: children.(idom.(b))
  done;
  { idom; frontiers; children }

(* Does block [a] dominate block [b]? *)
let dominates t a b =
  let rec walk x = if x = a then true else if x = 0 || t.idom.(x) = -1 then a = x else walk t.idom.(x) in
  if t.idom.(b) = -1 then false else walk b
