(** Dominator tree and dominance frontiers (Cooper-Harvey-Kennedy),
    used by mem2reg for pruned phi placement. *)

type t = {
  idom : int array;
      (** immediate dominator; the entry maps to itself; -1 = unreachable *)
  frontiers : int list array;  (** dominance frontier of each block *)
  children : int list array;  (** dominator-tree children *)
}

val compute : Cfg.t -> t

val dominates : t -> int -> int -> bool
(** [dominates t a b] — does block [a] dominate block [b]? *)
