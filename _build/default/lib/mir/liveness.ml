(* Per-block liveness of SSA registers.  The speculator pass needs the
   set of local (register) variables live at the beginning of each
   synchronization block to decide what to save/restore across the
   speculative/non-speculative boundary (paper §IV-C step 4). *)

open Ir
module IntSet = Set.Make (Int)

type t = {
  live_in : (string, IntSet.t) Hashtbl.t;
  live_out : (string, IntSet.t) Hashtbl.t;
}

let regs_of_values vs =
  List.fold_left
    (fun acc v -> match v with Reg r -> IntSet.add r acc | _ -> acc)
    IntSet.empty vs

let compute (f : func) =
  let cfg = Cfg.of_func f in
  let nb = Cfg.nblocks cfg in
  (* gen = upward-exposed register uses; kill = registers defined. *)
  let gen = Array.make nb IntSet.empty in
  let kill = Array.make nb IntSet.empty in
  let phi_defs = Array.make nb IntSet.empty in
  Array.iteri
    (fun bi b ->
      let defined = ref IntSet.empty in
      List.iter
        (fun p ->
          defined := IntSet.add p.pid !defined;
          phi_defs.(bi) <- IntSet.add p.pid phi_defs.(bi))
        b.phis;
      List.iter
        (fun i ->
          let uses = regs_of_values (instr_uses i.kind) in
          gen.(bi) <- IntSet.union gen.(bi) (IntSet.diff uses !defined);
          if i.ity <> Void then defined := IntSet.add i.id !defined)
        b.insts;
      let tuses = regs_of_values (term_uses b.term) in
      gen.(bi) <- IntSet.union gen.(bi) (IntSet.diff tuses !defined);
      kill.(bi) <- !defined)
    cfg.Cfg.blocks;
  (* A phi's incoming value is live at the end of the corresponding
     predecessor, not at the head of the phi's own block. *)
  let phi_uses_from = Array.make nb IntSet.empty in
  (* phi_uses_from.(pred) = regs consumed by any successor's phis via pred *)
  Array.iteri
    (fun _bi b ->
      List.iter
        (fun p ->
          List.iter
            (fun (pred_label, v) ->
              match v with
              | Reg r ->
                let pi = Cfg.block_index cfg pred_label in
                phi_uses_from.(pi) <- IntSet.add r phi_uses_from.(pi)
              | _ -> ())
            p.incoming)
        b.phis)
    cfg.Cfg.blocks;
  let live_in = Array.make nb IntSet.empty in
  let live_out = Array.make nb IntSet.empty in
  let changed = ref true in
  let order = Cfg.postorder cfg in
  while !changed do
    changed := false;
    List.iter
      (fun bi ->
        let out =
          List.fold_left
            (fun acc si ->
              IntSet.union acc (IntSet.diff live_in.(si) phi_defs.(si)))
            phi_uses_from.(bi) cfg.Cfg.succs.(bi)
        in
        let inn = IntSet.union gen.(bi) (IntSet.diff out kill.(bi)) in
        if not (IntSet.equal out live_out.(bi) && IntSet.equal inn live_in.(bi))
        then begin
          live_out.(bi) <- out;
          live_in.(bi) <- inn;
          changed := true
        end)
      order
  done;
  let tin = Hashtbl.create nb and tout = Hashtbl.create nb in
  Array.iteri
    (fun bi b ->
      Hashtbl.replace tin b.bname live_in.(bi);
      Hashtbl.replace tout b.bname live_out.(bi))
    cfg.Cfg.blocks;
  { live_in = tin; live_out = tout }

let live_in t label =
  match Hashtbl.find_opt t.live_in label with
  | Some s -> s
  | None -> IntSet.empty

let live_out t label =
  match Hashtbl.find_opt t.live_out label with
  | Some s -> s
  | None -> IntSet.empty
