(** Per-block liveness of SSA registers.  The speculator pass needs
    the set of locals live at the beginning of each synchronization
    block (paper IV-C step 4) to decide what to save and restore
    across the speculative/non-speculative boundary. *)

module IntSet : Set.S with type elt = int

type t

val compute : Ir.func -> t
(** Backward dataflow; a phi's incoming value is live at the end of the
    corresponding predecessor, not at the head of the phi's block. *)

val live_in : t -> string -> IntSet.t
val live_out : t -> string -> IntSet.t
