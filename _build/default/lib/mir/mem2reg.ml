(* Promotion of entry-block allocas to SSA registers (LLVM's mem2reg).
   Front-ends emit every local variable as an alloca + load/store; this
   pass rewrites scalar locals into SSA form with phi nodes so that the
   speculator pass sees "register variables" exactly as the paper's
   LLVM-based implementation does.  Allocas whose address escapes
   (passed to a call, offset with ptradd, stored, cast) are left in
   place — those are the paper's "stack variables". *)

open Ir

type alloca_info = {
  a_reg : reg;
  mutable a_ty : ty option; (* uniform access type, if any *)
  mutable a_promotable : bool;
  a_size : int;
}

let collect_allocas (f : func) =
  let infos = Hashtbl.create 16 in
  let entry = entry_block f in
  List.iter
    (fun i ->
      match i.kind with
      | Alloca n when n = 1 || n = 4 || n = 8 ->
        Hashtbl.replace infos i.id
          { a_reg = i.id; a_ty = None; a_promotable = true; a_size = n }
      | _ -> ())
    entry.insts;
  (* Scan all uses; disqualify escapes and mixed-type accesses. *)
  let note_access info t =
    if ty_size t <> info.a_size then info.a_promotable <- false
    else
      match info.a_ty with
      | None -> info.a_ty <- Some t
      | Some t0 -> if t0 <> t then info.a_promotable <- false
  in
  let check_value_escape v =
    match v with
    | Reg r -> (
      match Hashtbl.find_opt infos r with
      | Some info -> info.a_promotable <- false
      | None -> ())
    | _ -> ()
  in
  List.iter
    (fun b ->
      List.iter
        (fun p -> List.iter (fun (_, v) -> check_value_escape v) p.incoming)
        b.phis;
      List.iter
        (fun i ->
          match i.kind with
          | Load (t, Reg r) -> (
            match Hashtbl.find_opt infos r with
            | Some info -> note_access info t
            | None -> ())
          | Store (t, v, Reg r) -> (
            check_value_escape v;
            match Hashtbl.find_opt infos r with
            | Some info -> note_access info t
            | None -> ())
          | _ -> List.iter check_value_escape (instr_uses i.kind))
        b.insts;
      List.iter check_value_escape (term_uses b.term))
    f.blocks;
  Hashtbl.fold
    (fun _ info acc ->
      if info.a_promotable && info.a_ty <> None then info :: acc else acc)
    infos []

let default_value = function
  | F64 -> Const (Cfloat 0.0)
  | Ptr -> Const Cnull
  | t -> Const (Cint (0L, t))

(* Per-block liveness of candidate allocas (upward-exposed loads), for
   pruned phi placement.  Unpruned SSA would create dead phis whose
   demotion later makes dead variables look live at synchronization
   blocks — inflating the speculator pass's save/validate sets and
   causing systematic misprediction rollbacks. *)
let alloca_liveness (cfg : Cfg.t) (targets : (reg, alloca_info) Hashtbl.t) =
  let n = Cfg.nblocks cfg in
  let module IS = Set.Make (Int) in
  let gen = Array.make n IS.empty in
  let kill = Array.make n IS.empty in
  Array.iteri
    (fun bi b ->
      let stored = ref IS.empty in
      List.iter
        (fun i ->
          match i.kind with
          | Load (_, Reg a) when Hashtbl.mem targets a ->
            if not (IS.mem a !stored) then gen.(bi) <- IS.add a gen.(bi)
          | Store (_, _, Reg a) when Hashtbl.mem targets a ->
            stored := IS.add a !stored
          | _ -> ())
        b.insts;
      kill.(bi) <- !stored)
    cfg.Cfg.blocks;
  let live_in = Array.make n IS.empty in
  let changed = ref true in
  let order = Cfg.postorder cfg in
  while !changed do
    changed := false;
    List.iter
      (fun bi ->
        let out =
          List.fold_left
            (fun acc si -> IS.union acc live_in.(si))
            IS.empty cfg.Cfg.succs.(bi)
        in
        let inn = IS.union gen.(bi) (IS.diff out kill.(bi)) in
        if not (IS.equal inn live_in.(bi)) then begin
          live_in.(bi) <- inn;
          changed := true
        end)
      order
  done;
  fun bi a -> IS.mem a live_in.(bi)

let run (f : func) =
  let promote = collect_allocas f in
  if promote = [] then ()
  else begin
    let cfg = Cfg.of_func f in
    let dom = Dom.compute cfg in
    let nb = Cfg.nblocks cfg in
    let is_target = Hashtbl.create 16 in
    List.iter (fun info -> Hashtbl.replace is_target info.a_reg info) promote;
    let live_at = alloca_liveness cfg is_target in
    (* 1. Pruned phi placement at iterated dominance frontiers of defs. *)
    (* (block index, alloca reg) -> phi *)
    let placed : (int * reg, phi) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun info ->
        let ty = Option.get info.a_ty in
        let def_blocks = Array.make nb false in
        Array.iteri
          (fun bi b ->
            List.iter
              (fun i ->
                match i.kind with
                | Store (_, _, Reg r) when r = info.a_reg -> def_blocks.(bi) <- true
                | _ -> ())
              b.insts)
          cfg.Cfg.blocks;
        let work = Queue.create () in
        Array.iteri (fun bi d -> if d then Queue.add bi work) def_blocks;
        let has_phi = Array.make nb false in
        while not (Queue.is_empty work) do
          let bi = Queue.pop work in
          List.iter
            (fun fr ->
              if (not has_phi.(fr)) && live_at fr info.a_reg then begin
                has_phi.(fr) <- true;
                let p = { pid = fresh_reg f ty; pty = ty; incoming = [] } in
                cfg.Cfg.blocks.(fr).phis <- cfg.Cfg.blocks.(fr).phis @ [ p ];
                Hashtbl.replace placed (fr, info.a_reg) p;
                if not def_blocks.(fr) then Queue.add fr work
              end)
            dom.Dom.frontiers.(bi)
        done)
      promote;
    (* 2. Renaming pass over the dominator tree. *)
    let subst : (reg, value) Hashtbl.t = Hashtbl.create 64 in
    let rec resolve v =
      match v with
      | Reg r -> (
        match Hashtbl.find_opt subst r with Some v' -> resolve v' | None -> v)
      | _ -> v
    in
    let rec rename bi (env : (reg * value) list) =
      let b = cfg.Cfg.blocks.(bi) in
      let env = ref env in
      let set_cur a v = env := (a, v) :: !env in
      let cur a =
        match List.assoc_opt a !env with
        | Some v -> v
        | None -> default_value (Option.get (Hashtbl.find is_target a).a_ty)
      in
      (* Phis placed for an alloca define its current value here. *)
      Hashtbl.iter
        (fun (bj, a) p -> if bj = bi then set_cur a (Reg p.pid))
        placed;
      let keep = ref [] in
      List.iter
        (fun i ->
          match i.kind with
          | Alloca _ when Hashtbl.mem is_target i.id -> () (* drop *)
          | Load (_, Reg r) when Hashtbl.mem is_target r ->
            Hashtbl.replace subst i.id (cur r)
          | Store (_, v, Reg r) when Hashtbl.mem is_target r ->
            set_cur r (resolve v)
          | k ->
            let k' = map_instr_values resolve k in
            keep := { i with kind = k' } :: !keep)
        b.insts;
      b.insts <- List.rev !keep;
      b.term <- map_term_values resolve b.term;
      (* Also rewrite pre-existing phi incomings now (they reference
         values from predecessors; those were resolved when the
         predecessor was processed via fill-in below, but non-promoted
         uses still need subst chasing at the end). *)
      (* Fill in successor phis for promoted allocas. *)
      List.iter
        (fun si ->
          Hashtbl.iter
            (fun (bj, a) p ->
              if bj = si then p.incoming <- (b.bname, cur a) :: p.incoming)
            placed)
        cfg.Cfg.succs.(bi);
      List.iter (fun child -> rename child !env) dom.Dom.children.(bi)
    in
    rename 0 [];
    (* 3. Final cleanup: chase substitutions in any remaining operand
       (e.g. phis created earlier, or blocks visited before a load's
       definition was replaced — SSA dominance makes this safe). *)
    List.iter
      (fun b ->
        List.iter
          (fun p ->
            p.incoming <- List.map (fun (l, v) -> (l, resolve v)) p.incoming)
          b.phis;
        b.insts <-
          List.map (fun i -> { i with kind = map_instr_values resolve i.kind }) b.insts;
        b.term <- map_term_values resolve b.term)
      f.blocks
  end

let run_module (m : modul) = List.iter run m.funcs
