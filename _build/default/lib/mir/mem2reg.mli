(** Promotion of entry-block allocas to SSA registers (LLVM's mem2reg)
    with {e pruned} phi placement: a phi is only inserted where the
    variable is live-in.  Pruning matters beyond code size — the
    speculator pass derives its save/validate sets from liveness of the
    demoted slots, and dead phis would make dead variables look live at
    synchronization blocks, causing systematic misprediction
    rollbacks.

    An alloca is promoted when it is scalar-sized (1, 4 or 8 bytes),
    accessed with a single uniform type, and its address never escapes
    (no ptradd, call argument, store of the address, or cast). *)

val run : Ir.func -> unit
val run_module : Ir.modul -> unit
