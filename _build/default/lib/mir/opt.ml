(* Classic scalar optimizations over MIR: constant folding with
   algebraic simplification, dead code elimination, and CFG
   simplification (constant branches, unreachable blocks, linear block
   merging).  Optional in the MUTLS pipeline (mutlsc -O): TLS is
   orthogonal to classical optimization, but the paper's LLVM context
   runs these before the speculator pass, and they exercise the IR
   infrastructure from another angle. *)

open Ir

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)
(* ------------------------------------------------------------------ *)

let mask_of = function
  | I1 -> 1L
  | I8 -> 0xFFL
  | I32 -> 0xFFFFFFFFL
  | _ -> -1L

let sext ty v =
  match ty with
  | I1 -> if Int64.logand v 1L = 1L then -1L else 0L
  | I8 -> Int64.shift_right (Int64.shift_left v 56) 56
  | I32 -> Int64.shift_right (Int64.shift_left v 32) 32
  | _ -> v

let as_const = function Const c -> Some c | _ -> None

let fold_binop op ty a b =
  match (a, b) with
  | Cint (x, _), Cint (y, _) -> (
    let wrap v = Some (Cint (Int64.logand v (mask_of ty), ty)) in
    match op with
    | Add -> wrap (Int64.add x y)
    | Sub -> wrap (Int64.sub x y)
    | Mul -> wrap (Int64.mul x y)
    | Sdiv -> if y = 0L then None else wrap (Int64.div (sext ty x) (sext ty y))
    | Srem -> if y = 0L then None else wrap (Int64.rem (sext ty x) (sext ty y))
    | And -> wrap (Int64.logand x y)
    | Or -> wrap (Int64.logor x y)
    | Xor -> wrap (Int64.logxor x y)
    | Shl -> wrap (Int64.shift_left x (Int64.to_int y land 63))
    | Lshr -> wrap (Int64.shift_right_logical x (Int64.to_int y land 63))
    | Ashr -> wrap (Int64.shift_right (sext ty x) (Int64.to_int y land 63))
    | Fadd | Fsub | Fmul | Fdiv -> None)
  | Cfloat x, Cfloat y -> (
    match op with
    | Fadd -> Some (Cfloat (x +. y))
    | Fsub -> Some (Cfloat (x -. y))
    | Fmul -> Some (Cfloat (x *. y))
    | Fdiv -> Some (Cfloat (x /. y))
    | _ -> None)
  | _ -> None

let fold_icmp op ty a b =
  match (a, b) with
  | Cint (x, _), Cint (y, _) ->
    let x = sext ty x and y = sext ty y in
    let r =
      match op with
      | Ieq -> x = y
      | Ine -> x <> y
      | Islt -> x < y
      | Isle -> x <= y
      | Isgt -> x > y
      | Isge -> x >= y
    in
    Some (Cint ((if r then 1L else 0L), I1))
  | _ -> None

let fold_fcmp op a b =
  match (a, b) with
  | Cfloat x, Cfloat y ->
    let r =
      match op with
      | Feq -> x = y
      | Fne -> x <> y
      | Flt -> x < y
      | Fle -> x <= y
      | Fgt -> x > y
      | Fge -> x >= y
    in
    Some (Cint ((if r then 1L else 0L), I1))
  | _ -> None

let fold_cast c from_ty to_ty v =
  match v with
  | Cint (x, _) -> (
    match c with
    | Trunc -> Some (Cint (Int64.logand x (mask_of to_ty), to_ty))
    | Zext -> Some (Cint (x, to_ty))
    | Sext -> Some (Cint (Int64.logand (sext from_ty x) (mask_of to_ty), to_ty))
    | Sitofp -> Some (Cfloat (Int64.to_float (sext from_ty x)))
    | Ptrtoint | Inttoptr | Bitcast -> Some (Cint (x, to_ty))
    | Fptosi -> None)
  | Cfloat x -> (
    match c with
    | Fptosi -> Some (Cint (Int64.logand (Int64.of_float x) (mask_of to_ty), to_ty))
    | Bitcast -> Some (Cint (Int64.bits_of_float x, to_ty))
    | _ -> None)
  | Cnull -> Some Cnull

(* Algebraic identities that need no constant operands on both sides. *)
let simplify_binop op _ty a b =
  let is_zero v = match v with Const (Cint (0L, _)) -> true | _ -> false in
  let is_one v = match v with Const (Cint (1L, _)) -> true | _ -> false in
  match op with
  | Add when is_zero b -> Some a
  | Add when is_zero a -> Some b
  | Sub when is_zero b -> Some a
  | Mul when is_one b -> Some a
  | Mul when is_one a -> Some b
  | Or when is_zero b -> Some a
  | Or when is_zero a -> Some b
  | Xor when is_zero b -> Some a
  | Shl when is_zero b -> Some a
  | Lshr when is_zero b -> Some a
  | Ashr when is_zero b -> Some a
  | _ -> None

(* One folding sweep; returns true if anything changed. *)
let fold_once (f : func) =
  let subst : (reg, value) Hashtbl.t = Hashtbl.create 16 in
  let rec resolve v =
    match v with
    | Reg r -> (
      match Hashtbl.find_opt subst r with Some v' -> resolve v' | None -> v)
    | _ -> v
  in
  let changed = ref false in
  List.iter
    (fun b ->
      let keep = ref [] in
      List.iter
        (fun i ->
          let k = map_instr_values resolve i.kind in
          let folded =
            match k with
            | Binop (op, ty, a, bb) -> (
              match (as_const a, as_const bb) with
              | Some ca, Some cb -> (
                match fold_binop op ty ca cb with
                | Some c -> Some (Const c)
                | None -> None)
              | _ -> simplify_binop op ty a bb)
            | Icmp (op, ty, a, bb) -> (
              match (as_const a, as_const bb) with
              | Some ca, Some cb ->
                Option.map (fun c -> Const c) (fold_icmp op ty ca cb)
              | _ -> None)
            | Fcmp (op, a, bb) -> (
              match (as_const a, as_const bb) with
              | Some ca, Some cb ->
                Option.map (fun c -> Const c) (fold_fcmp op ca cb)
              | _ -> None)
            | Cast (c, t1, t2, v) -> (
              match as_const v with
              | Some cv -> Option.map (fun c' -> Const c') (fold_cast c t1 t2 cv)
              | None -> None)
            | Select (c, a, bb) -> (
              match as_const c with
              | Some (Cint (1L, _)) -> Some a
              | Some (Cint (0L, _)) -> Some bb
              | _ -> None)
            | Ptradd (p, o) when o = i64 0 -> Some p
            | _ -> None
          in
          match folded with
          | Some v when i.ity <> Void ->
            Hashtbl.replace subst i.id v;
            changed := true
          | _ -> keep := { i with kind = k } :: !keep)
        b.insts;
      b.insts <- List.rev !keep;
      b.term <- map_term_values resolve b.term;
      List.iter
        (fun p ->
          p.incoming <- List.map (fun (l, v) -> (l, resolve v)) p.incoming)
        b.phis)
    f.blocks;
  (* a second resolve pass catches uses that were visited before their
     definition was folded (back edges) *)
  if Hashtbl.length subst > 0 then
    List.iter
      (fun b ->
        b.insts <-
          List.map (fun i -> { i with kind = map_instr_values resolve i.kind }) b.insts;
        b.term <- map_term_values resolve b.term;
        List.iter
          (fun p ->
            p.incoming <- List.map (fun (l, v) -> (l, resolve v)) p.incoming)
          b.phis)
      f.blocks;
  !changed

(* ------------------------------------------------------------------ *)
(* Dead code elimination                                                *)
(* ------------------------------------------------------------------ *)

let has_side_effects = function
  | Store (_, _, _) | Call (_, _) -> true
  | Alloca _ -> false (* dead only if unused, like any value *)
  | _ -> false

let dce_once (f : func) =
  let used : (reg, unit) Hashtbl.t = Hashtbl.create 64 in
  let mark v = match v with Reg r -> Hashtbl.replace used r () | _ -> () in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          if has_side_effects i.kind then List.iter mark (instr_uses i.kind))
        b.insts;
      List.iter mark (term_uses b.term);
      List.iter (fun p -> List.iter (fun (_, v) -> mark v) p.incoming) b.phis)
    f.blocks;
  (* transitively mark operands of used pure instructions *)
  let changed_mark = ref true in
  while !changed_mark do
    changed_mark := false;
    List.iter
      (fun b ->
        List.iter
          (fun i ->
            if i.ity <> Void && Hashtbl.mem used i.id then
              List.iter
                (fun v ->
                  match v with
                  | Reg r when not (Hashtbl.mem used r) ->
                    Hashtbl.replace used r ();
                    changed_mark := true
                  | _ -> ())
                (instr_uses i.kind))
          b.insts;
        List.iter
          (fun p ->
            if Hashtbl.mem used p.pid then
              List.iter
                (fun (_, v) ->
                  match v with
                  | Reg r when not (Hashtbl.mem used r) ->
                    Hashtbl.replace used r ();
                    changed_mark := true
                  | _ -> ())
                p.incoming)
          b.phis)
      f.blocks
  done;
  let changed = ref false in
  List.iter
    (fun b ->
      let n0 = List.length b.insts in
      b.insts <-
        List.filter
          (fun i ->
            has_side_effects i.kind || i.ity = Void || Hashtbl.mem used i.id)
          b.insts;
      if List.length b.insts <> n0 then changed := true;
      let p0 = List.length b.phis in
      b.phis <- List.filter (fun p -> Hashtbl.mem used p.pid) b.phis;
      if List.length b.phis <> p0 then changed := true)
    f.blocks;
  !changed

(* ------------------------------------------------------------------ *)
(* CFG simplification                                                   *)
(* ------------------------------------------------------------------ *)

(* Remove an edge's phi incoming when a predecessor goes away. *)
let prune_phi_incoming (f : func) =
  let cfg = Cfg.of_func f in
  Array.iteri
    (fun bi b ->
      let pred_names =
        List.map (fun pi -> cfg.Cfg.blocks.(pi).bname) cfg.Cfg.preds.(bi)
      in
      List.iter
        (fun p ->
          p.incoming <-
            List.filter (fun (l, _) -> List.mem l pred_names) p.incoming)
        b.phis)
    cfg.Cfg.blocks

let simplify_cfg_once (f : func) =
  let changed = ref false in
  (* 1. constant conditional branches *)
  List.iter
    (fun b ->
      match b.term with
      | Cbr (Const (Cint (1L, _)), l, _) ->
        b.term <- Br l;
        changed := true
      | Cbr (Const (Cint (0L, _)), _, l) ->
        b.term <- Br l;
        changed := true
      | Cbr (c, l1, l2) when l1 = l2 ->
        ignore c;
        b.term <- Br l1;
        (* the target's phis held two incomings from this block *)
        let t = find_block_exn f l1 in
        List.iter
          (fun p ->
            let seen = Hashtbl.create 4 in
            p.incoming <-
              List.filter
                (fun (l, _) ->
                  if Hashtbl.mem seen l then false
                  else begin
                    Hashtbl.replace seen l ();
                    true
                  end)
                p.incoming)
          t.phis;
        changed := true
      | Switch (Const (Cint (v, _)), d, cases) ->
        let target =
          match List.assoc_opt v cases with Some l -> l | None -> d
        in
        b.term <- Br target;
        changed := true
      | _ -> ())
    f.blocks;
  (* 2. drop unreachable blocks *)
  let reachable = Hashtbl.create 32 in
  let rec visit name =
    if not (Hashtbl.mem reachable name) then begin
      Hashtbl.replace reachable name ();
      List.iter visit (term_succs (find_block_exn f name).term)
    end
  in
  (match f.blocks with b :: _ -> visit b.bname | [] -> ());
  let n0 = List.length f.blocks in
  f.blocks <- List.filter (fun b -> Hashtbl.mem reachable b.bname) f.blocks;
  if List.length f.blocks <> n0 then changed := true;
  prune_phi_incoming f;
  (* 3. merge a block into its unique successor when it is that
     successor's unique predecessor and the successor has no phis *)
  let cfg = Cfg.of_func f in
  let merged = Hashtbl.create 8 in
  Array.iteri
    (fun bi b ->
      match (b.term, cfg.Cfg.succs.(bi)) with
      | Br _, [ si ]
        when (not (Hashtbl.mem merged b.bname))
             && (not (Hashtbl.mem merged cfg.Cfg.blocks.(si).bname))
             && si <> bi
             && List.length cfg.Cfg.preds.(si) = 1
             && cfg.Cfg.blocks.(si).phis = []
             && si <> 0 ->
        let s = cfg.Cfg.blocks.(si) in
        b.insts <- b.insts @ s.insts;
        b.term <- s.term;
        (* successors of s may have phis naming s: relabel to b *)
        List.iter
          (fun l ->
            let t = find_block_exn f l in
            List.iter
              (fun p ->
                p.incoming <-
                  List.map
                    (fun (pl, v) -> if pl = s.bname then (b.bname, v) else (pl, v))
                    p.incoming)
              t.phis)
          (term_succs s.term);
        Hashtbl.replace merged s.bname ();
        changed := true
      | _ -> ())
    cfg.Cfg.blocks;
  if Hashtbl.length merged > 0 then
    f.blocks <- List.filter (fun b -> not (Hashtbl.mem merged b.bname)) f.blocks;
  !changed

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let run_func (f : func) =
  let rec iterate budget =
    if budget > 0 then begin
      let c1 = fold_once f in
      let c2 = dce_once f in
      let c3 = simplify_cfg_once f in
      if c1 || c2 || c3 then iterate (budget - 1)
    end
  in
  iterate 8

(* Optimize every function; the module stays verified. *)
let run_module (m : modul) =
  List.iter run_func m.funcs;
  Verify.check_module m
