(** Classic scalar optimizations over MIR: constant folding with
    algebraic simplification, dead code elimination, and CFG
    simplification (constant branches, unreachable-block removal,
    linear block merging).  Optional in the MUTLS pipeline
    ([mutlsc -O]); the paper's LLVM context runs the equivalents before
    the speculator pass. *)

val fold_once : Ir.func -> bool
(** One constant-folding sweep; true if anything changed. *)

val dce_once : Ir.func -> bool
val simplify_cfg_once : Ir.func -> bool

val run_func : Ir.func -> unit
(** Iterate the three passes to a fixpoint (bounded). *)

val run_module : Ir.modul -> unit
(** Optimize every function and re-verify the module. *)
