(* Parser for the textual MIR form emitted by {!Printer}: the two
   round-trip (print -> parse -> print is the identity on verified
   modules), so IR dumps can be edited and re-run through mutlsc. *)

open Ir

exception Error of string

let fail line fmt =
  Printf.ksprintf (fun s -> raise (Error (Printf.sprintf "line %d: %s" line s))) fmt

(* ------------------------------------------------------------------ *)
(* Small string scanners                                               *)
(* ------------------------------------------------------------------ *)

let ty_of_string ln = function
  | "i1" -> I1
  | "i8" -> I8
  | "i32" -> I32
  | "i64" -> I64
  | "f64" -> F64
  | "ptr" -> Ptr
  | "void" -> Void
  | s -> fail ln "unknown type %s" s

let binop_of_string = function
  | "add" -> Some Add | "sub" -> Some Sub | "mul" -> Some Mul
  | "sdiv" -> Some Sdiv | "srem" -> Some Srem
  | "and" -> Some And | "or" -> Some Or | "xor" -> Some Xor
  | "shl" -> Some Shl | "lshr" -> Some Lshr | "ashr" -> Some Ashr
  | "fadd" -> Some Fadd | "fsub" -> Some Fsub | "fmul" -> Some Fmul
  | "fdiv" -> Some Fdiv
  | _ -> None

let icmp_of_string ln = function
  | "eq" -> Ieq | "ne" -> Ine | "slt" -> Islt | "sle" -> Isle
  | "sgt" -> Isgt | "sge" -> Isge
  | s -> fail ln "unknown icmp predicate %s" s

let fcmp_of_string ln = function
  | "feq" -> Feq | "fne" -> Fne | "flt" -> Flt | "fle" -> Fle
  | "fgt" -> Fgt | "fge" -> Fge
  | s -> fail ln "unknown fcmp predicate %s" s

let cast_of_string = function
  | "trunc" -> Some Trunc | "zext" -> Some Zext | "sext" -> Some Sext
  | "fptosi" -> Some Fptosi | "sitofp" -> Some Sitofp
  | "ptrtoint" -> Some Ptrtoint | "inttoptr" -> Some Inttoptr
  | "bitcast" -> Some Bitcast
  | _ -> None

(* Split on top-level ", " (no nesting in this format). *)
let split_commas s =
  if String.trim s = "" then []
  else String.split_on_char ',' s |> List.map String.trim

let value_of_string ln s =
  let s = String.trim s in
  if s = "null" then Const Cnull
  else if String.length s > 4 && String.sub s 0 4 = "%arg" then
    Arg (int_of_string (String.sub s 4 (String.length s - 4)))
  else if String.length s > 1 && s.[0] = '%' then
    Reg (int_of_string (String.sub s 1 (String.length s - 1)))
  else if String.length s > 4 && String.sub s 0 4 = "@fn:" then
    Funcref (String.sub s 4 (String.length s - 4))
  else if String.length s > 1 && s.[0] = '@' then
    Global (String.sub s 1 (String.length s - 1))
  else
    match String.index_opt s ':' with
    | Some i ->
      let n = Int64.of_string (String.sub s 0 i) in
      let t = ty_of_string ln (String.sub s (i + 1) (String.length s - i - 1)) in
      Const (Cint (n, t))
    | None -> (
      try Const (Cfloat (float_of_string s))
      with _ -> fail ln "malformed value %S" s)

(* ------------------------------------------------------------------ *)
(* Line-level parsing                                                  *)
(* ------------------------------------------------------------------ *)

let words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

(* "call @name(a, b)" -> name, "a, b" *)
let split_call ln s =
  match (String.index_opt s '(', String.rindex_opt s ')') with
  | Some o, Some c when c > o ->
    let name = String.trim (String.sub s 0 o) in
    (name, String.sub s (o + 1) (c - o - 1))
  | _ -> fail ln "malformed call %S" s

let parse_instr_rhs ln (rhs : string) : instr_kind =
  let v = value_of_string ln in
  match words rhs with
  | "icmp" :: pred :: ty :: rest ->
    let ops = split_commas (String.concat " " rest) in
    (match ops with
    | [ a; b ] -> Icmp (icmp_of_string ln pred, ty_of_string ln ty, v a, v b)
    | _ -> fail ln "icmp arity")
  | "fcmp" :: pred :: rest -> (
    match split_commas (String.concat " " rest) with
    | [ a; b ] -> Fcmp (fcmp_of_string ln pred, v a, v b)
    | _ -> fail ln "fcmp arity")
  | [ "alloca"; n ] -> Alloca (int_of_string n)
  | "load" :: ty :: rest -> (
    (* "load ty, addr" — the comma may stick to the type *)
    let ty = if String.length ty > 0 && ty.[String.length ty - 1] = ',' then
        String.sub ty 0 (String.length ty - 1) else ty in
    match split_commas (String.concat " " rest) with
    | [ a ] -> Load (ty_of_string ln ty, v a)
    | _ -> fail ln "load arity")
  | "store" :: ty :: rest -> (
    match split_commas (String.concat " " rest) with
    | [ x; a ] -> Store (ty_of_string ln ty, v x, v a)
    | _ -> fail ln "store arity")
  | "ptradd" :: rest -> (
    match split_commas (String.concat " " rest) with
    | [ a; o ] -> Ptradd (v a, v o)
    | _ -> fail ln "ptradd arity")
  | "select" :: rest -> (
    match split_commas (String.concat " " rest) with
    | [ c; a; b ] -> Select (v c, v a, v b)
    | _ -> fail ln "select arity")
  | "call" :: _ ->
    let callee, args = split_call ln rhs in
    let name =
      match words callee with
      | [ "call"; n ] when String.length n > 1 && n.[0] = '@' ->
        String.sub n 1 (String.length n - 1)
      | _ -> fail ln "malformed call head %S" callee
    in
    Call (name, List.map v (split_commas args))
  | op :: ty :: rest when binop_of_string op <> None -> (
    match split_commas (String.concat " " rest) with
    | [ a; b ] ->
      Binop (Option.get (binop_of_string op), ty_of_string ln ty, v a, v b)
    | _ -> fail ln "binop arity")
  | op :: t1 :: rest when cast_of_string op <> None -> (
    (* "<cast> t1 v to t2" *)
    match rest with
    | [ x; "to"; t2 ] ->
      Cast (Option.get (cast_of_string op), ty_of_string ln t1,
            ty_of_string ln t2, v x)
    | _ -> fail ln "cast shape")
  | _ -> fail ln "unrecognised instruction %S" rhs

let parse_term ln (s : string) : terminator =
  let v = value_of_string ln in
  match words s with
  | [ "br"; l ] -> Br l
  | "cbr" :: rest -> (
    match split_commas (String.concat " " rest) with
    | [ c; l1; l2 ] -> Cbr (v c, l1, l2)
    | _ -> fail ln "cbr arity")
  | [ "ret"; "void" ] -> Ret None
  | "ret" :: rest -> Ret (Some (v (String.concat " " rest)))
  | [ "unreachable" ] -> Unreachable
  | "switch" :: _ -> (
    (* switch V, default D [n -> l; ...] *)
    match (String.index_opt s '[', String.rindex_opt s ']') with
    | Some o, Some c ->
      let head = String.sub s 0 o in
      let body = String.sub s (o + 1) (c - o - 1) in
      let value, default =
        match split_commas (String.sub head 6 (String.length head - 6)) with
        | [ x; d ] -> (
          match words d with
          | [ "default"; dl ] -> (v x, dl)
          | _ -> fail ln "switch default")
        | _ -> fail ln "switch head"
      in
      let cases =
        String.split_on_char ';' body
        |> List.filter (fun p -> String.trim p <> "")
        |> List.map (fun p ->
               match words p with
               | [ n; "->"; l ] -> (Int64.of_string n, l)
               | _ -> fail ln "switch case %S" p)
      in
      Switch (value, default, cases)
    | _ -> fail ln "switch shape")
  | _ -> fail ln "unrecognised terminator %S" s

(* "%5 = phi i64 [%3, a], [0:i64, b]" *)
let parse_phi ln (lhs : reg) (rhs : string) : phi =
  match words rhs with
  | "phi" :: ty :: rest ->
    let pty = ty_of_string ln ty in
    let body = String.concat " " rest in
    (* split "[v, l], [v, l]" on "], " *)
    let parts =
      String.split_on_char '[' body
      |> List.filter_map (fun p ->
             let p = String.trim p in
             if p = "" then None
             else
               let p =
                 match String.index_opt p ']' with
                 | Some i -> String.sub p 0 i
                 | None -> fail ln "phi incoming %S" p
               in
               match split_commas p with
               | [ v; l ] -> Some (l, value_of_string ln v)
               | _ -> fail ln "phi incoming %S" p)
    in
    { pid = lhs; pty; incoming = parts }
  | _ -> fail ln "malformed phi %S" rhs

(* ------------------------------------------------------------------ *)
(* Module-level parsing                                                *)
(* ------------------------------------------------------------------ *)

let parse_ginit ln (s : string) =
  match words s with
  | [] -> Zero
  | "words" :: ws -> Words_init (Array.of_list (List.map Int64.of_string ws))
  | "floats" :: fs -> Floats_init (Array.of_list (List.map float_of_string fs))
  | [ "bytes"; hex ] ->
    let n = String.length hex / 2 in
    Bytes_init
      (String.init n (fun i ->
           Char.chr (int_of_string ("0x" ^ String.sub hex (2 * i) 2))))
  | _ -> fail ln "malformed global initializer %S" s

let parse (src : string) : modul =
  let m = create_module () in
  let lines = String.split_on_char '\n' src in
  let cur_func : func option ref = ref None in
  let cur_block : block option ref = ref None in
  let finish_func () =
    (match !cur_func with
    | Some f ->
      (* reconstruct next_reg *)
      let maxr = ref (-1) in
      List.iter
        (fun b ->
          List.iter (fun p -> if p.pid > !maxr then maxr := p.pid) b.phis;
          List.iter (fun i -> if i.id > !maxr then maxr := i.id) b.insts)
        f.blocks;
      f.next_reg <- !maxr + 1
    | None -> ());
    cur_func := None;
    cur_block := None
  in
  List.iteri
    (fun idx raw ->
      let ln = idx + 1 in
      let line = String.trim raw in
      if line = "" then ()
      else if String.length line > 7 && String.sub line 0 7 = "global " then begin
        (* global @name [N bytes][ = init] *)
        match (String.index_opt line '[', String.index_opt line ']') with
        | Some o, Some c ->
          let name =
            match words (String.sub line 7 (o - 7)) with
            | [ n ] when n.[0] = '@' -> String.sub n 1 (String.length n - 1)
            | _ -> fail ln "malformed global name"
          in
          let size =
            match words (String.sub line (o + 1) (c - o - 1)) with
            | [ n; "bytes" ] -> int_of_string n
            | _ -> fail ln "malformed global size"
          in
          let init =
            let rest = String.trim (String.sub line (c + 1) (String.length line - c - 1)) in
            if rest = "" then Zero
            else if String.length rest > 1 && rest.[0] = '=' then
              parse_ginit ln (String.trim (String.sub rest 1 (String.length rest - 1)))
            else fail ln "malformed global tail %S" rest
          in
          add_global m { gname = name; gsize = size; ginit = init }
        | _ -> fail ln "malformed global"
      end
      else if String.length line > 8 && String.sub line 0 8 = "declare " then begin
        let head, args = split_call ln line in
        match words head with
        | [ "declare"; ret; n ] when n.[0] = '@' ->
          add_extern m
            { ename = String.sub n 1 (String.length n - 1);
              eret = ty_of_string ln ret;
              eparams = List.map (ty_of_string ln) (split_commas args) }
        | _ -> fail ln "malformed declare"
      end
      else if String.length line > 7 && String.sub line 0 7 = "define " then begin
        finish_func ();
        let head, args = split_call ln line in
        match words head with
        | [ "define"; ret; n ] when n.[0] = '@' ->
          let params =
            split_commas args
            |> List.map (fun p ->
                   (* "%argK name:ty" *)
                   match words p with
                   | [ _; nt ] -> (
                     match String.index_opt nt ':' with
                     | Some i ->
                       ( String.sub nt 0 i,
                         ty_of_string ln
                           (String.sub nt (i + 1) (String.length nt - i - 1)) )
                     | None -> fail ln "malformed parameter %S" p)
                   | _ -> fail ln "malformed parameter %S" p)
          in
          let f =
            { fname = String.sub n 1 (String.length n - 1);
              params;
              ret = ty_of_string ln ret;
              blocks = [];
              next_reg = 0;
              reg_tys = Hashtbl.create 32 }
          in
          m.funcs <- m.funcs @ [ f ];
          cur_func := Some f
        | _ -> fail ln "malformed define"
      end
      else if line = "}" then finish_func ()
      else if String.length line > 1 && line.[String.length line - 1] = ':' then begin
        match !cur_func with
        | None -> fail ln "block label outside a function"
        | Some f ->
          let b =
            { bname = String.sub line 0 (String.length line - 1);
              phis = []; insts = []; term = Unreachable }
          in
          f.blocks <- f.blocks @ [ b ];
          cur_block := Some b
      end
      else begin
        match (!cur_func, !cur_block) with
        | Some f, Some b -> (
          (* "%N = rhs" | instruction | terminator *)
          let lhs, rhs =
            if String.length line > 1 && line.[0] = '%' then
              match String.index_opt line '=' with
              | Some i
                when (* avoid matching "==" — not produced by the printer *)
                     i + 1 < String.length line && line.[i + 1] = ' ' ->
                let l = String.trim (String.sub line 0 i) in
                let r = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
                (Some (int_of_string (String.sub l 1 (String.length l - 1))), r)
              | _ -> (None, line)
            else (None, line)
          in
          match (lhs, words rhs) with
          | Some r, "phi" :: _ ->
            let p = parse_phi ln r rhs in
            Hashtbl.replace f.reg_tys r p.pty;
            b.phis <- b.phis @ [ p ]
          | Some r, _ ->
            let kind = parse_instr_rhs ln rhs in
            (* result type: recover from the instruction shape *)
            let ity =
              match kind with
              | Binop (_, t, _, _) -> t
              | Icmp _ | Fcmp _ -> I1
              | Alloca _ | Ptradd _ -> Ptr
              | Load (t, _) -> t
              | Cast (_, _, t, _) -> t
              | Select (_, a, _) -> (
                (* infer from an operand we can type *)
                match a with
                | Const (Cint (_, t)) -> t
                | Const (Cfloat _) -> F64
                | Const Cnull | Global _ | Funcref _ -> Ptr
                | Reg rr -> (
                  match Hashtbl.find_opt f.reg_tys rr with
                  | Some t -> t
                  | None -> fail ln "cannot type select result")
                | Arg i -> snd (List.nth f.params i))
              | Call (name, _) -> (
                (* known at the end of the module; for runtime calls use
                   a suffix heuristic matching the pass conventions *)
                match find_func m name with
                | Some callee -> callee.ret
                | None -> (
                  match find_extern m name with
                  | Some e -> e.eret
                  | None ->
                    if Filename.check_suffix name "_f64" then F64
                    else if Filename.check_suffix name "_ptr" then Ptr
                    else I64))
              | Store _ -> Void
            in
            Hashtbl.replace f.reg_tys r ity;
            b.insts <- b.insts @ [ { id = r; ity; kind } ]
          | None, _ -> (
            (* a terminator or a void instruction *)
            match words rhs with
            | ("br" | "cbr" | "ret" | "switch" | "unreachable") :: _ ->
              b.term <- parse_term ln rhs
            | _ ->
              b.insts <- b.insts @ [ { id = -1; ity = Void; kind = parse_instr_rhs ln rhs } ]))
        | _ -> fail ln "statement outside a function body: %S" line
      end)
    lines;
  finish_func ();
  (* Second phase: calls parsed before their callee's definition were
     typed by heuristic; now every function is known, fix them up. *)
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          b.insts <-
            List.map
              (fun i ->
                match i.kind with
                | Call (name, _) when i.ity <> Void -> (
                  match find_func m name with
                  | Some callee when callee.ret <> i.ity && callee.ret <> Void ->
                    Hashtbl.replace f.reg_tys i.id callee.ret;
                    { i with ity = callee.ret }
                  | _ -> i)
                | _ -> i)
              b.insts)
        f.blocks)
    m.funcs;
  m
