(** Parser for the textual MIR form emitted by {!Printer}; the two
    round-trip (print -> parse -> print is the identity on verified
    modules), so IR dumps can be edited and fed back through mutlsc. *)

exception Error of string

val parse : string -> Ir.modul
(** @raise Error with a line-numbered message on malformed input.  The
    result is not implicitly verified — run {!Verify.check_module}. *)
