(* Human-readable textual form of MIR, LLVM-flavoured. Used by the
   `mutlsc --dump-ir` CLI and by tests that snapshot pass output. *)

open Ir

let const_to_string = function
  | Cint (n, t) -> Printf.sprintf "%Ld:%s" n (ty_to_string t)
  | Cfloat x ->
    (* prefer the readable form when it is exact, hex-floats otherwise *)
    let g = Printf.sprintf "%g" x in
    if float_of_string g = x then g else Printf.sprintf "%h" x
  | Cnull -> "null" 

let value_to_string = function
  | Const c -> const_to_string c
  | Reg r -> Printf.sprintf "%%%d" r
  | Arg i -> Printf.sprintf "%%arg%d" i
  | Global g -> "@" ^ g
  | Funcref f -> "@fn:" ^ f

let binop_to_string = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Sdiv -> "sdiv" | Srem -> "srem"
  | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let icmp_to_string = function
  | Ieq -> "eq" | Ine -> "ne" | Islt -> "slt" | Isle -> "sle"
  | Isgt -> "sgt" | Isge -> "sge"

let fcmp_to_string = function
  | Feq -> "feq" | Fne -> "fne" | Flt -> "flt" | Fle -> "fle"
  | Fgt -> "fgt" | Fge -> "fge"

let cast_to_string = function
  | Trunc -> "trunc" | Zext -> "zext" | Sext -> "sext"
  | Fptosi -> "fptosi" | Sitofp -> "sitofp"
  | Ptrtoint -> "ptrtoint" | Inttoptr -> "inttoptr" | Bitcast -> "bitcast"

let instr_to_string i =
  let v = value_to_string in
  let lhs = if i.ity = Void then "" else Printf.sprintf "%%%d = " i.id in
  let rhs =
    match i.kind with
    | Binop (op, t, a, b) ->
      Printf.sprintf "%s %s %s, %s" (binop_to_string op) (ty_to_string t) (v a) (v b)
    | Icmp (op, t, a, b) ->
      Printf.sprintf "icmp %s %s %s, %s" (icmp_to_string op) (ty_to_string t) (v a) (v b)
    | Fcmp (op, a, b) -> Printf.sprintf "fcmp %s %s, %s" (fcmp_to_string op) (v a) (v b)
    | Alloca n -> Printf.sprintf "alloca %d" n
    | Load (t, a) -> Printf.sprintf "load %s, %s" (ty_to_string t) (v a)
    | Store (t, x, a) -> Printf.sprintf "store %s %s, %s" (ty_to_string t) (v x) (v a)
    | Ptradd (a, o) -> Printf.sprintf "ptradd %s, %s" (v a) (v o)
    | Call (f, args) ->
      Printf.sprintf "call @%s(%s)" f (String.concat ", " (List.map v args))
    | Cast (c, t1, t2, x) ->
      Printf.sprintf "%s %s %s to %s" (cast_to_string c) (ty_to_string t1) (v x)
        (ty_to_string t2)
    | Select (c, a, b) -> Printf.sprintf "select %s, %s, %s" (v c) (v a) (v b)
  in
  lhs ^ rhs

let term_to_string t =
  let v = value_to_string in
  match t with
  | Br l -> "br " ^ l
  | Cbr (c, l1, l2) -> Printf.sprintf "cbr %s, %s, %s" (v c) l1 l2
  | Switch (x, d, cases) ->
    let cs =
      List.map (fun (n, l) -> Printf.sprintf "%Ld -> %s" n l) cases
      |> String.concat "; "
    in
    Printf.sprintf "switch %s, default %s [%s]" (v x) d cs
  | Ret (Some x) -> "ret " ^ v x
  | Ret None -> "ret void"
  | Unreachable -> "unreachable"

let phi_to_string p =
  let inc =
    List.map (fun (l, x) -> Printf.sprintf "[%s, %s]" (value_to_string x) l) p.incoming
    |> String.concat ", "
  in
  Printf.sprintf "%%%d = phi %s %s" p.pid (ty_to_string p.pty) inc

let block_to_buffer buf b =
  Buffer.add_string buf (b.bname ^ ":\n");
  List.iter (fun p -> Buffer.add_string buf ("  " ^ phi_to_string p ^ "\n")) b.phis;
  List.iter (fun i -> Buffer.add_string buf ("  " ^ instr_to_string i ^ "\n")) b.insts;
  Buffer.add_string buf ("  " ^ term_to_string b.term ^ "\n")

let func_to_string f =
  let buf = Buffer.create 1024 in
  let params =
    List.mapi (fun i (n, t) -> Printf.sprintf "%%arg%d %s:%s" i n (ty_to_string t)) f.params
    |> String.concat ", "
  in
  Buffer.add_string buf
    (Printf.sprintf "define %s @%s(%s) {\n" (ty_to_string f.ret) f.fname params);
  List.iter (fun b -> block_to_buffer buf b) f.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let ginit_to_string = function
  | Zero -> ""
  | Words_init ws ->
    " = words "
    ^ String.concat " " (Array.to_list (Array.map Int64.to_string ws))
  | Floats_init fs ->
    " = floats "
    ^ String.concat " " (Array.to_list (Array.map (Printf.sprintf "%h") fs))
  | Bytes_init s ->
    " = bytes "
    ^ String.concat "" (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
        (List.of_seq (String.to_seq s)))

let module_to_string m =
  let buf = Buffer.create 4096 in
  List.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "global @%s [%d bytes]%s\n" g.gname g.gsize
           (ginit_to_string g.ginit)))
    m.globals;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "declare %s @%s(%s)\n" (ty_to_string e.eret) e.ename
           (String.concat ", " (List.map ty_to_string e.eparams))))
    m.externs;
  List.iter (fun f -> Buffer.add_string buf ("\n" ^ func_to_string f)) m.funcs;
  Buffer.contents buf
