(** Human-readable textual form of MIR, LLVM-flavoured.  Used by
    [mutlsc dump] and by tests that snapshot pass output. *)

val value_to_string : Ir.value -> string
val instr_to_string : Ir.instr -> string
val term_to_string : Ir.terminator -> string
val phi_to_string : Ir.phi -> string
val ginit_to_string : Ir.ginit -> string
val func_to_string : Ir.func -> string
val module_to_string : Ir.modul -> string
