(* Structural and SSA well-formedness checks.  Run after every
   front-end and after the speculator pass; errors here indicate a
   compiler bug, so messages are precise about location. *)

open Ir
module IntSet = Set.Make (Int)

exception Invalid of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let check_func (m : modul) (f : func) =
  let cfg =
    try Cfg.of_func f
    with Invalid_argument msg -> fail "%s: %s" f.fname msg
  in
  let dom = Dom.compute cfg in
  (* 1. Single assignment; collect definition site of each reg. *)
  let def_site : (reg, int * int) Hashtbl.t = Hashtbl.create 64 in
  (* reg -> (block index, position); phis are position -1 *)
  Array.iteri
    (fun bi b ->
      List.iter
        (fun p ->
          if Hashtbl.mem def_site p.pid then
            fail "%s: register %%%d multiply defined" f.fname p.pid;
          Hashtbl.replace def_site p.pid (bi, -1))
        b.phis;
      List.iteri
        (fun pos i ->
          if i.ity <> Void then begin
            if Hashtbl.mem def_site i.id then
              fail "%s: register %%%d multiply defined" f.fname i.id;
            Hashtbl.replace def_site i.id (bi, pos)
          end)
        b.insts)
    cfg.Cfg.blocks;
  (* 2. Types and dominance of uses. *)
  let vty v = value_ty m f v in
  let check_use ~bi ~pos v =
    match v with
    | Reg r -> (
      match Hashtbl.find_opt def_site r with
      | None -> fail "%s: use of undefined register %%%d" f.fname r
      | Some (dbi, dpos) ->
        if dbi = bi then begin
          if dpos >= pos then
            fail "%s/%s: register %%%d used before definition" f.fname
              cfg.Cfg.blocks.(bi).bname r
        end
        else if not (Dom.dominates dom dbi bi) then
          fail "%s/%s: use of %%%d not dominated by its definition" f.fname
            cfg.Cfg.blocks.(bi).bname r)
    | Arg i ->
      if i < 0 || i >= List.length f.params then
        fail "%s: reference to argument %d out of range" f.fname i
    | Global g ->
      if find_global m g = None then fail "%s: unknown global @%s" f.fname g
    | Funcref fn ->
      if find_func m fn = None && find_extern m fn = None then
        fail "%s: reference to unknown function @%s" f.fname fn
    | Const _ -> ()
  in
  let expect what t1 t2 =
    if t1 <> t2 then
      fail "%s: %s: expected %s, got %s" f.fname what (ty_to_string t1)
        (ty_to_string t2)
  in
  Array.iteri
    (fun bi b ->
      (* Phi incoming labels must match predecessors exactly. *)
      let pred_names =
        List.map (fun pi -> cfg.Cfg.blocks.(pi).bname) cfg.Cfg.preds.(bi)
        |> List.sort compare
      in
      List.iter
        (fun p ->
          let labels = List.map fst p.incoming |> List.sort compare in
          if labels <> pred_names then
            fail "%s/%s: phi %%%d incoming %s do not match predecessors %s"
              f.fname b.bname p.pid
              (String.concat "," labels)
              (String.concat "," pred_names);
          List.iter
            (fun (_, v) ->
              match v with
              | Reg r ->
                if not (Hashtbl.mem def_site r) then
                  fail "%s: phi %%%d uses undefined %%%d" f.fname p.pid r
              | _ -> ())
            p.incoming)
        b.phis;
      List.iteri
        (fun pos i ->
          List.iter (check_use ~bi ~pos) (instr_uses i.kind);
          match i.kind with
          | Binop (op, t, a, c) ->
            let float_op = match op with Fadd | Fsub | Fmul | Fdiv -> true | _ -> false in
            if float_op then expect "fbinop type" F64 t
            else if t = F64 || t = Void || t = Ptr then
              fail "%s: integer binop at %s type" f.fname (ty_to_string t);
            expect "binop lhs" t (vty a);
            expect "binop rhs" t (vty c);
            expect "binop result" t i.ity
          | Icmp (_, t, a, c) ->
            expect "icmp lhs" t (vty a);
            expect "icmp rhs" t (vty c);
            expect "icmp result" I1 i.ity
          | Fcmp (_, a, c) ->
            expect "fcmp lhs" F64 (vty a);
            expect "fcmp rhs" F64 (vty c);
            expect "fcmp result" I1 i.ity
          | Alloca n ->
            if n <= 0 then fail "%s: alloca of size %d" f.fname n;
            if bi <> 0 then fail "%s: alloca outside entry block" f.fname;
            expect "alloca result" Ptr i.ity
          | Load (t, a) ->
            expect "load address" Ptr (vty a);
            expect "load result" t i.ity
          | Store (t, v, a) ->
            expect "store value" t (vty v);
            expect "store address" Ptr (vty a);
            expect "store result" Void i.ity
          | Ptradd (a, o) ->
            expect "ptradd base" Ptr (vty a);
            expect "ptradd offset" I64 (vty o);
            expect "ptradd result" Ptr i.ity
          | Call (name, args) ->
            if is_source_intrinsic name || is_runtime_call name then ()
            else (
              match (find_func m name, find_extern m name) with
              | Some callee, _ ->
                if List.length args <> List.length callee.params then
                  fail "%s: call @%s with %d args, expected %d" f.fname name
                    (List.length args)
                    (List.length callee.params);
                List.iteri
                  (fun k a ->
                    expect
                      (Printf.sprintf "call @%s arg %d" name k)
                      (snd (List.nth callee.params k))
                      (vty a))
                  args;
                expect ("call @" ^ name ^ " result") callee.ret i.ity
              | None, Some e ->
                if e.eparams <> [] && List.length args <> List.length e.eparams
                then
                  fail "%s: call extern @%s with %d args, expected %d" f.fname
                    name (List.length args) (List.length e.eparams);
                expect ("call @" ^ name ^ " result") e.eret i.ity
              | None, None -> fail "%s: call to unknown function @%s" f.fname name)
          | Cast (c, t1, t2, v) -> (
            expect "cast operand" t1 (vty v);
            expect "cast result" t2 i.ity;
            match c with
            | Trunc ->
              if ty_size t2 >= ty_size t1 then fail "%s: widening trunc" f.fname
            | Zext | Sext ->
              if ty_size t2 < ty_size t1 then fail "%s: narrowing ext" f.fname
            | Fptosi -> expect "fptosi source" F64 t1
            | Sitofp -> expect "sitofp result" F64 t2
            | Ptrtoint -> expect "ptrtoint source" Ptr t1
            | Inttoptr -> expect "inttoptr result" Ptr t2
            | Bitcast ->
              if ty_size t1 <> ty_size t2 then fail "%s: bitcast size" f.fname)
          | Select (c, a, d) ->
            expect "select cond" I1 (vty c);
            expect "select lhs" i.ity (vty a);
            expect "select rhs" i.ity (vty d))
        b.insts;
      List.iter (check_use ~bi ~pos:max_int) (term_uses b.term);
      (match b.term with
      | Ret (Some v) -> expect "return value" f.ret (vty v)
      | Ret None ->
        if f.ret <> Void then fail "%s: ret void from non-void" f.fname
      | Cbr (c, _, _) -> expect "cbr condition" I1 (vty c)
      | Switch (v, _, _) ->
        let t = vty v in
        if t <> I64 && t <> I32 then fail "%s: switch on %s" f.fname (ty_to_string t)
      | Br _ | Unreachable -> ());
      List.iter
        (fun l ->
          if find_block f l = None then
            fail "%s/%s: branch to unknown block %s" f.fname b.bname l)
        (term_succs b.term))
    cfg.Cfg.blocks;
  if (entry_block f).phis <> [] then fail "%s: entry block has phis" f.fname

let check_module (m : modul) =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (f : func) ->
      if Hashtbl.mem seen f.fname then fail "duplicate function @%s" f.fname;
      Hashtbl.replace seen f.fname ())
    m.funcs;
  List.iter (check_func m) m.funcs

let check_module_result m =
  match check_module m with
  | () -> Ok ()
  | exception Invalid msg -> Error msg
