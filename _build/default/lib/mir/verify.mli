(** Structural and SSA well-formedness checks: single assignment,
    defs dominate uses, phi incoming lists match predecessors exactly,
    operand and result types, allocas confined to the entry block,
    branch targets and callees resolve.  Run after every front-end and
    after the speculator pass; a failure indicates a compiler bug. *)

exception Invalid of string

val check_func : Ir.modul -> Ir.func -> unit
(** @raise Invalid with a precise location message. *)

val check_module : Ir.modul -> unit
val check_module_result : Ir.modul -> (unit, string) result
