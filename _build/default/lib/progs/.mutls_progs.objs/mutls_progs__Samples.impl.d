lib/progs/samples.ml: Builder Int64 Ir List Mutls_interp Mutls_mir
