lib/progs/samples.mli: Mutls_mir
