(* Small hand-built MIR programs used by tests, the debugger binary and
   the quickstart example.  They exercise the speculator pass without
   going through a front-end. *)

open Mutls_mir

(* The paper's Figure-1 shape: the parent executes S1 while a
   speculative thread executes S2 from the join point.

     @data : n i64 cells
     work():            main():
       fork(0, model)     call work()
       S1: data[i] = 3*i+1  for i in [0, n/2)
       join(0)              ret sum((i+1)*data[i])
       S2: data[i] = 7*i+1  for i in [n/2, n)
       ret *)
let figure1 ?(n = 64) ?(model = 0) () =
  let open Builder in
  let m = Ir.create_module () in
  Ir.add_global m { Ir.gname = "data"; gsize = 8 * n; ginit = Ir.Zero };
  let b = create m ~name:"work" ~params:[] ~ret:Ir.Void in
  let entry = add_block b "entry" in
  let s1 = add_block b "s1.loop" in
  let s1body = add_block b "s1.body" in
  let joinpt = add_block b "joinpt" in
  let s2 = add_block b "s2.loop" in
  let s2body = add_block b "s2.body" in
  let done_ = add_block b "done" in
  position b entry;
  mutls_fork b ~point:0 ~model;
  br b s1.Ir.bname;
  position b s1;
  let i1 = phi b Ir.I64 [ (entry.Ir.bname, Ir.i64 0); (s1body.Ir.bname, Ir.i64 0) ] in
  let c1 = icmp b Ir.Islt Ir.I64 i1 (Ir.i64 (n / 2)) in
  cbr b c1 s1body.Ir.bname joinpt.Ir.bname;
  position b s1body;
  let v1 = add_ b (mul_ b i1 (Ir.i64 3)) (Ir.i64 1) in
  let addr1 = ptradd b (Ir.Global "data") (mul_ b i1 (Ir.i64 8)) in
  store b Ir.I64 v1 addr1;
  let i1' = add_ b i1 (Ir.i64 1) in
  (match s1.Ir.phis with
  | [ p ] ->
    p.Ir.incoming <-
      List.map
        (fun (l, v) -> if l = s1body.Ir.bname then (l, i1') else (l, v))
        p.Ir.incoming
  | _ -> assert false);
  br b s1.Ir.bname;
  position b joinpt;
  mutls_join b ~point:0;
  br b s2.Ir.bname;
  position b s2;
  let i2 =
    phi b Ir.I64
      [ (joinpt.Ir.bname, Ir.i64 (n / 2)); (s2body.Ir.bname, Ir.i64 0) ]
  in
  let c2 = icmp b Ir.Islt Ir.I64 i2 (Ir.i64 n) in
  cbr b c2 s2body.Ir.bname done_.Ir.bname;
  position b s2body;
  let v2 = add_ b (mul_ b i2 (Ir.i64 7)) (Ir.i64 1) in
  let addr2 = ptradd b (Ir.Global "data") (mul_ b i2 (Ir.i64 8)) in
  store b Ir.I64 v2 addr2;
  let i2' = add_ b i2 (Ir.i64 1) in
  (match s2.Ir.phis with
  | [ p ] ->
    p.Ir.incoming <-
      List.map
        (fun (l, v) -> if l = s2body.Ir.bname then (l, i2') else (l, v))
        p.Ir.incoming
  | _ -> assert false);
  br b s2.Ir.bname;
  position b done_;
  ret b None;
  let b = create m ~name:"main" ~params:[] ~ret:Ir.I64 in
  let entry = add_block b "entry" in
  let loop = add_block b "loop" in
  let body = add_block b "body" in
  let fin = add_block b "fin" in
  position b entry;
  ignore (call b ~ret:Ir.Void "work" []);
  br b loop.Ir.bname;
  position b loop;
  let i = phi b Ir.I64 [ (entry.Ir.bname, Ir.i64 0); (body.Ir.bname, Ir.i64 0) ] in
  let acc = phi b Ir.I64 [ (entry.Ir.bname, Ir.i64 0); (body.Ir.bname, Ir.i64 0) ] in
  let c = icmp b Ir.Islt Ir.I64 i (Ir.i64 n) in
  cbr b c body.Ir.bname fin.Ir.bname;
  position b body;
  let addr = ptradd b (Ir.Global "data") (mul_ b i (Ir.i64 8)) in
  let v = load b Ir.I64 addr in
  let acc' = add_ b acc (mul_ b v (add_ b i (Ir.i64 1))) in
  let i' = add_ b i (Ir.i64 1) in
  (match loop.Ir.phis with
  | [ pi; pa ] ->
    pi.Ir.incoming <-
      List.map (fun (l, v) -> if l = body.Ir.bname then (l, i') else (l, v))
        pi.Ir.incoming;
    pa.Ir.incoming <-
      List.map (fun (l, v) -> if l = body.Ir.bname then (l, acc') else (l, v))
        pa.Ir.incoming
  | _ -> assert false);
  br b loop.Ir.bname;
  position b fin;
  ret b (Some acc);
  List.iter (Ir.add_extern m) Mutls_interp.Externs.declarations;
  m

(* Expected checksum of [figure1]. *)
let figure1_expected ?(n = 64) () =
  let acc = ref 0L in
  for i = 0 to n - 1 do
    let v = if i < n / 2 then (3 * i) + 1 else (7 * i) + 1 in
    acc := Int64.add !acc (Int64.of_int (v * (i + 1)))
  done;
  !acc
