(** Hand-built MIR sample programs used by tests, the debug binary and
    the quickstart example: they exercise the speculator pass without
    going through a front-end. *)

val figure1 : ?n:int -> ?model:int -> unit -> Mutls_mir.Ir.modul
(** The paper's Figure-1 shape: the parent executes S1 while a
    speculative thread executes S2 from the join point; main sums a
    checksum over the results. *)

val figure1_expected : ?n:int -> unit -> int64
(** The checksum [figure1]'s main returns. *)
