lib/runtime/address_space.ml: Array List
