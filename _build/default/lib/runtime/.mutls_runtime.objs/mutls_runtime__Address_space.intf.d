lib/runtime/address_space.mli:
