lib/runtime/config.mli:
