lib/runtime/global_buffer.ml: Array Bytes Char Int64 Memio
