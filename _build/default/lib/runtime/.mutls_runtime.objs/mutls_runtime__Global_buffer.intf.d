lib/runtime/global_buffer.mli: Bytes Memio
