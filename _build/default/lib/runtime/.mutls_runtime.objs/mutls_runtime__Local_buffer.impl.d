lib/runtime/local_buffer.ml: Array Bytes Char Hashtbl List Printf
