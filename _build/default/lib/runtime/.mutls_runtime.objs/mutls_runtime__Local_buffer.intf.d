lib/runtime/local_buffer.mli: Bytes Hashtbl
