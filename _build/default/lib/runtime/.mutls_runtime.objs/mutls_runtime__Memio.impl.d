lib/runtime/memio.ml:
