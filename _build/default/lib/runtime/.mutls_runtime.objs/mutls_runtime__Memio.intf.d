lib/runtime/memio.mli:
