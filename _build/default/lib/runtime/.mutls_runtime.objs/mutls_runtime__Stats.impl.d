lib/runtime/stats.ml: Array
