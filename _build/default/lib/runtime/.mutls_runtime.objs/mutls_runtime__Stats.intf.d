lib/runtime/stats.mli:
