lib/runtime/thread_data.ml: Global_buffer Local_buffer Mutls_sim Stack Stats
