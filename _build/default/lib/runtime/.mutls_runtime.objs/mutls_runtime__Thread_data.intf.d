lib/runtime/thread_data.mli: Global_buffer Local_buffer Mutls_sim Stack Stats
