lib/runtime/thread_manager.ml: Address_space Array Bytes Char Config Engine Global_buffer Hashtbl Int64 List Local_buffer Memio Mutls_sim Option Printf Rng Stack Stats String Sys Thread_data
