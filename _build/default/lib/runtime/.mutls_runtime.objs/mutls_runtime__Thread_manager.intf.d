lib/runtime/thread_manager.mli: Address_space Config Global_buffer Hashtbl Local_buffer Memio Mutls_sim Stats Thread_data
