(* Address space registration (paper §IV-G1).  Static and heap objects
   are registered at creation and unregistered at deletion; speculative
   threads roll back on any access outside the registered global space
   and their own stack.  Adjacent ranges are merged to keep lookups
   cheap; lookups use binary search over a sorted range array. *)

type t = {
  mutable starts : int array; (* sorted, inclusive *)
  mutable ends : int array; (* exclusive *)
  mutable n : int;
}

let create () = { starts = Array.make 16 0; ends = Array.make 16 0; n = 0 }

let ensure_capacity t =
  if t.n = Array.length t.starts then begin
    let ns = Array.make (2 * t.n) 0 and ne = Array.make (2 * t.n) 0 in
    Array.blit t.starts 0 ns 0 t.n;
    Array.blit t.ends 0 ne 0 t.n;
    t.starts <- ns;
    t.ends <- ne
  end

(* Index of the first range whose start is > addr, minus one. *)
let locate t addr =
  let lo = ref 0 and hi = ref t.n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.starts.(mid) <= addr then lo := mid + 1 else hi := mid
  done;
  !lo - 1

let contains t addr =
  let i = locate t addr in
  i >= 0 && addr < t.ends.(i)

let contains_range t addr size =
  let i = locate t addr in
  i >= 0 && addr + size <= t.ends.(i)

let register t start size =
  if size <= 0 then invalid_arg "Address_space.register: size";
  let e = start + size in
  let i = locate t start in
  (* Merge with predecessor and/or successor when adjacent/overlapping. *)
  let merge_pred = i >= 0 && t.ends.(i) >= start in
  let succ = i + 1 in
  let merge_succ = succ < t.n && t.starts.(succ) <= e in
  match (merge_pred, merge_succ) with
  | true, true ->
    t.ends.(i) <- max t.ends.(succ) e;
    (* remove succ *)
    Array.blit t.starts (succ + 1) t.starts succ (t.n - succ - 1);
    Array.blit t.ends (succ + 1) t.ends succ (t.n - succ - 1);
    t.n <- t.n - 1
  | true, false -> t.ends.(i) <- max t.ends.(i) e
  | false, true ->
    t.starts.(succ) <- start;
    t.ends.(succ) <- max t.ends.(succ) e
  | false, false ->
    ensure_capacity t;
    let pos = i + 1 in
    Array.blit t.starts pos t.starts (pos + 1) (t.n - pos);
    Array.blit t.ends pos t.ends (pos + 1) (t.n - pos);
    t.starts.(pos) <- start;
    t.ends.(pos) <- e;
    t.n <- t.n + 1

(* Unregister exactly [start, start+size); may split a merged range. *)
let unregister t start size =
  let e = start + size in
  let i = locate t start in
  if i < 0 || t.ends.(i) < e then ()
  else begin
    let rs = t.starts.(i) and re = t.ends.(i) in
    if rs = start && re = e then begin
      Array.blit t.starts (i + 1) t.starts i (t.n - i - 1);
      Array.blit t.ends (i + 1) t.ends i (t.n - i - 1);
      t.n <- t.n - 1
    end
    else if rs = start then t.starts.(i) <- e
    else if re = e then t.ends.(i) <- start
    else begin
      (* split *)
      t.ends.(i) <- start;
      register t e (re - e)
    end
  end

let ranges t = List.init t.n (fun i -> (t.starts.(i), t.ends.(i)))
