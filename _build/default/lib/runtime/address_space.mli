(** Address-space registration (paper §IV-G1).  Static and heap objects
    are registered at creation and unregistered at deletion; a
    speculative thread rolls back on any access outside the registered
    global space and its own stack.  Adjacent ranges merge; lookups are
    a binary search over a sorted range array. *)

type t

val create : unit -> t
val register : t -> int -> int -> unit
(** [register t start size]; overlapping or adjacent ranges merge. *)

val unregister : t -> int -> int -> unit
(** Removes exactly [start, start+size); may split a merged range. *)

val contains : t -> int -> bool
val contains_range : t -> int -> int -> bool
val ranges : t -> (int * int) list
(** Sorted [(start, end)) pairs, for tests and debugging. *)
