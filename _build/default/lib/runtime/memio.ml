(* The runtime validates, commits and copies stack data against main
   memory through this narrow interface, keeping buffer code
   independent of the interpreter's memory representation.  Addresses
   are byte addresses; word operations require 8-byte alignment. *)

type t = {
  read_word : int -> int64;
  write_word : int -> int64 -> unit;
  read_byte : int -> int;
  write_byte : int -> int -> unit;
}
