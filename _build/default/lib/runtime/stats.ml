(* Per-thread virtual-time accounting.  Categories follow the paper's
   execution breakdowns: Figure 8 (critical path: work / join / idle /
   fork / find CPU) and Figure 9 (speculative path: wasted work /
   finalize / commit / validation / overflow / idle / fork / find CPU). *)

type category =
  | Work
  | Join
  | Idle
  | Fork
  | Find_cpu
  | Validation
  | Commit
  | Finalize
  | Wasted_work
  | Overflow

let n_categories = 10

let category_index = function
  | Work -> 0
  | Join -> 1
  | Idle -> 2
  | Fork -> 3
  | Find_cpu -> 4
  | Validation -> 5
  | Commit -> 6
  | Finalize -> 7
  | Wasted_work -> 8
  | Overflow -> 9

let category_name = function
  | Work -> "work"
  | Join -> "join"
  | Idle -> "idle"
  | Fork -> "fork"
  | Find_cpu -> "find CPU"
  | Validation -> "validation"
  | Commit -> "commit"
  | Finalize -> "finalize"
  | Wasted_work -> "wasted work"
  | Overflow -> "overflow"

let all_categories =
  [ Work; Join; Idle; Fork; Find_cpu; Validation; Commit; Finalize;
    Wasted_work; Overflow ]

type t = {
  time : float array;
  mutable n_forks : int;
  mutable n_commits : int;
  mutable n_rollbacks : int;
  mutable n_loads : int;
  mutable n_stores : int;
  mutable n_checkpoints : int;
  mutable n_overflows : int;
  mutable n_conflict_stalls : int;
}

let create () =
  {
    time = Array.make n_categories 0.0;
    n_forks = 0;
    n_commits = 0;
    n_rollbacks = 0;
    n_loads = 0;
    n_stores = 0;
    n_checkpoints = 0;
    n_overflows = 0;
    n_conflict_stalls = 0;
  }

let add t cat dt = t.time.(category_index cat) <- t.time.(category_index cat) +. dt
let get t cat = t.time.(category_index cat)
let total t = Array.fold_left ( +. ) 0.0 t.time

(* A rolled-back thread's useful work was wasted: reclassify. *)
let work_to_wasted t =
  let w = get t Work in
  t.time.(category_index Work) <- 0.0;
  add t Wasted_work w

let merge ~into src =
  Array.iteri (fun i v -> into.time.(i) <- into.time.(i) +. v) src.time;
  into.n_forks <- into.n_forks + src.n_forks;
  into.n_commits <- into.n_commits + src.n_commits;
  into.n_rollbacks <- into.n_rollbacks + src.n_rollbacks;
  into.n_loads <- into.n_loads + src.n_loads;
  into.n_stores <- into.n_stores + src.n_stores;
  into.n_checkpoints <- into.n_checkpoints + src.n_checkpoints;
  into.n_overflows <- into.n_overflows + src.n_overflows;
  into.n_conflict_stalls <- into.n_conflict_stalls + src.n_conflict_stalls
