(** Per-thread virtual-time accounting in the categories of the paper's
    execution breakdowns: Fig. 8 (critical path: work / join / idle /
    fork / find CPU) and Fig. 9 (speculative path: wasted work /
    finalize / commit / validation / overflow / idle / fork /
    find CPU). *)

type category =
  | Work
  | Join
  | Idle
  | Fork
  | Find_cpu
  | Validation
  | Commit
  | Finalize
  | Wasted_work
  | Overflow

val n_categories : int
val category_index : category -> int
val category_name : category -> string
val all_categories : category list

type t = {
  time : float array;
  mutable n_forks : int;
  mutable n_commits : int;
  mutable n_rollbacks : int;
  mutable n_loads : int;
  mutable n_stores : int;
  mutable n_checkpoints : int;
  mutable n_overflows : int;
  mutable n_conflict_stalls : int;
}

val create : unit -> t
val add : t -> category -> float -> unit
val get : t -> category -> float
val total : t -> float

val work_to_wasted : t -> unit
(** A rolled-back thread's useful work was wasted: reclassify. *)

val merge : into:t -> t -> unit
