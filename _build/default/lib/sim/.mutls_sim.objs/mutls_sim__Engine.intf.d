lib/sim/engine.mli:
