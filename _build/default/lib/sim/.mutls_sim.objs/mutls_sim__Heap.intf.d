lib/sim/heap.mli:
