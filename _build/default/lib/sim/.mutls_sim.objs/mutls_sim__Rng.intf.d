lib/sim/rng.mli:
