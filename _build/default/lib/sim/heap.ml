(* Binary min-heap keyed by (time, sequence).  The sequence number makes
   the event order total, hence the whole simulation deterministic. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let is_empty h = h.size = 0
let length h = h.size

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h =
  let cap = Array.length h.data in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let nd = Array.make ncap h.data.(0) in
  Array.blit h.data 0 nd 0 h.size;
  h.data <- nd

let push h time payload =
  let e = { time; seq = h.next_seq; payload } in
  h.next_seq <- h.next_seq + 1;
  if h.size = 0 && Array.length h.data = 0 then h.data <- Array.make 16 e;
  if h.size = Array.length h.data then grow h;
  h.data.(h.size) <- e;
  h.size <- h.size + 1;
  (* sift up *)
  let i = ref (h.size - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    less h.data.(!i) h.data.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = h.data.(p) in
    h.data.(p) <- h.data.(!i);
    h.data.(!i) <- tmp;
    i := p
  done

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && less h.data.(l) h.data.(!smallest) then smallest := l;
        if r < h.size && less h.data.(r) h.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.data.(!smallest) in
          h.data.(!smallest) <- h.data.(!i);
          h.data.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.payload)
  end
