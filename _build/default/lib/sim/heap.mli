(** Binary min-heap keyed by (time, insertion sequence).  The sequence
    number makes the event order total, hence the whole simulation
    deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> float -> 'a -> unit
val pop : 'a t -> (float * 'a) option
(** Smallest time first; FIFO among equal times. *)
