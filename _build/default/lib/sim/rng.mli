(** SplitMix64: tiny, fast, deterministic.  Used for rollback injection
    (paper Fig. 11) and property-test data, so simulation results never
    depend on the OCaml stdlib Random implementation. *)

type t

val create : int -> t
val next_int64 : t -> int64
val next_float : t -> float
(** Uniform in [0, 1). *)

val next_int : t -> int -> int
(** Uniform in [0, bound); @raise Invalid_argument if bound <= 0. *)
