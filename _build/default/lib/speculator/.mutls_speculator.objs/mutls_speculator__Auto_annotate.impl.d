lib/speculator/auto_annotate.ml: Array Cfg Hashtbl List Mutls_mir
