lib/speculator/auto_annotate.mli: Mutls_mir
