lib/speculator/clone.ml: Hashtbl List Mutls_mir Option
