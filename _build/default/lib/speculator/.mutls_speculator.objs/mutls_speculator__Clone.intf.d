lib/speculator/clone.mli: Mutls_mir
