lib/speculator/pass.ml: Array Cfg Clone Hashtbl Int Int64 List Mem2reg Mutls_mir Option Printf Reg2mem Set Verify
