lib/speculator/pass.mli: Mutls_mir
