lib/speculator/reg2mem.ml: Hashtbl Int List Map Mutls_mir Option
