lib/speculator/reg2mem.mli: Map Mutls_mir
