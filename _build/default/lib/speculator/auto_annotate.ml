(* Automatic fork heuristics (paper §VI, future work): insert
   MUTLS fork/join annotations without programmer directives.

   The heuristic speculates loop continuations, the pattern the paper's
   hand-annotated loop benchmarks use: a fork at the top of the loop
   body and a join at the bottom, so each speculative thread continues
   the loop from the next iteration (and, under the mixed model, forks
   further).  Candidates are outermost natural loops with a single
   latch whose body is substantial (contains a real call or a nested
   loop) — the same cost filter the check-point placement uses.
   Correctness never depends on the heuristic: a badly chosen point
   only causes rollbacks. *)

open Mutls_mir
open Mutls_mir.Ir

let has_annotations (f : func) =
  List.exists
    (fun b ->
      List.exists
        (fun i ->
          match i.kind with
          | Call (n, _) -> is_source_intrinsic n
          | _ -> false)
        b.insts)
    f.blocks

(* Natural loops: (header index, body index set, latch index) for every
   back edge, merged per header; only single-latch loops qualify. *)
let natural_loops (cfg : Cfg.t) =
  let n = Cfg.nblocks cfg in
  let color = Array.make n 0 in
  let back_edges = ref [] in
  let rec dfs u =
    color.(u) <- 1;
    List.iter
      (fun v ->
        if color.(v) = 1 then back_edges := (u, v) :: !back_edges
        else if color.(v) = 0 then dfs v)
      cfg.Cfg.succs.(u);
    color.(u) <- 2
  in
  if n > 0 then dfs 0;
  let loops = Hashtbl.create 8 in
  List.iter
    (fun (latch, header) ->
      let body =
        match Hashtbl.find_opt loops header with
        | Some (b, _) -> b
        | None ->
          let b = Hashtbl.create 8 in
          Hashtbl.replace b header ();
          Hashtbl.replace loops header (b, ref []);
          b
      in
      let _, latches = Hashtbl.find loops header in
      latches := latch :: !latches;
      let rec up x =
        if not (Hashtbl.mem body x) then begin
          Hashtbl.replace body x ();
          List.iter up cfg.Cfg.preds.(x)
        end
      in
      up latch)
    !back_edges;
  Hashtbl.fold
    (fun header (body, latches) acc -> (header, body, !latches) :: acc)
    loops []

(* Annotate one function; returns the number of fork/join pairs added. *)
let annotate_func (m : modul) (f : func) =
  if has_annotations f then 0
  else begin
    let cfg = Cfg.of_func f in
    let loops = natural_loops cfg in
    (* outermost: header not strictly inside another loop's body *)
    let outermost =
      List.filter
        (fun (h, _, _) ->
          not
            (List.exists
               (fun (h', body', _) -> h' <> h && Hashtbl.mem body' h)
               loops))
        loops
    in
    let next_id = ref 0 in
    List.iter
      (fun (header, body, latches) ->
        match latches with
        | [ latch ] -> (
          let has_call =
            Hashtbl.fold
              (fun bi () acc ->
                acc
                || List.exists
                     (fun i ->
                       match i.kind with
                       | Call (name, _) ->
                         (not (is_runtime_call name))
                         && not (is_source_intrinsic name)
                       | _ -> false)
                     cfg.Cfg.blocks.(bi).insts)
              body false
          in
          let has_inner =
            List.exists
              (fun (h', _, _) -> h' <> header && Hashtbl.mem body h')
              loops
          in
          if has_call || has_inner then
            (* fork at the top of the in-loop successor of the header,
               join at the end of the (unique) latch *)
            let in_loop_succs =
              List.filter (fun s -> Hashtbl.mem body s) cfg.Cfg.succs.(header)
            in
            match in_loop_succs with
            | [ entry_bi ] when cfg.Cfg.blocks.(entry_bi).phis = [] ->
              let p = !next_id in
              incr next_id;
              let entry_blk = cfg.Cfg.blocks.(entry_bi) in
              entry_blk.insts <-
                { id = -1; ity = Void;
                  kind = Call (fork_intrinsic, [ i64 p; i64 0 ]) }
                :: entry_blk.insts;
              (* the join goes at the START of the latch, before the
                 induction step: the loop counter is then unchanged
                 between fork and join, so MUTLS_validate_local
                 succeeds without value prediction *)
              let latch_blk = cfg.Cfg.blocks.(latch) in
              latch_blk.insts <-
                { id = -1; ity = Void;
                  kind = Call (join_intrinsic, [ i64 p ]) }
                :: latch_blk.insts;
              ()
            | _ -> ())
        | _ -> ())
      outermost;
    ignore m;
    !next_id
  end

(* Annotate the module in place, outermost parallelism first: walk the
   call graph top-down from its roots and stop descending below any
   function that received speculation points — speculating both an
   outer chunk loop and the tiny loops inside its callees would only
   add churn (the same reason the paper's hand annotations sit at the
   outermost profitable level).  Returns the number of fork/join pairs
   inserted. *)
let run (m : modul) =
  let callees_of f =
    List.concat_map
      (fun b ->
        List.filter_map
          (fun i ->
            match i.kind with
            | Call (n, _) when find_func m n <> None -> Some n
            | _ -> None)
          b.insts)
      f.blocks
  in
  let called = Hashtbl.create 16 in
  List.iter
    (fun f -> List.iter (fun c -> Hashtbl.replace called c ()) (callees_of f))
    m.funcs;
  let roots =
    match find_func m "main" with
    | Some main -> [ main ]
    | None -> List.filter (fun f -> not (Hashtbl.mem called f.fname)) m.funcs
  in
  let visited = Hashtbl.create 16 in
  let total = ref 0 in
  let rec visit (f : func) =
    if not (Hashtbl.mem visited f.fname) then begin
      Hashtbl.replace visited f.fname ();
      let n = annotate_func m f in
      total := !total + n;
      (* descend only when this level found no parallelism *)
      if n = 0 then
        List.iter
          (fun c ->
            match find_func m c with Some g -> visit g | None -> ())
          (callees_of f)
    end
  in
  List.iter visit roots;
  !total
