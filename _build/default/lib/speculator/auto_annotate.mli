(** Automatic fork heuristics (paper §VI, future work): insert MUTLS
    fork/join annotations without programmer directives.

    The heuristic speculates loop continuations — a fork at the top of
    the loop body, a join at the start of the latch (before the
    induction step, so the loop counter validates without prediction).
    Candidates are outermost natural loops with a single latch whose
    body contains a real call or a nested loop, visited top-down from
    the call-graph roots; descent stops below any function that
    received points (outermost parallelism first).  Correctness never
    depends on the heuristic: a badly chosen point only rolls back. *)

val has_annotations : Mutls_mir.Ir.func -> bool

val annotate_func : Mutls_mir.Ir.modul -> Mutls_mir.Ir.func -> int
(** Annotate one (un-annotated) function in place; returns the number
    of fork/join pairs inserted. *)

val run : Mutls_mir.Ir.modul -> int
(** Annotate the module in place; returns the total number of
    speculation points inserted. *)
