(* Deep copies of MIR functions and modules.  The speculator pass keeps
   the sequential module intact and works on a fresh copy; it also
   clones each prepared function into its ".spec" version (paper §IV-C
   step 1), with two extra parameters (counter, rank). *)

open Mutls_mir.Ir

let clone_block (b : block) =
  {
    bname = b.bname;
    phis =
      List.map (fun p -> { pid = p.pid; pty = p.pty; incoming = p.incoming }) b.phis;
    insts = b.insts; (* instr records are immutable *)
    term = b.term;
  }

let clone_func ?(new_name : string option) ?(extra_params : (string * ty) list = [])
    (f : func) =
  let reg_tys = Hashtbl.copy f.reg_tys in
  {
    fname = Option.value new_name ~default:f.fname;
    params = f.params @ extra_params;
    ret = f.ret;
    blocks = List.map clone_block f.blocks;
    next_reg = f.next_reg;
    reg_tys;
  }

let clone_module (m : modul) =
  {
    globals = m.globals;
    funcs = List.map (fun f -> clone_func f) m.funcs;
    externs = m.externs;
  }
