(** Deep copies of MIR functions and modules.  The pass keeps the
    sequential module intact and clones each prepared function into its
    speculative version (paper §IV-C step 1). *)

val clone_block : Mutls_mir.Ir.block -> Mutls_mir.Ir.block

val clone_func :
  ?new_name:string ->
  ?extra_params:(string * Mutls_mir.Ir.ty) list ->
  Mutls_mir.Ir.func ->
  Mutls_mir.Ir.func
(** Extra parameters are appended, so argument indices are stable. *)

val clone_module : Mutls_mir.Ir.modul -> Mutls_mir.Ir.modul
