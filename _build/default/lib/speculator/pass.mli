(** The speculator transformation pass (paper §IV-C..H).

    For every function annotated with fork/join points (plus its
    transitive internal callees), the pass:

    + demotes cross-block SSA registers to allocas (reg2mem), so block
      splitting and restore edges cannot break SSA;
    + splits basic blocks at fork/join/barrier annotations, internal
      calls (enter points), unsafe external calls (terminate points),
      pointer/integer casts (cast barriers) and substantial loop
      headers (check points), numbering every synchronization block;
    + clones the function into a [".spec"] version with two extra
      parameters (counter, rank), redirects its loads/stores through
      the TLS runtime, and resolves bottom-frame stack variables to the
      parent's addresses;
    + adds fork surgery (the ranks array with the §IV-D one-thread-per-
      point guard, fork-time saves, the proxy call), join surgery
      (validate_local, synchronize, the synchronization table) and, in
      the speculative version, the speculation table plus save/commit
      blocks at every synchronization point;
    + generates the [".stub"] and [".proxy"] helper functions;
    + re-promotes the demoted allocas (mem2reg), which recreates phi
      nodes through every new edge — the paper's "phi nodes are
      inserted at the beginning of the latter block".

    The two versions share block names, so a synchronization counter
    saved by one resumes the other. *)

exception Pass_error of string
(** Ill-formed annotations (duplicate join ids, fork without a join,
    too many locals for the RegisterBuffer) or a post-pass verification
    failure. *)

type options = {
  max_locals : int;  (** RegisterBuffer capacity; offsets beyond it are
                         a pass error, as in the paper *)
  safe_externs : string list;
      (** pure externs that never stop speculation (§IV-C) *)
}

val default_safe : string list
val default_options : options

val run : ?opts:options -> ?verify:bool -> Mutls_mir.Ir.modul -> Mutls_mir.Ir.modul
(** Returns a fresh transformed module; the input is left untouched (it
    remains the sequential baseline).  A module without annotations is
    returned as a plain copy. *)
