(* Demotion of cross-block SSA registers (and all phi nodes) to
   entry-block allocas — LLVM's reg2mem.  The speculator pass runs on
   the demoted form so that splitting blocks and adding restore edges
   never breaks SSA; a final mem2reg pass re-promotes everything,
   recreating phi nodes through the new edges (paper §IV-C: "Phi nodes
   are inserted at the beginning of the latter block to distinguish the
   different versions of the register variables"). *)

open Mutls_mir.Ir
module IntMap = Map.Make (Int)

type demoted = { d_alloca : reg; d_ty : ty }

(* Returns the map: original register -> its demotion slot. *)
let demote (f : func) : demoted IntMap.t =
  (* 1. Definition sites. *)
  let def_block : (reg, string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun b ->
      List.iter (fun p -> Hashtbl.replace def_block p.pid b.bname) b.phis;
      List.iter
        (fun i -> if i.ity <> Void then Hashtbl.replace def_block i.id b.bname)
        b.insts)
    f.blocks;
  (* 2. Cross-block uses and phi destinations must be demoted. *)
  let marked : (reg, unit) Hashtbl.t = Hashtbl.create 64 in
  let mark r = Hashtbl.replace marked r () in
  let check_use bname v =
    match v with
    | Reg r -> (
      match Hashtbl.find_opt def_block r with
      | Some db when db <> bname -> mark r
      | _ -> ())
    | _ -> ()
  in
  List.iter
    (fun b ->
      List.iter
        (fun p ->
          mark p.pid;
          List.iter (fun (pred, v) -> check_use pred v) p.incoming)
        b.phis;
      List.iter (fun i -> List.iter (check_use b.bname) (instr_uses i.kind)) b.insts;
      List.iter (check_use b.bname) (term_uses b.term))
    f.blocks;
  if Hashtbl.length marked = 0 then IntMap.empty
  else begin
    (* Phi destinations lose their defining instruction entirely, so
       every use — even in the phi's own block — must reload. *)
    let phi_dest : (reg, unit) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun b -> List.iter (fun p -> Hashtbl.replace phi_dest p.pid ()) b.phis)
      f.blocks;
    (* 3. One alloca per demoted register. *)
    let slots =
      Hashtbl.fold
        (fun r () acc ->
          let ty =
            match Hashtbl.find_opt f.reg_tys r with
            | Some t -> t
            | None -> invalid_arg "Reg2mem: untyped register"
          in
          let a = fresh_reg f Ptr in
          IntMap.add r { d_alloca = a; d_ty = ty } acc)
        marked IntMap.empty
    in
    let entry = entry_block f in
    let allocas =
      IntMap.fold
        (fun _ d acc ->
          { id = d.d_alloca; ity = Ptr; kind = Alloca (ty_size d.d_ty) } :: acc)
        slots []
    in
    entry.insts <- allocas @ entry.insts;
    (* 4. Rewrite each block: loads before cross-block uses, stores
       after definitions; phis become stores at the end of preds. *)
    (* Phi semantics are parallel assignment: all old values must be
       read before any slot is overwritten (the classic lost-copy /
       swap problem), so reloads and stores are queued separately and
       the reloads are emitted first. *)
    let pending_loads : (string, instr list) Hashtbl.t = Hashtbl.create 16 in
    let pending_stores : (string, instr list) Hashtbl.t = Hashtbl.create 16 in
    let add_to tbl pred i =
      let cur = Option.value (Hashtbl.find_opt tbl pred) ~default:[] in
      Hashtbl.replace tbl pred (cur @ [ i ])
    in
    List.iter
      (fun b ->
        (* Phi removal: store incoming values at the end of each pred. *)
        List.iter
          (fun p ->
            match IntMap.find_opt p.pid slots with
            | None -> ()
            | Some d ->
              List.iter
                (fun (pred, v) ->
                  (* If the value is itself demoted and defined in a
                     different block, reload it in the pred. *)
                  let v', pre =
                    match v with
                    | Reg r when IntMap.mem r slots
                                 && (Hashtbl.mem phi_dest r
                                    || Hashtbl.find_opt def_block r <> Some pred) ->
                      let dr = IntMap.find r slots in
                      let l = fresh_reg f dr.d_ty in
                      ( Reg l,
                        [ { id = l; ity = dr.d_ty;
                            kind = Load (dr.d_ty, Reg dr.d_alloca) } ] )
                    | _ -> (v, [])
                  in
                  List.iter (fun i -> add_to pending_loads pred i) pre;
                  add_to pending_stores pred
                    { id = -1; ity = Void;
                      kind = Store (d.d_ty, v', Reg d.d_alloca) })
                p.incoming)
          b.phis;
        b.phis <- [])
      f.blocks;
    List.iter
      (fun b ->
        let out = ref [] in
        let emit i = out := i :: !out in
        let rewrite_use v =
          match v with
          | Reg r when IntMap.mem r slots
                       && (Hashtbl.mem phi_dest r
                          || Hashtbl.find_opt def_block r <> Some b.bname) ->
            let d = IntMap.find r slots in
            let l = fresh_reg f d.d_ty in
            emit { id = l; ity = d.d_ty; kind = Load (d.d_ty, Reg d.d_alloca) };
            Reg l
          | _ -> v
        in
        List.iter
          (fun i ->
            let k = map_instr_values rewrite_use i.kind in
            emit { i with kind = k };
            if i.ity <> Void && IntMap.mem i.id slots then begin
              let d = IntMap.find i.id slots in
              emit { id = -1; ity = Void;
                     kind = Store (d.d_ty, Reg i.id, Reg d.d_alloca) }
            end)
          b.insts;
        (* phi-replacement copies queued for this block: all reloads of
           old values first, then the parallel stores *)
        let pend =
          Option.value (Hashtbl.find_opt pending_loads b.bname) ~default:[]
          @ Option.value (Hashtbl.find_opt pending_stores b.bname) ~default:[]
        in
        List.iter
          (fun i ->
            let k = map_instr_values rewrite_use i.kind in
            emit { i with kind = k })
          pend;
        b.term <- map_term_values rewrite_use b.term;
        b.insts <- List.rev !out)
      f.blocks;
    slots
  end
