(** Demotion of cross-block SSA registers (and all phi nodes) to
    entry-block allocas — LLVM's reg2mem.  The speculator pass runs on
    the demoted form so block surgery cannot break SSA; mem2reg then
    re-promotes.  Phi elimination performs a proper parallel
    assignment: all old values are reloaded before any slot is
    overwritten (the classic lost-copy/swap problem). *)

module IntMap : Map.S with type key = int

type demoted = { d_alloca : Mutls_mir.Ir.reg; d_ty : Mutls_mir.Ir.ty }

val demote : Mutls_mir.Ir.func -> demoted IntMap.t
(** Demote in place; returns original register -> its slot. *)
