lib/workloads/w_bh.ml: Printf
