lib/workloads/w_fft.ml: Printf
