lib/workloads/w_mandelbrot.ml: Printf
