lib/workloads/w_matmult.ml: Printf
