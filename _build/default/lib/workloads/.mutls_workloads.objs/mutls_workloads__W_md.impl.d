lib/workloads/w_md.ml: Printf
