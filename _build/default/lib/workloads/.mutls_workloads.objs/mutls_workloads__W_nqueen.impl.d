lib/workloads/w_nqueen.ml: Printf
