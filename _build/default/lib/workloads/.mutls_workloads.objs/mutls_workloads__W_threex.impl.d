lib/workloads/w_threex.ml: Printf
