lib/workloads/w_tsp.ml: Printf
