lib/workloads/workloads.ml: List W_bh W_fft W_mandelbrot W_matmult W_md W_nqueen W_threex W_tsp
