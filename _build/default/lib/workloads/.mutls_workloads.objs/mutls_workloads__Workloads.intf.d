lib/workloads/workloads.mli:
