(* Barnes-Hut N-body simulation (paper: 12800 bodies, C++; scaled and
   expressed with index-based arrays).  Each step builds a quadtree
   sequentially, then computes per-body forces with the body loop
   chunked under chained speculation (the tree is read-only during the
   force phase, so reads validate cleanly), barriers, and integrates
   sequentially. *)

let name = "bh"

let c ?(n = 96) ?(steps = 2) ?(nchunks = 16) () =
  let maxn = 8 * n in
  Printf.sprintf
    {|
int N = %d;
int STEPS = %d;
int NCHUNKS = %d;
int MAXN = %d;
double THETA = 0.5;
double DT = 0.01;

double bx[%d];
double by[%d];
double bm[%d];
double bvx[%d];
double bvy[%d];
double fx[%d];
double fy[%d];

/* quadtree: -1 = no child; nbody: -1 empty leaf, -2 internal, else body */
int child[4][%d];
int nbody[%d];
double nmass[%d];
double nsx[%d];   /* sum of mass * x */
double nsy[%d];
double ncx[%d];   /* region centre */
double ncy[%d];
double nhalf[%d]; /* half size */
int nnodes = 0;

int new_node(double cx, double cy, double half) {
  int id = nnodes;
  nnodes = nnodes + 1;
  nbody[id] = -1;
  nmass[id] = 0.0;
  nsx[id] = 0.0;
  nsy[id] = 0.0;
  ncx[id] = cx;
  ncy[id] = cy;
  nhalf[id] = half;
  for (int q = 0; q < 4; q++) child[q][id] = -1;
  return id;
}

int quadrant_of(int node, double x, double y) {
  int q = 0;
  if (x > ncx[node]) q = q + 1;
  if (y > ncy[node]) q = q + 2;
  return q;
}

int child_of(int node, int q) {
  if (child[q][node] < 0) {
    double h = nhalf[node] / 2.0;
    double cx = ncx[node] - h;
    double cy = ncy[node] - h;
    if (q == 1 || q == 3) cx = ncx[node] + h;
    if (q >= 2) cy = ncy[node] + h;
    child[q][node] = new_node(cx, cy, h);
  }
  return child[q][node];
}

void insert(int b) {
  int node = 0;
  int placing = b;
  int guard = 0;
  while (placing >= 0 && guard < 64) {
    guard = guard + 1;
    nmass[node] = nmass[node] + bm[placing];
    nsx[node] = nsx[node] + bm[placing] * bx[placing];
    nsy[node] = nsy[node] + bm[placing] * by[placing];
    if (nbody[node] == -1 && child[0][node] == -1 && child[1][node] == -1
        && child[2][node] == -1 && child[3][node] == -1) {
      nbody[node] = placing;
      placing = -1;
    } else {
      if (nbody[node] >= 0) {
        /* split: push the resident body down */
        int old = nbody[node];
        nbody[node] = -2;
        int oq = quadrant_of(node, bx[old], by[old]);
        int oc = child_of(node, oq);
        nmass[oc] = nmass[oc] + bm[old];
        nsx[oc] = nsx[oc] + bm[old] * bx[old];
        nsy[oc] = nsy[oc] + bm[old] * by[old];
        nbody[oc] = old;
      }
      int q = quadrant_of(node, bx[placing], by[placing]);
      node = child_of(node, q);
    }
  }
}

void accumulate(int b, int node) {
  if (node < 0) return;
  if (nmass[node] == 0.0) return;
  int resident = nbody[node];
  if (resident == b && resident >= 0) return;
  double mx = nsx[node] / nmass[node];
  double my = nsy[node] / nmass[node];
  double dx = mx - bx[b];
  double dy = my - by[b];
  double r2 = dx * dx + dy * dy + 0.05;
  double r = sqrt(r2);
  if (resident >= 0 || 2.0 * nhalf[node] / r < THETA) {
    double a = nmass[node] / (r2 * r);
    fx[b] = fx[b] + a * dx;
    fy[b] = fy[b] + a * dy;
  } else {
    for (int q = 0; q < 4; q++) accumulate(b, child[q][node]);
  }
}

void forces() {
  int per = N / NCHUNKS;
  for (int c = 0; c < NCHUNKS; c++) {
    __builtin_MUTLS_fork(0, mixed);
    int lo = c * per;
    for (int b = lo; b < lo + per; b++) {
      fx[b] = 0.0;
      fy[b] = 0.0;
      accumulate(b, 0);
    }
    __builtin_MUTLS_join(0);
  }
  __builtin_MUTLS_barrier(0);
}

int main() {
  for (int b = 0; b < N; b++) {
    bx[b] = (double)((b * 37) %% 100) * 0.2 - 10.0;
    by[b] = (double)((b * 53) %% 100) * 0.2 - 10.0;
    bm[b] = 1.0 + (double)(b %% 3);
    bvx[b] = 0.0;
    bvy[b] = 0.0;
  }
  for (int s = 0; s < STEPS; s++) {
    nnodes = 0;
    int root = new_node(0.0, 0.0, 16.0);
    for (int b = 0; b < N; b++) insert(b);
    forces();
    for (int b = 0; b < N; b++) {
      bvx[b] = bvx[b] + DT * fx[b];
      bvy[b] = bvy[b] + DT * fy[b];
      bx[b] = bx[b] + DT * bvx[b];
      by[b] = by[b] + DT * bvy[b];
    }
  }
  double sum = 0.0;
  for (int b = 0; b < N; b++) sum = sum + bx[b] * bx[b] + by[b] * by[b];
  print_float(sum);
  print_newline();
  return (int)sum;
}
|}
    n steps nchunks maxn n n n n n n n maxn maxn maxn maxn maxn maxn maxn maxn
