(* Recursive Fast Fourier Transform (memory-intensive, divide and
   conquer).  As in the paper, each node forks a speculative thread for
   the second recursive call and barriers it after the call, so the
   combine step is executed by the parent and speculative threads never
   touch parent data (paper §V-B: this causes idle time, not
   rollbacks).  The stride-based decomposition writes each half into a
   disjoint region of the output buffer. *)

let name = "fft"

(* [logn]: transform size is 2^logn; [cutoff]: sequential below this. *)
let c ?(logn = 10) ?(cutoff = 64) () =
  let n = 1 lsl logn in
  Printf.sprintf
    {|
int N = %d;
int CUTOFF = %d;
double in_re[%d];
double in_im[%d];
double out_re[%d];
double out_im[%d];
double PI = 3.141592653589793;

/* DFT of in[off], in[off+stride], ... (n points) into out[out_off .. out_off+n) */
void fft(int off, int out_off, int n, int stride) {
  if (n == 1) {
    out_re[out_off] = in_re[off];
    out_im[out_off] = in_im[off];
    return;
  }
  if (n <= CUTOFF) {
    fft(off, out_off, n / 2, 2 * stride);
    fft(off + stride, out_off + n / 2, n / 2, 2 * stride);
  } else {
    __builtin_MUTLS_fork(0, mixed);
    fft(off, out_off, n / 2, 2 * stride);
    __builtin_MUTLS_join(0);
    fft(off + stride, out_off + n / 2, n / 2, 2 * stride);
    __builtin_MUTLS_barrier(0);
  }
  for (int k = 0; k < n / 2; k++) {
    double ang = -2.0 * PI * (double)k / (double)n;
    double wr = cos(ang);
    double wi = sin(ang);
    double er = out_re[out_off + k];
    double ei = out_im[out_off + k];
    double orr = out_re[out_off + n / 2 + k];
    double oi = out_im[out_off + n / 2 + k];
    double tr = wr * orr - wi * oi;
    double ti = wr * oi + wi * orr;
    out_re[out_off + k] = er + tr;
    out_im[out_off + k] = ei + ti;
    out_re[out_off + n / 2 + k] = er - tr;
    out_im[out_off + n / 2 + k] = ei - ti;
  }
}

int main() {
  for (int i = 0; i < N; i++) {
    in_re[i] = sin((double)i * 0.1) + 0.5 * sin((double)i * 0.05);
    in_im[i] = 0.0;
  }
  fft(0, 0, N, 1);
  double sum = 0.0;
  for (int i = 0; i < N; i++)
    sum = sum + out_re[i] * out_re[i] + out_im[i] * out_im[i];
  print_float(sum);
  print_newline();
  return (int)sum;
}
|}
    n cutoff n n n n
