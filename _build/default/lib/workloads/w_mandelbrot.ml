(* Mandelbrot fractal generation (computation-intensive, loop
   pattern): one chained fork/join per image row; each row's interior
   count lands in its own output cell, so speculation is conflict
   free. *)

let name = "mandelbrot"

(* Work is chunked in quarter-rows: the paper's 512-row image amortises
   per-row cost imbalance over 8 rows per CPU; at simulation scale the
   finer chunks play that role. *)
let c ?(size = 64) ?(max_iter = 500) () =
  Printf.sprintf
    {|
int SIZE = %d;
int MAXIT = %d;
int NCHUNK = 64;
int rows[64];

int pixel(double cr, double ci) {
  double zr = 0.0;
  double zi = 0.0;
  int it = 0;
  while (it < MAXIT) {
    double zr2 = zr * zr;
    double zi2 = zi * zi;
    if (zr2 + zi2 > 4.0) return it;
    double nzr = zr2 - zi2 + cr;
    zi = 2.0 * zr * zi + ci;
    zr = nzr;
    it = it + 1;
  }
  return it;
}

/* The work is split into exactly 64 chunks, matching the paper's
   workload distribution strategy for its 64-core machine.  Each chunk
   takes every 64th quarter-row, interleaving cheap border rows with
   expensive interior rows for load balance. */
void render() {
  int quarter = SIZE / 4;
  int nq = 4 * SIZE;
  for (int c = 0; c < NCHUNK; c++) {
    __builtin_MUTLS_fork(0, mixed);
    int acc = 0;
    for (int q = c; q < nq; q += NCHUNK) {
      int y = q / 4;
      int xlo = (q %% 4) * quarter;
      double ci = -1.25 + 2.5 * (double)y / (double)SIZE;
      for (int x = xlo; x < xlo + quarter; x++) {
        double cr = -2.0 + 3.0 * (double)x / (double)SIZE;
        acc = acc + pixel(cr, ci);
      }
    }
    rows[c] = acc;
    __builtin_MUTLS_join(0);
  }
}

int main() {
  render();
  int t = 0;
  for (int c = 0; c < NCHUNK; c++) t = t + rows[c];
  print_int(t);
  print_newline();
  return t;
}
|}
    size max_iter

let fortran ?(size = 64) ?(max_iter = 400) () =
  Printf.sprintf
    {|
integer function pixel(cr, ci, maxit)
  real*8 cr, ci, zr, zi, zr2, zi2, nzr
  integer maxit, it
  zr = 0.0d0
  zi = 0.0d0
  it = 0
  pixel = maxit
  do while (it .lt. maxit)
    zr2 = zr * zr
    zi2 = zi * zi
    if (zr2 + zi2 .gt. 4.0d0) then
      pixel = it
      return
    end if
    nzr = zr2 - zi2 + cr
    zi = 2.0d0 * zr * zi + ci
    zr = nzr
    it = it + 1
  end do
end

subroutine render(rows, size, maxit)
  integer rows(%d), size, maxit
  integer y, x, acc
  real*8 ci, cr
  do y = 1, size
    call MUTLS_FORK(0, mixed)
    ci = -1.25d0 + 2.5d0 * dble(y - 1) / dble(size)
    acc = 0
    do x = 1, size
      cr = -2.0d0 + 3.0d0 * dble(x - 1) / dble(size)
      acc = acc + pixel(cr, ci, maxit)
    end do
    rows(y) = acc
    call MUTLS_JOIN(0)
  end do
end

program main
  integer rows(%d), t, y
  call render(rows, %d, %d)
  t = 0
  do y = 1, %d
    t = t + rows(y)
  end do
  print *, t
end program
|}
    size size size max_iter size
