(* Block-based matrix multiplication (memory-intensive, divide and
   conquer), like Strassen's decomposition but with the classical 8
   products: each quadrant of C is computed by a task; tasks are
   speculated with the mixed model.  As the paper observes, when
   sub-tasks split again the sub-sub-tasks of a quadrant read/write the
   same C region, so this is the one benchmark that exhibits genuine
   rollbacks. *)

let name = "matmult"

let c ?(n = 64) ?(cutoff = 16) () =
  Printf.sprintf
    {|
int N = %d;
int CUTOFF = %d;
double A[%d][%d];
double B[%d][%d];
double C[%d][%d];

/* C[cr..cr+n, cc..cc+n] += A[ar.., ac..] * B[br.., bc..] */
void addmul(int n, int ar, int ac, int br, int bc, int cr, int cc) {
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) {
      double s = 0.0;
      for (int k = 0; k < n; k++)
        s = s + A[ar + i][ac + k] * B[br + k][bc + j];
      C[cr + i][cc + j] = C[cr + i][cc + j] + s;
    }
  }
}

/* forward references resolve in the front-end's second pass, so no
   prototype is needed for quad() */
void mm(int n, int ar, int ac, int br, int bc, int cr, int cc) {
  if (n <= CUTOFF) {
    addmul(n, ar, ac, br, bc, cr, cc);
    return;
  }
  int h = n / 2;
  __builtin_MUTLS_fork(0, mixed);
  quad(h, ar, ac, br, bc, cr, cc);
  __builtin_MUTLS_join(0);
  __builtin_MUTLS_fork(1, mixed);
  quad(h, ar, ac, br, bc + h, cr, cc + h);
  __builtin_MUTLS_join(1);
  __builtin_MUTLS_fork(2, mixed);
  quad(h, ar + h, ac, br, bc, cr + h, cc);
  __builtin_MUTLS_join(2);
  quad(h, ar + h, ac, br, bc + h, cr + h, cc + h);
  __builtin_MUTLS_barrier(0);
}

void quad(int h, int ar, int ac, int br, int bc, int cr, int cc) {
  mm(h, ar, ac, br, bc, cr, cc);
  mm(h, ar, ac + h, br + h, bc, cr, cc);
}

int main() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      A[i][j] = (double)((i + j) %% 5) * 0.5;
      B[i][j] = (double)((i * 2 + j) %% 7) * 0.25;
      C[i][j] = 0.0;
    }
  }
  mm(N, 0, 0, 0, 0, 0, 0);
  double sum = 0.0;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) sum = sum + C[i][j] * (double)(i + 2 * j);
  print_float(sum);
  print_newline();
  return (int)sum;
}
|}
    n cutoff n n n n n n
