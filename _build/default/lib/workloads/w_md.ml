(* 3D molecular dynamics simulation (paper: 256 particles, 400 steps;
   scaled here).  Each time step computes pairwise forces with the
   particle loop split into chunks under chained speculation, then a
   barrier stops speculative threads before the sequential position
   update (which would otherwise conflict with force reads). *)

let name = "md"

let c ?(n = 256) ?(steps = 2) ?(nchunks = 63) () =
  Printf.sprintf
    {|
int N = %d;
int STEPS = %d;
int NCHUNKS = %d;
double pos[3][%d];
double vel[3][%d];
double force[3][%d];
double DT = 0.001;

void init() {
  for (int i = 0; i < N; i++) {
    pos[0][i] = (double)(i %% 7) * 0.5;
    pos[1][i] = (double)(i %% 5) * 0.7;
    pos[2][i] = (double)(i %% 3) * 0.9;
    vel[0][i] = 0.0;
    vel[1][i] = 0.0;
    vel[2][i] = 0.0;
  }
}

void forces() {
  int per = N / NCHUNKS;
  for (int c = 0; c < NCHUNKS; c++) {
    __builtin_MUTLS_fork(0, mixed);
    int lo = c * per;
    int hi = lo + per;
    for (int i = lo; i < hi; i++) {
      double fx = 0.0;
      double fy = 0.0;
      double fz = 0.0;
      for (int j = 0; j < N; j++) {
        if (j != i) {
          double dx = pos[0][i] - pos[0][j];
          double dy = pos[1][i] - pos[1][j];
          double dz = pos[2][i] - pos[2][j];
          double r2 = dx * dx + dy * dy + dz * dz + 0.1;
          double inv = 1.0 / (r2 * sqrt(r2));
          fx = fx + dx * inv;
          fy = fy + dy * inv;
          fz = fz + dz * inv;
        }
      }
      force[0][i] = fx;
      force[1][i] = fy;
      force[2][i] = fz;
    }
    __builtin_MUTLS_join(0);
  }
  __builtin_MUTLS_barrier(0);
}

void update() {
  for (int i = 0; i < N; i++) {
    for (int d = 0; d < 3; d++) {
      vel[d][i] = vel[d][i] + DT * force[d][i];
      pos[d][i] = pos[d][i] + DT * vel[d][i];
    }
  }
}

int main() {
  init();
  for (int s = 0; s < STEPS; s++) {
    forces();
    update();
  }
  double sum = 0.0;
  for (int i = 0; i < N; i++)
    sum = sum + pos[0][i] + pos[1][i] + pos[2][i];
  print_float(sum);
  print_newline();
  return (int)(sum * 1000.0);
}
|}
    n steps nchunks n n n

let fortran ?(n = 96) ?(steps = 2) ?(nchunks = 32) () =
  Printf.sprintf
    {|
subroutine init(pos, vel, n)
  real*8 pos(3, %d), vel(3, %d)
  integer n, i
  do i = 1, n
    pos(1, i) = dble(mod(i - 1, 7)) * 0.5d0
    pos(2, i) = dble(mod(i - 1, 5)) * 0.7d0
    pos(3, i) = dble(mod(i - 1, 3)) * 0.9d0
    vel(1, i) = 0.0d0
    vel(2, i) = 0.0d0
    vel(3, i) = 0.0d0
  end do
end

subroutine forces(pos, force, n, nchunks)
  real*8 pos(3, %d), force(3, %d)
  integer n, nchunks, c, per, lo, hi, i, j
  real*8 fx, fy, fz, dx, dy, dz, r2, inv
  per = n / nchunks
  do c = 1, nchunks
    call MUTLS_FORK(0, mixed)
    lo = (c - 1) * per + 1
    hi = lo + per - 1
    do i = lo, hi
      fx = 0.0d0
      fy = 0.0d0
      fz = 0.0d0
      do j = 1, n
        if (j .ne. i) then
          dx = pos(1, i) - pos(1, j)
          dy = pos(2, i) - pos(2, j)
          dz = pos(3, i) - pos(3, j)
          r2 = dx * dx + dy * dy + dz * dz + 0.1d0
          inv = 1.0d0 / (r2 * sqrt(r2))
          fx = fx + dx * inv
          fy = fy + dy * inv
          fz = fz + dz * inv
        end if
      end do
      force(1, i) = fx
      force(2, i) = fy
      force(3, i) = fz
    end do
    call MUTLS_JOIN(0)
  end do
  call MUTLS_BARRIER(0)
end

subroutine update(pos, vel, force, n)
  real*8 pos(3, %d), vel(3, %d), force(3, %d), dt
  integer n, i, d
  dt = 0.001d0
  do i = 1, n
    do d = 1, 3
      vel(d, i) = vel(d, i) + dt * force(d, i)
      pos(d, i) = pos(d, i) + dt * vel(d, i)
    end do
  end do
end

program main
  real*8 pos(3, %d), vel(3, %d), force(3, %d)
  real*8 sum
  integer s, i
  call init(pos, vel, %d)
  do s = 1, %d
    call forces(pos, force, %d, %d)
    call update(pos, vel, force, %d)
  end do
  sum = 0.0d0
  do i = 1, %d
    sum = sum + pos(1, i) + pos(2, i) + pos(3, i)
  end do
  print *, sum
end program
|}
    n n n n n n n n n n n steps n nchunks n n
