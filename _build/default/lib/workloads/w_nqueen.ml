(* N-queens (memory-intensive in the paper's classification,
   depth-first search).  The search state is a register-only bitmask,
   so speculation is conflict free; the first two levels of the search
   tree are speculated (each level chains fork/join over its column
   loop, and speculative threads fork the next level themselves —
   tree-form parallelism only the mixed model can exploit).  Each
   level-2 branch counts its subtree into a private cell. *)

let name = "nqueen"

let c ?(n = 9) () =
  Printf.sprintf
    {|
int N = %d;
int res[%d];

/* sequential bitmask solver: counts placements below this node */
int solve(int ld, int rd, int cols, int all) {
  if (cols == all) return 1;
  int cnt = 0;
  int avail = ~(ld | rd | cols) & all;
  while (avail) {
    int bit = avail & (0 - avail);
    avail = avail - bit;
    cnt = cnt + solve((ld | bit) << 1, (rd | bit) >> 1, cols | bit, all);
  }
  return cnt;
}

/* level 2: one fork/join per column of the second row */
void level2(int ld, int rd, int cols, int all, int c1) {
  for (int c2 = 0; c2 < N; c2++) {
    __builtin_MUTLS_fork(0, mixed);
    int bit = 1 << c2;
    int slot = c1 * N + c2;
    if ((ld | rd | cols) & bit) {
      res[slot] = 0;
    } else {
      res[slot] = solve((ld | bit) << 1, (rd | bit) >> 1, cols | bit, all);
    }
    __builtin_MUTLS_join(0);
  }
  __builtin_MUTLS_barrier(0);
}

/* level 1: one fork/join per column of the first row */
void level1(int all) {
  for (int c1 = 0; c1 < N; c1++) {
    __builtin_MUTLS_fork(0, mixed);
    int bit = 1 << c1;
    level2(bit << 1, bit >> 1, bit, all, c1);
    __builtin_MUTLS_join(0);
  }
  __builtin_MUTLS_barrier(0);
}

int main() {
  int all = (1 << N) - 1;
  level1(all);
  int total = 0;
  for (int i = 0; i < N * N; i++) total = total + res[i];
  print_int(total);
  print_newline();
  return total;
}
|}
    n (n * n)
