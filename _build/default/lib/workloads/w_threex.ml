(* 3x+1 (Collatz): the paper's idealised computation-intensive
   benchmark — no memory access during the computation.  The workload
   is split into [nchunks] loop iterations (the paper uses 64) with
   chained fork/join speculation: each speculative thread continues the
   chunk loop and forks further, so N CPUs pipeline the chunks. *)

let name = "3x+1"

let c ?(total = 16384) ?(nchunks = 64) () =
  Printf.sprintf
    {|
int NCHUNKS = %d;
int TOTAL = %d;
int chunk_res[%d];

int steps(int n) {
  int s = 0;
  while (n != 1) {
    if (n %% 2) n = 3 * n + 1;
    else n = n / 2;
    s = s + 1;
  }
  return s;
}

void compute() {
  int per = TOTAL / NCHUNKS;
  for (int c = 0; c < NCHUNKS; c++) {
    __builtin_MUTLS_fork(0, mixed);
    int lo = c * per + 1;
    int sum = 0;
    for (int i = lo; i < lo + per; i++) sum = sum + steps(i);
    chunk_res[c] = sum;
    __builtin_MUTLS_join(0);
  }
}

int main() {
  compute();
  int t = 0;
  for (int c = 0; c < NCHUNKS; c++) t = t + chunk_res[c];
  print_int(t);
  print_newline();
  return t;
}
|}
    nchunks total nchunks

let fortran ?(total = 8192) ?(nchunks = 64) () =
  Printf.sprintf
    {|
integer function steps(n)
  integer n, m
  m = n
  steps = 0
  do while (m .ne. 1)
    if (mod(m, 2) .eq. 1) then
      m = 3 * m + 1
    else
      m = m / 2
    end if
    steps = steps + 1
  end do
end

subroutine compute(res, total, nchunks)
  integer res(%d), total, nchunks
  integer c, per, lo, i, sum
  per = total / nchunks
  do c = 1, nchunks
    call MUTLS_FORK(0, mixed)
    lo = (c - 1) * per + 1
    sum = 0
    do i = lo, lo + per - 1
      sum = sum + steps(i)
    end do
    res(c) = sum
    call MUTLS_JOIN(0)
  end do
end

program main
  integer res(%d), t, c
  call compute(res, %d, %d)
  t = 0
  do c = 1, %d
    t = t + res(c)
  end do
  print *, t
end program
|}
    nchunks nchunks total nchunks nchunks
