(* Travelling salesperson by exhaustive depth-first search (paper: 12
   cities; scaled).  The first tree level is speculated: one chained
   fork/join per choice of second city, each branch writing its best
   tour into a private cell; the visited set is a register bitmask and
   the distance matrix is read-only, so speculation is conflict
   free. *)

let name = "tsp"

let c ?(n = 9) () =
  Printf.sprintf
    {|
int N = %d;
int dist[%d][%d];
int best[%d];

void init() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      if (i == j) dist[i][j] = 0;
      else {
        int d = ((i * 37 + j * 17) %% 23) + ((i * 11 + j * 29) %% 13) + 1;
        dist[i][j] = d;
      }
    }
  }
}

/* best completion of a partial tour ending at [city] with [visited] */
int search(int city, int visited, int all) {
  if (visited == all) return dist[city][0];
  int bestlen = 1000000;
  for (int next = 1; next < N; next++) {
    int bit = 1 << next;
    if (!(visited & bit)) {
      int len = dist[city][next] + search(next, visited | bit, all);
      if (len < bestlen) bestlen = len;
    }
  }
  return bestlen;
}

void toplevel(int all) {
  for (int second = 1; second < N; second++) {
    __builtin_MUTLS_fork(0, mixed);
    int bit = 1 << second;
    best[second] = dist[0][second] + search(second, 1 | bit, all);
    __builtin_MUTLS_join(0);
  }
  __builtin_MUTLS_barrier(0);
}

int main() {
  init();
  int all = (1 << N) - 1;
  toplevel(all);
  int bestlen = 1000000;
  for (int second = 1; second < N; second++)
    if (best[second] < bestlen) bestlen = best[second];
  print_int(bestlen);
  print_newline();
  return bestlen;
}
|}
    n n n n
