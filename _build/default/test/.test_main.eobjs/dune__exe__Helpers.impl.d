test/helpers.ml: Alcotest Mutls_interp Mutls_mir Mutls_progs Mutls_runtime Mutls_speculator Verify
