test/test_end_to_end.ml: Alcotest Helpers Int64 List Mutls_interp Mutls_mir Mutls_runtime Mutls_speculator Printf
