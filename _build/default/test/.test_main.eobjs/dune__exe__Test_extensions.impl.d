test/test_extensions.ml: Alcotest Helpers List Mutls Mutls_interp Mutls_minic Mutls_runtime Mutls_speculator Mutls_workloads Printf
