test/test_fortran.ml: Alcotest Helpers List Mutls_interp Mutls_minifortran Mutls_runtime
