test/test_fortran_more.ml: Alcotest Helpers Mutls_interp Mutls_minic Mutls_minifortran
