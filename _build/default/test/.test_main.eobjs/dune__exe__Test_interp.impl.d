test/test_interp.ml: Alcotest Bytes Int64 Mutls_interp Mutls_minic Mutls_mir
