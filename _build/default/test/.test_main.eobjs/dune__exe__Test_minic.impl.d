test/test_minic.ml: Alcotest Helpers List Mutls_interp Mutls_minic Mutls_runtime
