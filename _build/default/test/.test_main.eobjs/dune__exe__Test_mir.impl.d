test/test_mir.ml: Alcotest Array Astring_contains Builder Cfg Dom Ir List Liveness Mem2reg Mutls_interp Mutls_minic Mutls_mir Mutls_speculator Printer Verify
