test/test_opt.ml: Alcotest Ir List Mutls_interp Mutls_minic Mutls_mir Mutls_runtime Mutls_speculator Mutls_workloads Opt Printf QCheck QCheck_alcotest Test_properties
