test/test_parse.ml: Alcotest Ir List Mutls_interp Mutls_minic Mutls_minifortran Mutls_mir Mutls_runtime Mutls_speculator Mutls_workloads Parse Printer Verify
