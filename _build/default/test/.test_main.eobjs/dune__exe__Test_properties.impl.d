test/test_properties.ml: Array Int64 Mutls_interp Mutls_minic Mutls_runtime Mutls_speculator Printf QCheck QCheck_alcotest
