test/test_runtime.ml: Alcotest Bytes Char Hashtbl Int64 List Mutls_runtime QCheck QCheck_alcotest
