test/test_sim.ml: Alcotest List Mutls_sim QCheck QCheck_alcotest
