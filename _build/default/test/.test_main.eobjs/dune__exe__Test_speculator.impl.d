test/test_speculator.ml: Alcotest Astring_contains Helpers List Mutls_interp Mutls_minic Mutls_mir Mutls_runtime Mutls_speculator Printf String
