(* Shared helpers for the test suites. *)

open Mutls_mir

let check_verified m =
  match Verify.check_module m with
  | () -> ()
  | exception Verify.Invalid msg -> Alcotest.failf "module does not verify: %s" msg

let figure1_module ?n ?model () = Mutls_progs.Samples.figure1 ?n ?model ()

let i64_of_result = function
  | Some (Mutls_interp.Value.VI n) -> n
  | Some (Mutls_interp.Value.VF _) -> Alcotest.fail "float result"
  | None -> Alcotest.fail "no result"

let run_seq m = Mutls_interp.Eval.run_sequential m

let run_tls ?(ncpus = 4) ?(model_override = None) ?(rollback = 0.0) m =
  let transformed = Mutls_speculator.Pass.run m in
  let cfg =
    { Mutls_runtime.Config.default with
      ncpus;
      model_override;
      rollback_probability = rollback }
  in
  Mutls_interp.Eval.run_tls cfg transformed
