(* End-to-end: hand-built MIR with fork/join annotations, run through
   the speculator pass and the TLS runtime, must produce the same
   result as sequential execution. *)

open Helpers

let seq_result () =
  let m = figure1_module () in
  i64_of_result (run_seq m).Mutls_interp.Eval.sret

let test_sequential () =
  let r = seq_result () in
  (* checksum: sum (3i+1)(i+1) for i<32 + sum (7i+1)(i+1) for 32<=i<64 *)
  let expect = ref 0L in
  for i = 0 to 63 do
    let v = if i < 32 then (3 * i) + 1 else (7 * i) + 1 in
    expect := Int64.add !expect (Int64.of_int (v * (i + 1)))
  done;
  Alcotest.(check int64) "sequential checksum" !expect r

let test_pass_verifies () =
  let m = figure1_module () in
  let t = Mutls_speculator.Pass.run m in
  check_verified t;
  (* speculative artifacts exist *)
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (name ^ " generated") true
        (Mutls_mir.Ir.find_func t name <> None))
    [ "work.spec"; "work.stub"; "work.proxy"; "main" ]

let test_tls_matches ncpus () =
  let expect = seq_result () in
  let m = figure1_module () in
  let r = run_tls ~ncpus m in
  Alcotest.(check int64) "TLS checksum" expect (i64_of_result r.Mutls_interp.Eval.tret)

let test_tls_actually_speculates () =
  let m = figure1_module () in
  let r = run_tls ~ncpus:4 m in
  let committed =
    List.filter (fun t -> t.Mutls_runtime.Thread_manager.r_committed)
      r.Mutls_interp.Eval.tretired
  in
  Alcotest.(check bool) "at least one thread committed" true (committed <> [])

let test_models () =
  let expect = seq_result () in
  List.iter
    (fun model ->
      let m = figure1_module () in
      let r = run_tls ~ncpus:4 ~model_override:(Some model) m in
      Alcotest.(check int64)
        (Mutls_runtime.Config.model_to_string model)
        expect
        (i64_of_result r.Mutls_interp.Eval.tret))
    [ Mutls_runtime.Config.In_order; Out_of_order; Mixed ]

let test_rollback_injection () =
  let expect = seq_result () in
  List.iter
    (fun p ->
      let m = figure1_module () in
      let r = run_tls ~ncpus:4 ~rollback:p m in
      Alcotest.(check int64)
        (Printf.sprintf "rollback %.0f%%" (100. *. p))
        expect
        (i64_of_result r.Mutls_interp.Eval.tret))
    [ 0.1; 0.5; 1.0 ]

let tests =
  [
    Alcotest.test_case "sequential baseline" `Quick test_sequential;
    Alcotest.test_case "pass output verifies" `Quick test_pass_verifies;
    Alcotest.test_case "tls ncpus=1" `Quick (test_tls_matches 1);
    Alcotest.test_case "tls ncpus=2" `Quick (test_tls_matches 2);
    Alcotest.test_case "tls ncpus=8" `Quick (test_tls_matches 8);
    Alcotest.test_case "tls speculates" `Quick test_tls_actually_speculates;
    Alcotest.test_case "all forking models" `Quick test_models;
    Alcotest.test_case "rollback injection" `Quick test_rollback_injection;
  ]
