(* The §VI future-work features implemented in this repo: stride value
   prediction, automatic fork heuristics, and the cascade-mode
   ablation. *)

open Helpers
module Config = Mutls_runtime.Config

let accumulator_src = Mutls.Ablations.accumulator_src

let run_cfg cfg m =
  let t = Mutls_speculator.Pass.run m in
  Mutls_interp.Eval.run_tls cfg t

let test_value_prediction_correct () =
  let m = Mutls_minic.Codegen.compile accumulator_src in
  let seq = run_seq m in
  List.iter
    (fun vp ->
      let cfg = { Config.default with ncpus = 4; value_prediction = vp } in
      let r = run_cfg cfg m in
      Alcotest.(check string)
        (Printf.sprintf "vp=%b output" vp)
        seq.Mutls_interp.Eval.soutput r.Mutls_interp.Eval.toutput)
    [ false; true ]

let count_outcomes r =
  let commits =
    List.length
      (List.filter (fun t -> t.Mutls_runtime.Thread_manager.r_committed)
         r.Mutls_interp.Eval.tretired)
  in
  (commits, List.length r.Mutls_interp.Eval.tretired - commits)

let test_value_prediction_commits () =
  let m = Mutls_minic.Codegen.compile accumulator_src in
  let off = run_cfg { Config.default with ncpus = 4 } m in
  let on = run_cfg { Config.default with ncpus = 4; value_prediction = true } m in
  let c_off, _ = count_outcomes off in
  let c_on, r_on = count_outcomes on in
  (* without prediction the accumulator mispredicts everywhere *)
  Alcotest.(check int) "no commits without prediction" 0 c_off;
  Alcotest.(check bool) "prediction enables commits" true (c_on > 10);
  Alcotest.(check bool) "few residual rollbacks" true (r_on < c_on)

let test_auto_annotate_correct () =
  let m = Mutls_minic.Codegen.compile Mutls.Ablations.plain_mandelbrot in
  let seq = run_seq m in
  let n = Mutls.Auto_annotate.run m in
  Alcotest.(check bool) "points inserted" true (n >= 1);
  check_verified m;
  let r = run_cfg { Config.default with ncpus = 8 } m in
  Alcotest.(check string) "auto output" seq.Mutls_interp.Eval.soutput
    r.Mutls_interp.Eval.toutput;
  let commits, _ = count_outcomes r in
  Alcotest.(check bool) "auto speculation commits" true (commits > 0)

let test_auto_annotate_skips_annotated () =
  (* manual annotations are respected: nothing added on top *)
  let w = Mutls_workloads.Workloads.find "3x+1" in
  let m = Mutls_minic.Codegen.compile (w.Mutls_workloads.Workloads.small ()) in
  Alcotest.(check int) "annotated functions untouched" 0
    (Mutls.Auto_annotate.run m)

let test_auto_annotate_speeds_up () =
  let m = Mutls_minic.Codegen.compile Mutls.Ablations.plain_mandelbrot in
  let seq = run_seq m in
  ignore (Mutls.Auto_annotate.run m);
  let r = run_cfg { Config.default with ncpus = 8 } m in
  let speedup = seq.Mutls_interp.Eval.scost /. r.Mutls_interp.Eval.tfinish in
  Alcotest.(check bool) "auto parallelization gains" true (speedup > 2.0)

let test_cascade_modes_correct () =
  (* both cascade modes stay correct under heavy injected rollbacks *)
  let w = Mutls_workloads.Workloads.find "nqueen" in
  let m = Mutls_minic.Codegen.compile (w.Mutls_workloads.Workloads.small ()) in
  let seq = run_seq m in
  List.iter
    (fun cascade ->
      let cfg =
        { Config.default with ncpus = 8; cascade; rollback_probability = 0.3 }
      in
      let r = run_cfg cfg m in
      Alcotest.(check string)
        (Config.cascade_to_string cascade ^ " cascade output")
        seq.Mutls_interp.Eval.soutput r.Mutls_interp.Eval.toutput)
    [ Config.Tree_cascade; Config.Linear_cascade ]

let tests =
  [
    Alcotest.test_case "value prediction correctness" `Quick
      test_value_prediction_correct;
    Alcotest.test_case "value prediction enables commits" `Quick
      test_value_prediction_commits;
    Alcotest.test_case "auto-annotation correctness" `Quick
      test_auto_annotate_correct;
    Alcotest.test_case "auto-annotation respects manual" `Quick
      test_auto_annotate_skips_annotated;
    Alcotest.test_case "auto-annotation speeds up" `Quick
      test_auto_annotate_speeds_up;
    Alcotest.test_case "cascade modes correctness" `Quick
      test_cascade_modes_correct;
  ]
