(* MiniFortran front-end tests: language semantics, by-reference
   argument passing, and TLS equivalence on annotated programs. *)

open Helpers

let run_src src =
  let m = Mutls_minifortran.Fcodegen.compile src in
  run_seq m

let check_output name src expected =
  let r = run_src src in
  Alcotest.(check string) name expected r.Mutls_interp.Eval.soutput

let test_basics () =
  check_output "arith"
    {|
program main
  i = 3 + 4 * 5
  print *, i
end program
|}
    "23\n";
  check_output "do loop"
    {|
program main
  integer s, i
  s = 0
  do i = 1, 10
    s = s + i
  end do
  print *, s
end program
|}
    "55\n";
  check_output "do step"
    {|
program main
  integer s, i
  s = 0
  do i = 10, 2, -2
    s = s + i
  end do
  print *, s
end program
|}
    "30\n";
  check_output "if/else"
    {|
program main
  integer x
  x = 7
  if (x .gt. 5) then
    print *, 1
  else
    print *, 0
  end if
end program
|}
    "1\n";
  check_output "one-line if + exit"
    {|
program main
  integer i
  do i = 1, 100
    if (i .eq. 5) exit
  end do
  print *, i
end program
|}
    "5\n"

let test_reals () =
  check_output "real arithmetic"
    {|
program main
  real*8 x, y
  x = 1.5d0
  y = x * 4.0 + 0.25
  print *, y
end program
|}
    "6.25\n";
  check_output "sqrt"
    {|
program main
  print *, sqrt(169.0d0)
end program
|}
    "13\n";
  check_output "mixed int/real"
    {|
program main
  integer n
  real*8 x
  n = 3
  x = n / 2.0d0
  print *, x
end program
|}
    "1.5\n";
  check_output "pow"
    {|
program main
  integer k
  k = 2 ** 10
  print *, k
end program
|}
    "1024\n"

let test_arrays_units () =
  check_output "array"
    {|
program main
  integer a(10), i, s
  do i = 1, 10
    a(i) = i * i
  end do
  s = 0
  do i = 1, 10
    s = s + a(i)
  end do
  print *, s
end program
|}
    "385\n";
  check_output "2d column-major"
    {|
program main
  real*8 mat(3, 4)
  integer i, j
  do j = 1, 4
    do i = 1, 3
      mat(i, j) = i * 10 + j
    end do
  end do
  print *, mat(2, 3), mat(3, 4)
end program
|}
    "23 34\n";
  check_output "subroutine by reference"
    {|
subroutine bump(x)
  integer x
  x = x + 1
end
program main
  integer v
  v = 41
  call bump(v)
  print *, v
end program
|}
    "42\n";
  check_output "array argument"
    {|
subroutine fill(a, n)
  integer a(100), n, i
  do i = 1, n
    a(i) = i * 2
  end do
end
program main
  integer b(100), s, i
  call fill(b, 5)
  s = 0
  do i = 1, 5
    s = s + b(i)
  end do
  print *, s
end program
|}
    "30\n";
  check_output "function"
    {|
integer function square(n)
  integer n
  square = n * n
end
program main
  print *, square(12)
end program
|}
    "144\n";
  check_output "recursion"
    {|
integer function fact(n)
  integer n, m
  if (n .le. 1) then
    fact = 1
  else
    m = n - 1
    fact = n * fact(m)
  end if
end
program main
  print *, fact(10)
end program
|}
    "3628800\n"

(* --- TLS -------------------------------------------------------------- *)

let tls_src =
  {|
subroutine work(a)
  integer a(64), i
  call MUTLS_FORK(0, mixed)
  do i = 1, 32
    a(i) = 3 * i + 1
  end do
  call MUTLS_JOIN(0)
  do i = 33, 64
    a(i) = 7 * i + 1
  end do
end
program main
  integer a(64), s, i
  call work(a)
  s = 0
  do i = 1, 64
    s = s + a(i) * i
  end do
  print *, s
end program
|}

let test_tls_equivalence () =
  let m = Mutls_minifortran.Fcodegen.compile tls_src in
  let seq = run_seq m in
  let tls = run_tls ~ncpus:4 m in
  Alcotest.(check string) "fortran TLS output" seq.Mutls_interp.Eval.soutput
    tls.Mutls_interp.Eval.toutput

let test_tls_speculates () =
  let m = Mutls_minifortran.Fcodegen.compile tls_src in
  let tls = run_tls ~ncpus:4 m in
  Alcotest.(check bool) "fortran TLS commits" true
    (List.exists (fun t -> t.Mutls_runtime.Thread_manager.r_committed)
       tls.Mutls_interp.Eval.tretired)

let tests =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "reals" `Quick test_reals;
    Alcotest.test_case "arrays and units" `Quick test_arrays_units;
    Alcotest.test_case "tls equivalence" `Quick test_tls_equivalence;
    Alcotest.test_case "tls speculates" `Quick test_tls_speculates;
  ]
