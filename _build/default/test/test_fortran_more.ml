(* Additional MiniFortran coverage: loop edge cases, expression-valued
   arguments, cycle/exit inside speculative regions, and nested unit
   call chains. *)

open Helpers

let out src =
  (Mutls_minifortran.Fcodegen.compile src |> Mutls_interp.Eval.run_sequential)
    .Mutls_interp.Eval.soutput

let check name src expected = Alcotest.(check string) name expected (out src)

let test_loop_edges () =
  check "zero-trip loop"
    {|
program main
  integer s, i
  s = 0
  do i = 5, 1
    s = s + 1
  end do
  print *, s
end program
|}
    "0\n";
  check "negative-step over-shoot"
    {|
program main
  integer s, i
  s = 0
  do i = 9, 0, -4
    s = s + i
  end do
  print *, s
end program
|}
    "15\n";
  check "cycle"
    {|
program main
  integer s, i
  s = 0
  do i = 1, 10
    if (mod(i, 2) .eq. 0) cycle
    s = s + i
  end do
  print *, s
end program
|}
    "25\n";
  check "loop variable after exit"
    {|
program main
  integer i, j
  j = 0
  do i = 1, 100
    j = j + i
    if (j .gt. 20) exit
  end do
  print *, i, j
end program
|}
    "6 21\n"

let test_byref_expressions () =
  (* expression arguments materialise into temporaries; variable
     arguments share storage *)
  check "expression argument"
    {|
subroutine twice(x, r)
  integer x, r
  r = 2 * x
  x = 0
end
program main
  integer a, r
  a = 21
  call twice(a + 0, r)
  print *, a, r
end program
|}
    "21 42\n";
  check "variable argument mutated"
    {|
subroutine twice(x, r)
  integer x, r
  r = 2 * x
  x = 0
end
program main
  integer a, r
  a = 21
  call twice(a, r)
  print *, a, r
end program
|}
    "0 42\n";
  check "array element by reference"
    {|
subroutine bump(x)
  integer x
  x = x + 100
end
program main
  integer a(5), i
  do i = 1, 5
    a(i) = i
  end do
  call bump(a(3))
  print *, a(2), a(3), a(4)
end program
|}
    "2 103 4\n"

let test_call_chains () =
  check "function calling subroutine results"
    {|
subroutine square(x, r)
  integer x, r
  r = x * x
end
integer function sumsq(n)
  integer n, i, t, r
  t = 0
  do i = 1, n
    call square(i, r)
    t = t + r
  end do
  sumsq = t
end
program main
  print *, sumsq(5)
end program
|}
    "55\n"

let test_fortran_tls_dfs () =
  (* speculative region with cycle/exit control flow inside *)
  let src =
    {|
subroutine work(res, n)
  integer res(32), n
  integer c, i, acc
  do c = 1, n
    call MUTLS_FORK(0, mixed)
    acc = 0
    do i = 1, 50
      if (mod(i + c, 7) .eq. 0) cycle
      acc = acc + i * c
      if (acc .gt. 5000) exit
    end do
    res(c) = acc
    call MUTLS_JOIN(0)
  end do
end
program main
  integer res(32), t, c
  call work(res, 32)
  t = 0
  do c = 1, 32
    t = t + mod(res(c), 1000)
  end do
  print *, t
end program
|}
  in
  let m = Mutls_minifortran.Fcodegen.compile src in
  let seq = run_seq m in
  let tls = run_tls ~ncpus:6 m in
  Alcotest.(check string) "fortran TLS with cycle/exit"
    seq.Mutls_interp.Eval.soutput tls.Mutls_interp.Eval.toutput

let test_global_inits_installed () =
  (* MiniC global initializers land in memory correctly *)
  let src =
    {|
int words[4] = {10, -20, 30, -40};
double floats[2] = {1.5, -2.25};
int scalar = 7;
int main() {
  print_int(words[0] + words[1] + words[2] + words[3]);
  print_char(' ');
  print_float(floats[0] + floats[1]);
  print_char(' ');
  print_int(scalar);
  print_newline();
  return 0;
}
|}
  in
  let m = Mutls_minic.Codegen.compile src in
  let r = Mutls_interp.Eval.run_sequential m in
  Alcotest.(check string) "initializers" "-20 -0.75 7\n" r.Mutls_interp.Eval.soutput

let tests =
  [
    Alcotest.test_case "loop edge cases" `Quick test_loop_edges;
    Alcotest.test_case "by-reference arguments" `Quick test_byref_expressions;
    Alcotest.test_case "call chains" `Quick test_call_chains;
    Alcotest.test_case "fortran TLS with cycle/exit" `Quick test_fortran_tls_dfs;
    Alcotest.test_case "global initializers" `Quick test_global_inits_installed;
  ]
