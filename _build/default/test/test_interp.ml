(* Interpreter substrate: the flat memory, value conversions, extern
   functions, and trap conditions. *)

module Mem = Mutls_interp.Memory
module V = Mutls_interp.Value
module I = Mutls_mir.Ir

let make () = Mem.create ~globals_size:4096 ~heap_size:65536 ~stack_size:4096 ~nstacks:4

let test_memory_typed_access () =
  let m = make () in
  let a = m.Mem.globals_base in
  Mem.write_i64 m a 0x0123456789ABCDEFL;
  Alcotest.(check int64) "i64 roundtrip" 0x0123456789ABCDEFL (Mem.read_i64 m a);
  Alcotest.(check int64) "i32 low half (LE)" 0x89ABCDEFL
    (Int64.logand (Mem.read_i32 m a) 0xFFFFFFFFL);
  Alcotest.(check int64) "i8 lowest byte" 0xEFL (Mem.read_i8 m a);
  Mem.write_f64 m (a + 8) 3.25;
  Alcotest.(check (float 0.0)) "f64 roundtrip" 3.25 (Mem.read_f64 m (a + 8));
  Mem.write_i32 m (a + 16) (-2L);
  Alcotest.(check int64) "i32 truncates" 0xFFFFFFFEL
    (Int64.logand (Mem.read_i32 m (a + 16)) 0xFFFFFFFFL)

let test_memory_fault () =
  let m = make () in
  Alcotest.check_raises "null guard" (Mem.Fault 0) (fun () ->
      ignore (Mem.read_i64 m 0));
  let huge = Bytes.length m.Mem.data in
  Alcotest.check_raises "past end" (Mem.Fault huge) (fun () ->
      ignore (Mem.read_i64 m huge))

let test_memory_heap () =
  let m = make () in
  let a = Mem.malloc m 100 in
  let b = Mem.malloc m 10 in
  Alcotest.(check bool) "heap addresses ordered" true (b >= a + 104);
  Alcotest.(check bool) "8-aligned" true (a land 7 = 0 && b land 7 = 0);
  Alcotest.(check (option int)) "free returns size" (Some 104) (Mem.free m a);
  Alcotest.(check (option int)) "double free" None (Mem.free m a)

let test_memory_stacks () =
  let m = make () in
  let b0, l0 = Mem.stack_slot m 0 in
  let b1, _ = Mem.stack_slot m 1 in
  Alcotest.(check int) "slots adjacent" b1 l0;
  Alcotest.(check int) "slot size" 4096 (l0 - b0);
  Alcotest.check_raises "bad rank" (Invalid_argument "Memory.stack_slot")
    (fun () -> ignore (Mem.stack_slot m 4))

let test_value_conversions () =
  Alcotest.(check int64) "trunc i8" 0xCDL (V.truncate_to I.I8 0xABCDL);
  Alcotest.(check int64) "trunc i32" 0x89ABCDEFL
    (V.truncate_to I.I32 0x0123456789ABCDEFL);
  Alcotest.(check int64) "sext i8 negative" (-1L) (V.sext_of I.I8 0xFFL);
  Alcotest.(check int64) "sext i8 positive" 0x7FL (V.sext_of I.I8 0x7FL);
  Alcotest.(check int64) "sext i32" (-2L) (V.sext_of I.I32 0xFFFFFFFEL);
  Alcotest.(check bool) "bool" true (V.to_bool (V.VI 7L));
  Alcotest.(check bool) "not bool" false (V.to_bool (V.VI 0L))

let test_externs () =
  let open Mutls_interp.Externs in
  Alcotest.(check bool) "sqrt is safe" true (is_safe "sqrt");
  Alcotest.(check bool) "print is unsafe" false (is_safe "print_int");
  Alcotest.(check bool) "malloc is unsafe" false (is_safe "malloc");
  (match eval_pure "abs" [ V.VI (-5L) ] with
  | Some (Ret (V.VI 5L)) -> ()
  | _ -> Alcotest.fail "abs");
  (match eval_pure "pow" [ V.VF 2.0; V.VF 10.0 ] with
  | Some (Ret (V.VF x)) -> Alcotest.(check (float 1e-9)) "pow" 1024.0 x
  | _ -> Alcotest.fail "pow");
  Alcotest.(check bool) "unknown extern" true (eval_pure "nosuch" [] = None)

(* trap conditions through full programs *)
let expect_trap name src =
  let m = Mutls_minic.Codegen.compile src in
  match Mutls_interp.Eval.run_sequential m with
  | _ -> Alcotest.failf "%s: expected a trap" name
  | exception Mutls_interp.Eval.Trap _ -> ()

let test_traps () =
  expect_trap "div by zero" "int main() { int z = 0; return 5 / z; }";
  expect_trap "rem by zero" "int main() { int z = 0; return 5 % z; }";
  expect_trap "stack overflow"
    "int f(int n) { int buf[512]; buf[0] = n; return f(n + 1) + buf[0]; }\n\
     int main() { return f(0); }"

let test_int64_semantics () =
  (* interpreter arithmetic is two's-complement 64-bit *)
  let run src =
    let m = Mutls_minic.Codegen.compile src in
    match (Mutls_interp.Eval.run_sequential m).Mutls_interp.Eval.sret with
    | Some (V.VI v) -> v
    | _ -> Alcotest.fail "no result"
  in
  Alcotest.(check int64) "wraparound"
    Int64.min_int
    (run "int main() { int x = 9223372036854775807; return x + 1; }");
  Alcotest.(check int64) "neg division" (-3L) (run "int main() { return -7 / 2; }");
  Alcotest.(check int64) "neg remainder" (-1L) (run "int main() { return -7 % 2; }");
  Alcotest.(check int64) "shift" (-16L) (run "int main() { return (-1) << 4; }");
  Alcotest.(check int64) "arith shift right" (-1L)
    (run "int main() { return (-1) >> 10; }")

let tests =
  [
    Alcotest.test_case "memory typed access" `Quick test_memory_typed_access;
    Alcotest.test_case "memory faults" `Quick test_memory_fault;
    Alcotest.test_case "heap alloc/free" `Quick test_memory_heap;
    Alcotest.test_case "stack slots" `Quick test_memory_stacks;
    Alcotest.test_case "value conversions" `Quick test_value_conversions;
    Alcotest.test_case "externs" `Quick test_externs;
    Alcotest.test_case "traps" `Quick test_traps;
    Alcotest.test_case "int64 semantics" `Quick test_int64_semantics;
  ]
