(* MiniC front-end: parse/compile/execute checks, then TLS equivalence
   on annotated programs. *)

open Helpers

let run_src src =
  let m = Mutls_minic.Codegen.compile src in
  run_seq m

let check_output name src expected =
  let r = run_src src in
  Alcotest.(check string) name expected r.Mutls_interp.Eval.soutput

let check_ret name src expected =
  let r = run_src src in
  Alcotest.(check int64) name expected (i64_of_result r.Mutls_interp.Eval.sret)

let test_arith () =
  check_ret "arith" "int main() { return (3 + 4 * 5 - 1) / 2 % 7; }" 4L;
  check_ret "shift" "int main() { return (1 << 10) >> 3; }" 128L;
  check_ret "bitops" "int main() { return (12 & 10) | (1 ^ 3); }" 10L;
  check_ret "cmp" "int main() { return (3 < 4) + (4 <= 4) + (5 > 6) + (7 != 7); }" 2L;
  check_ret "neg" "int main() { return -5 + 10; }" 5L;
  check_ret "ternary" "int main() { return 3 > 2 ? 42 : 7; }" 42L

let test_locals_control () =
  check_ret "while" "int main() { int s = 0; int i = 0; while (i < 10) { s += i; i++; } return s; }" 45L;
  check_ret "for" "int main() { int s = 0; for (int i = 1; i <= 10; i++) s = s + i; return s; }" 55L;
  check_ret "if" "int main() { int x = 5; if (x > 3) x = 1; else x = 2; return x; }" 1L;
  check_ret "break"
    "int main() { int s = 0; for (int i = 0; i < 100; i++) { if (i == 5) break; s += i; } return s; }"
    10L;
  check_ret "continue"
    "int main() { int s = 0; for (int i = 0; i < 10; i++) { if (i % 2) continue; s += i; } return s; }"
    20L;
  check_ret "logic"
    "int main() { int a = 1; int b = 0; return (a && !b) + (b || a) + (b && a); }" 2L

let test_functions () =
  check_ret "fact" "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); } int main() { return fact(10); }" 3628800L;
  check_ret "fib"
    "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } int main() { return fib(15); }"
    610L;
  check_ret "multi-arg"
    "int f(int a, int b, int c) { return a * 100 + b * 10 + c; } int main() { return f(1, 2, 3); }"
    123L

let test_arrays () =
  check_ret "global array"
    "int a[10]; int main() { for (int i = 0; i < 10; i++) a[i] = i * i; int s = 0; for (int i = 0; i < 10; i++) s += a[i]; return s; }"
    285L;
  check_ret "local array"
    "int main() { int a[5]; for (int i = 0; i < 5; i++) a[i] = i + 1; return a[0] + a[4]; }"
    6L;
  check_ret "2d array"
    "double m[3][3]; int main() { for (int i = 0; i < 3; i++) for (int j = 0; j < 3; j++) m[i][j] = i * 3 + j; return (int)(m[2][2] + m[1][0]); }"
    11L;
  check_ret "array init"
    "int t[4] = {10, 20, 30, 40}; int main() { return t[1] + t[3]; }" 60L

let test_pointers () =
  check_ret "addr/deref"
    "int main() { int x = 5; int *p = &x; *p = 9; return x; }" 9L;
  check_ret "pointer index"
    "int a[4]; int main() { int *p = a; p[2] = 7; return a[2]; }" 7L;
  check_ret "pointer arith"
    "int a[4]; int main() { int *p = a + 1; *p = 3; return a[1]; }" 3L;
  check_ret "malloc"
    "int main() { int *p = malloc(8 * 10); for (int i = 0; i < 10; i++) p[i] = i; int s = 0; for (int i = 0; i < 10; i++) s += p[i]; free(p); return s; }"
    45L

let test_types () =
  check_ret "double math"
    "int main() { double x = 1.5; double y = 2.5; return (int)(x * y + 0.25); }" 4L;
  check_ret "int32 wraparound"
    "int main() { int32 x = 2147483647; x = x + 1; return x < 0; }" 1L;
  check_ret "char"
    "int main() { char c = 'A'; c = c + 1; return c; }" 66L;
  check_ret "sqrt extern"
    "int main() { return (int)sqrt(144.0); }" 12L;
  check_output "print"
    "int main() { print_int(42); print_char(' '); print_float(2.5); print_newline(); return 0; }"
    "42 2.5\n"

(* --- TLS equivalence --------------------------------------------------- *)

let loop_tls_src =
  {|
int a[64];
void work() {
  __builtin_MUTLS_fork(0, mixed);
  for (int i = 0; i < 32; i++) a[i] = 3 * i + 1;
  __builtin_MUTLS_join(0);
  for (int i = 32; i < 64; i++) a[i] = 7 * i + 1;
}
int main() {
  work();
  int s = 0;
  for (int i = 0; i < 64; i++) s += a[i] * (i + 1);
  return s;
}
|}

(* Divide-and-conquer in the paper's style: the speculative thread
   executes the second recursive call; partial results travel through
   memory so no parent-computed register is live at the join point
   (the paper's fft does exactly this). *)
let recursion_tls_src =
  {|
int sums[32];
int work(int depth, int idx) {
  if (depth == 0) {
    sums[idx] = idx * idx + 1;
    return sums[idx];
  }
  __builtin_MUTLS_fork(0, mixed);
  sums[idx * 2] = work(depth - 1, idx * 2);
  __builtin_MUTLS_join(0);
  sums[idx * 2 + 1] = work(depth - 1, idx * 2 + 1);
  __builtin_MUTLS_barrier(0);
  return sums[idx * 2] + sums[idx * 2 + 1];
}
int main() {
  return work(3, 1);
}
|}

(* A parent-computed register live at the join point must be caught by
   MUTLS_validate_local and rolled back, not silently committed. *)
let misprediction_src =
  {|
int g;
int work(int n) {
  int left = 0;
  __builtin_MUTLS_fork(0, mixed);
  left = n * 3;
  __builtin_MUTLS_join(0);
  g = left + 10;
  __builtin_MUTLS_barrier(0);
  return g;
}
int main() { return work(7); }
|}

let check_tls name ?(ncpus = 4) src =
  let m = Mutls_minic.Codegen.compile src in
  let seq = run_seq m in
  let tls = run_tls ~ncpus m in
  Alcotest.(check int64) (name ^ " result")
    (i64_of_result seq.Mutls_interp.Eval.sret)
    (i64_of_result tls.Mutls_interp.Eval.tret);
  Alcotest.(check string) (name ^ " output") seq.Mutls_interp.Eval.soutput
    tls.Mutls_interp.Eval.toutput

let test_tls_loop () = check_tls "loop" loop_tls_src
let test_tls_recursion () = check_tls "tree recursion" recursion_tls_src

let test_tls_recursion_speculates () =
  let m = Mutls_minic.Codegen.compile recursion_tls_src in
  let r = run_tls ~ncpus:8 m in
  let committed =
    List.filter (fun t -> t.Mutls_runtime.Thread_manager.r_committed)
      r.Mutls_interp.Eval.tretired
  in
  Alcotest.(check bool) "tree recursion commits speculative threads" true
    (List.length committed >= 2)

let test_misprediction_rolls_back () =
  let m = Mutls_minic.Codegen.compile misprediction_src in
  let seq = run_seq m in
  let tls = run_tls ~ncpus:4 m in
  Alcotest.(check int64) "result still correct"
    (i64_of_result seq.Mutls_interp.Eval.sret)
    (i64_of_result tls.Mutls_interp.Eval.tret);
  let rolled_back =
    List.exists (fun t -> not t.Mutls_runtime.Thread_manager.r_committed)
      tls.Mutls_interp.Eval.tretired
  in
  Alcotest.(check bool) "mispredicted local causes a rollback" true rolled_back

let tests =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "locals and control flow" `Quick test_locals_control;
    Alcotest.test_case "functions" `Quick test_functions;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "pointers" `Quick test_pointers;
    Alcotest.test_case "types and externs" `Quick test_types;
    Alcotest.test_case "tls loop equivalence" `Quick test_tls_loop;
    Alcotest.test_case "tls recursion equivalence" `Quick test_tls_recursion;
    Alcotest.test_case "tls recursion speculates" `Quick test_tls_recursion_speculates;
    Alcotest.test_case "misprediction rolls back" `Quick test_misprediction_rolls_back;
  ]
