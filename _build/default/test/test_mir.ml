(* MIR infrastructure: CFG, dominators, liveness, verifier, mem2reg and
   reg2mem — including the round-trip property the speculator pass
   relies on (demote, then re-promote, preserves semantics). *)

open Mutls_mir
module I = Ir

(* Build a diamond CFG:  entry -> a, b -> join *)
let diamond () =
  let m = I.create_module () in
  let b = Builder.create m ~name:"f" ~params:[ ("x", I.I64) ] ~ret:I.I64 in
  let entry = Builder.add_block b "entry" in
  let ba = Builder.add_block b "a" in
  let bb = Builder.add_block b "b" in
  let join = Builder.add_block b "join" in
  Builder.position b entry;
  let c = Builder.icmp b I.Isgt I.I64 (I.Arg 0) (I.i64 0) in
  Builder.cbr b c "a" "b";
  Builder.position b ba;
  let va = Builder.add_ b (I.Arg 0) (I.i64 1) in
  Builder.br b "join";
  Builder.position b bb;
  let vb = Builder.mul_ b (I.Arg 0) (I.i64 2) in
  Builder.br b "join";
  Builder.position b join;
  let phi = Builder.phi b I.I64 [ ("a", va); ("b", vb) ] in
  Builder.ret b (Some phi);
  (m, Builder.func b)

let test_cfg () =
  let _, f = diamond () in
  let cfg = Cfg.of_func f in
  Alcotest.(check int) "blocks" 4 (Cfg.nblocks cfg);
  Alcotest.(check (list int)) "entry succs" [ 1; 2 ]
    (List.sort compare cfg.Cfg.succs.(0));
  Alcotest.(check (list int)) "join preds" [ 1; 2 ]
    (List.sort compare cfg.Cfg.preds.(3));
  let rpo = Cfg.reverse_postorder cfg in
  Alcotest.(check int) "rpo starts at entry" 0 (List.hd rpo);
  Alcotest.(check int) "rpo covers all" 4 (List.length rpo)

let test_dominators () =
  let _, f = diamond () in
  let cfg = Cfg.of_func f in
  let dom = Dom.compute cfg in
  (* entry dominates everything; join is dominated only by entry *)
  Alcotest.(check int) "idom(a)=entry" 0 dom.Dom.idom.(1);
  Alcotest.(check int) "idom(b)=entry" 0 dom.Dom.idom.(2);
  Alcotest.(check int) "idom(join)=entry" 0 dom.Dom.idom.(3);
  Alcotest.(check bool) "entry dom join" true (Dom.dominates dom 0 3);
  Alcotest.(check bool) "a !dom join" false (Dom.dominates dom 1 3);
  (* join is in the dominance frontier of both branches *)
  Alcotest.(check (list int)) "DF(a)" [ 3 ] dom.Dom.frontiers.(1);
  Alcotest.(check (list int)) "DF(b)" [ 3 ] dom.Dom.frontiers.(2)

let test_verify_catches_errors () =
  let m, f = diamond () in
  Verify.check_module m;
  (* break it: branch to a nonexistent block *)
  let join = I.find_block_exn f "join" in
  let saved = join.I.term in
  join.I.term <- I.Br "nowhere";
  (match Verify.check_module m with
  | () -> Alcotest.fail "verifier accepted a bad branch"
  | exception Verify.Invalid _ -> ());
  join.I.term <- saved;
  (* break it differently: use an undefined register *)
  join.I.term <- I.Ret (Some (I.Reg 999));
  (match Verify.check_module m with
  | () -> Alcotest.fail "verifier accepted an undefined register"
  | exception Verify.Invalid _ -> ());
  join.I.term <- saved;
  Verify.check_module m

let test_verify_type_errors () =
  let m = I.create_module () in
  let b = Builder.create m ~name:"g" ~params:[] ~ret:I.I64 in
  let entry = Builder.add_block b "entry" in
  Builder.position b entry;
  (* float operand in an integer binop *)
  let bad = Builder.binop b I.Add I.I64 (I.f64 1.0) (I.i64 2) in
  Builder.ret b (Some bad);
  match Verify.check_module m with
  | () -> Alcotest.fail "verifier accepted f64 in an i64 add"
  | exception Verify.Invalid _ -> ()

(* mem2reg on a MiniC-style alloca program *)
let test_mem2reg_promotes () =
  let src =
    {|
int f(int n) {
  int acc = 0;
  for (int i = 0; i < n; i++) acc = acc + i * i;
  return acc;
}
int main() { return f(10); }
|}
  in
  let m = Mutls_minic.Codegen.compile src in
  (* front-end already ran mem2reg: scalar allocas must be gone *)
  let f = I.find_func_exn m "f" in
  let allocas =
    List.concat_map
      (fun (b : I.block) ->
        List.filter (fun (i : I.instr) ->
            match i.I.kind with I.Alloca _ -> true | _ -> false)
          b.I.insts)
      f.I.blocks
  in
  Alcotest.(check int) "all scalars promoted" 0 (List.length allocas);
  (* and loops got phis *)
  let phis =
    List.fold_left (fun acc (b : I.block) -> acc + List.length b.I.phis) 0 f.I.blocks
  in
  Alcotest.(check bool) "phis created" true (phis >= 2)

let test_mem2reg_respects_escapes () =
  let src =
    {|
int g;
void h(int *p) { *p = 5; }
int main() { int x = 1; h(&x); return x; }
|}
  in
  let m = Mutls_minic.Codegen.compile src in
  let main = I.find_func_exn m "main" in
  let allocas =
    List.concat_map
      (fun (b : I.block) ->
        List.filter (fun (i : I.instr) ->
            match i.I.kind with I.Alloca _ -> true | _ -> false)
          b.I.insts)
      main.I.blocks
  in
  Alcotest.(check int) "escaping alloca kept" 1 (List.length allocas);
  let r = Mutls_interp.Eval.run_sequential m in
  Alcotest.(check bool) "by-address update works" true
    (r.Mutls_interp.Eval.sret = Some (Mutls_interp.Value.VI 5L))

(* round-trip property: reg2mem (demote everything) followed by mem2reg
   preserves program results — exactly what the speculator pass relies
   on around its block surgery *)
let roundtrip_programs =
  [
    ( "loops",
      {|
int main() {
  int a = 0; int b = 1;
  for (int i = 0; i < 15; i++) { int t = a + b; a = b; b = t; }
  return b;
}
|},
      987L );
    ( "nested control",
      {|
int main() {
  int s = 0;
  for (int i = 0; i < 10; i++) {
    if (i % 3 == 0) s += i * 2;
    else if (i % 3 == 1) s -= i;
    else { int j = i; while (j > 0) { s++; j--; } }
  }
  return s;
}
|},
      39L );
    ( "recursion + arrays",
      {|
int memo[30];
int fibm(int n) {
  if (n < 2) return n;
  if (memo[n]) return memo[n];
  memo[n] = fibm(n - 1) + fibm(n - 2);
  return memo[n];
}
int main() { return fibm(25); }
|},
      75025L );
  ]

let test_reg2mem_roundtrip () =
  List.iter
    (fun (name, src, expected) ->
      let m = Mutls_minic.Codegen.compile src in
      (* sanity *)
      let r0 = Mutls_interp.Eval.run_sequential m in
      Alcotest.(check bool) (name ^ " baseline") true
        (r0.Mutls_interp.Eval.sret = Some (Mutls_interp.Value.VI expected));
      (* demote every function, then re-promote *)
      List.iter (fun f -> ignore (Mutls_speculator.Reg2mem.demote f)) m.I.funcs;
      (match Verify.check_module m with
      | () -> ()
      | exception Verify.Invalid e -> Alcotest.failf "%s demoted invalid: %s" name e);
      let r1 = Mutls_interp.Eval.run_sequential m in
      Alcotest.(check bool) (name ^ " demoted result") true
        (r1.Mutls_interp.Eval.sret = Some (Mutls_interp.Value.VI expected));
      Mem2reg.run_module m;
      (match Verify.check_module m with
      | () -> ()
      | exception Verify.Invalid e -> Alcotest.failf "%s repromoted invalid: %s" name e);
      let r2 = Mutls_interp.Eval.run_sequential m in
      Alcotest.(check bool) (name ^ " repromoted result") true
        (r2.Mutls_interp.Eval.sret = Some (Mutls_interp.Value.VI expected)))
    roundtrip_programs

let test_liveness () =
  let _, f = diamond () in
  let live = Liveness.compute f in
  (* the phi's operands are live out of their defining blocks *)
  let out_a = Liveness.live_out live "a" in
  Alcotest.(check bool) "va live out of a" true
    (not (Liveness.IntSet.is_empty out_a));
  (* nothing is live out of the exit *)
  Alcotest.(check bool) "exit has no live-out" true
    (Liveness.IntSet.is_empty (Liveness.live_out live "join"))

let test_printer_roundtrip_smoke () =
  let m, _ = diamond () in
  let s = Printer.module_to_string m in
  Alcotest.(check bool) "printer mentions function" true
    (Astring_contains.contains s "define i64 @f");
  Alcotest.(check bool) "printer mentions phi" true
    (Astring_contains.contains s "phi i64")

let tests =
  [
    Alcotest.test_case "cfg construction" `Quick test_cfg;
    Alcotest.test_case "dominators and frontiers" `Quick test_dominators;
    Alcotest.test_case "verifier rejects bad IR" `Quick test_verify_catches_errors;
    Alcotest.test_case "verifier type checks" `Quick test_verify_type_errors;
    Alcotest.test_case "mem2reg promotes scalars" `Quick test_mem2reg_promotes;
    Alcotest.test_case "mem2reg keeps escaping allocas" `Quick
      test_mem2reg_respects_escapes;
    Alcotest.test_case "reg2mem/mem2reg round trip" `Quick test_reg2mem_roundtrip;
    Alcotest.test_case "liveness" `Quick test_liveness;
    Alcotest.test_case "printer smoke" `Quick test_printer_roundtrip_smoke;
  ]
