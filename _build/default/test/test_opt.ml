(* Optimizer: folding/DCE/CFG-simplification correctness — specific
   rewrites, preservation of program results on every benchmark, and a
   random-expression equivalence property. *)

open Mutls_mir
module I = Ir

let compile = Mutls_minic.Codegen.compile

let run_ret m =
  match (Mutls_interp.Eval.run_sequential m).Mutls_interp.Eval.sret with
  | Some (Mutls_interp.Value.VI v) -> v
  | _ -> Alcotest.fail "no integer result"

let count_instrs (f : I.func) =
  List.fold_left (fun acc (b : I.block) -> acc + List.length b.I.insts) 0 f.I.blocks

let test_constant_folding () =
  let m = compile "int main() { return (3 + 4) * (10 - 2) / 2; }" in
  Opt.run_module m;
  let main = I.find_func_exn m "main" in
  (* everything folds away: a single block returning a constant *)
  Alcotest.(check int) "all folded" 0 (count_instrs main);
  (match (I.entry_block main).I.term with
  | I.Ret (Some (I.Const (I.Cint (28L, _)))) -> ()
  | I.Br _ -> (
    (* or entry branches to a single folded return *)
    match main.I.blocks with
    | [ _; b ] -> (
      match b.I.term with
      | I.Ret (Some (I.Const (I.Cint (28L, _)))) -> ()
      | _ -> Alcotest.fail "expected constant return")
    | _ -> Alcotest.fail "unexpected shape")
  | _ -> Alcotest.fail "expected constant return");
  Alcotest.(check int64) "value preserved" 28L (run_ret m)

let test_branch_folding () =
  let m =
    compile
      "int g; int main() { if (3 > 5) g = 1; else g = 2; return g; }"
  in
  let main = I.find_func_exn m "main" in
  let blocks_before = List.length main.I.blocks in
  Opt.run_module m;
  Alcotest.(check bool) "blocks eliminated" true
    (List.length main.I.blocks < blocks_before);
  Alcotest.(check int64) "value preserved" 2L (run_ret m)

let test_dce () =
  let m =
    compile
      {|
int g;
int main() {
  int dead1 = 10 * 10;
  int dead2 = dead1 + 5;
  g = 7;
  return g;
}
|}
  in
  Opt.run_module m;
  let main = I.find_func_exn m "main" in
  (* only the store, the load and maybe address math survive *)
  Alcotest.(check bool) "dead chain removed" true (count_instrs main <= 3);
  Alcotest.(check int64) "value preserved" 7L (run_ret m)

let test_loops_survive () =
  let src =
    {|
int main() {
  int s = 0;
  for (int i = 0; i < 20; i++) s += i * i;
  return s;
}
|}
  in
  let m = compile src in
  let expected = run_ret m in
  Opt.run_module m;
  Alcotest.(check int64) "loop result preserved" expected (run_ret m)

let test_benchmarks_preserved () =
  List.iter
    (fun (w : Mutls_workloads.Workloads.t) ->
      let m = compile (w.Mutls_workloads.Workloads.small ()) in
      let before = Mutls_interp.Eval.run_sequential m in
      Opt.run_module m;
      let after = Mutls_interp.Eval.run_sequential m in
      Alcotest.(check string)
        (w.Mutls_workloads.Workloads.name ^ " output preserved")
        before.Mutls_interp.Eval.soutput after.Mutls_interp.Eval.soutput;
      Alcotest.(check bool)
        (w.Mutls_workloads.Workloads.name ^ " not slower")
        true
        (after.Mutls_interp.Eval.scost <= before.Mutls_interp.Eval.scost +. 1.0))
    Mutls_workloads.Workloads.all

let test_tls_after_optimization () =
  (* the speculator pass composes with the optimizer *)
  List.iter
    (fun name ->
      let w = Mutls_workloads.Workloads.find name in
      let m = compile (w.Mutls_workloads.Workloads.small ()) in
      Opt.run_module m;
      let seq = Mutls_interp.Eval.run_sequential m in
      let t = Mutls_speculator.Pass.run m in
      let cfg = { Mutls_runtime.Config.default with ncpus = 4 } in
      let r = Mutls_interp.Eval.run_tls cfg t in
      Alcotest.(check string) (name ^ " optimized TLS")
        seq.Mutls_interp.Eval.soutput r.Mutls_interp.Eval.toutput)
    [ "3x+1"; "fft"; "nqueen"; "md" ]

let test_random_equivalence =
  QCheck.Test.make ~name:"optimizer preserves random expressions" ~count:80
    (QCheck.pair Test_properties.arb_expr
       (QCheck.pair (QCheck.int_range (-40) 40) (QCheck.int_range (-40) 40)))
    (fun (expr, (a, b)) ->
      let src =
        Printf.sprintf
          "int main() { int v0 = %d; int v1 = %d; int v2 = v0 - v1; int v3 = \
           v0 ^ 3;\n  return %s; }"
          a b (Test_properties.pp expr)
      in
      let m1 = compile src in
      let m2 = compile src in
      Opt.run_module m2;
      run_ret m1 = run_ret m2)
  |> QCheck_alcotest.to_alcotest

let tests =
  [
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "branch folding" `Quick test_branch_folding;
    Alcotest.test_case "dead code elimination" `Quick test_dce;
    Alcotest.test_case "loops preserved" `Quick test_loops_survive;
    Alcotest.test_case "all benchmarks preserved" `Quick test_benchmarks_preserved;
    Alcotest.test_case "TLS composes with optimizer" `Quick
      test_tls_after_optimization;
    test_random_equivalence;
  ]
