(* Textual MIR round trip: print -> parse -> print must be the
   identity on verified modules — including speculator-pass output and
   every benchmark — and the reparsed module must execute
   identically. *)

open Mutls_mir

let roundtrip name (m : Ir.modul) =
  let s1 = Printer.module_to_string m in
  let m2 =
    try Parse.parse s1
    with Parse.Error e -> Alcotest.failf "%s: parse error: %s" name e
  in
  (match Verify.check_module m2 with
  | () -> ()
  | exception Verify.Invalid e -> Alcotest.failf "%s: reparsed invalid: %s" name e);
  let s2 = Printer.module_to_string m2 in
  Alcotest.(check string) (name ^ " fixpoint") s1 s2;
  m2

let test_simple_roundtrip () =
  let m =
    Mutls_minic.Codegen.compile
      {|
int g[4] = {1, 2, 3, 4};
double x = 2.5;
int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
int main() {
  double acc = x;
  for (int i = 0; i < 4; i++) acc = acc + (double)g[i];
  return fact(6) + (int)acc;
}
|}
  in
  let m2 = roundtrip "simple" m in
  let r1 = Mutls_interp.Eval.run_sequential m in
  let r2 = Mutls_interp.Eval.run_sequential m2 in
  Alcotest.(check bool) "same result" true
    (r1.Mutls_interp.Eval.sret = r2.Mutls_interp.Eval.sret)

let test_benchmarks_roundtrip () =
  List.iter
    (fun (w : Mutls_workloads.Workloads.t) ->
      let m =
        Mutls_minic.Codegen.compile (w.Mutls_workloads.Workloads.small ())
      in
      ignore (roundtrip w.Mutls_workloads.Workloads.name m))
    Mutls_workloads.Workloads.all

let test_transformed_roundtrip () =
  (* the speculator pass output — switches, runtime calls, funcrefs —
     survives the round trip and still runs under TLS *)
  let w = Mutls_workloads.Workloads.find "nqueen" in
  let m = Mutls_minic.Codegen.compile (w.Mutls_workloads.Workloads.small ()) in
  let seq = Mutls_interp.Eval.run_sequential m in
  let t = Mutls_speculator.Pass.run m in
  let t2 = roundtrip "transformed nqueen" t in
  let cfg = { Mutls_runtime.Config.default with ncpus = 4 } in
  let r = Mutls_interp.Eval.run_tls cfg t2 in
  Alcotest.(check string) "reparsed TLS output" seq.Mutls_interp.Eval.soutput
    r.Mutls_interp.Eval.toutput

let test_fortran_roundtrip () =
  let w = Mutls_workloads.Workloads.find "md" in
  match w.Mutls_workloads.Workloads.fortran_source with
  | None -> Alcotest.fail "md has a Fortran version"
  | Some src ->
    let m = Mutls_minifortran.Fcodegen.compile (src ()) in
    ignore (roundtrip "fortran md" m)

let test_parse_errors () =
  let bad = [ "define i64 @f( {"; "global @g [x bytes]"; "%1 = frobnicate 3" ] in
  List.iter
    (fun src ->
      match Parse.parse ("define i64 @f() {\nentry:\n  " ^ src ^ "\n}\n") with
      | _ -> Alcotest.failf "accepted %S" src
      | exception Parse.Error _ -> ()
      | exception _ -> ())
    bad

let tests =
  [
    Alcotest.test_case "simple round trip" `Quick test_simple_roundtrip;
    Alcotest.test_case "all benchmarks round trip" `Quick test_benchmarks_roundtrip;
    Alcotest.test_case "transformed module round trip" `Quick
      test_transformed_roundtrip;
    Alcotest.test_case "fortran round trip" `Quick test_fortran_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
  ]
