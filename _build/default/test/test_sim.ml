(* Simulation engine: event heap ordering, deterministic RNG, and the
   coroutine scheduler (advance, flags, deadlock detection). *)

module Heap = Mutls_sim.Heap
module Rng = Mutls_sim.Rng
module Engine = Mutls_sim.Engine

let test_heap_ordering () =
  let h = Heap.create () in
  let input = [ 5.0; 1.0; 3.0; 1.0; 9.0; 0.5; 3.0 ] in
  List.iteri (fun i t -> Heap.push h t i) input;
  let rec drain acc =
    match Heap.pop h with
    | Some (t, v) -> drain ((t, v) :: acc)
    | None -> List.rev acc
  in
  let out = drain [] in
  let times = List.map fst out in
  Alcotest.(check (list (float 0.0)))
    "times ascending"
    [ 0.5; 1.0; 1.0; 3.0; 3.0; 5.0; 9.0 ]
    times;
  (* FIFO among equal timestamps: 1.0 pushed as payload 1 before payload 3 *)
  let payloads_at_1 =
    List.filter_map (fun (t, v) -> if t = 1.0 then Some v else None) out
  in
  Alcotest.(check (list int)) "FIFO tie-break" [ 1; 3 ] payloads_at_1

let test_heap_random =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun times ->
      let h = Heap.create () in
      List.iteri (fun i t -> Heap.push h t i) times;
      let rec drain acc =
        match Heap.pop h with Some (t, _) -> drain (t :: acc) | None -> acc
      in
      let out = List.rev (drain []) in
      out = List.sort compare times)
  |> QCheck_alcotest.to_alcotest

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done;
  let c = Rng.create 43 in
  Alcotest.(check bool) "different seed differs" true
    (Rng.next_int64 (Rng.create 42) <> Rng.next_int64 c)

let test_rng_uniform () =
  let r = Rng.create 7 in
  let n = 10000 in
  let inside = ref 0 in
  for _ = 1 to n do
    let x = Rng.next_float r in
    if x < 0.0 || x >= 1.0 then Alcotest.fail "float out of range";
    if x < 0.5 then incr inside
  done;
  let frac = float_of_int !inside /. float_of_int n in
  Alcotest.(check bool) "roughly uniform" true (frac > 0.45 && frac < 0.55)

let test_engine_advance () =
  let e = Engine.create () in
  let log = ref [] in
  let final =
    Engine.run e (fun () ->
        Engine.advance e 10.0;
        log := ("a", Engine.now e) :: !log;
        Engine.advance e 5.0;
        log := ("b", Engine.now e) :: !log)
  in
  Alcotest.(check (float 0.0)) "final time" 15.0 final;
  Alcotest.(check (list (pair string (float 0.0))))
    "timestamps"
    [ ("a", 10.0); ("b", 15.0) ]
    (List.rev !log)

let test_engine_interleaving () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.run e (fun () ->
         Engine.spawn e (fun () ->
             Engine.advance e 3.0;
             log := "child@3" :: !log;
             Engine.advance e 4.0;
             log := "child@7" :: !log);
         Engine.advance e 5.0;
         log := "main@5" :: !log));
  Alcotest.(check (list string))
    "events in virtual-time order"
    [ "child@3"; "main@5"; "child@7" ]
    (List.rev !log)

let test_engine_flags () =
  let e = Engine.create () in
  let iv = Engine.new_ivar () in
  let got = ref (-1) in
  let woke_at = ref 0.0 in
  ignore
    (Engine.run e (fun () ->
         Engine.spawn e (fun () ->
             got := Engine.wait e iv;
             woke_at := Engine.now e);
         Engine.advance e 42.0;
         Engine.ivar_set e iv 7));
  Alcotest.(check int) "flag value" 7 !got;
  Alcotest.(check (float 0.0)) "woken at setter's time" 42.0 !woke_at

let test_engine_wait_set_flag () =
  let e = Engine.create () in
  let iv = Engine.new_ivar () in
  ignore
    (Engine.run e (fun () ->
         Engine.ivar_set e iv 3;
         Engine.advance e 1.0;
         (* waiting on an already-set flag continues immediately *)
         Alcotest.(check int) "pre-set flag" 3 (Engine.wait e iv)))

let test_engine_deadlock () =
  let e = Engine.create () in
  let iv = Engine.new_ivar () in
  Alcotest.check_raises "deadlock detected" (Engine.Deadlock 1) (fun () ->
      ignore (Engine.run e (fun () -> ignore (Engine.wait e iv))))

let tests =
  [
    Alcotest.test_case "heap ordering + FIFO ties" `Quick test_heap_ordering;
    test_heap_random;
    Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
    Alcotest.test_case "rng uniformity" `Quick test_rng_uniform;
    Alcotest.test_case "engine advance" `Quick test_engine_advance;
    Alcotest.test_case "engine interleaving" `Quick test_engine_interleaving;
    Alcotest.test_case "engine flags" `Quick test_engine_flags;
    Alcotest.test_case "engine pre-set flag" `Quick test_engine_wait_set_flag;
    Alcotest.test_case "engine deadlock detection" `Quick test_engine_deadlock;
  ]
