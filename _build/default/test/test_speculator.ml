(* Speculator pass structure: generated artifacts, tables, annotation
   validation, the RegisterBuffer limit, and the pointer/integer cast
   barrier. *)

open Helpers
module I = Mutls_mir.Ir
module Pass = Mutls_speculator.Pass

let annotated_src =
  {|
int data[16];
void work() {
  __builtin_MUTLS_fork(0, mixed);
  for (int i = 0; i < 8; i++) data[i] = i;
  __builtin_MUTLS_join(0);
  for (int i = 8; i < 16; i++) data[i] = i * 2;
  __builtin_MUTLS_barrier(0);
}
int main() { work(); int s = 0; for (int i = 0; i < 16; i++) s += data[i]; return s; }
|}

let transform src = Pass.run (Mutls_minic.Codegen.compile src)

let count_calls (f : I.func) prefix =
  List.fold_left
    (fun acc (b : I.block) ->
      acc
      + List.length
          (List.filter
             (fun (i : I.instr) ->
               match i.I.kind with
               | I.Call (n, _) ->
                 String.length n >= String.length prefix
                 && String.sub n 0 (String.length prefix) = prefix
               | _ -> false)
             b.I.insts))
    0 f.I.blocks

let test_artifacts_generated () =
  let t = transform annotated_src in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " exists") true (I.find_func t name <> None))
    [ "work"; "work.spec"; "work.stub"; "work.proxy"; "main" ];
  (* main has no annotations and is not called speculatively: no clone *)
  Alcotest.(check bool) "main not cloned" true (I.find_func t "main.spec" = None)

let test_spec_version_structure () =
  let t = transform annotated_src in
  let spec = I.find_func_exn t "work.spec" in
  (* two extra parameters: counter and rank *)
  Alcotest.(check int) "spec params" 2 (List.length spec.I.params);
  (* original loads/stores became runtime calls *)
  Alcotest.(check bool) "buffered stores" true (count_calls spec "MUTLS_store" > 0);
  Alcotest.(check bool) "barrier point present" true
    (count_calls spec "MUTLS_barrier_point" > 0);
  Alcotest.(check bool) "return point present" true
    (count_calls spec "MUTLS_return_point" > 0);
  (* the non-speculative version keeps plain stores *)
  let nonspec = I.find_func_exn t "work" in
  Alcotest.(check int) "non-spec has no buffered stores" 0
    (count_calls nonspec "MUTLS_store");
  Alcotest.(check bool) "non-spec has sync_entry" true
    (count_calls nonspec "MUTLS_sync_entry" > 0);
  Alcotest.(check bool) "non-spec synchronizes" true
    (count_calls nonspec "MUTLS_synchronize" > 0)

let test_check_points_in_substantial_loops () =
  (* leaf call-free loops are not polled (cost heuristic); loops
     containing calls are *)
  let t = transform annotated_src in
  let spec = I.find_func_exn t "work.spec" in
  Alcotest.(check int) "leaf loops not polled" 0
    (count_calls spec "MUTLS_check_point");
  let src =
    {|
int out[8];
int f(int x) { return x * x; }
void work() {
  __builtin_MUTLS_fork(0, mixed);
  for (int i = 0; i < 4; i++) out[i] = f(i);
  __builtin_MUTLS_join(0);
  for (int i = 4; i < 8; i++) out[i] = f(i);
  __builtin_MUTLS_barrier(0);
}
int main() { work(); return 0; }
|}
  in
  let t = transform src in
  let spec = I.find_func_exn t "work.spec" in
  Alcotest.(check bool) "call-bearing loops polled" true
    (count_calls spec "MUTLS_check_point" > 0)

let test_speculation_table () =
  let t = transform annotated_src in
  let spec = I.find_func_exn t "work.spec" in
  let entry = I.entry_block spec in
  (* entry dispatches on the counter argument *)
  match entry.I.term with
  | I.Switch (I.Arg 0, _, cases) ->
    Alcotest.(check int) "one join point, one case" 1 (List.length cases)
  | _ -> Alcotest.fail "speculative entry must switch on the counter"

let test_untouched_module_ok () =
  (* a module without annotations passes through unchanged-but-copied *)
  let m = Mutls_minic.Codegen.compile "int main() { return 42; }" in
  let t = Pass.run m in
  Alcotest.(check int) "same function count" (List.length m.I.funcs)
    (List.length t.I.funcs);
  let r = Mutls_interp.Eval.run_sequential t in
  Alcotest.(check bool) "still runs" true
    (r.Mutls_interp.Eval.sret = Some (Mutls_interp.Value.VI 42L))

let test_fork_without_join_rejected () =
  let src = "int main() { __builtin_MUTLS_fork(3, mixed); return 0; }" in
  match transform src with
  | _ -> Alcotest.fail "fork without a join must be rejected"
  | exception Pass.Pass_error _ -> ()

let test_duplicate_join_rejected () =
  let src =
    {|
int main() {
  __builtin_MUTLS_fork(0, mixed);
  __builtin_MUTLS_join(0);
  __builtin_MUTLS_join(0);
  return 0;
}
|}
  in
  match transform src with
  | _ -> Alcotest.fail "duplicate join ids must be rejected"
  | exception Pass.Pass_error _ -> ()

let test_register_buffer_limit () =
  (* more locals than the RegisterBuffer holds: the pass reports an
     error before execution, as the paper specifies *)
  let decls =
    List.init 40 (fun i -> Printf.sprintf "int v%d = seedv + %d;" i i)
  in
  let uses =
    List.init 40 (fun i -> Printf.sprintf "s += v%d;" i) |> String.concat " "
  in
  let src =
    Printf.sprintf
      {|
int out[4];
int seedv = 3;
int main() {
  %s
  int s = 0;
  __builtin_MUTLS_fork(0, mixed);
  out[0] = 1;
  __builtin_MUTLS_join(0);
  %s
  out[1] = s;
  __builtin_MUTLS_barrier(0);
  return s;
}
|}
      (String.concat " " decls) uses
  in
  let m = Mutls_minic.Codegen.compile src in
  match Pass.run ~opts:{ Pass.default_options with max_locals = 16 } m with
  | _ -> Alcotest.fail "RegisterBuffer overflow must be a pass error"
  | exception Pass.Pass_error msg ->
    Alcotest.(check bool) "mentions the buffer" true
      (Astring_contains.contains msg "RegisterBuffer")

let test_ptr_int_cast_barrier () =
  (* a pointer/integer cast on a registered global is allowed
     speculatively; the program must still match sequential *)
  let src =
    {|
int data[8];
int main() {
  __builtin_MUTLS_fork(0, mixed);
  for (int i = 0; i < 4; i++) data[i] = i;
  __builtin_MUTLS_join(0);
  int addr = (int)(data + 4);
  int *p = (int *)addr;
  for (int i = 0; i < 4; i++) p[i] = 10 + i;
  __builtin_MUTLS_barrier(0);
  int s = 0;
  for (int i = 0; i < 8; i++) s += data[i];
  return s;
}
|}
  in
  let m = Mutls_minic.Codegen.compile src in
  let spec_main = I.find_func_exn (Pass.run m) "main.spec" in
  Alcotest.(check bool) "cast barrier inserted" true
    (count_calls spec_main "MUTLS_ptr_int_cast" > 0);
  let seq = run_seq m in
  let tls = run_tls ~ncpus:4 m in
  Alcotest.(check bool) "results agree" true
    (seq.Mutls_interp.Eval.sret = tls.Mutls_interp.Eval.tret)

let test_frame_reconstruction_depth () =
  (* commit deep inside nested calls: the parent must reconstruct the
     whole chain (paper IV-H) *)
  let src =
    {|
int cells[64];
int leaf(int base, int k) {
  int acc = 0;
  for (int j = 0; j < 40; j++) acc += (base + j * k) % 13;
  cells[base % 64] = acc;
  return acc;
}
int mid(int base, int k) { return leaf(base, k) + leaf(base + 1, k); }
int outer(int base) { return mid(base, 3) + mid(base + 2, 5); }
int main() {
  int total = 0;
  for (int c = 0; c < 16; c++) {
    __builtin_MUTLS_fork(0, mixed);
    total += outer(c * 4) % 1000;
    __builtin_MUTLS_join(0);
  }
  print_int(total);
  print_newline();
  return total;
}
|}
  in
  (* 'total' is an accumulator live at the join: needs value prediction *)
  let m = Mutls_minic.Codegen.compile src in
  let seq = run_seq m in
  let t = Mutls_speculator.Pass.run m in
  let cfg =
    { Mutls_runtime.Config.default with ncpus = 6; value_prediction = true }
  in
  let r = Mutls_interp.Eval.run_tls cfg t in
  Alcotest.(check string) "deep reconstruction output"
    seq.Mutls_interp.Eval.soutput r.Mutls_interp.Eval.toutput

let tests =
  [
    Alcotest.test_case "artifacts generated" `Quick test_artifacts_generated;
    Alcotest.test_case "speculative version structure" `Quick
      test_spec_version_structure;
    Alcotest.test_case "check point placement heuristic" `Quick
      test_check_points_in_substantial_loops;
    Alcotest.test_case "speculation table" `Quick test_speculation_table;
    Alcotest.test_case "unannotated pass-through" `Quick test_untouched_module_ok;
    Alcotest.test_case "fork without join rejected" `Quick
      test_fork_without_join_rejected;
    Alcotest.test_case "duplicate join rejected" `Quick test_duplicate_join_rejected;
    Alcotest.test_case "RegisterBuffer limit" `Quick test_register_buffer_limit;
    Alcotest.test_case "pointer/integer cast barrier" `Quick
      test_ptr_int_cast_barrier;
    Alcotest.test_case "deep frame reconstruction" `Quick
      test_frame_reconstruction_depth;
  ]
