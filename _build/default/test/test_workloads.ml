(* Integration: every benchmark of Table II must produce identical
   output under TLS and sequentially — across CPU counts, forking
   models and rollback injection — and the simulation must be
   deterministic. *)

open Helpers
module W = Mutls_workloads.Workloads

let compile_small (w : W.t) = Mutls_minic.Codegen.compile (w.W.small ())

let check_equiv ?(ncpus = 4) ?(model_override = None) ?(rollback = 0.0) name m =
  let seq = run_seq m in
  let tls = run_tls ~ncpus ~model_override ~rollback m in
  Alcotest.(check string) name seq.Mutls_interp.Eval.soutput
    tls.Mutls_interp.Eval.toutput

let test_all_benchmarks_c () =
  List.iter
    (fun (w : W.t) ->
      let m = compile_small w in
      List.iter (fun n -> check_equiv ~ncpus:n (w.W.name ^ " @" ^ string_of_int n) m)
        [ 1; 2; 5; 8 ])
    W.all

let test_all_benchmarks_fortran () =
  List.iter
    (fun (w : W.t) ->
      match w.W.fortran_source with
      | None -> ()
      | Some src ->
        let m = Mutls_minifortran.Fcodegen.compile (src ()) in
        check_equiv ~ncpus:4 (w.W.name ^ " fortran") m)
    W.all

let test_all_models () =
  List.iter
    (fun (w : W.t) ->
      let m = compile_small w in
      List.iter
        (fun model ->
          check_equiv ~ncpus:4 ~model_override:(Some model)
            (w.W.name ^ " " ^ Mutls_runtime.Config.model_to_string model)
            m)
        [ Mutls_runtime.Config.In_order; Out_of_order; Mixed ])
    W.all

let test_rollback_injection_all () =
  List.iter
    (fun (w : W.t) ->
      let m = compile_small w in
      List.iter
        (fun p -> check_equiv ~ncpus:4 ~rollback:p
            (Printf.sprintf "%s rollback %.0f%%" w.W.name (100. *. p)) m)
        [ 0.2; 1.0 ])
    W.all

let test_determinism () =
  let w = W.find "fft" in
  let m = compile_small w in
  let t = Mutls_speculator.Pass.run m in
  let cfg = { Mutls_runtime.Config.default with ncpus = 6 } in
  let r1 = Mutls_interp.Eval.run_tls cfg t in
  let r2 = Mutls_interp.Eval.run_tls cfg t in
  Alcotest.(check (float 0.0)) "identical virtual finish time"
    r1.Mutls_interp.Eval.tfinish r2.Mutls_interp.Eval.tfinish;
  Alcotest.(check int) "identical thread count"
    (List.length r1.Mutls_interp.Eval.tretired)
    (List.length r2.Mutls_interp.Eval.tretired)

let test_speculation_happens () =
  (* every benchmark should actually commit speculative work at 8 CPUs *)
  List.iter
    (fun (w : W.t) ->
      let m = compile_small w in
      let r = run_tls ~ncpus:8 m in
      let commits =
        List.length
          (List.filter (fun t -> t.Mutls_runtime.Thread_manager.r_committed)
             r.Mutls_interp.Eval.tretired)
      in
      Alcotest.(check bool) (w.W.name ^ " commits speculative work") true
        (commits > 0))
    W.all

let test_matmult_rolls_back () =
  (* the paper: matmult is the benchmark that exhibits real rollbacks *)
  let m = Mutls_minic.Codegen.compile ((W.find "matmult").W.c_source ()) in
  let r = run_tls ~ncpus:8 m in
  let rollbacks =
    List.length
      (List.filter (fun t -> not t.Mutls_runtime.Thread_manager.r_committed)
         r.Mutls_interp.Eval.tretired)
  in
  Alcotest.(check bool) "matmult exhibits rollbacks" true (rollbacks > 0)

let test_experiments_smoke () =
  (* the harness runs and produces sane metrics *)
  let w = W.find "tsp" in
  let m = Mutls.Experiments.run ~ncpus:4 w in
  Alcotest.(check bool) "speedup positive" true (m.Mutls.Metrics.speedup > 0.5);
  Alcotest.(check bool) "ts >= tn sanity" true (m.Mutls.Metrics.ts > 0.0);
  let frac_sum =
    List.fold_left (fun a (_, v) -> a +. v) 0.0 m.Mutls.Metrics.crit_breakdown
  in
  Alcotest.(check bool) "critical breakdown sums to ~1" true
    (frac_sum > 0.99 && frac_sum < 1.01);
  Alcotest.(check bool) "coverage non-negative" true (m.Mutls.Metrics.coverage >= 0.0)

let test_fig10_shape () =
  (* out-of-order must not beat mixed on tree recursion at scale *)
  let w = W.find "nqueen" in
  let mixed = Mutls.Experiments.run ~ncpus:16 w in
  let ooo =
    Mutls.Experiments.run ~model_override:(Some Mutls_runtime.Config.Out_of_order)
      ~ncpus:16 w
  in
  Alcotest.(check bool) "mixed beats out-of-order on DFS" true
    (mixed.Mutls.Metrics.speedup > ooo.Mutls.Metrics.speedup)

let tests =
  [
    Alcotest.test_case "all C benchmarks, several CPU counts" `Slow
      test_all_benchmarks_c;
    Alcotest.test_case "all Fortran benchmarks" `Quick test_all_benchmarks_fortran;
    Alcotest.test_case "all forking models" `Slow test_all_models;
    Alcotest.test_case "rollback injection" `Slow test_rollback_injection_all;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "speculation commits on every benchmark" `Slow
      test_speculation_happens;
    Alcotest.test_case "matmult rolls back" `Quick test_matmult_rolls_back;
    Alcotest.test_case "experiments harness smoke" `Quick test_experiments_smoke;
    Alcotest.test_case "fig10 shape" `Quick test_fig10_shape;
  ]
