(* CI memory-resilience gate.

     dune exec bench/check_mem.exe -- BASELINE FRESH [--require-baseline]

   Holds a freshly generated BENCH_mem.json (bench/main.exe -- mem)
   against the committed bench/BASELINE_mem.json.  Two kinds of check:

   Intrinsic invariants (no baseline needed — they are promises of the
   memory system itself, checked on the fresh run alone):
     - the uniform workload's spill-off and spill-on rows are
       cycle-identical: the spill tier must be free until pressure;
     - the storm workload (working set ~100x the home slots) degrades
       to sequential with the tier off and completes speculatively
       (not degraded, with committed speculations) with it on;
     - the pressure workload completes speculatively with the tier on.

   Baseline regression band: every fresh row's virtual time must stay
   within the baseline's relative tolerance of the committed row.  The
   numbers are virtual-time, so on unchanged code they match exactly;
   the band only absorbs deliberate cost-model/scheduling changes,
   which should come with a baseline refresh.

   A missing baseline only warns by default (bootstrap path); with
   --require-baseline (CI) its absence fails the gate, so the gate
   cannot be disarmed by deleting the snapshot. *)

module Json = Mutls.Json

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

type row = {
  workload : string;
  variant : string;
  tfinish : float;
  degraded : bool;
  commits : int;
}

let rows_of path j =
  match Json.member "rows" j with
  | Some (Json.List rows) ->
    List.filter_map
      (fun r ->
        match
          ( Option.bind (Json.member "workload" r) Json.to_str,
            Option.bind (Json.member "variant" r) Json.to_str,
            Option.bind (Json.member "tfinish" r) Json.to_float,
            Option.bind (Json.member "degraded" r) Json.to_bool,
            Option.bind (Json.member "commits" r) Json.to_int )
        with
        | Some workload, Some variant, Some tfinish, Some degraded, Some commits
          ->
          Some { workload; variant; tfinish; degraded; commits }
        | _ -> None)
      rows
  | _ -> failwith (Printf.sprintf "%s: missing rows" path)

let find rows workload variant =
  match
    List.find_opt (fun r -> r.workload = workload && r.variant = variant) rows
  with
  | Some r -> r
  | None ->
    failwith (Printf.sprintf "missing row %s/%s" workload variant)

let () =
  let baseline = ref None and fresh = ref None in
  let require_baseline = ref false in
  let rec parse = function
    | [] -> ()
    | "--require-baseline" :: rest ->
      require_baseline := true;
      parse rest
    | a :: rest ->
      (match (!baseline, !fresh) with
      | None, _ -> baseline := Some a
      | Some _, None -> fresh := Some a
      | Some _, Some _ -> failwith ("unexpected argument " ^ a));
      parse rest
  in
  (try parse (List.tl (Array.to_list Sys.argv))
   with Failure e ->
     Printf.eprintf "check_mem: %s\n" e;
     exit 2);
  let baseline_path, fresh_path =
    match (!baseline, !fresh) with
    | Some b, Some f -> (b, f)
    | _ ->
      Printf.eprintf "usage: check_mem BASELINE FRESH [--require-baseline]\n";
      exit 2
  in
  let load path =
    try Json.of_string (read_file path) with
    | Sys_error e ->
      Printf.eprintf "check_mem: %s\n" e;
      exit 2
    | Json.Parse_error e ->
      Printf.eprintf "check_mem: %s: %s\n" path e;
      exit 2
  in
  let failures = ref 0 in
  let check what ok =
    Printf.printf "  %-58s %s\n" what (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  try
    let cur = load fresh_path in
    let rows = rows_of fresh_path cur in
    print_string "memory resilience invariants:\n";
    let u_off = find rows "uniform" "spill-off" in
    let u_on = find rows "uniform" "spill-on" in
    check "uniform: spill tier free until pressure (cycle-identical)"
      (u_off.tfinish = u_on.tfinish && u_off.degraded = u_on.degraded);
    let s_off = find rows "storm" "spill-off" in
    check "storm spill-off: seed config degrades to sequential" s_off.degraded;
    let s_on = find rows "storm" "spill-on" in
    check "storm spill-on: completes speculatively"
      ((not s_on.degraded) && s_on.commits > 0);
    let p_on = find rows "pressure" "spill-on" in
    check "pressure spill-on: completes speculatively"
      ((not p_on.degraded) && p_on.commits > 0);
    if not (Sys.file_exists baseline_path) then
      if !require_baseline then begin
        Printf.eprintf
          "check_mem: no baseline at %s (--require-baseline: the committed \
           snapshot is part of the gate)\n"
          baseline_path;
        exit 1
      end
      else
        Printf.printf
          "check_mem: no baseline at %s; skipping the regression band \
           (commit a snapshot to arm it)\n"
          baseline_path
    else begin
      let base = load baseline_path in
      let base_rows = rows_of baseline_path base in
      let tol =
        match Option.bind (Json.member "tolerance" base) Json.to_float with
        | Some t -> t
        | None -> 0.10
      in
      Printf.printf "regression band (+/-%.0f%% of baseline):\n" (100.0 *. tol);
      List.iter
        (fun b ->
          let f = find rows b.workload b.variant in
          let dev = abs_float (f.tfinish -. b.tfinish) /. b.tfinish in
          check
            (Printf.sprintf "%s/%s: %.0f vs %.0f cycles (%+.1f%%)" b.workload
               b.variant f.tfinish b.tfinish
               (100.0 *. (f.tfinish -. b.tfinish) /. b.tfinish))
            (dev <= tol))
        base_rows
    end;
    if !failures > 0 then begin
      Printf.printf "check_mem: %d check(s) failed\n" !failures;
      exit 1
    end;
    print_string "check_mem: memory resilience invariants hold\n"
  with Failure e ->
    Printf.eprintf "check_mem: %s\n" e;
    exit 2
