(* CI observability-overhead gate.

     dune exec bench/check_obs.exe -- BASELINE FRESH [--require-baseline]

   Reads the overhead budget from the committed BASELINE (bench/
   BASELINE_obs.json) and the measured telemetry-on/telemetry-off
   ratio from a freshly generated BENCH_obs.json (bench/main.exe --
   obs), and exits non-zero when the measurement exceeds the budget:
   the always-on registry must stay effectively free.

   The ratio is host-independent — both sides of every pair ran
   interleaved on the same machine, so runner speed cancels.  Per-row
   ratios are reported but only the aggregate gates: a sub-second row
   can jitter past the budget on a noisy runner while the total stays
   honest.

   A missing baseline only warns by default — the bootstrap path for
   establishing the first budget — but with --require-baseline (CI,
   where the baseline is committed) its absence is itself a failure,
   so the gate cannot be disarmed by deleting the snapshot. *)

module Json = Mutls.Json

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let num path j key =
  match Option.bind (Json.member key j) Json.to_float with
  | Some v -> v
  | None -> failwith (Printf.sprintf "%s: missing numeric field %S" path key)

let () =
  let baseline = ref None and fresh = ref None in
  let require_baseline = ref false in
  let rec parse = function
    | [] -> ()
    | "--require-baseline" :: rest ->
      require_baseline := true;
      parse rest
    | a :: rest ->
      (match (!baseline, !fresh) with
      | None, _ -> baseline := Some a
      | Some _, None -> fresh := Some a
      | Some _, Some _ -> failwith ("unexpected argument " ^ a));
      parse rest
  in
  (try parse (List.tl (Array.to_list Sys.argv))
   with Failure e ->
     Printf.eprintf "check_obs: %s\n" e;
     exit 2);
  let baseline_path, fresh_path =
    match (!baseline, !fresh) with
    | Some b, Some f -> (b, f)
    | _ ->
      Printf.eprintf "usage: check_obs BASELINE FRESH [--require-baseline]\n";
      exit 2
  in
  if not (Sys.file_exists baseline_path) then
    if !require_baseline then begin
      Printf.eprintf
        "check_obs: no baseline at %s (--require-baseline: the committed \
         budget is part of the gate)\n"
        baseline_path;
      exit 1
    end
    else begin
      Printf.printf
        "check_obs: no baseline at %s; skipping (commit a budget to arm the \
         gate)\n"
        baseline_path;
      exit 0
    end;
  let load path =
    try Json.of_string (read_file path) with
    | Sys_error e ->
      Printf.eprintf "check_obs: %s\n" e;
      exit 2
    | Json.Parse_error e ->
      Printf.eprintf "check_obs: %s: %s\n" path e;
      exit 2
  in
  let base = load baseline_path and cur = load fresh_path in
  try
    let budget = num baseline_path base "budget" in
    let overhead = num fresh_path cur "overhead" in
    Printf.printf "telemetry overhead check (budget +%.1f%%):\n"
      (100.0 *. (budget -. 1.0));
    (match Json.member "rows" cur with
    | Some (Json.List rows) ->
      List.iter
        (fun r ->
          match
            ( Option.bind (Json.member "workload" r) Json.to_str,
              Option.bind (Json.member "overhead" r) Json.to_float )
          with
          | Some w, Some o ->
            Printf.printf "  %-12s ratio %.4f%s\n" w o
              (if o > budget then "  (over budget; aggregate gates)" else "")
          | _ -> ())
        rows
    | _ -> ());
    Printf.printf "  %-12s ratio %.4f   budget %.4f   %s\n" "aggregate"
      overhead budget
      (if overhead > budget then "REGRESSION" else "ok");
    if overhead > budget then begin
      Printf.printf
        "check_obs: telemetry overhead %.2f%% exceeds the %.2f%% budget\n"
        (100.0 *. (overhead -. 1.0))
        (100.0 *. (budget -. 1.0));
      exit 1
    end;
    print_string "check_obs: telemetry overhead within budget\n"
  with Failure e ->
    Printf.eprintf "check_obs: %s\n" e;
    exit 2
