(* CI parallel-backend gate.

     dune exec bench/check_par.exe -- BASELINE FRESH [--require-baseline]

   Holds a freshly generated BENCH_par.json (bench/main.exe -- par)
   against the committed bench/BASELINE_par.json.  Two kinds of check:

   Intrinsic invariants (no baseline needed — checked on the fresh run
   alone):
     - a row exists for every paper benchmark at every domain count the
       artifact declares, and every timing is positive.  Oracle
       equality needs no row here: Experiments.run_par compares each
       run's output against the sequential run and raises Divergence on
       mismatch, so a complete artifact could only have been written by
       runs that all matched;
     - scaling: when the recording host has at least 4 cores (the
       artifact's host_cores field) and the sweep includes 4 domains,
       at least two workloads must show a speedup above 1.5x going from
       1 to 4 domains.  On smaller hosts (e.g. a 1-core CI container)
       domains time-slice one core and no speedup is physically
       possible, so the bar is recorded but not enforced.

   Baseline check: with --require-baseline (CI) the committed snapshot
   must exist and satisfy the same invariants under its own recorded
   host_cores.  There is deliberately no tight fresh-vs-baseline timing
   band — these are wall-clock numbers from different hosts; the
   machine-independent content is the scaling invariant, and that is
   what the gate enforces. *)

module Json = Mutls.Json

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

type artifact = {
  host_cores : int;
  domains : int list;
  rows : (string * int * float) list; (* workload, domains, seconds *)
}

let artifact_of path j =
  let int_field key =
    match Option.bind (Json.member key j) Json.to_int with
    | Some v -> v
    | None -> failwith (Printf.sprintf "%s: missing integer field %S" path key)
  in
  let domains =
    match Json.member "domains" j with
    | Some (Json.List ds) -> List.filter_map Json.to_int ds
    | _ -> failwith (Printf.sprintf "%s: missing \"domains\" array" path)
  in
  let rows =
    match Json.member "rows" j with
    | Some (Json.List rows) ->
      List.filter_map
        (fun r ->
          match
            ( Option.bind (Json.member "workload" r) Json.to_str,
              Option.bind (Json.member "domains" r) Json.to_int,
              Option.bind (Json.member "seconds" r) Json.to_float )
          with
          | Some w, Some d, Some s -> Some (w, d, s)
          | _ -> None)
        rows
    | _ -> failwith (Printf.sprintf "%s: missing \"rows\" array" path)
  in
  { host_cores = int_field "host_cores"; domains; rows }

let benchmarks =
  List.map (fun w -> w.Mutls.Workloads.name) Mutls.Workloads.all

let find a workload domains =
  match
    List.find_opt (fun (w, d, _) -> w = workload && d = domains) a.rows
  with
  | Some (_, _, s) -> Some s
  | None -> None

(* Runs the invariants on one artifact; returns the number of failed
   checks. *)
let check_artifact label a =
  let failures = ref 0 in
  let check what ok =
    Printf.printf "  %-58s %s\n" what (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  Printf.printf "%s (host_cores = %d):\n" label a.host_cores;
  List.iter
    (fun w ->
      let complete =
        List.for_all
          (fun d ->
            match find a w d with Some s -> s > 0.0 | None -> false)
          a.domains
      in
      check (Printf.sprintf "%s: timed at every domain count" w) complete)
    benchmarks;
  if a.host_cores >= 4 && List.mem 1 a.domains && List.mem 4 a.domains then begin
    let scaling =
      List.filter
        (fun w ->
          match (find a w 1, find a w 4) with
          | Some s1, Some s4 -> s1 /. s4 > 1.5
          | _ -> false)
        benchmarks
    in
    check
      (Printf.sprintf ">=2 workloads above 1.5x at 4 domains (got %d: %s)"
         (List.length scaling)
         (String.concat " " scaling))
      (List.length scaling >= 2)
  end
  else
    Printf.printf
      "  scaling bar not enforced (host_cores = %d < 4, or no 1-vs-4 pair)\n"
      a.host_cores;
  !failures

let () =
  let baseline = ref None and fresh = ref None in
  let require_baseline = ref false in
  let rec parse = function
    | [] -> ()
    | "--require-baseline" :: rest ->
      require_baseline := true;
      parse rest
    | a :: rest ->
      (match (!baseline, !fresh) with
      | None, _ -> baseline := Some a
      | Some _, None -> fresh := Some a
      | Some _, Some _ -> failwith ("unexpected argument " ^ a));
      parse rest
  in
  (try parse (List.tl (Array.to_list Sys.argv))
   with Failure e ->
     Printf.eprintf "check_par: %s\n" e;
     exit 2);
  let baseline_path, fresh_path =
    match (!baseline, !fresh) with
    | Some b, Some f -> (b, f)
    | _ ->
      Printf.eprintf "usage: check_par BASELINE FRESH [--require-baseline]\n";
      exit 2
  in
  let load path =
    try Json.of_string (read_file path) with
    | Sys_error e ->
      Printf.eprintf "check_par: %s\n" e;
      exit 2
    | Json.Parse_error e ->
      Printf.eprintf "check_par: %s: %s\n" path e;
      exit 2
  in
  try
    let failures =
      ref (check_artifact "fresh run invariants" (artifact_of fresh_path (load fresh_path)))
    in
    if not (Sys.file_exists baseline_path) then
      if !require_baseline then begin
        Printf.eprintf
          "check_par: no baseline at %s (--require-baseline: the committed \
           snapshot is part of the gate)\n"
          baseline_path;
        exit 1
      end
      else
        Printf.printf
          "check_par: no baseline at %s; skipping the baseline invariants \
           (commit a snapshot to arm them)\n"
          baseline_path
    else
      failures :=
        !failures
        + check_artifact "committed baseline invariants"
            (artifact_of baseline_path (load baseline_path));
    if !failures > 0 then begin
      Printf.printf "check_par: %d check(s) failed\n" !failures;
      exit 1
    end;
    print_string "check_par: parallel backend invariants hold\n"
  with Failure e ->
    Printf.eprintf "check_par: %s\n" e;
    exit 2
