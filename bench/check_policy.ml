(* CI policy-vs-static gate.

     dune exec bench/check_policy.exe -- POLICY_curves.json
       [--tolerance T]

   Reads the policy artifact written by `bench/main.exe -- policy` (one
   series of summed suite virtual time per policy) and fails when the
   adaptive engine regresses: at any swept CPU count, adaptive total TN
   must stay within [tolerance] of the BEST static policy's total
   (tolerance 1.0 = strictly at-or-below, the acceptance bar; the
   default leaves a sliver for future cost-model adjustments).  Virtual
   time is deterministic, so unlike the wall-clock perf gate this one
   needs no noise margin — a failure is a real policy regression.  A
   missing or malformed artifact is itself a failure, so the gate
   cannot be disarmed by skipping the artifact step. *)

module Json = Mutls.Json

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* label -> (cpus, tn) list *)
let series_of path j =
  match Json.member "series" j with
  | Some (Json.List ss) ->
    List.filter_map
      (fun s ->
        match Option.bind (Json.member "label" s) Json.to_str with
        | None -> None
        | Some label ->
          let points =
            match Json.member "points" s with
            | Some (Json.List ps) ->
              List.filter_map
                (fun p ->
                  match
                    ( Option.bind (Json.member "cpus" p) Json.to_int,
                      Option.bind (Json.member "tn" p) Json.to_float )
                  with
                  | Some c, Some t -> Some (c, t)
                  | _ -> None)
                ps
            | _ -> []
          in
          Some (label, points))
      ss
  | _ -> failwith (Printf.sprintf "%s: missing \"series\" array" path)

let () =
  let path = ref None in
  let tolerance = ref 1.02 in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: t :: rest ->
      tolerance := float_of_string t;
      parse rest
    | a :: rest when !path = None ->
      path := Some a;
      parse rest
    | a :: _ -> failwith ("unexpected argument " ^ a)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let path =
    match !path with
    | Some p -> p
    | None -> failwith "usage: check_policy POLICY_curves.json [--tolerance T]"
  in
  let j =
    try Json.of_string (read_file path) with
    | Sys_error e -> failwith e
    | Json.Parse_error e -> failwith (Printf.sprintf "%s: %s" path e)
  in
  let series = series_of path j in
  let adaptive =
    match List.assoc_opt "adaptive" series with
    | Some ps when ps <> [] -> ps
    | _ -> failwith (Printf.sprintf "%s: no adaptive series" path)
  in
  let statics =
    List.filter
      (fun (l, ps) -> l <> "adaptive" && ps <> [])
      series
  in
  if statics = [] then failwith (Printf.sprintf "%s: no static series" path);
  let failures = ref 0 in
  List.iter
    (fun (cpus, atn) ->
      let best =
        List.fold_left
          (fun acc (_, ps) ->
            match List.assoc_opt cpus ps with
            | Some t -> min acc t
            | None -> acc)
          infinity statics
      in
      if best = infinity then
        failwith
          (Printf.sprintf "%s: no static point at %d CPUs" path cpus);
      let ok = atn <= (best *. !tolerance) in
      Printf.printf "%2d CPUs: adaptive %12.0f  best static %12.0f  %s\n" cpus
        atn best
        (if ok then "ok" else "REGRESSION");
      if not ok then incr failures)
    adaptive;
  if !failures > 0 then begin
    Printf.eprintf
      "check_policy: adaptive exceeds %.2fx the best static total at %d CPU \
       count(s)\n"
      !tolerance !failures;
    exit 1
  end;
  Printf.printf "check_policy: adaptive at or below every static series (%d \
                 point(s), tolerance %.2f)\n"
    (List.length adaptive) !tolerance
