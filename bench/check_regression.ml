(* CI perf-regression guard.

     dune exec bench/check_regression.exe -- BASELINE FRESH
       [--tolerance T] [--require-baseline]

   Compares a freshly generated BENCH_interp.json (bench/main.exe --
   perf) against the committed baseline and exits non-zero when the
   fresh numbers regress beyond the tolerance.  Wall-clock on shared CI
   runners is noisy, so the default tolerance is deliberately generous
   (a regression must be a slowdown of more than [tolerance] relative
   to baseline to fail).  A missing baseline only warns by default —
   the bootstrap path for establishing the first baseline artifact —
   but with --require-baseline (CI, where the baseline is committed)
   its absence is itself a failure, so the gate cannot be disarmed by
   deleting the snapshot.

   Checks, in order:
     - total_seconds of the quick figure sweep;
     - each per-artifact entry of "runs" present in both files;
     - the head-to-head invariant: the compiled engine must not be
       slower than the reference interpreter (machine-independent —
       both numbers come from the same host, so runner speed cancels). *)

module Json = Mutls.Json

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let num path j key =
  match Option.bind (Json.member key j) Json.to_float with
  | Some v -> v
  | None -> failwith (Printf.sprintf "%s: missing numeric field %S" path key)

(* (artifact, seconds, cached); rows from baselines predating the
   "cached" field count as not-cached *)
let runs_of path j =
  match Json.member "runs" j with
  | Some (Json.List rs) ->
    List.filter_map
      (fun r ->
        match
          ( Option.bind (Json.member "artifact" r) Json.to_str,
            Option.bind (Json.member "seconds" r) Json.to_float )
        with
        | Some a, Some s ->
          let cached =
            match Json.member "cached" r with
            | Some (Json.Bool b) -> b
            | _ -> false
          in
          Some (a, s, cached)
        | _ -> None)
      rs
  | _ -> failwith (Printf.sprintf "%s: missing \"runs\" array" path)

let () =
  let baseline = ref None and fresh = ref None and tolerance = ref 0.5 in
  let require_baseline = ref false in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: t :: rest ->
      (try tolerance := float_of_string t
       with _ -> failwith ("bad --tolerance " ^ t));
      parse rest
    | "--require-baseline" :: rest ->
      require_baseline := true;
      parse rest
    | a :: rest ->
      (match (!baseline, !fresh) with
      | None, _ -> baseline := Some a
      | Some _, None -> fresh := Some a
      | Some _, Some _ -> failwith ("unexpected argument " ^ a));
      parse rest
  in
  (try parse (List.tl (Array.to_list Sys.argv))
   with Failure e ->
     Printf.eprintf "check_regression: %s\n" e;
     exit 2);
  let baseline_path, fresh_path =
    match (!baseline, !fresh) with
    | Some b, Some f -> (b, f)
    | _ ->
      Printf.eprintf
        "usage: check_regression BASELINE FRESH [--tolerance T] \
         [--require-baseline]\n";
      exit 2
  in
  if not (Sys.file_exists baseline_path) then
    if !require_baseline then begin
      Printf.eprintf
        "check_regression: no baseline at %s (--require-baseline: the \
         committed snapshot is part of the gate)\n"
        baseline_path;
      exit 1
    end
    else begin
      (* bootstrap: no baseline committed yet — report, don't gate *)
      Printf.printf
        "check_regression: no baseline at %s; skipping (commit a baseline \
         to arm the gate)\n"
        baseline_path;
      exit 0
    end;
  let load path =
    try Json.of_string (read_file path) with
    | Sys_error e ->
      Printf.eprintf "check_regression: %s\n" e;
      exit 2
    | Json.Parse_error e ->
      Printf.eprintf "check_regression: %s: %s\n" path e;
      exit 2
  in
  let base = load baseline_path and cur = load fresh_path in
  let failures = ref 0 in
  (* a fixed absolute slack on top of the relative tolerance: cached
     artifacts legitimately measure ~0.000 s in the baseline, and any
     nonzero fresh time would trip a purely relative limit *)
  let slack = 0.5 in
  let check name base_v cur_v =
    let limit = (base_v *. (1.0 +. !tolerance)) +. slack in
    let verdict =
      if cur_v > limit then begin
        incr failures;
        "REGRESSION"
      end
      else "ok"
    in
    Printf.printf "  %-12s baseline %8.3f s   fresh %8.3f s   limit %8.3f s   %s\n"
      name base_v cur_v limit verdict
  in
  (try
     Printf.printf "perf regression check (tolerance +%.0f%%):\n"
       (100.0 *. !tolerance);
     check "total" (num baseline_path base "total_seconds")
       (num fresh_path cur "total_seconds");
     let base_runs = runs_of baseline_path base
     and cur_runs = runs_of fresh_path cur in
     List.iter
       (fun (artifact, base_s, base_cached) ->
         match
           List.find_opt (fun (a, _, _) -> a = artifact) cur_runs
         with
         | Some (_, cur_s, cur_cached) ->
           (* a cached row times a cache lookup, not runtime work:
              comparing it against (or as) a real measurement is
              meaningless either way *)
           if base_cached || cur_cached then
             Printf.printf "  %-12s skipped (metrics-cache hit)\n" artifact
           else check artifact base_s cur_s
         | None ->
           incr failures;
           Printf.printf "  %-12s missing from %s   REGRESSION\n" artifact
             fresh_path)
       base_runs;
     (* the head-to-head ratio is host-independent: both engines ran on
        the machine that produced the fresh file *)
     (match Json.member "head_to_head" cur with
     | Some h ->
       let reference = num fresh_path h "reference_seconds"
       and compiled = num fresh_path h "compiled_seconds" in
       let ok = compiled <= reference *. (1.0 +. !tolerance) in
       if not ok then incr failures;
       Printf.printf
         "  %-12s reference %7.3f s   compiled %7.3f s   %s\n" "head-to-head"
         reference compiled
         (if ok then "ok" else "REGRESSION (compiled engine slower)")
     | None -> ())
   with Failure e ->
     Printf.eprintf "check_regression: %s\n" e;
     exit 2);
  if !failures > 0 then begin
    Printf.printf "check_regression: %d regression(s) beyond tolerance\n"
      !failures;
    exit 1
  end;
  print_string "check_regression: no regressions\n"
