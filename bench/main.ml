(* Reproduction harness: regenerates every table and figure of the
   paper's evaluation (§V).

     dune exec bench/main.exe              — everything
     dune exec bench/main.exe -- fig3      — one artifact
     dune exec bench/main.exe -- quick     — reduced CPU sweep
     dune exec bench/main.exe -- --no-cache perf
                                           — disable the metrics cache
                                             (baseline regeneration)

   Absolute numbers come from the virtual-time cost model (see
   DESIGN.md); the paper's shapes — who wins, by what factor, where the
   curves flatten — are the reproduction target (EXPERIMENTS.md). *)

module E = Mutls.Experiments
module W = Mutls.Workloads

let quick = ref false

let cpus () = if !quick then [ 1; 4; 16; 64 ] else E.default_cpus

let heading title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let table1 () =
  heading "Table I: comparison of TLS systems";
  Printf.printf "%-22s %-10s %-10s %-16s %s\n" "System" "Type" "Language"
    "Forking model" "Speculative region";
  List.iter
    (fun (name, typ, lang, model, region) ->
      Printf.printf "%-22s %-10s %-10s %-16s %s\n" name typ lang model region)
    (E.table1 ())

let table2 () =
  heading "Table II: benchmarks";
  Printf.printf "%-11s %-42s %-14s %-10s %s\n" "Benchmark" "Description"
    "Pattern" "Language" "Characteristics";
  List.iter
    (fun (name, desc, _amount, pattern, lang, cls) ->
      Printf.printf "%-11s %-42s %-14s %-10s %s\n" name desc pattern lang cls)
    (E.table2 ())

let fig3 () =
  E.print_series ~title:"Fig. 3: speedup, computation-intensive applications"
    ~ylabel:"speedup" (E.fig3 ~cpus:(cpus ()) ())

let fig4 () =
  E.print_series ~title:"Fig. 4: speedup, memory-intensive applications"
    ~ylabel:"speedup" (E.fig4 ~cpus:(cpus ()) ())

let fig5 () =
  E.print_series ~title:"Fig. 5: critical path efficiency" ~ylabel:"ncrit"
    (E.fig5 ~cpus:(cpus ()) ())

let fig6 () =
  E.print_series ~title:"Fig. 6: speculative path efficiency" ~ylabel:"nsp"
    (E.fig6 ~cpus:(cpus ()) ())

let fig7 () =
  E.print_series ~title:"Fig. 7: power efficiency" ~ylabel:"npower"
    (E.fig7 ~cpus:(cpus ()) ())

let coverage () =
  heading "Parallel execution coverage C at 64 CPUs (paper: 23.1 - 60.7)";
  List.iter
    (fun (name, c) -> Printf.printf "%-12s %6.1f\n" name c)
    (E.coverage ())

let fig8 () =
  E.print_breakdowns ~title:"Fig. 8: critical path breakdown (fft, md)"
    (E.fig8 ~cpus:(cpus ()) ())

let fig9 () =
  E.print_breakdowns ~title:"Fig. 9: speculative path breakdown (fft, matmult)"
    (E.fig9 ~cpus:(cpus ()) ())

let fig10 () =
  E.print_series
    ~title:"Fig. 10: forking model comparison (normalised to the mixed model)"
    ~ylabel:"norm. speedup" (E.fig10 ~cpus:(cpus ()) ())

let fig11 () =
  heading "Fig. 11: rollback sensitivity (slowdown vs no-rollback run)";
  let rows = E.fig11 ~ncpus:(if !quick then 16 else 32) () in
  (match rows with
  | (_, ps) :: _ ->
    Printf.printf "%-12s %s\n" "benchmark"
      (String.concat " "
         (List.map (fun (p, _) -> Printf.sprintf "%5.0f%%" (100. *. p)) ps))
  | [] -> ());
  List.iter
    (fun (name, ps) ->
      Printf.printf "%-12s %s\n" name
        (String.concat " "
           (List.map (fun (_, v) -> Printf.sprintf "%6.2f" v) ps)))
    rows

(* --- policy engine: adaptive vs the static family --------------------- *)

(* Fig-style artifact for the adaptive speculation director: summed
   mixed-payoff-suite virtual time per CPU count, one series per policy
   (lower is better; virtual time, so deterministic across hosts).  The
   series are also written to POLICY_curves.json for the CI gate
   (check_policy.exe) and artifact upload; bench/POLICY_curves.json is
   the committed full-scale snapshot. *)
let policy () =
  let cpus = if !quick then [ 2; 4; 8 ] else [ 2; 4; 8; 16 ] in
  let series = E.fig_policy ~cpus () in
  E.print_series
    ~title:"Policy engine: total suite virtual time (mixed-payoff suite)"
    ~ylabel:"total TN" series;
  let json =
    Mutls.Json.Obj
      [
        ("bench", Mutls.Json.Str "policy-vs-static");
        ("suite", Mutls.Json.Str "mixed-payoff");
        ( "cpus",
          Mutls.Json.List
            (List.map (fun n -> Mutls.Json.Num (float_of_int n)) cpus) );
        ( "series",
          Mutls.Json.List
            (List.map
               (fun s ->
                 Mutls.Json.Obj
                   [
                     ("label", Mutls.Json.Str s.E.label);
                     ( "points",
                       Mutls.Json.List
                         (List.map
                            (fun (n, t) ->
                              Mutls.Json.Obj
                                [
                                  ("cpus", Mutls.Json.Num (float_of_int n));
                                  ("tn", Mutls.Json.Num t);
                                ])
                            s.E.points) );
                   ])
               series) );
      ]
  in
  let oc = open_out "POLICY_curves.json" in
  output_string oc (Mutls.Json.to_string json ^ "\n");
  close_out oc;
  Printf.printf "[wrote POLICY_curves.json]\n"

(* --- Bechamel microbenchmarks of the runtime primitives -------------- *)

let micro () =
  heading "Microbenchmarks: TLS runtime primitives (host wall-clock)";
  let open Bechamel in
  let open Toolkit in
  let mem_backing = Bytes.make (1 lsl 20) '\000' in
  let memio =
    {
      Mutls_runtime.Memio.read_word =
        (fun a -> Bytes.get_int64_le mem_backing (a land 0xFFFF8));
      write_word = (fun a v -> Bytes.set_int64_le mem_backing (a land 0xFFFF8) v);
      read_byte = (fun a -> Char.code (Bytes.get mem_backing (a land 0xFFFFF)));
      write_byte =
        (fun a v -> Bytes.set mem_backing (a land 0xFFFFF) (Char.chr (v land 0xff)));
    }
  in
  let make_buffer () =
    Mutls_runtime.Global_buffer.create ~slots:(1 lsl 12) ~temp_slots:64 ()
  in
  let test_write =
    Test.make ~name:"globalbuffer-write-512"
      (Staged.stage (fun () ->
           let gb = make_buffer () in
           for i = 0 to 511 do
             ignore
               (Mutls_runtime.Global_buffer.write gb memio (0x1000 + (8 * i)) 8
                  (Int64.of_int i))
           done;
           ignore (Mutls_runtime.Global_buffer.finalize gb)))
  in
  let test_read_hit =
    Test.make ~name:"globalbuffer-read-hit-512"
      (Staged.stage
         (let gb = make_buffer () in
          for i = 0 to 511 do
            ignore (Mutls_runtime.Global_buffer.read gb memio (0x1000 + (8 * i)) 8)
          done;
          fun () ->
            for i = 0 to 511 do
              ignore
                (Mutls_runtime.Global_buffer.read gb memio (0x1000 + (8 * i)) 8)
            done))
  in
  let test_validate =
    Test.make ~name:"globalbuffer-validate-512"
      (Staged.stage
         (let gb = make_buffer () in
          for i = 0 to 511 do
            ignore (Mutls_runtime.Global_buffer.read gb memio (0x1000 + (8 * i)) 8)
          done;
          fun () -> ignore (Mutls_runtime.Global_buffer.validate gb memio)))
  in
  let test_commit =
    Test.make ~name:"globalbuffer-commit-512"
      (Staged.stage
         (let gb = make_buffer () in
          for i = 0 to 511 do
            ignore
              (Mutls_runtime.Global_buffer.write gb memio (0x1000 + (8 * i)) 8 7L)
          done;
          fun () -> ignore (Mutls_runtime.Global_buffer.commit gb memio)))
  in
  (* fast-path head-to-heads: hit vs miss, sub-word vs whole-word
     store, and the temp-buffer spill path (hash-conflicting words) *)
  let test_read_miss =
    Test.make ~name:"globalbuffer-read-miss-512"
      (Staged.stage (fun () ->
           let gb = make_buffer () in
           for i = 0 to 511 do
             ignore (Mutls_runtime.Global_buffer.read gb memio (0x1000 + (8 * i)) 8)
           done;
           ignore (Mutls_runtime.Global_buffer.finalize gb)))
  in
  let test_write_hit =
    Test.make ~name:"globalbuffer-write-hit-512"
      (Staged.stage
         (let gb = make_buffer () in
          for i = 0 to 511 do
            ignore
              (Mutls_runtime.Global_buffer.write gb memio (0x1000 + (8 * i)) 8 7L)
          done;
          fun () ->
            for i = 0 to 511 do
              ignore
                (Mutls_runtime.Global_buffer.write gb memio (0x1000 + (8 * i)) 8
                   (Int64.of_int i))
            done))
  in
  let test_write_subword =
    Test.make ~name:"globalbuffer-write-i32-hit-512"
      (Staged.stage
         (let gb = make_buffer () in
          for i = 0 to 511 do
            ignore
              (Mutls_runtime.Global_buffer.write gb memio (0x1000 + (8 * i)) 8 7L)
          done;
          fun () ->
            for i = 0 to 511 do
              ignore
                (Mutls_runtime.Global_buffer.write gb memio (0x1000 + (8 * i)) 4
                   (Int64.of_int i))
            done))
  in
  let test_temp_spill =
    (* every address hashes to the same slot: the first write occupies
       it and the remaining 31 park in the temporary buffer *)
    let stride = 8 * (1 lsl 12) in
    Test.make ~name:"globalbuffer-temp-spill-32"
      (Staged.stage (fun () ->
           let gb = make_buffer () in
           for i = 0 to 31 do
             ignore
               (Mutls_runtime.Global_buffer.write gb memio
                  (0x1000 + (i * stride))
                  8 (Int64.of_int i))
           done;
           ignore (Mutls_runtime.Global_buffer.finalize gb)))
  in
  List.iter
    (fun t ->
      let instances = [ Instance.monotonic_clock ] in
      let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
      let results = Benchmark.all cfg instances t in
      Hashtbl.iter
        (fun name raw ->
          let ols =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              Instance.monotonic_clock
              raw
          in
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-30s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-30s (no estimate)\n" name)
        results)
    [ test_write; test_write_hit; test_write_subword; test_read_hit;
      test_read_miss; test_temp_spill; test_validate; test_commit ]

(* --- perf: timed figure sweep, emits BENCH_interp.json ---------------- *)

(* Wall-clock the quick figure sweep artifact by artifact and record the
   numbers in BENCH_interp.json (methodology: EXPERIMENTS.md).  The
   sweep shares one process, so the prepared-program and metrics caches
   behave exactly as in a plain `quick` run. *)
let perf () =
  quick := true;
  let sweep =
    [
      ("fig3", fig3); ("fig4", fig4); ("fig5", fig5); ("fig6", fig6);
      ("fig7", fig7); ("coverage", coverage); ("fig8", fig8); ("fig9", fig9);
      ("fig10", fig10); ("fig11", fig11);
    ]
  in
  let runs =
    List.map
      (fun (n, f) ->
        let _, fresh0 = E.run_counters () in
        let t0 = Unix.gettimeofday () in
        f ();
        let s = Unix.gettimeofday () -. t0 in
        let _, fresh1 = E.run_counters () in
        (* an artifact that triggered no fresh executions was served
           entirely from the metrics cache: its near-zero time measures
           cache lookups, not runtime work *)
        (n, s, fresh1 = fresh0))
      sweep
  in
  let total = List.fold_left (fun a (_, s, _) -> a +. s) 0.0 runs in
  heading "Perf: quick figure sweep (host wall-clock)";
  List.iter
    (fun (n, s, cached) ->
      Printf.printf "%-10s %7.2f s%s\n" n s (if cached then "  (cached)" else ""))
    runs;
  Printf.printf "%-10s %7.2f s\n" "total" total;
  (* head-to-head: compiled engine vs the retained reference
     interpreter on one representative TLS run *)
  let w = W.find "3x+1" in
  let m = Mutls_minic.Codegen.compile (w.W.c_source ()) in
  let t = Mutls_speculator.Pass.run m in
  let cfg = { Mutls_runtime.Config.default with ncpus = 16 } in
  let prog = Mutls_interp.Eval.prepare t in
  let time_runs f =
    ignore (f ());
    let t0 = Unix.gettimeofday () in
    for _ = 1 to 3 do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. 3.0
  in
  let compiled_s =
    time_runs (fun () -> Mutls_interp.Eval.run_tls_prepared cfg prog)
  in
  let reference_s =
    time_runs (fun () -> Mutls_interp.Reference.run_tls cfg t)
  in
  Printf.printf "engine head-to-head (3x+1 @ 16 CPUs, mean of 3):\n";
  Printf.printf "  reference %7.2f s   compiled %7.2f s   speedup %.2fx\n"
    reference_s compiled_s (reference_s /. compiled_s);
  let oc = open_out "BENCH_interp.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"quick-figure-sweep\",\n\
    \  \"engine\": \"compiled\",\n\
    \  \"total_seconds\": %.3f,\n\
    \  \"head_to_head\": { \"workload\": \"3x+1\", \"ncpus\": 16,\n\
    \                     \"reference_seconds\": %.3f,\n\
    \                     \"compiled_seconds\": %.3f },\n\
    \  \"runs\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    total reference_s compiled_s
    (String.concat ",\n"
       (List.map
          (fun (n, s, cached) ->
            Printf.sprintf
              "    { \"artifact\": %S, \"seconds\": %.3f, \"cached\": %b }" n s
              cached)
          runs));
  close_out oc;
  Printf.printf "[wrote BENCH_interp.json]\n"

(* --- obs: telemetry overhead, emits BENCH_obs.json -------------------- *)

(* Measures the cost of the always-on telemetry registry: identical
   prepared TLS runs with Config.telemetry set to Telemetry.disabled
   versus a live registry, interleaved min-of-k wall-clock per side
   (min is robust to scheduler noise; interleaving cancels drift).
   Runs go through Eval.run_tls_prepared directly — Experiments.run
   would serve repeats from the metrics cache and time nothing.  The
   CI gate (check_obs.exe) fails when on/off exceeds the budget in
   bench/BASELINE_obs.json. *)
let obs () =
  heading "Observability overhead: telemetry on vs off (host wall-clock)";
  let module Eval = Mutls_interp.Eval in
  let module Config = Mutls_runtime.Config in
  let reps = 5 in
  let rows =
    List.map
      (fun (name, ncpus) ->
        let w = W.find name in
        let m = Mutls_minic.Codegen.compile (w.W.c_source ()) in
        let t = Mutls_speculator.Pass.run m in
        let prog = Eval.prepare t in
        let run telemetry =
          ignore
            (Eval.run_tls_prepared { Config.default with ncpus; telemetry } prog)
        in
        let reg = Mutls.Telemetry.create () in
        (* warm both sides, then alternate *)
        run Mutls.Telemetry.disabled;
        run reg;
        let best_off = ref infinity and best_on = ref infinity in
        for _ = 1 to reps do
          let t0 = Unix.gettimeofday () in
          run Mutls.Telemetry.disabled;
          let off = Unix.gettimeofday () -. t0 in
          if off < !best_off then best_off := off;
          let t1 = Unix.gettimeofday () in
          run reg;
          let on_ = Unix.gettimeofday () -. t1 in
          if on_ < !best_on then best_on := on_
        done;
        Printf.printf "  %-10s @%-2d  off %7.3f s   on %7.3f s   ratio %.4f\n"
          name ncpus !best_off !best_on
          (!best_on /. !best_off);
        (name, ncpus, !best_off, !best_on))
      [ ("3x+1", 16); ("fft", 8); ("matmult", 8) ]
  in
  let tot_off = List.fold_left (fun a (_, _, o, _) -> a +. o) 0.0 rows in
  let tot_on = List.fold_left (fun a (_, _, _, o) -> a +. o) 0.0 rows in
  let ratio = tot_on /. tot_off in
  Printf.printf "  %-10s      off %7.3f s   on %7.3f s   ratio %.4f\n" "total"
    tot_off tot_on ratio;
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"telemetry-overhead\",\n\
    \  \"reps\": %d,\n\
    \  \"off_seconds\": %.4f,\n\
    \  \"on_seconds\": %.4f,\n\
    \  \"overhead\": %.5f,\n\
    \  \"rows\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    reps tot_off tot_on ratio
    (String.concat ",\n"
       (List.map
          (fun (n, c, off, on_) ->
            Printf.sprintf
              "    { \"workload\": %S, \"ncpus\": %d, \"off_seconds\": %.4f, \
               \"on_seconds\": %.4f, \"overhead\": %.5f }"
              n c off on_ (on_ /. off))
          rows));
  close_out oc;
  Printf.printf "[wrote BENCH_obs.json]\n"

(* --- mem: memory-system resilience, emits BENCH_mem.json -------------- *)

(* Exercises the sharded/spill-tier GlobalBuffer under deliberately
   shrunken buffers (256 home slots, 16 temp slots) on three write-set
   profiles, each with the spill tier off (seed-era behaviour) and on:

     uniform   per-chunk write set fits the home slots — the two
               configurations must be cycle-identical (the spill tier
               is pure overhead-free scaffolding until pressure);
     pressure  write set slightly over capacity — parks and a modest
               spill population;
     storm     a conflict storm over a working set ~100x the home
               slots — with the tier off every speculation overflows
               and the policy degrades to sequential; with it on the
               run completes speculatively.

   All numbers are virtual-time (deterministic), so the CI gate
   (check_mem.exe) can hold them against the committed
   bench/BASELINE_mem.json exactly: the uniform pair must stay equal
   and the storm off/on time ratio must not fall below the budget. *)
let mem () =
  heading "Memory resilience: spill tier off vs on (virtual time)";
  let module Eval = Mutls_interp.Eval in
  let module Config = Mutls_runtime.Config in
  let module TM = Mutls_runtime.Thread_manager in
  let chunk_src ~chunks ~words =
    Printf.sprintf
      {|
int A[%d];
int out[%d];
int main() {
  for (int c = 0; c < %d; c++) {
    __builtin_MUTLS_fork(0, mixed);
    int r = 0;
    for (int k = 0; k < %d; k++) {
      A[c * %d + k] = A[c * %d + k] + k + c;
      r = r + A[c * %d + k];
    }
    out[c] = r %% 100000;
    __builtin_MUTLS_join(0);
  }
  int t = 0;
  for (int c = 0; c < %d; c++) t = t + out[c];
  print_int(t);
  print_newline();
  return 0;
}
|}
      (chunks * words) chunks chunks words words words words chunks
  in
  (* The uniform source keeps every thread's footprint contiguous and
     under the home-slot count (192 words total, no separate out[]
     array: chunk results accumulate into A itself), so NO access ever
     parks or spills — the precondition for the off/on cycle-equality
     assertion. *)
  let uniform_src =
    {|
int A[192];
int main() {
  for (int c = 0; c < 2; c++) {
    __builtin_MUTLS_fork(0, mixed);
    int r = 0;
    for (int k = 0; k < 96; k++) {
      A[c * 96 + k] = A[c * 96 + k] + k + c;
      r = r + A[c * 96 + k];
    }
    A[c * 96] = r % 100000;
    __builtin_MUTLS_join(0);
  }
  print_int(A[0] + A[96]);
  print_newline();
  return 0;
}
|}
  in
  let workloads =
    [
      ("uniform", uniform_src);
      ("pressure", chunk_src ~chunks:8 ~words:300);
      (* 16 * 1600 = 25600 words, 100x the 256 home slots *)
      ("storm", chunk_src ~chunks:16 ~words:1600);
    ]
  in
  let spill_slots = 4096 in
  let run ~source ~spill ~shards ~line_words =
    let m = Mutls_minic.Codegen.compile source in
    let seq = Eval.run_sequential m in
    let t = Mutls_speculator.Pass.run m in
    let cfg =
      {
        Config.default with
        ncpus = 4;
        buffer_slots = 256;
        temp_slots = 16;
        degrade_after = 4;
        buffers =
          {
            Config.Buffers.default with
            Config.Buffers.shards;
            spill_slots = (if spill then spill_slots else 0);
            line_words;
          };
      }
    in
    let r = Eval.run_tls cfg t in
    if r.Eval.toutput <> seq.Eval.soutput then
      failwith "mem: TLS output diverged from sequential run";
    let commits =
      List.length
        (List.filter (fun t -> t.TM.r_committed) r.Eval.tretired)
    in
    ( r.Eval.tfinish,
      TM.degraded r.Eval.tmgr,
      commits,
      List.length r.Eval.tretired )
  in
  let rows =
    List.concat_map
      (fun (name, source) ->
        List.map
          (fun (variant, spill, shards, line_words) ->
            let tfinish, degraded, commits, threads =
              run ~source ~spill ~shards ~line_words
            in
            Printf.printf
              "  %-9s %-14s  %10.0f cycles  %-9s  %d/%d committed\n" name
              variant tfinish
              (if degraded then "DEGRADED" else "speculative")
              commits threads;
            (name, variant, spill, shards, line_words, tfinish, degraded,
             commits, threads))
          [
            ("spill-off", false, 1, 1);
            ("spill-on", true, 1, 1);
            (* full geometry: sharded, line-granular, spill on *)
            ("sharded-lines", true, 8, 8);
          ])
      workloads
  in
  let find name variant =
    let (_, _, _, _, _, tfinish, degraded, commits, _) =
      List.find
        (fun (n, v, _, _, _, _, _, _, _) -> n = name && v = variant)
        rows
    in
    (tfinish, degraded, commits)
  in
  let storm_off, _, _ = find "storm" "spill-off" in
  let storm_on, _, _ = find "storm" "spill-on" in
  let storm_ratio = storm_off /. storm_on in
  Printf.printf "  storm off/on ratio: %.2f\n" storm_ratio;
  let oc = open_out "BENCH_mem.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"memory-resilience\",\n\
    \  \"buffer_slots\": 256,\n\
    \  \"temp_slots\": 16,\n\
    \  \"spill_slots\": %d,\n\
    \  \"storm_ratio\": %.4f,\n\
    \  \"rows\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    spill_slots storm_ratio
    (String.concat ",\n"
       (List.map
          (fun (n, v, spill, shards, line_words, tf, dg, cm, th) ->
            Printf.sprintf
              "    { \"workload\": %S, \"variant\": %S, \"spill\": %b, \
               \"shards\": %d, \"line_words\": %d, \"tfinish\": %.1f, \
               \"degraded\": %b, \"commits\": %d, \"threads\": %d }"
              n v spill shards line_words tf dg cm th)
          rows));
  close_out oc;
  Printf.printf "[wrote BENCH_mem.json]\n"

(* --- par: domains-backend sweep, emits BENCH_par.json ----------------- *)

(* Wall-clocks every paper benchmark on the OCaml 5 domains backend
   (Mutls_par.Sched) across domain counts, at a fixed virtual-CPU
   budget.  Experiments.run_par checks each run's output against the
   sequential oracle (raising Divergence on mismatch), so a written
   artifact is itself evidence of correctness; the recorded
   host_cores lets the CI gate (check_par.exe) demand real speedup
   only on hosts that can physically provide it.  Never cached —
   these are honest wall-clock timings by construction. *)
let par () =
  heading "Parallel backend: wall-clock vs domains (ncpus = 8)";
  let domain_counts = if !quick then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let reps = if !quick then 1 else 3 in
  let ncpus = 8 in
  let host_cores = Domain.recommended_domain_count () in
  let rows =
    List.concat_map
      (fun w ->
        List.map
          (fun domains ->
            (* min-of-k: robust to scheduler noise on shared runners *)
            let best = ref infinity in
            for _ = 1 to reps do
              let s = E.run_par ~domains ~ncpus w in
              if s < !best then best := s
            done;
            Printf.printf "  %-11s %d domain(s)  %8.4f s wall\n" w.W.name
              domains !best;
            (w.W.name, domains, !best))
          domain_counts)
      W.all
  in
  let oc = open_out "BENCH_par.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"par-domains-sweep\",\n\
    \  \"ncpus\": %d,\n\
    \  \"reps\": %d,\n\
    \  \"host_cores\": %d,\n\
    \  \"domains\": [%s],\n\
    \  \"rows\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    ncpus reps host_cores
    (String.concat ", " (List.map string_of_int domain_counts))
    (String.concat ",\n"
       (List.map
          (fun (n, d, s) ->
            Printf.sprintf
              "    { \"workload\": %S, \"domains\": %d, \"seconds\": %.4f }" n d
              s)
          rows));
  close_out oc;
  Printf.printf "[wrote BENCH_par.json]\n"

(* --- driver ----------------------------------------------------------- *)

let artifacts =
  [
    ("table1", table1);
    ("table2", table2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("coverage", coverage);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("policy", policy);
    ("ablation-cascade", Mutls.Ablations.print_cascade);
    ("ablation-vp", Mutls.Ablations.print_value_prediction);
    ("ablation-auto", Mutls.Ablations.print_auto);
    ("micro", micro);
    ("obs", obs);
    ("mem", mem);
    ("perf", perf);
    ("par", par);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        if a = "quick" then begin
          quick := true;
          false
        end
        else if a = "--no-cache" then begin
          (* every row in a committed baseline must report a timing
             that really executed, never a metrics-cache lookup *)
          E.set_cache_enabled false;
          E.clear_cache ();
          false
        end
        else true)
      args
  in
  let selected =
    match args with
    (* perf re-runs the figure sweep under a timer, obs repeats timed
       TLS runs, and par wall-clocks the domains backend; all three
       only on request *)
    | [] ->
      List.filter
        (fun n -> n <> "perf" && n <> "obs" && n <> "par")
        (List.map fst artifacts)
    | names ->
      List.iter
        (fun n ->
          if not (List.mem_assoc n artifacts) then begin
            Printf.eprintf "unknown artifact %s; available: %s\n" n
              (String.concat " " (List.map fst artifacts));
            exit 1
          end)
        names;
      names
  in
  let t0 = Unix.gettimeofday () in
  List.iter (fun n -> (List.assoc n artifacts) ()) selected;
  Printf.printf "\n[%d artifact(s) regenerated in %.0f s]\n"
    (List.length selected)
    (Unix.gettimeofday () -. t0)
