(* mutlsc: command-line driver for the MUTLS system.

     mutlsc run prog.mc --cpus 8            compile + speculate + run
     mutlsc run prog.f90 --lang fortran --seq
     mutlsc dump prog.mc --transformed      print MIR before/after the pass
     mutlsc bench 3x+1 --cpus 64            run a built-in benchmark
     mutlsc bench fft --trace t.jsonl       write an event trace
     mutlsc bench fft --profile p.txt       profile the run while it executes
     mutlsc report t.jsonl                  fold a trace into Fig. 8/9
     mutlsc profile t.jsonl                 per-fork-point payoff, hot
                                            addresses, rank utilization
     mutlsc chaos --seed 7 --runs 500       randomized fault-injection
                                            campaign with shrinking
     mutlsc chaos --replay repro.json       re-run a minimized repro *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

type input_lang = Lang of Mutls.language | Mir

let lang_of_string path = function
  | Some "c" -> Lang Mutls.C
  | Some "fortran" | Some "f" -> Lang Mutls.Fortran
  | Some "mir" -> Mir
  | Some other -> invalid_arg ("unknown language " ^ other)
  | None ->
    if Filename.check_suffix path ".f" || Filename.check_suffix path ".f90"
       || Filename.check_suffix path ".mf"
    then Lang Mutls.Fortran
    else if Filename.check_suffix path ".mir" then Mir
    else Lang Mutls.C

(* .mir files are textual IR dumps (mutlsc dump); anything else goes
   through a front-end *)
let compile_input ~optimize path lang source =
  match lang_of_string path lang with
  | Lang l -> Mutls.compile ~optimize l source
  | Mir ->
    let m =
      try Mutls_mir.Parse.parse source
      with Mutls_mir.Parse.Error e -> raise (Mutls.Compile_error e)
    in
    (try Mutls.Verify.check_module m
     with Mutls.Verify.Invalid e -> raise (Mutls.Compile_error e));
    if optimize then Mutls.Opt.run_module m;
    m

let model_conv = function
  | "mixed" -> Mutls.Config.Mixed
  | "inorder" | "in-order" -> Mutls.Config.In_order
  | "outoforder" | "out-of-order" -> Mutls.Config.Out_of_order
  | other -> invalid_arg ("unknown model " ^ other)

(* --- shared options ---------------------------------------------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Source file.")

let lang_arg =
  Arg.(value & opt (some string) None & info [ "lang" ] ~docv:"LANG"
         ~doc:"Source language: c, fortran or mir (default: from extension).")

let cpus_arg =
  Arg.(value & opt int 4 & info [ "cpus" ] ~docv:"N" ~doc:"Virtual CPUs.")

let domains_arg =
  Arg.(value & opt int 0 & info [ "domains" ] ~docv:"N"
         ~doc:"Run on the parallel OCaml 5 domains backend with $(docv) \
               domains (work stealing spreads the virtual CPUs' threads \
               over them) instead of the deterministic simulator.  Timing \
               becomes wall-clock; outputs still match the simulator.  0 \
               (the default) selects the simulator.")

let model_arg =
  Arg.(value & opt (some string) None & info [ "model" ]
         ~doc:"Force all fork points to one model: mixed, inorder, outoforder.")

let rollback_arg =
  Arg.(value & opt float 0.0 & info [ "rollback" ]
         ~doc:"Injected rollback probability (paper Fig. 11).")

let policy_arg =
  Arg.(value & opt string "static" & info [ "policy" ] ~docv:"POLICY"
         ~doc:"Speculation policy: $(b,static) (the paper's fixed \
               backoff/degrade scheme; combine with Config's backoff \
               knobs), $(b,adaptive) (closed-loop per-fork-point engine: \
               denies unprofitable points, expands store-free regions to \
               tracking-free execution), or $(b,hostile) (adversarial \
               decision stream, for robustness testing).")

(* "static"/"adaptive"/"hostile" -> a Policy.t with that kind's defaults *)
let policy_conv s =
  match Mutls.Config.Policy.kind_of_string s with
  | Mutls.Config.Policy.Static -> Mutls.Config.Policy.static ()
  | Mutls.Config.Policy.Adaptive -> Mutls.Config.Policy.adaptive ()
  | Mutls.Config.Policy.Hostile -> Mutls.Config.Policy.hostile ()

let shards_arg =
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N"
         ~doc:"GlobalBuffer shards (power of two); 64-byte lines \
               interleave across shards.")

let spill_slots_arg =
  Arg.(value & opt int 0 & info [ "spill-slots" ] ~docv:"N"
         ~doc:"GlobalBuffer spill-tier capacity (power of two; 0 disables). \
               With a spill tier, hash conflicts and full home slots spill \
               at a latency penalty instead of stalling or rolling back.")

let line_words_arg =
  Arg.(value & opt int 1 & info [ "line-words" ] ~docv:"N"
         ~doc:"Validation/commit granularity in words: 1 (per-word) or 8 \
               (64-byte lines).")

let buffers_of shards spill_slots line_words =
  { Mutls.Config.Buffers.default with
    Mutls.Config.Buffers.shards;
    spill_slots;
    line_words }

let buffers_term = Term.(const buffers_of $ shards_arg $ spill_slots_arg $ line_words_arg)

let seq_arg =
  Arg.(value & flag & info [ "seq" ] ~doc:"Run sequentially (no speculation).")

let opt_arg =
  Arg.(value & flag & info [ "O" ] ~doc:"Run the scalar optimizer first.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print TLS metrics after the run.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write an event trace: $(i,.jsonl) files get JSON Lines (the \
               format $(b,mutlsc report) consumes), anything else Chrome \
               trace_event JSON loadable in chrome://tracing or Perfetto.")

(* The library never reads the process environment; the deprecated
   MUTLS_DEBUG / MUTLS_DEBUG2 toggles survive only as this CLI shim
   selecting the stderr pretty-printing sink. *)
let env_shim_sink () =
  let dbg = Sys.getenv_opt "MUTLS_DEBUG" <> None in
  let dbg2 = Sys.getenv_opt "MUTLS_DEBUG2" <> None in
  if dbg || dbg2 then begin
    Printf.eprintf
      "mutlsc: warning: MUTLS_DEBUG/MUTLS_DEBUG2 are deprecated; mapping them \
       to the stderr trace sink (prefer --trace FILE)\n%!";
    Some (Mutls.Trace.stderr_pretty ~charges:dbg2 ())
  end
  else None

let file_sink path =
  let oc = open_out path in
  let base =
    if Filename.check_suffix path ".jsonl" then
      Mutls.Trace.jsonl (output_string oc)
    else Mutls.Trace.chrome (output_string oc)
  in
  (* Idempotent close: the commands close their sink in a Fun.protect
     finalizer, which can run after an orderly close already happened —
     a second close_out on the same channel would raise. *)
  let closed = ref false in
  { base with
    Mutls.Trace.close =
      (fun () ->
        if not !closed then begin
          closed := true;
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> base.Mutls.Trace.close ())
        end) }

let make_sink trace =
  let sinks =
    (match trace with None -> [] | Some path -> [ file_sink path ])
    @ (match env_shim_sink () with None -> [] | Some s -> [ s ])
  in
  match sinks with
  | [] -> Mutls.Trace.null
  | [ s ] -> s
  | ss -> Mutls.Trace.tee ss

let make_cfg cpus model rollback policy buffers sink =
  { Mutls.Config.default with
    ncpus = cpus;
    model_override = Option.map model_conv model;
    rollback_probability = rollback;
    policy = policy_conv policy;
    buffers;
    trace_sink = sink }

(* --- profile output ----------------------------------------------------- *)

let profile_arg =
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE"
         ~doc:"Profile the run with the streaming aggregator and write the \
               result to $(docv): $(i,.json) files get the machine-readable \
               profile, anything else the text tables (see \
               $(b,mutlsc profile)).")

let write_profile path p =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      if Filename.check_suffix path ".json" then
        output_string oc (Mutls.Json.to_string (Mutls.Profile.to_json p) ^ "\n")
      else begin
        let fmt = Format.formatter_of_out_channel oc in
        Mutls.Profile.pp fmt p;
        Format.pp_print_flush fmt ()
      end)

(* --- telemetry output ---------------------------------------------------- *)

let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Write the run's telemetry snapshot (always-on counters, \
               gauges, histograms) to $(docv): $(i,.json) files get JSON, \
               anything else Prometheus text exposition format.")

let write_metrics path snap =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      if Filename.check_suffix path ".json" then
        output_string oc
          (Mutls.Json.to_string (Mutls.Telemetry.to_json snap) ^ "\n")
      else output_string oc (Mutls.Telemetry.to_prometheus snap))

(* Observability finalizer shared by run/bench/chaos: flush and close
   the trace sink, then write the profile and metrics files — even
   when the protected run Trap'd or chaos injection raised mid-run
   (the sink-lifecycle bug this replaces dropped the buffered tail of
   the trace on those paths).  Never raises: a secondary I/O failure
   here must not mask the run's own exception, so it becomes a
   warning on stderr instead. *)
let obs_finally ?(sink = Mutls.Trace.null) ?write_prof ?write_snap () =
  let warn what e =
    Printf.eprintf "mutlsc: warning: failed to write %s: %s\n%!" what e
  in
  (try Mutls.Trace.close sink with Sys_error e -> warn "trace" e);
  (match write_prof with
  | None -> ()
  | Some f -> ( try f () with Sys_error e -> warn "profile" e));
  match write_snap with
  | None -> ()
  | Some f -> ( try f () with Sys_error e -> warn "metrics" e)

(* --- lenient trace input ------------------------------------------------- *)

(* Clean diagnostics for the trace-consuming subcommands: an empty file
   and non-JSONL input are errors; a partially malformed trace (e.g. a
   truncated last line from a killed run) folds the good records and
   warns about the skipped ones. *)
let fold_trace_file feed path =
  let stats = Mutls.Report.fold_jsonl_file_lenient feed path in
  if stats.Mutls.Report.lines = 0 then
    Error (Printf.sprintf "%s: empty trace (no records)" path)
  else if stats.Mutls.Report.parsed = 0 then
    Error
      (Printf.sprintf "%s: not a JSON Lines trace (%s)" path
         (Option.value stats.Mutls.Report.first_error
            ~default:"no parseable line"))
  else begin
    if stats.Mutls.Report.skipped > 0 then
      Printf.eprintf
        "mutlsc: warning: skipped %d malformed line(s) of %d (first: %s)\n%!"
        stats.Mutls.Report.skipped stats.Mutls.Report.lines
        (Option.value stats.Mutls.Report.first_error ~default:"?");
    Ok ()
  end

(* --- run ---------------------------------------------------------------- *)

let run_cmd =
  let run file lang cpus domains model rollback policy buffers seq stats
      optimize trace profile metrics =
    try
      let source = read_file file in
      let m = compile_input ~optimize file lang source in
      if seq then begin
        let r = Mutls.run_sequential m in
        print_string r.Mutls.Eval.soutput;
        Printf.printf "[sequential: %.0f virtual cycles]\n" r.Mutls.Eval.scost;
        `Ok ()
      end
      else begin
        (* the profiler is a streaming sink tee'd beside the trace file
           sink: no trace is buffered to produce the profile *)
        let prof = Option.map (fun _ -> Mutls.Profile.create ()) profile in
        let sink =
          match prof with
          | None -> make_sink trace
          | Some agg ->
            Mutls.Trace.tee [ make_sink trace; Mutls.Profile.sink agg ]
        in
        (* a fresh registry scopes --metrics to this run, rather than
           accumulating into the process-wide default *)
        let reg = Mutls.Telemetry.create () in
        let cfg =
          { (make_cfg cpus model rollback policy buffers sink) with
            Mutls.Config.telemetry = reg;
            Mutls.Config.domains = max 1 domains }
        in
        let seq_r = Mutls.run_sequential ~cost:cfg.Mutls.Config.cost m in
        let t = Mutls.speculate m in
        let r =
          Fun.protect
            ~finally:
              (obs_finally ~sink
                 ?write_prof:
                   (match (profile, prof) with
                   | Some path, Some agg ->
                     Some
                       (fun () ->
                         write_profile path (Mutls.Profile.finish agg))
                   | _ -> None)
                 ?write_snap:
                   (Option.map
                      (fun path () ->
                        write_metrics path (Mutls.Telemetry.snapshot reg))
                      metrics))
            (fun () ->
              if domains > 0 then Mutls.run_tls_par cfg t
              else Mutls.run_tls cfg t)
        in
        print_string r.Mutls.Eval.toutput;
        if domains > 0 then
          (* wall-clock time; the virtual-cycle metrics belong to the
             simulator path *)
          Printf.printf "[TLS on %d CPUs over %d domains: %.4f s wall]\n" cpus
            domains r.Mutls.Eval.tfinish
        else begin
          let metrics = Mutls.Metrics.compute ~ts:seq_r.Mutls.Eval.scost r in
          Printf.printf "[TLS on %d CPUs: %.0f cycles, speedup %.2f]\n" cpus
            r.Mutls.Eval.tfinish metrics.Mutls.Metrics.speedup;
          if stats then Format.printf "%a@." Mutls.Metrics.pp metrics
        end;
        if r.Mutls.Eval.toutput <> seq_r.Mutls.Eval.soutput then begin
          Printf.eprintf "error: TLS output diverged from sequential run\n";
          exit 2
        end;
        `Ok ()
      end
    with
    | Mutls.Compile_error e -> `Error (false, "compile error: " ^ e)
    | Mutls.Eval.Trap e -> `Error (false, "runtime trap: " ^ e)
    | Invalid_argument e -> `Error (false, e)
    | Sys_error e -> `Error (false, e)
  in
  let info = Cmd.info "run" ~doc:"Compile a program and run it under TLS." in
  Cmd.v info
    Term.(
      ret
        (const run $ file_arg $ lang_arg $ cpus_arg $ domains_arg $ model_arg
       $ rollback_arg $ policy_arg $ buffers_term $ seq_arg $ stats_arg
       $ opt_arg $ trace_arg $ profile_arg $ metrics_arg))

(* --- dump --------------------------------------------------------------- *)

let dump_cmd =
  let dump file lang transformed optimize =
    try
      let source = read_file file in
      let m = compile_input ~optimize file lang source in
      let m = if transformed then Mutls.speculate m else m in
      print_string (Mutls.Printer.module_to_string m);
      `Ok ()
    with
    | Mutls.Compile_error e -> `Error (false, "compile error: " ^ e)
    | Invalid_argument e -> `Error (false, e)
  in
  let transformed_arg =
    Arg.(value & flag & info [ "transformed" ]
           ~doc:"Print the IR after the speculator pass.")
  in
  let info = Cmd.info "dump" ~doc:"Print the MIR of a program." in
  Cmd.v info
    Term.(ret (const dump $ file_arg $ lang_arg $ transformed_arg $ opt_arg))

(* --- bench -------------------------------------------------------------- *)

let bench_cmd =
  let bench name cpus domains model rollback policy buffers stats trace profile
      metrics_file =
    try
      let w = Mutls.Workloads.find name in
      if domains > 0 then begin
        (* parallel backend: a wall-clock measurement with the oracle
           check; the virtual-time metrics and observability hooks
           belong to the simulator path *)
        let wall =
          Mutls.Experiments.run_par ~policy:(policy_conv policy) ~domains
            ~ncpus:cpus w
        in
        Printf.printf "%s on %d CPUs over %d domains: %.4f s wall\n" name cpus
          domains wall;
        `Ok ()
      end
      else begin
      let sink = make_sink trace in
      (* --metrics scopes telemetry to a fresh registry for this run;
         passing ?telemetry also bypasses the metrics cache so the
         benchmark really executes *)
      let reg =
        Option.map (fun _ -> Mutls.Telemetry.create ()) metrics_file
      in
      let metrics =
        Fun.protect
          ~finally:
            (obs_finally ~sink
               ?write_snap:
                 (match (metrics_file, reg) with
                 | Some path, Some reg ->
                   Some
                     (fun () ->
                       write_metrics path (Mutls.Telemetry.snapshot reg))
                 | _ -> None))
          (fun () ->
            Mutls.Experiments.run
              ~model_override:(Option.map model_conv model)
              ~rollback ~trace_sink:sink
              ?profile:(Option.map (fun path -> write_profile path) profile)
              ?telemetry:reg ~policy:(policy_conv policy) ~buffers ~ncpus:cpus
              w)
      in
      Format.printf "%s on %d CPUs: %a@." name cpus Mutls.Metrics.pp metrics;
      if stats then
        List.iter
          (fun (c, v) -> Printf.printf "  critical %-10s %5.1f%%\n" c (100. *. v))
          metrics.Mutls.Metrics.crit_breakdown;
      `Ok ()
    end
    with
    | Invalid_argument e -> `Error (false, e)
    | Sys_error e -> `Error (false, e)
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK"
           ~doc:"One of the paper's benchmarks (Table II), e.g. 3x+1, fft.")
  in
  let info = Cmd.info "bench" ~doc:"Run a built-in benchmark under TLS." in
  Cmd.v info
    Term.(
      ret
        (const bench $ name_arg $ cpus_arg $ domains_arg $ model_arg
       $ rollback_arg $ policy_arg $ buffers_term $ stats_arg $ trace_arg
       $ profile_arg $ metrics_arg))

(* --- report ------------------------------------------------------------- *)

let trace_file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE"
         ~doc:"A JSON Lines trace written by $(b,--trace FILE.jsonl).")

let report_cmd =
  let report file =
    try
      (* report needs the records in order but not all at once; the
         accumulation keeps `mutlsc report` working on traces with
         damaged lines (e.g. truncated by a killed run) *)
      let acc = ref [] in
      match fold_trace_file (fun r -> acc := r :: !acc) file with
      | Error e -> `Error (false, e)
      | Ok () ->
        let r = Mutls.Report.of_records (List.rev !acc) in
        Format.printf "%a@." Mutls.Report.pp r;
        `Ok ()
    with
    | Sys_error e -> `Error (false, e)
  in
  let info =
    Cmd.info "report"
      ~doc:"Fold a JSON Lines trace into the paper's Fig. 8/9 breakdowns."
  in
  Cmd.v info Term.(ret (const report $ trace_file_arg))

(* --- profile ------------------------------------------------------------- *)

let profile_cmd =
  let profile file json threshold min_forks top =
    try
      let agg = Mutls.Profile.create () in
      match fold_trace_file (Mutls.Profile.feed agg) file with
      | Error e -> `Error (false, e)
      | Ok () ->
        let p = Mutls.Profile.finish agg in
        (if json then
           print_string
             (Mutls.Json.to_string
                (Mutls.Profile.to_json ~threshold ~min_forks p)
             ^ "\n")
         else
           Format.printf "%a@."
             (fun fmt -> Mutls.Profile.pp ~threshold ~min_forks ~top fmt)
             p);
        `Ok ()
    with
    | Sys_error e -> `Error (false, e)
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the profile as machine-readable JSON.")
  in
  let threshold_arg =
    Arg.(value & opt float 0.5 & info [ "threshold" ] ~docv:"R"
           ~doc:"Advisor: flag fork points whose wasted-work ratio exceeds \
                 $(docv) as no-speculate candidates.")
  in
  let min_forks_arg =
    Arg.(value & opt int 1 & info [ "min-forks" ] ~docv:"N"
           ~doc:"Advisor: ignore fork points with fewer than $(docv) forks.")
  in
  let top_arg =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N"
           ~doc:"Show the $(docv) hottest conflict addresses.")
  in
  let info =
    Cmd.info "profile"
      ~doc:"Aggregate a JSON Lines trace into a speculation profile: \
            per-fork-point payoff, conflict hot addresses, per-rank \
            utilization and no-speculate advice."
  in
  Cmd.v info
    Term.(
      ret
        (const profile $ trace_file_arg $ json_arg $ threshold_arg
       $ min_forks_arg $ top_arg))

(* --- spans --------------------------------------------------------------- *)

let spans_cmd =
  let spans file json =
    try
      let acc = ref [] in
      match fold_trace_file (fun r -> acc := r :: !acc) file with
      | Error e -> `Error (false, e)
      | Ok () ->
        let t = Mutls.Spans.of_records (List.rev !acc) in
        (if json then
           print_string (Mutls.Json.to_string (Mutls.Spans.to_json t) ^ "\n")
         else Format.printf "%a@?" Mutls.Spans.pp t);
        `Ok ()
    with Sys_error e -> `Error (false, e)
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the span tree and critical path as JSON.")
  in
  let info =
    Cmd.info "spans"
      ~doc:"Fold a JSON Lines trace into causal span timelines: one span \
            per thread with fork/join causality edges, plus the critical \
            path through the speculation DAG (whose segment durations sum \
            to the run's total runtime)."
  in
  Cmd.v info Term.(ret (const spans $ trace_file_arg $ json_arg))

(* --- top ----------------------------------------------------------------- *)

let top_cmd =
  let top name cpus model rollback policy buffers interval seed runs =
    try
      (* In-place redraw: move the cursor back over the previous frame
         and clear to end of screen, then print the fresh snapshot. *)
      let lines = ref 0 in
      let draw reg =
        let s =
          Format.asprintf "%a" Mutls.Telemetry.pp (Mutls.Telemetry.snapshot reg)
        in
        if !lines > 0 then Printf.printf "\027[%dA\027[J" !lines;
        print_string s;
        flush stdout;
        lines := List.length (String.split_on_char '\n' s) - 1
      in
      if name = "chaos" then begin
        (* chaos cases build their own configs, which record into the
           process-wide default registry; redraw once per case *)
        let reg = Mutls.Telemetry.default in
        let c =
          Fun.protect
            ~finally:(fun () -> draw reg)
            (fun () ->
              Mutls.Chaos.run_campaign
                ~progress:(fun _ _ -> draw reg)
                ~policy:(Mutls.Config.Policy.kind_of_string policy)
                ~seed ~runs ())
        in
        Printf.printf "chaos: %d/%d cases passed (seed %d)\n"
          c.Mutls.Chaos.passed c.Mutls.Chaos.requested seed;
        if c.Mutls.Chaos.failed = None then `Ok ()
        else `Error (false, "chaos campaign failed (re-run mutlsc chaos)")
      end
      else begin
        let w = Mutls.Workloads.find name in
        let reg = Mutls.Telemetry.create () in
        (* the refresher is an enabled trace sink, so the run bypasses
           the metrics cache and really executes; every [interval]
           records it redraws the live snapshot *)
        let count = ref 0 in
        let refresher =
          {
            Mutls.Trace.enabled = true;
            emit =
              (fun _ ->
                incr count;
                if !count mod interval = 0 then draw reg);
            close = (fun () -> ());
          }
        in
        let metrics =
          Fun.protect
            ~finally:(fun () -> draw reg)
            (fun () ->
              Mutls.Experiments.run ~trace_sink:refresher ~telemetry:reg
                ~model_override:(Option.map model_conv model)
                ~rollback ~policy:(policy_conv policy) ~buffers ~ncpus:cpus w)
        in
        Format.printf "%s on %d CPUs: %a@." name cpus Mutls.Metrics.pp metrics;
        `Ok ()
      end
    with
    | Invalid_argument e -> `Error (false, e)
    | Sys_error e -> `Error (false, e)
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET"
           ~doc:"A built-in benchmark (e.g. 3x+1, fft), or the literal \
                 $(b,chaos) to watch a fault-injection campaign.")
  in
  let interval_arg =
    Arg.(value & opt int 2000 & info [ "interval" ] ~docv:"N"
           ~doc:"Refresh the view every $(docv) trace records.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Campaign seed (chaos target only).")
  in
  let runs_arg =
    Arg.(value & opt int 200 & info [ "runs" ] ~docv:"N"
           ~doc:"Campaign cases (chaos target only).")
  in
  let info =
    Cmd.info "top"
      ~doc:"Live terminal view of the always-on telemetry while a benchmark \
            or chaos campaign runs: fork/commit/rollback rates by reason, \
            policy decisions, buffer occupancy — refreshed in place."
  in
  Cmd.v info
    Term.(
      ret
        (const top $ name_arg $ cpus_arg $ model_arg $ rollback_arg
       $ policy_arg $ buffers_term $ interval_arg $ seed_arg $ runs_arg))

(* --- chaos --------------------------------------------------------------- *)

let chaos_cmd =
  let chaos seed runs policy out replay quiet metrics =
    try
      Fun.protect
        ~finally:
          (obs_finally
             ?write_snap:
               (Option.map
                  (fun path () ->
                    (* chaos cases run on Config.default, so their
                       telemetry lands in the process-wide registry *)
                    write_metrics path
                      (Mutls.Telemetry.snapshot Mutls.Telemetry.default))
                  metrics))
        (fun () ->
      match replay with
      | Some path ->
        let case =
          Mutls.Chaos.case_of_json (Mutls.Json.of_string (read_file path))
        in
        let r = Mutls.Chaos.run_case case in
        (match r.Mutls.Chaos.failure with
        | None ->
          Printf.printf "replay: case %d passed (%d fault(s) injected%s)\n"
            case.Mutls.Chaos.label
            (List.fold_left (fun a (_, n) -> a + n) 0 r.Mutls.Chaos.injected)
            (if r.Mutls.Chaos.degraded then ", degraded to sequential" else "");
          `Ok ()
        | Some f ->
          `Error
            ( false,
              Printf.sprintf "replay: case %d still fails: %s"
                case.Mutls.Chaos.label
                (Mutls.Chaos.failure_to_string f) ))
      | None ->
        let progress i n =
          if (not quiet) && (i mod 25 = 0 || i = n - 1) then
            Printf.eprintf "chaos: case %d/%d\n%!" i n
        in
        let c =
          Mutls.Chaos.run_campaign ~progress
            ~policy:(Mutls.Config.Policy.kind_of_string policy)
            ~seed ~runs ()
        in
        (match (c.Mutls.Chaos.failed, c.Mutls.Chaos.minimized) with
        | None, _ ->
          Printf.printf
            "chaos: %d/%d cases passed (seed %d, %d fault(s) injected, %d \
             degraded run(s))\n"
            c.Mutls.Chaos.passed c.Mutls.Chaos.requested seed
            c.Mutls.Chaos.injected_total c.Mutls.Chaos.degraded_runs;
          `Ok ()
        | Some (case0, r0), minimized ->
          let mcase, mr = Option.value minimized ~default:(case0, r0) in
          let oc = open_out out in
          output_string oc
            (Mutls.Json.to_string
               (Mutls.Chaos.repro_to_json ~campaign_seed:seed mcase mr)
            ^ "\n");
          close_out oc;
          let fdesc =
            match mr.Mutls.Chaos.failure with
            | Some f -> Mutls.Chaos.failure_to_string f
            | None -> "unknown failure"
          in
          `Error
            ( false,
              Printf.sprintf
                "chaos: case %d of seed %d failed after %d clean case(s): %s \
                 (minimized repro written to %s; re-run it with --replay)"
                case0.Mutls.Chaos.label seed c.Mutls.Chaos.passed fdesc out )))
    with
    | Mutls.Compile_error e -> `Error (false, "compile error: " ^ e)
    | Invalid_argument e -> `Error (false, e)
    | Sys_error e -> `Error (false, e)
    | Mutls.Json.Parse_error e -> `Error (false, "replay: not a repro file: " ^ e)
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Campaign seed; the same seed replays the identical campaign, \
                 faults and all.")
  in
  let runs_arg =
    Arg.(value & opt int 200 & info [ "runs" ] ~docv:"N"
           ~doc:"Number of randomized cases to run.")
  in
  let out_arg =
    Arg.(value & opt string "chaos-repro.json" & info [ "out" ] ~docv:"FILE"
           ~doc:"Where to write the minimized JSON repro when a case fails.")
  in
  let replay_arg =
    Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE"
           ~doc:"Re-run the single case stored in a repro file instead of \
                 running a campaign.")
  in
  let chaos_policy_arg =
    Arg.(value & opt string "static" & info [ "policy" ] ~docv:"POLICY"
           ~doc:"Speculation policy for every generated case: static, \
                 adaptive or hostile.  The case generator is untouched, so \
                 the same seed explores the same programs and fault \
                 schedules under the chosen policy.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress progress output.")
  in
  let info =
    Cmd.info "chaos"
      ~doc:"Randomized robustness campaign: random annotated programs crossed \
            with fault-injection schedules, CPU counts and shrunken buffers, \
            checking sequential equivalence and the trace-protocol oracle on \
            every case; failures shrink to a minimal JSON repro."
  in
  Cmd.v info
    Term.(
      ret
        (const chaos $ seed_arg $ runs_arg $ chaos_policy_arg $ out_arg
       $ replay_arg $ quiet_arg $ metrics_arg))

(* User-facing failures exit 1 (bad programs, runtime traps, unreadable
   or malformed inputs, failed chaos campaigns) and command-line misuse
   exits 2; anything escaping the per-command handlers becomes a
   one-line diagnostic rather than a raw OCaml backtrace. *)
let () =
  let info =
    Cmd.info "mutlsc" ~version:"1.0"
      ~doc:"Mixed-model universal software thread-level speculation"
  in
  let group =
    Cmd.group info
      [ run_cmd; dump_cmd; bench_cmd; report_cmd; profile_cmd; chaos_cmd;
        spans_cmd; top_cmd ]
  in
  let code =
    try Cmd.eval ~catch:false ~term_err:1 group with
    | Mutls.Compile_error e ->
      Printf.eprintf "mutlsc: compile error: %s\n%!" e;
      1
    | Mutls.Eval.Trap e ->
      Printf.eprintf "mutlsc: runtime trap: %s\n%!" e;
      1
    | Sys_error e | Invalid_argument e | Failure e ->
      Printf.eprintf "mutlsc: %s\n%!" e;
      1
    | e ->
      Printf.eprintf "mutlsc: internal error: %s\n%!" (Printexc.to_string e);
      125
  in
  exit (if code = Cmd.Exit.cli_error then 2 else code)
