(* Chaos harness: randomized robustness campaigns for the TLS runtime.

   Each case is a random annotated MiniC program crossed with a random
   fault schedule (Mutls_runtime.Fault), random CPU count and
   deliberately shrunken buffer capacities.  The case runs sequentially
   and under TLS with the invariant oracle (Mutls_obs.Oracle) attached
   as the trace sink, and fails if the outputs diverge, the oracle
   finds a protocol violation, or the runtime crashes.  Everything —
   program, schedule, engine interleaving — derives from one seed, so
   `mutlsc chaos --seed S` replays bit-identically, and a failing case
   shrinks greedily (zero fault sites, grow buffers back, halve the
   program) to a minimal repro that serialises to JSON for CI artifact
   upload and `mutlsc chaos --replay`. *)

module Rng = Mutls_sim.Rng
module Config = Mutls_runtime.Config
module Fault = Mutls_runtime.Fault
module Thread_manager = Mutls_runtime.Thread_manager
module Oracle = Mutls_obs.Oracle
module Json = Mutls_obs.Json
module Eval = Mutls_interp.Eval

(* --- random annotated programs --------------------------------------- *)

(* Small guarded-arithmetic expression language over v0..v3, as in the
   property tests but generated from our own SplitMix64 stream so the
   harness is seed-replayable without QCheck. *)
type e =
  | Lit of int
  | Var of int
  | Add of e * e
  | Sub of e * e
  | Mul of e * e
  | Div of e * e
  | Xor of e * e
  | Shl of e * e
  | Cmp of e * e
  | Tern of e * e * e

let rec pp_expr = function
  | Lit n -> string_of_int n
  | Var k -> Printf.sprintf "v%d" k
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (pp_expr a) (pp_expr b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (pp_expr a) (pp_expr b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (pp_expr a) (pp_expr b)
  | Div (a, b) ->
    (* denominator guarded against zero, exactly like the reference *)
    Printf.sprintf "(%s / (%s == 0 ? 7 : %s))" (pp_expr a) (pp_expr b)
      (pp_expr b)
  | Xor (a, b) -> Printf.sprintf "(%s ^ %s)" (pp_expr a) (pp_expr b)
  | Shl (a, b) -> Printf.sprintf "(%s << (%s & 7))" (pp_expr a) (pp_expr b)
  | Cmp (a, b) -> Printf.sprintf "(%s < %s)" (pp_expr a) (pp_expr b)
  | Tern (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (pp_expr c) (pp_expr a) (pp_expr b)

let rec gen_expr rng n =
  if n <= 0 then
    if Rng.next_int rng 2 = 0 then Lit (Rng.next_int rng 201 - 100)
    else Var (Rng.next_int rng 4)
  else
    let sub () = gen_expr rng (n / 2) in
    match Rng.next_int rng 9 with
    | 0 -> Add (sub (), sub ())
    | 1 -> Sub (sub (), sub ())
    | 2 -> Mul (sub (), sub ())
    | 3 -> Div (sub (), sub ())
    | 4 -> Xor (sub (), sub ())
    | 5 -> Shl (sub (), sub ())
    | 6 -> Cmp (sub (), sub ())
    | 7 -> Tern (sub (), sub (), sub ())
    | _ -> Mul (sub (), Lit (1 + Rng.next_int rng 9))

(* The program space: three templates covering the runtime's distinct
   speculation shapes.  [expr_seed]/[expr_size] regenerate the same
   random expression; [chunks]/[inner] size the work. *)
type shape = {
  template : int; (* 0 chain, 1 shared-accumulator conflicts, 2 tree *)
  expr_seed : int;
  expr_size : int;
  chunks : int;
  inner : int;
}

let n_templates = 4

let template_name = function
  | 0 -> "chain"
  | 1 -> "conflict"
  | 2 -> "tree"
  | _ -> "storm"

let source_of_shape s =
  let expr = pp_expr (gen_expr (Rng.create s.expr_seed) s.expr_size) in
  match s.template with
  | 0 ->
    (* independent chunks: the classic chained-speculation pattern,
       mostly commits unless faults are injected *)
    Printf.sprintf
      {|
int out[%d];
int main() {
  for (int c = 0; c < %d; c++) {
    __builtin_MUTLS_fork(0, mixed);
    int v0 = c; int v1 = c + 1; int v2 = c * 2; int v3 = 7 - c;
    int r = %s;
    for (int k = 0; k < %d; k++) r = r + k * c;
    out[c] = r;
    __builtin_MUTLS_join(0);
  }
  int t = 0;
  for (int c = 0; c < %d; c++) t = t + out[c] %% 100000;
  print_int(t);
  print_newline();
  return 0;
}
|}
      s.chunks s.chunks expr s.inner s.chunks
  | 1 ->
    (* read-modify-write of a shared accumulator across chunks: genuine
       cross-thread conflicts and rollbacks without any injection *)
    Printf.sprintf
      {|
int acc[4];
int out[%d];
int main() {
  for (int c = 0; c < %d; c++) {
    __builtin_MUTLS_fork(0, mixed);
    int v0 = c; int v1 = acc[c %% 4]; int v2 = c * 3; int v3 = 5 - c;
    int r = %s;
    for (int k = 0; k < %d; k++) r = r + k;
    acc[c %% 4] = acc[c %% 4] + (r %% 1000);
    out[c] = acc[c %% 4];
    __builtin_MUTLS_join(0);
  }
  int t = 0;
  for (int c = 0; c < %d; c++) t = t + out[c] %% 100000;
  print_int(t + acc[0] + acc[1] + acc[2] + acc[3]);
  print_newline();
  return 0;
}
|}
      s.chunks s.chunks expr s.inner s.chunks
  | 3 ->
    (* overflow-pressure storm: every chunk writes a skewed hot/cold
       mix over a working set far larger than the shrunken buffers —
       parks, spill-tier traffic and genuine Overflow rollbacks arise
       from capacity alone, no injection needed *)
    let size = 512 + (64 * s.chunks) in
    Printf.sprintf
      {|
int A[%d];
int N = %d;
int out[%d];
int main() {
  for (int c = 0; c < %d; c++) {
    __builtin_MUTLS_fork(0, mixed);
    int v0 = c; int v1 = c * 5; int v2 = 11 - c; int v3 = c + 2;
    int r = %s;
    for (int k = 0; k < %d; k++) {
      int idx = ((k %% 3 == 0) ? (k %% 8) : ((c * 97 + k * 31) %% N));
      A[idx] = A[idx] + (r %% 50) + k;
    }
    out[c] = A[c %% N] + A[c %% 8];
    __builtin_MUTLS_join(0);
  }
  int t = 0;
  for (int c = 0; c < %d; c++) t = t + out[c] %% 100000;
  for (int i = 0; i < 8; i++) t = t + A[i] %% 1000;
  print_int(t);
  print_newline();
  return 0;
}
|}
      size size s.chunks s.chunks expr
      (32 + (8 * s.inner))
      s.chunks
  | _ ->
    (* recursive divide and conquer: tree-form forking, stale-local
       validation at every join, NOSYNC cascades under injection *)
    let size = 8 + (2 * s.chunks) in
    Printf.sprintf
      {|
int A[%d];
int N = %d;
int sum(int lo, int n) {
  if (n <= 4) {
    int s = 0;
    for (int i = 0; i < n; i++) s = s + A[lo + i] * ((i & 3) + 1);
    return s;
  }
  int h = n / 2;
  int a = 0;
  __builtin_MUTLS_fork(0, mixed);
  a = sum(lo, h);
  __builtin_MUTLS_join(0);
  int b = sum(lo + h, n - h);
  return a + b;
}
int main() {
  for (int i = 0; i < N; i++) A[i] = (i * 7 + %d) %% 100;
  int v0 = 1; int v1 = 2; int v2 = 3; int v3 = 4;
  print_int(sum(0, N) + (%s) %% 1000);
  print_newline();
  return 0;
}
|}
      size size (s.inner + 1) expr

(* --- cases ------------------------------------------------------------ *)

type case = {
  label : int; (* index within its campaign, for reporting *)
  run_seed : int; (* Config.seed: engine + fault streams *)
  ncpus : int;
  buffer_slots : int;
  temp_slots : int;
  shards : int; (* GlobalBuffer shard count *)
  spill_slots : int; (* spill-tier capacity; 0 = seed-era behaviour *)
  line_words : int; (* validation/commit granularity (1 or 8) *)
  plan : Fault.plan;
  backoff : bool;
  degrade_after : int;
  policy : Config.Policy.kind;
  shape : shape;
}

let rates = [| 0.02; 0.1; 0.3; 1.0 |]

let gen_rate rng =
  if Rng.next_float rng < 0.5 then 0.0
  else rates.(Rng.next_int rng (Array.length rates))

(* Case [i] of campaign [seed]; the golden-ratio multiplier decorrelates
   neighbouring indices, as in Fault's per-site streams. *)
let gen_case ~seed i =
  let rng = Rng.create (seed + ((i + 1) * 0x9E3779B9)) in
  let pick a = a.(Rng.next_int rng (Array.length a)) in
  let base =
    {
      label = i;
      run_seed = Rng.next_int rng 0x3FFFFFFF;
      ncpus = 1 + Rng.next_int rng 8;
      buffer_slots = pick [| 256; 1024; 65536 |];
      temp_slots = pick [| 0; 2; 8; 64 |];
      (* Seed-era geometry; the memory-band draws below override. *)
      shards = 1;
      spill_slots = 0;
      line_words = 1;
      plan =
        {
          Fault.validation = gen_rate rng;
          overflow = gen_rate rng;
          spurious = gen_rate rng;
          nosync = gen_rate rng;
          deny = gen_rate rng;
          spill_exhaust = 0.0;
        };
      backoff = Rng.next_float rng < 0.5;
      degrade_after =
        (if Rng.next_float rng < 0.5 then 0 else 2 + Rng.next_int rng 6);
      (* Generated Static (no RNG draw, so pre-policy campaigns replay
         bit-identically); campaigns override post-generation. *)
      policy = Config.Policy.Static;
      shape =
        {
          (* Bound 3, not [n_templates]: the draw values for the three
             seed-era templates must not shift.  The storm template is
             chosen by a dedicated draw below. *)
          template = Rng.next_int rng 3;
          expr_seed = Rng.next_int rng 0x3FFFFFFF;
          expr_size = Rng.next_int rng 6;
          chunks = 4 + Rng.next_int rng 13;
          inner = Rng.next_int rng 24;
        };
    }
  in
  (* Memory-band draws come after every seed-era draw, so cases from
     campaigns recorded before the spill tier existed replay their
     programs and fault schedules bit-identically. *)
  let shards = pick [| 1; 1; 2; 4; 8 |] in
  let spill_slots = pick [| 0; 0; 16; 256 |] in
  let line_words = pick [| 1; 1; 1; 8 |] in
  let spill_exhaust = gen_rate rng in
  let storm = Rng.next_float rng < 0.25 in
  {
    base with
    shards;
    spill_slots;
    line_words;
    plan = { base.plan with Fault.spill_exhaust };
    shape =
      (if storm then { base.shape with template = 3 } else base.shape);
  }

(* --- running one case ------------------------------------------------- *)

type failure =
  | Output_mismatch
  | Oracle_violation of string (* rendered first violation *)
  | Crash of string

let failure_to_string = function
  | Output_mismatch -> "output mismatch"
  | Oracle_violation v -> "oracle violation: " ^ v
  | Crash e -> "crash: " ^ e

type run_result = {
  source : string;
  expected : string; (* sequential output *)
  actual : string; (* TLS output ("" after a crash) *)
  failure : failure option;
  injected : (string * int) list; (* per-site injected-fault counts *)
  degraded : bool; (* fell back to sequential execution *)
  threads : int; (* speculative threads retired *)
  committed : int;
}

(* Compile or sequential-run errors are harness bugs (the generator
   emitted a bad program), not runtime robustness findings: they
   propagate instead of being folded into [failure]. *)
let run_case (case : case) =
  let source = source_of_shape case.shape in
  let m = Mutls_minic.Codegen.compile source in
  let seq = Eval.run_sequential m in
  let transformed = Mutls_speculator.Pass.run m in
  let oracle = Oracle.create ~halt:false () in
  let cfg =
    {
      Config.default with
      ncpus = case.ncpus;
      buffer_slots = case.buffer_slots;
      temp_slots = case.temp_slots;
      buffers =
        {
          Config.Buffers.default with
          Config.Buffers.shards = case.shards;
          spill_slots = case.spill_slots;
          line_words = case.line_words;
        };
      seed = case.run_seed;
      fault = (if Fault.is_none case.plan then None else Some case.plan);
      backoff = case.backoff;
      degrade_after = case.degrade_after;
      (* Flat backoff/degrade_after stay in the deprecated fields so a
         Static case replays the pre-policy configuration exactly;
         [Config.effective_policy] folds them in. *)
      policy = { Config.Policy.default with Config.Policy.kind = case.policy };
      trace_sink = Oracle.sink oracle;
    }
  in
  match Eval.run_tls cfg transformed with
  | exception e ->
    {
      source;
      expected = seq.Eval.soutput;
      actual = "";
      failure = Some (Crash (Printexc.to_string e));
      injected = [];
      degraded = false;
      threads = 0;
      committed = 0;
    }
  | r ->
    Oracle.finish oracle;
    let violations = Oracle.violations oracle in
    let failure =
      if r.Eval.toutput <> seq.Eval.soutput then Some Output_mismatch
      else
        match violations with
        | [] -> None
        | v :: _ -> Some (Oracle_violation (Oracle.violation_to_string v))
    in
    {
      source;
      expected = seq.Eval.soutput;
      actual = r.Eval.toutput;
      failure;
      injected =
        (match Thread_manager.injector r.Eval.tmgr with
        | Some f -> Fault.injected_assoc f
        | None -> []);
      degraded = Thread_manager.degraded r.Eval.tmgr;
      threads = List.length r.Eval.tretired;
      committed =
        List.length
          (List.filter
             (fun t -> t.Thread_manager.r_committed)
             r.Eval.tretired);
    }

(* --- shrinking -------------------------------------------------------- *)

(* Greedy minimisation: apply each simplification and keep it while the
   case still fails.  Deterministic replay makes "still fails" a sound
   test.  Bounded by [budget] re-runs. *)
let shrink ?(budget = 64) case =
  let fails c = (run_case c).failure <> None in
  let candidates =
    [
      (fun c ->
        if c.plan.Fault.validation > 0.0 then
          Some { c with plan = { c.plan with Fault.validation = 0.0 } }
        else None);
      (fun c ->
        if c.plan.Fault.overflow > 0.0 then
          Some { c with plan = { c.plan with Fault.overflow = 0.0 } }
        else None);
      (fun c ->
        if c.plan.Fault.spurious > 0.0 then
          Some { c with plan = { c.plan with Fault.spurious = 0.0 } }
        else None);
      (fun c ->
        if c.plan.Fault.nosync > 0.0 then
          Some { c with plan = { c.plan with Fault.nosync = 0.0 } }
        else None);
      (fun c ->
        if c.plan.Fault.deny > 0.0 then
          Some { c with plan = { c.plan with Fault.deny = 0.0 } }
        else None);
      (fun c ->
        if c.plan.Fault.spill_exhaust > 0.0 then
          Some { c with plan = { c.plan with Fault.spill_exhaust = 0.0 } }
        else None);
      (fun c -> if c.shards > 1 then Some { c with shards = 1 } else None);
      (fun c ->
        if c.spill_slots > 0 then Some { c with spill_slots = 0 } else None);
      (fun c ->
        if c.line_words > 1 then Some { c with line_words = 1 } else None);
      (fun c -> if c.backoff then Some { c with backoff = false } else None);
      (fun c ->
        if c.degrade_after > 0 then Some { c with degrade_after = 0 }
        else None);
      (fun c ->
        if c.policy <> Config.Policy.Static then
          Some { c with policy = Config.Policy.Static }
        else None);
      (fun c ->
        if c.temp_slots < 64 then Some { c with temp_slots = 64 } else None);
      (fun c ->
        if c.buffer_slots < 65536 then Some { c with buffer_slots = 65536 }
        else None);
      (fun c ->
        if c.ncpus > 2 then Some { c with ncpus = max 2 (c.ncpus / 2) }
        else None);
      (fun c ->
        if c.shape.chunks > 2 then
          Some { c with shape = { c.shape with chunks = max 2 (c.shape.chunks / 2) } }
        else None);
      (fun c ->
        if c.shape.inner > 0 then
          Some { c with shape = { c.shape with inner = c.shape.inner / 2 } }
        else None);
      (fun c ->
        if c.shape.expr_size > 0 then
          Some { c with shape = { c.shape with expr_size = c.shape.expr_size / 2 } }
        else None);
    ]
  in
  let budget = ref budget in
  let cur = ref case in
  let improved = ref true in
  while !improved && !budget > 0 do
    improved := false;
    List.iter
      (fun cand ->
        if !budget > 0 then
          match cand !cur with
          | Some c ->
            decr budget;
            if fails c then begin
              cur := c;
              improved := true
            end
          | None -> ())
      candidates
  done;
  (!cur, run_case !cur)

(* --- JSON repro ------------------------------------------------------- *)

let plan_to_json (p : Fault.plan) =
  Json.Obj
    [
      ("validation", Json.Num p.Fault.validation);
      ("overflow", Json.Num p.Fault.overflow);
      ("spurious", Json.Num p.Fault.spurious);
      ("nosync", Json.Num p.Fault.nosync);
      ("deny", Json.Num p.Fault.deny);
      ("spill_exhaust", Json.Num p.Fault.spill_exhaust);
    ]

let case_to_json c =
  Json.Obj
    [
      ("label", Json.Num (float_of_int c.label));
      ("run_seed", Json.Num (float_of_int c.run_seed));
      ("ncpus", Json.Num (float_of_int c.ncpus));
      ("buffer_slots", Json.Num (float_of_int c.buffer_slots));
      ("temp_slots", Json.Num (float_of_int c.temp_slots));
      ("shards", Json.Num (float_of_int c.shards));
      ("spill_slots", Json.Num (float_of_int c.spill_slots));
      ("line_words", Json.Num (float_of_int c.line_words));
      ("plan", plan_to_json c.plan);
      ("backoff", Json.Bool c.backoff);
      ("degrade_after", Json.Num (float_of_int c.degrade_after));
      ("policy", Json.Str (Config.Policy.kind_to_string c.policy));
      ( "shape",
        Json.Obj
          [
            ("template", Json.Num (float_of_int c.shape.template));
            ("expr_seed", Json.Num (float_of_int c.shape.expr_seed));
            ("expr_size", Json.Num (float_of_int c.shape.expr_size));
            ("chunks", Json.Num (float_of_int c.shape.chunks));
            ("inner", Json.Num (float_of_int c.shape.inner));
          ] );
    ]

let bad field = invalid_arg (Printf.sprintf "Chaos.case_of_json: missing %s" field)

let get_int j field =
  match Option.bind (Json.member field j) Json.to_int with
  | Some v -> v
  | None -> bad field

let get_float j field =
  match Option.bind (Json.member field j) Json.to_float with
  | Some v -> v
  | None -> bad field

let get_bool j field =
  match Option.bind (Json.member field j) Json.to_bool with
  | Some v -> v
  | None -> bad field

(* absent in repro files recorded before the field existed *)
let get_int_default j field d =
  match Option.bind (Json.member field j) Json.to_int with
  | Some v -> v
  | None -> d

let get_float_default j field d =
  match Option.bind (Json.member field j) Json.to_float with
  | Some v -> v
  | None -> d

let case_of_json j =
  (* accept either a bare case object or a full repro file *)
  let j = match Json.member "case" j with Some c -> c | None -> j in
  let plan = match Json.member "plan" j with Some p -> p | None -> bad "plan" in
  let shape =
    match Json.member "shape" j with Some s -> s | None -> bad "shape"
  in
  {
    label = get_int j "label";
    run_seed = get_int j "run_seed";
    ncpus = get_int j "ncpus";
    buffer_slots = get_int j "buffer_slots";
    temp_slots = get_int j "temp_slots";
    (* pre-spill repro files carry no geometry: seed-era defaults *)
    shards = get_int_default j "shards" 1;
    spill_slots = get_int_default j "spill_slots" 0;
    line_words = get_int_default j "line_words" 1;
    plan =
      {
        Fault.validation = get_float plan "validation";
        overflow = get_float plan "overflow";
        spurious = get_float plan "spurious";
        nosync = get_float plan "nosync";
        deny = get_float plan "deny";
        spill_exhaust = get_float_default plan "spill_exhaust" 0.0;
      };
    backoff = get_bool j "backoff";
    degrade_after = get_int j "degrade_after";
    (* absent in pre-policy repro files *)
    policy =
      (match Option.bind (Json.member "policy" j) Json.to_str with
      | Some s -> Config.Policy.kind_of_string s
      | None -> Config.Policy.Static);
    shape =
      {
        template = get_int shape "template";
        expr_seed = get_int shape "expr_seed";
        expr_size = get_int shape "expr_size";
        chunks = get_int shape "chunks";
        inner = get_int shape "inner";
      };
  }

let repro_to_json ~campaign_seed case (r : run_result) =
  Json.Obj
    [
      ("campaign_seed", Json.Num (float_of_int campaign_seed));
      ("case", case_to_json case);
      ( "failure",
        match r.failure with
        | Some f -> Json.Str (failure_to_string f)
        | None -> Json.Null );
      ("expected", Json.Str r.expected);
      ("actual", Json.Str r.actual);
      ( "injected",
        Json.Obj
          (List.map
             (fun (s, n) -> (s, Json.Num (float_of_int n)))
             r.injected) );
      ("degraded", Json.Bool r.degraded);
      ("source", Json.Str r.source);
    ]

(* --- campaigns -------------------------------------------------------- *)

type campaign = {
  seed : int;
  requested : int;
  passed : int; (* cases run clean before the first failure (or all) *)
  injected_total : int; (* faults fired across the clean cases *)
  degraded_runs : int; (* clean cases that fell back to sequential *)
  failed : (case * run_result) option; (* first failure, as generated *)
  minimized : (case * run_result) option;
}

let run_campaign ?(progress = fun _ _ -> ()) ?policy ~seed ~runs () =
  let injected_total = ref 0 in
  let degraded_runs = ref 0 in
  let rec go i passed =
    if i >= runs then
      {
        seed;
        requested = runs;
        passed;
        injected_total = !injected_total;
        degraded_runs = !degraded_runs;
        failed = None;
        minimized = None;
      }
    else begin
      progress i runs;
      let case = gen_case ~seed i in
      let case =
        match policy with None -> case | Some k -> { case with policy = k }
      in
      let r = run_case case in
      injected_total :=
        !injected_total + List.fold_left (fun a (_, n) -> a + n) 0 r.injected;
      if r.degraded then incr degraded_runs;
      match r.failure with
      | None -> go (i + 1) (passed + 1)
      | Some _ ->
        let minimized = shrink case in
        {
          seed;
          requested = runs;
          passed;
          injected_total = !injected_total;
          degraded_runs = !degraded_runs;
          failed = Some (case, r);
          minimized = Some minimized;
        }
    end
  in
  go 0 0
