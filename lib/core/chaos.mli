(** Chaos harness: randomized robustness campaigns for the TLS runtime.

    A {!case} crosses a random annotated MiniC program (four templates:
    chained chunks, shared-accumulator conflicts, recursive tree, and
    an overflow-pressure storm) with a random {!Mutls_runtime.Fault}
    schedule, CPU count, deliberately shrunken buffer capacities, and a
    random memory geometry (shards, spill tier, line granularity).  {!run_case} executes it sequentially
    and under TLS with the {!Mutls_obs.Oracle} attached, failing on
    output divergence, protocol violation, or crash.  Everything
    derives from one seed, so campaigns replay bit-identically;
    failures {!shrink} to a minimal repro serialisable to JSON for CI
    artifacts and [mutlsc chaos --replay]. *)

(** {1 Programs} *)

type shape = {
  template : int;
      (** 0 chain, 1 shared-accumulator conflicts, 2 tree, 3
          overflow-pressure storm (working set far larger than the
          shrunken buffers, skewed hot/cold writes) *)
  expr_seed : int;  (** regenerates the same random expression *)
  expr_size : int;
  chunks : int;  (** speculation count / problem size *)
  inner : int;  (** inner-loop work per chunk *)
}

val n_templates : int
val template_name : int -> string

val source_of_shape : shape -> string
(** The deterministic MiniC source of a program shape. *)

(** {1 Cases} *)

type case = {
  label : int;  (** index within its campaign *)
  run_seed : int;  (** [Config.seed]: engine + fault streams *)
  ncpus : int;
  buffer_slots : int;
  temp_slots : int;
  shards : int;  (** GlobalBuffer shard count *)
  spill_slots : int;  (** spill-tier capacity; [0] = seed-era behaviour *)
  line_words : int;  (** validation/commit granularity (1 or 8) *)
  plan : Mutls_runtime.Fault.plan;
  backoff : bool;
  degrade_after : int;
  policy : Mutls_runtime.Config.Policy.kind;
      (** speculation policy (generated [Static]; campaigns override) *)
  shape : shape;
}

val gen_case : seed:int -> int -> case
(** Case [i] of campaign [seed]; pure function of both.  The generated
    [policy] is always [Static] — no RNG draw, so pre-policy campaigns
    replay bit-identically; use {!run_campaign}'s [?policy] to run a
    campaign under another policy kind.  The memory-band draws (shards,
    spill tier, line granularity, spill-exhaust rate, storm template)
    come after every seed-era draw, so the programs and fault schedules
    of pre-spill campaigns replay bit-identically too. *)

(** {1 Running} *)

type failure =
  | Output_mismatch
  | Oracle_violation of string  (** rendered first violation *)
  | Crash of string

val failure_to_string : failure -> string

type run_result = {
  source : string;
  expected : string;  (** sequential output *)
  actual : string;  (** TLS output ([""] after a crash) *)
  failure : failure option;
  injected : (string * int) list;  (** per-site injected-fault counts *)
  degraded : bool;  (** fell back to sequential execution *)
  threads : int;  (** speculative threads retired *)
  committed : int;
}

val run_case : case -> run_result
(** Compile and run one case both ways under the oracle.  Compile or
    sequential-run errors propagate (harness bugs, not findings). *)

val shrink : ?budget:int -> case -> case * run_result
(** Greedy minimisation of a failing case — zero fault sites, restore
    buffer capacities, halve the program — keeping each simplification
    only while the case still fails; at most [budget] (default 64)
    re-runs.  Returns the minimal case and its result. *)

(** {1 JSON repro} *)

val case_to_json : case -> Mutls_obs.Json.t
val case_of_json : Mutls_obs.Json.t -> case
(** Accepts a bare case object or a full repro file ([case] member).
    @raise Invalid_argument on missing fields. *)

val repro_to_json :
  campaign_seed:int -> case -> run_result -> Mutls_obs.Json.t
(** The CI artifact: campaign seed, minimal case, failure description,
    expected/actual outputs, injected counts, and the program source. *)

(** {1 Campaigns} *)

type campaign = {
  seed : int;
  requested : int;
  passed : int;  (** cases run clean before the first failure (or all) *)
  injected_total : int;  (** faults fired across the clean cases *)
  degraded_runs : int;  (** clean cases that fell back to sequential *)
  failed : (case * run_result) option;  (** first failure, as generated *)
  minimized : (case * run_result) option;
}

val run_campaign :
  ?progress:(int -> int -> unit) ->
  ?policy:Mutls_runtime.Config.Policy.kind ->
  seed:int ->
  runs:int ->
  unit ->
  campaign
(** Run cases [0..runs-1] of the campaign, stopping at (and shrinking)
    the first failure.  [progress i runs] is called before case [i].
    [policy] overrides every generated case's policy kind after
    generation (the RNG stream is untouched), so the same seed explores
    the same programs and fault schedules under a different speculation
    policy. *)
