(* Reproduction harness: one generator per table and figure of the
   paper's evaluation (§V).  Results are structured (so tests can
   assert on shapes) and printable (so `bench/main.exe` regenerates the
   paper's rows). *)

module Config = Mutls_runtime.Config
module Workloads = Mutls_workloads.Workloads
module Eval = Mutls_interp.Eval

(* CPU counts swept; the paper plots 1..64. *)
let default_cpus = [ 1; 2; 4; 8; 16; 24; 32; 48; 64 ]

type lang = C | Fortran

(* ------------------------------------------------------------------ *)
(* Cached compile/transform/run                                        *)
(* ------------------------------------------------------------------ *)

type prepared = {
  p_seq_cost : float;
  p_transformed : Mutls_mir.Ir.modul;
  p_prog : Eval.prog;  (* transformed module, compiled once for all runs *)
  p_seq_output : string;
}

let prepared_cache : (string * lang, prepared) Hashtbl.t = Hashtbl.create 32

let metrics_cache :
    ( string * lang * int * int * int * Config.Policy.t
      * Config.Buffers.t option,
      Metrics.t )
    Hashtbl.t =
  Hashtbl.create 256
(* key: name, lang, ncpus, model override (-1 none), rollback pct,
   policy and buffer geometry (immutable records of scalars, so
   structural hashing is sound) *)

let compile_of lang (w : Workloads.t) =
  match lang with
  | C -> Mutls_minic.Codegen.compile (w.Workloads.c_source ())
  | Fortran -> (
    match w.Workloads.fortran_source with
    | Some f -> Mutls_minifortran.Fcodegen.compile (f ())
    | None -> invalid_arg (w.Workloads.name ^ " has no Fortran version"))

let prepare lang (w : Workloads.t) =
  let key = (w.Workloads.name, lang) in
  match Hashtbl.find_opt prepared_cache key with
  | Some p -> p
  | None ->
    let m = compile_of lang w in
    let seq = Eval.run_sequential m in
    let transformed = Mutls_speculator.Pass.run m in
    let p =
      { p_seq_cost = seq.Eval.scost;
        p_transformed = transformed;
        p_prog = Eval.prepare transformed;
        p_seq_output = seq.Eval.soutput }
    in
    Hashtbl.replace prepared_cache key p;
    p

exception Divergence of string

(* Process-lifetime counters distinguishing metrics-cache hits from
   fresh executions, so the bench harness can flag sweep rows that
   merely re-read cached metrics (and would otherwise masquerade as
   free runs). *)
let run_requests = ref 0
let fresh_runs = ref 0
let run_counters () = (!run_requests, !fresh_runs)

(* The metrics cache makes figure sweeps that share configurations
   cheap, but a cached row reports no fresh timing — committed bench
   baselines want every row really executed ([bench/main.exe
   --no-cache]). *)
let cache_enabled = ref true
let set_cache_enabled b = cache_enabled := b

let clear_cache () =
  Hashtbl.reset metrics_cache;
  Hashtbl.reset prepared_cache

(* Run one benchmark under TLS and compute its metrics.  A run with an
   enabled trace sink (or a profile hook, which works by attaching a
   streaming Profile sink) bypasses the metrics cache: a cache hit
   would skip the execution and emit no events.  The same applies to
   [?telemetry] (a caller-scoped registry) and [?metrics] (a snapshot
   hook): both demand a real execution, so they bypass the cache too —
   a cached row would record nothing into the registry. *)
let run ?(lang = C) ?(model_override = None) ?(rollback = 0.0)
    ?(trace_sink = Mutls_obs.Trace.null) ?profile ?telemetry ?metrics
    ?(policy = Config.Policy.default) ?buffers ~ncpus (w : Workloads.t) =
  let prof_agg = Option.map (fun _ -> Mutls_obs.Profile.create ()) profile in
  let trace_sink =
    match prof_agg with
    | None -> trace_sink
    | Some agg ->
      Mutls_obs.Trace.tee [ trace_sink; Mutls_obs.Profile.sink agg ]
  in
  let telemetry =
    match (telemetry, metrics) with
    | Some reg, _ -> Some reg
    | None, Some _ -> Some (Mutls_obs.Telemetry.create ())
    | None, None -> None
  in
  incr run_requests;
  let use_cache =
    !cache_enabled
    && (not trace_sink.Mutls_obs.Trace.enabled)
    && Option.is_none telemetry
  in
  let mkey =
    ( w.Workloads.name,
      lang,
      ncpus,
      (match model_override with
      | None -> -1
      | Some m -> Config.model_to_int m),
      int_of_float (rollback *. 100.0),
      policy,
      buffers )
  in
  match (if use_cache then Hashtbl.find_opt metrics_cache mkey else None) with
  | Some m -> m
  | None ->
    incr fresh_runs;
    let p = prepare lang w in
    let cfg =
      { Config.default with
        ncpus;
        model_override;
        rollback_probability = rollback;
        trace_sink;
        policy }
    in
    let cfg =
      match telemetry with
      | Some reg -> { cfg with Config.telemetry = reg }
      | None -> cfg
    in
    let cfg =
      match buffers with
      | Some b -> { cfg with Config.buffers = b }
      | None -> cfg
    in
    let r = Eval.run_tls_prepared cfg p.p_prog in
    if rollback = 0.0 && r.Eval.toutput <> p.p_seq_output then
      raise
        (Divergence
           (Printf.sprintf "%s/%s@%d: %S <> %S" w.Workloads.name
              (match lang with C -> "C" | Fortran -> "F")
              ncpus r.Eval.toutput p.p_seq_output));
    if rollback > 0.0 && r.Eval.toutput <> p.p_seq_output then
      raise
        (Divergence
           (Printf.sprintf "%s rollback-injected run diverged" w.Workloads.name));
    let m = Metrics.compute ~ts:p.p_seq_cost r in
    if use_cache then Hashtbl.replace metrics_cache mkey m;
    (match (profile, prof_agg) with
    | Some f, Some agg -> f (Mutls_obs.Profile.finish agg)
    | _ -> ());
    (match (metrics, telemetry) with
    | Some f, Some reg -> f (Mutls_obs.Telemetry.snapshot reg)
    | _ -> ());
    m

(* Run one benchmark on the domains backend (Mutls_par.Sched) and
   return the wall-clock seconds from scheduler start to main's
   completion.  Never cached: the point is a real timing and an oracle
   check, both of which demand an actual execution.  The oracle is the
   sequential output, which the simulator path is continuously checked
   against — so equality here is equality with the simulator too. *)
let run_par ?(lang = C) ?(policy = Config.Policy.default) ~domains ~ncpus
    (w : Workloads.t) =
  let p = prepare lang w in
  let cfg = { Config.default with ncpus; domains; policy } in
  let r = Eval.run_tls_par_prepared cfg p.p_prog in
  if r.Eval.toutput <> p.p_seq_output then
    raise
      (Divergence
         (Printf.sprintf "%s@%d domains: domains backend diverged: %S <> %S"
            w.Workloads.name domains r.Eval.toutput p.p_seq_output));
  r.Eval.tfinish

(* ------------------------------------------------------------------ *)
(* Tables                                                              *)
(* ------------------------------------------------------------------ *)

let table1 () =
  [
    ("Jrpm [4]", "hardware", "Java", "in-order", "loop iteration");
    ("SPT [7]", "hardware", "C", "in-order", "loop iteration");
    ("STAMPede [17]", "hardware", "C", "in-order", "loop iteration");
    ("Mitosis [16]", "hardware", "C", "mixed (linear)", "arbitrary");
    ("POSH [9]", "hardware", "C", "mixed (linear)", "nested structure");
    ("SableSpMT [12]", "software", "Java", "out-of-order", "method call");
    ("Safe futures [19]", "software", "Java", "mixed (linear)", "method call");
    ("BOP [6]", "software", "C", "in-order", "arbitrary");
    ("SpLSC/SpLIP [10,11]", "software", "C++", "in-order", "loop iteration");
    ("MUTLS", "software", "arbitrary", "mixed (tree)", "arbitrary");
  ]

let table2 () =
  List.map
    (fun (w : Workloads.t) ->
      ( w.Workloads.name,
        w.Workloads.description,
        w.Workloads.amount,
        Workloads.pattern_to_string w.Workloads.pattern,
        (match w.Workloads.fortran_source with
        | Some _ -> "C/Fortran"
        | None -> "C"),
        Workloads.class_to_string w.Workloads.wclass ))
    Workloads.all

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

type series = { label : string; points : (int * float) list }

let sweep ?(cpus = default_cpus) ?(lang = C) ?(model_override = None)
    ?(rollback = 0.0) metric (w : Workloads.t) =
  List.map
    (fun n -> (n, metric (run ~lang ~model_override ~rollback ~ncpus:n w)))
    cpus

(* Fig. 3: speedup of computation-intensive applications, C and
   Fortran. *)
let fig3 ?cpus () =
  List.concat_map
    (fun (w : Workloads.t) ->
      let c =
        { label = w.Workloads.name ^ " c";
          points = sweep ?cpus (fun m -> m.Metrics.speedup) w }
      in
      match w.Workloads.fortran_source with
      | Some _ ->
        [ c;
          { label = w.Workloads.name ^ " fortran";
            points = sweep ?cpus ~lang:Fortran (fun m -> m.Metrics.speedup) w } ]
      | None -> [ c ])
    Workloads.compute_intensive

(* Fig. 4: speedup of memory-intensive applications. *)
let fig4 ?cpus () =
  List.map
    (fun (w : Workloads.t) ->
      { label = w.Workloads.name;
        points = sweep ?cpus (fun m -> m.Metrics.speedup) w })
    Workloads.memory_intensive

(* Figs. 5-7: efficiency metrics across all benchmarks. *)
let efficiency_fig ?cpus metric =
  List.map
    (fun (w : Workloads.t) ->
      { label = w.Workloads.name; points = sweep ?cpus metric w })
    Workloads.all

let fig5 ?cpus () = efficiency_fig ?cpus (fun m -> m.Metrics.crit_efficiency)
let fig6 ?cpus () = efficiency_fig ?cpus (fun m -> m.Metrics.spec_efficiency)
let fig7 ?cpus () = efficiency_fig ?cpus (fun m -> m.Metrics.power_efficiency)

(* Parallel execution coverage (§V-B). *)
let coverage ?(ncpus = 64) () =
  List.map
    (fun (w : Workloads.t) ->
      (w.Workloads.name, (run ~ncpus w).Metrics.coverage))
    Workloads.all

(* Fig. 8: critical path breakdown for fft and md. *)
let fig8 ?(cpus = default_cpus) () =
  List.map
    (fun name ->
      let w = Workloads.find name in
      ( name,
        List.map (fun n -> (n, (run ~ncpus:n w).Metrics.crit_breakdown)) cpus ))
    [ "fft"; "md" ]

(* Fig. 9: speculative path breakdown for fft and matmult. *)
let fig9 ?(cpus = default_cpus) () =
  List.map
    (fun name ->
      let w = Workloads.find name in
      ( name,
        List.map (fun n -> (n, (run ~ncpus:n w).Metrics.spec_breakdown)) cpus ))
    [ "fft"; "matmult" ]

(* Fig. 10: in-order and out-of-order forking models on the tree-form
   recursion benchmarks, normalised to the mixed model. *)
let fig10 ?(cpus = default_cpus) () =
  List.concat_map
    (fun name ->
      let w = Workloads.find name in
      let normalised model =
        List.map
          (fun n ->
            let mixed = (run ~ncpus:n w).Metrics.speedup in
            let other =
              (run ~model_override:(Some model) ~ncpus:n w).Metrics.speedup
            in
            (n, if mixed > 0.0 then other /. mixed else 1.0))
          cpus
      in
      [ { label = name ^ " inorder"; points = normalised Config.In_order };
        { label = name ^ " outoforder";
          points = normalised Config.Out_of_order } ])
    [ "fft"; "matmult"; "nqueen"; "tsp" ]

(* Fig. 11: rollback sensitivity — relative slowdown when validation is
   made to fail with a given probability. *)
let fig11 ?(ncpus = 32) ?(probabilities = [ 0.01; 0.05; 0.10; 0.20; 0.50; 1.0 ])
    () =
  List.map
    (fun name ->
      let w = Workloads.find name in
      let base = (run ~ncpus w).Metrics.speedup in
      ( name,
        List.map
          (fun p ->
            let s = (run ~rollback:p ~ncpus w).Metrics.speedup in
            (p, if base > 0.0 then s /. base else 1.0))
          probabilities ))
    [ "mandelbrot"; "md"; "fft"; "matmult"; "nqueen"; "tsp"; "bh" ]

(* Policy-vs-static (fig-style, beyond the paper): end-to-end virtual
   time of the whole mixed-payoff suite under each member of the
   static policy family and under the adaptive engine.  Lower is
   better; the adaptive engine's acceptance bar is to be <= every
   static total at every CPU count. *)

let policy_family : (string * Config.Policy.t) list =
  [
    ("static", Config.Policy.static ());
    ("static+backoff", Config.Policy.static ~backoff:true ());
    ("static+backoff+degrade",
     Config.Policy.static ~backoff:true ~degrade_after:4 ());
    ("adaptive", Config.Policy.adaptive ());
  ]

let suite_time ?(suite = Workloads.mixed_payoff) ~policy ~ncpus () =
  List.fold_left (fun acc w -> acc +. (run ~policy ~ncpus w).Metrics.tn) 0.0
    suite

let fig_policy ?(cpus = [ 2; 4; 8; 16 ]) ?(suite = Workloads.mixed_payoff) () =
  List.map
    (fun (label, policy) ->
      { label;
        points =
          List.map (fun n -> (n, suite_time ~suite ~policy ~ncpus:n ())) cpus })
    policy_family

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let print_series ~title ~ylabel (series : series list) =
  Printf.printf "\n== %s ==\n" title;
  let cpus =
    match series with [] -> [] | s :: _ -> List.map fst s.points
  in
  Printf.printf "%-22s %s\n" (ylabel ^ " \\ CPUs")
    (String.concat " " (List.map (Printf.sprintf "%6d") cpus));
  List.iter
    (fun s ->
      Printf.printf "%-22s %s\n" s.label
        (String.concat " "
           (List.map (fun (_, v) -> Printf.sprintf "%6.2f" v) s.points)))
    series

let print_breakdowns ~title (rows : (string * (int * Metrics.breakdown) list) list)
    =
  Printf.printf "\n== %s ==\n" title;
  List.iter
    (fun (bench, per_cpu) ->
      Printf.printf "-- %s --\n" bench;
      (match per_cpu with
      | (_, bd) :: _ ->
        Printf.printf "%6s %s\n" "CPUs"
          (String.concat " "
             (List.map (fun (c, _) -> Printf.sprintf "%11s" c) bd))
      | [] -> ());
      List.iter
        (fun (n, bd) ->
          Printf.printf "%6d %s\n" n
            (String.concat " "
               (List.map (fun (_, v) -> Printf.sprintf "%10.1f%%" (100. *. v)) bd)))
        per_cpu)
    rows
