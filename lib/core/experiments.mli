(** Reproduction harness: one generator per table and figure of the
    paper's evaluation (§V).  Results are structured (tests assert on
    shapes) and printable ([bench/main.exe] regenerates the paper's
    rows).  Compilation, transformation and runs are cached, so sweeps
    that share configurations are cheap. *)

type lang = C | Fortran

val default_cpus : int list
(** The CPU counts swept (the paper plots 1..64). *)

exception Divergence of string
(** A TLS run's program output differed from the sequential run's. *)

val run :
  ?lang:lang ->
  ?model_override:Mutls_runtime.Config.model option ->
  ?rollback:float ->
  ?trace_sink:Mutls_obs.Trace.sink ->
  ?profile:(Mutls_obs.Profile.t -> unit) ->
  ?telemetry:Mutls_obs.Telemetry.t ->
  ?metrics:(Mutls_obs.Telemetry.snapshot -> unit) ->
  ?policy:Mutls_runtime.Config.Policy.t ->
  ?buffers:Mutls_runtime.Config.Buffers.t ->
  ncpus:int ->
  Mutls_workloads.Workloads.t ->
  Metrics.t
(** Run one benchmark under TLS (cached) and compute its metrics.
    Passing an enabled [trace_sink] bypasses the cache so the run
    really executes and emits events.  [profile] attaches a streaming
    {!Mutls_obs.Profile} sink for the duration of the run and receives
    the finished profile — the hook figure sweeps use to emit
    per-benchmark profiles (it also bypasses the cache).  [telemetry]
    scopes the run's always-on metrics to a caller-supplied registry
    instead of [Telemetry.default]; [metrics] receives a snapshot of
    that registry when the run finishes (supplying either bypasses the
    cache — a cached row executes nothing and would record nothing).
    [policy] selects the speculation policy (default: static, matching
    the paper figures); it participates in the metrics-cache key.
    [buffers] overrides the speculative-buffer geometry (sharding,
    spill tier, line granularity); it also participates in the cache
    key, so sweeps comparing geometries stay sound.
    @raise Divergence if outputs mismatch. *)

(** [run_counters ()] is [(requests, fresh)]: how many times {!run}
    was called this process, and how many of those actually executed
    (the rest were metrics-cache hits).  The bench harness diffs the
    fresh count around an artifact to flag rows that only re-read
    cached metrics. *)
val run_counters : unit -> int * int

val set_cache_enabled : bool -> unit
(** Turn the metrics cache off (or back on).  [bench/main.exe
    --no-cache] disables it so every committed baseline row reports a
    really-executed timing. *)

val clear_cache : unit -> unit
(** Drop every cached compilation and metric. *)

val run_par :
  ?lang:lang ->
  ?policy:Mutls_runtime.Config.Policy.t ->
  domains:int ->
  ncpus:int ->
  Mutls_workloads.Workloads.t ->
  float
(** Run one benchmark on the OCaml 5 domains backend
    ([Mutls_par.Sched]) with [ncpus] virtual CPUs spread over [domains]
    domains, and return wall-clock seconds from scheduler start to
    completion.  Never cached.
    @raise Divergence if the output differs from the sequential oracle. *)

(** {1 Tables} *)

val table1 : unit -> (string * string * string * string * string) list
(** (system, hardware/software, language, forking model, region). *)

val table2 :
  unit -> (string * string * string * string * string * string) list
(** (name, description, paper data amount, pattern, language, class). *)

(** {1 Figures} *)

type series = { label : string; points : (int * float) list }

val fig3 : ?cpus:int list -> unit -> series list
(** Speedup, computation-intensive applications, C and Fortran. *)

val fig4 : ?cpus:int list -> unit -> series list
(** Speedup, memory-intensive applications. *)

val fig5 : ?cpus:int list -> unit -> series list
(** Critical path efficiency, all benchmarks. *)

val fig6 : ?cpus:int list -> unit -> series list
(** Speculative path efficiency. *)

val fig7 : ?cpus:int list -> unit -> series list
(** Power efficiency. *)

val coverage : ?ncpus:int -> unit -> (string * float) list
(** Parallel execution coverage C (§V-B; paper: 23.1-60.7). *)

val fig8 : ?cpus:int list -> unit -> (string * (int * Metrics.breakdown) list) list
(** Critical path breakdown for fft and md. *)

val fig9 : ?cpus:int list -> unit -> (string * (int * Metrics.breakdown) list) list
(** Speculative path breakdown for fft and matmult. *)

val fig10 : ?cpus:int list -> unit -> series list
(** In-order and out-of-order speedups on the tree-form recursion
    benchmarks, normalised to the mixed model. *)

val fig11 :
  ?ncpus:int -> ?probabilities:float list -> unit -> (string * (float * float) list) list
(** Rollback sensitivity: relative slowdown under injected validation
    failures. *)

(** {1 Policy-vs-static (beyond the paper)} *)

val policy_family : (string * Mutls_runtime.Config.Policy.t) list
(** The compared policies: the static family (plain, +backoff,
    +backoff+degrade) and the adaptive engine. *)

val suite_time :
  ?suite:Mutls_workloads.Workloads.t list ->
  policy:Mutls_runtime.Config.Policy.t ->
  ncpus:int ->
  unit ->
  float
(** Summed end-to-end virtual time ([Metrics.tn]) of the suite
    (default {!Mutls_workloads.Workloads.mixed_payoff}) under one
    policy. *)

val fig_policy :
  ?cpus:int list ->
  ?suite:Mutls_workloads.Workloads.t list ->
  unit ->
  series list
(** One series per {!policy_family} member: total suite virtual time
    per CPU count (lower is better).  The adaptive engine's acceptance
    bar is to be at or below every static series pointwise. *)

(** {1 Rendering} *)

val print_series : title:string -> ylabel:string -> series list -> unit
val print_breakdowns :
  title:string -> (string * (int * Metrics.breakdown) list) list -> unit
