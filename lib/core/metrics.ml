(* Metrics from §V of the paper.

   - absolute speedup          Ts / TN
   - critical path efficiency  ηcrit  = Twork_nonsp / Truntime_nonsp
   - speculative path eff.     ηsp    = ΣTwork_sp / ΣTruntime_sp
   - power efficiency          ηpower = Ts / (Truntime_nonsp + ΣTruntime_sp)
   - parallel coverage         C      = ΣTruntime_sp / Truntime_nonsp
   plus the critical/speculative path breakdowns of Figures 8 and 9.

   Naming note (DESIGN.md § Telemetry): this module is the paper-§V
   figure arithmetic computed from a *finished* run.  The always-on
   runtime metrics registry — counters, gauges, histograms sampled
   *during* a run — is Mutls_obs.Telemetry (re-exported as
   Mutls.Telemetry).  Keep the names distinct; don't merge them. *)

module Stats = Mutls_runtime.Stats
module Eval = Mutls_interp.Eval
module TM = Mutls_runtime.Thread_manager

type breakdown = (string * float) list (* category -> fraction of runtime *)

type t = {
  ts : float;
  tn : float;
  speedup : float;
  crit_efficiency : float;
  spec_efficiency : float;
  power_efficiency : float;
  coverage : float;
  crit_breakdown : breakdown;
  spec_breakdown : breakdown;
  commits : int;
  rollbacks : int;
  forks : int;
  rollback_rate : float; (* rollbacks / (commits + rollbacks) *)
}

let fraction total v = if total <= 0.0 then 0.0 else v /. total

(* Critical path categories (Figure 8): work, join, idle, fork, find
   CPU.  Residual unaccounted time is reported as idle. *)
let crit_breakdown_of (stats : Stats.t) runtime =
  let get c = Stats.get stats c in
  let work = get Stats.Work in
  let join =
    get Stats.Join +. get Stats.Validation +. get Stats.Commit
    +. get Stats.Finalize
  in
  let fork = get Stats.Fork in
  let find = get Stats.Find_cpu in
  let idle = get Stats.Idle +. Float.max 0.0 (runtime -. (work +. join +. fork +. find +. get Stats.Idle)) in
  [
    ("work", fraction runtime work);
    ("join", fraction runtime join);
    ("idle", fraction runtime idle);
    ("fork", fraction runtime fork);
    ("find CPU", fraction runtime find);
  ]

(* Speculative path categories (Figure 9). *)
let spec_breakdown_of (merged : Stats.t) total_runtime =
  let get c = Stats.get merged c in
  let work = get Stats.Work in
  let wasted = get Stats.Wasted_work in
  let finalize = get Stats.Finalize in
  let commit = get Stats.Commit in
  let validation = get Stats.Validation in
  let overflow = get Stats.Overflow in
  let fork = get Stats.Fork in
  let find = get Stats.Find_cpu in
  let accounted =
    work +. wasted +. finalize +. commit +. validation +. overflow +. fork
    +. find +. get Stats.Idle +. get Stats.Join
  in
  let idle =
    get Stats.Idle +. get Stats.Join
    +. Float.max 0.0 (total_runtime -. accounted)
  in
  [
    ("work", fraction total_runtime work);
    ("wasted work", fraction total_runtime wasted);
    ("finalize", fraction total_runtime finalize);
    ("commit", fraction total_runtime commit);
    ("validation", fraction total_runtime validation);
    ("overflow", fraction total_runtime overflow);
    ("idle", fraction total_runtime idle);
    ("fork", fraction total_runtime fork);
    ("find CPU", fraction total_runtime find);
  ]

let compute ~ts (r : Eval.tls_result) =
  let tn = r.Eval.tfinish in
  let main = r.Eval.tmain_stats in
  let retired = r.Eval.tretired in
  let spec_runtime =
    List.fold_left (fun acc t -> acc +. t.TM.r_runtime) 0.0 retired
  in
  let merged = Stats.create () in
  List.iter (fun t -> Stats.merge ~into:merged t.TM.r_stats) retired;
  let spec_work = Stats.get merged Stats.Work in
  let commits =
    List.length (List.filter (fun t -> t.TM.r_committed) retired)
  in
  let rollbacks = List.length retired - commits in
  let forks = Stats.count main Stats.Forks + Stats.count merged Stats.Forks in
  {
    ts;
    tn;
    speedup = (if tn > 0.0 then ts /. tn else 1.0);
    crit_efficiency = fraction tn (Stats.get main Stats.Work);
    spec_efficiency = fraction spec_runtime spec_work;
    power_efficiency = fraction (tn +. spec_runtime) ts;
    coverage = fraction tn spec_runtime;
    crit_breakdown = crit_breakdown_of main tn;
    spec_breakdown = spec_breakdown_of merged spec_runtime;
    commits;
    rollbacks;
    forks;
    rollback_rate =
      (if commits + rollbacks = 0 then 0.0
       else float_of_int rollbacks /. float_of_int (commits + rollbacks));
  }

let pp fmt (m : t) =
  Format.fprintf fmt
    "speedup %.2f (Ts=%.0f TN=%.0f)  ηcrit=%.2f ηsp=%.2f ηpower=%.2f C=%.1f  \
     commits=%d rollbacks=%d"
    m.speedup m.ts m.tn m.crit_efficiency m.spec_efficiency m.power_efficiency
    m.coverage m.commits m.rollbacks
