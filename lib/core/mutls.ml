(* Top-level MUTLS API: compile a source program (MiniC or
   MiniFortran), run the speculator pass, and execute sequentially or
   under thread-level speculation on N virtual CPUs. *)

module Ir = Mutls_mir.Ir
module Printer = Mutls_mir.Printer
module Verify = Mutls_mir.Verify
module Config = Mutls_runtime.Config
module Policy = Mutls_runtime.Policy
module Stats = Mutls_runtime.Stats
module Json = Mutls_obs.Json
module Trace = Mutls_obs.Trace
module Report = Mutls_obs.Report
module Profile = Mutls_obs.Profile
(* Naming note (see DESIGN.md § Telemetry): [Metrics] below is the
   paper-§V figure arithmetic computed from a finished run; [Telemetry]
   is the always-on runtime metrics registry (counters/gauges/
   histograms).  Distinct names on purpose — don't merge them. *)
module Telemetry = Mutls_obs.Telemetry
module Spans = Mutls_obs.Spans
module Pass = Mutls_speculator.Pass
module Eval = Mutls_interp.Eval
module Workloads = Mutls_workloads.Workloads
module Opt = Mutls_mir.Opt
module Metrics = Metrics
module Experiments = Experiments
module Ablations = Ablations
module Auto_annotate = Mutls_speculator.Auto_annotate
module Fault = Mutls_runtime.Fault
module Oracle = Mutls_obs.Oracle
module Chaos = Chaos

type language = C | Fortran

let language_to_string = function C -> "C" | Fortran -> "Fortran"

exception Compile_error of string

(* Compile source text to a verified MIR module. *)
let compile ?(optimize = false) lang source =
  let m =
    match lang with
    | C -> (
      try Mutls_minic.Codegen.compile source with
      | Mutls_minic.Lexer.Error e | Mutls_minic.Parser.Error e
      | Mutls_minic.Codegen.Error e ->
        raise (Compile_error e))
    | Fortran -> (
      try Mutls_minifortran.Fcodegen.compile source with
      | Mutls_minifortran.Fparser.Error e | Mutls_minifortran.Fcodegen.Error e ->
        raise (Compile_error e))
  in
  if optimize then Mutls_mir.Opt.run_module m;
  m

(* Apply the speculator transformation pass (paper §IV). *)
let speculate ?opts m = Pass.run ?opts m

(* Sequential baseline run: Ts in virtual cycles. *)
let run_sequential = Eval.run_sequential

(* TLS run of a transformed module. *)
let run_tls = Eval.run_tls

(* TLS run on the OCaml 5 domains backend ([cfg.domains] domains). *)
let run_tls_par = Eval.run_tls_par

(* Convenience: compile, transform, and run both ways. *)
type execution = {
  seq : Eval.seq_result;
  tls : Eval.tls_result;
  metrics : Metrics.t;
}

let execute ?(cfg = Config.default) ?optimize lang source =
  let m = compile ?optimize lang source in
  let seq = run_sequential ~cost:cfg.Config.cost m in
  let transformed = speculate m in
  let tls = run_tls cfg transformed in
  if seq.Eval.soutput <> tls.Eval.toutput then
    invalid_arg
      (Printf.sprintf
         "Mutls.execute: TLS output diverged from sequential (%S vs %S)"
         seq.Eval.soutput tls.Eval.toutput);
  { seq; tls; metrics = Metrics.compute ~ts:seq.Eval.scost tls }
