(** MUTLS: Mixed-model Universal software Thread-Level Speculation — an
    OCaml implementation of Cao & Verbrugge, ICPP 2013.

    Typical use:

    {[
      let m           = Mutls.compile Mutls.C source in
      let transformed = Mutls.speculate m in
      let result      = Mutls.run_tls { Mutls.Config.default with ncpus = 16 } transformed
    ]}

    or in one step, with paper-§V metrics and an output-equivalence
    check: {!execute}. *)

(** {1 Re-exported subsystems} *)

module Ir = Mutls_mir.Ir
module Printer = Mutls_mir.Printer
module Verify = Mutls_mir.Verify
module Config = Mutls_runtime.Config
module Policy = Mutls_runtime.Policy
module Stats = Mutls_runtime.Stats

module Json = Mutls_obs.Json
module Trace = Mutls_obs.Trace
(** Typed event tracing: select a sink via [Config.trace_sink]. *)

module Report = Mutls_obs.Report
(** Fold a trace back into the paper's Fig. 8/9 breakdowns. *)

module Profile = Mutls_obs.Profile
(** Speculation profiler: per-fork-point payoff, conflict hot-address
    histograms, per-rank utilization, and a no-speculate advisor. *)

module Telemetry = Mutls_obs.Telemetry
(** Always-on metrics registry (counters/gauges/histograms) the
    runtime records into; scope via [Config.telemetry].  Not to be
    confused with {!Metrics}, the paper-§V figure arithmetic computed
    from a finished run — see DESIGN.md § Telemetry. *)

module Spans = Mutls_obs.Spans
(** Causal span timelines folded from a trace: one span per thread,
    fork/join causality edges, and the critical path through the
    speculation DAG ([mutlsc spans]). *)

module Pass = Mutls_speculator.Pass
module Eval = Mutls_interp.Eval
module Workloads = Mutls_workloads.Workloads
module Opt = Mutls_mir.Opt
module Metrics = Metrics
module Experiments = Experiments
module Ablations = Ablations
module Auto_annotate = Mutls_speculator.Auto_annotate

module Fault = Mutls_runtime.Fault
(** Deterministic fault injection at the runtime's failure sites;
    enable via [Config.fault]. *)

module Oracle = Mutls_obs.Oracle
(** Online invariant checker over the trace stream; attach via
    [Config.trace_sink]. *)

module Chaos = Chaos
(** Randomized robustness campaigns: random programs x fault schedules
    x CPU counts, seeded and shrinkable ([mutlsc chaos]). *)

(** {1 Compilation} *)

type language = C | Fortran

val language_to_string : language -> string

exception Compile_error of string

val compile : ?optimize:bool -> language -> string -> Ir.modul
(** Compile source text to a verified MIR module; [optimize] runs the
    classic scalar passes ({!Opt}) before returning.
    @raise Compile_error with a line-numbered message. *)

val speculate : ?opts:Pass.options -> Ir.modul -> Ir.modul
(** Apply the speculator transformation pass (paper §IV); the input
    module is untouched. *)

(** {1 Execution} *)

val run_sequential :
  ?cost:Config.cost -> ?heap_size:int -> ?globals_size:int -> Ir.modul ->
  Eval.seq_result

val run_tls :
  ?heap_size:int ->
  ?globals_size:int ->
  ?policy:Policy.t ->
  Config.t ->
  Ir.modul ->
  Eval.tls_result

val run_tls_par :
  ?heap_size:int ->
  ?globals_size:int ->
  ?policy:Policy.t ->
  Config.t ->
  Ir.modul ->
  Eval.tls_result
(** Run on the work-stealing OCaml 5 domains backend with
    [cfg.domains] domains instead of the deterministic simulator;
    [tfinish] is wall-clock seconds.  See {!Eval.run_tls_par}. *)

type execution = {
  seq : Eval.seq_result;
  tls : Eval.tls_result;
  metrics : Metrics.t;
}

val execute : ?cfg:Config.t -> ?optimize:bool -> language -> string -> execution
(** Compile, transform, run both ways, and verify that the TLS output
    equals the sequential output.
    @raise Invalid_argument on divergence (a runtime bug). *)
