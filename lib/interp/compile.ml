(* The compiled MIR execution engine: prepare once, run many.

   [compile] lowers each [Ir.func] into dense arrays — blocks indexed
   by int instead of name, operands pre-resolved into slot closures
   (const / reg / arg / cached global address), phi nodes lowered to
   per-predecessor-edge parallel move lists, branch targets resolved to
   block ids with switches lowered to a sorted array searched by
   binary search, and callees classified once at compile time
   (interning the MUTLS_* runtime-call names into [Ir.runtime_fn]).

   Cost accounting is batched per straight-line segment: the per-op
   tick amounts are pre-materialized in a float array, and the runtime
   either commits the whole segment in one accumulator write (when
   replaying the additions never reaches the quantum — see
   [Thread_manager.tick_batch]) or falls back to per-op ticks
   interleaved with execution exactly like the reference interpreter.
   Either way the sequence of float additions, flushes, scheduler
   yields and Charge trace events is identical to the reference
   engine's, which is what keeps figures numerically identical and
   same-seed traces byte-identical (see DESIGN.md, "Execution
   engine").

   Semantic-parity ground rules, to stay observably equivalent to
   [Reference] (the retained tree-walker):
   - scalar semantics come from [Ops], shared by both engines;
   - anything malformed that the reference only rejects when executed
     (unknown callee, void load, missing phi edge, unknown branch
     target) compiles to a closure that traps when executed, never at
     compile time;
   - pure computation (operand evaluation) may move relative to ticks,
     but every effect — memory access, buffer output, runtime call —
     stays after all of its op's ticks, as in the reference. *)

open Mutls_mir
open Mutls_runtime
open Value

(* --- compiled representation ----------------------------------------- *)

type mode =
  | Seq of seq_state
  | Tls of Thread_manager.t * Thread_data.t

and seq_state = { mutable seq_cost : float }

type prog = {
  modul : Ir.modul;
  cost : Config.cost;
  cfuncs : cfunc array;
  func_ids : (string, int) Hashtbl.t; (* name -> index; last binding wins *)
  nglobals : int; (* interned global names, for the address cache *)
}

and cfunc = {
  cf_name : string;
  cf_nregs : int;
  cf_ntmp : int; (* phi-move scratch size *)
  cf_entry : edge option; (* entry-block phi handling (malformed IR) *)
  cf_blocks : cblock array;
}

and cblock = { items : item array; cterm : cterm }

(* A block body is a sequence of straight-line segments (batchable)
   separated by calls (which tick through the normal per-call path and
   may yield, trap, or recurse). *)
and item = Iseg of seg | Icall of (frame -> unit)

and seg = {
  ops : (frame -> unit) array;
  ticks : float array; (* every tick of the segment, in reference order *)
  counts : int array; (* ticks per op; trailing ticks belong to no op *)
}

and cterm =
  | Tbr of edge
  | Tcbr of (frame -> v) * edge * edge
  | Tswitch of (frame -> v) * int64 array * edge array * edge
  | Tret of (frame -> v) option
  | Tunreachable of string

(* Taking an edge performs the target's phi moves (parallel: sources
   all read before destinations are written).  [Etrap] replicates the
   reference's behaviour on a missing incoming entry: earlier phi
   sources still evaluate (they may trap first), then the trap. *)
and edge =
  | Eok of { tgt : int; dsts : int array; srcs : (frame -> v) array }
  | Etrap of { pre : (frame -> v) array; msg : string }

and frame = { ec : ectx; regs : v array; args : v array; tmp : v array }

and ectx = {
  prog : prog;
  mem : Memory.t;
  mode : mode;
  out : Buffer.t;
  gaddrs : v option array; (* lazily cached global addresses *)
  mutable sp : int;
  mutable stack_limit : int;
}

(* Speculation stub operand, resolved at compile time; name resolution
   failures trap inside the child fiber, as in the reference. *)
type stub =
  | Sok of int
  | Sunknown of string
  | Sbadop
  | Snth

(* --- runtime helpers -------------------------------------------------- *)

let etick ec c =
  match ec.mode with
  | Seq s -> s.seq_cost <- s.seq_cost +. c
  | Tls (mgr, td) -> Thread_manager.tick mgr td c

let emgr_td ec =
  match ec.mode with
  | Tls (mgr, td) -> (mgr, td)
  | Seq _ -> Ops.trap "TLS runtime call in sequential mode"

let take_edge fr e =
  match e with
  | Eok { tgt; dsts; srcs } ->
    let n = Array.length dsts in
    if n > 0 then begin
      let tmp = fr.tmp in
      for i = 0 to n - 1 do
        Array.unsafe_set tmp i ((Array.unsafe_get srcs i) fr)
      done;
      for i = 0 to n - 1 do
        fr.regs.(Array.unsafe_get dsts i) <- Array.unsafe_get tmp i
      done
    end;
    tgt
  | Etrap { pre; msg } ->
    Array.iter (fun s -> ignore (s fr)) pre;
    raise (Ops.Trap msg)

let run_seg ec fr (s : seg) =
  let nticks = Array.length s.ticks in
  let ops = s.ops in
  let nops = Array.length ops in
  match ec.mode with
  | Seq st ->
    (* no quantum in sequential mode: replay the same additions in the
       same order, commit once *)
    let acc = ref st.seq_cost in
    for i = 0 to nticks - 1 do
      acc := !acc +. Array.unsafe_get s.ticks i
    done;
    st.seq_cost <- !acc;
    for i = 0 to nops - 1 do
      (Array.unsafe_get ops i) fr
    done
  | Tls (mgr, td) ->
    if Thread_manager.tick_batch mgr td s.ticks nticks then
      for i = 0 to nops - 1 do
        (Array.unsafe_get ops i) fr
      done
    else begin
      (* a flush lands inside this segment: interleave per-op ticks
         with execution exactly like the reference *)
      let ti = ref 0 in
      for i = 0 to nops - 1 do
        for _ = 1 to Array.unsafe_get s.counts i do
          Thread_manager.tick mgr td (Array.unsafe_get s.ticks !ti);
          incr ti
        done;
        (Array.unsafe_get ops i) fr
      done;
      while !ti < nticks do
        Thread_manager.tick mgr td (Array.unsafe_get s.ticks !ti);
        incr ti
      done
    end

let rec bsearch (keys : int64 array) edges default x lo hi =
  if lo >= hi then default
  else
    let mid = (lo + hi) / 2 in
    let c = Int64.compare x (Array.unsafe_get keys mid) in
    if c = 0 then Array.unsafe_get edges mid
    else if c < 0 then bsearch keys edges default x lo mid
    else bsearch keys edges default x (mid + 1) hi

(* --- the execution loop ----------------------------------------------- *)

(* Not self-recursive: recursion happens dynamically through call
   closures built by [compile_func] below. *)
let exec_cfunc (ec : ectx) (cf : cfunc) (args : v array) : v option =
  let fr =
    { ec;
      regs = Array.make cf.cf_nregs (VI 0L);
      args;
      tmp = Array.make cf.cf_ntmp (VI 0L) }
  in
  let sp0 = ec.sp in
  (match cf.cf_entry with Some e -> ignore (take_edge fr e) | None -> ());
  let blocks = cf.cf_blocks in
  let cur = ref 0 in
  let result = ref None in
  let running = ref true in
  while !running do
    let b = Array.unsafe_get blocks !cur in
    let items = b.items in
    for i = 0 to Array.length items - 1 do
      match Array.unsafe_get items i with
      | Iseg s -> run_seg ec fr s
      | Icall f -> f fr
    done;
    match b.cterm with
    | Tbr e -> cur := take_edge fr e
    | Tcbr (c, e1, e2) ->
      cur := take_edge fr (if to_bool (c fr) then e1 else e2)
    | Tswitch (vs, keys, edges, default) ->
      let x = to_i64 (vs fr) in
      cur := take_edge fr (bsearch keys edges default x 0 (Array.length keys))
    | Tret s ->
      result := (match s with Some f -> Some (f fr) | None -> None);
      running := false
    | Tunreachable msg -> raise (Ops.Trap msg)
  done;
  ec.sp <- sp0;
  !result

let find_cfunc prog name =
  match Hashtbl.find_opt prog.func_ids name with
  | Some id -> prog.cfuncs.(id)
  | None -> Ops.trap "call to unknown function @%s" name

(* Body of a freshly speculated thread: a new context on the child's
   stack slot, executing the stub function. *)
let run_speculative (parent_ec : ectx) (child : Thread_data.t) stub =
  let mgr, _ = emgr_td parent_ec in
  let base, limit = Memory.stack_slot parent_ec.mem child.Thread_data.rank in
  Local_buffer.set_stack_range child.Thread_data.lbuf ~base ~limit;
  let ec =
    { parent_ec with
      mode = Tls (mgr, child);
      sp = base;
      stack_limit = limit }
  in
  let cf =
    match stub with
    | Sok id -> ec.prog.cfuncs.(id)
    | Sunknown name -> Ops.trap "call to unknown function @%s" name
    | Sbadop | Snth -> assert false (* raised in the parent *)
  in
  ignore (exec_cfunc ec cf [| of_int child.Thread_data.rank |])

(* --- compilation ------------------------------------------------------ *)

type cstate = {
  st_func_ids : (string, int) Hashtbl.t;
  st_globals : (string, int) Hashtbl.t;
  mutable st_nglobals : int;
}

let global_id st g =
  match Hashtbl.find_opt st.st_globals g with
  | Some i -> i
  | None ->
    let i = st.st_nglobals in
    st.st_nglobals <- i + 1;
    Hashtbl.add st.st_globals g i;
    i

(* Operand -> slot closure.  Globals resolve through a per-run cache;
   the first use still goes through [Memory.symbol] so an unknown name
   fails at the same use site as in the reference. *)
let slot st (v : Ir.value) : frame -> v =
  match v with
  | Ir.Const c ->
    let k = of_const c in
    fun _ -> k
  | Ir.Reg r -> fun fr -> fr.regs.(r)
  | Ir.Arg i -> fun fr -> fr.args.(i)
  | Ir.Global g ->
    let gi = global_id st g in
    fun fr -> (
      match Array.unsafe_get fr.ec.gaddrs gi with
      | Some x -> x
      | None ->
        let x = VI (Int64.of_int (Memory.symbol fr.ec.mem g)) in
        fr.ec.gaddrs.(gi) <- Some x;
        x)
  | Ir.Funcref _ -> fun _ -> Ops.trap "function reference in value position"

(* [List.nth] in the reference raises [Failure] at run time on a short
   operand list; replicate that in the slot. *)
let nth_slot st operands n : frame -> v =
  match List.nth_opt operands n with
  | Some v -> slot st v
  | None -> fun _ -> raise (Failure "nth")

let int_of v = Int64.to_int (to_i64 v)

(* Evaluate every operand, left to right, like the reference's
   [List.map eval_v operands]. *)
let evals (slots : (frame -> v) array) fr =
  Array.to_list (Array.map (fun s -> s fr) slots)

(* --- runtime-call lowering -------------------------------------------- *)

(* One closure per call site, mirroring [Reference.exec_runtime_call]:
   mode check first, then arguments, then the Thread_manager entry.
   Runtime calls charge their own model costs — no instr tick. *)
let compile_runtime st fn (operands : Ir.value list) dst : frame -> unit =
  let s n = nth_slot st operands n in
  let put fr v = if dst >= 0 then fr.regs.(dst) <- v in
  match (fn : Ir.runtime_fn) with
  | Ir.Rt_get_cpu ->
    let s0 = s 0 and s1 = s 1 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      let model = Config.model_of_int (int_of (s0 fr)) in
      put fr
        (of_int (Thread_manager.get_cpu mgr td ~model ~point:(int_of (s1 fr))))
  | Ir.Rt_set_fork_reg ->
    let s0 = s 0 and s1 = s 1 and s2 = s 2 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.set_fork_reg mgr td ~rank:(int_of (s0 fr))
        ~off:(int_of (s1 fr))
        (to_runtime (s2 fr))
  | Ir.Rt_set_fork_addr ->
    let s0 = s 0 and s1 = s 1 and s2 = s 2 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.set_fork_addr mgr td ~rank:(int_of (s0 fr))
        ~off:(int_of (s1 fr))
        (int_of (s2 fr))
  | Ir.Rt_validate_local ->
    let s0 = s 0 and s1 = s 1 and s2 = s 2 and s3 = s 3 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.validate_local mgr td ~rank:(int_of (s0 fr))
        ~point:(int_of (s1 fr)) ~off:(int_of (s2 fr))
        (to_runtime (s3 fr))
  | Ir.Rt_speculate ->
    let s0 = s 0 and s1 = s 1 in
    let stub =
      match List.nth_opt operands 2 with
      | Some (Ir.Funcref f) -> (
        match Hashtbl.find_opt st.st_func_ids f with
        | Some id -> Sok id
        | None -> Sunknown f)
      | Some _ -> Sbadop
      | None -> Snth
    in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      let rank = int_of (s0 fr) and counter = int_of (s1 fr) in
      (match stub with
      | Sok _ | Sunknown _ -> ()
      | Sbadop -> Ops.trap "MUTLS_speculate: expected a function reference"
      | Snth -> raise (Failure "nth"));
      Thread_manager.speculate mgr td ~rank ~counter (fun child ->
          run_speculative fr.ec child stub)
  | Ir.Rt_entry_counter ->
    fun fr ->
      let _, td = emgr_td fr.ec in
      put fr (of_int td.Thread_data.entry_counter)
  | Ir.Rt_get_fork_reg ->
    let s0 = s 0 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      put fr (of_runtime (Thread_manager.get_fork_reg mgr td ~off:(int_of (s0 fr))))
  | Ir.Rt_pick_stackaddr ->
    let s0 = s 0 and s1 = s 1 and s2 = s 2 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      put fr
        (of_int
           (Thread_manager.pick_stackaddr mgr td ~counter:(int_of (s0 fr))
              ~off:(int_of (s1 fr)) ~own_addr:(int_of (s2 fr))))
  | Ir.Rt_load size ->
    let s0 = s 0 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      put fr (VI (Thread_manager.spec_load mgr td ~addr:(int_of (s0 fr)) ~size))
  | Ir.Rt_load_f64 ->
    let s0 = s 0 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      put fr
        (VF
           (Int64.float_of_bits
              (Thread_manager.spec_load mgr td ~addr:(int_of (s0 fr)) ~size:8)))
  | Ir.Rt_store size ->
    let s0 = s 0 and s1 = s 1 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.spec_store mgr td ~addr:(int_of (s1 fr)) ~size
        (to_i64 (s0 fr))
  | Ir.Rt_store_f64 ->
    let s0 = s 0 and s1 = s 1 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.spec_store mgr td ~addr:(int_of (s1 fr)) ~size:8
        (Int64.bits_of_float (to_f64 (s0 fr)))
  | Ir.Rt_save_regvar ->
    let s0 = s 0 and s1 = s 1 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.save_regvar mgr td ~off:(int_of (s0 fr)) (to_runtime (s1 fr))
  | Ir.Rt_save_stackvar ->
    let s0 = s 0 and s1 = s 1 and s2 = s 2 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.save_stackvar mgr td ~off:(int_of (s0 fr))
        ~addr:(int_of (s1 fr)) ~size:(int_of (s2 fr))
  | Ir.Rt_check_point ->
    let s0 = s 0 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      put fr (of_bool (Thread_manager.check_point mgr td ~counter:(int_of (s0 fr))))
  | Ir.Rt_commit ->
    let s0 = s 0 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.commit mgr td ~counter:(int_of (s0 fr))
  | Ir.Rt_terminate_point ->
    let s0 = s 0 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.terminate_point mgr td ~counter:(int_of (s0 fr))
  | Ir.Rt_barrier_point ->
    let s0 = s 0 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.barrier_point mgr td ~counter:(int_of (s0 fr))
  | Ir.Rt_return_point ->
    let s0 = s 0 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.return_point mgr td ~counter:(int_of (s0 fr))
  | Ir.Rt_enter_point ->
    let s0 = s 0 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.enter_point mgr td ~counter:(int_of (s0 fr))
  | Ir.Rt_ptr_int_cast ->
    let s0 = s 0 and s1 = s 1 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.ptr_int_cast mgr td ~counter:(int_of (s0 fr)) (int_of (s1 fr))
  | Ir.Rt_synchronize ->
    let s0 = s 0 and s1 = s 1 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      put fr
        (of_bool
           (Thread_manager.synchronize mgr td ~point:(int_of (s0 fr))
              ~rank:(int_of (s1 fr))))
  | Ir.Rt_sync_counter ->
    fun fr ->
      let _, td = emgr_td fr.ec in
      put fr (of_int td.Thread_data.last_sync_counter)
  | Ir.Rt_sync_rank ->
    fun fr ->
      let _, td = emgr_td fr.ec in
      put fr (of_int td.Thread_data.last_sync_rank)
  | Ir.Rt_sync_entry ->
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      put fr (of_int (Thread_manager.sync_entry mgr td))
  | Ir.Rt_bad_sync ->
    let s0 = s 0 in
    fun fr ->
      let _, td = emgr_td fr.ec in
      Ops.trap "synchronization counter %d has no restore target (rank %d)"
        (int_of (s0 fr)) td.Thread_data.rank
  | Ir.Rt_restore_regvar is_ptr ->
    let s0 = s 0 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      put fr
        (of_runtime
           (Thread_manager.restore_regvar mgr td ~off:(int_of (s0 fr)) ~is_ptr))
  | Ir.Rt_restore_stackvar ->
    let s0 = s 0 and s1 = s 1 and s2 = s 2 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.restore_stackvar mgr td ~off:(int_of (s0 fr))
        ~addr:(int_of (s1 fr)) ~size:(int_of (s2 fr))

(* --- call lowering (internal / extern / builtin) ---------------------- *)

(* Reference order for an internal call: instr tick, call tick,
   arguments, callee.  For an extern: instr tick, arguments, call
   tick, action. *)
let compile_call st (cost : Config.cost) name (operands : Ir.value list) dst :
    frame -> unit =
  let ci = cost.Config.instr and cc = cost.Config.call in
  let slots = Array.of_list (List.map (slot st) operands) in
  match Hashtbl.find_opt st.st_func_ids name with
  | Some callee_id ->
    fun fr ->
      let ec = fr.ec in
      etick ec ci;
      etick ec cc;
      let n = Array.length slots in
      let args = Array.make n (VI 0L) in
      for k = 0 to n - 1 do
        Array.unsafe_set args k ((Array.unsafe_get slots k) fr)
      done;
      (match exec_cfunc ec (Array.unsafe_get ec.prog.cfuncs callee_id) args with
      | Some v -> if dst >= 0 then fr.regs.(dst) <- v
      | None -> ())
  | None -> (
    match name with
    | "print_int" ->
      fun fr ->
        let ec = fr.ec in
        etick ec ci;
        let args = evals slots fr in
        etick ec cc;
        Buffer.add_string ec.out (Int64.to_string (to_i64 (List.hd args)))
    | "print_float" ->
      fun fr ->
        let ec = fr.ec in
        etick ec ci;
        let args = evals slots fr in
        etick ec cc;
        Buffer.add_string ec.out (Printf.sprintf "%.6g" (to_f64 (List.hd args)))
    | "print_char" ->
      fun fr ->
        let ec = fr.ec in
        etick ec ci;
        let args = evals slots fr in
        etick ec cc;
        Buffer.add_char ec.out
          (Char.chr (Int64.to_int (to_i64 (List.hd args)) land 0xff))
    | "print_newline" ->
      fun fr ->
        let ec = fr.ec in
        etick ec ci;
        let args = evals slots fr in
        etick ec cc;
        ignore args;
        Buffer.add_char ec.out '\n'
    | "malloc" ->
      fun fr ->
        let ec = fr.ec in
        etick ec ci;
        let args = evals slots fr in
        etick ec cc;
        let size = Int64.to_int (to_i64 (List.hd args)) in
        let addr = Memory.malloc ec.mem size in
        (match ec.mode with
        | Tls (mgr, _) ->
          Thread_manager.register_range mgr addr (Memory.align8 (max 8 size))
        | Seq _ -> ());
        if dst >= 0 then fr.regs.(dst) <- VI (Int64.of_int addr)
    | "free" ->
      fun fr ->
        let ec = fr.ec in
        etick ec ci;
        let args = evals slots fr in
        etick ec cc;
        let addr = to_addr (List.hd args) in
        (match Memory.free ec.mem addr with
        | Some size -> (
          match ec.mode with
          | Tls (mgr, _) -> Thread_manager.unregister_range mgr addr size
          | Seq _ -> ())
        | None -> ())
    | _ -> (
      match Externs.lookup name with
      | Some f ->
        fun fr ->
          let ec = fr.ec in
          etick ec ci;
          let args = evals slots fr in
          etick ec cc;
          (match f args with
          | Some (Externs.Ret v) -> if dst >= 0 then fr.regs.(dst) <- v
          | Some Externs.Ret_void -> ()
          | None -> Ops.trap "call to unknown extern @%s" name)
      | None ->
        fun fr ->
          let ec = fr.ec in
          etick ec ci;
          let args = evals slots fr in
          etick ec cc;
          ignore args;
          Ops.trap "call to unknown extern @%s" name))

(* --- instruction lowering --------------------------------------------- *)

let compile_op st fname (i : Ir.instr) : frame -> unit =
  let d = i.Ir.id in
  match i.Ir.kind with
  | Ir.Binop (op, ty, a, b) ->
    let f = Ops.binop_fn op ty and sa = slot st a and sb = slot st b in
    fun fr -> fr.regs.(d) <- f (sa fr) (sb fr)
  | Ir.Icmp (op, ty, a, b) ->
    let f = Ops.icmp_fn op ty and sa = slot st a and sb = slot st b in
    fun fr -> fr.regs.(d) <- f (sa fr) (sb fr)
  | Ir.Fcmp (op, a, b) ->
    let f = Ops.fcmp_fn op and sa = slot st a and sb = slot st b in
    fun fr -> fr.regs.(d) <- f (sa fr) (sb fr)
  | Ir.Alloca size ->
    let asize = Memory.align8 size in
    fun fr ->
      let ec = fr.ec in
      let addr = Memory.align8 ec.sp in
      if addr + size > ec.stack_limit then Ops.trap "stack overflow in @%s" fname;
      ec.sp <- addr + asize;
      fr.regs.(d) <- VI (Int64.of_int addr)
  | Ir.Load (ty, a) -> (
    let sa = slot st a in
    match ty with
    | Ir.I64 | Ir.Ptr ->
      fun fr -> fr.regs.(d) <- VI (Memory.read_i64 fr.ec.mem (to_addr (sa fr)))
    | Ir.F64 ->
      fun fr -> fr.regs.(d) <- VF (Memory.read_f64 fr.ec.mem (to_addr (sa fr)))
    | Ir.I32 ->
      fun fr -> fr.regs.(d) <- VI (Memory.read_i32 fr.ec.mem (to_addr (sa fr)))
    | Ir.I8 | Ir.I1 ->
      fun fr -> fr.regs.(d) <- VI (Memory.read_i8 fr.ec.mem (to_addr (sa fr)))
    | Ir.Void -> fun _ -> Ops.trap "load void")
  | Ir.Store (ty, v, a) -> (
    (* the stored value evaluates before the address, as in the
       reference's right-to-left argument evaluation *)
    let sv = slot st v and sa = slot st a in
    match ty with
    | Ir.I64 | Ir.Ptr ->
      fun fr ->
        let x = to_i64 (sv fr) in
        Memory.write_i64 fr.ec.mem (to_addr (sa fr)) x
    | Ir.F64 ->
      fun fr ->
        let x = to_f64 (sv fr) in
        Memory.write_f64 fr.ec.mem (to_addr (sa fr)) x
    | Ir.I32 ->
      fun fr ->
        let x = to_i64 (sv fr) in
        Memory.write_i32 fr.ec.mem (to_addr (sa fr)) x
    | Ir.I8 | Ir.I1 ->
      fun fr ->
        let x = to_i64 (sv fr) in
        Memory.write_i8 fr.ec.mem (to_addr (sa fr)) x
    | Ir.Void -> fun _ -> Ops.trap "store void")
  | Ir.Ptradd (a, o) ->
    let sa = slot st a and so = slot st o in
    fun fr -> fr.regs.(d) <- VI (Int64.add (to_i64 (sa fr)) (to_i64 (so fr)))
  | Ir.Select (c, a, b) ->
    let sc = slot st c and sa = slot st a and sb = slot st b in
    fun fr -> fr.regs.(d) <- (if to_bool (sc fr) then sa fr else sb fr)
  | Ir.Cast (c, t1, t2, v) ->
    let f = Ops.cast_fn c t1 t2 and sv = slot st v in
    fun fr -> fr.regs.(d) <- f (sv fr)
  | Ir.Call _ -> assert false (* handled by the block compiler *)

(* --- function lowering ------------------------------------------------ *)

let compile_func st (cost : Config.cost) (f : Ir.func) : cfunc =
  let barr = Ir.block_array f in
  let bidx = Ir.block_index_map f in
  let ntmp = ref 0 in
  let compile_edge_to pred_name ti =
    let tb = barr.(ti) in
    match tb.Ir.phis with
    | [] -> Eok { tgt = ti; dsts = [||]; srcs = [||] }
    | phis ->
      let rec build dsts srcs = function
        | [] ->
          let srcs = Array.of_list (List.rev srcs) in
          ntmp := max !ntmp (Array.length srcs);
          Eok { tgt = ti; dsts = Array.of_list (List.rev dsts); srcs }
        | (p : Ir.phi) :: rest -> (
          match List.assoc_opt pred_name p.Ir.incoming with
          | Some v -> build (p.Ir.pid :: dsts) (slot st v :: srcs) rest
          | None ->
            Etrap
              { pre = Array.of_list (List.rev srcs);
                msg =
                  Printf.sprintf "phi in %s has no incoming for %s" tb.Ir.bname
                    pred_name })
      in
      build [] [] phis
  in
  let compile_edge pred_name tname =
    match Hashtbl.find_opt bidx tname with
    | Some ti -> compile_edge_to pred_name ti
    | None ->
      Etrap
        { pre = [||];
          msg = Printf.sprintf "unknown block %s in @%s" tname f.Ir.fname }
  in
  let compile_block (b : Ir.block) : cblock =
    let items_rev = ref [] in
    let ops_rev = ref [] and nops = ref 0 in
    let ticks_rev = ref [] and nticks = ref 0 in
    let counts_rev = ref [] in
    let push_tick c =
      ticks_rev := c :: !ticks_rev;
      incr nticks
    in
    let add_op op ticks =
      List.iter push_tick ticks;
      ops_rev := op :: !ops_rev;
      incr nops;
      counts_rev := List.length ticks :: !counts_rev
    in
    let flush_seg () =
      if !nops > 0 || !nticks > 0 then begin
        items_rev :=
          Iseg
            { ops = Array.of_list (List.rev !ops_rev);
              ticks = Array.of_list (List.rev !ticks_rev);
              counts = Array.of_list (List.rev !counts_rev) }
          :: !items_rev;
        ops_rev := [];
        nops := 0;
        ticks_rev := [];
        nticks := 0;
        counts_rev := []
      end
    in
    List.iter
      (fun (i : Ir.instr) ->
        match i.Ir.kind with
        | Ir.Call (name, operands) -> (
          match Ir.classify_callee name with
          | Ir.Runtime fn ->
            flush_seg ();
            let dst = if i.Ir.ity <> Ir.Void then i.Ir.id else -1 in
            items_rev := Icall (compile_runtime st fn operands dst) :: !items_rev
          | Ir.Runtime_unknown ->
            flush_seg ();
            items_rev :=
              Icall
                (fun fr ->
                  let _ = emgr_td fr.ec in
                  Ops.trap "unknown runtime call @%s" name)
              :: !items_rev
          | Ir.Intrinsic ->
            (* sequential no-op, but it costs one instr tick *)
            add_op (fun _ -> ()) [ cost.Config.instr ]
          | Ir.Other ->
            flush_seg ();
            let dst = if i.Ir.ity <> Ir.Void then i.Ir.id else -1 in
            items_rev :=
              Icall (compile_call st cost name operands dst) :: !items_rev)
        | Ir.Load _ | Ir.Store _ ->
          add_op (compile_op st f.Ir.fname i)
            [ cost.Config.instr; cost.Config.mem ]
        | _ -> add_op (compile_op st f.Ir.fname i) [ cost.Config.instr ])
      b.Ir.insts;
    (* the terminator's tick is the segment's trailing tick *)
    push_tick cost.Config.instr;
    flush_seg ();
    let cterm =
      match b.Ir.term with
      | Ir.Ret v -> Tret (Option.map (slot st) v)
      | Ir.Br l -> Tbr (compile_edge b.Ir.bname l)
      | Ir.Cbr (c, l1, l2) ->
        Tcbr (slot st c, compile_edge b.Ir.bname l1, compile_edge b.Ir.bname l2)
      | Ir.Switch (v, d, cases) ->
        (* first-match semantics of [List.assoc_opt]: deduplicate
           keeping the first binding, then sort for binary search *)
        let seen = Hashtbl.create 16 in
        let uniq =
          List.filter
            (fun (k, _) ->
              if Hashtbl.mem seen k then false
              else begin
                Hashtbl.add seen k ();
                true
              end)
            cases
        in
        let arr = Array.of_list uniq in
        Array.sort (fun (a, _) (b, _) -> Int64.compare a b) arr;
        Tswitch
          ( slot st v,
            Array.map fst arr,
            Array.map (fun (_, l) -> compile_edge b.Ir.bname l) arr,
            compile_edge b.Ir.bname d )
      | Ir.Unreachable ->
        Tunreachable
          (Printf.sprintf "unreachable executed in @%s/%s" f.Ir.fname b.Ir.bname)
    in
    { items = Array.of_list (List.rev !items_rev); cterm }
  in
  let cf_blocks = Array.map compile_block barr in
  (* the reference runs the entry block's phis against the empty
     predecessor label; only malformed IR has entry phis *)
  let cf_entry =
    if Array.length barr > 0 && barr.(0).Ir.phis <> [] then
      Some (compile_edge_to "" 0)
    else None
  in
  { cf_name = f.Ir.fname;
    cf_nregs = max 1 f.Ir.next_reg;
    cf_ntmp = !ntmp;
    cf_entry;
    cf_blocks }

let compile ?(cost = Config.default_cost) (modul : Ir.modul) : prog =
  let st =
    { st_func_ids = Hashtbl.create 32;
      st_globals = Hashtbl.create 32;
      st_nglobals = 0 }
  in
  (* ids first: bodies resolve callees against the final table, and a
     duplicate name resolves to its last binding (as with hash-based
     name lookup in the reference) *)
  List.iteri
    (fun i (f : Ir.func) -> Hashtbl.replace st.st_func_ids f.Ir.fname i)
    modul.Ir.funcs;
  let cfuncs =
    Array.of_list (List.map (compile_func st cost) modul.Ir.funcs)
  in
  { modul; cost; cfuncs; func_ids = st.st_func_ids; nglobals = st.st_nglobals }

(* --- running a compiled program --------------------------------------- *)

let cost_of prog = prog.cost
let modul_of prog = prog.modul
let nglobals prog = prog.nglobals

let make_ectx prog ~mem ~mode ~out ~sp ~stack_limit =
  { prog;
    mem;
    mode;
    out;
    gaddrs = Array.make (max 1 prog.nglobals) None;
    sp;
    stack_limit }

let call ec name (args : v array) = exec_cfunc ec (find_cfunc ec.prog name) args
