(* The compiled MIR execution engine: prepare once, run many.

   [compile] lowers each [Ir.func] into dense arrays — blocks indexed
   by int instead of name, operands pre-resolved into slot closures
   (const / reg / arg / cached global address), phi nodes lowered to
   per-predecessor-edge parallel move lists, branch targets resolved to
   block ids with switches lowered to a sorted array searched by
   binary search, and callees classified once at compile time
   (interning the MUTLS_* runtime-call names into [Ir.runtime_fn]).

   Cost accounting is batched per straight-line segment: the per-op
   tick amounts are pre-materialized in a float array, and the runtime
   either commits the whole segment in one accumulator write (when
   replaying the additions never reaches the quantum — see
   [Thread_manager.tick_batch]) or falls back to per-op ticks
   interleaved with execution exactly like the reference interpreter.
   Either way the sequence of float additions, flushes, scheduler
   yields and Charge trace events is identical to the reference
   engine's, which is what keeps figures numerically identical and
   same-seed traces byte-identical (see DESIGN.md, "Execution
   engine").

   Semantic-parity ground rules, to stay observably equivalent to
   [Reference] (the retained tree-walker):
   - scalar semantics come from [Ops], shared by both engines;
   - anything malformed that the reference only rejects when executed
     (unknown callee, void load, missing phi edge, unknown branch
     target) compiles to a closure that traps when executed, never at
     compile time;
   - pure computation (operand evaluation) may move relative to ticks,
     but every effect — memory access, buffer output, runtime call —
     stays after all of its op's ticks, as in the reference. *)

open Mutls_mir
open Mutls_runtime
open Value

(* --- compiled representation ----------------------------------------- *)

type mode =
  | Seq of seq_state
  | Tls of Thread_manager.t * Thread_data.t

and seq_state = { mutable seq_cost : float }

type prog = {
  modul : Ir.modul;
  cost : Config.cost;
  cfuncs : cfunc array;
  kfuncs : kfunc array; (* register-bank lowering; empty when the
                           module is not bankable (see [analyze]) *)
  func_ids : (string, int) Hashtbl.t; (* name -> index; last binding wins *)
  nglobals : int; (* interned global names, for the address cache *)
  gnames : string array; (* global id -> name, for lazy resolution *)
}

and cfunc = {
  cf_name : string;
  cf_nregs : int;
  cf_ntmp : int; (* phi-move scratch size *)
  cf_entry : edge option; (* entry-block phi handling (malformed IR) *)
  cf_blocks : cblock array;
}

and cblock = { items : item array; cterm : cterm }

(* A block body is a sequence of straight-line segments (batchable)
   separated by calls (which tick through the normal per-call path and
   may yield, trap, or recurse). *)
and item = Iseg of seg | Icall of (frame -> unit)

and seg = {
  ops : (frame -> unit) array;
  ticks : float array; (* every tick of the segment, in reference order *)
  counts : int array; (* ticks per op; trailing ticks belong to no op *)
}

and cterm =
  | Tbr of edge
  | Tcbr of (frame -> v) * edge * edge
  | Tswitch of (frame -> v) * int64 array * edge array * edge
  | Tret of (frame -> v) option
  | Tunreachable of string

(* Taking an edge performs the target's phi moves (parallel: sources
   all read before destinations are written).  [Etrap] replicates the
   reference's behaviour on a missing incoming entry: earlier phi
   sources still evaluate (they may trap first), then the trap. *)
and edge =
  | Eok of { tgt : int; dsts : int array; srcs : (frame -> v) array }
  | Etrap of { pre : (frame -> v) array; msg : string }

and frame = { ec : ectx; regs : v array; args : v array; tmp : v array }

and ectx = {
  prog : prog;
  mem : Memory.t;
  mode : mode;
  out : Buffer.t;
  gaddrs : v option array; (* lazily cached global addresses (boxed) *)
  igaddrs : int array; (* same cache, untagged; -1 = unresolved *)
  mutable sp : int;
  mutable stack_limit : int;
}

(* --- register-bank representation -------------------------------------

   When every register, argument and operand of a function has a
   consistent static type (checked per module by [analyze] below), the
   function's data path is lowered onto two untagged banks instead of
   a [Value.v array]: an int bank (one [Bytes.t], 8 bytes per slot)
   holding i1/i8/i32/i64/ptr values, and a float bank (a flat
   [float array]).  Slot 0 of each bank is the return slot; registers,
   arguments, phi-move scratch and interned constants follow.  Every
   int operand collapses to a byte offset into the int bank (negative
   codes address the per-run global cache), so the specialized op
   closures below read, compute and write without ever allocating a
   [Value.v]; boxed values survive only at the [call]/extern/stub
   boundary.  Modules that fail the bankability check run on the boxed
   pipeline above, whose observable equivalence with [Reference] is
   already enforced — rejection is always safe. *)
and kfunc = {
  k_name : string;
  k_image : Bytes.t; (* int bank template, constants pre-placed *)
  k_fimage : float array; (* float bank template *)
  k_akind : int array; (* param index -> 0 (int) / 1 (float) *)
  k_aslot : int array; (* param index -> ib byte offset / fb index *)
  k_ret : kret;
  k_entry : kedge option;
  k_blocks : kblock array;
}

and kret = KRint | KRfloat | KRnone

and kblock = { kitems : kitem array; kterm : kterm }
and kitem = Kseg of kseg | Kcall of (kframe -> unit)

and kseg = {
  kops : (kframe -> unit) array;
  kticks : float array;
  kcounts : int array;
}

and kterm =
  | KTbr of kedge
  | KTcbr of int * kedge * kedge (* int operand code *)
  | KTswitch of int * int64 array * kedge array * kedge
  | KTret_i of int (* int operand code -> ib slot 0 *)
  | KTret_f of int (* fb index -> fb.(0) *)
  | KTret_void
  | KTunreachable of string

(* Parallel phi moves: [kmoves] read every source into its scratch
   slot, then [kwrites] move scratch to destinations.  A single-phi
   edge skips scratch ([kwrites] empty, the move writes directly). *)
and kedge =
  | KEok of {
      ktgt : int;
      kmoves : (kframe -> unit) array;
      kwrites : (kframe -> unit) array;
    }
  | KEtrap of { kpre : (kframe -> unit) array; kmsg : string }

and kframe = { kec : ectx; kib : Bytes.t; kfb : float array }

(* Speculation stub operand, resolved at compile time; name resolution
   failures trap inside the child fiber, as in the reference. *)
type stub =
  | Sok of int
  | Sunknown of string
  | Sbadop
  | Snth

(* --- runtime helpers -------------------------------------------------- *)

let etick ec c =
  match ec.mode with
  | Seq s -> s.seq_cost <- s.seq_cost +. c
  | Tls (mgr, td) -> Thread_manager.tick mgr td c

let emgr_td ec =
  match ec.mode with
  | Tls (mgr, td) -> (mgr, td)
  | Seq _ -> Ops.trap "TLS runtime call in sequential mode"

let take_edge fr e =
  match e with
  | Eok { tgt; dsts; srcs } ->
    let n = Array.length dsts in
    if n > 0 then begin
      let tmp = fr.tmp in
      for i = 0 to n - 1 do
        Array.unsafe_set tmp i ((Array.unsafe_get srcs i) fr)
      done;
      for i = 0 to n - 1 do
        fr.regs.(Array.unsafe_get dsts i) <- Array.unsafe_get tmp i
      done
    end;
    tgt
  | Etrap { pre; msg } ->
    Array.iter (fun s -> ignore (s fr)) pre;
    raise (Ops.Trap msg)

let run_seg ec fr (s : seg) =
  let nticks = Array.length s.ticks in
  let ops = s.ops in
  let nops = Array.length ops in
  match ec.mode with
  | Seq st ->
    (* no quantum in sequential mode: replay the same additions in the
       same order, commit once *)
    let acc = ref st.seq_cost in
    for i = 0 to nticks - 1 do
      acc := !acc +. Array.unsafe_get s.ticks i
    done;
    st.seq_cost <- !acc;
    for i = 0 to nops - 1 do
      (Array.unsafe_get ops i) fr
    done
  | Tls (mgr, td) ->
    if Thread_manager.tick_batch mgr td s.ticks nticks then
      for i = 0 to nops - 1 do
        (Array.unsafe_get ops i) fr
      done
    else begin
      (* a flush lands inside this segment: interleave per-op ticks
         with execution exactly like the reference *)
      let ti = ref 0 in
      for i = 0 to nops - 1 do
        for _ = 1 to Array.unsafe_get s.counts i do
          Thread_manager.tick mgr td (Array.unsafe_get s.ticks !ti);
          incr ti
        done;
        (Array.unsafe_get ops i) fr
      done;
      while !ti < nticks do
        Thread_manager.tick mgr td (Array.unsafe_get s.ticks !ti);
        incr ti
      done
    end

let rec bsearch (keys : int64 array) edges default x lo hi =
  if lo >= hi then default
  else
    let mid = (lo + hi) / 2 in
    let c = Int64.compare x (Array.unsafe_get keys mid) in
    if c = 0 then Array.unsafe_get edges mid
    else if c < 0 then bsearch keys edges default x lo mid
    else bsearch keys edges default x (mid + 1) hi

(* --- the execution loop ----------------------------------------------- *)

(* Not self-recursive: recursion happens dynamically through call
   closures built by [compile_func] below. *)
let exec_cfunc (ec : ectx) (cf : cfunc) (args : v array) : v option =
  let fr =
    { ec;
      regs = Array.make cf.cf_nregs (VI 0L);
      args;
      tmp = Array.make cf.cf_ntmp (VI 0L) }
  in
  let sp0 = ec.sp in
  (match cf.cf_entry with Some e -> ignore (take_edge fr e) | None -> ());
  let blocks = cf.cf_blocks in
  let cur = ref 0 in
  let result = ref None in
  let running = ref true in
  while !running do
    let b = Array.unsafe_get blocks !cur in
    let items = b.items in
    for i = 0 to Array.length items - 1 do
      match Array.unsafe_get items i with
      | Iseg s -> run_seg ec fr s
      | Icall f -> f fr
    done;
    match b.cterm with
    | Tbr e -> cur := take_edge fr e
    | Tcbr (c, e1, e2) ->
      cur := take_edge fr (if to_bool (c fr) then e1 else e2)
    | Tswitch (vs, keys, edges, default) ->
      let x = to_i64 (vs fr) in
      cur := take_edge fr (bsearch keys edges default x 0 (Array.length keys))
    | Tret s ->
      result := (match s with Some f -> Some (f fr) | None -> None);
      running := false
    | Tunreachable msg -> raise (Ops.Trap msg)
  done;
  ec.sp <- sp0;
  !result

let find_cfunc prog name =
  match Hashtbl.find_opt prog.func_ids name with
  | Some id -> prog.cfuncs.(id)
  | None -> Ops.trap "call to unknown function @%s" name

(* Body of a freshly speculated thread: a new context on the child's
   stack slot, executing the stub function. *)
let run_speculative (parent_ec : ectx) (child : Thread_data.t) stub =
  let mgr, _ = emgr_td parent_ec in
  let base, limit = Memory.stack_slot parent_ec.mem child.Thread_data.rank in
  Local_buffer.set_stack_range child.Thread_data.lbuf ~base ~limit;
  let ec =
    { parent_ec with
      mode = Tls (mgr, child);
      sp = base;
      stack_limit = limit }
  in
  let cf =
    match stub with
    | Sok id -> ec.prog.cfuncs.(id)
    | Sunknown name -> Ops.trap "call to unknown function @%s" name
    | Sbadop | Snth -> assert false (* raised in the parent *)
  in
  ignore (exec_cfunc ec cf [| of_int child.Thread_data.rank |])

(* --- register-bank runtime helpers ------------------------------------ *)

let kglobal_slow ec gi =
  let a = Memory.symbol ec.mem (Array.unsafe_get ec.prog.gnames gi) in
  Array.unsafe_set ec.igaddrs gi a;
  a

(* Resolved address of global id [gi] as an untagged OCaml int (cached
   per run; the first use still goes through [Memory.symbol] so an
   unknown name fails at the same use site as in the reference). *)
let[@inline] kglobal kf gi =
  let a = Array.unsafe_get kf.kec.igaddrs gi in
  if a >= 0 then a else kglobal_slow kf.kec gi

(* Int operands are compile-time codes: a non-negative byte offset
   into the frame's int bank, or [-gi - 1] for global [gi].  [iget]
   and friends are forced inline so the int64 stays unboxed inside
   each op closure's body. *)
let[@inline] iget kf c =
  if c >= 0 then Bytes.get_int64_le kf.kib c
  else Int64.of_int (kglobal kf (-c - 1))

(* The same operand as an address or count (OCaml int). *)
let[@inline] igeta kf c =
  if c >= 0 then Int64.to_int (Bytes.get_int64_le kf.kib c)
  else kglobal kf (-c - 1)

let[@inline] iset kf off x = Bytes.set_int64_le kf.kib off x
let[@inline] fget kf i = Array.unsafe_get kf.kfb i
let[@inline] fset kf i x = Array.unsafe_set kf.kfb i x

let ktake_edge kf e =
  match e with
  | KEok { ktgt; kmoves; kwrites } ->
    for i = 0 to Array.length kmoves - 1 do
      (Array.unsafe_get kmoves i) kf
    done;
    for i = 0 to Array.length kwrites - 1 do
      (Array.unsafe_get kwrites i) kf
    done;
    ktgt
  | KEtrap { kpre; kmsg } ->
    Array.iter (fun s -> s kf) kpre;
    raise (Ops.Trap kmsg)

(* Identical cost protocol to [run_seg]; only the frame representation
   differs. *)
let run_kseg ec kf (s : kseg) =
  let nticks = Array.length s.kticks in
  let ops = s.kops in
  let nops = Array.length ops in
  match ec.mode with
  | Seq st ->
    let acc = ref st.seq_cost in
    for i = 0 to nticks - 1 do
      acc := !acc +. Array.unsafe_get s.kticks i
    done;
    st.seq_cost <- !acc;
    for i = 0 to nops - 1 do
      (Array.unsafe_get ops i) kf
    done
  | Tls (mgr, td) ->
    if Thread_manager.tick_batch mgr td s.kticks nticks then
      for i = 0 to nops - 1 do
        (Array.unsafe_get ops i) kf
      done
    else begin
      let ti = ref 0 in
      for i = 0 to nops - 1 do
        for _ = 1 to Array.unsafe_get s.kcounts i do
          Thread_manager.tick mgr td (Array.unsafe_get s.kticks !ti);
          incr ti
        done;
        (Array.unsafe_get ops i) kf
      done;
      while !ti < nticks do
        Thread_manager.tick mgr td (Array.unsafe_get s.kticks !ti);
        incr ti
      done
    end

let empty_floats : float array = [||]

let kframe_of ec (cf : kfunc) =
  { kec = ec;
    kib = Bytes.copy cf.k_image;
    kfb =
      (if Array.length cf.k_fimage = 0 then empty_floats
       else Array.copy cf.k_fimage) }

(* The banked execution loop.  The return value is left in bank slot 0
   (by [KTret_i]/[KTret_f]); callers read it out by the callee's
   statically known return shape — no boxing on internal calls. *)
let exec_kframe (ec : ectx) (cf : kfunc) (kf : kframe) : unit =
  let sp0 = ec.sp in
  (match cf.k_entry with Some e -> ignore (ktake_edge kf e) | None -> ());
  let blocks = cf.k_blocks in
  let cur = ref 0 in
  let running = ref true in
  while !running do
    let b = Array.unsafe_get blocks !cur in
    let items = b.kitems in
    for i = 0 to Array.length items - 1 do
      match Array.unsafe_get items i with
      | Kseg s -> run_kseg ec kf s
      | Kcall f -> f kf
    done;
    match b.kterm with
    | KTbr e -> cur := ktake_edge kf e
    | KTcbr (c, e1, e2) ->
      cur := ktake_edge kf (if iget kf c <> 0L then e1 else e2)
    | KTswitch (c, keys, edges, default) ->
      let x = iget kf c in
      cur := ktake_edge kf (bsearch keys edges default x 0 (Array.length keys))
    | KTret_i c ->
      Bytes.set_int64_le kf.kib 0 (iget kf c);
      running := false
    | KTret_f i ->
      Array.unsafe_set kf.kfb 0 (Array.unsafe_get kf.kfb i);
      running := false
    | KTret_void -> running := false
    | KTunreachable msg -> raise (Ops.Trap msg)
  done;
  ec.sp <- sp0

(* Boxed entry into a banked function ([call], stubs).  Boundary
   deviations, both confined to IR no front end produces: passing
   fewer arguments than parameters raises the reference's
   index-out-of-bounds eagerly here rather than at the first missing
   [Arg] read, and a boxed argument of the wrong kind trips
   [to_i64]/[to_f64] at entry rather than at first use. *)
let exec_kfunc_boxed ec (cf : kfunc) (args : v array) : v option =
  let np = Array.length cf.k_akind in
  if Array.length args < np then invalid_arg "index out of bounds";
  let kf = kframe_of ec cf in
  for k = 0 to np - 1 do
    if Array.unsafe_get cf.k_akind k = 0 then
      Bytes.set_int64_le kf.kib cf.k_aslot.(k) (to_i64 args.(k))
    else kf.kfb.(cf.k_aslot.(k)) <- to_f64 args.(k)
  done;
  exec_kframe ec cf kf;
  match cf.k_ret with
  | KRint -> Some (VI (Bytes.get_int64_le kf.kib 0))
  | KRfloat -> Some (VF kf.kfb.(0))
  | KRnone -> None

(* Child fiber body for a banked speculation stub. *)
let krun_speculative (parent_ec : ectx) (child : Thread_data.t) stub =
  let mgr, _ = emgr_td parent_ec in
  let base, limit = Memory.stack_slot parent_ec.mem child.Thread_data.rank in
  Local_buffer.set_stack_range child.Thread_data.lbuf ~base ~limit;
  let ec =
    { parent_ec with
      mode = Tls (mgr, child);
      sp = base;
      stack_limit = limit }
  in
  let cf =
    match stub with
    | Sok id -> ec.prog.kfuncs.(id)
    | Sunknown name -> Ops.trap "call to unknown function @%s" name
    | Sbadop | Snth -> assert false (* raised in the parent *)
  in
  ignore (exec_kfunc_boxed ec cf [| of_int child.Thread_data.rank |])

(* --- compilation ------------------------------------------------------ *)

type cstate = {
  st_func_ids : (string, int) Hashtbl.t;
  st_globals : (string, int) Hashtbl.t;
  mutable st_nglobals : int;
}

let global_id st g =
  match Hashtbl.find_opt st.st_globals g with
  | Some i -> i
  | None ->
    let i = st.st_nglobals in
    st.st_nglobals <- i + 1;
    Hashtbl.add st.st_globals g i;
    i

(* Operand -> slot closure.  Globals resolve through a per-run cache;
   the first use still goes through [Memory.symbol] so an unknown name
   fails at the same use site as in the reference. *)
let slot st (v : Ir.value) : frame -> v =
  match v with
  | Ir.Const c ->
    let k = of_const c in
    fun _ -> k
  | Ir.Reg r -> fun fr -> fr.regs.(r)
  | Ir.Arg i -> fun fr -> fr.args.(i)
  | Ir.Global g ->
    let gi = global_id st g in
    fun fr -> (
      match Array.unsafe_get fr.ec.gaddrs gi with
      | Some x -> x
      | None ->
        let x = VI (Int64.of_int (Memory.symbol fr.ec.mem g)) in
        fr.ec.gaddrs.(gi) <- Some x;
        x)
  | Ir.Funcref _ -> fun _ -> Ops.trap "function reference in value position"

(* [List.nth] in the reference raises [Failure] at run time on a short
   operand list; replicate that in the slot. *)
let nth_slot st operands n : frame -> v =
  match List.nth_opt operands n with
  | Some v -> slot st v
  | None -> fun _ -> raise (Failure "nth")

let int_of v = Int64.to_int (to_i64 v)

(* Evaluate every operand, left to right, like the reference's
   [List.map eval_v operands].  Polymorphic in the frame so the
   register-bank engine shares it. *)
let evals slots fr = Array.to_list (Array.map (fun s -> s fr) slots)

(* --- runtime-call lowering -------------------------------------------- *)

(* One closure per call site, mirroring [Reference.exec_runtime_call]:
   mode check first, then arguments, then the Thread_manager entry.
   Runtime calls charge their own model costs — no instr tick. *)
let compile_runtime st fn (operands : Ir.value list) dst : frame -> unit =
  let s n = nth_slot st operands n in
  let put fr v = if dst >= 0 then fr.regs.(dst) <- v in
  match (fn : Ir.runtime_fn) with
  | Ir.Rt_get_cpu ->
    let s0 = s 0 and s1 = s 1 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      (* bits 0-1: fork model; bit 2: store-free (expandable) flag *)
      let mi = int_of (s0 fr) in
      let model = Config.model_of_int (mi land 3) in
      put fr
        (of_int
           (Thread_manager.get_cpu mgr td ~model ~expandable:(mi land 4 <> 0)
              ~point:(int_of (s1 fr))))
  | Ir.Rt_set_fork_reg ->
    let s0 = s 0 and s1 = s 1 and s2 = s 2 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.set_fork_reg mgr td ~rank:(int_of (s0 fr))
        ~off:(int_of (s1 fr))
        (to_runtime (s2 fr))
  | Ir.Rt_set_fork_addr ->
    let s0 = s 0 and s1 = s 1 and s2 = s 2 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.set_fork_addr mgr td ~rank:(int_of (s0 fr))
        ~off:(int_of (s1 fr))
        (int_of (s2 fr))
  | Ir.Rt_validate_local ->
    let s0 = s 0 and s1 = s 1 and s2 = s 2 and s3 = s 3 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.validate_local mgr td ~rank:(int_of (s0 fr))
        ~point:(int_of (s1 fr)) ~off:(int_of (s2 fr))
        (to_runtime (s3 fr))
  | Ir.Rt_speculate ->
    let s0 = s 0 and s1 = s 1 in
    let stub =
      match List.nth_opt operands 2 with
      | Some (Ir.Funcref f) -> (
        match Hashtbl.find_opt st.st_func_ids f with
        | Some id -> Sok id
        | None -> Sunknown f)
      | Some _ -> Sbadop
      | None -> Snth
    in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      let rank = int_of (s0 fr) and counter = int_of (s1 fr) in
      (match stub with
      | Sok _ | Sunknown _ -> ()
      | Sbadop -> Ops.trap "MUTLS_speculate: expected a function reference"
      | Snth -> raise (Failure "nth"));
      Thread_manager.speculate mgr td ~rank ~counter (fun child ->
          run_speculative fr.ec child stub)
  | Ir.Rt_entry_counter ->
    fun fr ->
      let _, td = emgr_td fr.ec in
      put fr (of_int td.Thread_data.entry_counter)
  | Ir.Rt_get_fork_reg ->
    let s0 = s 0 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      put fr (of_runtime (Thread_manager.get_fork_reg mgr td ~off:(int_of (s0 fr))))
  | Ir.Rt_pick_stackaddr ->
    let s0 = s 0 and s1 = s 1 and s2 = s 2 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      put fr
        (of_int
           (Thread_manager.pick_stackaddr mgr td ~counter:(int_of (s0 fr))
              ~off:(int_of (s1 fr)) ~own_addr:(int_of (s2 fr))))
  | Ir.Rt_load size ->
    let s0 = s 0 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      put fr (VI (Thread_manager.spec_load mgr td ~addr:(int_of (s0 fr)) ~size))
  | Ir.Rt_load_f64 ->
    let s0 = s 0 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      put fr
        (VF
           (Int64.float_of_bits
              (Thread_manager.spec_load mgr td ~addr:(int_of (s0 fr)) ~size:8)))
  | Ir.Rt_store size ->
    let s0 = s 0 and s1 = s 1 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.spec_store mgr td ~addr:(int_of (s1 fr)) ~size
        (to_i64 (s0 fr))
  | Ir.Rt_store_f64 ->
    let s0 = s 0 and s1 = s 1 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.spec_store mgr td ~addr:(int_of (s1 fr)) ~size:8
        (Int64.bits_of_float (to_f64 (s0 fr)))
  | Ir.Rt_save_regvar ->
    let s0 = s 0 and s1 = s 1 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.save_regvar mgr td ~off:(int_of (s0 fr)) (to_runtime (s1 fr))
  | Ir.Rt_save_stackvar ->
    let s0 = s 0 and s1 = s 1 and s2 = s 2 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.save_stackvar mgr td ~off:(int_of (s0 fr))
        ~addr:(int_of (s1 fr)) ~size:(int_of (s2 fr))
  | Ir.Rt_check_point ->
    let s0 = s 0 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      put fr (of_bool (Thread_manager.check_point mgr td ~counter:(int_of (s0 fr))))
  | Ir.Rt_commit ->
    let s0 = s 0 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.commit mgr td ~counter:(int_of (s0 fr))
  | Ir.Rt_terminate_point ->
    let s0 = s 0 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.terminate_point mgr td ~counter:(int_of (s0 fr))
  | Ir.Rt_barrier_point ->
    let s0 = s 0 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.barrier_point mgr td ~counter:(int_of (s0 fr))
  | Ir.Rt_return_point ->
    let s0 = s 0 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.return_point mgr td ~counter:(int_of (s0 fr))
  | Ir.Rt_enter_point ->
    let s0 = s 0 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.enter_point mgr td ~counter:(int_of (s0 fr))
  | Ir.Rt_ptr_int_cast ->
    let s0 = s 0 and s1 = s 1 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.ptr_int_cast mgr td ~counter:(int_of (s0 fr)) (int_of (s1 fr))
  | Ir.Rt_synchronize ->
    let s0 = s 0 and s1 = s 1 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      put fr
        (of_bool
           (Thread_manager.synchronize mgr td ~point:(int_of (s0 fr))
              ~rank:(int_of (s1 fr))))
  | Ir.Rt_sync_counter ->
    fun fr ->
      let _, td = emgr_td fr.ec in
      put fr (of_int td.Thread_data.last_sync_counter)
  | Ir.Rt_sync_rank ->
    fun fr ->
      let _, td = emgr_td fr.ec in
      put fr (of_int td.Thread_data.last_sync_rank)
  | Ir.Rt_sync_entry ->
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      put fr (of_int (Thread_manager.sync_entry mgr td))
  | Ir.Rt_bad_sync ->
    let s0 = s 0 in
    fun fr ->
      let _, td = emgr_td fr.ec in
      Ops.trap "synchronization counter %d has no restore target (rank %d)"
        (int_of (s0 fr)) td.Thread_data.rank
  | Ir.Rt_restore_regvar is_ptr ->
    let s0 = s 0 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      put fr
        (of_runtime
           (Thread_manager.restore_regvar mgr td ~off:(int_of (s0 fr)) ~is_ptr))
  | Ir.Rt_restore_stackvar ->
    let s0 = s 0 and s1 = s 1 and s2 = s 2 in
    fun fr ->
      let mgr, td = emgr_td fr.ec in
      Thread_manager.restore_stackvar mgr td ~off:(int_of (s0 fr))
        ~addr:(int_of (s1 fr)) ~size:(int_of (s2 fr))

(* --- call lowering (internal / extern / builtin) ---------------------- *)

(* Reference order for an internal call: instr tick, call tick,
   arguments, callee.  For an extern: instr tick, arguments, call
   tick, action. *)
let compile_call st (cost : Config.cost) name (operands : Ir.value list) dst :
    frame -> unit =
  let ci = cost.Config.instr and cc = cost.Config.call in
  let slots = Array.of_list (List.map (slot st) operands) in
  match Hashtbl.find_opt st.st_func_ids name with
  | Some callee_id ->
    fun fr ->
      let ec = fr.ec in
      etick ec ci;
      etick ec cc;
      let n = Array.length slots in
      let args = Array.make n (VI 0L) in
      for k = 0 to n - 1 do
        Array.unsafe_set args k ((Array.unsafe_get slots k) fr)
      done;
      (match exec_cfunc ec (Array.unsafe_get ec.prog.cfuncs callee_id) args with
      | Some v -> if dst >= 0 then fr.regs.(dst) <- v
      | None -> ())
  | None -> (
    match name with
    | "print_int" ->
      fun fr ->
        let ec = fr.ec in
        etick ec ci;
        let args = evals slots fr in
        etick ec cc;
        Buffer.add_string ec.out (Int64.to_string (to_i64 (List.hd args)))
    | "print_float" ->
      fun fr ->
        let ec = fr.ec in
        etick ec ci;
        let args = evals slots fr in
        etick ec cc;
        Buffer.add_string ec.out (Printf.sprintf "%.6g" (to_f64 (List.hd args)))
    | "print_char" ->
      fun fr ->
        let ec = fr.ec in
        etick ec ci;
        let args = evals slots fr in
        etick ec cc;
        Buffer.add_char ec.out
          (Char.chr (Int64.to_int (to_i64 (List.hd args)) land 0xff))
    | "print_newline" ->
      fun fr ->
        let ec = fr.ec in
        etick ec ci;
        let args = evals slots fr in
        etick ec cc;
        ignore args;
        Buffer.add_char ec.out '\n'
    | "malloc" ->
      fun fr ->
        let ec = fr.ec in
        etick ec ci;
        let args = evals slots fr in
        etick ec cc;
        let size = Int64.to_int (to_i64 (List.hd args)) in
        let addr = Memory.malloc ec.mem size in
        (match ec.mode with
        | Tls (mgr, _) ->
          Thread_manager.register_range mgr addr (Memory.align8 (max 8 size))
        | Seq _ -> ());
        if dst >= 0 then fr.regs.(dst) <- VI (Int64.of_int addr)
    | "free" ->
      fun fr ->
        let ec = fr.ec in
        etick ec ci;
        let args = evals slots fr in
        etick ec cc;
        let addr = to_addr (List.hd args) in
        (match Memory.free ec.mem addr with
        | Some size -> (
          match ec.mode with
          | Tls (mgr, _) -> Thread_manager.unregister_range mgr addr size
          | Seq _ -> ())
        | None -> ())
    | _ -> (
      match Externs.lookup name with
      | Some f ->
        fun fr ->
          let ec = fr.ec in
          etick ec ci;
          let args = evals slots fr in
          etick ec cc;
          (match f args with
          | Some (Externs.Ret v) -> if dst >= 0 then fr.regs.(dst) <- v
          | Some Externs.Ret_void -> ()
          | None -> Ops.trap "call to unknown extern @%s" name)
      | None ->
        fun fr ->
          let ec = fr.ec in
          etick ec ci;
          let args = evals slots fr in
          etick ec cc;
          ignore args;
          Ops.trap "call to unknown extern @%s" name))

(* --- instruction lowering --------------------------------------------- *)

let compile_op st fname (i : Ir.instr) : frame -> unit =
  let d = i.Ir.id in
  match i.Ir.kind with
  | Ir.Binop (op, ty, a, b) ->
    let f = Ops.binop_fn op ty and sa = slot st a and sb = slot st b in
    fun fr -> fr.regs.(d) <- f (sa fr) (sb fr)
  | Ir.Icmp (op, ty, a, b) ->
    let f = Ops.icmp_fn op ty and sa = slot st a and sb = slot st b in
    fun fr -> fr.regs.(d) <- f (sa fr) (sb fr)
  | Ir.Fcmp (op, a, b) ->
    let f = Ops.fcmp_fn op and sa = slot st a and sb = slot st b in
    fun fr -> fr.regs.(d) <- f (sa fr) (sb fr)
  | Ir.Alloca size ->
    let asize = Memory.align8 size in
    fun fr ->
      let ec = fr.ec in
      let addr = Memory.align8 ec.sp in
      if addr + size > ec.stack_limit then Ops.trap "stack overflow in @%s" fname;
      ec.sp <- addr + asize;
      fr.regs.(d) <- VI (Int64.of_int addr)
  | Ir.Load (ty, a) -> (
    let sa = slot st a in
    match ty with
    | Ir.I64 | Ir.Ptr ->
      fun fr -> fr.regs.(d) <- VI (Memory.read_i64 fr.ec.mem (to_addr (sa fr)))
    | Ir.F64 ->
      fun fr -> fr.regs.(d) <- VF (Memory.read_f64 fr.ec.mem (to_addr (sa fr)))
    | Ir.I32 ->
      fun fr -> fr.regs.(d) <- VI (Memory.read_i32 fr.ec.mem (to_addr (sa fr)))
    | Ir.I8 | Ir.I1 ->
      fun fr -> fr.regs.(d) <- VI (Memory.read_i8 fr.ec.mem (to_addr (sa fr)))
    | Ir.Void -> fun _ -> Ops.trap "load void")
  | Ir.Store (ty, v, a) -> (
    (* the stored value evaluates before the address, as in the
       reference's right-to-left argument evaluation *)
    let sv = slot st v and sa = slot st a in
    match ty with
    | Ir.I64 | Ir.Ptr ->
      fun fr ->
        let x = to_i64 (sv fr) in
        Memory.write_i64 fr.ec.mem (to_addr (sa fr)) x
    | Ir.F64 ->
      fun fr ->
        let x = to_f64 (sv fr) in
        Memory.write_f64 fr.ec.mem (to_addr (sa fr)) x
    | Ir.I32 ->
      fun fr ->
        let x = to_i64 (sv fr) in
        Memory.write_i32 fr.ec.mem (to_addr (sa fr)) x
    | Ir.I8 | Ir.I1 ->
      fun fr ->
        let x = to_i64 (sv fr) in
        Memory.write_i8 fr.ec.mem (to_addr (sa fr)) x
    | Ir.Void -> fun _ -> Ops.trap "store void")
  | Ir.Ptradd (a, o) ->
    let sa = slot st a and so = slot st o in
    fun fr -> fr.regs.(d) <- VI (Int64.add (to_i64 (sa fr)) (to_i64 (so fr)))
  | Ir.Select (c, a, b) ->
    let sc = slot st c and sa = slot st a and sb = slot st b in
    fun fr -> fr.regs.(d) <- (if to_bool (sc fr) then sa fr else sb fr)
  | Ir.Cast (c, t1, t2, v) ->
    let f = Ops.cast_fn c t1 t2 and sv = slot st v in
    fun fr -> fr.regs.(d) <- f (sv fr)
  | Ir.Call _ -> assert false (* handled by the block compiler *)

(* --- function lowering ------------------------------------------------ *)

let compile_func st (cost : Config.cost) (f : Ir.func) : cfunc =
  let barr = Ir.block_array f in
  let bidx = Ir.block_index_map f in
  let ntmp = ref 0 in
  let compile_edge_to pred_name ti =
    let tb = barr.(ti) in
    match tb.Ir.phis with
    | [] -> Eok { tgt = ti; dsts = [||]; srcs = [||] }
    | phis ->
      let rec build dsts srcs = function
        | [] ->
          let srcs = Array.of_list (List.rev srcs) in
          ntmp := max !ntmp (Array.length srcs);
          Eok { tgt = ti; dsts = Array.of_list (List.rev dsts); srcs }
        | (p : Ir.phi) :: rest -> (
          match List.assoc_opt pred_name p.Ir.incoming with
          | Some v -> build (p.Ir.pid :: dsts) (slot st v :: srcs) rest
          | None ->
            Etrap
              { pre = Array.of_list (List.rev srcs);
                msg =
                  Printf.sprintf "phi in %s has no incoming for %s" tb.Ir.bname
                    pred_name })
      in
      build [] [] phis
  in
  let compile_edge pred_name tname =
    match Hashtbl.find_opt bidx tname with
    | Some ti -> compile_edge_to pred_name ti
    | None ->
      Etrap
        { pre = [||];
          msg = Printf.sprintf "unknown block %s in @%s" tname f.Ir.fname }
  in
  let compile_block (b : Ir.block) : cblock =
    let items_rev = ref [] in
    let ops_rev = ref [] and nops = ref 0 in
    let ticks_rev = ref [] and nticks = ref 0 in
    let counts_rev = ref [] in
    let push_tick c =
      ticks_rev := c :: !ticks_rev;
      incr nticks
    in
    let add_op op ticks =
      List.iter push_tick ticks;
      ops_rev := op :: !ops_rev;
      incr nops;
      counts_rev := List.length ticks :: !counts_rev
    in
    let flush_seg () =
      if !nops > 0 || !nticks > 0 then begin
        items_rev :=
          Iseg
            { ops = Array.of_list (List.rev !ops_rev);
              ticks = Array.of_list (List.rev !ticks_rev);
              counts = Array.of_list (List.rev !counts_rev) }
          :: !items_rev;
        ops_rev := [];
        nops := 0;
        ticks_rev := [];
        nticks := 0;
        counts_rev := []
      end
    in
    List.iter
      (fun (i : Ir.instr) ->
        match i.Ir.kind with
        | Ir.Call (name, operands) -> (
          match Ir.classify_callee name with
          | Ir.Runtime fn ->
            flush_seg ();
            let dst = if i.Ir.ity <> Ir.Void then i.Ir.id else -1 in
            items_rev := Icall (compile_runtime st fn operands dst) :: !items_rev
          | Ir.Runtime_unknown ->
            flush_seg ();
            items_rev :=
              Icall
                (fun fr ->
                  let _ = emgr_td fr.ec in
                  Ops.trap "unknown runtime call @%s" name)
              :: !items_rev
          | Ir.Intrinsic ->
            (* sequential no-op, but it costs one instr tick *)
            add_op (fun _ -> ()) [ cost.Config.instr ]
          | Ir.Other ->
            flush_seg ();
            let dst = if i.Ir.ity <> Ir.Void then i.Ir.id else -1 in
            items_rev :=
              Icall (compile_call st cost name operands dst) :: !items_rev)
        | Ir.Load _ | Ir.Store _ ->
          add_op (compile_op st f.Ir.fname i)
            [ cost.Config.instr; cost.Config.mem ]
        | _ -> add_op (compile_op st f.Ir.fname i) [ cost.Config.instr ])
      b.Ir.insts;
    (* the terminator's tick is the segment's trailing tick *)
    push_tick cost.Config.instr;
    flush_seg ();
    let cterm =
      match b.Ir.term with
      | Ir.Ret v -> Tret (Option.map (slot st) v)
      | Ir.Br l -> Tbr (compile_edge b.Ir.bname l)
      | Ir.Cbr (c, l1, l2) ->
        Tcbr (slot st c, compile_edge b.Ir.bname l1, compile_edge b.Ir.bname l2)
      | Ir.Switch (v, d, cases) ->
        (* first-match semantics of [List.assoc_opt]: deduplicate
           keeping the first binding, then sort for binary search *)
        let seen = Hashtbl.create 16 in
        let uniq =
          List.filter
            (fun (k, _) ->
              if Hashtbl.mem seen k then false
              else begin
                Hashtbl.add seen k ();
                true
              end)
            cases
        in
        let arr = Array.of_list uniq in
        Array.sort (fun (a, _) (b, _) -> Int64.compare a b) arr;
        Tswitch
          ( slot st v,
            Array.map fst arr,
            Array.map (fun (_, l) -> compile_edge b.Ir.bname l) arr,
            compile_edge b.Ir.bname d )
      | Ir.Unreachable ->
        Tunreachable
          (Printf.sprintf "unreachable executed in @%s/%s" f.Ir.fname b.Ir.bname)
    in
    { items = Array.of_list (List.rev !items_rev); cterm }
  in
  let cf_blocks = Array.map compile_block barr in
  (* the reference runs the entry block's phis against the empty
     predecessor label; only malformed IR has entry phis *)
  let cf_entry =
    if Array.length barr > 0 && barr.(0).Ir.phis <> [] then
      Some (compile_edge_to "" 0)
    else None
  in
  { cf_name = f.Ir.fname;
    cf_nregs = max 1 f.Ir.next_reg;
    cf_ntmp = !ntmp;
    cf_entry;
    cf_blocks }

(* --- bankability analysis --------------------------------------------- *)

(* The register-bank engine only runs modules where every register,
   argument and operand has a statically unambiguous bank.  Anything
   unusual — [Void]-typed value instructions, bank conflicts, funcref
   operands outside [Rt_speculate], arity mismatches on internal
   calls, mixed return shapes — rejects the whole module and execution
   stays on the boxed pipeline above, whose observable equivalence
   with [Reference] is what the test suite pins down.  Rejection is
   therefore always safe; the analysis errs on the side of it. *)

exception Not_bankable

type kbank = KI | KF

type kfinfo = {
  fi_regbank : kbank array;
  fi_parbank : kbank array;
  fi_ret : kret;  (* uniform across every [Ret] in the function *)
}

let bank_of_ty (t : Ir.ty) : kbank =
  match t with Ir.F64 -> KF | Ir.Void -> raise Not_bankable | _ -> KI

(* Pass 1: assign a bank to every register from its defining
   instruction/phi type, and derive the function's return shape. *)
let analyze_banks (f : Ir.func) : kfinfo =
  let nregs = f.Ir.next_reg in
  let rb = Array.make (max 1 nregs) KI in
  let assigned = Array.make (max 1 nregs) false in
  let parbank =
    Array.of_list (List.map (fun (_, t) -> bank_of_ty t) f.Ir.params)
  in
  let def r b =
    if r < 0 || r >= nregs then raise Not_bankable;
    if assigned.(r) then begin
      if rb.(r) <> b then raise Not_bankable
    end
    else begin
      assigned.(r) <- true;
      rb.(r) <- b
    end
  in
  List.iter
    (fun (b : Ir.block) ->
      List.iter (fun (p : Ir.phi) -> def p.Ir.pid (bank_of_ty p.Ir.pty)) b.Ir.phis;
      List.iter
        (fun (i : Ir.instr) ->
          match i.Ir.kind with
          | Ir.Store _ -> ()
          | Ir.Call _ ->
            if i.Ir.ity <> Ir.Void then def i.Ir.id (bank_of_ty i.Ir.ity)
          | _ -> def i.Ir.id (bank_of_ty i.Ir.ity))
        b.Ir.insts)
    f.Ir.blocks;
  (* a register read before any definition keeps the bank's zero, like
     the reference's [VI 0L] initialization *)
  let opbank (v : Ir.value) : kbank =
    match v with
    | Ir.Const (Ir.Cfloat _) -> KF
    | Ir.Const _ -> KI
    | Ir.Reg r -> if r < 0 || r >= nregs then raise Not_bankable else rb.(r)
    | Ir.Arg i ->
      if i < 0 || i >= Array.length parbank then raise Not_bankable
      else parbank.(i)
    | Ir.Global _ -> KI
    | Ir.Funcref _ -> raise Not_bankable
  in
  let ret = ref None in
  let meet shape =
    match !ret with
    | None -> ret := Some shape
    | Some s -> if s <> shape then raise Not_bankable
  in
  List.iter
    (fun (b : Ir.block) ->
      match b.Ir.term with
      | Ir.Ret None -> meet KRnone
      | Ir.Ret (Some v) ->
        meet (match opbank v with KI -> KRint | KF -> KRfloat)
      | _ -> ())
    f.Ir.blocks;
  { fi_regbank = rb;
    fi_parbank = parbank;
    fi_ret = (match !ret with Some s -> s | None -> KRnone) }

(* Pass 2: check every operand position against its required bank. *)
let check_func (ftab : (string, kfinfo) Hashtbl.t) (f : Ir.func) (fi : kfinfo) :
    unit =
  let nregs = f.Ir.next_reg in
  let opbank (v : Ir.value) : kbank =
    match v with
    | Ir.Const (Ir.Cfloat _) -> KF
    | Ir.Const _ -> KI
    | Ir.Reg r ->
      if r < 0 || r >= nregs then raise Not_bankable else fi.fi_regbank.(r)
    | Ir.Arg i ->
      if i < 0 || i >= Array.length fi.fi_parbank then raise Not_bankable
      else fi.fi_parbank.(i)
    | Ir.Global _ -> KI
    | Ir.Funcref _ -> raise Not_bankable
  in
  let want b v = if opbank v <> b then raise Not_bankable in
  let dbank (i : Ir.instr) = bank_of_ty i.Ir.ity in
  let ck operands n b =
    match List.nth_opt operands n with Some v -> want b v | None -> ()
  in
  let ck_any operands n =
    match List.nth_opt operands n with
    | Some v -> ignore (opbank v)
    | None -> ()
  in
  let check_runtime (i : Ir.instr) fn operands =
    let dst_i () =
      if i.Ir.ity <> Ir.Void && dbank i <> KI then raise Not_bankable
    in
    let dst_f () =
      if i.Ir.ity <> Ir.Void && dbank i <> KF then raise Not_bankable
    in
    match (fn : Ir.runtime_fn) with
    | Ir.Rt_get_cpu ->
      ck operands 0 KI;
      ck operands 1 KI;
      dst_i ()
    | Ir.Rt_set_fork_reg ->
      ck operands 0 KI;
      ck operands 1 KI;
      ck_any operands 2
    | Ir.Rt_set_fork_addr | Ir.Rt_save_stackvar | Ir.Rt_restore_stackvar ->
      ck operands 0 KI;
      ck operands 1 KI;
      ck operands 2 KI
    | Ir.Rt_validate_local ->
      ck operands 0 KI;
      ck operands 1 KI;
      ck operands 2 KI;
      ck_any operands 3
    | Ir.Rt_speculate ->
      (* operand 2 is the funcref, resolved at lowering like the boxed
         engine; a non-funcref traps at run time *)
      ck operands 0 KI;
      ck operands 1 KI
    | Ir.Rt_entry_counter | Ir.Rt_sync_counter | Ir.Rt_sync_rank
    | Ir.Rt_sync_entry ->
      dst_i ()
    | Ir.Rt_get_fork_reg | Ir.Rt_restore_regvar _ ->
      (* transfer value coerced into the destination bank at the write *)
      ck operands 0 KI
    | Ir.Rt_pick_stackaddr ->
      ck operands 0 KI;
      ck operands 1 KI;
      ck operands 2 KI;
      dst_i ()
    | Ir.Rt_load _ ->
      ck operands 0 KI;
      dst_i ()
    | Ir.Rt_load_f64 ->
      ck operands 0 KI;
      dst_f ()
    | Ir.Rt_store _ | Ir.Rt_ptr_int_cast ->
      ck operands 0 KI;
      ck operands 1 KI
    | Ir.Rt_store_f64 ->
      ck operands 0 KF;
      ck operands 1 KI
    | Ir.Rt_save_regvar ->
      ck operands 0 KI;
      ck_any operands 1
    | Ir.Rt_check_point | Ir.Rt_synchronize ->
      ck operands 0 KI;
      ck operands 1 KI;
      dst_i ()
    | Ir.Rt_commit | Ir.Rt_terminate_point | Ir.Rt_barrier_point
    | Ir.Rt_return_point | Ir.Rt_enter_point | Ir.Rt_bad_sync ->
      ck operands 0 KI
  in
  let check_instr (i : Ir.instr) =
    match i.Ir.kind with
    | Ir.Binop (op, _, a, b) -> (
      match op with
      | Ir.Fadd | Ir.Fsub | Ir.Fmul | Ir.Fdiv ->
        want KF a;
        want KF b;
        if dbank i <> KF then raise Not_bankable
      | _ ->
        want KI a;
        want KI b;
        if dbank i <> KI then raise Not_bankable)
    | Ir.Icmp (_, _, a, b) ->
      want KI a;
      want KI b;
      if dbank i <> KI then raise Not_bankable
    | Ir.Fcmp (_, a, b) ->
      want KF a;
      want KF b;
      if dbank i <> KI then raise Not_bankable
    | Ir.Alloca _ -> if dbank i <> KI then raise Not_bankable
    | Ir.Load (ty, a) -> (
      match ty with
      | Ir.Void -> () (* compiles to a trap closure, operand unused *)
      | _ ->
        want KI a;
        if dbank i <> bank_of_ty ty then raise Not_bankable)
    | Ir.Store (ty, v, a) -> (
      match ty with
      | Ir.Void -> () (* trap closure, operands unused *)
      | Ir.F64 ->
        want KF v;
        want KI a
      | _ ->
        want KI v;
        want KI a)
    | Ir.Ptradd (a, o) ->
      want KI a;
      want KI o;
      if dbank i <> KI then raise Not_bankable
    | Ir.Select (c, a, b) ->
      let db = dbank i in
      want KI c;
      want db a;
      want db b
    | Ir.Cast (c, t1, t2, v) -> (
      let db = dbank i in
      match c with
      | Ir.Trunc | Ir.Zext | Ir.Sext | Ir.Ptrtoint | Ir.Inttoptr ->
        want KI v;
        if db <> KI then raise Not_bankable
      | Ir.Fptosi ->
        want KF v;
        if db <> KI then raise Not_bankable
      | Ir.Sitofp ->
        want KI v;
        if db <> KF then raise Not_bankable
      | Ir.Bitcast -> (
        match (t1, t2) with
        | Ir.F64, _ ->
          want KF v;
          if db <> KI then raise Not_bankable
        | _, Ir.F64 ->
          want KI v;
          if db <> KF then raise Not_bankable
        | _, _ -> want db v))
    | Ir.Call (name, operands) -> (
      match Ir.classify_callee name with
      | Ir.Runtime fn -> check_runtime i fn operands
      | Ir.Runtime_unknown -> () (* trap closure *)
      | Ir.Intrinsic -> ()
      | Ir.Other -> (
        match Hashtbl.find_opt ftab name with
        | Some ci ->
          if List.length operands <> Array.length ci.fi_parbank then
            raise Not_bankable;
          List.iteri (fun k v -> want ci.fi_parbank.(k) v) operands;
          if i.Ir.ity <> Ir.Void then (
            match ci.fi_ret with
            | KRnone -> () (* destination stays unwritten, like boxed *)
            | KRint -> if dbank i <> KI then raise Not_bankable
            | KRfloat -> if dbank i <> KF then raise Not_bankable)
        | None ->
          (* extern/builtin: operands evaluate boxed; any bank works,
             but [opbank] still rejects funcrefs and bad registers.
             The result is coerced into the destination bank. *)
          List.iter (fun v -> ignore (opbank v)) operands))
  in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (p : Ir.phi) ->
          let pb = bank_of_ty p.Ir.pty in
          List.iter (fun (_, v) -> want pb v) p.Ir.incoming)
        b.Ir.phis;
      List.iter check_instr b.Ir.insts;
      match b.Ir.term with
      | Ir.Cbr (c, _, _) -> want KI c
      | Ir.Switch (v, _, _) -> want KI v
      | _ -> () (* [Ret] shapes were met in pass 1 *))
    f.Ir.blocks

let analyze (modul : Ir.modul) : kfinfo array option =
  match
    let infos = List.map analyze_banks modul.Ir.funcs in
    let ftab = Hashtbl.create 32 in
    (* last binding wins, like [st_func_ids] *)
    List.iter2
      (fun (f : Ir.func) fi -> Hashtbl.replace ftab f.Ir.fname fi)
      modul.Ir.funcs infos;
    List.iter2 (check_func ftab) modul.Ir.funcs infos;
    Array.of_list infos
  with
  | infos -> Some infos
  | exception Not_bankable -> None

(* --- register-bank layout --------------------------------------------- *)

(* Frame layout, in slots: [0] = return value, then registers, then
   arguments; phi scratch and interned constants are appended during
   lowering.  Computed for every function before any body is lowered,
   because call sites marshal arguments directly into the callee's
   slots. *)
type klayout = {
  kl_ireg : int array; (* reg -> int-bank byte offset, or -1 *)
  kl_freg : int array; (* reg -> float-bank index, or -1 *)
  kl_akind : int array; (* param -> 0 (int) / 1 (float) *)
  kl_aslot : int array; (* param -> byte offset / index, by kind *)
  kl_ni : int; (* int slots used so far *)
  kl_nf : int;
  kl_ret : kret;
}

let layout_of (f : Ir.func) (fi : kfinfo) : klayout =
  let nregs = f.Ir.next_reg in
  let ni = ref 1 and nf = ref 1 in
  let ireg = Array.make (max 1 nregs) (-1) in
  let freg = Array.make (max 1 nregs) (-1) in
  for r = 0 to nregs - 1 do
    match fi.fi_regbank.(r) with
    | KI ->
      ireg.(r) <- !ni * 8;
      incr ni
    | KF ->
      freg.(r) <- !nf;
      incr nf
  done;
  let np = Array.length fi.fi_parbank in
  let akind = Array.make np 0 and aslot = Array.make np 0 in
  for k = 0 to np - 1 do
    match fi.fi_parbank.(k) with
    | KI ->
      akind.(k) <- 0;
      aslot.(k) <- !ni * 8;
      incr ni
    | KF ->
      akind.(k) <- 1;
      aslot.(k) <- !nf;
      incr nf
  done;
  { kl_ireg = ireg;
    kl_freg = freg;
    kl_akind = akind;
    kl_aslot = aslot;
    kl_ni = !ni;
    kl_nf = !nf;
    kl_ret = fi.fi_ret }

(* --- register-bank function lowering ----------------------------------- *)

let compile_kfunc st (cost : Config.cost) (layouts : klayout array)
    (f : Ir.func) (fi : kfinfo) (kl : klayout) : kfunc =
  let barr = Ir.block_array f in
  let bidx = Ir.block_index_map f in
  let ni = ref kl.kl_ni and nf = ref kl.kl_nf in
  (* phi scratch: one slot per phi of the densest block, per bank *)
  let maxip = ref 0 and maxfp = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      let nip = ref 0 and nfp = ref 0 in
      List.iter
        (fun (p : Ir.phi) ->
          match bank_of_ty p.Ir.pty with KI -> incr nip | KF -> incr nfp)
        b.Ir.phis;
      maxip := max !maxip !nip;
      maxfp := max !maxfp !nfp)
    f.Ir.blocks;
  let iscr =
    Array.init !maxip (fun _ ->
        let o = !ni * 8 in
        incr ni;
        o)
  in
  let fscr =
    Array.init !maxfp (fun _ ->
        let o = !nf in
        incr nf;
        o)
  in
  (* constants are interned into the frame image *)
  let iconsts = Hashtbl.create 16 and fconsts = Hashtbl.create 16 in
  let iinit = ref [] and finit = ref [] in
  let iconst (x : int64) : int =
    match Hashtbl.find_opt iconsts x with
    | Some off -> off
    | None ->
      let off = !ni * 8 in
      incr ni;
      Hashtbl.add iconsts x off;
      if x <> 0L then iinit := (off, x) :: !iinit;
      off
  in
  let fconst (x : float) : int =
    let bits = Int64.bits_of_float x in
    match Hashtbl.find_opt fconsts bits with
    | Some idx -> idx
    | None ->
      let idx = !nf in
      incr nf;
      Hashtbl.add fconsts bits idx;
      if bits <> 0L then finit := (idx, x) :: !finit;
      idx
  in
  let opbank (v : Ir.value) : kbank =
    match v with
    | Ir.Const (Ir.Cfloat _) -> KF
    | Ir.Const _ -> KI
    | Ir.Reg r -> fi.fi_regbank.(r)
    | Ir.Arg k -> fi.fi_parbank.(k)
    | Ir.Global _ -> KI
    | Ir.Funcref _ -> assert false (* rejected by [check_func] *)
  in
  let icode (v : Ir.value) : int =
    match v with
    | Ir.Const c -> iconst (to_i64 (of_const c))
    | Ir.Reg r -> kl.kl_ireg.(r)
    | Ir.Arg k -> kl.kl_aslot.(k)
    | Ir.Global g -> -global_id st g - 1
    | Ir.Funcref _ -> assert false
  in
  let fidx (v : Ir.value) : int =
    match v with
    | Ir.Const (Ir.Cfloat x) -> fconst x
    | Ir.Reg r -> kl.kl_freg.(r)
    | Ir.Arg k -> kl.kl_aslot.(k)
    | _ -> assert false
  in
  (* boxed-value slot, for the extern boundary only *)
  let kslot (v : Ir.value) : kframe -> v =
    match v with
    | Ir.Const c ->
      let k = of_const c in
      fun _ -> k
    | Ir.Global g ->
      let gi = global_id st g in
      fun kf -> VI (Int64.of_int (kglobal kf gi))
    | (Ir.Reg _ | Ir.Arg _) as v -> (
      match opbank v with
      | KI ->
        let c = icode v in
        fun kf -> VI (iget kf c)
      | KF ->
        let ix = fidx v in
        fun kf -> VF (fget kf ix))
    | Ir.Funcref _ -> fun _ -> Ops.trap "function reference in value position"
  in
  (* runtime-call operand getters; a missing operand raises the
     reference's [Failure "nth"] at its evaluation point *)
  let kint operands n : kframe -> int =
    match List.nth_opt operands n with
    | Some v ->
      let c = icode v in
      fun kf -> igeta kf c
    | None -> fun _ -> raise (Failure "nth")
  in
  let ki64 operands n : kframe -> int64 =
    match List.nth_opt operands n with
    | Some v ->
      let c = icode v in
      fun kf -> iget kf c
    | None -> fun _ -> raise (Failure "nth")
  in
  let kf64 operands n : kframe -> float =
    match List.nth_opt operands n with
    | Some v ->
      let ix = fidx v in
      fun kf -> fget kf ix
    | None -> fun _ -> raise (Failure "nth")
  in
  let krt operands n : kframe -> Local_buffer.v =
    match List.nth_opt operands n with
    | Some v -> (
      match opbank v with
      | KI ->
        let c = icode v in
        fun kf -> Local_buffer.Vi (iget kf c)
      | KF ->
        let ix = fidx v in
        fun kf -> Local_buffer.Vf (fget kf ix))
    | None -> fun _ -> raise (Failure "nth")
  in
  (* destination of instruction [i]: kind (-1 none / 0 int / 1 float)
     and slot *)
  let kdst (i : Ir.instr) : int * int =
    if i.Ir.ity = Ir.Void then (-1, 0)
    else
      match bank_of_ty i.Ir.ity with
      | KI -> (0, kl.kl_ireg.(i.Ir.id))
      | KF -> (1, kl.kl_freg.(i.Ir.id))
  in
  let compile_kruntime fn (operands : Ir.value list) (i : Ir.instr) :
      kframe -> unit =
    let dk, ds = kdst i in
    let put_i kf n = if dk >= 0 then iset kf ds (Int64.of_int n) in
    let put_b kf b = if dk >= 0 then iset kf ds (if b then 1L else 0L) in
    (* transfer value coerced into the statically chosen bank; a kind
       mismatch trips the same [Invalid_argument] as [to_i64]/[to_f64]
       would in the boxed engine, eagerly at the write instead of at
       the first use (only ill-typed IR can tell the difference) *)
    let put_rt kf (r : Local_buffer.v) =
      if dk >= 0 then
        match r with
        | Local_buffer.Vi n ->
          if dk = 0 then iset kf ds n else invalid_arg "Value.to_f64: int"
        | Local_buffer.Vf x ->
          if dk = 1 then fset kf ds x else invalid_arg "Value.to_i64: float"
    in
    match (fn : Ir.runtime_fn) with
    | Ir.Rt_get_cpu ->
      let g0 = kint operands 0 and g1 = kint operands 1 in
      fun kf ->
        let mgr, td = emgr_td kf.kec in
        let mi = g0 kf in
        let model = Config.model_of_int (mi land 3) in
        put_i kf
          (Thread_manager.get_cpu mgr td ~model ~expandable:(mi land 4 <> 0)
             ~point:(g1 kf))
    | Ir.Rt_set_fork_reg ->
      let g0 = kint operands 0
      and g1 = kint operands 1
      and g2 = krt operands 2 in
      fun kf ->
        let mgr, td = emgr_td kf.kec in
        Thread_manager.set_fork_reg mgr td ~rank:(g0 kf) ~off:(g1 kf) (g2 kf)
    | Ir.Rt_set_fork_addr ->
      let g0 = kint operands 0
      and g1 = kint operands 1
      and g2 = kint operands 2 in
      fun kf ->
        let mgr, td = emgr_td kf.kec in
        Thread_manager.set_fork_addr mgr td ~rank:(g0 kf) ~off:(g1 kf) (g2 kf)
    | Ir.Rt_validate_local ->
      let g0 = kint operands 0
      and g1 = kint operands 1
      and g2 = kint operands 2
      and g3 = krt operands 3 in
      fun kf ->
        let mgr, td = emgr_td kf.kec in
        Thread_manager.validate_local mgr td ~rank:(g0 kf) ~point:(g1 kf)
          ~off:(g2 kf) (g3 kf)
    | Ir.Rt_speculate ->
      let g0 = kint operands 0 and g1 = kint operands 1 in
      let stub =
        match List.nth_opt operands 2 with
        | Some (Ir.Funcref f) -> (
          match Hashtbl.find_opt st.st_func_ids f with
          | Some id -> Sok id
          | None -> Sunknown f)
        | Some _ -> Sbadop
        | None -> Snth
      in
      fun kf ->
        let mgr, td = emgr_td kf.kec in
        let rank = g0 kf and counter = g1 kf in
        (match stub with
        | Sok _ | Sunknown _ -> ()
        | Sbadop -> Ops.trap "MUTLS_speculate: expected a function reference"
        | Snth -> raise (Failure "nth"));
        Thread_manager.speculate mgr td ~rank ~counter (fun child ->
            krun_speculative kf.kec child stub)
    | Ir.Rt_entry_counter ->
      fun kf ->
        let _, td = emgr_td kf.kec in
        put_i kf td.Thread_data.entry_counter
    | Ir.Rt_get_fork_reg ->
      let g0 = kint operands 0 in
      fun kf ->
        let mgr, td = emgr_td kf.kec in
        put_rt kf (Thread_manager.get_fork_reg mgr td ~off:(g0 kf))
    | Ir.Rt_pick_stackaddr ->
      let g0 = kint operands 0
      and g1 = kint operands 1
      and g2 = kint operands 2 in
      fun kf ->
        let mgr, td = emgr_td kf.kec in
        put_i kf
          (Thread_manager.pick_stackaddr mgr td ~counter:(g0 kf) ~off:(g1 kf)
             ~own_addr:(g2 kf))
    | Ir.Rt_load size ->
      (* hot path: the mode match is inlined to avoid [emgr_td]'s
         tuple, and the result goes straight into the int bank *)
      let g0 = kint operands 0 in
      fun kf -> (
        match kf.kec.mode with
        | Tls (mgr, td) ->
          let x = Thread_manager.spec_load mgr td ~addr:(g0 kf) ~size in
          if dk >= 0 then iset kf ds x
        | Seq _ -> Ops.trap "TLS runtime call in sequential mode")
    | Ir.Rt_load_f64 ->
      let g0 = kint operands 0 in
      fun kf -> (
        match kf.kec.mode with
        | Tls (mgr, td) ->
          let x =
            Int64.float_of_bits
              (Thread_manager.spec_load mgr td ~addr:(g0 kf) ~size:8)
          in
          if dk >= 0 then fset kf ds x
        | Seq _ -> Ops.trap "TLS runtime call in sequential mode")
    | Ir.Rt_store size ->
      let g0 = ki64 operands 0 and g1 = kint operands 1 in
      fun kf -> (
        match kf.kec.mode with
        | Tls (mgr, td) ->
          Thread_manager.spec_store mgr td ~addr:(g1 kf) ~size (g0 kf)
        | Seq _ -> Ops.trap "TLS runtime call in sequential mode")
    | Ir.Rt_store_f64 ->
      let g0 = kf64 operands 0 and g1 = kint operands 1 in
      fun kf -> (
        match kf.kec.mode with
        | Tls (mgr, td) ->
          Thread_manager.spec_store mgr td ~addr:(g1 kf) ~size:8
            (Int64.bits_of_float (g0 kf))
        | Seq _ -> Ops.trap "TLS runtime call in sequential mode")
    | Ir.Rt_save_regvar ->
      let g0 = kint operands 0 and g1 = krt operands 1 in
      fun kf ->
        let mgr, td = emgr_td kf.kec in
        Thread_manager.save_regvar mgr td ~off:(g0 kf) (g1 kf)
    | Ir.Rt_save_stackvar ->
      let g0 = kint operands 0
      and g1 = kint operands 1
      and g2 = kint operands 2 in
      fun kf ->
        let mgr, td = emgr_td kf.kec in
        Thread_manager.save_stackvar mgr td ~off:(g0 kf) ~addr:(g1 kf)
          ~size:(g2 kf)
    | Ir.Rt_check_point ->
      let g0 = kint operands 0 in
      fun kf -> (
        match kf.kec.mode with
        | Tls (mgr, td) ->
          let b = Thread_manager.check_point mgr td ~counter:(g0 kf) in
          if dk >= 0 then iset kf ds (if b then 1L else 0L)
        | Seq _ -> Ops.trap "TLS runtime call in sequential mode")
    | Ir.Rt_commit ->
      let g0 = kint operands 0 in
      fun kf -> (
        match kf.kec.mode with
        | Tls (mgr, td) -> Thread_manager.commit mgr td ~counter:(g0 kf)
        | Seq _ -> Ops.trap "TLS runtime call in sequential mode")
    | Ir.Rt_terminate_point ->
      let g0 = kint operands 0 in
      fun kf ->
        let mgr, td = emgr_td kf.kec in
        Thread_manager.terminate_point mgr td ~counter:(g0 kf)
    | Ir.Rt_barrier_point ->
      let g0 = kint operands 0 in
      fun kf ->
        let mgr, td = emgr_td kf.kec in
        Thread_manager.barrier_point mgr td ~counter:(g0 kf)
    | Ir.Rt_return_point ->
      let g0 = kint operands 0 in
      fun kf ->
        let mgr, td = emgr_td kf.kec in
        Thread_manager.return_point mgr td ~counter:(g0 kf)
    | Ir.Rt_enter_point ->
      let g0 = kint operands 0 in
      fun kf -> (
        match kf.kec.mode with
        | Tls (mgr, td) -> Thread_manager.enter_point mgr td ~counter:(g0 kf)
        | Seq _ -> Ops.trap "TLS runtime call in sequential mode")
    | Ir.Rt_ptr_int_cast ->
      let g0 = kint operands 0 and g1 = kint operands 1 in
      fun kf ->
        let mgr, td = emgr_td kf.kec in
        Thread_manager.ptr_int_cast mgr td ~counter:(g0 kf) (g1 kf)
    | Ir.Rt_synchronize ->
      let g0 = kint operands 0 and g1 = kint operands 1 in
      fun kf ->
        let mgr, td = emgr_td kf.kec in
        put_b kf
          (Thread_manager.synchronize mgr td ~point:(g0 kf) ~rank:(g1 kf))
    | Ir.Rt_sync_counter ->
      fun kf ->
        let _, td = emgr_td kf.kec in
        put_i kf td.Thread_data.last_sync_counter
    | Ir.Rt_sync_rank ->
      fun kf ->
        let _, td = emgr_td kf.kec in
        put_i kf td.Thread_data.last_sync_rank
    | Ir.Rt_sync_entry ->
      fun kf ->
        let mgr, td = emgr_td kf.kec in
        put_i kf (Thread_manager.sync_entry mgr td)
    | Ir.Rt_bad_sync ->
      let g0 = kint operands 0 in
      fun kf ->
        let _, td = emgr_td kf.kec in
        Ops.trap "synchronization counter %d has no restore target (rank %d)"
          (g0 kf) td.Thread_data.rank
    | Ir.Rt_restore_regvar is_ptr ->
      let g0 = kint operands 0 in
      fun kf ->
        let mgr, td = emgr_td kf.kec in
        put_rt kf
          (Thread_manager.restore_regvar mgr td ~off:(g0 kf) ~is_ptr)
    | Ir.Rt_restore_stackvar ->
      let g0 = kint operands 0
      and g1 = kint operands 1
      and g2 = kint operands 2 in
      fun kf ->
        let mgr, td = emgr_td kf.kec in
        Thread_manager.restore_stackvar mgr td ~off:(g0 kf) ~addr:(g1 kf)
          ~size:(g2 kf)
  in
  let compile_kcall name (operands : Ir.value list) (i : Ir.instr) :
      kframe -> unit =
    let ci = cost.Config.instr and cc = cost.Config.call in
    let dk, ds = kdst i in
    match Hashtbl.find_opt st.st_func_ids name with
    | Some callee_id ->
      (* [check_func] guarantees arity and banks match the callee's
         layout, so arguments marshal unboxed into its slots *)
      let clay = layouts.(callee_id) in
      let n = List.length operands in
      let akind = Array.make (max 1 n) 0 in
      let asrc = Array.make (max 1 n) 0 in
      List.iteri
        (fun k v ->
          match opbank v with
          | KI ->
            akind.(k) <- 0;
            asrc.(k) <- icode v
          | KF ->
            akind.(k) <- 1;
            asrc.(k) <- fidx v)
        operands;
      let adst = clay.kl_aslot in
      let retk = clay.kl_ret in
      fun kf ->
        let ec = kf.kec in
        etick ec ci;
        etick ec cc;
        let callee = Array.unsafe_get ec.prog.kfuncs callee_id in
        let cfr = kframe_of ec callee in
        for k = 0 to n - 1 do
          if Array.unsafe_get akind k = 0 then
            Bytes.set_int64_le cfr.kib
              (Array.unsafe_get adst k)
              (iget kf (Array.unsafe_get asrc k))
          else
            Array.unsafe_set cfr.kfb
              (Array.unsafe_get adst k)
              (fget kf (Array.unsafe_get asrc k))
        done;
        exec_kframe ec callee cfr;
        (match retk with
        | KRint -> if dk >= 0 then iset kf ds (Bytes.get_int64_le cfr.kib 0)
        | KRfloat -> if dk >= 0 then fset kf ds cfr.kfb.(0)
        | KRnone -> ())
    | None ->
      (* externs and builtins evaluate boxed, as in the boxed engine;
         the result is coerced into the destination bank (eager trap
         on a kind mismatch — see the boundary note above) *)
      let slots = Array.of_list (List.map kslot operands) in
      let put_v kf (x : v) =
        if dk >= 0 then
          match x with
          | VI n ->
            if dk = 0 then iset kf ds n else invalid_arg "Value.to_f64: int"
          | VF x ->
            if dk = 1 then fset kf ds x else invalid_arg "Value.to_i64: float"
      in
      (match name with
      | "print_int" ->
        fun kf ->
          let ec = kf.kec in
          etick ec ci;
          let args = evals slots kf in
          etick ec cc;
          Buffer.add_string ec.out (Int64.to_string (to_i64 (List.hd args)))
      | "print_float" ->
        fun kf ->
          let ec = kf.kec in
          etick ec ci;
          let args = evals slots kf in
          etick ec cc;
          Buffer.add_string ec.out (Printf.sprintf "%.6g" (to_f64 (List.hd args)))
      | "print_char" ->
        fun kf ->
          let ec = kf.kec in
          etick ec ci;
          let args = evals slots kf in
          etick ec cc;
          Buffer.add_char ec.out
            (Char.chr (Int64.to_int (to_i64 (List.hd args)) land 0xff))
      | "print_newline" ->
        fun kf ->
          let ec = kf.kec in
          etick ec ci;
          let args = evals slots kf in
          etick ec cc;
          ignore args;
          Buffer.add_char ec.out '\n'
      | "malloc" ->
        fun kf ->
          let ec = kf.kec in
          etick ec ci;
          let args = evals slots kf in
          etick ec cc;
          let size = Int64.to_int (to_i64 (List.hd args)) in
          let addr = Memory.malloc ec.mem size in
          (match ec.mode with
          | Tls (mgr, _) ->
            Thread_manager.register_range mgr addr (Memory.align8 (max 8 size))
          | Seq _ -> ());
          put_v kf (VI (Int64.of_int addr))
      | "free" ->
        fun kf ->
          let ec = kf.kec in
          etick ec ci;
          let args = evals slots kf in
          etick ec cc;
          let addr = to_addr (List.hd args) in
          (match Memory.free ec.mem addr with
          | Some size -> (
            match ec.mode with
            | Tls (mgr, _) -> Thread_manager.unregister_range mgr addr size
            | Seq _ -> ())
          | None -> ())
      | _ -> (
        match Externs.lookup name with
        | Some f ->
          fun kf ->
            let ec = kf.kec in
            etick ec ci;
            let args = evals slots kf in
            etick ec cc;
            (match f args with
            | Some (Externs.Ret v) -> put_v kf v
            | Some Externs.Ret_void -> ()
            | None -> Ops.trap "call to unknown extern @%s" name)
        | None ->
          fun kf ->
            let ec = kf.kec in
            etick ec ci;
            let args = evals slots kf in
            etick ec cc;
            ignore args;
            Ops.trap "call to unknown extern @%s" name))
  in
  let compile_kop (i : Ir.instr) : kframe -> unit =
    match i.Ir.kind with
    | Ir.Binop (op, ty, a, b) -> (
      match op with
      | Ir.Fadd | Ir.Fsub | Ir.Fmul | Ir.Fdiv ->
        let d = kl.kl_freg.(i.Ir.id) and xa = fidx a and xb = fidx b in
        (match op with
        | Ir.Fadd -> fun kf -> fset kf d (fget kf xa +. fget kf xb)
        | Ir.Fsub -> fun kf -> fset kf d (fget kf xa -. fget kf xb)
        | Ir.Fmul -> fun kf -> fset kf d (fget kf xa *. fget kf xb)
        | Ir.Fdiv -> fun kf -> fset kf d (fget kf xa /. fget kf xb)
        | _ -> assert false)
      | _ -> (
        (* one body per opcode, parameterized on the truncation mask
           and sign-extension shift; semantics are [Ops.binop_i]'s,
           inlined so the int64s stay unboxed.  The second operand
           evaluates first, like the boxed engine's right-to-left
           application. *)
        let d = kl.kl_ireg.(i.Ir.id) and ca = icode a and cb = icode b in
        let m = Ops.mask_of ty and s = Ops.sshift_of ty in
        ignore s;
        match op with
        | Ir.Add ->
          fun kf ->
            iset kf d (Int64.logand m (Int64.add (iget kf ca) (iget kf cb)))
        | Ir.Sub ->
          fun kf ->
            iset kf d (Int64.logand m (Int64.sub (iget kf ca) (iget kf cb)))
        | Ir.Mul ->
          fun kf ->
            iset kf d (Int64.logand m (Int64.mul (iget kf ca) (iget kf cb)))
        | Ir.Sdiv ->
          fun kf ->
            let y = iget kf cb in
            let x = iget kf ca in
            if y = 0L then raise (Ops.Trap "division by zero")
            else
              iset kf d
                (Int64.logand m
                   (Int64.div
                      (Int64.shift_right (Int64.shift_left x s) s)
                      (Int64.shift_right (Int64.shift_left y s) s)))
        | Ir.Srem ->
          fun kf ->
            let y = iget kf cb in
            let x = iget kf ca in
            if y = 0L then raise (Ops.Trap "remainder by zero")
            else
              iset kf d
                (Int64.logand m
                   (Int64.rem
                      (Int64.shift_right (Int64.shift_left x s) s)
                      (Int64.shift_right (Int64.shift_left y s) s)))
        | Ir.And ->
          fun kf -> iset kf d (Int64.logand (iget kf ca) (iget kf cb))
        | Ir.Or ->
          fun kf ->
            iset kf d (Int64.logand m (Int64.logor (iget kf ca) (iget kf cb)))
        | Ir.Xor ->
          fun kf ->
            iset kf d (Int64.logand m (Int64.logxor (iget kf ca) (iget kf cb)))
        | Ir.Shl ->
          fun kf ->
            let y = iget kf cb in
            let x = iget kf ca in
            iset kf d
              (Int64.logand m (Int64.shift_left x (Int64.to_int y land 63)))
        | Ir.Lshr ->
          fun kf ->
            let y = iget kf cb in
            let x = iget kf ca in
            iset kf d
              (Int64.logand m
                 (Int64.shift_right_logical x (Int64.to_int y land 63)))
        | Ir.Ashr ->
          fun kf ->
            let y = iget kf cb in
            let x = iget kf ca in
            iset kf d
              (Int64.logand m
                 (Int64.shift_right
                    (Int64.shift_right (Int64.shift_left x s) s)
                    (Int64.to_int y land 63)))
        | Ir.Fadd | Ir.Fsub | Ir.Fmul | Ir.Fdiv -> assert false))
    | Ir.Icmp (op, ty, a, b) -> (
      let d = kl.kl_ireg.(i.Ir.id) and ca = icode a and cb = icode b in
      let s = Ops.sshift_of ty in
      match op with
      | Ir.Ieq ->
        fun kf ->
          let y = iget kf cb in
          let x = iget kf ca in
          iset kf d (if x = y then 1L else 0L)
      | Ir.Ine ->
        fun kf ->
          let y = iget kf cb in
          let x = iget kf ca in
          iset kf d (if x <> y then 1L else 0L)
      | Ir.Islt ->
        fun kf ->
          let y = Int64.shift_right (Int64.shift_left (iget kf cb) s) s in
          let x = Int64.shift_right (Int64.shift_left (iget kf ca) s) s in
          iset kf d (if x < y then 1L else 0L)
      | Ir.Isle ->
        fun kf ->
          let y = Int64.shift_right (Int64.shift_left (iget kf cb) s) s in
          let x = Int64.shift_right (Int64.shift_left (iget kf ca) s) s in
          iset kf d (if x <= y then 1L else 0L)
      | Ir.Isgt ->
        fun kf ->
          let y = Int64.shift_right (Int64.shift_left (iget kf cb) s) s in
          let x = Int64.shift_right (Int64.shift_left (iget kf ca) s) s in
          iset kf d (if x > y then 1L else 0L)
      | Ir.Isge ->
        fun kf ->
          let y = Int64.shift_right (Int64.shift_left (iget kf cb) s) s in
          let x = Int64.shift_right (Int64.shift_left (iget kf ca) s) s in
          iset kf d (if x >= y then 1L else 0L))
    | Ir.Fcmp (op, a, b) -> (
      let d = kl.kl_ireg.(i.Ir.id) and xa = fidx a and xb = fidx b in
      match op with
      | Ir.Feq ->
        fun kf -> iset kf d (if fget kf xa = fget kf xb then 1L else 0L)
      | Ir.Fne ->
        fun kf -> iset kf d (if fget kf xa <> fget kf xb then 1L else 0L)
      | Ir.Flt ->
        fun kf -> iset kf d (if fget kf xa < fget kf xb then 1L else 0L)
      | Ir.Fle ->
        fun kf -> iset kf d (if fget kf xa <= fget kf xb then 1L else 0L)
      | Ir.Fgt ->
        fun kf -> iset kf d (if fget kf xa > fget kf xb then 1L else 0L)
      | Ir.Fge ->
        fun kf -> iset kf d (if fget kf xa >= fget kf xb then 1L else 0L))
    | Ir.Alloca size ->
      let d = kl.kl_ireg.(i.Ir.id) in
      let asize = Memory.align8 size in
      fun kf ->
        let ec = kf.kec in
        let addr = Memory.align8 ec.sp in
        if addr + size > ec.stack_limit then
          Ops.trap "stack overflow in @%s" f.Ir.fname;
        ec.sp <- addr + asize;
        iset kf d (Int64.of_int addr)
    | Ir.Load (ty, a) -> (
      match ty with
      | Ir.I64 | Ir.Ptr ->
        let d = kl.kl_ireg.(i.Ir.id) and ca = icode a in
        fun kf -> iset kf d (Memory.read_i64 kf.kec.mem (igeta kf ca))
      | Ir.F64 ->
        let d = kl.kl_freg.(i.Ir.id) and ca = icode a in
        fun kf -> fset kf d (Memory.read_f64 kf.kec.mem (igeta kf ca))
      | Ir.I32 ->
        let d = kl.kl_ireg.(i.Ir.id) and ca = icode a in
        fun kf -> iset kf d (Memory.read_i32 kf.kec.mem (igeta kf ca))
      | Ir.I8 | Ir.I1 ->
        let d = kl.kl_ireg.(i.Ir.id) and ca = icode a in
        fun kf -> iset kf d (Memory.read_i8 kf.kec.mem (igeta kf ca))
      | Ir.Void -> fun _ -> Ops.trap "load void")
    | Ir.Store (ty, v, a) -> (
      (* value before address, like the reference *)
      match ty with
      | Ir.I64 | Ir.Ptr ->
        let cv = icode v and ca = icode a in
        fun kf ->
          let x = iget kf cv in
          Memory.write_i64 kf.kec.mem (igeta kf ca) x
      | Ir.F64 ->
        let xv = fidx v and ca = icode a in
        fun kf ->
          let x = fget kf xv in
          Memory.write_f64 kf.kec.mem (igeta kf ca) x
      | Ir.I32 ->
        let cv = icode v and ca = icode a in
        fun kf ->
          let x = iget kf cv in
          Memory.write_i32 kf.kec.mem (igeta kf ca) x
      | Ir.I8 | Ir.I1 ->
        let cv = icode v and ca = icode a in
        fun kf ->
          let x = iget kf cv in
          Memory.write_i8 kf.kec.mem (igeta kf ca) x
      | Ir.Void -> fun _ -> Ops.trap "store void")
    | Ir.Ptradd (a, o) ->
      let d = kl.kl_ireg.(i.Ir.id) and ca = icode a and co = icode o in
      fun kf ->
        let y = iget kf co in
        let x = iget kf ca in
        iset kf d (Int64.add x y)
    | Ir.Select (c, a, b) -> (
      let cc = icode c in
      match bank_of_ty i.Ir.ity with
      | KI ->
        let d = kl.kl_ireg.(i.Ir.id) and ca = icode a and cb = icode b in
        fun kf ->
          iset kf d (if iget kf cc <> 0L then iget kf ca else iget kf cb)
      | KF ->
        let d = kl.kl_freg.(i.Ir.id) and xa = fidx a and xb = fidx b in
        fun kf ->
          fset kf d (if iget kf cc <> 0L then fget kf xa else fget kf xb))
    | Ir.Cast (c, t1, t2, v) -> (
      match c with
      | Ir.Trunc ->
        let d = kl.kl_ireg.(i.Ir.id) and cv = icode v in
        let m = Ops.mask_of t2 in
        fun kf -> iset kf d (Int64.logand m (iget kf cv))
      | Ir.Zext | Ir.Ptrtoint | Ir.Inttoptr ->
        let d = kl.kl_ireg.(i.Ir.id) and cv = icode v in
        fun kf -> iset kf d (iget kf cv)
      | Ir.Sext ->
        let d = kl.kl_ireg.(i.Ir.id) and cv = icode v in
        let m = Ops.mask_of t2 and s = Ops.sshift_of t1 in
        fun kf ->
          iset kf d
            (Int64.logand m
               (Int64.shift_right (Int64.shift_left (iget kf cv) s) s))
      | Ir.Fptosi ->
        let d = kl.kl_ireg.(i.Ir.id) and xv = fidx v in
        let m = Ops.mask_of t2 in
        fun kf -> iset kf d (Int64.logand m (Int64.of_float (fget kf xv)))
      | Ir.Sitofp ->
        let d = kl.kl_freg.(i.Ir.id) and cv = icode v in
        let s = Ops.sshift_of t1 in
        fun kf ->
          fset kf d
            (Int64.to_float
               (Int64.shift_right (Int64.shift_left (iget kf cv) s) s))
      | Ir.Bitcast -> (
        match (t1, t2) with
        | Ir.F64, _ ->
          let d = kl.kl_ireg.(i.Ir.id) and xv = fidx v in
          fun kf -> iset kf d (Int64.bits_of_float (fget kf xv))
        | _, Ir.F64 ->
          let d = kl.kl_freg.(i.Ir.id) and cv = icode v in
          fun kf -> fset kf d (Int64.float_of_bits (iget kf cv))
        | _, _ -> (
          match bank_of_ty i.Ir.ity with
          | KI ->
            let d = kl.kl_ireg.(i.Ir.id) and cv = icode v in
            fun kf -> iset kf d (iget kf cv)
          | KF ->
            let d = kl.kl_freg.(i.Ir.id) and xv = fidx v in
            fun kf -> fset kf d (fget kf xv))))
    | Ir.Call _ -> assert false (* handled by the block compiler *)
  in
  let kedge_to pred_name ti =
    let tb = barr.(ti) in
    match tb.Ir.phis with
    | [] -> KEok { ktgt = ti; kmoves = [||]; kwrites = [||] }
    | [ p ] -> (
      (* single phi: no parallel-move hazard, move directly *)
      match List.assoc_opt pred_name p.Ir.incoming with
      | Some v ->
        let mv =
          match bank_of_ty p.Ir.pty with
          | KI ->
            let d = kl.kl_ireg.(p.Ir.pid) and c = icode v in
            fun kf -> iset kf d (iget kf c)
          | KF ->
            let d = kl.kl_freg.(p.Ir.pid) and x = fidx v in
            fun kf -> fset kf d (fget kf x)
        in
        KEok { ktgt = ti; kmoves = [| mv |]; kwrites = [||] }
      | None ->
        KEtrap
          { kpre = [||];
            kmsg =
              Printf.sprintf "phi in %s has no incoming for %s" tb.Ir.bname
                pred_name })
    | phis ->
      let rec build nri nrf moves writes = function
        | [] ->
          KEok
            { ktgt = ti;
              kmoves = Array.of_list (List.rev moves);
              kwrites = Array.of_list (List.rev writes) }
        | (p : Ir.phi) :: rest -> (
          match List.assoc_opt pred_name p.Ir.incoming with
          | Some v -> (
            match bank_of_ty p.Ir.pty with
            | KI ->
              let sc = iscr.(nri)
              and d = kl.kl_ireg.(p.Ir.pid)
              and c = icode v in
              build (nri + 1) nrf
                ((fun kf -> iset kf sc (iget kf c)) :: moves)
                ((fun kf -> iset kf d (iget kf sc)) :: writes)
                rest
            | KF ->
              let sc = fscr.(nrf)
              and d = kl.kl_freg.(p.Ir.pid)
              and x = fidx v in
              build nri (nrf + 1)
                ((fun kf -> fset kf sc (fget kf x)) :: moves)
                ((fun kf -> fset kf d (fget kf sc)) :: writes)
                rest)
          | None ->
            KEtrap
              { kpre = Array.of_list (List.rev moves);
                kmsg =
                  Printf.sprintf "phi in %s has no incoming for %s" tb.Ir.bname
                    pred_name })
      in
      build 0 0 [] [] phis
  in
  let kedge pred_name tname =
    match Hashtbl.find_opt bidx tname with
    | Some ti -> kedge_to pred_name ti
    | None ->
      KEtrap
        { kpre = [||];
          kmsg = Printf.sprintf "unknown block %s in @%s" tname f.Ir.fname }
  in
  let compile_kblock (b : Ir.block) : kblock =
    let items_rev = ref [] in
    let ops_rev = ref [] and nops = ref 0 in
    let ticks_rev = ref [] and nticks = ref 0 in
    let counts_rev = ref [] in
    let push_tick c =
      ticks_rev := c :: !ticks_rev;
      incr nticks
    in
    let add_op op ticks =
      List.iter push_tick ticks;
      ops_rev := op :: !ops_rev;
      incr nops;
      counts_rev := List.length ticks :: !counts_rev
    in
    let flush_seg () =
      if !nops > 0 || !nticks > 0 then begin
        items_rev :=
          Kseg
            { kops = Array.of_list (List.rev !ops_rev);
              kticks = Array.of_list (List.rev !ticks_rev);
              kcounts = Array.of_list (List.rev !counts_rev) }
          :: !items_rev;
        ops_rev := [];
        nops := 0;
        ticks_rev := [];
        nticks := 0;
        counts_rev := []
      end
    in
    List.iter
      (fun (i : Ir.instr) ->
        match i.Ir.kind with
        | Ir.Call (name, operands) -> (
          match Ir.classify_callee name with
          | Ir.Runtime fn ->
            flush_seg ();
            items_rev :=
              Kcall (compile_kruntime fn operands i) :: !items_rev
          | Ir.Runtime_unknown ->
            flush_seg ();
            items_rev :=
              Kcall
                (fun kf ->
                  let _ = emgr_td kf.kec in
                  Ops.trap "unknown runtime call @%s" name)
              :: !items_rev
          | Ir.Intrinsic ->
            (* sequential no-op, but it costs one instr tick *)
            add_op (fun _ -> ()) [ cost.Config.instr ]
          | Ir.Other ->
            flush_seg ();
            items_rev := Kcall (compile_kcall name operands i) :: !items_rev)
        | Ir.Load _ | Ir.Store _ ->
          add_op (compile_kop i) [ cost.Config.instr; cost.Config.mem ]
        | _ -> add_op (compile_kop i) [ cost.Config.instr ])
      b.Ir.insts;
    (* the terminator's tick is the segment's trailing tick *)
    push_tick cost.Config.instr;
    flush_seg ();
    let kterm =
      match b.Ir.term with
      | Ir.Ret None -> KTret_void
      | Ir.Ret (Some v) -> (
        match opbank v with
        | KI -> KTret_i (icode v)
        | KF -> KTret_f (fidx v))
      | Ir.Br l -> KTbr (kedge b.Ir.bname l)
      | Ir.Cbr (c, l1, l2) ->
        KTcbr (icode c, kedge b.Ir.bname l1, kedge b.Ir.bname l2)
      | Ir.Switch (v, d, cases) ->
        let seen = Hashtbl.create 16 in
        let uniq =
          List.filter
            (fun (k, _) ->
              if Hashtbl.mem seen k then false
              else begin
                Hashtbl.add seen k ();
                true
              end)
            cases
        in
        let arr = Array.of_list uniq in
        Array.sort (fun (a, _) (b, _) -> Int64.compare a b) arr;
        KTswitch
          ( icode v,
            Array.map fst arr,
            Array.map (fun (_, l) -> kedge b.Ir.bname l) arr,
            kedge b.Ir.bname d )
      | Ir.Unreachable ->
        KTunreachable
          (Printf.sprintf "unreachable executed in @%s/%s" f.Ir.fname
             b.Ir.bname)
    in
    { kitems = Array.of_list (List.rev !items_rev); kterm }
  in
  let k_blocks = Array.map compile_kblock barr in
  let k_entry =
    if Array.length barr > 0 && barr.(0).Ir.phis <> [] then
      Some (kedge_to "" 0)
    else None
  in
  let image = Bytes.make (!ni * 8) '\000' in
  List.iter (fun (off, x) -> Bytes.set_int64_le image off x) !iinit;
  let fimage =
    (* slot 0 is the float return; a function with no float slots
       beyond it touches no floats at all (a float return operand
       would have allocated one), so the frame shares [empty_floats] *)
    if !nf <= 1 then [||]
    else begin
      let a = Array.make !nf 0.0 in
      List.iter (fun (ix, x) -> a.(ix) <- x) !finit;
      a
    end
  in
  { k_name = f.Ir.fname;
    k_image = image;
    k_fimage = fimage;
    k_akind = kl.kl_akind;
    k_aslot = kl.kl_aslot;
    k_ret = kl.kl_ret;
    k_entry;
    k_blocks }

let compile ?(cost = Config.default_cost) (modul : Ir.modul) : prog =
  let st =
    { st_func_ids = Hashtbl.create 32;
      st_globals = Hashtbl.create 32;
      st_nglobals = 0 }
  in
  (* ids first: bodies resolve callees against the final table, and a
     duplicate name resolves to its last binding (as with hash-based
     name lookup in the reference) *)
  List.iteri
    (fun i (f : Ir.func) -> Hashtbl.replace st.st_func_ids f.Ir.fname i)
    modul.Ir.funcs;
  let cfuncs =
    Array.of_list (List.map (compile_func st cost) modul.Ir.funcs)
  in
  (* the banked lowering interns globals through the same [st], so it
     must run before global names are materialized *)
  let kfuncs =
    match analyze modul with
    | None -> [||]
    | Some infos ->
      let funcs = Array.of_list modul.Ir.funcs in
      let layouts = Array.map2 layout_of funcs infos in
      Array.init (Array.length funcs) (fun i ->
          compile_kfunc st cost layouts funcs.(i) infos.(i) layouts.(i))
  in
  let gnames = Array.make (max 1 st.st_nglobals) "" in
  Hashtbl.iter (fun g i -> gnames.(i) <- g) st.st_globals;
  { modul;
    cost;
    cfuncs;
    kfuncs;
    func_ids = st.st_func_ids;
    nglobals = st.st_nglobals;
    gnames }

(* --- running a compiled program --------------------------------------- *)

let cost_of prog = prog.cost
let modul_of prog = prog.modul
let nglobals prog = prog.nglobals

let make_ectx prog ~mem ~mode ~out ~sp ~stack_limit =
  { prog;
    mem;
    mode;
    out;
    gaddrs = Array.make (max 1 prog.nglobals) None;
    igaddrs = Array.make (max 1 prog.nglobals) (-1);
    sp;
    stack_limit }

let call ec name (args : v array) =
  let prog = ec.prog in
  if Array.length prog.kfuncs > 0 then
    match Hashtbl.find_opt prog.func_ids name with
    | Some id -> exec_kfunc_boxed ec prog.kfuncs.(id) args
    | None -> Ops.trap "call to unknown function @%s" name
  else exec_cfunc ec (find_cfunc prog name) args
