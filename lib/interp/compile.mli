(** The compiled MIR execution engine: prepare once, run many.

    [compile] lowers a module into dense arrays — blocks indexed by
    int, operands pre-resolved into slot closures, phi nodes lowered
    to per-predecessor-edge parallel moves, switches to sorted arrays
    with binary search, and callees (including the interned MUTLS_*
    runtime calls) classified once at compile time.  Per-op cost ticks
    are pre-materialized per straight-line segment and committed in
    one accumulator write whenever no quantum flush can land inside
    the segment ({!Mutls_runtime.Thread_manager.tick_batch}), which
    preserves the reference interpreter's exact flush/yield/trace
    sequence — see DESIGN.md, "Execution engine".

    Errors raise {!Ops.Trap}, with the same messages and at the same
    execution points as the reference interpreter ({!Reference}):
    malformed constructs compile to closures that trap when executed,
    never at compile time. *)

(** {1 Compiled programs} *)

type prog
(** A compiled module, reusable across runs.  The lowering bakes in a
    cost model; recompile to run under a different one. *)

val compile : ?cost:Mutls_runtime.Config.cost -> Mutls_mir.Ir.modul -> prog

val cost_of : prog -> Mutls_runtime.Config.cost
val modul_of : prog -> Mutls_mir.Ir.modul
val nglobals : prog -> int

(** {1 Execution} *)

(** Accounting mode: plain accumulation (sequential baseline) or the
    TLS runtime's quantum-flushed virtual time. *)
type mode =
  | Seq of seq_state
  | Tls of Mutls_runtime.Thread_manager.t * Mutls_runtime.Thread_data.t

and seq_state = { mutable seq_cost : float }

type ectx
(** Per-thread execution context: memory, mode, output buffer, stack
    window, and the per-run global-address cache. *)

val make_ectx :
  prog ->
  mem:Memory.t ->
  mode:mode ->
  out:Buffer.t ->
  sp:int ->
  stack_limit:int ->
  ectx

val call : ectx -> string -> Value.v array -> Value.v option
(** Execute a function by name (raises {!Ops.Trap} when unknown). *)
