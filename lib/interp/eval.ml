(* Public entry points of the MIR execution engine.  Runs either the
   untransformed module (sequential baseline, MUTLS source intrinsics
   are no-ops) or the speculator-pass output under the TLS runtime and
   the discrete-event engine.

   Execution goes through the compiled engine (Compile): the module is
   lowered once into closure-threaded code and can then be run many
   times — [prepare] plus the [*_prepared] entry points expose that
   reuse, and the plain [run_sequential]/[run_tls] wrappers compile on
   the fly.  The retained tree-walking interpreter lives in Reference
   and is observably equivalent (enforced by test/test_engine.ml). *)

open Mutls_runtime
open Value

exception Trap = Ops.Trap

(* --- prepared programs ------------------------------------------------ *)

type prog = Compile.prog

let prepare ?(cost = Config.default_cost) modul = Compile.compile ~cost modul

(* A prepared program bakes in its cost model; re-lower when a run
   asks for a different one. *)
let ensure_cost cost prog =
  if Compile.cost_of prog = cost then prog
  else Compile.compile ~cost (Compile.modul_of prog)

(* --- sequential baseline ---------------------------------------------- *)

type seq_result = { sret : v option; soutput : string; scost : float }

let default_heap = 32 * 1024 * 1024
let default_stack = 1 lsl 20
let default_globals = 32 * 1024 * 1024

(* Run-level telemetry for the compiled engine: run and trap counts.
   Sequential runs have no Config, so they record into the
   process-wide default registry; TLS runs use [cfg.telemetry]. *)
let tele_run reg ~engine_label =
  if Mutls_obs.Telemetry.enabled reg then
    Mutls_obs.Telemetry.incr
      (Mutls_obs.Telemetry.counter ~help:"compiled-engine runs"
         ~labels:[ ("engine", engine_label) ] reg "mutls_runs_total")

let tele_trap reg =
  if Mutls_obs.Telemetry.enabled reg then
    Mutls_obs.Telemetry.incr
      (Mutls_obs.Telemetry.counter ~help:"program traps" reg "mutls_traps_total")

let run_sequential_prepared ?(heap_size = default_heap)
    ?(globals_size = default_globals) (prog : prog) =
  tele_run Mutls_obs.Telemetry.default ~engine_label:"sequential";
  let modul = Compile.modul_of prog in
  let mem =
    Memory.create ~globals_size ~heap_size ~stack_size:default_stack ~nstacks:1
  in
  ignore (Memory.install_globals mem modul);
  let base, limit = Memory.stack_slot mem 0 in
  let seq = { Compile.seq_cost = 0.0 } in
  let out = Buffer.create 256 in
  let ec =
    Compile.make_ectx prog ~mem ~mode:(Compile.Seq seq) ~out ~sp:base
      ~stack_limit:limit
  in
  let ret = Compile.call ec "main" [||] in
  { sret = ret; soutput = Buffer.contents out; scost = seq.Compile.seq_cost }

(* Run the untransformed module sequentially; [scost] is Ts in virtual
   cycles under the same cost model as the TLS runs. *)
let run_sequential ?(cost = Config.default_cost) ?heap_size ?globals_size modul
    =
  run_sequential_prepared ?heap_size ?globals_size (Compile.compile ~cost modul)

(* --- TLS execution ---------------------------------------------------- *)

type tls_result = {
  tret : v option;
  toutput : string;
  tfinish : float; (* virtual time when the main thread completed *)
  tmain_stats : Stats.t;
  tretired : Thread_manager.retired list;
  tmgr : Thread_manager.t; (* post-run inspection: fault-injection
                              counts, degraded flag *)
}

let run_tls_prepared ?(heap_size = default_heap)
    ?(globals_size = default_globals) ?policy (cfg : Config.t) (prog : prog) =
  tele_run cfg.Config.telemetry ~engine_label:"tls";
  let prog = ensure_cost cfg.cost prog in
  let modul = Compile.modul_of prog in
  let mem =
    Memory.create ~globals_size ~heap_size ~stack_size:default_stack
      ~nstacks:(max 1 cfg.ncpus)
  in
  let globals_used = Memory.install_globals mem modul in
  let engine = Mutls_sim.Engine.create () in
  (* Forward engine-level scheduling events into the configured trace
     sink (thread = -1: they belong to no TLS thread). *)
  let sink = cfg.Config.trace_sink in
  if sink.Mutls_obs.Trace.enabled then
    Mutls_sim.Engine.set_tracer engine
      (Some
         (fun time ev ->
           let what, info =
             match ev with
             | Mutls_sim.Engine.Trace_spawn -> ("spawn", 0)
             | Mutls_sim.Engine.Trace_block -> ("block", 0)
             | Mutls_sim.Engine.Trace_wake n -> ("wake", n)
           in
           sink.Mutls_obs.Trace.emit
             {
               Mutls_obs.Trace.time;
               thread = -1;
               rank = -1;
               main = false;
               event = Mutls_obs.Trace.Sched { what; info };
             }));
  let mgr = Thread_manager.create ?policy cfg engine (Memory.memio mem) in
  (* Register the global address space: globals + every thread stack
     (non-speculative stack variables are global per §IV-G1). *)
  if globals_used > 0 then
    Thread_manager.register_range mgr mem.Memory.globals_base globals_used;
  Thread_manager.register_range mgr mem.Memory.stack_base
    (max 1 cfg.ncpus * default_stack);
  let base, limit = Memory.stack_slot mem 0 in
  let out = Buffer.create 256 in
  let ec =
    Compile.make_ectx prog ~mem
      ~mode:(Compile.Tls (mgr, Thread_manager.main mgr))
      ~out ~sp:base ~stack_limit:limit
  in
  let ret = ref None in
  let finish = ref 0.0 in
  let main_body () =
    ret := Compile.call ec "main" [||];
    Thread_manager.shutdown mgr;
    finish := Mutls_sim.Engine.now engine
  in
  (try ignore (Mutls_sim.Engine.run engine main_body)
   with Trap _ as e ->
     tele_trap cfg.Config.telemetry;
     raise e);
  {
    tret = !ret;
    toutput = Buffer.contents out;
    tfinish = !finish;
    tmain_stats = (Thread_manager.main mgr).Thread_data.stats;
    tretired = Thread_manager.retired mgr;
    tmgr = mgr;
  }

(* Run the speculator-pass output under the TLS runtime on
   [cfg.ncpus] virtual CPUs. *)
let run_tls ?heap_size ?globals_size ?policy (cfg : Config.t) modul =
  run_tls_prepared ?heap_size ?globals_size ?policy cfg
    (Compile.compile ~cost:cfg.cost modul)

(* --- parallel TLS execution ------------------------------------------- *)

(* Same program, same runtime, different engine: speculative threads
   run as fibers on [cfg.domains] real OCaml 5 domains under the
   work-stealing scheduler (Mutls_par.Sched) instead of the
   deterministic simulator.  Time is wall-clock seconds; fork decisions
   and rollback counts are scheduling-dependent, but the TLS protocol
   keeps outputs equal to the simulator oracle's.  Differences from
   [run_tls_prepared]:
     - the trace sink is wrapped in [Trace.synchronized] (one mutex per
       run) because every domain emits into it;
     - engine-level Sched records (spawn/block/wake) are not emitted —
       the parallel scheduler has no deterministic event loop to
       instrument;
     - [tfinish] is wall-clock seconds from scheduler start to main's
       completion. *)
let run_tls_par_prepared ?(heap_size = default_heap)
    ?(globals_size = default_globals) ?policy (cfg : Config.t) (prog : prog) =
  tele_run cfg.Config.telemetry ~engine_label:"tls-par";
  let prog = ensure_cost cfg.cost prog in
  let modul = Compile.modul_of prog in
  let mem =
    Memory.create ~globals_size ~heap_size ~stack_size:default_stack
      ~nstacks:(max 1 cfg.ncpus)
  in
  let globals_used = Memory.install_globals mem modul in
  let cfg =
    {
      cfg with
      Config.trace_sink = Mutls_obs.Trace.synchronized cfg.Config.trace_sink;
    }
  in
  let ret = ref None in
  let finish = ref 0.0 in
  let out = Buffer.create 256 in
  let mgr_ref = ref None in
  (try
     ignore
       (Mutls_par.Sched.run ~telemetry:cfg.Config.telemetry
          ~domains:cfg.Config.domains (fun sched ->
            let exec = Mutls_par.Sched.exec sched in
            let mgr =
              Thread_manager.create_exec ?policy cfg exec (Memory.memio mem)
            in
            mgr_ref := Some mgr;
            if globals_used > 0 then
              Thread_manager.register_range mgr mem.Memory.globals_base
                globals_used;
            Thread_manager.register_range mgr mem.Memory.stack_base
              (max 1 cfg.ncpus * default_stack);
            let base, limit = Memory.stack_slot mem 0 in
            let ec =
              Compile.make_ectx prog ~mem
                ~mode:(Compile.Tls (mgr, Thread_manager.main mgr))
                ~out ~sp:base ~stack_limit:limit
            in
            ret := Compile.call ec "main" [||];
            Thread_manager.shutdown mgr;
            finish := Thread_manager.now mgr))
   with Trap _ as e ->
     tele_trap cfg.Config.telemetry;
     raise e);
  let mgr =
    match !mgr_ref with
    | Some mgr -> mgr
    | None -> invalid_arg "run_tls_par: scheduler never ran main"
  in
  {
    tret = !ret;
    toutput = Buffer.contents out;
    tfinish = !finish;
    tmain_stats = (Thread_manager.main mgr).Thread_data.stats;
    tretired = Thread_manager.retired mgr;
    tmgr = mgr;
  }

let run_tls_par ?heap_size ?globals_size ?policy (cfg : Config.t) modul =
  run_tls_par_prepared ?heap_size ?globals_size ?policy cfg
    (Compile.compile ~cost:cfg.cost modul)
