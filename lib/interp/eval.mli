(** Public entry points of the MIR execution engine.  Runs either the
    untransformed module (sequential baseline; MUTLS source intrinsics
    are no-ops) or the speculator-pass output under the TLS runtime on
    the discrete-event engine.  All MUTLS_* runtime-library calls are
    dispatched to {!Mutls_runtime.Thread_manager}.

    Execution goes through the compiled engine ({!Compile}); the
    retained tree-walking interpreter ({!Reference}) is observably
    equivalent, which the engine tests enforce. *)

exception Trap of string
(** Runtime error in the interpreted program (division by zero, stack
    overflow, unknown callee, executed [unreachable], ...).  The same
    exception as {!Ops.Trap}, raised by both engines. *)

(** {1 Prepared programs}

    [prepare] compiles a module once; the [*_prepared] entry points
    reuse the compiled form across runs (the figure sweeps run one
    benchmark at many CPU counts).  A prepared program bakes in its
    cost model and is transparently re-lowered when a run asks for a
    different one. *)

type prog

val prepare : ?cost:Mutls_runtime.Config.cost -> Mutls_mir.Ir.modul -> prog

(** {1 Sequential baseline} *)

type seq_result = {
  sret : Value.v option;  (** main's return value *)
  soutput : string;  (** everything printed *)
  scost : float;  (** Ts in virtual cycles, under the same cost model *)
}

val default_heap : int
val default_stack : int
val default_globals : int

val run_sequential :
  ?cost:Mutls_runtime.Config.cost ->
  ?heap_size:int ->
  ?globals_size:int ->
  Mutls_mir.Ir.modul ->
  seq_result

val run_sequential_prepared :
  ?heap_size:int -> ?globals_size:int -> prog -> seq_result

(** {1 TLS execution} *)

type tls_result = {
  tret : Value.v option;
  toutput : string;
  tfinish : float;  (** virtual time when the main thread completed *)
  tmain_stats : Mutls_runtime.Stats.t;
  tretired : Mutls_runtime.Thread_manager.retired list;
  tmgr : Mutls_runtime.Thread_manager.t;
      (** the run's manager, for post-run inspection (injected-fault
          counts, the {!Mutls_runtime.Thread_manager.degraded} flag) *)
}

val run_tls :
  ?heap_size:int ->
  ?globals_size:int ->
  ?policy:Mutls_runtime.Policy.t ->
  Mutls_runtime.Config.t ->
  Mutls_mir.Ir.modul ->
  tls_result
(** Run the speculator-pass output on [cfg.ncpus] virtual CPUs.
    [policy] overrides the speculation-policy engine instance (default:
    {!Mutls_runtime.Policy.of_config} on the configuration). *)

val run_tls_prepared :
  ?heap_size:int ->
  ?globals_size:int ->
  ?policy:Mutls_runtime.Policy.t ->
  Mutls_runtime.Config.t ->
  prog ->
  tls_result

(** {1 Parallel TLS execution}

    Same program and runtime on the work-stealing domains backend
    ({!Mutls_par.Sched}) instead of the deterministic simulator:
    speculative threads are fibers spread over [cfg.domains] real
    OCaml 5 domains.  Scheduling (and therefore fork decisions,
    rollback counts, [tfinish] — here wall-clock seconds) varies run to
    run, but the TLS protocol keeps [tret]/[toutput] equal to the
    simulator oracle's on the same program and policy.  The configured
    trace sink is automatically wrapped in
    {!Mutls_obs.Trace.synchronized}; engine-level [Sched] records are
    not emitted.
    @raise Mutls_par.Sched.Deadlock (would indicate a runtime bug) *)

val run_tls_par :
  ?heap_size:int ->
  ?globals_size:int ->
  ?policy:Mutls_runtime.Policy.t ->
  Mutls_runtime.Config.t ->
  Mutls_mir.Ir.modul ->
  tls_result

val run_tls_par_prepared :
  ?heap_size:int ->
  ?globals_size:int ->
  ?policy:Mutls_runtime.Policy.t ->
  Mutls_runtime.Config.t ->
  prog ->
  tls_result
