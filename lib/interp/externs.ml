(* External functions callable from MIR programs.  The pure math
   functions are "known, safe external calls" (paper §IV-C) and may run
   speculatively; the I/O and allocation functions are unsafe and force
   terminate points in speculative code. *)

open Value

type outcome = Ret of v | Ret_void

(* Names that never require speculation to stop. *)
let safe_names =
  [ "abs"; "labs"; "fabs"; "sqrt"; "sin"; "cos"; "tan"; "exp"; "log";
    "pow"; "floor"; "ceil"; "fmod"; "min_i64"; "max_i64"; "fmin"; "fmax" ]

let is_safe name = List.mem name safe_names

(* Declarations every front-end injects. *)
let declarations : Mutls_mir.Ir.edecl list =
  let open Mutls_mir.Ir in
  [
    { ename = "abs"; eret = I64; eparams = [ I64 ] };
    { ename = "labs"; eret = I64; eparams = [ I64 ] };
    { ename = "fabs"; eret = F64; eparams = [ F64 ] };
    { ename = "sqrt"; eret = F64; eparams = [ F64 ] };
    { ename = "sin"; eret = F64; eparams = [ F64 ] };
    { ename = "cos"; eret = F64; eparams = [ F64 ] };
    { ename = "tan"; eret = F64; eparams = [ F64 ] };
    { ename = "exp"; eret = F64; eparams = [ F64 ] };
    { ename = "log"; eret = F64; eparams = [ F64 ] };
    { ename = "pow"; eret = F64; eparams = [ F64; F64 ] };
    { ename = "floor"; eret = F64; eparams = [ F64 ] };
    { ename = "ceil"; eret = F64; eparams = [ F64 ] };
    { ename = "fmod"; eret = F64; eparams = [ F64; F64 ] };
    { ename = "fmin"; eret = F64; eparams = [ F64; F64 ] };
    { ename = "fmax"; eret = F64; eparams = [ F64; F64 ] };
    { ename = "min_i64"; eret = I64; eparams = [ I64; I64 ] };
    { ename = "max_i64"; eret = I64; eparams = [ I64; I64 ] };
    { ename = "print_int"; eret = Void; eparams = [ I64 ] };
    { ename = "print_float"; eret = Void; eparams = [ F64 ] };
    { ename = "print_char"; eret = Void; eparams = [ I64 ] };
    { ename = "print_newline"; eret = Void; eparams = [] };
    { ename = "malloc"; eret = Ptr; eparams = [ I64 ] };
    { ename = "free"; eret = Void; eparams = [ Ptr ] };
  ]

let f1 f args =
  match args with
  | [ a ] -> Ret (VF (f (to_f64 a)))
  | _ -> invalid_arg "extern: arity"

let f2 f args =
  match args with
  | [ a; b ] -> Ret (VF (f (to_f64 a) (to_f64 b)))
  | _ -> invalid_arg "extern: arity"

(* Pure externs; I/O and allocation are handled by the evaluator, which
   owns the output buffer and the heap.  [lookup] resolves a name to
   its implementation once, so the compiled engine binds the closure at
   compile time; the implementation itself may still return [None] for
   an argument shape it does not accept (the caller treats that like an
   unknown extern). *)
let lookup name : (v list -> outcome option) option =
  match name with
  | "abs" | "labs" ->
    Some
      (function [ a ] -> Some (Ret (VI (Int64.abs (to_i64 a)))) | _ -> None)
  | "min_i64" ->
    Some
      (function
      | [ a; b ] -> Some (Ret (VI (min (to_i64 a) (to_i64 b))))
      | _ -> None)
  | "max_i64" ->
    Some
      (function
      | [ a; b ] -> Some (Ret (VI (max (to_i64 a) (to_i64 b))))
      | _ -> None)
  | "fabs" -> Some (fun args -> Some (f1 Float.abs args))
  | "sqrt" -> Some (fun args -> Some (f1 sqrt args))
  | "sin" -> Some (fun args -> Some (f1 sin args))
  | "cos" -> Some (fun args -> Some (f1 cos args))
  | "tan" -> Some (fun args -> Some (f1 tan args))
  | "exp" -> Some (fun args -> Some (f1 exp args))
  | "log" -> Some (fun args -> Some (f1 log args))
  | "floor" -> Some (fun args -> Some (f1 floor args))
  | "ceil" -> Some (fun args -> Some (f1 ceil args))
  | "pow" -> Some (fun args -> Some (f2 ( ** ) args))
  | "fmod" -> Some (fun args -> Some (f2 Float.rem args))
  | "fmin" -> Some (fun args -> Some (f2 Float.min args))
  | "fmax" -> Some (fun args -> Some (f2 Float.max args))
  | _ -> None

let eval_pure name args =
  match lookup name with Some f -> f args | None -> None
