(** External functions callable from MIR programs.  The pure math
    functions are "known, safe external calls" (paper §IV-C) and may
    run speculatively; I/O and allocation are unsafe and force
    terminate points in speculative code. *)

type outcome = Ret of Value.v | Ret_void

val safe_names : string list
val is_safe : string -> bool

val declarations : Mutls_mir.Ir.edecl list
(** The declarations every front-end injects. *)

val lookup : string -> (Value.v list -> outcome option) option
(** Resolve a pure extern once by name, for compile-time binding.
    The outer [None] means the name is not a pure extern (I/O,
    allocation, or unknown); the implementation returns [None] for an
    argument shape it does not accept. *)

val eval_pure : string -> Value.v list -> outcome option
(** [lookup] and apply in one step; [None] for names the evaluator
    itself handles (I/O, allocation) or unknown names. *)
