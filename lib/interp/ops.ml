(* Scalar operator semantics shared by the compiled execution engine
   (Compile) and the retained tree-walking reference interpreter
   (Reference).  Keeping one definition of the arithmetic means the two
   engines cannot drift on value semantics.

   Sub-word results are kept canonical: every i1/i8/i32 payload is
   zero-extended in its int64, so [truncate_to] after an operation is
   what maintains the invariant.  Lshr/And/Or historically skipped the
   truncation Add/Sub/Xor apply; on canonical inputs the missing mask
   was a no-op, but it made the semantics input-dependent.  All integer
   ops now truncate uniformly. *)

open Value

exception Trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

(* --- direct (reference-style) evaluation ------------------------------ *)

let eval_binop op ty a b =
  let open Int64 in
  match op with
  | Mutls_mir.Ir.Add -> VI (truncate_to ty (add (to_i64 a) (to_i64 b)))
  | Mutls_mir.Ir.Sub -> VI (truncate_to ty (sub (to_i64 a) (to_i64 b)))
  | Mutls_mir.Ir.Mul -> VI (truncate_to ty (mul (to_i64 a) (to_i64 b)))
  | Mutls_mir.Ir.Sdiv ->
    let d = to_i64 b in
    if d = 0L then raise (Trap "division by zero")
    else VI (truncate_to ty (div (sext_of ty (to_i64 a)) (sext_of ty d)))
  | Mutls_mir.Ir.Srem ->
    let d = to_i64 b in
    if d = 0L then raise (Trap "remainder by zero")
    else VI (truncate_to ty (rem (sext_of ty (to_i64 a)) (sext_of ty d)))
  | Mutls_mir.Ir.And -> VI (truncate_to ty (logand (to_i64 a) (to_i64 b)))
  | Mutls_mir.Ir.Or -> VI (truncate_to ty (logor (to_i64 a) (to_i64 b)))
  | Mutls_mir.Ir.Xor -> VI (truncate_to ty (logxor (to_i64 a) (to_i64 b)))
  | Mutls_mir.Ir.Shl ->
    VI (truncate_to ty (shift_left (to_i64 a) (to_int (to_i64 b) land 63)))
  | Mutls_mir.Ir.Lshr ->
    VI (truncate_to ty (shift_right_logical (to_i64 a) (to_int (to_i64 b) land 63)))
  | Mutls_mir.Ir.Ashr ->
    VI (truncate_to ty
          (shift_right (sext_of ty (to_i64 a)) (to_int (to_i64 b) land 63)))
  | Mutls_mir.Ir.Fadd -> VF (to_f64 a +. to_f64 b)
  | Mutls_mir.Ir.Fsub -> VF (to_f64 a -. to_f64 b)
  | Mutls_mir.Ir.Fmul -> VF (to_f64 a *. to_f64 b)
  | Mutls_mir.Ir.Fdiv -> VF (to_f64 a /. to_f64 b)

let eval_icmp op ty a b =
  let x = sext_of ty (to_i64 a) and y = sext_of ty (to_i64 b) in
  of_bool
    (match op with
    | Mutls_mir.Ir.Ieq -> x = y
    | Mutls_mir.Ir.Ine -> x <> y
    | Mutls_mir.Ir.Islt -> x < y
    | Mutls_mir.Ir.Isle -> x <= y
    | Mutls_mir.Ir.Isgt -> x > y
    | Mutls_mir.Ir.Isge -> x >= y)

let eval_fcmp op a b =
  let x = to_f64 a and y = to_f64 b in
  of_bool
    (match op with
    | Mutls_mir.Ir.Feq -> x = y
    | Mutls_mir.Ir.Fne -> x <> y
    | Mutls_mir.Ir.Flt -> x < y
    | Mutls_mir.Ir.Fle -> x <= y
    | Mutls_mir.Ir.Fgt -> x > y
    | Mutls_mir.Ir.Fge -> x >= y)

let eval_cast c from_ty to_ty v =
  match c with
  | Mutls_mir.Ir.Trunc -> VI (truncate_to to_ty (to_i64 v))
  | Mutls_mir.Ir.Zext -> VI (to_i64 v)
  | Mutls_mir.Ir.Sext -> VI (truncate_to to_ty (sext_of from_ty (to_i64 v)))
  | Mutls_mir.Ir.Fptosi -> VI (truncate_to to_ty (Int64.of_float (to_f64 v)))
  | Mutls_mir.Ir.Sitofp -> VF (Int64.to_float (sext_of from_ty (to_i64 v)))
  | Mutls_mir.Ir.Ptrtoint | Mutls_mir.Ir.Inttoptr -> VI (to_i64 v)
  | Mutls_mir.Ir.Bitcast -> (
    match (from_ty, to_ty) with
    | Mutls_mir.Ir.F64, _ -> VI (Int64.bits_of_float (to_f64 v))
    | _, Mutls_mir.Ir.F64 -> VF (Int64.float_of_bits (to_i64 v))
    | _, _ -> v)

(* --- compile-time specializers ---------------------------------------- *)

(* The compiled engine resolves (op, ty) once per instruction; the
   returned closure carries no match on the hot path.  Wide types (i64,
   ptr) skip the no-op mask entirely. *)

let trunc_fn ty : int64 -> int64 =
  match ty with
  | Mutls_mir.Ir.I1 -> fun n -> Int64.logand n 1L
  | Mutls_mir.Ir.I8 -> fun n -> Int64.logand n 0xFFL
  | Mutls_mir.Ir.I32 -> fun n -> Int64.logand n 0xFFFFFFFFL
  | _ -> fun n -> n

let is_wide ty =
  match ty with
  | Mutls_mir.Ir.I1 | Mutls_mir.Ir.I8 | Mutls_mir.Ir.I32 -> false
  | _ -> true

let sext_fn ty : int64 -> int64 =
  match ty with
  | Mutls_mir.Ir.I1 -> fun n -> if Int64.logand n 1L = 1L then -1L else 0L
  | Mutls_mir.Ir.I8 -> fun n -> Int64.shift_right (Int64.shift_left n 56) 56
  | Mutls_mir.Ir.I32 -> fun n -> Int64.shift_right (Int64.shift_left n 32) 32
  | _ -> fun n -> n

let binop_fn op ty : v -> v -> v =
  let open Int64 in
  let tr = trunc_fn ty and sx = sext_fn ty in
  match op with
  | Mutls_mir.Ir.Add ->
    if is_wide ty then fun a b -> VI (add (to_i64 a) (to_i64 b))
    else fun a b -> VI (tr (add (to_i64 a) (to_i64 b)))
  | Mutls_mir.Ir.Sub ->
    if is_wide ty then fun a b -> VI (sub (to_i64 a) (to_i64 b))
    else fun a b -> VI (tr (sub (to_i64 a) (to_i64 b)))
  | Mutls_mir.Ir.Mul ->
    if is_wide ty then fun a b -> VI (mul (to_i64 a) (to_i64 b))
    else fun a b -> VI (tr (mul (to_i64 a) (to_i64 b)))
  | Mutls_mir.Ir.Sdiv ->
    fun a b ->
      let d = to_i64 b in
      if d = 0L then raise (Trap "division by zero")
      else VI (tr (div (sx (to_i64 a)) (sx d)))
  | Mutls_mir.Ir.Srem ->
    fun a b ->
      let d = to_i64 b in
      if d = 0L then raise (Trap "remainder by zero")
      else VI (tr (rem (sx (to_i64 a)) (sx d)))
  | Mutls_mir.Ir.And ->
    (* the mask commutes with logand, so no tr even for sub-word *)
    fun a b -> VI (logand (to_i64 a) (to_i64 b))
  | Mutls_mir.Ir.Or ->
    if is_wide ty then fun a b -> VI (logor (to_i64 a) (to_i64 b))
    else fun a b -> VI (tr (logor (to_i64 a) (to_i64 b)))
  | Mutls_mir.Ir.Xor ->
    if is_wide ty then fun a b -> VI (logxor (to_i64 a) (to_i64 b))
    else fun a b -> VI (tr (logxor (to_i64 a) (to_i64 b)))
  | Mutls_mir.Ir.Shl ->
    fun a b -> VI (tr (shift_left (to_i64 a) (to_int (to_i64 b) land 63)))
  | Mutls_mir.Ir.Lshr ->
    fun a b ->
      VI (tr (shift_right_logical (to_i64 a) (to_int (to_i64 b) land 63)))
  | Mutls_mir.Ir.Ashr ->
    fun a b -> VI (tr (shift_right (sx (to_i64 a)) (to_int (to_i64 b) land 63)))
  | Mutls_mir.Ir.Fadd -> fun a b -> VF (to_f64 a +. to_f64 b)
  | Mutls_mir.Ir.Fsub -> fun a b -> VF (to_f64 a -. to_f64 b)
  | Mutls_mir.Ir.Fmul -> fun a b -> VF (to_f64 a *. to_f64 b)
  | Mutls_mir.Ir.Fdiv -> fun a b -> VF (to_f64 a /. to_f64 b)

(* --- widened (unboxed) specializers ----------------------------------- *)

(* Raw int64/float-level variants of the specializers above, for the
   register-bank engine: operands and results never touch [Value.v].
   Wide types use the identity mask (-1L) / shift (0) so one body per
   opcode covers every width; on canonical zero-extended inputs these
   agree pointwise with [eval_binop]/[eval_icmp]/[eval_fcmp]
   (enforced by test/test_engine.ml). *)

let mask_of ty : int64 =
  match ty with
  | Mutls_mir.Ir.I1 -> 1L
  | Mutls_mir.Ir.I8 -> 0xFFL
  | Mutls_mir.Ir.I32 -> 0xFFFFFFFFL
  | _ -> -1L

(* Sign-extension of the low bits as a shift pair: [(n lsl s) asr s].
   For I1 this takes bit 0 to all bits, matching [sext_fn] on any
   input with a canonical low bit. *)
let sshift_of ty : int =
  match ty with
  | Mutls_mir.Ir.I1 -> 63
  | Mutls_mir.Ir.I8 -> 56
  | Mutls_mir.Ir.I32 -> 32
  | _ -> 0

let binop_i op ty : int64 -> int64 -> int64 =
  let open Int64 in
  let m = mask_of ty and s = sshift_of ty in
  match op with
  | Mutls_mir.Ir.Add -> fun a b -> logand m (add a b)
  | Mutls_mir.Ir.Sub -> fun a b -> logand m (sub a b)
  | Mutls_mir.Ir.Mul -> fun a b -> logand m (mul a b)
  | Mutls_mir.Ir.Sdiv ->
    fun a b ->
      if b = 0L then raise (Trap "division by zero")
      else
        logand m
          (div (shift_right (shift_left a s) s) (shift_right (shift_left b s) s))
  | Mutls_mir.Ir.Srem ->
    fun a b ->
      if b = 0L then raise (Trap "remainder by zero")
      else
        logand m
          (rem (shift_right (shift_left a s) s) (shift_right (shift_left b s) s))
  | Mutls_mir.Ir.And -> fun a b -> logand a b
  | Mutls_mir.Ir.Or -> fun a b -> logand m (logor a b)
  | Mutls_mir.Ir.Xor -> fun a b -> logand m (logxor a b)
  | Mutls_mir.Ir.Shl -> fun a b -> logand m (shift_left a (to_int b land 63))
  | Mutls_mir.Ir.Lshr ->
    fun a b -> logand m (shift_right_logical a (to_int b land 63))
  | Mutls_mir.Ir.Ashr ->
    fun a b ->
      logand m (shift_right (shift_right (shift_left a s) s) (to_int b land 63))
  | Mutls_mir.Ir.Fadd | Mutls_mir.Ir.Fsub | Mutls_mir.Ir.Fmul
  | Mutls_mir.Ir.Fdiv ->
    invalid_arg "Ops.binop_i: float op"

let binop_f op : float -> float -> float =
  match op with
  | Mutls_mir.Ir.Fadd -> ( +. )
  | Mutls_mir.Ir.Fsub -> ( -. )
  | Mutls_mir.Ir.Fmul -> ( *. )
  | Mutls_mir.Ir.Fdiv -> ( /. )
  | _ -> invalid_arg "Ops.binop_f: int op"

let icmp_i op ty : int64 -> int64 -> int64 =
  let open Int64 in
  let s = sshift_of ty in
  let sx n = shift_right (shift_left n s) s in
  match op with
  | Mutls_mir.Ir.Ieq -> fun a b -> if sx a = sx b then 1L else 0L
  | Mutls_mir.Ir.Ine -> fun a b -> if sx a <> sx b then 1L else 0L
  | Mutls_mir.Ir.Islt -> fun a b -> if sx a < sx b then 1L else 0L
  | Mutls_mir.Ir.Isle -> fun a b -> if sx a <= sx b then 1L else 0L
  | Mutls_mir.Ir.Isgt -> fun a b -> if sx a > sx b then 1L else 0L
  | Mutls_mir.Ir.Isge -> fun a b -> if sx a >= sx b then 1L else 0L

let fcmp_f op : float -> float -> int64 =
  match op with
  | Mutls_mir.Ir.Feq -> fun a b -> if a = b then 1L else 0L
  | Mutls_mir.Ir.Fne -> fun a b -> if a <> b then 1L else 0L
  | Mutls_mir.Ir.Flt -> fun a b -> if a < b then 1L else 0L
  | Mutls_mir.Ir.Fle -> fun a b -> if a <= b then 1L else 0L
  | Mutls_mir.Ir.Fgt -> fun a b -> if a > b then 1L else 0L
  | Mutls_mir.Ir.Fge -> fun a b -> if a >= b then 1L else 0L

let icmp_fn op ty : v -> v -> v =
  let sx = sext_fn ty in
  match op with
  | Mutls_mir.Ir.Ieq -> fun a b -> of_bool (sx (to_i64 a) = sx (to_i64 b))
  | Mutls_mir.Ir.Ine -> fun a b -> of_bool (sx (to_i64 a) <> sx (to_i64 b))
  | Mutls_mir.Ir.Islt -> fun a b -> of_bool (sx (to_i64 a) < sx (to_i64 b))
  | Mutls_mir.Ir.Isle -> fun a b -> of_bool (sx (to_i64 a) <= sx (to_i64 b))
  | Mutls_mir.Ir.Isgt -> fun a b -> of_bool (sx (to_i64 a) > sx (to_i64 b))
  | Mutls_mir.Ir.Isge -> fun a b -> of_bool (sx (to_i64 a) >= sx (to_i64 b))

let fcmp_fn op : v -> v -> v =
  match op with
  | Mutls_mir.Ir.Feq -> fun a b -> of_bool (to_f64 a = to_f64 b)
  | Mutls_mir.Ir.Fne -> fun a b -> of_bool (to_f64 a <> to_f64 b)
  | Mutls_mir.Ir.Flt -> fun a b -> of_bool (to_f64 a < to_f64 b)
  | Mutls_mir.Ir.Fle -> fun a b -> of_bool (to_f64 a <= to_f64 b)
  | Mutls_mir.Ir.Fgt -> fun a b -> of_bool (to_f64 a > to_f64 b)
  | Mutls_mir.Ir.Fge -> fun a b -> of_bool (to_f64 a >= to_f64 b)

let cast_fn c from_ty to_ty : v -> v =
  match c with
  | Mutls_mir.Ir.Trunc ->
    let tr = trunc_fn to_ty in
    fun v -> VI (tr (to_i64 v))
  | Mutls_mir.Ir.Zext -> fun v -> VI (to_i64 v)
  | Mutls_mir.Ir.Sext ->
    let tr = trunc_fn to_ty and sx = sext_fn from_ty in
    fun v -> VI (tr (sx (to_i64 v)))
  | Mutls_mir.Ir.Fptosi ->
    let tr = trunc_fn to_ty in
    fun v -> VI (tr (Int64.of_float (to_f64 v)))
  | Mutls_mir.Ir.Sitofp ->
    let sx = sext_fn from_ty in
    fun v -> VF (Int64.to_float (sx (to_i64 v)))
  | Mutls_mir.Ir.Ptrtoint | Mutls_mir.Ir.Inttoptr -> fun v -> VI (to_i64 v)
  | Mutls_mir.Ir.Bitcast -> (
    match (from_ty, to_ty) with
    | Mutls_mir.Ir.F64, _ -> fun v -> VI (Int64.bits_of_float (to_f64 v))
    | _, Mutls_mir.Ir.F64 -> fun v -> VF (Int64.float_of_bits (to_i64 v))
    | _, _ -> fun v -> v)
