(** Scalar operator semantics shared by the compiled execution engine
    ({!Compile}) and the retained tree-walking reference interpreter
    ({!Reference}), so the two engines cannot drift on arithmetic.

    All integer operations keep the canonical zero-extended sub-word
    representation: results are truncated to the operation type,
    including [Lshr]/[And]/[Or] (which historically skipped the mask —
    a no-op on canonical inputs, fixed here to be uniform). *)

exception Trap of string
(** Runtime error in the interpreted program. *)

val trap : ('a, unit, string, 'b) format4 -> 'a
(** [trap fmt ...] raises {!Trap} with a formatted message. *)

(** {1 Direct evaluation} *)

val eval_binop : Mutls_mir.Ir.binop -> Mutls_mir.Ir.ty -> Value.v -> Value.v -> Value.v
val eval_icmp : Mutls_mir.Ir.icmp -> Mutls_mir.Ir.ty -> Value.v -> Value.v -> Value.v
val eval_fcmp : Mutls_mir.Ir.fcmp -> Value.v -> Value.v -> Value.v
val eval_cast :
  Mutls_mir.Ir.cast -> Mutls_mir.Ir.ty -> Mutls_mir.Ir.ty -> Value.v -> Value.v

(** {1 Compile-time specializers}

    Resolve [(op, ty)] once; the returned closure matches nothing on
    the hot path.  Each agrees pointwise with the corresponding
    [eval_*] function (enforced by an exhaustive unit test). *)

val binop_fn : Mutls_mir.Ir.binop -> Mutls_mir.Ir.ty -> Value.v -> Value.v -> Value.v
val icmp_fn : Mutls_mir.Ir.icmp -> Mutls_mir.Ir.ty -> Value.v -> Value.v -> Value.v
val fcmp_fn : Mutls_mir.Ir.fcmp -> Value.v -> Value.v -> Value.v
val cast_fn :
  Mutls_mir.Ir.cast -> Mutls_mir.Ir.ty -> Mutls_mir.Ir.ty -> Value.v -> Value.v

(** {1 Widened (unboxed) specializers}

    Raw [int64]/[float]-level variants for the register-bank engine:
    operands and results never touch {!Value.v}.  On canonical
    zero-extended inputs each agrees pointwise with the corresponding
    [eval_*] function (enforced by test/test_engine.ml).  [binop_i]
    rejects float opcodes and [binop_f] integer opcodes with
    [Invalid_argument]. *)

val binop_i : Mutls_mir.Ir.binop -> Mutls_mir.Ir.ty -> int64 -> int64 -> int64
val binop_f : Mutls_mir.Ir.binop -> float -> float -> float

val icmp_i : Mutls_mir.Ir.icmp -> Mutls_mir.Ir.ty -> int64 -> int64 -> int64
(** Comparison result as [0L]/[1L] (canonical [i1]). *)

val fcmp_f : Mutls_mir.Ir.fcmp -> float -> float -> int64

val mask_of : Mutls_mir.Ir.ty -> int64
(** Truncation mask for a width; [-1L] for wide types (identity). *)

val sshift_of : Mutls_mir.Ir.ty -> int
(** Sign-extension as a shift pair [(n lsl s) asr s]; [0] for wide
    types (identity). *)

(** {1 Specializer building blocks} *)

val trunc_fn : Mutls_mir.Ir.ty -> int64 -> int64
val sext_fn : Mutls_mir.Ir.ty -> int64 -> int64
val is_wide : Mutls_mir.Ir.ty -> bool
