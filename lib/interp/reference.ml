(* The retained tree-walking MIR interpreter, kept as the executable
   semantics the compiled engine (Compile) is tested against: both
   engines must agree on outputs, virtual costs, trace streams and trap
   behaviour (test/test_engine.ml).  Scalar semantics are shared via
   Ops so the two cannot drift on arithmetic.

   This is the original interpreter, unchanged except that unknown
   function names in block lookup now raise a clean Trap instead of
   escaping as a raw Not_found. *)

open Mutls_mir
open Mutls_runtime
open Value
open Ops

(* --- prepared program ------------------------------------------------ *)

type prog = {
  modul : Ir.modul;
  funcs : (string, Ir.func) Hashtbl.t;
  block_maps : (string, (string, Ir.block) Hashtbl.t) Hashtbl.t;
}

let prepare (modul : Ir.modul) =
  let funcs = Hashtbl.create 32 in
  let block_maps = Hashtbl.create 32 in
  List.iter
    (fun (f : Ir.func) ->
      Hashtbl.replace funcs f.fname f;
      let bm = Hashtbl.create (2 * List.length f.blocks) in
      List.iter (fun (b : Ir.block) -> Hashtbl.replace bm b.bname b) f.blocks;
      Hashtbl.replace block_maps f.fname bm)
    modul.funcs;
  { modul; funcs; block_maps }

let find_func prog name =
  match Hashtbl.find_opt prog.funcs name with
  | Some f -> f
  | None -> trap "call to unknown function @%s" name

let find_block prog fname bname =
  match Hashtbl.find_opt prog.block_maps fname with
  | None -> trap "call to unknown function @%s" fname
  | Some bm -> (
    match Hashtbl.find_opt bm bname with
    | Some b -> b
    | None -> trap "unknown block %s in @%s" bname fname)

(* --- execution context ----------------------------------------------- *)

type mode =
  | Seq of seq_state
  | Tls of Thread_manager.t * Thread_data.t

and seq_state = { mutable seq_cost : float }

type tctx = {
  prog : prog;
  mem : Memory.t;
  mode : mode;
  out : Buffer.t;
  cost : Config.cost;
  mutable sp : int;
  stack_limit : int;
}

let tick ctx c =
  match ctx.mode with
  | Seq s -> s.seq_cost <- s.seq_cost +. c
  | Tls (mgr, td) -> Thread_manager.tick mgr td c

let mgr_td ctx =
  match ctx.mode with
  | Tls (mgr, td) -> (mgr, td)
  | Seq _ -> trap "TLS runtime call in sequential mode"

(* --- plain (non-speculative) memory access --------------------------- *)

let plain_load ctx ty addr =
  tick ctx ctx.cost.Config.mem;
  match ty with
  | Ir.I64 -> VI (Memory.read_i64 ctx.mem addr)
  | Ir.Ptr -> VI (Memory.read_i64 ctx.mem addr)
  | Ir.F64 -> VF (Memory.read_f64 ctx.mem addr)
  | Ir.I32 -> VI (Memory.read_i32 ctx.mem addr)
  | Ir.I8 | Ir.I1 -> VI (Memory.read_i8 ctx.mem addr)
  | Ir.Void -> trap "load void"

let plain_store ctx ty addr v =
  tick ctx ctx.cost.Config.mem;
  match ty with
  | Ir.I64 | Ir.Ptr -> Memory.write_i64 ctx.mem addr (to_i64 v)
  | Ir.F64 -> Memory.write_f64 ctx.mem addr (to_f64 v)
  | Ir.I32 -> Memory.write_i32 ctx.mem addr (to_i64 v)
  | Ir.I8 | Ir.I1 -> Memory.write_i8 ctx.mem addr (to_i64 v)
  | Ir.Void -> trap "store void"

(* --- runtime call dispatch ------------------------------------------- *)

let funcref_of (operand : Ir.value) =
  match operand with
  | Ir.Funcref f -> f
  | _ -> trap "MUTLS_speculate: expected a function reference"

(* --- the interpreter -------------------------------------------------- *)

let rec exec_function ctx (f : Ir.func) (args : v array) : v option =
  let regs = Array.make (max 1 f.next_reg) (VI 0L) in
  let sp0 = ctx.sp in
  let eval_v (v : Ir.value) =
    match v with
    | Ir.Const c -> of_const c
    | Ir.Reg r -> regs.(r)
    | Ir.Arg i -> args.(i)
    | Ir.Global g -> VI (Int64.of_int (Memory.symbol ctx.mem g))
    | Ir.Funcref _ -> trap "function reference in value position"
  in
  let result = ref None in
  let finished = ref false in
  let cur = ref (Ir.entry_block f) in
  let prev = ref "" in
  while not !finished do
    let b = !cur in
    (* phi nodes: parallel assignment from the edge just taken *)
    (match b.Ir.phis with
    | [] -> ()
    | phis ->
      let vals =
        List.map
          (fun (p : Ir.phi) ->
            match List.assoc_opt !prev p.incoming with
            | Some v -> (p.pid, eval_v v)
            | None -> trap "phi in %s has no incoming for %s" b.bname !prev)
          phis
      in
      List.iter (fun (r, v) -> regs.(r) <- v) vals);
    (* instructions *)
    List.iter
      (fun (i : Ir.instr) ->
        (* TLS runtime calls charge their own model costs *)
        (match i.kind with
        | Ir.Call (n, _) when Ir.is_runtime_call n -> ()
        | _ -> tick ctx ctx.cost.Config.instr);
        match i.kind with
        | Ir.Binop (op, ty, a, b') -> regs.(i.id) <- eval_binop op ty (eval_v a) (eval_v b')
        | Ir.Icmp (op, ty, a, b') -> regs.(i.id) <- eval_icmp op ty (eval_v a) (eval_v b')
        | Ir.Fcmp (op, a, b') -> regs.(i.id) <- eval_fcmp op (eval_v a) (eval_v b')
        | Ir.Alloca size ->
          let addr = Memory.align8 ctx.sp in
          if addr + size > ctx.stack_limit then trap "stack overflow in @%s" f.fname;
          ctx.sp <- addr + Memory.align8 size;
          regs.(i.id) <- VI (Int64.of_int addr)
        | Ir.Load (ty, a) -> regs.(i.id) <- plain_load ctx ty (to_addr (eval_v a))
        | Ir.Store (ty, v, a) -> plain_store ctx ty (to_addr (eval_v a)) (eval_v v)
        | Ir.Ptradd (a, o) ->
          regs.(i.id) <- VI (Int64.add (to_i64 (eval_v a)) (to_i64 (eval_v o)))
        | Ir.Select (c, a, b') ->
          regs.(i.id) <- (if to_bool (eval_v c) then eval_v a else eval_v b')
        | Ir.Cast (c, t1, t2, v) -> regs.(i.id) <- eval_cast c t1 t2 (eval_v v)
        | Ir.Call (name, arg_vals) -> (
          match exec_call ctx f name arg_vals eval_v with
          | Some v -> if i.ity <> Ir.Void then regs.(i.id) <- v
          | None -> ()))
      b.Ir.insts;
    (* terminator *)
    tick ctx ctx.cost.Config.instr;
    (match b.Ir.term with
    | Ir.Ret v ->
      result := Option.map eval_v v;
      finished := true
    | Ir.Br l ->
      prev := b.bname;
      cur := find_block ctx.prog f.fname l
    | Ir.Cbr (c, l1, l2) ->
      prev := b.bname;
      cur := find_block ctx.prog f.fname (if to_bool (eval_v c) then l1 else l2)
    | Ir.Switch (v, d, cases) ->
      let x = to_i64 (eval_v v) in
      let target =
        match List.assoc_opt x cases with Some l -> l | None -> d
      in
      prev := b.bname;
      cur := find_block ctx.prog f.fname target
    | Ir.Unreachable -> trap "unreachable executed in @%s/%s" f.fname b.bname);
    ()
  done;
  ctx.sp <- sp0;
  !result

(* Dispatch a call instruction.  [eval_v] evaluates operands in the
   caller's frame; MUTLS_speculate needs the raw operand to extract a
   function reference, so the operand list is passed unevaluated. *)
and exec_call ctx (caller : Ir.func) name (operands : Ir.value list) eval_v : v option =
  if Ir.is_runtime_call name then exec_runtime_call ctx name operands eval_v
  else if Ir.is_source_intrinsic name then None (* sequential no-op *)
  else
    match Hashtbl.find_opt ctx.prog.funcs name with
    | Some callee ->
      tick ctx ctx.cost.Config.call;
      let args = Array.of_list (List.map eval_v operands) in
      exec_function ctx callee args
    | None -> exec_extern ctx caller name (List.map eval_v operands)

and exec_extern ctx _caller name args =
  tick ctx ctx.cost.Config.call;
  match name with
  | "print_int" ->
    Buffer.add_string ctx.out (Int64.to_string (to_i64 (List.hd args)));
    None
  | "print_float" ->
    Buffer.add_string ctx.out (Printf.sprintf "%.6g" (to_f64 (List.hd args)));
    None
  | "print_char" ->
    Buffer.add_char ctx.out (Char.chr (Int64.to_int (to_i64 (List.hd args)) land 0xff));
    None
  | "print_newline" ->
    Buffer.add_char ctx.out '\n';
    None
  | "malloc" ->
    let size = Int64.to_int (to_i64 (List.hd args)) in
    let addr = Memory.malloc ctx.mem size in
    (match ctx.mode with
    | Tls (mgr, _) -> Thread_manager.register_range mgr addr (Memory.align8 (max 8 size))
    | Seq _ -> ());
    Some (VI (Int64.of_int addr))
  | "free" ->
    let addr = to_addr (List.hd args) in
    (match Memory.free ctx.mem addr with
    | Some size -> (
      match ctx.mode with
      | Tls (mgr, _) -> Thread_manager.unregister_range mgr addr size
      | Seq _ -> ())
    | None -> ());
    None
  | _ -> (
    match Externs.eval_pure name args with
    | Some (Externs.Ret v) -> Some v
    | Some Externs.Ret_void -> None
    | None -> trap "call to unknown extern @%s" name)

and exec_runtime_call ctx name operands eval_v : v option =
  let mgr, td = mgr_td ctx in
  let arg n = eval_v (List.nth operands n) in
  let int_arg n = Int64.to_int (to_i64 (arg n)) in
  match name with
  | "MUTLS_get_CPU" ->
    (* bits 0-1: fork model; bit 2: the pass's store-free (expandable)
       judgement for the enclosing region *)
    let mi = int_arg 0 in
    let model = Config.model_of_int (mi land 3) in
    let expandable = mi land 4 <> 0 in
    Some
      (of_int (Thread_manager.get_cpu mgr td ~model ~expandable ~point:(int_arg 1)))
  | "MUTLS_set_fork_reg_i64" | "MUTLS_set_fork_reg_f64" | "MUTLS_set_fork_reg_ptr"
    ->
    Thread_manager.set_fork_reg mgr td ~rank:(int_arg 0) ~off:(int_arg 1)
      (to_runtime (arg 2));
    None
  | "MUTLS_set_fork_addr" ->
    Thread_manager.set_fork_addr mgr td ~rank:(int_arg 0) ~off:(int_arg 1)
      (int_arg 2);
    None
  | "MUTLS_validate_local_i64" | "MUTLS_validate_local_f64"
  | "MUTLS_validate_local_ptr" ->
    Thread_manager.validate_local mgr td ~rank:(int_arg 0) ~point:(int_arg 1)
      ~off:(int_arg 2) (to_runtime (arg 3));
    None
  | "MUTLS_speculate" ->
    let rank = int_arg 0 and counter = int_arg 1 in
    let stub = funcref_of (List.nth operands 2) in
    Thread_manager.speculate mgr td ~rank ~counter (fun child ->
        run_speculative ctx child stub);
    None
  | "MUTLS_entry_counter" -> Some (of_int td.Thread_data.entry_counter)
  | "MUTLS_get_fork_reg_i64" | "MUTLS_get_fork_reg_f64" | "MUTLS_get_fork_reg_ptr"
    ->
    Some (of_runtime (Thread_manager.get_fork_reg mgr td ~off:(int_arg 0)))
  | "MUTLS_pick_stackaddr" ->
    Some
      (of_int
         (Thread_manager.pick_stackaddr mgr td ~counter:(int_arg 0)
            ~off:(int_arg 1) ~own_addr:(int_arg 2)))
  | "MUTLS_load_i64" | "MUTLS_load_ptr" ->
    Some (VI (Thread_manager.spec_load mgr td ~addr:(int_arg 0) ~size:8))
  | "MUTLS_load_f64" ->
    Some
      (VF
         (Int64.float_of_bits
            (Thread_manager.spec_load mgr td ~addr:(int_arg 0) ~size:8)))
  | "MUTLS_load_i32" ->
    Some (VI (Thread_manager.spec_load mgr td ~addr:(int_arg 0) ~size:4))
  | "MUTLS_load_i8" | "MUTLS_load_i1" ->
    Some (VI (Thread_manager.spec_load mgr td ~addr:(int_arg 0) ~size:1))
  | "MUTLS_store_i64" | "MUTLS_store_ptr" ->
    Thread_manager.spec_store mgr td ~addr:(int_arg 1) ~size:8 (to_i64 (arg 0));
    None
  | "MUTLS_store_f64" ->
    Thread_manager.spec_store mgr td ~addr:(int_arg 1) ~size:8
      (Int64.bits_of_float (to_f64 (arg 0)));
    None
  | "MUTLS_store_i32" ->
    Thread_manager.spec_store mgr td ~addr:(int_arg 1) ~size:4 (to_i64 (arg 0));
    None
  | "MUTLS_store_i8" | "MUTLS_store_i1" ->
    Thread_manager.spec_store mgr td ~addr:(int_arg 1) ~size:1 (to_i64 (arg 0));
    None
  | "MUTLS_save_regvar_i64" | "MUTLS_save_regvar_f64" | "MUTLS_save_regvar_ptr"
    ->
    Thread_manager.save_regvar mgr td ~off:(int_arg 0) (to_runtime (arg 1));
    None
  | "MUTLS_save_stackvar" ->
    Thread_manager.save_stackvar mgr td ~off:(int_arg 0) ~addr:(int_arg 1)
      ~size:(int_arg 2);
    None
  | "MUTLS_check_point" ->
    Some (of_bool (Thread_manager.check_point mgr td ~counter:(int_arg 0)))
  | "MUTLS_commit" -> Thread_manager.commit mgr td ~counter:(int_arg 0)
  | "MUTLS_terminate_point" ->
    Thread_manager.terminate_point mgr td ~counter:(int_arg 0)
  | "MUTLS_barrier_point" ->
    Thread_manager.barrier_point mgr td ~counter:(int_arg 0);
    None
  | "MUTLS_return_point" ->
    Thread_manager.return_point mgr td ~counter:(int_arg 0);
    None
  | "MUTLS_enter_point" ->
    Thread_manager.enter_point mgr td ~counter:(int_arg 0);
    None
  | "MUTLS_ptr_int_cast" ->
    Thread_manager.ptr_int_cast mgr td ~counter:(int_arg 0) (int_arg 1);
    None
  | "MUTLS_synchronize" ->
    Some
      (of_bool
         (Thread_manager.synchronize mgr td ~point:(int_arg 0) ~rank:(int_arg 1)))
  | "MUTLS_sync_counter" -> Some (of_int td.Thread_data.last_sync_counter)
  | "MUTLS_sync_rank" -> Some (of_int td.Thread_data.last_sync_rank)
  | "MUTLS_sync_entry" -> Some (of_int (Thread_manager.sync_entry mgr td))
  | "MUTLS_bad_sync" ->
    trap "synchronization counter %d has no restore target (rank %d)" (int_arg 0)
      td.Thread_data.rank
  | "MUTLS_restore_regvar_i64" | "MUTLS_restore_regvar_f64" ->
    Some (of_runtime (Thread_manager.restore_regvar mgr td ~off:(int_arg 0) ~is_ptr:false))
  | "MUTLS_restore_regvar_ptr" ->
    Some (of_runtime (Thread_manager.restore_regvar mgr td ~off:(int_arg 0) ~is_ptr:true))
  | "MUTLS_restore_stackvar" ->
    Thread_manager.restore_stackvar mgr td ~off:(int_arg 0) ~addr:(int_arg 1)
      ~size:(int_arg 2);
    None
  | _ -> trap "unknown runtime call @%s" name

(* Body of a freshly speculated thread: a new context on the child's
   stack slot, executing the stub function. *)
and run_speculative parent_ctx (child : Thread_data.t) stub_name =
  let mgr, _ = mgr_td parent_ctx in
  let base, limit = Memory.stack_slot parent_ctx.mem child.Thread_data.rank in
  Local_buffer.set_stack_range child.Thread_data.lbuf ~base ~limit;
  let ctx =
    {
      parent_ctx with
      mode = Tls (mgr, child);
      sp = base;
      stack_limit = limit;
    }
  in
  let stub = find_func ctx.prog stub_name in
  ignore (exec_function ctx stub [| of_int child.Thread_data.rank |])

(* --- top-level entry points ------------------------------------------- *)

(* Result records are shared with the public engine so tests can
   compare the two directly. *)

let run_sequential ?(cost = Config.default_cost) ?(heap_size = Eval.default_heap)
    ?(globals_size = Eval.default_globals) (modul : Ir.modul) : Eval.seq_result =
  let prog = prepare modul in
  let mem =
    Memory.create ~globals_size ~heap_size ~stack_size:Eval.default_stack
      ~nstacks:1
  in
  ignore (Memory.install_globals mem modul);
  let base, limit = Memory.stack_slot mem 0 in
  let seq = { seq_cost = 0.0 } in
  let ctx =
    { prog; mem; mode = Seq seq; out = Buffer.create 256; cost; sp = base;
      stack_limit = limit }
  in
  let main = find_func prog "main" in
  let ret = exec_function ctx main [||] in
  { Eval.sret = ret; soutput = Buffer.contents ctx.out; scost = seq.seq_cost }

let run_tls ?(heap_size = Eval.default_heap)
    ?(globals_size = Eval.default_globals) (cfg : Config.t) (modul : Ir.modul) :
    Eval.tls_result =
  let prog = prepare modul in
  let mem =
    Memory.create ~globals_size ~heap_size ~stack_size:Eval.default_stack
      ~nstacks:(max 1 cfg.ncpus)
  in
  let globals_used = Memory.install_globals mem modul in
  let engine = Mutls_sim.Engine.create () in
  (* Forward engine-level scheduling events into the configured trace
     sink (thread = -1: they belong to no TLS thread). *)
  let sink = cfg.Config.trace_sink in
  if sink.Mutls_obs.Trace.enabled then
    Mutls_sim.Engine.set_tracer engine
      (Some
         (fun time ev ->
           let what, info =
             match ev with
             | Mutls_sim.Engine.Trace_spawn -> ("spawn", 0)
             | Mutls_sim.Engine.Trace_block -> ("block", 0)
             | Mutls_sim.Engine.Trace_wake n -> ("wake", n)
           in
           sink.Mutls_obs.Trace.emit
             {
               Mutls_obs.Trace.time;
               thread = -1;
               rank = -1;
               main = false;
               event = Mutls_obs.Trace.Sched { what; info };
             }));
  let mgr = Thread_manager.create cfg engine (Memory.memio mem) in
  (* Register the global address space: globals + every thread stack
     (non-speculative stack variables are global per §IV-G1). *)
  if globals_used > 0 then Thread_manager.register_range mgr mem.Memory.globals_base globals_used;
  Thread_manager.register_range mgr mem.Memory.stack_base
    (max 1 cfg.ncpus * Eval.default_stack);
  let base, limit = Memory.stack_slot mem 0 in
  let out = Buffer.create 256 in
  let ctx =
    { prog; mem; mode = Tls (mgr, Thread_manager.main mgr); out;
      cost = cfg.cost; sp = base; stack_limit = limit }
  in
  let ret = ref None in
  let finish = ref 0.0 in
  let main_body () =
    let main = find_func prog "main" in
    ret := exec_function ctx main [||];
    Thread_manager.shutdown mgr;
    finish := Mutls_sim.Engine.now engine
  in
  ignore (Mutls_sim.Engine.run engine main_body);
  {
    Eval.tret = !ret;
    toutput = Buffer.contents out;
    tfinish = !finish;
    tmain_stats = (Thread_manager.main mgr).Thread_data.stats;
    tretired = Thread_manager.retired mgr;
    tmgr = mgr;
  }
