(** The retained tree-walking MIR interpreter — the executable
    semantics the compiled engine ({!Compile}) is validated against.
    Both engines must agree on program output, virtual cost, trace
    streams and trap behaviour; test/test_engine.ml enforces this on
    random programs and on the paper's figure workloads.

    Scalar arithmetic is shared with the compiled engine via {!Ops},
    so the two cannot drift on binop/icmp/fcmp/cast semantics. *)

val run_sequential :
  ?cost:Mutls_runtime.Config.cost ->
  ?heap_size:int ->
  ?globals_size:int ->
  Mutls_mir.Ir.modul ->
  Eval.seq_result

val run_tls :
  ?heap_size:int ->
  ?globals_size:int ->
  Mutls_runtime.Config.t ->
  Mutls_mir.Ir.modul ->
  Eval.tls_result
