(* MIR: a small SSA intermediate representation modeled on the subset of
   LLVM IR that the MUTLS speculator pass (Cao & Verbrugge, ICPP 2013)
   relies on: typed loads/stores, SSA registers with phi nodes, direct
   calls, switch dispatch, and entry-block allocas. *)

type ty = I1 | I8 | I32 | I64 | F64 | Ptr | Void

let ty_size = function
  | I1 | I8 -> 1
  | I32 -> 4
  | I64 | F64 | Ptr -> 8
  | Void -> 0

let ty_to_string = function
  | I1 -> "i1"
  | I8 -> "i8"
  | I32 -> "i32"
  | I64 -> "i64"
  | F64 -> "f64"
  | Ptr -> "ptr"
  | Void -> "void"

type const =
  | Cint of int64 * ty
  | Cfloat of float
  | Cnull

(* SSA register id, unique within a function. *)
type reg = int

type value =
  | Const of const
  | Reg of reg
  | Arg of int
  | Global of string (* address of a global definition *)
  | Funcref of string (* address of a function *)

let i64 n = Const (Cint (Int64.of_int n, I64))
let i64' n = Const (Cint (n, I64))
let i32 n = Const (Cint (Int64.of_int n, I32))
let i8 n = Const (Cint (Int64.of_int n, I8))
let i1 b = Const (Cint ((if b then 1L else 0L), I1))
let f64 x = Const (Cfloat x)
let null = Const Cnull

type binop =
  | Add | Sub | Mul | Sdiv | Srem
  | And | Or | Xor | Shl | Lshr | Ashr
  | Fadd | Fsub | Fmul | Fdiv

type icmp = Ieq | Ine | Islt | Isle | Isgt | Isge
type fcmp = Feq | Fne | Flt | Fle | Fgt | Fge

type cast = Trunc | Zext | Sext | Fptosi | Sitofp | Ptrtoint | Inttoptr | Bitcast

type instr_kind =
  | Binop of binop * ty * value * value
  | Icmp of icmp * ty * value * value (* result I1; ty is operand type *)
  | Fcmp of fcmp * value * value (* result I1 *)
  | Alloca of int (* byte size; result Ptr; entry block only *)
  | Load of ty * value (* result ty; operand is address *)
  | Store of ty * value * value (* stored value, address; result Void *)
  | Ptradd of value * value (* base ptr, byte offset (I64); result Ptr *)
  | Call of string * value list (* direct call; result = callee ret ty *)
  | Cast of cast * ty * ty * value (* from-ty, to-ty, operand *)
  | Select of value * value * value (* cond, if-true, if-false *)

type instr = {
  id : reg; (* destination register; meaningful iff ity <> Void *)
  ity : ty; (* result type *)
  kind : instr_kind;
}

type phi = {
  pid : reg;
  pty : ty;
  mutable incoming : (string * value) list; (* predecessor label, value *)
}

type terminator =
  | Br of string
  | Cbr of value * string * string
  | Switch of value * string * (int64 * string) list
  | Ret of value option
  | Unreachable

type block = {
  bname : string;
  mutable phis : phi list;
  mutable insts : instr list;
  mutable term : terminator;
}

type func = {
  fname : string;
  params : (string * ty) list;
  ret : ty;
  mutable blocks : block list; (* head = entry *)
  mutable next_reg : int;
  reg_tys : (reg, ty) Hashtbl.t;
}

type ginit =
  | Zero
  | Bytes_init of string
  | Words_init of int64 array
  | Floats_init of float array

type gdef = { gname : string; gsize : int; ginit : ginit }

(* Extern declaration: name, return type, parameter types. *)
type edecl = { ename : string; eret : ty; eparams : ty list }

type modul = {
  mutable globals : gdef list;
  mutable funcs : func list;
  mutable externs : edecl list;
}

(* ------------------------------------------------------------------ *)
(* Accessors and small helpers                                         *)
(* ------------------------------------------------------------------ *)

let create_module () = { globals = []; funcs = []; externs = [] }

let add_global m g = m.globals <- m.globals @ [ g ]
let add_extern m e =
  if not (List.exists (fun d -> d.ename = e.ename) m.externs) then
    m.externs <- m.externs @ [ e ]

let find_func m name = List.find_opt (fun f -> f.fname = name) m.funcs
let find_func_exn m name =
  match find_func m name with
  | Some f -> f
  | None -> invalid_arg ("Ir.find_func_exn: no function " ^ name)

let find_extern m name = List.find_opt (fun e -> e.ename = name) m.externs
let find_global m name = List.find_opt (fun g -> g.gname = name) m.globals

let entry_block f =
  match f.blocks with
  | b :: _ -> b
  | [] -> invalid_arg ("Ir.entry_block: empty function " ^ f.fname)

let find_block f name = List.find_opt (fun b -> b.bname = name) f.blocks
let find_block_exn f name =
  match find_block f name with
  | Some b -> b
  | None -> invalid_arg ("Ir.find_block_exn: no block " ^ name ^ " in " ^ f.fname)

let fresh_reg f ty =
  let r = f.next_reg in
  f.next_reg <- r + 1;
  Hashtbl.replace f.reg_tys r ty;
  r

let reg_ty f r =
  match Hashtbl.find_opt f.reg_tys r with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Ir.reg_ty: unknown reg %%%d in %s" r f.fname)

(* Type of a value in the context of function [f] within module [m]. *)
let value_ty m f = function
  | Const (Cint (_, t)) -> t
  | Const (Cfloat _) -> F64
  | Const Cnull -> Ptr
  | Reg r -> reg_ty f r
  | Arg i ->
    (try snd (List.nth f.params i)
     with _ -> invalid_arg (Printf.sprintf "Ir.value_ty: bad arg %d in %s" i f.fname))
  | Global _ -> Ptr
  | Funcref _ -> Ptr |> fun t -> ignore m; t

let term_succs = function
  | Br l -> [ l ]
  | Cbr (_, l1, l2) -> [ l1; l2 ]
  | Switch (_, d, cases) -> d :: List.map snd cases
  | Ret _ | Unreachable -> []

(* Values used by an instruction kind, in order. *)
let instr_uses = function
  | Binop (_, _, a, b) | Icmp (_, _, a, b) | Fcmp (_, a, b) | Ptradd (a, b) ->
    [ a; b ]
  | Alloca _ -> []
  | Load (_, a) -> [ a ]
  | Store (_, v, a) -> [ v; a ]
  | Call (_, args) -> args
  | Cast (_, _, _, v) -> [ v ]
  | Select (c, a, b) -> [ c; a; b ]

let term_uses = function
  | Br _ | Unreachable -> []
  | Cbr (c, _, _) -> [ c ]
  | Switch (v, _, _) -> [ v ]
  | Ret (Some v) -> [ v ]
  | Ret None -> []

(* Rewrite every value in an instruction with [fv]. *)
let map_instr_values fv k =
  match k with
  | Binop (op, t, a, b) -> Binop (op, t, fv a, fv b)
  | Icmp (op, t, a, b) -> Icmp (op, t, fv a, fv b)
  | Fcmp (op, a, b) -> Fcmp (op, fv a, fv b)
  | Alloca n -> Alloca n
  | Load (t, a) -> Load (t, fv a)
  | Store (t, v, a) -> Store (t, fv v, fv a)
  | Ptradd (a, b) -> Ptradd (fv a, fv b)
  | Call (f, args) -> Call (f, List.map fv args)
  | Cast (c, t1, t2, v) -> Cast (c, t1, t2, fv v)
  | Select (c, a, b) -> Select (fv c, fv a, fv b)

let map_term_values fv = function
  | Br l -> Br l
  | Cbr (c, l1, l2) -> Cbr (fv c, l1, l2)
  | Switch (v, d, cs) -> Switch (fv v, d, cs)
  | Ret (Some v) -> Ret (Some (fv v))
  | Ret None -> Ret None
  | Unreachable -> Unreachable

(* Names of the MUTLS source-level intrinsics inserted by front-ends.
   The speculator pass consumes these; they must not survive into the
   executed program (the sequential interpreter treats them as no-ops). *)
let fork_intrinsic = "mutls.fork"
let join_intrinsic = "mutls.join"
let barrier_intrinsic = "mutls.barrier"

let is_source_intrinsic name =
  name = fork_intrinsic || name = join_intrinsic || name = barrier_intrinsic

(* Runtime-library calls inserted by the speculator pass are ordinary
   Call instructions whose callee starts with this prefix; the
   interpreter dispatches them to the TLS runtime. *)
let runtime_prefix = "MUTLS_"
let is_runtime_call name =
  String.length name >= 6 && String.sub name 0 6 = runtime_prefix

(* ------------------------------------------------------------------ *)
(* Runtime-call interning                                              *)
(* ------------------------------------------------------------------ *)

(* The interned form of a MUTLS_* runtime-library callee.  Typed name
   families that dispatch identically (e.g. the three set_fork_reg_*
   suffixes) collapse to one constructor; loads and stores carry their
   access width in bytes. *)
type runtime_fn =
  | Rt_get_cpu
  | Rt_set_fork_reg
  | Rt_set_fork_addr
  | Rt_validate_local
  | Rt_speculate
  | Rt_entry_counter
  | Rt_get_fork_reg
  | Rt_pick_stackaddr
  | Rt_load of int (* access width in bytes *)
  | Rt_load_f64
  | Rt_store of int
  | Rt_store_f64
  | Rt_save_regvar
  | Rt_save_stackvar
  | Rt_check_point
  | Rt_commit
  | Rt_terminate_point
  | Rt_barrier_point
  | Rt_return_point
  | Rt_enter_point
  | Rt_ptr_int_cast
  | Rt_synchronize
  | Rt_sync_counter
  | Rt_sync_rank
  | Rt_sync_entry
  | Rt_bad_sync
  | Rt_restore_regvar of bool (* is_ptr *)
  | Rt_restore_stackvar

let runtime_fn_of_name = function
  | "MUTLS_get_CPU" -> Some Rt_get_cpu
  | "MUTLS_set_fork_reg_i64" | "MUTLS_set_fork_reg_f64"
  | "MUTLS_set_fork_reg_ptr" ->
    Some Rt_set_fork_reg
  | "MUTLS_set_fork_addr" -> Some Rt_set_fork_addr
  | "MUTLS_validate_local_i64" | "MUTLS_validate_local_f64"
  | "MUTLS_validate_local_ptr" ->
    Some Rt_validate_local
  | "MUTLS_speculate" -> Some Rt_speculate
  | "MUTLS_entry_counter" -> Some Rt_entry_counter
  | "MUTLS_get_fork_reg_i64" | "MUTLS_get_fork_reg_f64"
  | "MUTLS_get_fork_reg_ptr" ->
    Some Rt_get_fork_reg
  | "MUTLS_pick_stackaddr" -> Some Rt_pick_stackaddr
  | "MUTLS_load_i64" | "MUTLS_load_ptr" -> Some (Rt_load 8)
  | "MUTLS_load_f64" -> Some Rt_load_f64
  | "MUTLS_load_i32" -> Some (Rt_load 4)
  | "MUTLS_load_i8" | "MUTLS_load_i1" -> Some (Rt_load 1)
  | "MUTLS_store_i64" | "MUTLS_store_ptr" -> Some (Rt_store 8)
  | "MUTLS_store_f64" -> Some Rt_store_f64
  | "MUTLS_store_i32" -> Some (Rt_store 4)
  | "MUTLS_store_i8" | "MUTLS_store_i1" -> Some (Rt_store 1)
  | "MUTLS_save_regvar_i64" | "MUTLS_save_regvar_f64"
  | "MUTLS_save_regvar_ptr" ->
    Some Rt_save_regvar
  | "MUTLS_save_stackvar" -> Some Rt_save_stackvar
  | "MUTLS_check_point" -> Some Rt_check_point
  | "MUTLS_commit" -> Some Rt_commit
  | "MUTLS_terminate_point" -> Some Rt_terminate_point
  | "MUTLS_barrier_point" -> Some Rt_barrier_point
  | "MUTLS_return_point" -> Some Rt_return_point
  | "MUTLS_enter_point" -> Some Rt_enter_point
  | "MUTLS_ptr_int_cast" -> Some Rt_ptr_int_cast
  | "MUTLS_synchronize" -> Some Rt_synchronize
  | "MUTLS_sync_counter" -> Some Rt_sync_counter
  | "MUTLS_sync_rank" -> Some Rt_sync_rank
  | "MUTLS_sync_entry" -> Some Rt_sync_entry
  | "MUTLS_bad_sync" -> Some Rt_bad_sync
  | "MUTLS_restore_regvar_i64" | "MUTLS_restore_regvar_f64" ->
    Some (Rt_restore_regvar false)
  | "MUTLS_restore_regvar_ptr" -> Some (Rt_restore_regvar true)
  | "MUTLS_restore_stackvar" -> Some Rt_restore_stackvar
  | _ -> None

(* Callee classification, done once at compile time by the execution
   engine instead of per call at run time.  Precedence mirrors the
   interpreter's dispatch: runtime prefix, then source intrinsics, then
   ordinary functions/externs. *)
type callee_kind =
  | Runtime of runtime_fn
  | Runtime_unknown (* MUTLS_ prefix, but not a known runtime entry *)
  | Intrinsic
  | Other

let classify_callee name =
  if is_runtime_call name then
    match runtime_fn_of_name name with
    | Some fn -> Runtime fn
    | None -> Runtime_unknown
  else if is_source_intrinsic name then Intrinsic
  else Other

(* ------------------------------------------------------------------ *)
(* Block indexing                                                      *)
(* ------------------------------------------------------------------ *)

let block_array f = Array.of_list f.blocks

(* Name -> layout index.  Later duplicates shadow earlier ones, which
   matches hash-based name lookup (replace keeps the last binding). *)
let block_index_map f =
  let tbl = Hashtbl.create (2 * List.length f.blocks) in
  List.iteri (fun i (b : block) -> Hashtbl.replace tbl b.bname i) f.blocks;
  tbl
