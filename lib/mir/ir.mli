(** MIR: a small SSA intermediate representation modeled on the subset
    of LLVM IR that the MUTLS speculator pass relies on — typed loads
    and stores, SSA registers with phi nodes, direct calls, switch
    dispatch, and entry-block allocas.  It is deliberately language-
    and target-neutral: both front-ends (MiniC, MiniFortran) lower to
    it, and the interpreter executes it directly. *)

(** {1 Types} *)

(** Value types.  [Ptr] is an untyped byte address; [I1] is a boolean. *)
type ty = I1 | I8 | I32 | I64 | F64 | Ptr | Void

val ty_size : ty -> int
(** Size in bytes of a value of this type ([Void] is 0). *)

val ty_to_string : ty -> string

(** Constants.  Integer constants carry their type; [Cnull] is the null
    pointer. *)
type const = Cint of int64 * ty | Cfloat of float | Cnull

type reg = int
(** SSA register id, unique within a function. *)

(** Operand values. *)
type value =
  | Const of const
  | Reg of reg  (** result of an instruction or phi *)
  | Arg of int  (** function parameter, by position *)
  | Global of string  (** address of a global definition *)
  | Funcref of string  (** address of a function (for MUTLS_speculate) *)

(** {2 Convenience constructors} *)

val i64 : int -> value
val i64' : int64 -> value
val i32 : int -> value
val i8 : int -> value
val i1 : bool -> value
val f64 : float -> value
val null : value

(** {1 Instructions} *)

type binop =
  | Add | Sub | Mul | Sdiv | Srem
  | And | Or | Xor | Shl | Lshr | Ashr
  | Fadd | Fsub | Fmul | Fdiv

type icmp = Ieq | Ine | Islt | Isle | Isgt | Isge
type fcmp = Feq | Fne | Flt | Fle | Fgt | Fge

type cast =
  | Trunc | Zext | Sext | Fptosi | Sitofp | Ptrtoint | Inttoptr | Bitcast

type instr_kind =
  | Binop of binop * ty * value * value
  | Icmp of icmp * ty * value * value  (** result [I1]; [ty] is the operand type *)
  | Fcmp of fcmp * value * value  (** result [I1] *)
  | Alloca of int  (** byte size; result [Ptr]; entry block only *)
  | Load of ty * value  (** result [ty]; the operand is an address *)
  | Store of ty * value * value  (** stored value, address; result [Void] *)
  | Ptradd of value * value  (** base pointer + byte offset (I64); result [Ptr] *)
  | Call of string * value list  (** direct call *)
  | Cast of cast * ty * ty * value  (** from-type, to-type, operand *)
  | Select of value * value * value  (** condition, if-true, if-false *)

type instr = {
  id : reg;  (** destination register; meaningful iff [ity <> Void] *)
  ity : ty;  (** result type *)
  kind : instr_kind;
}

type phi = {
  pid : reg;
  pty : ty;
  mutable incoming : (string * value) list;  (** predecessor label, value *)
}

type terminator =
  | Br of string
  | Cbr of value * string * string
  | Switch of value * string * (int64 * string) list
  | Ret of value option
  | Unreachable

type block = {
  bname : string;
  mutable phis : phi list;
  mutable insts : instr list;
  mutable term : terminator;
}

type func = {
  fname : string;
  params : (string * ty) list;
  ret : ty;
  mutable blocks : block list;  (** head = entry block *)
  mutable next_reg : int;
  reg_tys : (reg, ty) Hashtbl.t;
}

(** Global initializers. *)
type ginit =
  | Zero
  | Bytes_init of string
  | Words_init of int64 array
  | Floats_init of float array

type gdef = { gname : string; gsize : int; ginit : ginit }

type edecl = { ename : string; eret : ty; eparams : ty list }
(** External function declaration. *)

type modul = {
  mutable globals : gdef list;
  mutable funcs : func list;
  mutable externs : edecl list;
}

(** {1 Module and function accessors} *)

val create_module : unit -> modul
val add_global : modul -> gdef -> unit

val add_extern : modul -> edecl -> unit
(** Idempotent: re-adding a declaration with the same name is a no-op. *)

val find_func : modul -> string -> func option
val find_func_exn : modul -> string -> func
val find_extern : modul -> string -> edecl option
val find_global : modul -> string -> gdef option

val entry_block : func -> block
(** @raise Invalid_argument on an empty function. *)

val find_block : func -> string -> block option
val find_block_exn : func -> string -> block

val fresh_reg : func -> ty -> reg
(** Allocate a new SSA register of the given type. *)

val reg_ty : func -> reg -> ty
val value_ty : modul -> func -> value -> ty

(** {1 Structural helpers} *)

val term_succs : terminator -> string list
val instr_uses : instr_kind -> value list
val term_uses : terminator -> value list

val map_instr_values : (value -> value) -> instr_kind -> instr_kind
(** Rewrite every operand of an instruction. *)

val map_term_values : (value -> value) -> terminator -> terminator

(** {1 MUTLS intrinsics}

    Front-ends lower the paper's [__builtin_MUTLS_*] builtins to calls
    of these names; the speculator pass consumes them.  Calls whose
    callee starts with ["MUTLS_"] are runtime-library calls inserted by
    the pass and dispatched by the interpreter. *)

val fork_intrinsic : string
val join_intrinsic : string
val barrier_intrinsic : string
val is_source_intrinsic : string -> bool
val runtime_prefix : string
val is_runtime_call : string -> bool

(** {1 Runtime-call interning}

    The compiled execution engine classifies callees once at compile
    time; these types replace the per-call string prefix test and the
    per-call name match on the hot path. *)

(** Interned runtime-library entry points.  Typed name families that
    dispatch identically (e.g. [MUTLS_set_fork_reg_i64/_f64/_ptr])
    collapse to one constructor; loads and stores carry their access
    width in bytes. *)
type runtime_fn =
  | Rt_get_cpu
  | Rt_set_fork_reg
  | Rt_set_fork_addr
  | Rt_validate_local
  | Rt_speculate
  | Rt_entry_counter
  | Rt_get_fork_reg
  | Rt_pick_stackaddr
  | Rt_load of int  (** access width in bytes *)
  | Rt_load_f64
  | Rt_store of int
  | Rt_store_f64
  | Rt_save_regvar
  | Rt_save_stackvar
  | Rt_check_point
  | Rt_commit
  | Rt_terminate_point
  | Rt_barrier_point
  | Rt_return_point
  | Rt_enter_point
  | Rt_ptr_int_cast
  | Rt_synchronize
  | Rt_sync_counter
  | Rt_sync_rank
  | Rt_sync_entry
  | Rt_bad_sync
  | Rt_restore_regvar of bool  (** [is_ptr] *)
  | Rt_restore_stackvar

val runtime_fn_of_name : string -> runtime_fn option
(** [None] for names that are not known runtime entry points (including
    unknown [MUTLS_]-prefixed names). *)

(** Callee classification with the interpreter's dispatch precedence:
    runtime prefix first, then source intrinsics, then everything
    else. *)
type callee_kind =
  | Runtime of runtime_fn
  | Runtime_unknown  (** [MUTLS_] prefix, but not a known runtime entry *)
  | Intrinsic
  | Other

val classify_callee : string -> callee_kind

(** {1 Block indexing} *)

val block_array : func -> block array
(** Blocks in layout order; index 0 is the entry block. *)

val block_index_map : func -> (string, int) Hashtbl.t
(** Name [->] layout index.  Later duplicates shadow earlier ones,
    matching hash-based name lookup. *)
