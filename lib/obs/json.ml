(* Minimal JSON tree, printer and parser for the observability layer.
   Hand-rolled so the tracing subsystem stays dependency-free; covers
   the full JSON grammar but is tuned for the machine-written documents
   the sinks emit (JSON Lines records, Chrome trace_event files). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- printing -------------------------------------------------------- *)

(* Shortest representation that round-trips, preferring the integer
   form: trace times and costs are overwhelmingly integral virtual
   cycles, and a stable rendering is what makes same-seed traces
   byte-identical. *)
let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num f ->
    if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
      Buffer.add_string b "null" (* NaN/inf are not JSON *)
    else Buffer.add_string b (float_to_string f)
  | Str s -> escape_string b s
  | List xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        write b x)
      xs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_string b k;
        Buffer.add_char b ':';
        write b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 128 in
  write b v;
  Buffer.contents b

(* --- parsing --------------------------------------------------------- *)

type parser_state = { src : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> error st (Printf.sprintf "expected %c" c)

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else error st ("expected " ^ word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.src then error st "unterminated string";
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents b
    | '\\' ->
      (if st.pos >= String.length st.src then error st "unterminated escape";
       let e = st.src.[st.pos] in
       st.pos <- st.pos + 1;
       match e with
       | '"' -> Buffer.add_char b '"'
       | '\\' -> Buffer.add_char b '\\'
       | '/' -> Buffer.add_char b '/'
       | 'n' -> Buffer.add_char b '\n'
       | 'r' -> Buffer.add_char b '\r'
       | 't' -> Buffer.add_char b '\t'
       | 'b' -> Buffer.add_char b '\b'
       | 'f' -> Buffer.add_char b '\012'
       | 'u' ->
         if st.pos + 4 > String.length st.src then error st "bad \\u escape";
         let code = int_of_string ("0x" ^ String.sub st.src st.pos 4) in
         st.pos <- st.pos + 4;
         (* UTF-8 encode the code point (no surrogate-pair handling:
            the sinks never emit astral characters). *)
         if code < 0x80 then Buffer.add_char b (Char.chr code)
         else if code < 0x800 then begin
           Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
           Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
         end
         else begin
           Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
           Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
           Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
         end
       | _ -> error st "bad escape");
      go ()
    | c ->
      Buffer.add_char b c;
      go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < String.length st.src && is_num_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then error st "expected number";
  match float_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some f -> Num f
  | None -> error st "malformed number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
    expect st '{';
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          fields ((k, v) :: acc)
        | Some '}' ->
          st.pos <- st.pos + 1;
          Obj (List.rev ((k, v) :: acc))
        | _ -> error st "expected , or }"
      in
      fields []
    end
  | Some '[' ->
    expect st '[';
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let rec elems acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          elems (v :: acc)
        | Some ']' ->
          st.pos <- st.pos + 1;
          List (List.rev (v :: acc))
        | _ -> error st "expected , or ]"
      in
      elems []
    end
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then error st "trailing garbage";
  v

(* --- accessors ------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Num f -> Some f
  | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_bool = function
  | Bool b -> Some b
  | _ -> None

let to_str = function
  | Str s -> Some s
  | _ -> None
