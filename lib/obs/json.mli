(** Minimal dependency-free JSON tree, printer and parser used by the
    trace sinks (JSON Lines, Chrome trace_event) and by {!Report} when
    it reads a trace back. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact (single-line) rendering.  Floats print in their shortest
    round-tripping form, integral values without a decimal point — the
    stable rendering that makes same-seed traces byte-identical. *)

val of_string : string -> t
(** @raise Parse_error on malformed input or trailing garbage. *)

(** {1 Accessors} *)

val member : string -> t -> t option
val to_float : t -> float option
val to_int : t -> int option
val to_bool : t -> bool option
val to_str : t -> string option
