(* Online invariant oracle: a Trace sink that checks the runtime's
   event stream against the fork-model state machine while the program
   runs.  The paper's correctness story — every commit validated,
   rollbacks and NOSYNCs confined to the right subtree, one live thread
   per CPU, buffers finalized before a thread dies — becomes a set of
   machine-checked invariants, so a chaos campaign (Mutls.Chaos) can
   assert not just "same final answer" but "the protocol never entered
   an illegal state along the way".

   The oracle reconstructs the thread tree from Fork/Join/Nosync
   records (including the tree-form child inheritance at joins) and
   tracks per-thread lifecycle: forked -> validated -> verdict
   (commit/rollback) -> finalized -> retired.  On a violation it
   reports the invariant name plus a minimal counterexample window: the
   recent records mentioning the threads involved in the offending
   record, extracted from a bounded ring — enough context to replay the
   illegal transition without dumping the whole trace.

   Checked invariants (names as reported in violations):
   - commit-without-validate: a Commit must consume an immediately
     preceding successful Validate of the same thread;
   - commit-after-nosync: a NOSYNC'd thread never commits (its region
     was abandoned; it may only roll back);
   - rollback-without-failed-validate: Conflict/Stale_local rollbacks
     must consume a failed Validate;
   - overflow-rollback-without-overflow: a Buffer_overflow rollback
     must be announced by an Overflow record;
   - overflow-before-spill-exhaustion: an Overflow record carrying a
     spill-tier capacity must be preceded by at least that many Spill
     records from the same thread — with the tier enabled, genuine
     overflow is legal only once the tier really filled;
   - double-verdict / validate-after-verdict / fork-after-verdict:
     a thread reaches at most one terminal verdict and does nothing
     afterwards;
   - fork-by-retired / fork-by-nosynced: only live, unstopped threads
     fork;
   - duplicate-thread-id: fork ids are fresh;
   - rank-conflict / bad-rank: at most one live thread per virtual CPU,
     and speculation never lands on rank 0 (the non-speculative CPU);
   - join-of-non-child / join-verdict-mismatch: joins name a current
     child (tree-form inheritance included) whose verdict matches the
     reported outcome;
   - retire-verdict-mismatch / unfinalized-retire / double-retire:
     Retire agrees with the verdict and buffers were finalized first;
   - event-from-unknown-thread: speculative lifecycle events only from
     forked threads;
   - unretired-thread (end of stream): every forked thread eventually
     retires — no leaked live speculation. *)

type violation = {
  invariant : string; (* short kebab-case invariant id *)
  message : string;
  record : Trace.record option; (* None for end-of-stream checks *)
  window : Trace.record list; (* minimal counterexample, oldest first *)
}

exception Violation of violation

let violation_to_string v =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "oracle violation [%s]: %s\n" v.invariant v.message);
  (match v.record with
  | Some r ->
    Buffer.add_string b ("  at: " ^ Trace.pretty_line r ^ "\n")
  | None -> Buffer.add_string b "  at: end of stream\n");
  if v.window <> [] then begin
    Buffer.add_string b "  counterexample window:\n";
    List.iter
      (fun r -> Buffer.add_string b ("    " ^ Trace.pretty_line r ^ "\n"))
      v.window
  end;
  Buffer.contents b

(* --- per-thread lifecycle state -------------------------------------- *)

type verdict = V_commit | V_rollback

type tstate = {
  id : int;
  mutable parent : int; (* current parent; updated on inheritance *)
  mutable children : int list; (* currently tracked children *)
  rank : int;
  mutable last_validate : bool option; (* unconsumed Validate outcome *)
  mutable verdict : verdict option;
  mutable nosynced : bool;
  mutable retired : bool;
  mutable finalized : bool; (* saw a "finalize" charge *)
  mutable pending_overflow : bool; (* Overflow seen, Rollback due *)
  mutable spills_seen : int; (* Spill records from this thread *)
}

type t = {
  threads : (int, tstate) Hashtbl.t;
  rank_occupant : (int, int) Hashtbl.t; (* rank -> live thread id *)
  ring : Trace.record option array; (* recent records, for windows *)
  mutable ring_pos : int;
  mutable checked : int;
  halt : bool; (* raise on violation vs. collect *)
  mutable violations : violation list; (* newest first while collecting *)
  mutable finished : bool;
}

let create ?(window = 128) ?(halt = true) () =
  {
    threads = Hashtbl.create 64;
    rank_occupant = Hashtbl.create 8;
    ring = Array.make (max 8 window) None;
    ring_pos = 0;
    checked = 0;
    halt;
    violations = [];
    finished = false;
  }

let checked t = t.checked
let violations t = List.rev t.violations

let remember t r =
  t.ring.(t.ring_pos) <- Some r;
  t.ring_pos <- (t.ring_pos + 1) mod Array.length t.ring

(* Thread ids a record mentions — the emitting thread plus any child
   named in the event payload. *)
let involved (r : Trace.record) =
  r.Trace.thread
  ::
  (match r.Trace.event with
  | Trace.Fork { child; _ } | Trace.Join { child; _ } -> [ child ]
  | _ -> [])

let ring_window t ids =
  let n = Array.length t.ring in
  let out = ref [] in
  for k = n - 1 downto 0 do
    match t.ring.((t.ring_pos + k) mod n) with
    | Some r when List.exists (fun i -> List.mem i ids) (involved r) ->
      out := r :: !out
    | _ -> ()
  done;
  List.rev !out (* oldest first *)

let report t ~invariant ~record fmt =
  Printf.ksprintf
    (fun message ->
      let window =
        match record with
        | Some r -> ring_window t (involved r)
        | None -> []
      in
      let v = { invariant; message; record; window } in
      if t.halt then raise (Violation v) else t.violations <- v :: t.violations)
    fmt

(* --- event transition checks ----------------------------------------- *)

let find t id = Hashtbl.find_opt t.threads id

(* The emitting side of Fork/Join/Charge may be the main thread, which
   is never forked: materialise its state on first sight. *)
let emitter t (r : Trace.record) =
  match find t r.Trace.thread with
  | Some ts -> Some ts
  | None ->
    if r.Trace.main then begin
      let ts =
        {
          id = r.Trace.thread;
          parent = -1;
          children = [];
          rank = r.Trace.rank;
          last_validate = None;
          verdict = None;
          nosynced = false;
          retired = false;
          finalized = false;
          pending_overflow = false;
          spills_seen = 0;
        }
      in
      Hashtbl.add t.threads r.Trace.thread ts;
      Some ts
    end
    else None

(* A speculative-lifecycle event from a thread the stream never forked
   is itself a violation (except for the main thread). *)
let spec_emitter t r ~invariant =
  match emitter t r with
  | Some ts -> Some ts
  | None ->
    report t ~invariant:"event-from-unknown-thread" ~record:(Some r)
      "%s from thread %d which was never forked" invariant r.Trace.thread;
    None

let verdict_name = function V_commit -> "commit" | V_rollback -> "rollback"

let feed t (r : Trace.record) =
  t.checked <- t.checked + 1;
  (if r.Trace.thread >= 0 then
     match r.Trace.event with
     | Trace.Fork { child; child_rank; point = _ } -> (
       (match emitter t r with
       | None ->
         report t ~invariant:"event-from-unknown-thread" ~record:(Some r)
           "fork by thread %d which was never forked" r.Trace.thread
       | Some p ->
         if p.retired then
           report t ~invariant:"fork-by-retired" ~record:(Some r)
             "thread %d forked child %d after retiring" p.id child;
         if p.nosynced then
           report t ~invariant:"fork-by-nosynced" ~record:(Some r)
             "thread %d forked child %d after being NOSYNC'd" p.id child;
         if p.verdict <> None then
           report t ~invariant:"fork-after-verdict" ~record:(Some r)
             "thread %d forked child %d after its %s" p.id child
             (verdict_name (Option.get p.verdict));
         p.children <- child :: p.children);
       if Hashtbl.mem t.threads child then
         report t ~invariant:"duplicate-thread-id" ~record:(Some r)
           "thread id %d forked twice" child
       else begin
         if child_rank < 1 then
           report t ~invariant:"bad-rank" ~record:(Some r)
             "child %d forked onto rank %d (rank 0 is the non-speculative \
              CPU)"
             child child_rank;
         (match Hashtbl.find_opt t.rank_occupant child_rank with
         | Some other ->
           report t ~invariant:"rank-conflict" ~record:(Some r)
             "child %d forked onto rank %d while thread %d is still live \
              there"
             child child_rank other
         | None -> ());
         Hashtbl.replace t.rank_occupant child_rank child;
         Hashtbl.add t.threads child
           {
             id = child;
             parent = r.Trace.thread;
             children = [];
             rank = child_rank;
             last_validate = None;
             verdict = None;
             nosynced = false;
             retired = false;
             finalized = false;
             pending_overflow = false;
             spills_seen = 0;
           }
       end)
     | Trace.Validate { ok; _ } -> (
       match spec_emitter t r ~invariant:"validate" with
       | None -> ()
       | Some ts ->
         if ts.verdict <> None then
           report t ~invariant:"validate-after-verdict" ~record:(Some r)
             "thread %d validated after its %s" ts.id
             (verdict_name (Option.get ts.verdict));
         ts.last_validate <- Some ok)
     | Trace.Commit _ -> (
       match spec_emitter t r ~invariant:"commit" with
       | None -> ()
       | Some ts ->
         (match ts.verdict with
         | Some v ->
           report t ~invariant:"double-verdict" ~record:(Some r)
             "thread %d committed after an earlier %s" ts.id (verdict_name v)
         | None -> ());
         if ts.nosynced then
           report t ~invariant:"commit-after-nosync" ~record:(Some r)
             "thread %d committed after being NOSYNC'd (abandoned subtree)"
             ts.id;
         (match ts.last_validate with
         | Some true -> ()
         | Some false ->
           report t ~invariant:"commit-without-validate" ~record:(Some r)
             "thread %d committed though its validation failed" ts.id
         | None ->
           report t ~invariant:"commit-without-validate" ~record:(Some r)
             "thread %d committed without a preceding validation" ts.id);
         ts.last_validate <- None;
         ts.verdict <- Some V_commit)
     | Trace.Rollback { reason; _ } -> (
       match spec_emitter t r ~invariant:"rollback" with
       | None -> ()
       | Some ts ->
         (match ts.verdict with
         | Some v ->
           report t ~invariant:"double-verdict" ~record:(Some r)
             "thread %d rolled back after an earlier %s" ts.id
             (verdict_name v)
         | None -> ());
         (match reason with
         | Trace.Conflict | Trace.Stale_local -> (
           match ts.last_validate with
           | Some false -> ()
           | _ ->
             report t ~invariant:"rollback-without-failed-validate"
               ~record:(Some r)
               "thread %d rolled back (%s) without a failed validation"
               ts.id
               (Trace.rollback_reason_to_string reason))
         | Trace.Buffer_overflow ->
           if not ts.pending_overflow then
             report t ~invariant:"overflow-rollback-without-overflow"
               ~record:(Some r)
               "thread %d rolled back on overflow without an Overflow \
                record"
               ts.id
         | Trace.Abandoned | Trace.Bad_access -> ());
         ts.pending_overflow <- false;
         ts.last_validate <- None;
         ts.verdict <- Some V_rollback)
     | Trace.Overflow { spill_cap } -> (
       match spec_emitter t r ~invariant:"overflow" with
       | None -> ()
       | Some ts ->
         (* with a spill tier in force, genuine overflow is legal only
            after the tier really filled: the thread must have spilled
            at least [spill_cap] times (the tier was empty when it took
            the pooled buffer over — finalize clears it) *)
         if spill_cap > 0 && ts.spills_seen < spill_cap then
           report t ~invariant:"overflow-before-spill-exhaustion"
             ~record:(Some r)
             "thread %d overflowed with only %d of %d spill slots used"
             ts.id ts.spills_seen spill_cap;
         ts.pending_overflow <- true)
     | Trace.Nosync _ -> (
       (* NOSYNC may legitimately hit a thread that already rolled back
          unilaterally (its sync flag was still unset), so only the
          bookkeeping is updated here; the teeth are in
          commit-after-nosync. *)
       match spec_emitter t r ~invariant:"nosync" with
       | None -> ()
       | Some ts ->
         ts.nosynced <- true;
         (match find t ts.parent with
         | Some p ->
           p.children <- List.filter (fun c -> c <> ts.id) p.children
         | None -> ()))
     | Trace.Join { child; committed } -> (
       match emitter t r with
       | None ->
         report t ~invariant:"event-from-unknown-thread" ~record:(Some r)
           "join by thread %d which was never forked" r.Trace.thread
       | Some p -> (
         match find t child with
         | None ->
           report t ~invariant:"join-of-non-child" ~record:(Some r)
             "thread %d joined unknown thread %d" p.id child
         | Some c ->
           if not (List.mem child p.children) then
             report t ~invariant:"join-of-non-child" ~record:(Some r)
               "thread %d joined thread %d which is not among its current \
                children"
               p.id child;
           let actual =
             match c.verdict with
             | Some V_commit -> true
             | Some V_rollback | None -> false
           in
           if committed <> actual then
             report t ~invariant:"join-verdict-mismatch" ~record:(Some r)
               "join of thread %d reported committed=%b but its verdict is \
                %s"
               child committed
               (match c.verdict with
               | Some v -> verdict_name v
               | None -> "missing");
           (* tree-form inheritance: the joiner adopts the child's
              children, whatever the verdict *)
           p.children <- List.filter (fun x -> x <> child) p.children;
           List.iter
             (fun g ->
               match find t g with
               | Some gs when not gs.nosynced ->
                 gs.parent <- p.id;
                 p.children <- g :: p.children
               | _ -> ())
             c.children;
           c.children <- []))
     | Trace.Retire { committed; _ } -> (
       match spec_emitter t r ~invariant:"retire" with
       | None -> ()
       | Some ts ->
         if ts.retired then
           report t ~invariant:"double-retire" ~record:(Some r)
             "thread %d retired twice" ts.id;
         (match (committed, ts.verdict) with
         | true, Some V_commit -> ()
         | true, (Some V_rollback | None) ->
           report t ~invariant:"retire-verdict-mismatch" ~record:(Some r)
             "thread %d retired committed=true without a commit" ts.id
         | false, Some V_commit ->
           report t ~invariant:"retire-verdict-mismatch" ~record:(Some r)
             "thread %d retired committed=false after a commit" ts.id
         | false, (Some V_rollback | None) -> ());
         if ts.verdict <> None && not ts.finalized then
           report t ~invariant:"unfinalized-retire" ~record:(Some r)
             "thread %d retired without finalizing its buffers" ts.id;
         ts.retired <- true;
         (match Hashtbl.find_opt t.rank_occupant ts.rank with
         | Some occ when occ = ts.id -> Hashtbl.remove t.rank_occupant ts.rank
         | _ -> ()))
     | Trace.Charge { category; _ } -> (
       if category = "finalize" then
         match find t r.Trace.thread with
         | Some ts -> ts.finalized <- true
         | None -> ())
     | Trace.Spill _ -> (
       match emitter t r with
       | Some ts -> ts.spills_seen <- ts.spills_seen + 1
       | None -> ())
     | Trace.Speculate _ | Trace.Check _ | Trace.Barrier _ | Trace.Park _
     | Trace.Frame _ | Trace.Sched _ | Trace.Run_end ->
       ());
  remember t r

(* End-of-stream checks.  Retires of abandoned threads can trail the
   main thread's Run_end record, so liveness is only checkable once the
   stream is complete. *)
let finish t =
  if not t.finished then begin
    t.finished <- true;
    (* every forked thread must retire: a live leak means a speculation
       was neither joined nor NOSYNC'd to completion *)
    let leaked =
      Hashtbl.fold
        (fun _ ts acc ->
          if ts.parent >= 0 && not ts.retired then ts.id :: acc else acc)
        t.threads []
    in
    match List.sort compare leaked with
    | [] -> ()
    | ids ->
      report t ~invariant:"unretired-thread" ~record:None
        "threads [%s] never retired: leaked live speculation"
        (String.concat "; " (List.map string_of_int ids))
  end

let sink t =
  {
    Trace.enabled = true;
    emit = (fun r -> feed t r);
    close = (fun () -> finish t);
  }

(* Post-hoc convenience: run a whole recorded stream through a fresh
   oracle, collecting violations instead of raising. *)
let check_records ?window records =
  let t = create ?window ~halt:false () in
  List.iter (feed t) records;
  finish t;
  violations t
