(** Online invariant oracle for the TLS runtime's event stream.

    A {!t} is a streaming checker of the fork-model state machine,
    usable as a {!Trace.sink} (tee it beside a file sink via
    [Config.trace_sink]) or fed record-by-record.  It reconstructs the
    thread tree from Fork/Join/Nosync records — including the
    tree-form child inheritance at joins — and verifies, among others:
    every commit consumes an immediately preceding successful
    validation; Conflict/Stale_local rollbacks consume a failed one;
    a NOSYNC'd thread never commits; at most one live thread per
    virtual CPU and none on rank 0; joins name a current child and
    agree with its verdict; buffers are finalized before a thread
    retires; and (at end of stream) no forked thread leaks unretired.

    On a violation the oracle either raises {!Violation} (default) or
    collects it (create with [~halt:false]), attaching a minimal
    counterexample window: the recent records that mention the threads
    involved, cut from a bounded ring. *)

type violation = {
  invariant : string;  (** short kebab-case invariant id *)
  message : string;
  record : Trace.record option;  (** [None] for end-of-stream checks *)
  window : Trace.record list;  (** counterexample context, oldest first *)
}

exception Violation of violation

val violation_to_string : violation -> string
(** Multi-line rendering: invariant, message, offending record and the
    counterexample window as {!Trace.pretty_line}s. *)

type t

val create : ?window:int -> ?halt:bool -> unit -> t
(** [window] (default 128) bounds the counterexample ring; [halt]
    (default [true]) makes {!feed} raise {!Violation} on the first
    offence — pass [false] to collect into {!violations} instead and
    keep checking. *)

val feed : t -> Trace.record -> unit
(** Check one record and fold it into the oracle's state.
    @raise Violation in halting mode. *)

val finish : t -> unit
(** End-of-stream checks (thread leaks).  Idempotent.
    @raise Violation in halting mode. *)

val sink : t -> Trace.sink
(** The oracle as a trace sink; [close] runs {!finish}. *)

val checked : t -> int
(** Records fed so far. *)

val violations : t -> violation list
(** Collected violations, oldest first (empty in halting mode unless
    caught and resumed). *)

val check_records : ?window:int -> Trace.record list -> violation list
(** Post-hoc: run a complete recorded stream through a fresh
    non-halting oracle and return every violation found. *)
