(* Speculation profiler: per-fork-point payoff attribution, conflict
   hot-address analysis, per-rank utilization.

   This is a streaming fold over the trace — one [feed] per record into
   state bounded by the number of distinct fork points, live threads,
   touched addresses and ranks, never the trace itself — so the same
   code profiles a run online (as a [Trace.sink] tee'd beside the JSONL
   file sink) and post-hoc (`mutlsc profile TRACE.jsonl`), and the two
   are identical by construction.

   Attribution sources:
   - [Fork {child; point}] counts the fork and remembers which point
     the child speculates on (dropped again at its [Retire]);
   - [Rollback {reason; point}] charges the rollback to its fork point;
   - [Nosync {point}] counts subtree abandonments per point;
   - [Retire {committed; stats}] carries the thread's final accounting:
     its "work" is committed (useful) cycles, its "wasted work" is
     rollback-discarded cycles — the runtime already reclassified work
     at the rollback, so the split needs no replay here — and both are
     booked to the thread's fork point and to its rank;
   - main-thread [Charge]s feed rank 0 (the main thread never retires);
   - [Validate {ok = false; addr}] and [Park]/[Spill {addr}] build the
     per-address conflict histograms. *)

(* --- per-fork-point state ------------------------------------------- *)

let all_reasons =
  Trace.[ Conflict; Stale_local; Abandoned; Buffer_overflow; Bad_access ]

let n_reasons = List.length all_reasons

let reason_index = function
  | Trace.Conflict -> 0
  | Trace.Stale_local -> 1
  | Trace.Abandoned -> 2
  | Trace.Buffer_overflow -> 3
  | Trace.Bad_access -> 4

type point_stat = {
  point : int;
  forks : int;
  commits : int;
  rollbacks : (Trace.rollback_reason * int) list;
  nosyncs : int;
  committed_cycles : float;
  wasted_cycles : float;
}

let rollback_total p = List.fold_left (fun a (_, n) -> a + n) 0 p.rollbacks

let payoff p =
  let total = p.committed_cycles +. p.wasted_cycles in
  if total <= 0.0 then 1.0 else p.committed_cycles /. total

let wasted_ratio p =
  let total = p.committed_cycles +. p.wasted_cycles in
  if total <= 0.0 then 0.0 else p.wasted_cycles /. total

type hot_addr = { addr : int; conflicts : int; spills : int }

type rank_util = {
  rank : int;
  busy : float;
  discarded : float;
  overhead : float;
  idle : float;
}

type t = {
  runtime : float;
  events : int;
  points : point_stat list;
  hot_addrs : hot_addr list;
  ranks : rank_util list;
}

(* --- advisor --------------------------------------------------------- *)

type advice = { a_point : int; a_forks : int; a_wasted_ratio : float }

let advise ?(threshold = 0.5) ?(min_forks = 1) t =
  List.filter_map
    (fun p ->
      let r = wasted_ratio p in
      if r > threshold && p.forks >= min_forks then
        Some { a_point = p.point; a_forks = p.forks; a_wasted_ratio = r }
      else None)
    t.points
  |> List.sort (fun a b -> compare b.a_wasted_ratio a.a_wasted_ratio)

(* --- aggregation state ----------------------------------------------- *)

type pacc = {
  mutable p_forks : int;
  mutable p_commits : int;
  p_rollbacks : int array; (* indexed by reason *)
  mutable p_nosyncs : int;
  mutable p_committed : float;
  mutable p_wasted : float;
}

type aacc = { mutable h_conflicts : int; mutable h_spills : int }

type racc = {
  mutable u_busy : float;
  mutable u_discarded : float;
  mutable u_overhead : float;
  mutable u_idle : float;
}

type agg = {
  mutable g_runtime : float;
  mutable g_events : int;
  g_points : (int, pacc) Hashtbl.t;
  g_threads : (int, int) Hashtbl.t; (* live thread id -> fork point *)
  g_addrs : (int, aacc) Hashtbl.t;
  g_ranks : (int, racc) Hashtbl.t;
}

let create () =
  {
    g_runtime = 0.0;
    g_events = 0;
    g_points = Hashtbl.create 16;
    g_threads = Hashtbl.create 64;
    g_addrs = Hashtbl.create 64;
    g_ranks = Hashtbl.create 8;
  }

let point_of a point =
  match Hashtbl.find_opt a.g_points point with
  | Some p -> p
  | None ->
    let p =
      { p_forks = 0; p_commits = 0; p_rollbacks = Array.make n_reasons 0;
        p_nosyncs = 0; p_committed = 0.0; p_wasted = 0.0 }
    in
    Hashtbl.replace a.g_points point p;
    p

let addr_of a addr =
  match Hashtbl.find_opt a.g_addrs addr with
  | Some h -> h
  | None ->
    let h = { h_conflicts = 0; h_spills = 0 } in
    Hashtbl.replace a.g_addrs addr h;
    h

let rank_of a rank =
  match Hashtbl.find_opt a.g_ranks rank with
  | Some u -> u
  | None ->
    let u = { u_busy = 0.0; u_discarded = 0.0; u_overhead = 0.0; u_idle = 0.0 } in
    Hashtbl.replace a.g_ranks rank u;
    u

(* Classify one Stats category into a utilization bucket.  The names
   follow Stats.category_name; unknown categories count as overhead so
   the buckets stay exhaustive if the accounting grows. *)
let book_category u cat v =
  match cat with
  | "work" -> u.u_busy <- u.u_busy +. v
  | "wasted work" -> u.u_discarded <- u.u_discarded +. v
  | "idle" | "join" -> u.u_idle <- u.u_idle +. v
  | _ -> u.u_overhead <- u.u_overhead +. v

let assoc_get stats name =
  match List.assoc_opt name stats with Some v -> v | None -> 0.0

let feed a (r : Trace.record) =
  a.g_events <- a.g_events + 1;
  match r.Trace.event with
  | Trace.Fork { child; point; _ } ->
    (point_of a point).p_forks <- (point_of a point).p_forks + 1;
    Hashtbl.replace a.g_threads child point
  | Trace.Rollback { reason; point } ->
    let p = point_of a point in
    let i = reason_index reason in
    p.p_rollbacks.(i) <- p.p_rollbacks.(i) + 1
  | Trace.Nosync { point } ->
    (point_of a point).p_nosyncs <- (point_of a point).p_nosyncs + 1
  | Trace.Retire { committed; stats; _ } ->
    let point =
      match Hashtbl.find_opt a.g_threads r.Trace.thread with
      | Some p -> p
      | None -> -1 (* forked before the trace started *)
    in
    Hashtbl.remove a.g_threads r.Trace.thread;
    let p = point_of a point in
    let work = assoc_get stats "work" in
    let wasted = assoc_get stats "wasted work" in
    if committed then p.p_commits <- p.p_commits + 1;
    p.p_committed <- p.p_committed +. work;
    p.p_wasted <- p.p_wasted +. wasted;
    let u = rank_of a r.Trace.rank in
    List.iter (fun (cat, v) -> book_category u cat v) stats
  | Trace.Charge { category; cost } ->
    (* Speculative threads' charges are covered by their Retire stats;
       only the main thread never retires, so its charges feed its rank
       directly (it never rolls back, so no reclassification needed). *)
    if r.Trace.main then book_category (rank_of a r.Trace.rank) category cost
  | Trace.Validate { ok = false; addr = Some addr; _ } ->
    let h = addr_of a addr in
    h.h_conflicts <- h.h_conflicts + 1
  | Trace.Park { addr } | Trace.Spill { addr } ->
    (* parks and spill-tier insertions both mark a capacity-pressured
       word; old traces' "spill" records (parks, at the time) read back
       as [Spill] and land in the same histogram *)
    let h = addr_of a addr in
    h.h_spills <- h.h_spills + 1
  | Trace.Run_end -> a.g_runtime <- r.Trace.time
  | _ -> ()

let sink a =
  { Trace.enabled = true; emit = feed a; close = ignore }

let finish a =
  let points =
    Hashtbl.fold
      (fun point (p : pacc) acc ->
        {
          point;
          forks = p.p_forks;
          commits = p.p_commits;
          rollbacks =
            List.map (fun rs -> (rs, p.p_rollbacks.(reason_index rs))) all_reasons;
          nosyncs = p.p_nosyncs;
          committed_cycles = p.p_committed;
          wasted_cycles = p.p_wasted;
        }
        :: acc)
      a.g_points []
    |> List.sort (fun x y -> compare x.point y.point)
  in
  let hot_addrs =
    Hashtbl.fold
      (fun addr h acc ->
        { addr; conflicts = h.h_conflicts; spills = h.h_spills } :: acc)
      a.g_addrs []
    |> List.sort (fun x y ->
           match
             compare (y.conflicts + y.spills) (x.conflicts + x.spills)
           with
           | 0 -> compare x.addr y.addr
           | c -> c)
  in
  let ranks =
    Hashtbl.fold
      (fun rank u acc ->
        { rank; busy = u.u_busy; discarded = u.u_discarded;
          overhead = u.u_overhead; idle = u.u_idle }
        :: acc)
      a.g_ranks []
    |> List.sort (fun x y -> compare x.rank y.rank)
  in
  { runtime = a.g_runtime; events = a.g_events; points; hot_addrs; ranks }

let of_records records =
  let a = create () in
  List.iter (feed a) records;
  finish a

(* --- in-process per-point accumulator -------------------------------- *)

(* The same payoff arithmetic as [point_stat]/[pacc] above, packaged as
   a tiny mutable cell the runtime's policy engine can feed directly at
   commit/rollback/retire time — in-process reuse of the profiler's
   aggregation shapes instead of a post-hoc fold over the trace. *)

module Acc = struct
  type t = {
    mutable forks : int;
    mutable commits : int;
    mutable rollbacks : int;
    mutable retires : int;
    mutable committed : float;
    mutable wasted : float;
  }

  let create () =
    { forks = 0; commits = 0; rollbacks = 0; retires = 0;
      committed = 0.0; wasted = 0.0 }

  let fork t = t.forks <- t.forks + 1
  let commit t = t.commits <- t.commits + 1
  let rollback t = t.rollbacks <- t.rollbacks + 1

  let retire t ~committed ~wasted =
    t.retires <- t.retires + 1;
    t.committed <- t.committed +. committed;
    t.wasted <- t.wasted +. wasted

  let forks t = t.forks
  let commits t = t.commits
  let rollbacks t = t.rollbacks
  let retires t = t.retires

  let payoff t =
    let total = t.committed +. t.wasted in
    if total <= 0.0 then 1.0 else t.committed /. total

  let wasted_ratio t =
    let total = t.committed +. t.wasted in
    if total <= 0.0 then 0.0 else t.wasted /. total
end

(* --- JSON ------------------------------------------------------------ *)

let to_json ?threshold ?min_forks t =
  let num f = Json.Num f in
  let int i = Json.Num (float_of_int i) in
  let point_json p =
    Json.Obj
      [ ("point", int p.point);
        ("forks", int p.forks);
        ("commits", int p.commits);
        ("rollbacks",
         Json.Obj
           (List.filter_map
              (fun (rs, n) ->
                if n = 0 then None
                else Some (Trace.rollback_reason_to_string rs, int n))
              p.rollbacks));
        ("nosyncs", int p.nosyncs);
        ("committed_cycles", num p.committed_cycles);
        ("wasted_cycles", num p.wasted_cycles);
        ("payoff", num (payoff p));
        ("wasted_ratio", num (wasted_ratio p)) ]
  in
  let addr_json h =
    Json.Obj
      [ ("addr", int h.addr);
        ("hex", Json.Str (Printf.sprintf "0x%x" h.addr));
        ("conflicts", int h.conflicts);
        ("spills", int h.spills) ]
  in
  let rank_json u =
    Json.Obj
      [ ("rank", int u.rank);
        ("busy", num u.busy);
        ("discarded", num u.discarded);
        ("overhead", num u.overhead);
        ("idle", num u.idle) ]
  in
  let advice_json v =
    Json.Obj
      [ ("point", int v.a_point);
        ("forks", int v.a_forks);
        ("wasted_ratio", num v.a_wasted_ratio);
        ("recommend", Json.Str "no-speculate") ]
  in
  Json.Obj
    [ ("runtime", num t.runtime);
      ("events", int t.events);
      ("points", Json.List (List.map point_json t.points));
      ("hot_addresses", Json.List (List.map addr_json t.hot_addrs));
      ("ranks", Json.List (List.map rank_json t.ranks));
      ("advice",
       Json.List (List.map advice_json (advise ?threshold ?min_forks t))) ]

(* --- text ------------------------------------------------------------ *)

let pp ?(threshold = 0.5) ?min_forks ?(top = 10) fmt t =
  Format.fprintf fmt "profile: %d events, runtime %.0f cycles@." t.events
    t.runtime;
  Format.fprintf fmt "fork-point payoff:@.";
  Format.fprintf fmt "  %6s %6s %7s %9s %6s %12s %12s %7s@." "point" "forks"
    "commits" "rollbacks" "nosync" "committed" "wasted" "payoff";
  List.iter
    (fun p ->
      Format.fprintf fmt "  %6d %6d %7d %9d %6d %12.0f %12.0f %6.1f%%@."
        p.point p.forks p.commits (rollback_total p) p.nosyncs
        p.committed_cycles p.wasted_cycles
        (100.0 *. payoff p);
      let reasons =
        List.filter_map
          (fun (rs, n) ->
            if n = 0 then None
            else
              Some
                (Printf.sprintf "%s=%d" (Trace.rollback_reason_to_string rs) n))
          p.rollbacks
      in
      if reasons <> [] then
        Format.fprintf fmt "         (rollbacks: %s)@."
          (String.concat " " reasons))
    t.points;
  (match t.hot_addrs with
  | [] -> Format.fprintf fmt "no conflict or spill addresses recorded@."
  | addrs ->
    Format.fprintf fmt "hot conflict addresses (top %d of %d):@."
      (min top (List.length addrs))
      (List.length addrs);
    List.iteri
      (fun i h ->
        if i < top then
          Format.fprintf fmt "  %-12s conflicts=%d spills=%d@."
            (Printf.sprintf "0x%x" h.addr)
            h.conflicts h.spills)
      addrs);
  Format.fprintf fmt "rank utilization (%% of runtime):@.";
  let pct v = if t.runtime > 0.0 then 100.0 *. v /. t.runtime else 0.0 in
  List.iter
    (fun u ->
      Format.fprintf fmt
        "  rank %3d: busy %5.1f%%  discarded %5.1f%%  overhead %5.1f%%  idle \
         %5.1f%%@."
        u.rank (pct u.busy) (pct u.discarded) (pct u.overhead) (pct u.idle))
    t.ranks;
  match advise ~threshold ?min_forks t with
  | [] ->
    Format.fprintf fmt
      "advisor: no fork point above the %.0f%% wasted-work threshold@."
      (100.0 *. threshold)
  | advice ->
    List.iter
      (fun v ->
        Format.fprintf fmt
          "advisor: point %d wastes %.1f%% of its work over %d fork(s) — \
           recommend no-speculate@."
          v.a_point
          (100.0 *. v.a_wasted_ratio)
          v.a_forks)
      advice
