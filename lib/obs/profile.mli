(** Speculation profiler: fold a trace into per-fork-point payoff
    attribution, conflict hot-address histograms and per-rank
    utilization — the questions a MUTLS user actually asks of a run:
    {i which} fork point is paying off, {i which} address is causing
    the rollbacks, and {i which} virtual CPUs are doing useful work.

    The aggregator is streaming: {!feed} folds one record at a time
    into bounded state (per fork point, per live thread, per touched
    address, per rank — never the whole trace), so {!sink} can run
    tee'd alongside a JSONL file sink during execution at no extra
    memory cost, and a post-hoc {!of_records} over the same records
    produces the identical {!t}.

    Attribution relies on the enriched events: [Rollback] carries the
    thread's fork [point], [Validate {ok = false}] carries the first
    conflicting word address, [Retire] carries the thread's final
    per-category accounting. *)

(** {1 Profile data} *)

type point_stat = {
  point : int;  (** fork/join point id; [-1] groups unattributable work *)
  forks : int;
  commits : int;
  rollbacks : (Trace.rollback_reason * int) list;
      (** every reason, in declaration order (zero counts included) *)
  nosyncs : int;  (** subtree abandonments originating at this point *)
  committed_cycles : float;  (** useful work of committed threads *)
  wasted_cycles : float;  (** work discarded by rollbacks *)
}

val rollback_total : point_stat -> int

val payoff : point_stat -> float
(** [committed / (committed + wasted)] cycles; [1.0] when the point has
    recorded no cycles at all. *)

val wasted_ratio : point_stat -> float
(** [wasted / (committed + wasted)] cycles; [0.0] when no cycles. *)

type hot_addr = {
  addr : int;  (** word address *)
  conflicts : int;  (** failed validations first-conflicting here *)
  spills : int;
      (** capacity pressure here: hash-conflict parks plus spill-tier
          insertions (old traces' "spill" records included) *)
}

type rank_util = {
  rank : int;  (** virtual CPU; 0 is the non-speculative thread *)
  busy : float;  (** useful work cycles *)
  discarded : float;  (** rollback-discarded (wasted work) cycles *)
  overhead : float;  (** fork / find CPU / validation / commit / finalize *)
  idle : float;  (** idle and join-wait cycles *)
}

type t = {
  runtime : float;  (** virtual time at [Run_end]; [0.0] if truncated *)
  events : int;  (** records folded *)
  points : point_stat list;  (** sorted by point id *)
  hot_addrs : hot_addr list;
      (** sorted by conflicts+spills descending, then address *)
  ranks : rank_util list;  (** sorted by rank *)
}

(** {1 Advisor}

    A fork point whose wasted-work ratio exceeds the threshold is
    costing more than it contributes: the advisor recommends turning
    speculation off there (feedback toward [Auto_annotate]'s fork-point
    decisions, in the spirit of Prophet's per-spawn-point
    profitability). *)

type advice = {
  a_point : int;
  a_forks : int;
  a_wasted_ratio : float;
}

val advise : ?threshold:float -> ?min_forks:int -> t -> advice list
(** Fork points with [wasted_ratio > threshold] (default [0.5]) and at
    least [min_forks] forks (default [1], so even a single wasteful
    speculation is reported), worst first. *)

(** {1 In-process accumulator}

    The profiler's per-fork-point payoff arithmetic ({!payoff} /
    {!wasted_ratio}, including their empty-cell conventions), packaged
    as a mutable cell that the runtime's policy engine feeds directly
    at commit/rollback/retire time — the same aggregation shape as the
    trace fold, reused in-process rather than post-hoc. *)

module Acc : sig
  type t

  val create : unit -> t
  val fork : t -> unit
  val commit : t -> unit
  val rollback : t -> unit

  val retire : t -> committed:float -> wasted:float -> unit
  (** Book one retired thread's final committed (useful) and
      rollback-discarded cycles. *)

  val forks : t -> int
  val commits : t -> int
  val rollbacks : t -> int
  val retires : t -> int

  val payoff : t -> float
  (** [committed / (committed + wasted)]; [1.0] when no cycles. *)

  val wasted_ratio : t -> float
  (** [wasted / (committed + wasted)]; [0.0] when no cycles. *)
end

(** {1 Streaming aggregation} *)

type agg
(** Mutable aggregation state, bounded by the number of distinct fork
    points, live threads, touched addresses and ranks. *)

val create : unit -> agg
val feed : agg -> Trace.record -> unit

val sink : agg -> Trace.sink
(** A sink that {!feed}s every record — tee it with a file sink to
    profile a run while writing its trace. *)

val finish : agg -> t
(** Snapshot the aggregate (the aggregator itself remains usable). *)

val of_records : Trace.record list -> t
(** Post-hoc profile; identical to streaming the same records. *)

(** {1 Rendering} *)

val to_json : ?threshold:float -> ?min_forks:int -> t -> Json.t
(** Machine-readable profile, advice included. *)

val pp :
  ?threshold:float -> ?min_forks:int -> ?top:int -> Format.formatter -> t -> unit
(** Per-fork-point payoff table, top-[top] (default 10) conflict
    addresses, per-rank utilization and the advisor's verdicts. *)
