(* Fold a trace into the paper's execution breakdowns.

   The runtime emits a [Charge] record for every virtual-time amount it
   books into a Stats category, a [Rollback] record whenever a thread's
   useful work is reclassified as wasted, a [Retire] record carrying
   each speculative thread's runtime, and a final [Run_end].  Replaying
   those records reconstructs exactly the per-category totals the
   in-process Stats counters hold — so a report computed from a trace
   file reproduces the Fig. 8 (critical path) and Fig. 9 (speculative
   path) percentages that `--stats` prints, and tests can cross-check
   the two accounting paths against each other. *)

(* Category names follow Stats.category_name. *)
let cat_work = "work"
let cat_join = "join"
let cat_idle = "idle"
let cat_fork = "fork"
let cat_find = "find CPU"
let cat_validation = "validation"
let cat_commit = "commit"
let cat_finalize = "finalize"
let cat_wasted = "wasted work"
let cat_overflow = "overflow"

type t = {
  runtime : float; (* virtual time when the main thread finished *)
  spec_runtime : float; (* summed lifetimes of retired speculative threads *)
  crit_total : float; (* accounted main-thread time (= Stats.total main) *)
  spec_total : float; (* accounted speculative time (= merged Stats.total) *)
  crit_breakdown : (string * float) list; (* Fig. 8 fractions *)
  spec_breakdown : (string * float) list; (* Fig. 9 fractions *)
  forks : int;
  commits : int;
  rollbacks : int;
  parks : int;
  spills : int;
  overflows : int;
  events : int;
}

(* --- accumulation ----------------------------------------------------- *)

type acc = {
  mutable a_time : (string * float) list; (* category -> accumulated *)
  a_main : bool;
}

let acc_add a cat dt =
  let rec go = function
    | [] -> [ (cat, dt) ]
    | (c, v) :: rest when c = cat -> (c, v +. dt) :: rest
    | kv :: rest -> kv :: go rest
  in
  a.a_time <- go a.a_time

let acc_get a cat =
  match List.assoc_opt cat a.a_time with Some v -> v | None -> 0.0

(* Mirror of Stats.work_to_wasted: a rolled-back thread's useful work
   was wasted. *)
let acc_work_to_wasted a =
  let w = acc_get a cat_work in
  if w > 0.0 then begin
    a.a_time <- List.filter (fun (c, _) -> c <> cat_work) a.a_time;
    acc_add a cat_wasted w
  end

let acc_total a = List.fold_left (fun s (_, v) -> s +. v) 0.0 a.a_time

let fraction total v = if total <= 0.0 then 0.0 else v /. total

(* Critical path categories (Fig. 8), grouped exactly as
   Metrics.crit_breakdown_of: validation/commit/finalize count as join
   work, residual unaccounted runtime as idle. *)
let crit_breakdown_of acc runtime =
  let get = acc_get acc in
  let work = get cat_work in
  let join =
    get cat_join +. get cat_validation +. get cat_commit +. get cat_finalize
  in
  let fork = get cat_fork in
  let find = get cat_find in
  let idle =
    get cat_idle
    +. Float.max 0.0 (runtime -. (work +. join +. fork +. find +. get cat_idle))
  in
  [
    (cat_work, fraction runtime work);
    (cat_join, fraction runtime join);
    (cat_idle, fraction runtime idle);
    (cat_fork, fraction runtime fork);
    (cat_find, fraction runtime find);
  ]

(* Speculative path categories (Fig. 9), as Metrics.spec_breakdown_of. *)
let spec_breakdown_of acc total_runtime =
  let get = acc_get acc in
  let work = get cat_work in
  let wasted = get cat_wasted in
  let finalize = get cat_finalize in
  let commit = get cat_commit in
  let validation = get cat_validation in
  let overflow = get cat_overflow in
  let fork = get cat_fork in
  let find = get cat_find in
  let accounted =
    work +. wasted +. finalize +. commit +. validation +. overflow +. fork
    +. find +. get cat_idle +. get cat_join
  in
  let idle =
    get cat_idle +. get cat_join +. Float.max 0.0 (total_runtime -. accounted)
  in
  [
    (cat_work, fraction total_runtime work);
    (cat_wasted, fraction total_runtime wasted);
    (cat_finalize, fraction total_runtime finalize);
    (cat_commit, fraction total_runtime commit);
    (cat_validation, fraction total_runtime validation);
    (cat_overflow, fraction total_runtime overflow);
    (cat_idle, fraction total_runtime idle);
    (cat_fork, fraction total_runtime fork);
    (cat_find, fraction total_runtime find);
  ]

let of_records records =
  let threads : (int, acc) Hashtbl.t = Hashtbl.create 64 in
  let acc_of r =
    match Hashtbl.find_opt threads r.Trace.thread with
    | Some a -> a
    | None ->
      let a = { a_time = []; a_main = r.Trace.main } in
      Hashtbl.replace threads r.Trace.thread a;
      a
  in
  let runtime = ref 0.0 in
  let spec_runtime = ref 0.0 in
  let forks = ref 0 in
  let commits = ref 0 in
  let rollbacks = ref 0 in
  let parks = ref 0 in
  let spills = ref 0 in
  let overflows = ref 0 in
  let events = ref 0 in
  List.iter
    (fun (r : Trace.record) ->
      incr events;
      match r.Trace.event with
      | Trace.Charge { category; cost } -> acc_add (acc_of r) category cost
      | Trace.Rollback _ -> acc_work_to_wasted (acc_of r)
      | Trace.Retire { committed; runtime = rt; _ } ->
        spec_runtime := !spec_runtime +. rt;
        if committed then incr commits else incr rollbacks
      | Trace.Fork _ -> incr forks
      | Trace.Park _ -> incr parks
      | Trace.Spill _ -> incr spills
      | Trace.Overflow _ -> incr overflows
      | Trace.Run_end -> runtime := r.Trace.time
      | _ -> ())
    records;
  let main_acc = { a_time = []; a_main = true } in
  let spec_acc = { a_time = []; a_main = false } in
  Hashtbl.iter
    (fun _ a ->
      let into = if a.a_main then main_acc else spec_acc in
      List.iter (fun (c, v) -> acc_add into c v) a.a_time)
    threads;
  {
    runtime = !runtime;
    spec_runtime = !spec_runtime;
    crit_total = acc_total main_acc;
    spec_total = acc_total spec_acc;
    crit_breakdown = crit_breakdown_of main_acc !runtime;
    spec_breakdown = spec_breakdown_of spec_acc !spec_runtime;
    forks = !forks;
    commits = !commits;
    rollbacks = !rollbacks;
    parks = !parks;
    spills = !spills;
    overflows = !overflows;
    events = !events;
  }

(* --- JSONL input ------------------------------------------------------ *)

(* Tolerant line reader: blank lines are skipped, malformed ones raise. *)
let records_of_jsonl text =
  let records = ref [] in
  let lineno = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         incr lineno;
         let line = String.trim line in
         if line <> "" then
           match Trace.record_of_jsonl line with
           | r -> records := r :: !records
           | exception Trace.Schema_error e ->
             raise (Trace.Schema_error (Printf.sprintf "line %d: %s" !lineno e)));
  List.rev !records

let of_jsonl text = of_records (records_of_jsonl text)

let of_jsonl_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      of_jsonl (really_input_string ic n))

(* --- lenient JSONL input ---------------------------------------------- *)

(* Real trace files get truncated (killed runs), concatenated, or
   hand-edited; the lenient readers skip-and-count malformed lines
   instead of aborting on the first, so `mutlsc report`/`profile` can
   still fold the good records and warn about the rest.  [first_error]
   keeps the earliest diagnostic for the "is this even a trace?"
   check: [lines > 0 && parsed = 0] means non-JSONL input. *)

type read_stats = {
  lines : int; (* non-blank lines seen *)
  parsed : int;
  skipped : int;
  first_error : string option; (* "line N: ..." for the first skip *)
}

let lenient_fold feed lines =
  let stats = ref { lines = 0; parsed = 0; skipped = 0; first_error = None } in
  let lineno = ref 0 in
  lines (fun line ->
      incr lineno;
      let line = String.trim line in
      if line <> "" then begin
        let s = !stats in
        match Trace.record_of_jsonl line with
        | r ->
          feed r;
          stats := { s with lines = s.lines + 1; parsed = s.parsed + 1 }
        | exception Trace.Schema_error e ->
          stats :=
            { s with
              lines = s.lines + 1;
              skipped = s.skipped + 1;
              first_error =
                (match s.first_error with
                | Some _ as fe -> fe
                | None -> Some (Printf.sprintf "line %d: %s" !lineno e)) }
      end);
  !stats

let fold_jsonl_lenient feed text =
  lenient_fold feed (fun each ->
      List.iter each (String.split_on_char '\n' text))

let fold_jsonl_file_lenient feed path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      lenient_fold feed (fun each ->
          try
            while true do
              each (input_line ic)
            done
          with End_of_file -> ()))

let records_of_jsonl_lenient text =
  let records = ref [] in
  let stats = fold_jsonl_lenient (fun r -> records := r :: !records) text in
  (List.rev !records, stats)

(* --- rendering -------------------------------------------------------- *)

let pp_breakdown fmt ~label breakdown =
  List.iter
    (fun (c, v) ->
      Format.fprintf fmt "  %s %-12s %5.1f%%@." label c (100.0 *. v))
    breakdown

let pp fmt r =
  Format.fprintf fmt
    "trace: %d events, runtime %.0f cycles, %d forks, %d commits, %d \
     rollbacks@."
    r.events r.runtime r.forks r.commits r.rollbacks;
  if r.parks > 0 || r.spills > 0 || r.overflows > 0 then
    Format.fprintf fmt
      "buffer: %d hash-conflict parks, %d spills, %d overflows@." r.parks
      r.spills r.overflows;
  Format.fprintf fmt
    "critical path breakdown (Fig. 8), runtime %.0f cycles:@." r.runtime;
  pp_breakdown fmt ~label:"critical " r.crit_breakdown;
  Format.fprintf fmt
    "speculative path breakdown (Fig. 9), %.0f thread-cycles:@."
    r.spec_runtime;
  pp_breakdown fmt ~label:"spec     " r.spec_breakdown
