(** Fold a trace into the paper's execution breakdowns (Figs. 8–9).

    Replaying the [Charge] / [Rollback] / [Retire] / [Run_end] records
    of a trace reconstructs exactly the per-category totals the
    in-process [Stats] counters hold, so a report computed from a trace
    file reproduces the category percentages that [--stats] prints, and
    tests can cross-check the two accounting paths ([crit_total] /
    [spec_total] against [Stats.total]). *)

type t = {
  runtime : float;  (** virtual time when the main thread finished *)
  spec_runtime : float;  (** summed lifetimes of retired speculative threads *)
  crit_total : float;  (** accounted main-thread time (= [Stats.total] main) *)
  spec_total : float;  (** accounted speculative time (= merged [Stats.total]) *)
  crit_breakdown : (string * float) list;  (** Fig. 8 fractions of [runtime] *)
  spec_breakdown : (string * float) list;
      (** Fig. 9 fractions of [spec_runtime] *)
  forks : int;
  commits : int;
  rollbacks : int;
  parks : int;  (** GlobalBuffer hash-conflict parks (temporary buffer) *)
  spills : int;
      (** GlobalBuffer spill-tier insertions; traces written before the
          spill tier existed count their park events here (the old
          "spill" wire name reads back as [Trace.Spill]) *)
  overflows : int;
  events : int;  (** total records folded *)
}

val of_records : Trace.record list -> t

val records_of_jsonl : string -> Trace.record list
(** Parse a JSON Lines trace; blank lines are skipped.
    @raise Trace.Schema_error with the offending line number. *)

val of_jsonl : string -> t
val of_jsonl_file : string -> t

(** {1 Lenient JSONL input}

    Truncated, concatenated or hand-edited trace files should still
    fold: the lenient readers skip-and-count malformed lines instead of
    aborting on the first.  [lines > 0 && parsed = 0] means the input
    is not a JSONL trace at all; [skipped > 0] warrants a warning. *)

type read_stats = {
  lines : int;  (** non-blank lines seen *)
  parsed : int;
  skipped : int;  (** malformed lines dropped *)
  first_error : string option;  (** ["line N: ..."] for the first skip *)
}

val fold_jsonl_lenient : (Trace.record -> unit) -> string -> read_stats
(** Feed every parseable record of an in-memory trace to the callback. *)

val fold_jsonl_file_lenient : (Trace.record -> unit) -> string -> read_stats
(** Same, streaming a file line by line (never loads the whole trace). *)

val records_of_jsonl_lenient : string -> Trace.record list * read_stats

val pp : Format.formatter -> t -> unit
