(* Span timelines and the speculation DAG's critical path.  See the
   .mli for the model; the load-bearing subtlety is the descent rule
   in [critical_path], which relies on Thread_manager's emission
   order: a blocked parent's Join carries the exact virtual time the
   child set its verdict ivar, and the child's Retire can only come at
   or after that instant. *)

type span = {
  id : int;
  parent : int option;
  rank : int;
  point : int;
  fork_time : float;
  start : float;
  stop : float option;
  committed : bool;
  rollback_reason : Trace.rollback_reason option;
  join_time : float option;
  join_committed : bool;
  children : int list;
}

type t = { spans : span list; main_id : int; runtime : float }

(* Mutable accumulator per thread while folding. *)
type acc = {
  a_id : int;
  mutable a_parent : int option;
  mutable a_rank : int;
  mutable a_point : int;
  mutable a_fork_time : float;
  mutable a_start : float option;
  mutable a_stop : float option;
  mutable a_committed : bool;
  mutable a_reason : Trace.rollback_reason option;
  mutable a_join_time : float option;
  mutable a_join_committed : bool;
  mutable a_children : int list; (* reverse fork order *)
}

let of_records records =
  let tbl : (int, acc) Hashtbl.t = Hashtbl.create 64 in
  let get id =
    match Hashtbl.find_opt tbl id with
    | Some a -> a
    | None ->
        let a =
          {
            a_id = id;
            a_parent = None;
            a_rank = 0;
            a_point = -1;
            a_fork_time = 0.;
            a_start = None;
            a_stop = None;
            a_committed = false;
            a_reason = None;
            a_join_time = None;
            a_join_committed = false;
            a_children = [];
          }
        in
        Hashtbl.replace tbl id a;
        a
  in
  let main_id = ref None in
  let last_time = ref 0. in
  let run_end = ref None in
  List.iter
    (fun (r : Trace.record) ->
      if r.time > !last_time then last_time := r.time;
      if r.main && r.thread >= 0 && !main_id = None then main_id := Some r.thread;
      match r.event with
      | Trace.Fork { child; child_rank; point } ->
          let p = get r.thread in
          p.a_children <- child :: p.a_children;
          let c = get child in
          c.a_parent <- Some r.thread;
          c.a_rank <- child_rank;
          c.a_point <- point;
          c.a_fork_time <- r.time
      | Trace.Retire { committed; runtime; _ } ->
          let c = get r.thread in
          c.a_stop <- Some r.time;
          c.a_start <- Some (r.time -. runtime);
          c.a_committed <- committed;
          c.a_rank <- r.rank
      | Trace.Rollback { reason; _ } ->
          let c = get r.thread in
          if c.a_reason = None then c.a_reason <- Some reason
      | Trace.Join { child; committed } ->
          let c = get child in
          c.a_join_time <- Some r.time;
          c.a_join_committed <- committed
      | Trace.Run_end -> run_end := Some r.time
      | _ -> ())
    records;
  let main_id = match !main_id with Some id -> id | None -> 0 in
  let runtime = match !run_end with Some t -> t | None -> !last_time in
  (* The main span: alive for the whole run, trivially "committed". *)
  (match Hashtbl.find_opt tbl main_id with
  | Some a ->
      a.a_start <- Some 0.;
      a.a_stop <- Some runtime;
      a.a_committed <- true
  | None ->
      let a = get main_id in
      a.a_start <- Some 0.;
      a.a_stop <- Some runtime;
      a.a_committed <- true);
  let spans =
    Hashtbl.fold
      (fun _ a acc ->
        {
          id = a.a_id;
          parent = a.a_parent;
          rank = a.a_rank;
          point = a.a_point;
          fork_time = a.a_fork_time;
          start =
            (match a.a_start with Some s -> s | None -> a.a_fork_time);
          stop = a.a_stop;
          committed = a.a_committed;
          rollback_reason = a.a_reason;
          join_time = a.a_join_time;
          join_committed = a.a_join_committed;
          children = List.rev a.a_children;
        }
        :: acc)
      tbl []
  in
  let spans =
    List.sort
      (fun a b ->
        if a.id = main_id then -1
        else if b.id = main_id then 1
        else compare a.id b.id)
      spans
  in
  { spans; main_id; runtime }

let find t id = List.find_opt (fun s -> s.id = id) t.spans

type segment = { seg_thread : int; seg_from : float; seg_to : float }

let critical_path t =
  let span_tbl = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace span_tbl s.id s) t.spans;
  let span id = Hashtbl.find_opt span_tbl id in
  (* Remaining descendable joins per parent, newest first.  A join is
     descendable when the child committed and its retire time is >= the
     join time — exactly the blocked-parent case (see .mli).  Each join
     is consumed at most once, which also guarantees termination when
     fork, join and retire collapse onto one virtual instant. *)
  let joins : (int, (float * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      match (s.parent, s.join_time, s.stop) with
      | Some p, Some tj, Some stop when s.join_committed && stop >= tj ->
          let l =
            match Hashtbl.find_opt joins p with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace joins p l;
                l
          in
          l := (tj, s.id) :: !l
      | _ -> ())
    t.spans;
  Hashtbl.iter
    (fun _ l -> l := List.sort (fun (a, _) (b, _) -> compare b a) !l)
    joins;
  let take_join tid upto =
    match Hashtbl.find_opt joins tid with
    | None -> None
    | Some l ->
        let rec skip = function
          | (tj, c) :: rest when tj <= upto ->
              l := rest;
              Some (tj, c)
          | _ :: rest -> skip rest
          | [] -> None
        in
        (* joins later than [upto] can never be used again on the way
           down — drop them as we skip *)
        let r = skip !l in
        r
  in
  let segs = ref [] in
  let push tid t0 t1 =
    if t1 > t0 then segs := { seg_thread = tid; seg_from = t0; seg_to = t1 } :: !segs
  in
  let rec walk tid tcur fuel =
    if fuel <= 0 then ()
    else
      match span tid with
      | None -> ()
      | Some sp -> (
          match take_join tid tcur with
          | Some (tj, child) when tj >= sp.start ->
              push tid tj tcur;
              walk child tj (fuel - 1)
          | _ -> (
              let s = Float.min sp.start tcur in
              push tid s tcur;
              match sp.parent with
              | None -> ()
              | Some p -> walk p s (fuel - 1)))
  in
  (* fuel bounds the walk on adversarially malformed traces; every
     well-formed walk consumes a join or ascends, so 2*spans+joins
     steps is plenty *)
  walk t.main_id t.runtime (4 * List.length t.spans + 8);
  !segs

let critical_path_total segs =
  List.fold_left (fun acc s -> acc +. (s.seg_to -. s.seg_from)) 0. segs

(* -- rendering ---------------------------------------------------- *)

let to_json t =
  let span_json s =
    Json.Obj
      ([
         ("id", Json.Num (float_of_int s.id));
         ( "parent",
           match s.parent with
           | Some p -> Json.Num (float_of_int p)
           | None -> Json.Null );
         ("rank", Json.Num (float_of_int s.rank));
         ("point", Json.Num (float_of_int s.point));
         ("fork_time", Json.Num s.fork_time);
         ("start", Json.Num s.start);
         ("stop", match s.stop with Some x -> Json.Num x | None -> Json.Null);
         ("committed", Json.Bool s.committed);
       ]
      @ (match s.rollback_reason with
        | Some r -> [ ("rollback", Json.Str (Trace.rollback_reason_to_string r)) ]
        | None -> [])
      @ (match s.join_time with
        | Some j ->
            [ ("join_time", Json.Num j); ("join_committed", Json.Bool s.join_committed) ]
        | None -> [])
      @ [ ("children", Json.List (List.map (fun c -> Json.Num (float_of_int c)) s.children)) ])
  in
  let cp = critical_path t in
  Json.Obj
    [
      ("runtime", Json.Num t.runtime);
      ("main", Json.Num (float_of_int t.main_id));
      ("spans", Json.List (List.map span_json t.spans));
      ( "critical_path",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("thread", Json.Num (float_of_int s.seg_thread));
                   ("from", Json.Num s.seg_from);
                   ("to", Json.Num s.seg_to);
                 ])
             cp) );
      ("critical_path_total", Json.Num (critical_path_total cp));
    ]

let pp fmt t =
  let by_id = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_id s.id s) t.spans;
  let rec pp_span indent s =
    let verdict =
      if s.stop = None then "live"
      else if s.committed then "committed"
      else
        match s.rollback_reason with
        | Some r -> Trace.rollback_reason_to_string r
        | None -> "rolled-back"
    in
    let stop_s = match s.stop with Some x -> Printf.sprintf "%.0f" x | None -> "?" in
    Format.fprintf fmt "%s%s %d  rank %d  point %d  [%.0f, %s]  %s@."
      (String.make indent ' ')
      (if s.id = t.main_id then "main" else "thread")
      s.id s.rank s.point s.start stop_s verdict;
    List.iter
      (fun c ->
        match Hashtbl.find_opt by_id c with
        | Some cs -> pp_span (indent + 2) cs
        | None -> ())
      s.children
  in
  (match find t t.main_id with
  | Some m -> pp_span 0 m
  | None -> ());
  (* orphans (truncated traces): spans whose parent never appeared *)
  List.iter
    (fun s ->
      match s.parent with
      | Some p when not (Hashtbl.mem by_id p) -> pp_span 0 s
      | _ -> ())
    t.spans;
  let cp = critical_path t in
  let total = critical_path_total cp in
  Format.fprintf fmt "@.critical path (%d segments, total %.0f of runtime %.0f):@."
    (List.length cp) total t.runtime;
  List.iter
    (fun s ->
      Format.fprintf fmt "  thread %-5d [%10.0f, %10.0f]  %10.0f (%4.1f%%)@."
        s.seg_thread s.seg_from s.seg_to (s.seg_to -. s.seg_from)
        (if t.runtime > 0. then 100. *. (s.seg_to -. s.seg_from) /. t.runtime else 0.))
    cp
