(** Causal span timelines derived from a trace.

    Folds the lifecycle records of a trace — Fork, Speculate, Retire,
    Join, Run_end — into a {e span tree}: one span per thread (the
    non-speculative thread plus every speculative thread), each
    carrying its lifetime interval on the shared virtual clock, its
    fork point, verdict, and parent/child causality edges.  On top of
    the tree, {!critical_path} walks the speculation DAG backwards
    from the end of the run and returns the chain of thread segments
    whose durations sum to the run's total runtime — the paper's [tn],
    so the chain explains {e which} threads the wall-clock was spent
    on (and [mutlsc spans] cross-checks the sum against
    [Metrics.compute]).

    The descent rule is exact, not heuristic: a parent that blocked in
    [synchronize] emits its Join at the instant the child resolved its
    verdict, so the child's Retire time is [>=] the Join time; a child
    that finished early retires strictly before the Join.  The walk
    therefore descends into a committed child exactly when
    [retire >= join]. *)

type span = {
  id : int;  (** thread id *)
  parent : int option;  (** forking thread; [None] for the main span *)
  rank : int;  (** virtual CPU the thread ran on *)
  point : int;  (** fork point; [-1] for the main span *)
  fork_time : float;  (** when the parent forked it; [0.] for main *)
  start : float;
      (** launch time ([Retire.time - runtime]); falls back to
          [fork_time] for threads that never retired *)
  stop : float option;  (** retire time; [None] if never retired *)
  committed : bool;
  rollback_reason : Trace.rollback_reason option;
      (** first Rollback recorded on the thread, if any *)
  join_time : float option;  (** when the parent joined it *)
  join_committed : bool;
  children : int list;  (** in fork order *)
}

type t = {
  spans : span list;  (** sorted by thread id; the main span first *)
  main_id : int;
  runtime : float;
      (** [Run_end] time (falls back to the latest record time on a
          truncated trace) — the paper's [tn] *)
}

val of_records : Trace.record list -> t
(** Build the tree from records in emission order.  Tolerates
    truncated traces (missing Retire/Run_end). *)

val find : t -> int -> span option

(** {1 Critical path} *)

type segment = {
  seg_thread : int;
  seg_from : float;
  seg_to : float;  (** [seg_from <= seg_to] *)
}

val critical_path : t -> segment list
(** Contiguous chain ordered from time [0.] to {!field-runtime}: each
    segment starts where the previous one ended, so the durations sum
    to [runtime] exactly (modulo float associativity).  Zero-length
    segments are dropped. *)

val critical_path_total : segment list -> float

(** {1 Rendering} *)

val to_json : t -> Json.t
(** Span tree plus critical path, for [mutlsc spans --json]. *)

val pp : Format.formatter -> t -> unit
(** Indented span tree followed by the critical-path summary. *)
