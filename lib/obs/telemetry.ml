(* Always-on metrics registry.  Recording must be O(1) and
   allocation-free (pinned by a Gc.minor_words test), so every cell is
   a flat mutable record or array mutated in place:

     counter    64-lane int array               incr  = one indexed store
     gauge      one-field float record (flat)   set   = one unboxed store
     histogram  int array + int fields          observe = shift-count + store

   Handle lookup (get-or-create) hashes once; the returned handle
   aliases the live cell, so instrumentation resolves handles at
   creation time and the record path never touches the Hashtbl.

   Domain-safety: the parallel backend records from every domain.
   Counters stripe increments across 64 lanes indexed by the current
   domain id, so concurrent increments from distinct live domains never
   collide (ids only collide modulo 64 after 64+ spawns with both
   extremes still alive — then increments may be lost, benignly);
   readers sum the lanes.  Gauges and histograms stay plain mutable
   cells: single-word torn-free stores where last-writer-wins is
   acceptable (racy-benign), except histogram count/sum pairs may skew
   slightly under contention.  Snapshots read the cells without
   synchronisation — exact when quiescent. *)

let n_lanes = 64
let lane_mask = n_lanes - 1

type counter = { lanes : int array (* length n_lanes *) }

(* A one-field float record is an all-float record: the field is
   stored flat and [set] does not box. *)
type gauge = { mutable g : float }

let n_buckets = 64
(* Indices 0..62 are the finite log2 buckets (upper bounds 2^0..2^62,
   so max_int = 2^62 - 1 lands in bucket 62); index 63 is +Inf. *)

type histogram = {
  buckets : int array; (* length n_buckets *)
  mutable h_count : int;
  mutable h_sum : int; (* summed as int: exact, allocation-free *)
}

type cell =
  | CCounter of counter
  | CGauge of gauge
  | CHistogram of histogram

type entry = {
  e_name : string;
  e_help : string;
  e_labels : (string * string) list; (* sorted by key *)
  e_cell : cell;
}

type t = {
  t_enabled : bool;
  tbl : (string * (string * string) list, entry) Hashtbl.t;
  kinds : (string, string) Hashtbl.t; (* family name -> kind word *)
  helps : (string, string) Hashtbl.t; (* family name -> help text *)
}

let create () =
  {
    t_enabled = true;
    tbl = Hashtbl.create 64;
    kinds = Hashtbl.create 64;
    helps = Hashtbl.create 64;
  }

let default = create ()

let disabled =
  {
    t_enabled = false;
    tbl = Hashtbl.create 1;
    kinds = Hashtbl.create 1;
    helps = Hashtbl.create 1;
  }
let enabled t = t.t_enabled

let kind_word = function
  | CCounter _ -> "counter"
  | CGauge _ -> "gauge"
  | CHistogram _ -> "histogram"

let lookup t ~help ~labels name make =
  let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  let key = (name, labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some e -> e.e_cell
  | None ->
      let cell = make () in
      (match Hashtbl.find_opt t.kinds name with
      | Some k when k <> kind_word cell ->
          invalid_arg
            (Printf.sprintf "Telemetry: %S already registered as a %s" name k)
      | Some _ -> ()
      | None -> Hashtbl.replace t.kinds name (kind_word cell));
      (* help is per family: any handle may supply it, all share it *)
      if help <> "" && not (Hashtbl.mem t.helps name) then
        Hashtbl.replace t.helps name help;
      Hashtbl.replace t.tbl key
        { e_name = name; e_help = help; e_labels = labels; e_cell = cell };
      cell

let counter ?(help = "") ?(labels = []) t name =
  match
    lookup t ~help ~labels name (fun () ->
        CCounter { lanes = Array.make n_lanes 0 })
  with
  | CCounter c -> c
  | cell ->
      invalid_arg
        (Printf.sprintf "Telemetry: %S already registered as a %s" name
           (kind_word cell))

let gauge ?(help = "") ?(labels = []) t name =
  match lookup t ~help ~labels name (fun () -> CGauge { g = 0. }) with
  | CGauge g -> g
  | cell ->
      invalid_arg
        (Printf.sprintf "Telemetry: %S already registered as a %s" name
           (kind_word cell))

let histogram ?(help = "") ?(labels = []) t name =
  match
    lookup t ~help ~labels name (fun () ->
        CHistogram { buckets = Array.make n_buckets 0; h_count = 0; h_sum = 0 })
  with
  | CHistogram h -> h
  | cell ->
      invalid_arg
        (Printf.sprintf "Telemetry: %S already registered as a %s" name
           (kind_word cell))

(* The record path: one domain-id masked index, one unsafe load, one
   unsafe store — no bounds check, no allocation (the Gc.minor_words
   pin).  [Domain.self] coerces to int without boxing. *)
let[@inline] lane () = (Domain.self () :> int) land lane_mask
let incr c =
  let i = lane () in
  Array.unsafe_set c.lanes i (Array.unsafe_get c.lanes i + 1)
let add c n =
  let i = lane () in
  Array.unsafe_set c.lanes i (Array.unsafe_get c.lanes i + n)
let counter_value c = Array.fold_left ( + ) 0 c.lanes
let set g v = g.g <- v
let gauge_value g = g.g

(* Bit count by tail recursion on ints: bounded by the word size and
   allocation-free (no refs, no tuples). *)
let rec bits x acc = if x = 0 then acc else bits (x lsr 1) (acc + 1)

let bucket_of v = if v <= 1 then 0 else bits (v - 1) 0

let bucket_upper i = if i >= n_buckets - 1 then infinity else 2. ** float_of_int i

let observe h v =
  let i = bucket_of v in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { buckets : int array; sum : float; count : int }

type metric = {
  m_name : string;
  m_help : string;
  m_labels : (string * string) list;
  m_value : value;
}

type snapshot = metric list

let snapshot t =
  let ms =
    Hashtbl.fold
      (fun _ e acc ->
        let v =
          match e.e_cell with
          | CCounter c -> Counter (counter_value c)
          | CGauge g -> Gauge g.g
          | CHistogram h ->
              Histogram
                {
                  buckets = Array.copy h.buckets;
                  sum = float_of_int h.h_sum;
                  count = h.h_count;
                }
        in
        {
          m_name = e.e_name;
          m_help =
            (match Hashtbl.find_opt t.helps e.e_name with
            | Some h -> h
            | None -> e.e_help);
          m_labels = e.e_labels;
          m_value = v;
        }
        :: acc)
      t.tbl []
  in
  List.sort (fun a b -> compare (a.m_name, a.m_labels) (b.m_name, b.m_labels)) ms

let reset t =
  Hashtbl.iter
    (fun _ e ->
      match e.e_cell with
      | CCounter c -> Array.fill c.lanes 0 n_lanes 0
      | CGauge g -> g.g <- 0.
      | CHistogram h ->
          Array.fill h.buckets 0 n_buckets 0;
          h.h_count <- 0;
          h.h_sum <- 0)
    t.tbl

(* -- export ------------------------------------------------------- *)

let kind_of_value = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let to_json (s : snapshot) : Json.t =
  Json.List
    (List.map
       (fun m ->
         let labels = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) m.m_labels) in
         let base =
           [
             ("name", Json.Str m.m_name);
             ("type", Json.Str (kind_of_value m.m_value));
             ("labels", labels);
           ]
         in
         let base = if m.m_help = "" then base else base @ [ ("help", Json.Str m.m_help) ] in
         let value =
           match m.m_value with
           | Counter c -> [ ("value", Json.Num (float_of_int c)) ]
           | Gauge g -> [ ("value", Json.Num g) ]
           | Histogram { buckets; sum; count } ->
               (* Sparse rendering: only occupied buckets, as
                  [le, count] pairs, keeps run exports small. *)
               let bs = ref [] in
               for i = n_buckets - 1 downto 0 do
                 if buckets.(i) > 0 then
                   bs :=
                     Json.List
                       [ Json.Num (bucket_upper i); Json.Num (float_of_int buckets.(i)) ]
                     :: !bs
               done;
               [
                 ("count", Json.Num (float_of_int count));
                 ("sum", Json.Num sum);
                 ("buckets", Json.List !bs);
               ]
         in
         Json.Obj (base @ value))
       s)

(* Prometheus requires a decimal rendering; [le] bounds up to 2^62 are
   exactly representable, so print them as integers. *)
let le_string i = if i >= n_buckets - 1 then "+Inf" else Printf.sprintf "%.0f" (2. ** float_of_int i)

let prom_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.contents b

(* HELP text escapes only backslash and newline; quote-escaping is a
   label-value rule (text exposition format 0.0.4). *)
let help_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.contents b

let prom_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) labels)
      ^ "}"

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_prometheus (s : snapshot) =
  let b = Buffer.create 4096 in
  let headed = Hashtbl.create 16 in
  List.iter
    (fun m ->
      if not (Hashtbl.mem headed m.m_name) then begin
        Hashtbl.replace headed m.m_name ();
        if m.m_help <> "" then
          Buffer.add_string b
            (Printf.sprintf "# HELP %s %s\n" m.m_name (help_escape m.m_help));
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s %s\n" m.m_name (kind_of_value m.m_value))
      end;
      match m.m_value with
      | Counter c ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" m.m_name (prom_labels m.m_labels) c)
      | Gauge g ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" m.m_name (prom_labels m.m_labels) (prom_float g))
      | Histogram { buckets; sum; count } ->
          let cum = ref 0 in
          for i = 0 to n_buckets - 1 do
            cum := !cum + buckets.(i);
            (* Collapse the long empty tail: only boundaries that add
               samples, plus the mandatory +Inf bucket. *)
            if buckets.(i) > 0 || i = n_buckets - 1 then
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" m.m_name
                   (prom_labels (m.m_labels @ [ ("le", le_string i) ]))
                   !cum)
          done;
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %s\n" m.m_name (prom_labels m.m_labels)
               (prom_float sum));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" m.m_name (prom_labels m.m_labels) count))
    s;
  Buffer.contents b

let pp fmt (s : snapshot) =
  List.iter
    (fun m ->
      let name = m.m_name ^ prom_labels m.m_labels in
      match m.m_value with
      | Counter c -> Format.fprintf fmt "%-58s %d@." name c
      | Gauge g -> Format.fprintf fmt "%-58s %s@." name (prom_float g)
      | Histogram { sum; count; _ } ->
          let mean = if count = 0 then 0. else sum /. float_of_int count in
          Format.fprintf fmt "%-58s count=%d mean=%.1f@." name count mean)
    s
