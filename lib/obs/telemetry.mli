(** Always-on telemetry: a bounded-allocation metrics registry.

    Where {!Trace} is the opt-in, high-volume event stream and
    {!Profile} its post-hoc aggregation, the telemetry registry is the
    production instrument: named counters, gauges and log₂-bucketed
    histograms that the runtime updates unconditionally — cheap enough
    to leave on for every run (the obs overhead gate,
    [bench/check_obs.exe], regression-tests the "cheap enough" claim
    against a committed budget).

    Recording is O(1) and allocation-free: a {!counter} increment is a
    single int store, a {!gauge} set one unboxed float store, a
    {!histogram} observation a constant number of shifts plus an array
    store (the no-allocation property is pinned by a [Gc.minor_words]
    test).  Handles are resolved once ({!counter} / {!gauge} /
    {!histogram} get-or-create by name and label set) and then used
    directly — no hashing on the record path.

    Snapshots are lock-free by construction rather than by protocol:
    the simulator runs metrics mutation and snapshotting on one systhread,
    so {!snapshot} simply reads the live cells — no locks, no torn
    reads, no stop-the-world.  The same registry can serve many runs
    ({!default} is process-wide, Prometheus-style monotonic counters);
    use a fresh {!create} to scope measurements to one run.

    Not to be confused with [Mutls.Metrics], the paper-§V figure
    arithmetic (speedup, efficiencies) computed from a finished run:
    [Metrics] answers "what did the run achieve", [Telemetry] answers
    "what is the runtime doing right now".  See DESIGN.md §Telemetry. *)

type t
(** A metrics registry. *)

val create : unit -> t
(** A fresh, enabled registry (scopes measurements to one run/campaign). *)

val default : t
(** The process-wide registry every {!Mutls_runtime.Config.t} points at
    unless overridden: always-on telemetry accumulates here. *)

val disabled : t
(** The inert registry: {!enabled} is [false], and instrumented code is
    expected to skip recording entirely (the off-side of the overhead
    benchmark).  Handles created from it still work but are never
    exported. *)

val enabled : t -> bool

(** {1 Handles}

    Get-or-create by [(name, labels)]; the returned handle aliases the
    registry's cell, so repeated lookups are safe and cheap to cache.
    [labels] (default none) follow the Prometheus convention — e.g.
    [counter ~labels:[("reason", "conflict")] reg "mutls_rollbacks_total"].
    @raise Invalid_argument when the name is already registered with a
    different metric kind. *)

type counter
type gauge
type histogram

val counter : ?help:string -> ?labels:(string * string) list -> t -> string -> counter
val gauge : ?help:string -> ?labels:(string * string) list -> t -> string -> gauge
val histogram : ?help:string -> ?labels:(string * string) list -> t -> string -> histogram

(** {1 Recording — O(1), allocation-free} *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> int -> unit
(** Record one sample into its log₂ bucket: values [<= 1] land in
    bucket 0 (upper bound 1), a value [v > 1] in the bucket whose upper
    bound is the smallest power of two [>= v].  With 63 finite buckets
    ([2^0] .. [2^62]) every OCaml [int] (including [max_int], which is
    [2^62 - 1]) lands in a finite bucket; the [+Inf] bucket exists for
    exposition-format completeness. *)

val bucket_of : int -> int
(** The bucket index {!observe} files a value under (exposed for the
    boundary tests): [bucket_of 0 = 0], [bucket_of 1 = 0],
    [bucket_of 2 = 1], [bucket_of (2*k) = 1 + bucket_of k]. *)

val n_buckets : int
(** Finite buckets (63) + the [+Inf] bucket = 64. *)

val bucket_upper : int -> float
(** Upper bound (Prometheus [le]) of a bucket: [2.0 ** i], [infinity]
    for the last. *)

(** {1 Snapshots} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { buckets : int array; sum : float; count : int }
      (** [buckets] has {!n_buckets} non-cumulative cells *)

type metric = {
  m_name : string;
  m_help : string;
  m_labels : (string * string) list;
  m_value : value;
}

type snapshot = metric list
(** Sorted by name, then label set — so equal registry contents render
    byte-identically (the Prometheus golden test relies on it). *)

val snapshot : t -> snapshot

val reset : t -> unit
(** Zero every registered metric (handles stay valid). *)

(** {1 Export} *)

val to_json : snapshot -> Json.t

val to_prometheus : snapshot -> string
(** Prometheus text exposition format 0.0.4: [# HELP] / [# TYPE]
    headers once per metric family, histograms as cumulative
    [_bucket{le="..."}] series plus [_sum] and [_count]. *)

val pp : Format.formatter -> snapshot -> unit
(** Human-readable table (what [mutlsc top] refreshes in place). *)
