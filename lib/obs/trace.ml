(* Typed event tracing for the TLS runtime.

   Every significant runtime transition — fork, speculation launch,
   check point, validation, commit, rollback, NOSYNC, buffer overflow,
   join, barrier — becomes a [record]: a typed event stamped with the
   virtual time of the simulation engine and the identity of the thread
   it happened on.  Records flow into a pluggable [sink]; the built-in
   sinks cover the null case (tracing off, near-zero cost), a bounded
   ring buffer for in-process consumers, a human-readable stderr
   printer (the successor of the old MUTLS_DEBUG env toggles), JSON
   Lines for tooling, and the Chrome trace_event format loadable in
   chrome://tracing or Perfetto. *)

(* --- event schema ---------------------------------------------------- *)

type rollback_reason =
  | Conflict (* read-set validation failed against the parent's view *)
  | Stale_local (* a fork-time register value went stale (validate_local) *)
  | Abandoned (* NOSYNC: the speculated region was never needed *)
  | Buffer_overflow (* GlobalBuffer temporary buffer exhausted *)
  | Bad_access (* touched an address outside the registered space *)

let rollback_reason_to_string = function
  | Conflict -> "conflict"
  | Stale_local -> "stale-local"
  | Abandoned -> "abandoned"
  | Buffer_overflow -> "buffer-overflow"
  | Bad_access -> "bad-access"

let rollback_reason_of_string = function
  | "conflict" -> Some Conflict
  | "stale-local" -> Some Stale_local
  | "abandoned" -> Some Abandoned
  | "buffer-overflow" -> Some Buffer_overflow
  | "bad-access" -> Some Bad_access
  | _ -> None

type event =
  | Fork of { child : int; child_rank : int; point : int }
      (* MUTLS_get_CPU assigned [child_rank] to new thread [child] *)
  | Speculate of { child_rank : int; counter : int }
      (* MUTLS_speculate launched the thread occupying [child_rank] *)
  | Check of { counter : int; stop : bool }
      (* a check point that asked the thread to stop (polls that
         return "continue" are not traced — they are the hot path) *)
  | Validate of { words : int; ok : bool; addr : int option }
      (* [addr] is the first conflicting word address when validation
         failed against memory state (None for stale-local or injected
         failures, and in traces from older versions) *)
  | Commit of { words : int; counter : int }
  | Rollback of { reason : rollback_reason; point : int }
      (* [point] is the rolled-back thread's fork point, so rollbacks
         can be attributed to the speculation decision that caused
         them; -1 in traces from older versions *)
  | Nosync of { point : int } (* this thread's subtree was abandoned *)
  | Overflow of { spill_cap : int }
    (* GlobalBuffer overflow-region exhaustion; a Rollback record
       follows.  [spill_cap] is the spill tier's capacity when the tier
       was enabled (so the oracle can check the tier really filled
       first); -1 for spill-off overflows, injected overflows, and
       traces from older versions *)
  | Join of { child : int; committed : bool } (* parent-side verdict *)
  | Barrier of { counter : int }
  | Retire of { committed : bool; runtime : float; stats : (string * float) list }
      (* a speculative thread died; [stats] is its per-category time
         accounting (Stats.to_assoc) *)
  | Charge of { category : string; cost : float }
      (* virtual time charged to one accounting category; the stream of
         charges is what Report folds into the Fig. 8/9 breakdowns *)
  | Park of { addr : int }
    (* GlobalBuffer hash conflict parked in the temporary buffer (the
       event older traces called "spill") *)
  | Spill of { addr : int } (* GlobalBuffer spill-tier insertion *)
  | Frame of { push : bool; depth : int } (* LocalBuffer frame tracking *)
  | Sched of { what : string; info : int } (* engine-level scheduling *)
  | Run_end (* the non-speculative thread finished *)

type record = {
  time : float; (* virtual cycles (Mutls_sim.Engine clock) *)
  thread : int; (* thread id; -1 for engine-level records *)
  rank : int; (* virtual CPU; 0 is the non-speculative thread *)
  main : bool;
  event : event;
}

let event_name = function
  | Fork _ -> "fork"
  | Speculate _ -> "speculate"
  | Check _ -> "check"
  | Validate _ -> "validate"
  | Commit _ -> "commit"
  | Rollback _ -> "rollback"
  | Nosync _ -> "nosync"
  | Overflow _ -> "overflow"
  | Join _ -> "join"
  | Barrier _ -> "barrier"
  | Retire _ -> "retire"
  | Charge _ -> "charge"
  | Park _ -> "park"
  | Spill _ -> "spill"
  | Frame _ -> "frame"
  | Sched _ -> "sched"
  | Run_end -> "run-end"

(* --- JSON encoding --------------------------------------------------- *)

let args_of_event ev : (string * Json.t) list =
  match ev with
  | Fork { child; child_rank; point } ->
    [ ("child", Json.Num (float_of_int child));
      ("child_rank", Json.Num (float_of_int child_rank));
      ("point", Json.Num (float_of_int point)) ]
  | Speculate { child_rank; counter } ->
    [ ("child_rank", Json.Num (float_of_int child_rank));
      ("counter", Json.Num (float_of_int counter)) ]
  | Check { counter; stop } ->
    [ ("counter", Json.Num (float_of_int counter)); ("stop", Json.Bool stop) ]
  | Validate { words; ok; addr } ->
    (* [addr] is emitted only when known, so traces without conflict
       attribution keep the pre-enrichment wire format byte for byte *)
    [ ("words", Json.Num (float_of_int words)); ("ok", Json.Bool ok) ]
    @ (match addr with
      | None -> []
      | Some a -> [ ("addr", Json.Num (float_of_int a)) ])
  | Commit { words; counter } ->
    [ ("words", Json.Num (float_of_int words));
      ("counter", Json.Num (float_of_int counter)) ]
  | Rollback { reason; point } ->
    [ ("reason", Json.Str (rollback_reason_to_string reason));
      ("point", Json.Num (float_of_int point)) ]
  | Nosync { point } -> [ ("point", Json.Num (float_of_int point)) ]
  | Overflow { spill_cap } ->
    (* [spill_cap] is emitted only when a spill tier was in force, so
       spill-off traces keep the pre-spill wire format byte for byte *)
    if spill_cap > 0 then [ ("spill_cap", Json.Num (float_of_int spill_cap)) ]
    else []
  | Join { child; committed } ->
    [ ("child", Json.Num (float_of_int child)); ("committed", Json.Bool committed) ]
  | Barrier { counter } -> [ ("counter", Json.Num (float_of_int counter)) ]
  | Retire { committed; runtime; stats } ->
    [ ("committed", Json.Bool committed);
      ("runtime", Json.Num runtime);
      ("stats", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) stats)) ]
  | Charge { category; cost } ->
    [ ("category", Json.Str category); ("cost", Json.Num cost) ]
  | Park { addr } -> [ ("addr", Json.Num (float_of_int addr)) ]
  | Spill { addr } -> [ ("addr", Json.Num (float_of_int addr)) ]
  | Frame { push; depth } ->
    [ ("push", Json.Bool push); ("depth", Json.Num (float_of_int depth)) ]
  | Sched { what; info } ->
    [ ("what", Json.Str what); ("info", Json.Num (float_of_int info)) ]
  | Run_end -> []

let record_to_json r =
  Json.Obj
    [ ("t", Json.Num r.time);
      ("tid", Json.Num (float_of_int r.thread));
      ("rank", Json.Num (float_of_int r.rank));
      ("main", Json.Bool r.main);
      ("ev", Json.Str (event_name r.event));
      ("args", Json.Obj (args_of_event r.event)) ]

exception Schema_error of string

let schema_error fmt = Printf.ksprintf (fun s -> raise (Schema_error s)) fmt

let get_field name conv args =
  match Option.bind (Json.member name args) conv with
  | Some v -> v
  | None -> schema_error "missing or mistyped field %S" name

let event_of_json name args =
  let int name = get_field name Json.to_int args in
  let bool name = get_field name Json.to_bool args in
  let str name = get_field name Json.to_str args in
  let float name = get_field name Json.to_float args in
  match name with
  | "fork" ->
    Fork { child = int "child"; child_rank = int "child_rank"; point = int "point" }
  | "speculate" ->
    Speculate { child_rank = int "child_rank"; counter = int "counter" }
  | "check" -> Check { counter = int "counter"; stop = bool "stop" }
  | "validate" ->
    (* [addr]/[point] may be absent in traces written before the
       attribution enrichment: default rather than fail *)
    Validate
      { words = int "words";
        ok = bool "ok";
        addr = Option.bind (Json.member "addr" args) Json.to_int }
  | "commit" -> Commit { words = int "words"; counter = int "counter" }
  | "rollback" -> (
    match rollback_reason_of_string (str "reason") with
    | Some reason ->
      Rollback
        { reason;
          point =
            (match Option.bind (Json.member "point" args) Json.to_int with
            | Some p -> p
            | None -> -1) }
    | None -> schema_error "unknown rollback reason %S" (str "reason"))
  | "nosync" -> Nosync { point = int "point" }
  | "overflow" ->
    (* [spill_cap] is absent in spill-off and older traces: default *)
    Overflow
      { spill_cap =
          (match Option.bind (Json.member "spill_cap" args) Json.to_int with
          | Some c -> c
          | None -> -1) }
  | "join" -> Join { child = int "child"; committed = bool "committed" }
  | "barrier" -> Barrier { counter = int "counter" }
  | "retire" ->
    let stats =
      match Json.member "stats" args with
      | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float v))
          fields
      | _ -> []
    in
    Retire { committed = bool "committed"; runtime = float "runtime"; stats }
  | "charge" -> Charge { category = str "category"; cost = float "cost" }
  | "park" -> Park { addr = int "addr" }
  | "spill" -> Spill { addr = int "addr" }
  | "frame" -> Frame { push = bool "push"; depth = int "depth" }
  | "sched" -> Sched { what = str "what"; info = int "info" }
  | "run-end" -> Run_end
  | other -> schema_error "unknown event %S" other

let record_of_json j =
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> v
    | None -> schema_error "record missing field %S" name
  in
  let args = match Json.member "args" j with Some a -> a | None -> Json.Obj [] in
  {
    time = field "t" Json.to_float;
    thread = field "tid" Json.to_int;
    rank = field "rank" Json.to_int;
    main = field "main" Json.to_bool;
    event = event_of_json (field "ev" Json.to_str) args;
  }

let record_to_jsonl r = Json.to_string (record_to_json r)

let record_of_jsonl line =
  match Json.of_string line with
  | j -> record_of_json j
  | exception Json.Parse_error e -> schema_error "bad JSON: %s" e

(* --- sinks ----------------------------------------------------------- *)

type sink = {
  enabled : bool; (* false only for [null]: lets call sites skip
                     building the record entirely on the hot path *)
  emit : record -> unit;
  close : unit -> unit;
}

let emit sink r = if sink.enabled then sink.emit r

let close sink = sink.close ()

let null = { enabled = false; emit = ignore; close = ignore }

let tee sinks =
  let sinks = List.filter (fun s -> s.enabled) sinks in
  match sinks with
  | [] -> null
  | [ s ] -> s
  | _ ->
    {
      enabled = true;
      emit = (fun r -> List.iter (fun s -> s.emit r) sinks);
      close = (fun () -> List.iter (fun s -> s.close ()) sinks);
    }

(* Sinks are written for one emitter; the parallel backend has one per
   domain.  Serialise emit/close with a private mutex — record order
   across domains is whatever the schedule produced. *)
let synchronized sink =
  if not sink.enabled then sink
  else begin
    let mu = Mutex.create () in
    let locked f x =
      Mutex.lock mu;
      match f x with
      | v ->
        Mutex.unlock mu;
        v
      | exception e ->
        Mutex.unlock mu;
        raise e
    in
    {
      enabled = true;
      emit = (fun r -> locked sink.emit r);
      close = (fun () -> locked sink.close ());
    }
  end

(* Bounded ring buffer: keeps the newest [capacity] records, dropping
   the oldest first. *)
type ring = {
  capacity : int;
  mutable slots : record option array;
  mutable next : int; (* total records ever emitted *)
}

let ring ~capacity =
  if capacity <= 0 then invalid_arg "Trace.ring: capacity must be positive";
  { capacity; slots = Array.make capacity None; next = 0 }

let ring_sink rb =
  {
    enabled = true;
    emit =
      (fun r ->
        rb.slots.(rb.next mod rb.capacity) <- Some r;
        rb.next <- rb.next + 1);
    close = ignore;
  }

let ring_length rb = min rb.next rb.capacity
let ring_dropped rb = max 0 (rb.next - rb.capacity)

(* Oldest-to-newest. *)
let ring_records rb =
  let n = ring_length rb in
  let start = rb.next - n in
  List.init n (fun k ->
      match rb.slots.((start + k) mod rb.capacity) with
      | Some r -> r
      | None -> assert false)

(* Human-readable one-line-per-event printer: the replacement for the
   old MUTLS_DEBUG / MUTLS_DEBUG2 stderr toggles. *)
let pretty_line r =
  let who =
    if r.thread < 0 then "engine"
    else if r.main then "main"
    else Printf.sprintf "td=%d rank=%d" r.thread r.rank
  in
  let detail =
    match r.event with
    | Fork { child; child_rank; point } ->
      Printf.sprintf "child=%d rank=%d point=%d" child child_rank point
    | Speculate { child_rank; counter } ->
      Printf.sprintf "rank=%d counter=%d" child_rank counter
    | Check { counter; stop } -> Printf.sprintf "counter=%d stop=%b" counter stop
    | Validate { words; ok; addr } ->
      Printf.sprintf "words=%d ok=%b%s" words ok
        (match addr with
        | Some a -> Printf.sprintf " addr=0x%x" a
        | None -> "")
    | Commit { words; counter } ->
      Printf.sprintf "words=%d counter=%d" words counter
    | Rollback { reason; point } ->
      Printf.sprintf "%s point=%d" (rollback_reason_to_string reason) point
    | Nosync { point } -> Printf.sprintf "point=%d" point
    | Overflow { spill_cap } ->
      if spill_cap > 0 then Printf.sprintf "spill_cap=%d" spill_cap else ""
    | Join { child; committed } ->
      Printf.sprintf "child=%d %s" child (if committed then "COMMIT" else "ROLLBACK")
    | Barrier { counter } -> Printf.sprintf "counter=%d" counter
    | Retire { committed; runtime; stats } ->
      Printf.sprintf "committed=%b runtime=%.0f %s" committed runtime
        (String.concat " "
           (List.filter_map
              (fun (k, v) ->
                if v > 0.0 then Some (Printf.sprintf "%s=%.0f" k v) else None)
              stats))
    | Charge { category; cost } -> Printf.sprintf "%s +%.1f" category cost
    | Park { addr } -> Printf.sprintf "addr=0x%x" addr
    | Spill { addr } -> Printf.sprintf "addr=0x%x" addr
    | Frame { push; depth } ->
      Printf.sprintf "%s depth=%d" (if push then "push" else "pop") depth
    | Sched { what; info } -> Printf.sprintf "%s %d" what info
    | Run_end -> ""
  in
  Printf.sprintf "[t=%.0f %s %s%s%s]" r.time who (event_name r.event)
    (if detail = "" then "" else " ")
    detail

let pretty ?(charges = false) write =
  {
    enabled = true;
    emit =
      (fun r ->
        match r.event with
        | Charge _ when not charges -> ()
        | _ -> write (pretty_line r ^ "\n"));
    close = ignore;
  }

let stderr_pretty ?charges () =
  pretty ?charges (fun s ->
      output_string stderr s;
      flush stderr)

(* One JSON object per line (JSON Lines): the format [Report] and
   `mutlsc report` consume. *)
let jsonl write =
  {
    enabled = true;
    emit = (fun r -> write (record_to_jsonl r ^ "\n"));
    close = ignore;
  }

(* Chrome trace_event JSON (the "JSON object format"), loadable in
   chrome://tracing and Perfetto.  Virtual cycles are reported as
   microseconds; tracks (tid) are virtual CPUs, so the timeline shows
   one lane per simulated core.  Charges become complete ("X") duration
   slices ending at their emission time; lifecycle events are instants;
   a retired thread contributes one whole-lifetime slice. *)
let chrome write =
  let first = ref true in
  let item j =
    if !first then first := false else write ",\n";
    write (Json.to_string j)
  in
  let common r rest =
    Json.Obj
      ([ ("pid", Json.Num 0.0); ("tid", Json.Num (float_of_int r.rank)) ] @ rest)
  in
  (* Fork -> Speculate causality arrows: the Fork record carries the
     child id but happens on the parent's lane; the Speculate record
     marks the launch on the child's lane but only knows the rank.
     get_cpu hands a rank to exactly one thread at a time, so pairing
     the latest Fork per rank with the next Speculate on that rank
     recovers the flow id. *)
  let pending_flow : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let flow ~ph ~extra ~tid ~id ~ts =
    item
      (Json.Obj
         ([ ("pid", Json.Num 0.0);
            ("tid", Json.Num (float_of_int tid));
            ("name", Json.Str "fork");
            ("cat", Json.Str "flow");
            ("ph", Json.Str ph);
            ("id", Json.Num (float_of_int id));
            ("ts", Json.Num ts) ]
         @ extra))
  in
  write "{\"traceEvents\":[\n";
  {
    enabled = true;
    emit =
      (fun r ->
        (match r.event with
        | Fork { child; child_rank; _ } ->
          Hashtbl.replace pending_flow child_rank child;
          flow ~ph:"s" ~extra:[] ~tid:r.rank ~id:child ~ts:r.time
        | Speculate { child_rank; _ } -> (
          match Hashtbl.find_opt pending_flow child_rank with
          | Some child ->
            Hashtbl.remove pending_flow child_rank;
            flow ~ph:"f" ~extra:[ ("bp", Json.Str "e") ] ~tid:child_rank
              ~id:child ~ts:r.time
          | None -> ())
        | _ -> ());
        match r.event with
        | Charge { category; cost } ->
          if cost > 0.0 then
            item
              (common r
                 [ ("name", Json.Str category);
                   ("cat", Json.Str "charge");
                   ("ph", Json.Str "X");
                   ("ts", Json.Num (Float.max 0.0 (r.time -. cost)));
                   ("dur", Json.Num cost) ])
        | Retire { runtime; committed; _ } ->
          item
            (common r
               [ ("name", Json.Str (Printf.sprintf "thread %d" r.thread));
                 ("cat", Json.Str "lifetime");
                 ("ph", Json.Str "X");
                 ("ts", Json.Num (Float.max 0.0 (r.time -. runtime)));
                 ("dur", Json.Num runtime);
                 ("args", Json.Obj [ ("committed", Json.Bool committed) ]) ])
        | ev ->
          item
            (common r
               [ ("name", Json.Str (event_name ev));
                 ("cat", Json.Str "tls");
                 ("ph", Json.Str "i");
                 ("ts", Json.Num r.time);
                 ("s", Json.Str "t");
                 ("args", Json.Obj (args_of_event ev)) ]));
    close = (fun () -> write "\n],\"displayTimeUnit\":\"ms\"}\n");
  }
