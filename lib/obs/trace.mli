(** Typed event tracing for the TLS runtime.

    Every significant runtime transition — fork, speculation launch,
    check point, validation, commit, rollback, NOSYNC, buffer overflow,
    join, barrier — becomes a {!record}: a typed {!event} stamped with
    the virtual time of the simulation engine and the identity of the
    thread it happened on.  Records flow into a pluggable {!sink};
    select one through [Config.trace_sink] (library users) or
    [mutlsc run/bench --trace FILE] (CLI).

    The old [MUTLS_DEBUG] / [MUTLS_DEBUG2] environment toggles are
    deprecated: the library never reads the process environment; the
    CLI keeps a thin shim that maps them to {!stderr_pretty}. *)

(** {1 Event schema} *)

type rollback_reason =
  | Conflict  (** read-set validation failed against the parent's view *)
  | Stale_local  (** a fork-time register value went stale *)
  | Abandoned  (** NOSYNC: the speculated region was never needed *)
  | Buffer_overflow  (** GlobalBuffer temporary buffer exhausted *)
  | Bad_access  (** touched an address outside the registered space *)

val rollback_reason_to_string : rollback_reason -> string
val rollback_reason_of_string : string -> rollback_reason option

type event =
  | Fork of { child : int; child_rank : int; point : int }
  | Speculate of { child_rank : int; counter : int }
  | Check of { counter : int; stop : bool }
      (** only check points that stop the thread are traced — polls
          that return "continue" are the hot path *)
  | Validate of { words : int; ok : bool; addr : int option }
      (** [addr] is the first conflicting word address when the failure
          came from memory state ([None] for stale-local or injected
          failures, and in traces written before the enrichment) *)
  | Commit of { words : int; counter : int }
  | Rollback of { reason : rollback_reason; point : int }
      (** [point] is the rolled-back thread's fork point ([-1] in
          traces written before the enrichment), attributing every
          rollback to the speculation decision that caused it *)
  | Nosync of { point : int }
  | Overflow of { spill_cap : int }
      (** GlobalBuffer overflow-region exhaustion; a [Rollback] record
          follows.  [spill_cap] is the spill tier's capacity when the
          tier was enabled (emitted on the wire only then, so spill-off
          traces keep the old byte format); [-1] for spill-off
          overflows, injected overflows, and traces written before the
          spill tier existed *)
  | Join of { child : int; committed : bool }  (** parent-side verdict *)
  | Barrier of { counter : int }
  | Retire of { committed : bool; runtime : float; stats : (string * float) list }
      (** a speculative thread died; [stats] is [Stats.to_assoc] *)
  | Charge of { category : string; cost : float }
      (** virtual time charged to one accounting category; the stream
          of charges is what {!Report} folds into the paper's Fig. 8/9
          execution breakdowns *)
  | Park of { addr : int }
      (** GlobalBuffer hash conflict parked in the temporary buffer —
          the event traces written before the spill tier called
          "spill" (old files still read back as [Spill]) *)
  | Spill of { addr : int }
      (** GlobalBuffer spill-tier insertion: the access was absorbed at
          a latency penalty instead of parking or overflowing *)
  | Frame of { push : bool; depth : int }  (** LocalBuffer frame tracking *)
  | Sched of { what : string; info : int }  (** engine-level scheduling *)
  | Run_end  (** the non-speculative thread finished *)

type record = {
  time : float;  (** virtual cycles ([Mutls_sim.Engine] clock) *)
  thread : int;  (** thread id; [-1] for engine-level records *)
  rank : int;  (** virtual CPU; 0 is the non-speculative thread *)
  main : bool;
  event : event;
}

val event_name : event -> string

(** {1 Serialisation} *)

exception Schema_error of string

val record_to_json : record -> Json.t
val record_of_json : Json.t -> record
(** @raise Schema_error on unknown events or missing fields. *)

val record_to_jsonl : record -> string
(** One compact JSON object, without the trailing newline. *)

val record_of_jsonl : string -> record
(** @raise Schema_error on malformed input. *)

val pretty_line : record -> string

(** {1 Sinks} *)

type sink = {
  enabled : bool;
      (** [false] only for {!null}: call sites skip building the record
          entirely, keeping disabled tracing near-free *)
  emit : record -> unit;
  close : unit -> unit;
}

val emit : sink -> record -> unit
(** No-op when the sink is disabled. *)

val close : sink -> unit
(** Flush and finish the sink's output (writes the Chrome footer). *)

val null : sink

val tee : sink list -> sink
(** Broadcast to every enabled sink in the list. *)

val synchronized : sink -> sink
(** Serialise [emit]/[close] behind a mutex, making a single-emitter
    sink safe for the parallel backend's domains.  Record order across
    domains is whatever the schedule produced.  Returns a disabled sink
    unchanged. *)

(** {2 Ring buffer}

    Bounded in-memory sink: keeps the newest [capacity] records,
    dropping the oldest first. *)

type ring

val ring : capacity:int -> ring
val ring_sink : ring -> sink
val ring_records : ring -> record list
(** Oldest to newest. *)

val ring_length : ring -> int
val ring_dropped : ring -> int

(** {2 Writer-backed sinks}

    Each takes a [write] function ([output_string oc],
    [Buffer.add_string b], ...) so callers own channel lifetime. *)

val pretty : ?charges:bool -> (string -> unit) -> sink
(** Human-readable, one line per event.  [charges] (default [false])
    also prints the high-volume per-category time charges. *)

val stderr_pretty : ?charges:bool -> unit -> sink
(** {!pretty} on stderr, flushed per line — the replacement for the old
    [MUTLS_DEBUG] env toggle. *)

val jsonl : (string -> unit) -> sink
(** JSON Lines, the format {!Report} and [mutlsc report] consume. *)

val chrome : (string -> unit) -> sink
(** Chrome trace_event JSON, loadable in chrome://tracing / Perfetto:
    one lane per virtual CPU, charges as duration slices, lifecycle
    events as instants.  {!close} writes the closing bracket — the
    output is valid JSON only after closing. *)
