(* Chase–Lev work-stealing deque on OCaml 5 atomics.  Every cell is an
   ['a option Atomic.t] and [top]/[bottom] are atomic ints, so all
   cross-domain accesses are sequentially consistent — the classic
   algorithm needs nothing weaker.

   Invariants:
     top <= bottom            (after transient owner-pop dips settle)
     bottom - top <= capacity (push refuses at capacity)
   The capacity bound doubles as the ABA guard: a slot is reused only
   once [top] has moved past its previous occupant, so a thief holding
   a stale index cannot win its CAS on [top]. *)

type 'a t = {
  mask : int;
  cells : 'a option Atomic.t array;
  top : int Atomic.t; (* next index to steal *)
  bottom : int Atomic.t; (* next index to push *)
}

let rec ceil_pow2 n k = if k >= n then k else ceil_pow2 n (k * 2)

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Deque.create: capacity < 1";
  let cap = ceil_pow2 capacity 1 in
  {
    mask = cap - 1;
    cells = Array.init cap (fun _ -> Atomic.make None);
    top = Atomic.make 0;
    bottom = Atomic.make 0;
  }

let size q = max 0 (Atomic.get q.bottom - Atomic.get q.top)

let push q x =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  if b - t > q.mask then false
  else begin
    Atomic.set q.cells.(b land q.mask) (Some x);
    Atomic.set q.bottom (b + 1);
    true
  end

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* empty: restore the invariant *)
    Atomic.set q.bottom t;
    None
  end
  else begin
    let cell = q.cells.(b land q.mask) in
    let x = Atomic.get cell in
    if b > t then begin
      (* more than one element: no thief can reach index b *)
      Atomic.set cell None;
      x
    end
    else begin
      (* last element: race the thieves for it via top *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then begin
        Atomic.set cell None;
        x
      end
      else None
    end
  end

let rec steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then None
  else begin
    let x = Atomic.get q.cells.(t land q.mask) in
    if Atomic.compare_and_set q.top t (t + 1) then
      match x with
      | Some _ as r -> r
      | None ->
        (* unreachable by the reuse argument in the header; retry
           defensively rather than lose a slot *)
        steal q
    else steal q
  end
