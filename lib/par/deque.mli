(** Chase–Lev work-stealing deque (bounded, lock-free).

    One owner pushes and pops at the bottom (LIFO — the hot path, no
    CAS except for the last element); any number of thieves steal from
    the top (FIFO — oldest task first, one CAS per steal).  The array
    is fixed-size: [push] reports a full deque instead of growing, and
    the scheduler falls back to its shared overflow queue, which keeps
    the steal path free of resize coordination.

    Safety of slot reuse: [push] refuses when [bottom - top] reaches
    capacity, so a slot is only ever overwritten after [top] has
    advanced past its previous index — a thief still holding the stale
    index fails its CAS on [top] and never returns the overwritten
    element. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] (default 256) is rounded up to a power of two. *)

val push : 'a t -> 'a -> bool
(** Owner only.  [false] if the deque is full (the element was not
    added). *)

val pop : 'a t -> 'a option
(** Owner only.  Takes the most recently pushed element (LIFO). *)

val steal : 'a t -> 'a option
(** Any thread.  Takes the oldest element (FIFO); [None] when the
    deque is observed empty.  Retries internally on CAS contention. *)

val size : 'a t -> int
(** Approximate occupancy (racy snapshot; exact when quiescent). *)
