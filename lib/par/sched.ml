(* Work-stealing fiber scheduler on OCaml 5 domains.

   Layout: one worker per domain; worker 0 is the caller of [run].
   Each worker owns a Chase–Lev deque of ready tasks (owner LIFO pop,
   thief FIFO steal); pushes that find the bounded deque full, and
   pushes from outside any worker, go to a shared mutex-protected
   overflow queue.

   Fibers are Effect.Deep computations, as in the simulator.  A fiber
   performing [Wait] on an unset flag parks its one-shot continuation
   in the flag's waiter list (under the flag's leaf mutex) and returns
   control to the worker loop; [set_flag] moves the parked
   continuations onto the ready queues.  Continuations are resumable on
   any domain — OCaml one-shot continuations do not pin to the domain
   that captured them.

   Memory model: the flag value is an [int option Atomic.t], so a
   parent that observes [Some v] (peek fast path or wait) happens-after
   everything the child wrote before setting it — in particular the
   GlobalBuffer merges a commit performs just before publishing its
   verdict.

   Idle protocol (single condition variable): a worker that finds no
   task increments [idle] *before* re-scanning the queues, and a pusher
   signals the condvar only when [idle > 0].  If the pusher reads
   [idle = 0], the increment (SC atomics give a total order) — and
   therefore the re-scan — came after the push, so the re-scan finds
   the task; if it reads [idle > 0], it broadcasts under the sleep
   mutex, which either wakes the sleeper or serialises against its
   final predicate check.  Deadlock is declared by the last worker to
   go idle: all workers idle + queues empty + live fibers remaining
   means every live fiber is parked on a flag no runnable fiber can
   set. *)

module Exec = Mutls_runtime.Exec
module Telemetry = Mutls_obs.Telemetry

exception Deadlock of int

(* A one-shot flag.  [f_value] is the published value; [f_mu] guards
   the waiter list (and orders a racing wait against set). *)
type fval = {
  f_value : int option Atomic.t;
  f_mu : Mutex.t;
  mutable f_waiters : (int, unit) Effect.Deep.continuation list;
}

type Exec.flag += Par_flag of fval
type _ Effect.t += Wait : fval -> int Effect.t

type task =
  | Start of (unit -> unit)
  | Resume of (int, unit) Effect.Deep.continuation * int

type tele = {
  on : bool;
  t_steals : Telemetry.counter;
  t_tasks_start : Telemetry.counter;
  t_tasks_resume : Telemetry.counter;
  t_busy : Telemetry.gauge array; (* per worker *)
}

type t = {
  ndomains : int;
  deques : task Deque.t array;
  overflow : task Queue.t;
  omu : Mutex.t;
  ocount : int Atomic.t; (* overflow occupancy, for lock-free scans *)
  live : int Atomic.t; (* fibers started and not yet finished *)
  idle : int Atomic.t; (* workers currently out of work *)
  stop : bool Atomic.t;
  error : exn option Atomic.t; (* first fiber exception, or Deadlock *)
  sleep_mu : Mutex.t;
  sleep_cv : Condition.t;
  lock : Mutex.t; (* the manager's shared-state lock (Exec.lock) *)
  t0 : float;
  tele : tele;
  busy : float array; (* per-worker accumulated task seconds *)
}

let worker_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)

let make_tele reg ndomains =
  {
    on = Telemetry.enabled reg;
    t_steals =
      Telemetry.counter ~help:"tasks stolen from another domain's deque" reg
        "mutls_domain_steals_total";
    t_tasks_start =
      Telemetry.counter ~help:"scheduler tasks executed"
        ~labels:[ ("kind", "start") ] reg "mutls_domain_tasks_total";
    t_tasks_resume =
      Telemetry.counter ~labels:[ ("kind", "resume") ] reg
        "mutls_domain_tasks_total";
    t_busy =
      Array.init ndomains (fun i ->
          Telemetry.gauge ~help:"fraction of wall time spent running tasks"
            ~labels:[ ("domain", string_of_int i) ]
            reg "mutls_domain_busy_fraction");
  }

let make ?(telemetry = Telemetry.disabled) ~domains () =
  if domains < 1 then invalid_arg "Sched.run: domains < 1";
  {
    ndomains = domains;
    deques = Array.init domains (fun _ -> Deque.create ());
    overflow = Queue.create ();
    omu = Mutex.create ();
    ocount = Atomic.make 0;
    live = Atomic.make 0;
    idle = Atomic.make 0;
    stop = Atomic.make false;
    error = Atomic.make None;
    sleep_mu = Mutex.create ();
    sleep_cv = Condition.create ();
    lock = Mutex.create ();
    t0 = Unix.gettimeofday ();
    tele = make_tele telemetry domains;
    busy = Array.make domains 0.0;
  }

let now sched = Unix.gettimeofday () -. sched.t0

(* --- ready queues ----------------------------------------------------- *)

let push_overflow sched task =
  Mutex.lock sched.omu;
  Queue.push task sched.overflow;
  Atomic.incr sched.ocount;
  Mutex.unlock sched.omu

let pop_overflow sched =
  if Atomic.get sched.ocount = 0 then None
  else begin
    Mutex.lock sched.omu;
    let r =
      match Queue.pop sched.overflow with
      | task ->
        Atomic.decr sched.ocount;
        Some task
      | exception Queue.Empty -> None
    in
    Mutex.unlock sched.omu;
    r
  end

let work_available sched =
  Atomic.get sched.ocount > 0
  || Array.exists (fun d -> Deque.size d > 0) sched.deques

let wake_idlers sched =
  if Atomic.get sched.idle > 0 then begin
    Mutex.lock sched.sleep_mu;
    Condition.broadcast sched.sleep_cv;
    Mutex.unlock sched.sleep_mu
  end

let push_task sched task =
  let wid = Domain.DLS.get worker_key in
  if not (wid >= 0 && Deque.push sched.deques.(wid) task) then
    push_overflow sched task;
  wake_idlers sched

(* --- flags ------------------------------------------------------------ *)

let new_flag () =
  Par_flag
    { f_value = Atomic.make None; f_mu = Mutex.create (); f_waiters = [] }

let bad_flag what =
  invalid_arg (Printf.sprintf "Mutls_par.Sched.%s: flag from another backend" what)

let fval = function Par_flag f -> f | _ -> bad_flag "flag"

let set_flag sched fl v =
  let f = fval fl in
  Mutex.lock f.f_mu;
  match Atomic.get f.f_value with
  | Some _ ->
    Mutex.unlock f.f_mu;
    invalid_arg "Sched: flag set twice"
  | None ->
    Atomic.set f.f_value (Some v);
    let waiters = f.f_waiters in
    f.f_waiters <- [];
    Mutex.unlock f.f_mu;
    List.iter (fun k -> push_task sched (Resume (k, v))) waiters

let peek_flag fl = Atomic.get (fval fl).f_value

(* --- fibers ----------------------------------------------------------- *)

(* Caller already holds [sleep_mu] (the deadlock detector runs under
   it); the plain wrapper takes it. *)
let record_error_locked sched e =
  if Atomic.compare_and_set sched.error None (Some e) then begin
    Atomic.set sched.stop true;
    Condition.broadcast sched.sleep_cv
  end

let record_error sched e =
  Mutex.lock sched.sleep_mu;
  record_error_locked sched e;
  Mutex.unlock sched.sleep_mu

let fiber_done sched =
  if Atomic.fetch_and_add sched.live (-1) = 1 then begin
    (* last fiber: release the workers *)
    Atomic.set sched.stop true;
    Mutex.lock sched.sleep_mu;
    Condition.broadcast sched.sleep_cv;
    Mutex.unlock sched.sleep_mu
  end

let spawn sched f =
  Atomic.incr sched.live;
  push_task sched (Start f)

(* Run a new fiber under the scheduler's effect handler.  Suspending on
   [Wait] simply returns () to the worker loop: the continuation is
   already parked in the flag. *)
let run_fiber sched f =
  Effect.Deep.match_with f ()
    {
      retc = (fun () -> fiber_done sched);
      exnc =
        (fun e ->
          record_error sched e;
          fiber_done sched);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Wait fv ->
            Some
              (fun (k : (a, _) Effect.Deep.continuation) ->
                let ready =
                  (Mutex.lock fv.f_mu;
                   match Atomic.get fv.f_value with
                   | Some v ->
                     Mutex.unlock fv.f_mu;
                     Some v
                   | None ->
                     fv.f_waiters <- k :: fv.f_waiters;
                     Mutex.unlock fv.f_mu;
                     None)
                in
                match ready with
                | Some v -> Effect.Deep.continue k v
                | None -> ())
          | _ -> None);
    }

let wait_flag fl =
  let f = fval fl in
  (* fast path: already set — no suspension, no allocation *)
  match Atomic.get f.f_value with
  | Some v -> v
  | None -> Effect.perform (Wait f)

(* --- worker loop ------------------------------------------------------ *)

let exec_task sched wid task =
  let tele = sched.tele.on in
  let t_start = if tele then Unix.gettimeofday () else 0.0 in
  (match task with
  | Start f ->
    if tele then Telemetry.incr sched.tele.t_tasks_start;
    run_fiber sched f
  | Resume (k, v) ->
    if tele then Telemetry.incr sched.tele.t_tasks_resume;
    Effect.Deep.continue k v);
  if tele then begin
    let t_end = Unix.gettimeofday () in
    sched.busy.(wid) <- sched.busy.(wid) +. (t_end -. t_start);
    let elapsed = t_end -. sched.t0 in
    if elapsed > 0.0 then
      Telemetry.set sched.tele.t_busy.(wid) (sched.busy.(wid) /. elapsed)
  end

let find_task sched wid =
  match Deque.pop sched.deques.(wid) with
  | Some _ as r -> r
  | None -> (
    match pop_overflow sched with
    | Some _ as r -> r
    | None ->
      let n = sched.ndomains in
      let rec go i =
        if i >= n then None
        else
          match Deque.steal sched.deques.((wid + i) mod n) with
          | Some _ as r ->
            if sched.tele.on then Telemetry.incr sched.tele.t_steals;
            r
          | None -> go (i + 1)
      in
      go 1)

let idle_wait sched =
  Atomic.incr sched.idle;
  (* Re-scan after announcing idleness: any pusher that saw idle = 0
     completed its push before our increment, so this scan finds it. *)
  if work_available sched || Atomic.get sched.stop then Atomic.decr sched.idle
  else begin
    Mutex.lock sched.sleep_mu;
    (if Atomic.get sched.stop || work_available sched then ()
     else if
       Atomic.get sched.idle = sched.ndomains && Atomic.get sched.live > 0
     then
       (* every worker is idle, nothing is queued, fibers remain:
          they are all parked on flags only they could have set *)
       record_error_locked sched (Deadlock (Atomic.get sched.live))
     else Condition.wait sched.sleep_cv sched.sleep_mu);
    Mutex.unlock sched.sleep_mu;
    Atomic.decr sched.idle
  end

let rec worker_loop sched wid =
  if Atomic.get sched.stop then ()
  else begin
    (match find_task sched wid with
    | Some task -> exec_task sched wid task
    | None -> idle_wait sched);
    worker_loop sched wid
  end

let worker sched wid =
  Domain.DLS.set worker_key wid;
  worker_loop sched wid

(* --- entry points ------------------------------------------------------ *)

let exec sched =
  {
    Exec.kind = Exec.Parallel;
    now = (fun () -> now sched);
    advance = (fun _ -> ());
    spawn = (fun f -> spawn sched f);
    new_flag;
    peek = peek_flag;
    set = (fun fl v -> set_flag sched fl v);
    wait = wait_flag;
    lock = Some sched.lock;
  }

let run ?telemetry ~domains main =
  let sched = make ?telemetry ~domains () in
  Atomic.set sched.live 1;
  ignore (Deque.push sched.deques.(0) (Start (fun () -> main sched)));
  let doms =
    Array.init (domains - 1) (fun i ->
        Domain.spawn (fun () -> worker sched (i + 1)))
  in
  worker sched 0;
  Array.iter Domain.join doms;
  (match Atomic.get sched.error with Some e -> raise e | None -> ());
  now sched
