(** Work-stealing fiber scheduler on OCaml 5 domains: the parallel
    implementation of the {!Mutls_runtime.Exec} execution layer.

    One domain per virtual CPU worker.  Speculative threads are
    effect-handler fibers (the same representation the deterministic
    simulator uses); ready fibers sit in per-worker Chase–Lev deques
    ({!Deque}) — owner LIFO, thief FIFO — with a mutex-protected
    overflow queue backing the bounded deques.  A fiber that blocks on
    an unset flag parks its continuation in the flag; setting the flag
    re-enqueues the parked continuations as ready tasks on the setter's
    deque.

    Time is wall-clock seconds since {!run} started; [Exec.advance] is
    a no-op (real time passes by itself), so the virtual-cost model is
    inert and the schedule is whatever the hardware produces.  The TLS
    protocol guarantees the *outputs* still equal the deterministic
    simulator's on the same program — that is the oracle the tests and
    the bench gate check — while fork decisions, rollback counts and
    timings may differ run to run.

    Exception policy: the first exception raised by any fiber stops the
    scheduler and is re-raised from {!run} (mirrors the simulator,
    where a fiber's exception aborts the event loop). *)

type t

exception Deadlock of int
(** Raised from {!run} when every worker is idle, no task is queued,
    and live fibers remain — they are all parked on flags nobody can
    set.  Carries the number of stuck fibers. *)

val run :
  ?telemetry:Mutls_obs.Telemetry.t -> domains:int -> (t -> unit) -> float
(** [run ~domains main] runs [main] as the root fiber on the calling
    domain, with [domains - 1] additional worker domains, and returns
    once every fiber has finished.  [main] receives the scheduler so it
    can build an {!exec} for the thread manager; it executes inside a
    fiber, so flag waits are legal anywhere below it.  Returns the
    elapsed wall-clock seconds.  [telemetry] (default
    {!Mutls_obs.Telemetry.disabled}) records steal / task counters and
    per-domain busy fractions.

    @raise Invalid_argument if [domains < 1]
    @raise Deadlock (see above)  *)

val exec : t -> Mutls_runtime.Exec.t
(** The execution-layer view of this scheduler ([Exec.kind = Parallel],
    [Exec.lock = Some _]). *)
