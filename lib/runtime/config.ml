(* Runtime configuration: forking model selection, buffer sizing,
   rollback injection (paper Fig. 11) and the virtual-time cost model
   that substitutes for the paper's 64-core AMD Opteron.  Costs are in
   abstract "cycles"; only ratios matter for speedup shapes. *)

type model = In_order | Out_of_order | Mixed

(* Ablation of the paper's central design choice (§II, §IV-F): the
   tree-form mixed model confines cascading rollbacks to a subtree by
   letting the joining thread inherit a rolled-back child's children;
   previous mixed-model systems organised threads linearly, so a
   rollback squashes every logically-later thread. *)
type cascade = Tree_cascade | Linear_cascade

let cascade_to_string = function
  | Tree_cascade -> "tree"
  | Linear_cascade -> "linear" 

let model_to_string = function
  | In_order -> "in-order"
  | Out_of_order -> "out-of-order"
  | Mixed -> "mixed"

let model_of_int = function
  | 0 -> Mixed
  | 1 -> In_order
  | 2 -> Out_of_order
  | n -> invalid_arg (Printf.sprintf "Config.model_of_int: %d" n)

let model_to_int = function Mixed -> 0 | In_order -> 1 | Out_of_order -> 2

type cost = {
  instr : float; (* base cost of one IR instruction *)
  mem : float; (* additional cost of an unbuffered load/store *)
  spec_hit : float; (* buffered access hitting an existing entry *)
  spec_miss : float; (* buffered access inserting a new entry *)
  fork : float; (* MUTLS_speculate: thread creation and hand-off *)
  find_cpu : float; (* MUTLS_get_CPU rank search *)
  per_local : float; (* saving or restoring one local variable *)
  validate_word : float; (* validating one read-set word *)
  commit_word : float; (* committing one write-set word *)
  finalize_word : float; (* clearing one buffer slot *)
  check_point : float; (* polling the sync flag *)
  sync_fixed : float; (* fixed synchronization handshake cost *)
  call : float; (* function call/return overhead *)
}

let default_cost =
  {
    instr = 1.0;
    mem = 2.0;
    spec_hit = 2.0;
    spec_miss = 10.0;
    fork = 400.0;
    find_cpu = 15.0;
    per_local = 4.0;
    validate_word = 2.0;
    commit_word = 3.0;
    finalize_word = 0.5;
    check_point = 0.1;
    sync_fixed = 50.0;
    call = 4.0;
  }

type t = {
  ncpus : int; (* total CPUs as in the paper's x-axis: one runs the
                  non-speculative thread, the rest host speculation *)
  cost : cost;
  buffer_slots : int; (* GlobalBuffer map slots; power of two *)
  temp_slots : int; (* overflow buffer entries *)
  max_locals : int; (* RegisterBuffer static array size *)
  model_override : model option; (* force all fork points to one model *)
  rollback_probability : float; (* injected validation failures, Fig. 11 *)
  seed : int; (* deterministic stream for injection *)
  quantum : float; (* interpreter yield granularity, virtual cycles *)
  cascade : cascade; (* tree-form (the paper) vs linear mixed model *)
  value_prediction : bool; (* §VI future work: stride prediction of
                              fork-time register values *)
  trace_sink : Mutls_obs.Trace.sink;
  (* Destination of the runtime's typed event trace; Trace.null (the
     default) keeps tracing disabled at near-zero cost.  This replaces
     the old MUTLS_DEBUG/MUTLS_DEBUG2 env toggles: the library never
     reads the process environment. *)
}

let default =
  {
    ncpus = 4;
    cost = default_cost;
    buffer_slots = 1 lsl 16;
    temp_slots = 64;
    max_locals = 256;
    model_override = None;
    rollback_probability = 0.0;
    seed = 42;
    quantum = 500.0;
    cascade = Tree_cascade;
    value_prediction = false;
    trace_sink = Mutls_obs.Trace.null;
  }
