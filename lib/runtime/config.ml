(* Runtime configuration: forking model selection, buffer sizing,
   rollback injection (paper Fig. 11) and the virtual-time cost model
   that substitutes for the paper's 64-core AMD Opteron.  Costs are in
   abstract "cycles"; only ratios matter for speedup shapes. *)

type model = In_order | Out_of_order | Mixed

(* Ablation of the paper's central design choice (§II, §IV-F): the
   tree-form mixed model confines cascading rollbacks to a subtree by
   letting the joining thread inherit a rolled-back child's children;
   previous mixed-model systems organised threads linearly, so a
   rollback squashes every logically-later thread. *)
type cascade = Tree_cascade | Linear_cascade

let cascade_to_string = function
  | Tree_cascade -> "tree"
  | Linear_cascade -> "linear" 

let model_to_string = function
  | In_order -> "in-order"
  | Out_of_order -> "out-of-order"
  | Mixed -> "mixed"

let model_of_int = function
  | 0 -> Mixed
  | 1 -> In_order
  | 2 -> Out_of_order
  | n -> invalid_arg (Printf.sprintf "Config.model_of_int: %d" n)

let model_to_int = function Mixed -> 0 | In_order -> 1 | Out_of_order -> 2

type cost = {
  instr : float; (* base cost of one IR instruction *)
  mem : float; (* additional cost of an unbuffered load/store *)
  spec_hit : float; (* buffered access hitting an existing entry *)
  spec_miss : float; (* buffered access inserting a new entry *)
  fork : float; (* MUTLS_speculate: thread creation and hand-off *)
  find_cpu : float; (* MUTLS_get_CPU rank search *)
  per_local : float; (* saving or restoring one local variable *)
  validate_word : float; (* validating one read-set word *)
  commit_word : float; (* committing one write-set word *)
  finalize_word : float; (* clearing one buffer slot *)
  check_point : float; (* polling the sync flag *)
  sync_fixed : float; (* fixed synchronization handshake cost *)
  call : float; (* function call/return overhead *)
}

let default_cost =
  {
    instr = 1.0;
    mem = 2.0;
    spec_hit = 2.0;
    spec_miss = 10.0;
    fork = 400.0;
    find_cpu = 15.0;
    per_local = 4.0;
    validate_word = 2.0;
    commit_word = 3.0;
    finalize_word = 0.5;
    check_point = 0.1;
    sync_fixed = 50.0;
    call = 4.0;
  }

type t = {
  ncpus : int; (* total CPUs as in the paper's x-axis: one runs the
                  non-speculative thread, the rest host speculation *)
  cost : cost;
  buffer_slots : int; (* GlobalBuffer map slots; power of two *)
  temp_slots : int; (* overflow buffer entries *)
  max_locals : int; (* RegisterBuffer static array size *)
  model_override : model option; (* force all fork points to one model *)
  rollback_probability : float; (* injected validation failures, Fig. 11 *)
  seed : int; (* deterministic stream for injection *)
  quantum : float; (* interpreter yield granularity, virtual cycles *)
  cascade : cascade; (* tree-form (the paper) vs linear mixed model *)
  value_prediction : bool; (* §VI future work: stride prediction of
                              fork-time register values *)
  trace_sink : Mutls_obs.Trace.sink;
  (* Destination of the runtime's typed event trace; Trace.null (the
     default) keeps tracing disabled at near-zero cost.  This replaces
     the old MUTLS_DEBUG/MUTLS_DEBUG2 env toggles: the library never
     reads the process environment. *)
  fault : Fault.plan option; (* chaos testing: deterministic fault
                                injection at the runtime's failure
                                sites; None (the default) disables it *)
  backoff : bool; (* per-fork-point exponential backoff after repeated
                     rollbacks/overflows — the online counterpart of
                     the profiler's no-speculate advisor *)
  degrade_after : int; (* consecutive overflow rollbacks (with no
                          intervening commit) before speculation is
                          switched off for the rest of the run;
                          0 disables the fallback *)
}

let default =
  {
    ncpus = 4;
    cost = default_cost;
    buffer_slots = 1 lsl 16;
    temp_slots = 64;
    max_locals = 256;
    model_override = None;
    rollback_probability = 0.0;
    seed = 42;
    quantum = 500.0;
    cascade = Tree_cascade;
    value_prediction = false;
    trace_sink = Mutls_obs.Trace.null;
    fault = None;
    backoff = false;
    degrade_after = 0;
  }

(* --- validation ------------------------------------------------------- *)

(* Reject malformed configurations up front with a field-specific
   message, instead of failing deep inside Global_buffer.create (or
   not at all).  Called by Thread_manager.create, so every TLS run is
   covered. *)

let fail fmt = Printf.ksprintf invalid_arg fmt

let check_cost (c : cost) =
  List.iter
    (fun (name, v) ->
      if not (v >= 0.0) then
        fail "Config.cost.%s must be non-negative (got %g)" name v)
    [ ("instr", c.instr); ("mem", c.mem); ("spec_hit", c.spec_hit);
      ("spec_miss", c.spec_miss); ("fork", c.fork); ("find_cpu", c.find_cpu);
      ("per_local", c.per_local); ("validate_word", c.validate_word);
      ("commit_word", c.commit_word); ("finalize_word", c.finalize_word);
      ("check_point", c.check_point); ("sync_fixed", c.sync_fixed);
      ("call", c.call) ]

let validate t =
  if t.ncpus < 1 then fail "Config.ncpus must be >= 1 (got %d)" t.ncpus;
  if t.buffer_slots < 1 || t.buffer_slots land (t.buffer_slots - 1) <> 0 then
    fail "Config.buffer_slots must be a positive power of two (got %d)"
      t.buffer_slots;
  if t.temp_slots < 0 then
    fail "Config.temp_slots must be non-negative (got %d)" t.temp_slots;
  if t.max_locals < 1 then
    fail "Config.max_locals must be >= 1 (got %d)" t.max_locals;
  if not (t.rollback_probability >= 0.0 && t.rollback_probability <= 1.0) then
    fail "Config.rollback_probability must be in [0, 1] (got %g)"
      t.rollback_probability;
  if not (t.quantum > 0.0) then
    fail "Config.quantum must be positive (got %g)" t.quantum;
  if t.degrade_after < 0 then
    fail "Config.degrade_after must be non-negative (got %d)" t.degrade_after;
  check_cost t.cost;
  match t.fault with None -> () | Some plan -> Fault.validate_plan plan
