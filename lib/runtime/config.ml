(* Runtime configuration: forking model selection, buffer sizing,
   rollback injection (paper Fig. 11) and the virtual-time cost model
   that substitutes for the paper's 64-core AMD Opteron.  Costs are in
   abstract "cycles"; only ratios matter for speedup shapes. *)

type model = In_order | Out_of_order | Mixed

(* Ablation of the paper's central design choice (§II, §IV-F): the
   tree-form mixed model confines cascading rollbacks to a subtree by
   letting the joining thread inherit a rolled-back child's children;
   previous mixed-model systems organised threads linearly, so a
   rollback squashes every logically-later thread. *)
type cascade = Tree_cascade | Linear_cascade

let cascade_to_string = function
  | Tree_cascade -> "tree"
  | Linear_cascade -> "linear" 

let model_to_string = function
  | In_order -> "in-order"
  | Out_of_order -> "out-of-order"
  | Mixed -> "mixed"

let model_of_int = function
  | 0 -> Mixed
  | 1 -> In_order
  | 2 -> Out_of_order
  | n -> invalid_arg (Printf.sprintf "Config.model_of_int: %d" n)

let model_to_int = function Mixed -> 0 | In_order -> 1 | Out_of_order -> 2

(* --- speculation policy ----------------------------------------------- *)

(* Structured replacement for the flat [backoff]/[degrade_after] knobs:
   one sub-record describing the whole fork-decision strategy, built
   through smart constructors and validated with the rest of the
   configuration.  The legacy flat fields survive as deprecated shims
   that [effective_policy] folds in, so existing callers compile (and
   behave) unchanged. *)

module Policy = struct
  type kind =
    | Static (* today's behaviour: fixed model, optional backoff/degrade *)
    | Adaptive (* closed-loop per-fork-point Deny/Expand/Speculate engine *)
    | Hostile (* chaos-harness adversary: rotates worst-case decisions *)

  let kind_to_string = function
    | Static -> "static"
    | Adaptive -> "adaptive"
    | Hostile -> "hostile"

  let kind_of_string = function
    | "static" -> Static
    | "adaptive" -> Adaptive
    | "hostile" -> Hostile
    | s -> invalid_arg (Printf.sprintf "Config.Policy.kind_of_string: %S" s)

  type t = {
    kind : kind;
    backoff : bool; (* per-point exponential fork veto (static engine) *)
    degrade_after : int; (* overflow streak before permanent degrade; 0 off *)
    deny_after : int; (* adaptive: rollback streak before Deny; 0 off *)
    reprobe_after : int; (* adaptive: denied requests before one re-probe *)
    expand : bool; (* adaptive: allow Level-1 store-free Expand forks *)
    payoff_threshold : float; (* adaptive: deny when wasted_ratio exceeds *)
    min_samples : int; (* adaptive: retires before payoff denial applies *)
  }

  let default =
    {
      kind = Static;
      backoff = false;
      degrade_after = 0;
      deny_after = 3;
      reprobe_after = 16;
      expand = true;
      payoff_threshold = 0.85;
      min_samples = 4;
    }

  let static ?(backoff = false) ?(degrade_after = 0) () =
    { default with kind = Static; backoff; degrade_after }

  let adaptive ?(deny_after = default.deny_after)
      ?(reprobe_after = default.reprobe_after) ?(expand = default.expand)
      ?(payoff_threshold = default.payoff_threshold)
      ?(min_samples = default.min_samples) ?(degrade_after = 0) () =
    {
      kind = Adaptive;
      backoff = false;
      degrade_after;
      deny_after;
      reprobe_after;
      expand;
      payoff_threshold;
      min_samples;
    }

  let hostile () = { default with kind = Hostile }

  let fail fmt = Printf.ksprintf invalid_arg fmt

  let validate p =
    if p.degrade_after < 0 then
      fail "Config.Policy.degrade_after must be non-negative (got %d)"
        p.degrade_after;
    if p.deny_after < 0 then
      fail "Config.Policy.deny_after must be non-negative (got %d)" p.deny_after;
    if p.reprobe_after < 1 then
      fail "Config.Policy.reprobe_after must be >= 1 (got %d)" p.reprobe_after;
    if not (p.payoff_threshold >= 0.0 && p.payoff_threshold <= 1.0) then
      fail "Config.Policy.payoff_threshold must be in [0, 1] (got %g)"
        p.payoff_threshold;
    if p.min_samples < 0 then
      fail "Config.Policy.min_samples must be non-negative (got %d)"
        p.min_samples
end

(* --- speculative buffer geometry --------------------------------------- *)

(* Structured replacement for the flat [buffer_slots]/[temp_slots]
   knobs, mirroring the [Policy] pattern: one sub-record describing the
   whole memory-system geometry — home-map sharding, the graceful spill
   tier, and bulk line granularity — built through a smart constructor
   and validated with the rest of the configuration.  The legacy flat
   fields survive as deprecated shims that [effective_buffers] folds
   in, so existing callers compile (and behave) unchanged. *)

module Buffers = struct
  type t = {
    slots : int; (* total home-map slots (power of two);
                    0 = inherit the deprecated flat [buffer_slots] *)
    temp_slots : int; (* park-buffer entries for hash conflicts;
                         -1 = inherit the deprecated flat [temp_slots] *)
    shards : int; (* power-of-two shard count; address ranges interleave
                     across shards at line granularity *)
    spill_slots : int; (* spill-tier capacity (power of two); 0 turns the
                          tier off and restores park-then-Overflow *)
    line_words : int; (* bulk validate/commit granularity in words:
                         1 = per-word (seed), 8 = 64-byte lines *)
  }

  let default =
    { slots = 0; temp_slots = -1; shards = 1; spill_slots = 0; line_words = 1 }

  let make ?(slots = default.slots) ?(temp_slots = default.temp_slots)
      ?(shards = default.shards) ?(spill_slots = default.spill_slots)
      ?(line_words = default.line_words) () =
    { slots; temp_slots; shards; spill_slots; line_words }

  let fail fmt = Printf.ksprintf invalid_arg fmt

  let power_of_two n = n >= 1 && n land (n - 1) = 0

  (* Validates a RESOLVED record (after [effective_buffers]): the
     inherit sentinels 0/-1 are gone by then. *)
  let validate b =
    if not (power_of_two b.slots) then
      fail "Config.Buffers.slots must be a positive power of two (got %d)"
        b.slots;
    if b.temp_slots < 0 then
      fail "Config.Buffers.temp_slots must be non-negative (got %d)"
        b.temp_slots;
    if not (power_of_two b.shards) then
      fail "Config.Buffers.shards must be a positive power of two (got %d)"
        b.shards;
    if b.shards > b.slots then
      fail "Config.Buffers.shards must not exceed slots (got %d > %d)"
        b.shards b.slots;
    if b.spill_slots <> 0 && not (power_of_two b.spill_slots) then
      fail "Config.Buffers.spill_slots must be 0 or a positive power of two \
            (got %d)"
        b.spill_slots;
    if b.line_words <> 1 && b.line_words <> 8 then
      fail "Config.Buffers.line_words must be 1 or 8 (got %d)" b.line_words
end

type cost = {
  instr : float; (* base cost of one IR instruction *)
  mem : float; (* additional cost of an unbuffered load/store *)
  spec_hit : float; (* buffered access hitting an existing entry *)
  spec_miss : float; (* buffered access inserting a new entry *)
  fork : float; (* MUTLS_speculate: thread creation and hand-off *)
  find_cpu : float; (* MUTLS_get_CPU rank search *)
  per_local : float; (* saving or restoring one local variable *)
  validate_word : float; (* validating one read-set word *)
  commit_word : float; (* committing one write-set word *)
  finalize_word : float; (* clearing one buffer slot *)
  check_point : float; (* polling the sync flag *)
  sync_fixed : float; (* fixed synchronization handshake cost *)
  call : float; (* function call/return overhead *)
  spill : float; (* latency penalty per spill-tier insertion: the price
                    of a capacity miss that no longer squashes *)
}

let default_cost =
  {
    instr = 1.0;
    mem = 2.0;
    spec_hit = 2.0;
    spec_miss = 10.0;
    fork = 400.0;
    find_cpu = 15.0;
    per_local = 4.0;
    validate_word = 2.0;
    commit_word = 3.0;
    finalize_word = 0.5;
    check_point = 0.1;
    sync_fixed = 50.0;
    call = 4.0;
    spill = 20.0;
  }

type t = {
  ncpus : int; (* total CPUs as in the paper's x-axis: one runs the
                  non-speculative thread, the rest host speculation *)
  domains : int; (* hardware parallelism of the domains backend: OCaml 5
                    domains the parallel scheduler spreads the ncpus
                    virtual CPUs' fibers over (work stealing multiplexes
                    when domains < ncpus).  Ignored by the deterministic
                    simulator, which always runs on one systhread. *)
  cost : cost;
  buffer_slots : int; (* GlobalBuffer map slots; power of two *)
  temp_slots : int; (* overflow buffer entries *)
  max_locals : int; (* RegisterBuffer static array size *)
  model_override : model option; (* force all fork points to one model *)
  rollback_probability : float; (* injected validation failures, Fig. 11 *)
  seed : int; (* deterministic stream for injection *)
  quantum : float; (* interpreter yield granularity, virtual cycles *)
  cascade : cascade; (* tree-form (the paper) vs linear mixed model *)
  value_prediction : bool; (* §VI future work: stride prediction of
                              fork-time register values *)
  trace_sink : Mutls_obs.Trace.sink;
  (* Destination of the runtime's typed event trace; Trace.null (the
     default) keeps tracing disabled at near-zero cost.  This replaces
     the old MUTLS_DEBUG/MUTLS_DEBUG2 env toggles: the library never
     reads the process environment. *)
  telemetry : Mutls_obs.Telemetry.t;
  (* Always-on metrics registry the runtime records into; defaults to
     the process-wide Telemetry.default.  Pass Telemetry.disabled to
     switch recording off (the obs overhead benchmark's baseline) or a
     fresh Telemetry.create () to scope measurements to one run.
     Unlike trace_sink, telemetry never charges virtual time and never
     touches the injection RNG, so it cannot perturb traces. *)
  fault : Fault.plan option; (* chaos testing: deterministic fault
                                injection at the runtime's failure
                                sites; None (the default) disables it *)
  backoff : bool; (* DEPRECATED shim: use [policy]; folded in by
                     [effective_policy] (OR'd with policy.backoff) *)
  degrade_after : int; (* DEPRECATED shim: use [policy]; folded in by
                          [effective_policy] when policy.degrade_after
                          is 0 *)
  policy : Policy.t; (* the fork-decision strategy; see Config.Policy *)
  buffers : Buffers.t; (* the memory-system geometry; see Config.Buffers.
                          The flat [buffer_slots]/[temp_slots] above are
                          DEPRECATED shims folded in by
                          [effective_buffers] *)
}

let default =
  {
    ncpus = 4;
    domains = 1;
    cost = default_cost;
    buffer_slots = 1 lsl 16;
    temp_slots = 64;
    max_locals = 256;
    model_override = None;
    rollback_probability = 0.0;
    seed = 42;
    quantum = 500.0;
    cascade = Tree_cascade;
    value_prediction = false;
    trace_sink = Mutls_obs.Trace.null;
    telemetry = Mutls_obs.Telemetry.default;
    fault = None;
    backoff = false;
    degrade_after = 0;
    policy = Policy.default;
    buffers = Buffers.default;
  }

(* The policy actually in force: the structured sub-record with the
   deprecated flat fields folded in.  Flat [backoff] ORs into the
   policy's; flat [degrade_after] applies only when the policy leaves
   its own at 0 (the structured field wins when both are set). *)
let effective_policy t =
  {
    t.policy with
    Policy.backoff = t.policy.Policy.backoff || t.backoff;
    degrade_after =
      (if t.policy.Policy.degrade_after > 0 then t.policy.Policy.degrade_after
       else t.degrade_after);
  }

(* The buffer geometry actually in force: the structured sub-record
   with the deprecated flat fields folded in.  Flat [buffer_slots]
   applies while the structured [slots] is 0 (its inherit sentinel);
   flat [temp_slots] applies while structured [temp_slots] is -1. *)
let effective_buffers t =
  {
    t.buffers with
    Buffers.slots =
      (if t.buffers.Buffers.slots > 0 then t.buffers.Buffers.slots
       else t.buffer_slots);
    temp_slots =
      (if t.buffers.Buffers.temp_slots >= 0 then t.buffers.Buffers.temp_slots
       else t.temp_slots);
  }

(* --- validation ------------------------------------------------------- *)

(* Reject malformed configurations up front with a field-specific
   message, instead of failing deep inside Global_buffer.create (or
   not at all).  Called by Thread_manager.create, so every TLS run is
   covered. *)

let fail fmt = Printf.ksprintf invalid_arg fmt

let check_cost (c : cost) =
  List.iter
    (fun (name, v) ->
      if not (v >= 0.0) then
        fail "Config.cost.%s must be non-negative (got %g)" name v)
    [ ("instr", c.instr); ("mem", c.mem); ("spec_hit", c.spec_hit);
      ("spec_miss", c.spec_miss); ("fork", c.fork); ("find_cpu", c.find_cpu);
      ("per_local", c.per_local); ("validate_word", c.validate_word);
      ("commit_word", c.commit_word); ("finalize_word", c.finalize_word);
      ("check_point", c.check_point); ("sync_fixed", c.sync_fixed);
      ("call", c.call); ("spill", c.spill) ]

(* Caps on the parallelism knobs: far above anything the paper's
   experiments use (64 CPUs), low enough to catch a units mistake (a
   byte count or a negative wrapped through an int parse) before it
   allocates ncpus stacks or spawns domains. *)
let max_ncpus = 1024
let max_domains = 128

let validate t =
  if t.ncpus < 1 then fail "Config.ncpus must be >= 1 (got %d)" t.ncpus;
  if t.ncpus > max_ncpus then
    fail "Config.ncpus must be <= %d (got %d)" max_ncpus t.ncpus;
  if t.domains < 1 then fail "Config.domains must be >= 1 (got %d)" t.domains;
  if t.domains > max_domains then
    fail "Config.domains must be <= %d (got %d)" max_domains t.domains;
  if t.buffer_slots < 1 || t.buffer_slots land (t.buffer_slots - 1) <> 0 then
    fail "Config.buffer_slots must be a positive power of two (got %d)"
      t.buffer_slots;
  if t.temp_slots < 0 then
    fail "Config.temp_slots must be non-negative (got %d)" t.temp_slots;
  if t.max_locals < 1 then
    fail "Config.max_locals must be >= 1 (got %d)" t.max_locals;
  if not (t.rollback_probability >= 0.0 && t.rollback_probability <= 1.0) then
    fail "Config.rollback_probability must be in [0, 1] (got %g)"
      t.rollback_probability;
  if not (t.quantum > 0.0) then
    fail "Config.quantum must be positive (got %g)" t.quantum;
  if t.degrade_after < 0 then
    fail "Config.degrade_after must be non-negative (got %d)" t.degrade_after;
  Policy.validate t.policy;
  Buffers.validate (effective_buffers t);
  check_cost t.cost;
  match t.fault with None -> () | Some plan -> Fault.validate_plan plan
