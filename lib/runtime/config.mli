(** Runtime configuration: forking model selection, buffer sizing,
    rollback injection (paper Fig. 11), ablation switches, and the
    virtual-time cost model that substitutes for the paper's 64-core
    AMD Opteron.  Costs are abstract "cycles"; only their ratios shape
    the speedup curves (see DESIGN.md). *)

(** The three forking models of paper §II. *)
type model = In_order | Out_of_order | Mixed

(** Ablation of the paper's central design choice (§IV-F): tree-form
    cascading confines rollbacks to a subtree; the linear mode models
    previous mixed-model systems where a rollback squashes every
    logically-later thread. *)
type cascade = Tree_cascade | Linear_cascade

val model_to_string : model -> string
val model_of_int : int -> model
(** 0 = mixed, 1 = in-order, 2 = out-of-order (the encoding used by the
    front-end builtins). *)

val model_to_int : model -> int
val cascade_to_string : cascade -> string

(** Structured fork-decision strategy: which policy engine drives
    per-fork-point decisions (see {!Mutls_runtime.Policy}) and its
    tuning knobs.  Replaces the deprecated flat [backoff] /
    [degrade_after] fields of {!t}, which remain as shims folded in by
    {!effective_policy}. *)
module Policy : sig
  type kind =
    | Static
        (** today's behaviour: fixed fork model, optional exponential
            backoff and overflow degrade — byte-identical traces *)
    | Adaptive
        (** closed-loop per-fork-point engine returning
            Deny / Expand / Speculate from streaming payoff statistics *)
    | Hostile
        (** chaos-harness adversary rotating worst-case decisions;
            exercises mechanism-level safety gates *)

  val kind_to_string : kind -> string

  val kind_of_string : string -> kind
  (** @raise Invalid_argument on an unknown name. *)

  type t = {
    kind : kind;
    backoff : bool;  (** static: per-point exponential fork veto *)
    degrade_after : int;
        (** overflow streak before permanent sequential degrade; 0 off *)
    deny_after : int;
        (** adaptive: consecutive rollbacks at a point before it is
            denied; 0 disables streak denial *)
    reprobe_after : int;
        (** adaptive: denied fork requests at a point before one probe
            fork is allowed through again *)
    expand : bool;
        (** adaptive: allow Level-1 (store-free, unbuffered) Expand
            forks where the static analysis proves them safe *)
    payoff_threshold : float;
        (** adaptive: deny a point whose wasted-work ratio exceeds this
            (the profiler advisor's criterion, applied online) *)
    min_samples : int;
        (** adaptive: retired threads required before the payoff
            criterion applies *)
  }

  val default : t
  (** [Static] with backoff and degrade off — the seed behaviour. *)

  val static : ?backoff:bool -> ?degrade_after:int -> unit -> t

  val adaptive :
    ?deny_after:int ->
    ?reprobe_after:int ->
    ?expand:bool ->
    ?payoff_threshold:float ->
    ?min_samples:int ->
    ?degrade_after:int ->
    unit ->
    t

  val hostile : unit -> t

  val validate : t -> unit
  (** @raise Invalid_argument on the first violated constraint. *)
end

(** Structured memory-system geometry: home-map sharding, the graceful
    spill tier and bulk line granularity of the speculative
    GlobalBuffer (see {!Mutls_runtime.Global_buffer}).  Replaces the
    deprecated flat [buffer_slots] / [temp_slots] fields of {!t}, which
    remain as shims folded in by {!effective_buffers}. *)
module Buffers : sig
  type t = {
    slots : int;
        (** total home-map slots, a power of two, split evenly across
            the shards; [0] (the default) inherits the deprecated flat
            [buffer_slots] *)
    temp_slots : int;
        (** park-buffer entries absorbing hash conflicts when the spill
            tier is off; [-1] (the default) inherits the deprecated
            flat [temp_slots] *)
    shards : int;
        (** power-of-two shard count; address ranges interleave across
            shards at 64-byte line granularity, each shard keeping its
            own last-slot read and write caches *)
    spill_slots : int;
        (** spill-tier capacity, a power of two: an associative
            overflow region that absorbs hash conflicts at a traced
            latency penalty instead of parking or raising, with
            [Global_buffer.Overflow] reserved for true tier
            exhaustion.  [0] (the default) turns the tier off and
            restores the seed park-then-[Overflow] behaviour *)
    line_words : int;
        (** bulk validate/commit granularity in words: [1] processes
            the insertion-order stack per word (seed behaviour), [8]
            validates and commits fully-resident 64-byte lines with
            whole-line mark checks *)
  }

  val default : t
  (** Inherit the flat fields, one shard, spill tier off, per-word
      validate/commit — the seed behaviour. *)

  val make :
    ?slots:int ->
    ?temp_slots:int ->
    ?shards:int ->
    ?spill_slots:int ->
    ?line_words:int ->
    unit ->
    t

  val validate : t -> unit
  (** Validates a resolved record (after {!effective_buffers} folded
      the inherit sentinels away).
      @raise Invalid_argument on the first violated constraint. *)
end

(** Virtual-cycle costs of the runtime's operations. *)
type cost = {
  instr : float;  (** base cost of one IR instruction *)
  mem : float;  (** additional cost of an unbuffered load/store *)
  spec_hit : float;  (** buffered access hitting an existing entry *)
  spec_miss : float;  (** buffered access inserting a new entry *)
  fork : float;  (** MUTLS_speculate: thread creation and hand-off *)
  find_cpu : float;  (** MUTLS_get_CPU rank search *)
  per_local : float;  (** saving or restoring one local variable *)
  validate_word : float;  (** validating one read-set word *)
  commit_word : float;  (** committing one write-set word *)
  finalize_word : float;  (** clearing one buffer slot *)
  check_point : float;  (** polling the sync flag *)
  sync_fixed : float;  (** fixed synchronization handshake cost *)
  call : float;  (** function call/return overhead *)
  spill : float;
      (** latency penalty per spill-tier insertion — the price of a
          GlobalBuffer capacity miss that no longer squashes *)
}

val default_cost : cost

type t = {
  ncpus : int;
      (** total CPUs, as on the paper's x-axis: one runs the
          non-speculative thread, the rest host speculation *)
  domains : int;
      (** hardware parallelism of the domains backend
          ([Mutls_par.Sched]): OCaml 5 domains the parallel scheduler
          spreads the [ncpus] virtual CPUs' fibers over (work stealing
          multiplexes when [domains < ncpus]).  Ignored by the
          deterministic simulator.  Default [1]. *)
  cost : cost;
  buffer_slots : int;  (** GlobalBuffer map slots; a power of two *)
  temp_slots : int;  (** overflow buffer entries *)
  max_locals : int;  (** RegisterBuffer static array size *)
  model_override : model option;
      (** force every fork point to one model (Fig. 10) *)
  rollback_probability : float;
      (** injected validation failures (Fig. 11) *)
  seed : int;  (** deterministic stream for the injection *)
  quantum : float;  (** interpreter yield granularity, virtual cycles *)
  cascade : cascade;
  value_prediction : bool;
      (** §VI future work: stride prediction of fork-time locals *)
  trace_sink : Mutls_obs.Trace.sink;
      (** destination of the runtime's typed event trace;
          [Mutls_obs.Trace.null] (the default) keeps tracing disabled
          at near-zero cost.  Replaces the old [MUTLS_DEBUG] /
          [MUTLS_DEBUG2] env toggles — the library never reads the
          process environment. *)
  telemetry : Mutls_obs.Telemetry.t;
      (** always-on metrics registry the runtime records into;
          defaults to the process-wide [Telemetry.default].  Pass
          [Telemetry.disabled] to switch recording off, or a fresh
          [Telemetry.create ()] to scope measurements to one run.
          Unlike [trace_sink], telemetry never charges virtual time
          and never touches the injection RNG, so it cannot perturb
          traces or timings. *)
  fault : Fault.plan option;
      (** chaos testing: deterministic fault injection at the runtime's
          failure sites (see {!Fault}); [None] (the default) disables
          injection entirely *)
  backoff : bool;
      (** @deprecated flat shim for {!Policy.t.backoff}: OR'd into the
          policy by {!effective_policy} so pre-policy callers behave
          unchanged.  Prefer [policy = Policy.static ~backoff:true ()]. *)
  degrade_after : int;
      (** @deprecated flat shim for {!Policy.t.degrade_after}: applied
          by {!effective_policy} when the structured field is [0].
          Prefer [policy = Policy.static ~degrade_after:n ()]. *)
  policy : Policy.t;
      (** the fork-decision strategy; [Policy.default] (static, no
          backoff, no degrade) preserves seed behaviour and traces *)
  buffers : Buffers.t;
      (** the memory-system geometry; [Buffers.default] (one shard,
          spill tier off, per-word bulk granularity, sizes inherited
          from the flat fields) preserves seed behaviour and traces *)
}

val default : t

val effective_policy : t -> Policy.t
(** The policy actually in force: [t.policy] with the deprecated flat
    [backoff]/[degrade_after] fields folded in (flat [backoff] ORs in;
    flat [degrade_after] applies only when the structured field is 0).
    [Thread_manager.create] instantiates its engine from this. *)

val effective_buffers : t -> Buffers.t
(** The buffer geometry actually in force: [t.buffers] with the
    deprecated flat [buffer_slots]/[temp_slots] fields folded in (each
    flat field applies while the structured one is left at its inherit
    sentinel, [0] for [slots] and [-1] for [temp_slots]).
    [Thread_manager.create] sizes every GlobalBuffer from this. *)

val validate : t -> unit
(** Reject malformed configurations up front — [1 <= ncpus <= 1024],
    [1 <= domains <= 128], [buffer_slots] a positive power of two,
    non-negative sizes, rates and costs, probabilities in [[0, 1]] —
    with a field-specific message instead of failing deep inside
    [Global_buffer.create] (or spawning a thousand domains).  Called by
    [Thread_manager.create].
    @raise Invalid_argument on the first violated constraint. *)
