(** Runtime configuration: forking model selection, buffer sizing,
    rollback injection (paper Fig. 11), ablation switches, and the
    virtual-time cost model that substitutes for the paper's 64-core
    AMD Opteron.  Costs are abstract "cycles"; only their ratios shape
    the speedup curves (see DESIGN.md). *)

(** The three forking models of paper §II. *)
type model = In_order | Out_of_order | Mixed

(** Ablation of the paper's central design choice (§IV-F): tree-form
    cascading confines rollbacks to a subtree; the linear mode models
    previous mixed-model systems where a rollback squashes every
    logically-later thread. *)
type cascade = Tree_cascade | Linear_cascade

val model_to_string : model -> string
val model_of_int : int -> model
(** 0 = mixed, 1 = in-order, 2 = out-of-order (the encoding used by the
    front-end builtins). *)

val model_to_int : model -> int
val cascade_to_string : cascade -> string

(** Virtual-cycle costs of the runtime's operations. *)
type cost = {
  instr : float;  (** base cost of one IR instruction *)
  mem : float;  (** additional cost of an unbuffered load/store *)
  spec_hit : float;  (** buffered access hitting an existing entry *)
  spec_miss : float;  (** buffered access inserting a new entry *)
  fork : float;  (** MUTLS_speculate: thread creation and hand-off *)
  find_cpu : float;  (** MUTLS_get_CPU rank search *)
  per_local : float;  (** saving or restoring one local variable *)
  validate_word : float;  (** validating one read-set word *)
  commit_word : float;  (** committing one write-set word *)
  finalize_word : float;  (** clearing one buffer slot *)
  check_point : float;  (** polling the sync flag *)
  sync_fixed : float;  (** fixed synchronization handshake cost *)
  call : float;  (** function call/return overhead *)
}

val default_cost : cost

type t = {
  ncpus : int;
      (** total CPUs, as on the paper's x-axis: one runs the
          non-speculative thread, the rest host speculation *)
  cost : cost;
  buffer_slots : int;  (** GlobalBuffer map slots; a power of two *)
  temp_slots : int;  (** overflow buffer entries *)
  max_locals : int;  (** RegisterBuffer static array size *)
  model_override : model option;
      (** force every fork point to one model (Fig. 10) *)
  rollback_probability : float;
      (** injected validation failures (Fig. 11) *)
  seed : int;  (** deterministic stream for the injection *)
  quantum : float;  (** interpreter yield granularity, virtual cycles *)
  cascade : cascade;
  value_prediction : bool;
      (** §VI future work: stride prediction of fork-time locals *)
  trace_sink : Mutls_obs.Trace.sink;
      (** destination of the runtime's typed event trace;
          [Mutls_obs.Trace.null] (the default) keeps tracing disabled
          at near-zero cost.  Replaces the old [MUTLS_DEBUG] /
          [MUTLS_DEBUG2] env toggles — the library never reads the
          process environment. *)
  fault : Fault.plan option;
      (** chaos testing: deterministic fault injection at the runtime's
          failure sites (see {!Fault}); [None] (the default) disables
          injection entirely *)
  backoff : bool;
      (** per-fork-point exponential backoff after repeated
          rollbacks/overflows — the online counterpart of the
          profiler's no-speculate advisor.  Off by default so
          benchmark figures are unaffected. *)
  degrade_after : int;
      (** consecutive overflow rollbacks (with no intervening commit)
          tolerated before speculation is switched off for the rest of
          the run, turning sustained resource exhaustion into plain
          sequential execution instead of rollback-thrashing;
          [0] (the default) disables the fallback *)
}

val default : t

val validate : t -> unit
(** Reject malformed configurations up front — [ncpus >= 1],
    [buffer_slots] a positive power of two, non-negative sizes, rates
    and costs, probabilities in [[0, 1]] — with a field-specific
    message instead of failing deep inside [Global_buffer.create].
    Called by [Thread_manager.create].
    @raise Invalid_argument on the first violated constraint. *)
