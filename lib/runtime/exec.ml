(* Pluggable execution layer: the seam that splits Thread_manager into
   a pure fork-model core and an interchangeable engine underneath it.

   The TLS protocol needs exactly five services from whatever runs its
   threads: a clock, a way to consume time, a way to launch a thread,
   and one-shot integer flags with peek/set/wait (the paper's volatile
   sync_status / valid_status variables).  [t] packages those as a
   closure record; Thread_manager calls through it and never names a
   concrete engine.

   Two implementations exist:
     - [of_sim]: the deterministic discrete-event simulator
       (Mutls_sim.Engine) — virtual time, byte-identical traces, the
       oracle;
     - Mutls_par.Sched.exec: real OCaml 5 domains with a work-stealing
       scheduler — wall-clock time, true parallelism.

   [flag] is an extensible variant so each backend can add its own
   representation without this module depending on it. *)

type flag = ..
type flag += Sim_flag of Mutls_sim.Engine.ivar

type kind = Sim | Parallel

type t = {
  kind : kind;
  now : unit -> float;
      (* virtual cycles on the sim path; wall-clock seconds since the
         run started on the parallel path *)
  advance : float -> unit; (* consume virtual time; a no-op in parallel *)
  spawn : (unit -> unit) -> unit;
  new_flag : unit -> flag;
  peek : flag -> int option;
  set : flag -> int -> unit;
  wait : flag -> int;
  lock : Mutex.t option;
      (* Thread_manager's shared-state lock: None on the sim path
         (single systhread, zero overhead), Some on the parallel path.
         Owned here so the manager's locking discipline follows the
         backend automatically. *)
}

let bad_flag what =
  invalid_arg (Printf.sprintf "Exec.%s: flag from another backend" what)

let of_sim engine =
  let module E = Mutls_sim.Engine in
  {
    kind = Sim;
    now = (fun () -> E.now engine);
    advance = (fun dt -> E.advance engine dt);
    spawn = (fun f -> E.spawn engine f);
    new_flag = (fun () -> Sim_flag (E.new_ivar ()));
    peek = (function Sim_flag iv -> E.ivar_peek iv | _ -> bad_flag "peek");
    set =
      (fun fl v ->
        match fl with
        | Sim_flag iv -> E.ivar_set engine iv v
        | _ -> bad_flag "set");
    wait =
      (function Sim_flag iv -> E.wait engine iv | _ -> bad_flag "wait");
    lock = None;
  }
