(** Pluggable execution layer: the seam between the pure fork-model
    core ({!Thread_manager}) and the engine that actually runs its
    threads.

    The TLS protocol needs exactly five services from an engine: a
    clock ({!t.now}), time consumption ({!t.advance}), thread launch
    ({!t.spawn}), and one-shot integer flags with peek/set/wait — the
    paper's volatile [sync_status] / [valid_status] variables.  [t]
    packages those as a closure record so {!Thread_manager} never names
    a concrete engine.

    Two implementations exist: {!of_sim} wraps the deterministic
    discrete-event simulator (virtual time, byte-identical traces, the
    oracle), and [Mutls_par.Sched.exec] runs threads on real OCaml 5
    domains under a work-stealing scheduler (wall-clock time, true
    parallelism). *)

type flag = ..
(** A one-shot integer flag; extensible so each backend supplies its
    own representation.  Transitions exactly once from unset. *)

type flag += Sim_flag of Mutls_sim.Engine.ivar

type kind = Sim | Parallel

type t = {
  kind : kind;
  now : unit -> float;
      (** virtual cycles (sim) or wall-clock seconds since the run
          started (parallel) *)
  advance : float -> unit;
      (** consume virtual time; a no-op on the parallel path, where
          time passes by itself *)
  spawn : (unit -> unit) -> unit;
  new_flag : unit -> flag;
  peek : flag -> int option;
  set : flag -> int -> unit;
      (** @raise Invalid_argument if the flag is already set *)
  wait : flag -> int;
      (** block until set; returns immediately if already set *)
  lock : Mutex.t option;
      (** {!Thread_manager}'s shared-state lock: [None] on the sim path
          (single systhread, zero overhead), [Some] on the parallel
          path *)
}

val of_sim : Mutls_sim.Engine.t -> t
(** The deterministic simulator backend: every operation forwards to
    {!Mutls_sim.Engine}, [lock] is [None]. *)
