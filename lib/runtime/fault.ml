(* Deterministic fault injection for the TLS runtime.

   Chaos testing of the paper's correctness story — rollbacks confined
   to a subtree, buffers cleared on commit/rollback, NOSYNC mismatches
   popped safely — needs the runtime's failure paths exercised on
   demand, not just when a benchmark happens to hit them.  A [t] is a
   seed-driven injector consulted by the ThreadManager at six
   well-defined sites; every injected fault maps onto a failure path
   the runtime already has to survive (forced validation failure,
   buffer overflow, poisoned locals, NOSYNC join, fork denial), so a
   run under any fault schedule must still produce the sequential
   result.

   Determinism: each site draws from its own SplitMix64 stream, seeded
   from the run seed and the site index.  A site with rate 0.0 never
   draws, so zeroing one site's rate (as the chaos shrinker does) does
   not shift the random streams of the others. *)

type site =
  | Validation_failure (* force validate_against_parent to fail *)
  | Buffer_overflow (* force a GlobalBuffer overflow on a buffered access *)
  | Spurious_rollback (* poison a thread's locals at a check point *)
  | Nosync_join (* treat the matching child as a mismatch at a join *)
  | Fork_denial (* make MUTLS_get_CPU return 0 despite an idle CPU *)
  | Spill_exhaust
    (* Buffer_overflow's spill-tier target: force spill-tier exhaustion
       on a buffered access while the tier is enabled *)

let n_sites = 6

let site_index = function
  | Validation_failure -> 0
  | Buffer_overflow -> 1
  | Spurious_rollback -> 2
  | Nosync_join -> 3
  | Fork_denial -> 4
  | Spill_exhaust -> 5

let site_name = function
  | Validation_failure -> "validation-failure"
  | Buffer_overflow -> "buffer-overflow"
  | Spurious_rollback -> "spurious-rollback"
  | Nosync_join -> "nosync-join"
  | Fork_denial -> "fork-denial"
  | Spill_exhaust -> "spill-exhaust"

let site_of_name = function
  | "validation-failure" -> Some Validation_failure
  | "buffer-overflow" -> Some Buffer_overflow
  | "spurious-rollback" -> Some Spurious_rollback
  | "nosync-join" -> Some Nosync_join
  | "fork-denial" -> Some Fork_denial
  | "spill-exhaust" -> Some Spill_exhaust
  | _ -> None

let all_sites =
  [ Validation_failure; Buffer_overflow; Spurious_rollback; Nosync_join;
    Fork_denial; Spill_exhaust ]

(* Per-site injection probabilities, each applied once per occurrence
   of the site (per validation, per buffered access, per stopping check
   point, per join, per otherwise-possible fork). *)
type plan = {
  validation : float;
  overflow : float;
  spurious : float;
  nosync : float;
  deny : float;
  spill_exhaust : float;
}

let none =
  { validation = 0.0; overflow = 0.0; spurious = 0.0; nosync = 0.0; deny = 0.0;
    spill_exhaust = 0.0 }

let rate plan = function
  | Validation_failure -> plan.validation
  | Buffer_overflow -> plan.overflow
  | Spurious_rollback -> plan.spurious
  | Nosync_join -> plan.nosync
  | Fork_denial -> plan.deny
  | Spill_exhaust -> plan.spill_exhaust

let is_none plan = List.for_all (fun s -> rate plan s = 0.0) all_sites

let validate_plan plan =
  List.iter
    (fun s ->
      let r = rate plan s in
      if not (r >= 0.0 && r <= 1.0) then
        invalid_arg
          (Printf.sprintf "Fault.plan: %s rate must be in [0, 1] (got %g)"
             (site_name s) r))
    all_sites

type t = {
  plan : plan;
  streams : Mutls_sim.Rng.t array; (* one independent stream per site *)
  injected : int array; (* faults actually fired, per site *)
  occasions : int array; (* times each site was consulted *)
}

let create ~seed plan =
  validate_plan plan;
  {
    plan;
    streams =
      Array.init n_sites (fun i ->
          (* distinct, seed-derived stream per site; the golden-ratio
             multiplier decorrelates neighbouring seeds *)
          Mutls_sim.Rng.create (seed + ((i + 1) * 0x9E3779B9)));
    injected = Array.make n_sites 0;
    occasions = Array.make n_sites 0;
  }

(* Roll the dice for one occurrence of [site].  Rate-0 sites return
   [false] without consuming randomness. *)
let fire t site =
  let i = site_index site in
  t.occasions.(i) <- t.occasions.(i) + 1;
  let r = rate t.plan site in
  if r <= 0.0 then false
  else begin
    let hit = r >= 1.0 || Mutls_sim.Rng.next_float t.streams.(i) < r in
    if hit then t.injected.(i) <- t.injected.(i) + 1;
    hit
  end

let injected t site = t.injected.(site_index site)
let occasions t site = t.occasions.(site_index site)
let total_injected t = Array.fold_left ( + ) 0 t.injected

let injected_assoc t =
  List.map (fun s -> (site_name s, injected t s)) all_sites
