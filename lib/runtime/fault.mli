(** Deterministic fault injection for the TLS runtime.

    A {!t} is a seed-driven injector consulted by the ThreadManager at
    six well-defined sites.  Every injected fault maps onto a failure
    path the runtime must survive anyway — a forced validation failure,
    a GlobalBuffer overflow, poisoned locals (stale-local rollback at
    the next validation), a NOSYNC'd join, a denied fork — so a run
    under {i any} fault schedule must still terminate with the
    sequential program's results.  The chaos harness
    ([Mutls.Chaos] / [mutlsc chaos]) asserts exactly that.

    Determinism: each site draws from its own SplitMix64 stream seeded
    from the run seed, and a rate-0 site never draws — so zeroing one
    site's rate (as the shrinker does) leaves the other sites' streams
    unchanged. *)

(** Injection sites, in the order the runtime consults them. *)
type site =
  | Validation_failure
      (** force [validate_against_parent] to report a conflict *)
  | Buffer_overflow
      (** force a GlobalBuffer overflow on a buffered load/store,
          modelling temporary-buffer exhaustion *)
  | Spurious_rollback
      (** poison a thread's locals at a stopping check point so its
          eventual validation fails stale-local *)
  | Nosync_join
      (** treat the matching child as a mismatch at a join, NOSYNCing
          its subtree (the parent re-executes the region) *)
  | Fork_denial  (** make MUTLS_get_CPU return 0 despite an idle CPU *)
  | Spill_exhaust
      (** {!Buffer_overflow}'s spill-tier target: force spill-tier
          exhaustion on a buffered access while the tier is enabled
          (ignored at the seed geometry, where the tier is off) *)

val all_sites : site list
val site_name : site -> string
val site_of_name : string -> site option

(** Per-site injection probabilities, each applied once per occurrence
    of the site. *)
type plan = {
  validation : float;  (** per validation *)
  overflow : float;  (** per buffered (GlobalBuffer) access *)
  spurious : float;  (** per stopping check point *)
  nosync : float;  (** per matched join *)
  deny : float;  (** per otherwise-possible fork *)
  spill_exhaust : float;
      (** per buffered access, spill tier enabled (0 elsewhere) *)
}

val none : plan
(** All rates zero. *)

val rate : plan -> site -> float
val is_none : plan -> bool

val validate_plan : plan -> unit
(** @raise Invalid_argument when a rate lies outside [[0, 1]]. *)

type t

val create : seed:int -> plan -> t
(** @raise Invalid_argument on an invalid plan. *)

val fire : t -> site -> bool
(** Roll the dice for one occurrence of the site; [true] means inject.
    Counts the occasion either way. *)

val injected : t -> site -> int
(** Faults actually fired at the site so far. *)

val occasions : t -> site -> int
(** Times the site has been consulted so far. *)

val total_injected : t -> int

val injected_assoc : t -> (string * int) list
(** Site name to injected count, in {!all_sites} order. *)
