(* GlobalBuffer (paper §IV-G2): buffering of non-local (static, heap,
   and non-speculative stack) accesses of one speculative thread.

   Two maps — a read set and a write set — implemented exactly as the
   paper describes: static memory only, a [buffer] byte array of WORD
   multiples, an [addresses] word-pointer array and an [offsets] stack
   (so validation/commit/finalization of threads touching little data
   stay fast), plus a [mark] byte array for sub-word writes.

   On top of the paper's design, three pressure-resilience layers, all
   off by default (Config.Buffers.default reproduces the seed
   behaviour bit-for-bit):

   - sharding: the read and write sets split into [shards] maps with
     address ranges interleaved at 64-byte line granularity, each
     shard keeping its own last-slot caches, so occupancy hot spots in
     distinct ranges stop colliding;
   - a spill tier: when enabled it replaces the fixed temporary park
     buffer with a bounded associative overflow region that still
     participates in validate/commit/finalize — a full home slot
     spills the entry (the caller charges a latency penalty) instead
     of parking-then-raising, and [Overflow] is reserved for true
     spill-tier exhaustion;
   - line-granular bulk validate/commit: fully-resident 64-byte lines
     are validated and (when fully marked) committed eight words at a
     time, extending the whole-word mark trick. *)

let word = 8
let word_mask = lnot 7

exception Overflow
(* Overflow region exhausted — the fixed temporary buffer when the
   spill tier is off, the spill tier itself when it is on: the
   speculative thread must roll back. *)

type map = {
  nslots : int; (* power of two *)
  buffer : Bytes.t; (* nslots * word data bytes *)
  addresses : int array; (* slot -> word address; 0 = empty *)
  marks : Bytes.t; (* 0xFF per written byte (write set only) *)
  offsets : int array; (* stack of occupied slots *)
  mutable count : int;
  line_gen : int array; (* line mode: per-slot-group bulk-walk stamps
                           (empty when line_words = 1) *)
  mutable stamp : int; (* line mode: current bulk-walk generation *)
}

type temp_entry = {
  t_addr : int;
  t_data : Bytes.t; (* 8 bytes *)
  t_mark : Bytes.t; (* 8 bytes; all-zero for read entries *)
  t_is_read : bool; (* fetched for a read: participates in validation *)
}

(* The spill tier: an open-addressed, linear-probed map with full mark
   bytes and a read-origin flag per slot.  Entries are only cleared
   wholesale in [finalize], so probing never has to handle
   deletions. *)
type spill = {
  s_nslots : int; (* power of two; 0 = tier disabled *)
  s_data : Bytes.t;
  s_marks : Bytes.t;
  s_addrs : int array; (* 0 = empty *)
  s_read : Bytes.t; (* '\001' = read-origin: participates in validation *)
  s_offsets : int array;
  mutable s_count : int;
}

type t = {
  shards : int; (* power of two *)
  shard_mask : int;
  line_words : int; (* 1 = per-word walks (seed); 8 = 64-byte lines *)
  read_sets : map array; (* one per shard *)
  write_sets : map array;
  temp : temp_entry option array;
  mutable temp_count : int;
  spill : spill;
  mutable conflict_pending : bool; (* ask to be joined at next check point *)
  mutable parks : int; (* cumulative temp-buffer parks *)
  mutable spills : int; (* cumulative spill-tier insertions *)
  mutable on_park : (int -> unit) option;
  (* Observability hook: called with the word address whenever a hash
     conflict parks an entry in the temporary buffer.  Installed by the
     ThreadManager when tracing is on (pooled buffers serve successive
     threads, so it is re-bound per occupant). *)
  mutable on_spill : (int -> unit) option;
  (* Same, for real spill-tier insertions (only fires when the tier is
     enabled). *)
  (* Per-shard last-slot caches: loops re-touch the same word, so
     remembering the last hit skips the probe sequence entirely.
     [c_waddr]/[c_wslot] name a write-set entry (which shadows
     everything until [finalize]); [c_raddr]/[c_rslot] name a read-set
     entry and are only valid while the word has no write-set or
     overflow entry — any write to the word invalidates them.  0 =
     empty, like [addresses]. *)
  c_waddr : int array;
  c_wslot : int array;
  c_raddr : int array;
  c_rslot : int array;
}

let make_map ~line_words nslots =
  {
    nslots;
    buffer = Bytes.make (nslots * word) '\000';
    addresses = Array.make nslots 0;
    marks = Bytes.make (nslots * word) '\000';
    offsets = Array.make nslots 0;
    count = 0;
    line_gen =
      (if line_words > 1 && nslots >= line_words then
         Array.make (nslots / line_words) 0
       else [||]);
    stamp = 0;
  }

let make_spill nslots =
  {
    s_nslots = nslots;
    s_data = Bytes.make (nslots * word) '\000';
    s_marks = Bytes.make (nslots * word) '\000';
    s_addrs = Array.make nslots 0;
    s_read = Bytes.make nslots '\000';
    s_offsets = Array.make nslots 0;
    s_count = 0;
  }

let create ?(shards = 1) ?(spill_slots = 0) ?(line_words = 1) ~slots
    ~temp_slots () =
  if slots land (slots - 1) <> 0 then
    invalid_arg "Global_buffer.create: slots must be a power of two";
  if shards < 1 || shards land (shards - 1) <> 0 then
    invalid_arg "Global_buffer.create: shards must be a power of two";
  if shards > slots then
    invalid_arg "Global_buffer.create: shards must not exceed slots";
  if spill_slots <> 0 && (spill_slots < 1 || spill_slots land (spill_slots - 1) <> 0)
  then invalid_arg "Global_buffer.create: spill_slots must be 0 or a power of two";
  if line_words <> 1 && line_words <> 8 then
    invalid_arg "Global_buffer.create: line_words must be 1 or 8";
  let per_shard = slots / shards in
  {
    shards;
    shard_mask = shards - 1;
    line_words;
    read_sets = Array.init shards (fun _ -> make_map ~line_words per_shard);
    write_sets = Array.init shards (fun _ -> make_map ~line_words per_shard);
    temp = Array.make temp_slots None;
    temp_count = 0;
    spill = make_spill spill_slots;
    conflict_pending = false;
    parks = 0;
    spills = 0;
    on_park = None;
    on_spill = None;
    c_waddr = Array.make shards 0;
    c_wslot = Array.make shards 0;
    c_raddr = Array.make shards 0;
    c_rslot = Array.make shards 0;
  }

let set_park_hook t hook = t.on_park <- hook
let set_spill_hook t hook = t.on_spill <- hook

(* Shard selection: 64-byte lines interleave across shards, so any
   dense hot region spreads evenly and strided streams that would pile
   into one home slot fan out by their line bits.  One shard (the
   default) makes this the identity. *)
let shard_of t np = (np lsr 6) land t.shard_mask

(* Efficient hash: low bits of the word address (paper §IV-G2). *)
let slot_of m np = (np lsr 3) land (m.nslots - 1)

type lookup = Hit of int | Empty of int | Conflict

let lookup m np =
  let i = slot_of m np in
  let a = m.addresses.(i) in
  if a = 0 then Empty i else if a = np then Hit i else Conflict

let occupy m i np =
  m.addresses.(i) <- np;
  m.offsets.(m.count) <- i;
  m.count <- m.count + 1

let read_word_of m i = Bytes.get_int64_le m.buffer (i * word)
let write_word_of m i v = Bytes.set_int64_le m.buffer (i * word) v

(* Occupied temp slots form the prefix [0, temp_count): [add_temp]
   appends at [temp_count] and entries are only cleared wholesale in
   [finalize], so the scan never needs to look past the count. *)
let find_temp t np =
  let rec go k =
    if k >= t.temp_count then None
    else
      match t.temp.(k) with
      | Some e when e.t_addr = np -> Some e
      | _ -> go (k + 1)
  in
  go 0

let add_temp t entry =
  if t.temp_count >= Array.length t.temp then raise Overflow;
  t.temp.(t.temp_count) <- Some entry;
  t.temp_count <- t.temp_count + 1;
  t.conflict_pending <- true;
  t.parks <- t.parks + 1;
  match t.on_park with None -> () | Some f -> f entry.t_addr

(* --- spill tier ----------------------------------------------------- *)

let spill_enabled t = t.spill.s_nslots > 0
let spill_capacity t = t.spill.s_nslots
let spill_size t = t.spill.s_count

(* Probe slot of [np], or -1 when absent.  The table never deletes
   mid-run, so the probe chain is empty-terminated unless the table is
   full — then the probe count bounds the scan. *)
let find_spill_slot s np =
  let mask = s.s_nslots - 1 in
  let rec go i probes =
    if probes >= s.s_nslots then -1
    else
      let a = s.s_addrs.(i) in
      if a = 0 then -1
      else if a = np then i
      else go ((i + 1) land mask) (probes + 1)
  in
  go ((np lsr 3) land mask) 0

(* Insert a fresh entry for [np] and return its slot.
   @raise Overflow on true tier exhaustion. *)
let spill_insert t np ~is_read =
  let s = t.spill in
  if s.s_count >= s.s_nslots then raise Overflow;
  let mask = s.s_nslots - 1 in
  let rec free i = if s.s_addrs.(i) = 0 then i else free ((i + 1) land mask) in
  let i = free ((np lsr 3) land mask) in
  s.s_addrs.(i) <- np;
  if is_read then Bytes.set s.s_read i '\001';
  s.s_offsets.(s.s_count) <- i;
  s.s_count <- s.s_count + 1;
  t.spills <- t.spills + 1;
  (match t.on_spill with None -> () | Some f -> f np);
  i

(* --- byte-level helpers -------------------------------------------- *)

let get_sized bytes pos size =
  match size with
  | 8 -> Bytes.get_int64_le bytes pos
  | 4 -> Int64.of_int32 (Bytes.get_int32_le bytes pos)
  | 1 -> Int64.of_int (Char.code (Bytes.get bytes pos))
  | _ -> invalid_arg "Global_buffer: access size"

let set_sized bytes pos size v =
  match size with
  | 8 -> Bytes.set_int64_le bytes pos v
  | 4 -> Bytes.set_int32_le bytes pos (Int64.to_int32 v)
  | 1 -> Bytes.set bytes pos (Char.chr (Int64.to_int v land 0xff))
  | _ -> invalid_arg "Global_buffer: access size"

let set_marks bytes pos size =
  if size = word then Bytes.set_int64_le bytes pos (-1L)
  else
    for k = pos to pos + size - 1 do
      Bytes.set bytes k '\xff'
    done

(* --- speculative read ---------------------------------------------- *)

(* Read [size] bytes at address [p] (aligned by size), fetching from
   main memory through [mem] on a read-set miss.  Returns the raw bits
   zero-extended into an int64 plus whether the access hit an existing
   buffer entry (hits are much cheaper than insert-and-fetch misses;
   the paper's design emphasises exactly this data-reuse benefit). *)
let read t (mem : Memio.t) p size =
  if p land (size - 1) <> 0 then invalid_arg "Global_buffer.read: alignment";
  let np = p land word_mask in
  let off = p land (word - 1) in
  let s = shard_of t np in
  if np = t.c_waddr.(s) then
    (get_sized t.write_sets.(s).buffer ((t.c_wslot.(s) * word) + off) size, true)
  else if np = t.c_raddr.(s) then
    (get_sized t.read_sets.(s).buffer ((t.c_rslot.(s) * word) + off) size, true)
  else
    match lookup t.write_sets.(s) np with
    | Hit i ->
      t.c_waddr.(s) <- np;
      t.c_wslot.(s) <- i;
      (get_sized t.write_sets.(s).buffer ((i * word) + off) size, true)
    | Empty _ | Conflict -> (
      (* A write that hash-conflicted earlier may live in the overflow
         region (temp park buffer or spill tier); it must shadow a
         read-set fetch. *)
      match (if t.temp_count = 0 then None else find_temp t np) with
      | Some e -> (get_sized e.t_data off size, true)
      | None -> (
        let si =
          if t.spill.s_count = 0 then -1 else find_spill_slot t.spill np
        in
        if si >= 0 then
          (get_sized t.spill.s_data ((si * word) + off) size, true)
        else
          match lookup t.read_sets.(s) np with
          | Hit i ->
            t.c_raddr.(s) <- np;
            t.c_rslot.(s) <- i;
            (get_sized t.read_sets.(s).buffer ((i * word) + off) size, true)
          | Empty i ->
            let w = mem.Memio.read_word np in
            occupy t.read_sets.(s) i np;
            write_word_of t.read_sets.(s) i w;
            t.c_raddr.(s) <- np;
            t.c_rslot.(s) <- i;
            (get_sized t.read_sets.(s).buffer ((i * word) + off) size, false)
          | Conflict ->
            if spill_enabled t then begin
              let w = mem.Memio.read_word np in
              let i = spill_insert t np ~is_read:true in
              Bytes.set_int64_le t.spill.s_data (i * word) w;
              (get_sized t.spill.s_data ((i * word) + off) size, false)
            end
            else begin
              let w = mem.Memio.read_word np in
              let data = Bytes.make word '\000' in
              Bytes.set_int64_le data 0 w;
              add_temp t
                { t_addr = np; t_data = data; t_mark = Bytes.make word '\000';
                  t_is_read = true };
              (get_sized data off size, false)
            end))

(* --- speculative write --------------------------------------------- *)

let write t (mem : Memio.t) p size v =
  if p land (size - 1) <> 0 then invalid_arg "Global_buffer.write: alignment";
  let np = p land word_mask in
  let off = p land (word - 1) in
  let s = shard_of t np in
  if np = t.c_waddr.(s) then begin
    set_sized t.write_sets.(s).buffer ((t.c_wslot.(s) * word) + off) size v;
    set_marks t.write_sets.(s).marks ((t.c_wslot.(s) * word) + off) size;
    true
  end
  else begin
  (* the word is gaining a write-set or overflow entry, so a cached
     read-set location for it goes stale *)
  if np = t.c_raddr.(s) then t.c_raddr.(s) <- 0;
  match lookup t.write_sets.(s) np with
  | Hit i ->
    t.c_waddr.(s) <- np;
    t.c_wslot.(s) <- i;
    set_sized t.write_sets.(s).buffer ((i * word) + off) size v;
    set_marks t.write_sets.(s).marks ((i * word) + off) size;
    true
  | Empty i ->
    (* Fill the slot with the word's current contents so later whole-
       word reads of this slot see consistent data; prefer the read-set
       copy when present (it is the version this thread observed). *)
    let fill =
      if size = word then 0L
      else
        match lookup t.read_sets.(s) np with
        | Hit j -> read_word_of t.read_sets.(s) j
        | Empty _ | Conflict -> mem.Memio.read_word np
    in
    occupy t.write_sets.(s) i np;
    write_word_of t.write_sets.(s) i fill;
    t.c_waddr.(s) <- np;
    t.c_wslot.(s) <- i;
    set_sized t.write_sets.(s).buffer ((i * word) + off) size v;
    set_marks t.write_sets.(s).marks ((i * word) + off) size;
    false
  | Conflict -> (
    match (if t.temp_count = 0 then None else find_temp t np) with
    | Some e ->
      set_sized e.t_data off size v;
      set_marks e.t_mark off size;
      true
    | None ->
      let si =
        if t.spill.s_count = 0 then -1 else find_spill_slot t.spill np
      in
      if si >= 0 then begin
        set_sized t.spill.s_data ((si * word) + off) size v;
        set_marks t.spill.s_marks ((si * word) + off) size;
        true
      end
      else if spill_enabled t then begin
        let fill = if size = word then 0L else mem.Memio.read_word np in
        let i = spill_insert t np ~is_read:false in
        Bytes.set_int64_le t.spill.s_data (i * word) fill;
        set_sized t.spill.s_data ((i * word) + off) size v;
        set_marks t.spill.s_marks ((i * word) + off) size;
        false
      end
      else begin
        let fill = if size = word then 0L else mem.Memio.read_word np in
        let data = Bytes.make word '\000' in
        Bytes.set_int64_le data 0 fill;
        let mark = Bytes.make word '\000' in
        set_sized data off size v;
        set_marks mark off size;
        add_temp t
          { t_addr = np; t_data = data; t_mark = mark; t_is_read = false };
        false
      end)
  end

(* --- validation / commit / finalization ---------------------------- *)

(* Compare every read-set word against current main memory (value-based
   conflict detection).  Returns the number of words validated, or
   raises [Invalid_read addr] on the first mismatch, carrying the
   conflicting word address so rollbacks can be attributed to the hot
   word that caused them. *)
exception Invalid_read of int

(* Line mode: an aligned group of [line_words] consecutive slots holds
   a fully-resident 64-byte line when its first slot carries a
   64-aligned address and the rest follow word by word (the low-bits
   hash places consecutive words in consecutive slots, so residency is
   decidable from the addresses alone). *)
let line_resident m g0 =
  let a0 = m.addresses.(g0) in
  a0 <> 0 && a0 land 63 = 0
  && (let ok = ref true in
      for b = 1 to 7 do
        if m.addresses.(g0 + b) <> a0 + (b * word) then ok := false
      done;
      !ok)

let validate_map_words mem m checked =
  for k = 0 to m.count - 1 do
    let i = m.offsets.(k) in
    incr checked;
    if mem.Memio.read_word m.addresses.(i) <> read_word_of m i then
      raise (Invalid_read m.addresses.(i))
  done

(* Line-granular walk: fully-resident lines validate eight words at a
   time in address order (stamped so later members of the line skip);
   partial lines fall back to the per-word path.  The validated word
   count is identical to the per-word walk, so virtual time does not
   depend on the granularity. *)
let validate_map_lines mem m checked =
  m.stamp <- m.stamp + 1;
  for k = 0 to m.count - 1 do
    let i = m.offsets.(k) in
    let g0 = i land lnot 7 in
    let li = g0 lsr 3 in
    if m.line_gen.(li) = m.stamp then () (* line already bulk-validated *)
    else if line_resident m g0 then begin
      m.line_gen.(li) <- m.stamp;
      for j = g0 to g0 + 7 do
        incr checked;
        if mem.Memio.read_word m.addresses.(j) <> read_word_of m j then
          raise (Invalid_read m.addresses.(j))
      done
    end
    else begin
      incr checked;
      if mem.Memio.read_word m.addresses.(i) <> read_word_of m i then
        raise (Invalid_read m.addresses.(i))
    end
  done

(* Byte-wise compare of an overflow entry's unmarked bytes: bytes this
   thread overwrote after fetching are its own and must not be
   compared against main memory. *)
let validate_masked mem addr data dpos mark mpos =
  let cur = mem.Memio.read_word addr in
  let buf = Bytes.make word '\000' in
  Bytes.set_int64_le buf 0 cur;
  for b = 0 to word - 1 do
    if Bytes.get mark (mpos + b) <> '\xff'
       && Bytes.get buf b <> Bytes.get data (dpos + b)
    then raise (Invalid_read addr)
  done

let validate t (mem : Memio.t) =
  let checked = ref 0 in
  let line_mode m = t.line_words > 1 && Array.length m.line_gen > 0 in
  for s = 0 to t.shards - 1 do
    let m = t.read_sets.(s) in
    if line_mode m then validate_map_lines mem m checked
    else validate_map_words mem m checked
  done;
  Array.iter
    (function
      | Some e when e.t_is_read ->
        incr checked;
        validate_masked mem e.t_addr e.t_data 0 e.t_mark 0
      | _ -> ())
    t.temp;
  (let sp = t.spill in
   for k = 0 to sp.s_count - 1 do
     let i = sp.s_offsets.(k) in
     if Bytes.get sp.s_read i = '\001' then begin
       incr checked;
       validate_masked mem sp.s_addrs.(i) sp.s_data (i * word) sp.s_marks
         (i * word)
     end
   done);
  !checked

let all_marked mark pos = Bytes.get_int64_le mark pos = -1L

let commit_word (mem : Memio.t) addr data mark pos =
  if all_marked mark pos then mem.Memio.write_word addr (Bytes.get_int64_le data pos)
  else begin
    let cur = mem.Memio.read_word addr in
    let buf = Bytes.make word '\000' in
    Bytes.set_int64_le buf 0 cur;
    for b = 0 to word - 1 do
      if Bytes.get mark (pos + b) = '\xff' then
        Bytes.set buf b (Bytes.get data (pos + b))
    done;
    mem.Memio.write_word addr (Bytes.get_int64_le buf 0)
  end

let commit_map_words mem m written =
  for k = 0 to m.count - 1 do
    let i = m.offsets.(k) in
    incr written;
    commit_word mem m.addresses.(i) m.buffer m.marks (i * word)
  done

(* Line-granular commit: a fully-resident, fully-marked line commits
   as eight whole-word stores with a single whole-line mark check;
   anything less falls back to the per-word path.  The committed word
   count is identical to the per-word walk. *)
let commit_map_lines mem m written =
  m.stamp <- m.stamp + 1;
  for k = 0 to m.count - 1 do
    let i = m.offsets.(k) in
    let g0 = i land lnot 7 in
    let li = g0 lsr 3 in
    if m.line_gen.(li) = m.stamp then () (* line already bulk-committed *)
    else if
      line_resident m g0
      && (let full = ref true in
          for j = g0 to g0 + 7 do
            if not (all_marked m.marks (j * word)) then full := false
          done;
          !full)
    then begin
      m.line_gen.(li) <- m.stamp;
      for j = g0 to g0 + 7 do
        incr written;
        mem.Memio.write_word m.addresses.(j) (read_word_of m j)
      done
    end
    else begin
      incr written;
      commit_word mem m.addresses.(i) m.buffer m.marks (i * word)
    end
  done

(* Write every marked byte of the write set to main memory.  Returns
   the number of words committed. *)
let commit t (mem : Memio.t) =
  let written = ref 0 in
  let line_mode m = t.line_words > 1 && Array.length m.line_gen > 0 in
  for s = 0 to t.shards - 1 do
    let m = t.write_sets.(s) in
    if line_mode m then commit_map_lines mem m written
    else commit_map_words mem m written
  done;
  Array.iter
    (function
      | Some e when not e.t_is_read ->
        incr written;
        commit_word mem e.t_addr e.t_data e.t_mark 0
      | Some e ->
        (* read-fetched temp entries may carry marks from later writes *)
        if Bytes.exists (fun c -> c = '\xff') e.t_mark then begin
          incr written;
          commit_word mem e.t_addr e.t_data e.t_mark 0
        end
      | None -> ())
    t.temp;
  (let sp = t.spill in
   for k = 0 to sp.s_count - 1 do
     let i = sp.s_offsets.(k) in
     let is_read = Bytes.get sp.s_read i = '\001' in
     if
       (not is_read)
       || Bytes.exists (fun c -> c = '\xff')
            (Bytes.sub sp.s_marks (i * word) word)
     then begin
       incr written;
       commit_word mem sp.s_addrs.(i) sp.s_data sp.s_marks (i * word)
     end
   done);
  !written

(* Reset both maps for reuse.  Returns the number of slots cleared. *)
let finalize t =
  let clear m =
    for k = 0 to m.count - 1 do
      let i = m.offsets.(k) in
      m.addresses.(i) <- 0;
      Bytes.fill m.marks (i * word) word '\000'
    done;
    let n = m.count in
    m.count <- 0;
    n
  in
  let n = ref t.temp_count in
  for s = 0 to t.shards - 1 do
    n := !n + clear t.read_sets.(s)
  done;
  for s = 0 to t.shards - 1 do
    n := !n + clear t.write_sets.(s)
  done;
  (let sp = t.spill in
   for k = 0 to sp.s_count - 1 do
     let i = sp.s_offsets.(k) in
     sp.s_addrs.(i) <- 0;
     Bytes.set sp.s_read i '\000';
     Bytes.fill sp.s_marks (i * word) word '\000'
   done;
   n := !n + sp.s_count;
   sp.s_count <- 0);
  Array.fill t.temp 0 (Array.length t.temp) None;
  t.temp_count <- 0;
  t.conflict_pending <- false;
  Array.fill t.c_waddr 0 t.shards 0;
  Array.fill t.c_raddr 0 t.shards 0;
  !n

let map_total ms = Array.fold_left (fun a m -> a + m.count) 0 ms
let read_set_size t = map_total t.read_sets
let write_set_size t = map_total t.write_sets
let conflict_pending t = t.conflict_pending
let parks t = t.parks
let spills t = t.spills
let shard_count t = t.shards
let shard_occupancy t s = t.read_sets.(s).count + t.write_sets.(s).count

(* --- nested speculation support ------------------------------------ *)

(* When a *speculative* thread joins its own child, the child must be
   validated against the parent's view of memory (memory overlaid with
   the parent's uncommitted writes) and its effects merged into the
   parent's buffers rather than into main memory; only the
   non-speculative thread ever writes main memory.  The helpers below
   expose the buffer contents for that protocol. *)

let overlay bytes pos mark mpos base =
  let buf = Bytes.make word '\000' in
  Bytes.set_int64_le buf 0 base;
  for b = 0 to word - 1 do
    if Bytes.get mark (mpos + b) = '\xff' then
      Bytes.set buf b (Bytes.get bytes (pos + b))
  done;
  Bytes.get_int64_le buf 0

(* This thread's view of word [np]: main memory overlaid with its own
   marked write bytes. *)
let view t (mem : Memio.t) np =
  let base = mem.Memio.read_word np in
  let s = shard_of t np in
  match lookup t.write_sets.(s) np with
  | Hit i ->
    overlay t.write_sets.(s).buffer (i * word) t.write_sets.(s).marks (i * word)
      base
  | Empty _ | Conflict -> (
    match (if t.temp_count = 0 then None else find_temp t np) with
    | Some e -> overlay e.t_data 0 e.t_mark 0 base
    | None ->
      let si = if t.spill.s_count = 0 then -1 else find_spill_slot t.spill np in
      if si >= 0 then
        overlay t.spill.s_data (si * word) t.spill.s_marks (si * word) base
      else base)

(* Iterate read-set words as (address, observed word, mask option);
   the mask, when present, flags bytes locally overwritten after the
   fetch (they must not participate in validation). *)
let iter_read_words t f =
  for s = 0 to t.shards - 1 do
    let m = t.read_sets.(s) in
    for k = 0 to m.count - 1 do
      let i = m.offsets.(k) in
      f m.addresses.(i) (read_word_of m i) None
    done
  done;
  Array.iter
    (function
      | Some e when e.t_is_read ->
        f e.t_addr (Bytes.get_int64_le e.t_data 0) (Some (Bytes.copy e.t_mark))
      | _ -> ())
    t.temp;
  let sp = t.spill in
  for k = 0 to sp.s_count - 1 do
    let i = sp.s_offsets.(k) in
    if Bytes.get sp.s_read i = '\001' then
      f sp.s_addrs.(i)
        (Bytes.get_int64_le sp.s_data (i * word))
        (Some (Bytes.sub sp.s_marks (i * word) word))
  done

(* Iterate write-set words as (address, data bytes, data pos, mark
   bytes, mark pos). *)
let iter_write_words t f =
  for s = 0 to t.shards - 1 do
    let m = t.write_sets.(s) in
    for k = 0 to m.count - 1 do
      let i = m.offsets.(k) in
      f m.addresses.(i) m.buffer (i * word) m.marks (i * word)
    done
  done;
  Array.iter
    (function
      | Some e when (not e.t_is_read) || Bytes.exists (fun c -> c = '\xff') e.t_mark
        -> f e.t_addr e.t_data 0 e.t_mark 0
      | _ -> ())
    t.temp;
  let sp = t.spill in
  for k = 0 to sp.s_count - 1 do
    let i = sp.s_offsets.(k) in
    if
      Bytes.get sp.s_read i <> '\001'
      || Bytes.exists (fun c -> c = '\xff') (Bytes.sub sp.s_marks (i * word) word)
    then f sp.s_addrs.(i) sp.s_data (i * word) sp.s_marks (i * word)
  done

(* Record that this thread observed [value] at [addr] (merging a
   committed child's read set for later re-validation).  Words this
   thread has already read or written need no new entry. *)
let merge_read t addr value =
  let s = shard_of t addr in
  match lookup t.write_sets.(s) addr with
  | Hit _ -> ()
  | Empty _ | Conflict -> (
    match (if t.temp_count = 0 then None else find_temp t addr) with
    | Some _ -> ()
    | None ->
      if t.spill.s_count > 0 && find_spill_slot t.spill addr >= 0 then ()
      else (
        match lookup t.read_sets.(s) addr with
        | Hit _ -> ()
        | Empty i ->
          occupy t.read_sets.(s) i addr;
          write_word_of t.read_sets.(s) i value
        | Conflict ->
          if spill_enabled t then begin
            let i = spill_insert t addr ~is_read:true in
            Bytes.set_int64_le t.spill.s_data (i * word) value
          end
          else
            let data = Bytes.make word '\000' in
            Bytes.set_int64_le data 0 value;
            add_temp t
              { t_addr = addr; t_data = data; t_mark = Bytes.make word '\000';
                t_is_read = true }))

(* Merge one committed-child word's marked bytes into this buffer. *)
let merge_write t (mem : Memio.t) addr data pos mark mpos =
  if all_marked mark mpos then
    ignore (write t mem addr word (Bytes.get_int64_le data pos))
  else
    for b = 0 to word - 1 do
      if Bytes.get mark (mpos + b) = '\xff' then
        ignore
          (write t mem (addr + b) 1
             (Int64.of_int (Char.code (Bytes.get data (pos + b)))))
    done
