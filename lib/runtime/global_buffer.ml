(* GlobalBuffer (paper §IV-G2): buffering of non-local (static, heap,
   and non-speculative stack) accesses of one speculative thread.

   Two maps — a read set and a write set — implemented exactly as the
   paper describes: static memory only, a [buffer] byte array of WORD
   multiples, an [addresses] word-pointer array and an [offsets] stack
   (so validation/commit/finalization of threads touching little data
   stay fast), plus a [mark] byte array for sub-word writes and a small
   temporary buffer for hash conflicts. *)

let word = 8
let word_mask = lnot 7

exception Overflow
(* Temporary buffer exhausted: the speculative thread must roll back. *)

type map = {
  nslots : int; (* power of two *)
  buffer : Bytes.t; (* nslots * word data bytes *)
  addresses : int array; (* slot -> word address; 0 = empty *)
  marks : Bytes.t; (* 0xFF per written byte (write set only) *)
  offsets : int array; (* stack of occupied slots *)
  mutable count : int;
}

type temp_entry = {
  t_addr : int;
  t_data : Bytes.t; (* 8 bytes *)
  t_mark : Bytes.t; (* 8 bytes; all-zero for read entries *)
  t_is_read : bool; (* fetched for a read: participates in validation *)
}

type t = {
  read_set : map;
  write_set : map;
  temp : temp_entry option array;
  mutable temp_count : int;
  mutable conflict_pending : bool; (* ask to be joined at next check point *)
  mutable on_spill : (int -> unit) option;
  (* Observability hook: called with the word address whenever a hash
     conflict parks an entry in the temporary buffer.  Installed by the
     ThreadManager when tracing is on (pooled buffers serve successive
     threads, so it is re-bound per occupant). *)
  (* Last-slot cache: loops re-touch the same word, so remembering the
     last hit skips the probe sequence entirely.  [c_waddr]/[c_wslot]
     name a write-set entry (which shadows everything until
     [finalize]); [c_raddr]/[c_rslot] name a read-set entry and are
     only valid while the word has no write-set or temp entry — any
     write to the word invalidates them.  0 = empty, like
     [addresses]. *)
  mutable c_waddr : int;
  mutable c_wslot : int;
  mutable c_raddr : int;
  mutable c_rslot : int;
}

let make_map nslots =
  {
    nslots;
    buffer = Bytes.make (nslots * word) '\000';
    addresses = Array.make nslots 0;
    marks = Bytes.make (nslots * word) '\000';
    offsets = Array.make nslots 0;
    count = 0;
  }

let create ~slots ~temp_slots =
  if slots land (slots - 1) <> 0 then
    invalid_arg "Global_buffer.create: slots must be a power of two";
  {
    read_set = make_map slots;
    write_set = make_map slots;
    temp = Array.make temp_slots None;
    temp_count = 0;
    conflict_pending = false;
    on_spill = None;
    c_waddr = 0;
    c_wslot = 0;
    c_raddr = 0;
    c_rslot = 0;
  }

let set_spill_hook t hook = t.on_spill <- hook

(* Efficient hash: low bits of the word address (paper §IV-G2). *)
let slot_of m np = (np lsr 3) land (m.nslots - 1)

type lookup = Hit of int | Empty of int | Conflict

let lookup m np =
  let i = slot_of m np in
  let a = m.addresses.(i) in
  if a = 0 then Empty i else if a = np then Hit i else Conflict

let occupy m i np =
  m.addresses.(i) <- np;
  m.offsets.(m.count) <- i;
  m.count <- m.count + 1

let read_word_of m i = Bytes.get_int64_le m.buffer (i * word)
let write_word_of m i v = Bytes.set_int64_le m.buffer (i * word) v

(* Occupied temp slots form the prefix [0, temp_count): [add_temp]
   appends at [temp_count] and entries are only cleared wholesale in
   [finalize], so the scan never needs to look past the count. *)
let find_temp t np =
  let rec go k =
    if k >= t.temp_count then None
    else
      match t.temp.(k) with
      | Some e when e.t_addr = np -> Some e
      | _ -> go (k + 1)
  in
  go 0

let add_temp t entry =
  if t.temp_count >= Array.length t.temp then raise Overflow;
  t.temp.(t.temp_count) <- Some entry;
  t.temp_count <- t.temp_count + 1;
  t.conflict_pending <- true;
  match t.on_spill with None -> () | Some f -> f entry.t_addr

(* --- byte-level helpers -------------------------------------------- *)

let get_sized bytes pos size =
  match size with
  | 8 -> Bytes.get_int64_le bytes pos
  | 4 -> Int64.of_int32 (Bytes.get_int32_le bytes pos)
  | 1 -> Int64.of_int (Char.code (Bytes.get bytes pos))
  | _ -> invalid_arg "Global_buffer: access size"

let set_sized bytes pos size v =
  match size with
  | 8 -> Bytes.set_int64_le bytes pos v
  | 4 -> Bytes.set_int32_le bytes pos (Int64.to_int32 v)
  | 1 -> Bytes.set bytes pos (Char.chr (Int64.to_int v land 0xff))
  | _ -> invalid_arg "Global_buffer: access size"

let set_marks bytes pos size =
  if size = word then Bytes.set_int64_le bytes pos (-1L)
  else
    for k = pos to pos + size - 1 do
      Bytes.set bytes k '\xff'
    done

(* --- speculative read ---------------------------------------------- *)

(* Read [size] bytes at address [p] (aligned by size), fetching from
   main memory through [mem] on a read-set miss.  Returns the raw bits
   zero-extended into an int64 plus whether the access hit an existing
   buffer entry (hits are much cheaper than insert-and-fetch misses;
   the paper's design emphasises exactly this data-reuse benefit). *)
let read t (mem : Memio.t) p size =
  if p land (size - 1) <> 0 then invalid_arg "Global_buffer.read: alignment";
  let np = p land word_mask in
  let off = p land (word - 1) in
  if np = t.c_waddr then
    (get_sized t.write_set.buffer ((t.c_wslot * word) + off) size, true)
  else if np = t.c_raddr then
    (get_sized t.read_set.buffer ((t.c_rslot * word) + off) size, true)
  else
    match lookup t.write_set np with
    | Hit i ->
      t.c_waddr <- np;
      t.c_wslot <- i;
      (get_sized t.write_set.buffer ((i * word) + off) size, true)
    | Empty _ | Conflict -> (
      (* A write that hash-conflicted earlier may live in the temporary
         buffer; it must shadow a read-set fetch. *)
      match (if t.temp_count = 0 then None else find_temp t np) with
      | Some e -> (get_sized e.t_data off size, true)
      | None -> (
        match lookup t.read_set np with
        | Hit i ->
          t.c_raddr <- np;
          t.c_rslot <- i;
          (get_sized t.read_set.buffer ((i * word) + off) size, true)
        | Empty i ->
          let w = mem.Memio.read_word np in
          occupy t.read_set i np;
          write_word_of t.read_set i w;
          t.c_raddr <- np;
          t.c_rslot <- i;
          (get_sized t.read_set.buffer ((i * word) + off) size, false)
        | Conflict ->
          let w = mem.Memio.read_word np in
          let data = Bytes.make word '\000' in
          Bytes.set_int64_le data 0 w;
          add_temp t
            { t_addr = np; t_data = data; t_mark = Bytes.make word '\000';
              t_is_read = true };
          (get_sized data off size, false)))

(* --- speculative write --------------------------------------------- *)

let write t (mem : Memio.t) p size v =
  if p land (size - 1) <> 0 then invalid_arg "Global_buffer.write: alignment";
  let np = p land word_mask in
  let off = p land (word - 1) in
  if np = t.c_waddr then begin
    set_sized t.write_set.buffer ((t.c_wslot * word) + off) size v;
    set_marks t.write_set.marks ((t.c_wslot * word) + off) size;
    true
  end
  else begin
  (* the word is gaining a write-set or temp entry, so a cached
     read-set location for it goes stale *)
  if np = t.c_raddr then t.c_raddr <- 0;
  match lookup t.write_set np with
  | Hit i ->
    t.c_waddr <- np;
    t.c_wslot <- i;
    set_sized t.write_set.buffer ((i * word) + off) size v;
    set_marks t.write_set.marks ((i * word) + off) size;
    true
  | Empty i ->
    (* Fill the slot with the word's current contents so later whole-
       word reads of this slot see consistent data; prefer the read-set
       copy when present (it is the version this thread observed). *)
    let fill =
      if size = word then 0L
      else
        match lookup t.read_set np with
        | Hit j -> read_word_of t.read_set j
        | Empty _ | Conflict -> mem.Memio.read_word np
    in
    occupy t.write_set i np;
    write_word_of t.write_set i fill;
    t.c_waddr <- np;
    t.c_wslot <- i;
    set_sized t.write_set.buffer ((i * word) + off) size v;
    set_marks t.write_set.marks ((i * word) + off) size;
    false
  | Conflict -> (
    match find_temp t np with
    | Some e ->
      set_sized e.t_data off size v;
      set_marks e.t_mark off size;
      true
    | None ->
      let fill = if size = word then 0L else mem.Memio.read_word np in
      let data = Bytes.make word '\000' in
      Bytes.set_int64_le data 0 fill;
      let mark = Bytes.make word '\000' in
      set_sized data off size v;
      set_marks mark off size;
      add_temp t { t_addr = np; t_data = data; t_mark = mark; t_is_read = false };
      false)
  end

(* --- validation / commit / finalization ---------------------------- *)

(* Compare every read-set word against current main memory (value-based
   conflict detection).  Returns the number of words validated, or
   raises [Invalid_read addr] on the first mismatch, carrying the
   conflicting word address so rollbacks can be attributed to the hot
   word that caused them. *)
exception Invalid_read of int

let validate t (mem : Memio.t) =
  let checked = ref 0 in
  let m = t.read_set in
  for k = 0 to m.count - 1 do
    let i = m.offsets.(k) in
    incr checked;
    if mem.Memio.read_word m.addresses.(i) <> read_word_of m i then
      raise (Invalid_read m.addresses.(i))
  done;
  Array.iter
    (function
      | Some e when e.t_is_read ->
        (* Bytes this thread overwrote after fetching are its own and
           must not be compared against main memory. *)
        incr checked;
        let cur = mem.Memio.read_word e.t_addr in
        let buf = Bytes.make word '\000' in
        Bytes.set_int64_le buf 0 cur;
        for b = 0 to word - 1 do
          if Bytes.get e.t_mark b <> '\xff'
             && Bytes.get buf b <> Bytes.get e.t_data b
          then raise (Invalid_read e.t_addr)
        done
      | _ -> ())
    t.temp;
  !checked

let all_marked mark pos = Bytes.get_int64_le mark pos = -1L

let commit_word (mem : Memio.t) addr data mark pos =
  if all_marked mark pos then mem.Memio.write_word addr (Bytes.get_int64_le data pos)
  else begin
    let cur = mem.Memio.read_word addr in
    let buf = Bytes.make word '\000' in
    Bytes.set_int64_le buf 0 cur;
    for b = 0 to word - 1 do
      if Bytes.get mark (pos + b) = '\xff' then
        Bytes.set buf b (Bytes.get data (pos + b))
    done;
    mem.Memio.write_word addr (Bytes.get_int64_le buf 0)
  end

(* Write every marked byte of the write set to main memory.  Returns
   the number of words committed. *)
let commit t (mem : Memio.t) =
  let m = t.write_set in
  let written = ref 0 in
  for k = 0 to m.count - 1 do
    let i = m.offsets.(k) in
    incr written;
    commit_word mem m.addresses.(i) m.buffer m.marks (i * word)
  done;
  Array.iter
    (function
      | Some e when not e.t_is_read ->
        incr written;
        commit_word mem e.t_addr e.t_data e.t_mark 0
      | Some e ->
        (* read-fetched temp entries may carry marks from later writes *)
        if Bytes.exists (fun c -> c = '\xff') e.t_mark then begin
          incr written;
          commit_word mem e.t_addr e.t_data e.t_mark 0
        end
      | None -> ())
    t.temp;
  !written

(* Reset both maps for reuse.  Returns the number of slots cleared. *)
let finalize t =
  let clear m =
    for k = 0 to m.count - 1 do
      let i = m.offsets.(k) in
      m.addresses.(i) <- 0;
      Bytes.fill m.marks (i * word) word '\000'
    done;
    let n = m.count in
    m.count <- 0;
    n
  in
  let n = clear t.read_set + clear t.write_set + t.temp_count in
  Array.fill t.temp 0 (Array.length t.temp) None;
  t.temp_count <- 0;
  t.conflict_pending <- false;
  t.c_waddr <- 0;
  t.c_raddr <- 0;
  n

let read_set_size t = t.read_set.count
let write_set_size t = t.write_set.count
let conflict_pending t = t.conflict_pending

(* --- nested speculation support ------------------------------------ *)

(* When a *speculative* thread joins its own child, the child must be
   validated against the parent's view of memory (memory overlaid with
   the parent's uncommitted writes) and its effects merged into the
   parent's buffers rather than into main memory; only the
   non-speculative thread ever writes main memory.  The helpers below
   expose the buffer contents for that protocol. *)

let overlay bytes pos mark mpos base =
  let buf = Bytes.make word '\000' in
  Bytes.set_int64_le buf 0 base;
  for b = 0 to word - 1 do
    if Bytes.get mark (mpos + b) = '\xff' then
      Bytes.set buf b (Bytes.get bytes (pos + b))
  done;
  Bytes.get_int64_le buf 0

(* This thread's view of word [np]: main memory overlaid with its own
   marked write bytes. *)
let view t (mem : Memio.t) np =
  let base = mem.Memio.read_word np in
  match lookup t.write_set np with
  | Hit i -> overlay t.write_set.buffer (i * word) t.write_set.marks (i * word) base
  | Empty _ | Conflict -> (
    match (if t.temp_count = 0 then None else find_temp t np) with
    | Some e -> overlay e.t_data 0 e.t_mark 0 base
    | None -> base)

(* Iterate read-set words as (address, observed word, mask option);
   the mask, when present, flags bytes locally overwritten after the
   fetch (they must not participate in validation). *)
let iter_read_words t f =
  let m = t.read_set in
  for k = 0 to m.count - 1 do
    let i = m.offsets.(k) in
    f m.addresses.(i) (read_word_of m i) None
  done;
  Array.iter
    (function
      | Some e when e.t_is_read ->
        f e.t_addr (Bytes.get_int64_le e.t_data 0) (Some (Bytes.copy e.t_mark))
      | _ -> ())
    t.temp

(* Iterate write-set words as (address, data bytes, data pos, mark
   bytes, mark pos). *)
let iter_write_words t f =
  let m = t.write_set in
  for k = 0 to m.count - 1 do
    let i = m.offsets.(k) in
    f m.addresses.(i) m.buffer (i * word) m.marks (i * word)
  done;
  Array.iter
    (function
      | Some e when (not e.t_is_read) || Bytes.exists (fun c -> c = '\xff') e.t_mark
        -> f e.t_addr e.t_data 0 e.t_mark 0
      | _ -> ())
    t.temp

(* Record that this thread observed [value] at [addr] (merging a
   committed child's read set for later re-validation).  Words this
   thread has already read or written need no new entry. *)
let merge_read t addr value =
  match lookup t.write_set addr with
  | Hit _ -> ()
  | Empty _ | Conflict -> (
    match (if t.temp_count = 0 then None else find_temp t addr) with
    | Some _ -> ()
    | None -> (
      match lookup t.read_set addr with
      | Hit _ -> ()
      | Empty i ->
        occupy t.read_set i addr;
        write_word_of t.read_set i value
      | Conflict ->
        let data = Bytes.make word '\000' in
        Bytes.set_int64_le data 0 value;
        add_temp t
          { t_addr = addr; t_data = data; t_mark = Bytes.make word '\000';
            t_is_read = true }))

(* Merge one committed-child word's marked bytes into this buffer. *)
let merge_write t (mem : Memio.t) addr data pos mark mpos =
  if all_marked mark mpos then
    ignore (write t mem addr word (Bytes.get_int64_le data pos))
  else
    for b = 0 to word - 1 do
      if Bytes.get mark (mpos + b) = '\xff' then
        ignore
          (write t mem (addr + b) 1
             (Int64.of_int (Char.code (Bytes.get data (pos + b)))))
    done
