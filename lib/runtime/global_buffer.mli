(** GlobalBuffer (paper §IV-G2): buffering of non-local (static, heap,
    and non-speculative stack) accesses of one speculative thread.

    Two maps — a read set and a write set — implemented exactly as the
    paper describes: static memory only, a data byte array of WORD
    multiples, an address array and an offsets stack (so validation,
    commit and finalization of threads touching little data stay fast),
    a mark byte array for sub-word writes, and a small temporary buffer
    for hash conflicts. *)

exception Overflow
(** The temporary buffer is exhausted: the speculative thread must roll
    back (paper §IV-G2). *)

exception Invalid_read of int
(** Raised by {!validate} on the first read-set word whose current
    memory value differs from the observed one; carries the conflicting
    word address so the rollback can be attributed to the hot word. *)

type t

val create : slots:int -> temp_slots:int -> t
(** [slots] must be a power of two. *)

val read : t -> Memio.t -> int -> int -> int64 * bool
(** [read t mem p size] reads [size] bytes ([1], [4] or [8]) at [p]
    (aligned by [size]), fetching from main memory on a read-set miss.
    Returns the raw bits zero-extended, and whether the access hit an
    existing buffer entry (hits are much cheaper than insert-and-fetch
    misses — the data-reuse benefit the paper emphasises for matmult).
    @raise Overflow when a hash conflict cannot be parked. *)

val write : t -> Memio.t -> int -> int -> int64 -> bool
(** Buffered write; marks exactly the written bytes.  Returns the hit
    flag.  @raise Overflow as for {!read}. *)

val validate : t -> Memio.t -> int
(** Value-based conflict detection: compare every read-set word against
    current main memory.  Returns the number of words checked.
    @raise Invalid_read on the first mismatch. *)

val commit : t -> Memio.t -> int
(** Write every marked byte of the write set to main memory (whole
    words at once when fully marked).  Returns the word count. *)

val finalize : t -> int
(** Reset both maps for reuse; returns the number of slots cleared. *)

val read_set_size : t -> int
val write_set_size : t -> int

val conflict_pending : t -> bool
(** A hash conflict spilled into the temporary buffer: the thread
    should wait to be joined at its next check point. *)

val set_spill_hook : t -> (int -> unit) option -> unit
(** Observability hook, called with the word address whenever a hash
    conflict parks an entry in the temporary buffer.  The ThreadManager
    installs it when tracing is enabled; pooled buffers serve
    successive threads, so it is re-bound per occupant. *)

(** {1 Nested speculation support}

    When a speculative thread joins its own child, the child must be
    validated against the parent's view of memory (memory overlaid with
    the parent's uncommitted writes) and its effects merged into the
    parent's buffers; only the non-speculative thread writes main
    memory. *)

val view : t -> Memio.t -> int -> int64
(** This thread's view of an aligned word: main memory overlaid with
    its own marked write bytes. *)

val iter_read_words : t -> (int -> int64 -> Bytes.t option -> unit) -> unit
(** [(address, observed word, mask)] per read-set entry; the mask, when
    present, flags bytes locally overwritten after the fetch (excluded
    from validation). *)

val iter_write_words : t -> (int -> Bytes.t -> int -> Bytes.t -> int -> unit) -> unit
(** [(address, data bytes, data pos, mark bytes, mark pos)] per
    write-set entry. *)

val merge_read : t -> int -> int64 -> unit
(** Record that this thread observed [value] at an address (adopting a
    committed child's read set for later re-validation); words already
    present are left alone. *)

val merge_write : t -> Memio.t -> int -> Bytes.t -> int -> Bytes.t -> int -> unit
(** Merge one committed-child word's marked bytes into this buffer. *)
