(** GlobalBuffer (paper §IV-G2): buffering of non-local (static, heap,
    and non-speculative stack) accesses of one speculative thread.

    Two maps — a read set and a write set — implemented exactly as the
    paper describes: static memory only, a data byte array of WORD
    multiples, an address array and an offsets stack (so validation,
    commit and finalization of threads touching little data stay fast),
    a mark byte array for sub-word writes, and a small temporary buffer
    for hash conflicts.

    Three optional pressure-resilience layers extend the paper's
    design, all off by default (the defaults reproduce the seed
    behaviour bit-for-bit):

    - {b sharding} splits each map into power-of-two shards with
      address ranges interleaved at 64-byte line granularity, each
      shard keeping its own last-slot caches;
    - the {b spill tier} replaces the fixed temporary park buffer with
      a bounded associative overflow region that still participates in
      validate/commit/finalize — a hash conflict spills at a latency
      penalty instead of parking-then-raising, and {!Overflow} is
      reserved for true tier exhaustion;
    - {b line-granular} bulk validate/commit processes fully-resident
      64-byte lines eight words at a time. *)

exception Overflow
(** The overflow region is exhausted — the temporary park buffer when
    the spill tier is off (paper §IV-G2), the spill tier itself when it
    is on: the speculative thread must roll back. *)

exception Invalid_read of int
(** Raised by {!validate} on the first read-set word whose current
    memory value differs from the observed one; carries the conflicting
    word address so the rollback can be attributed to the hot word. *)

type t

val create :
  ?shards:int ->
  ?spill_slots:int ->
  ?line_words:int ->
  slots:int ->
  temp_slots:int ->
  unit ->
  t
(** [slots] must be a power of two and is split evenly across [shards]
    (default [1], a power of two not exceeding [slots]).
    [spill_slots] (default [0] = tier off) must be [0] or a power of
    two.  [line_words] is [1] (per-word walks, the default) or [8]
    (64-byte-line bulk validate/commit). *)

val read : t -> Memio.t -> int -> int -> int64 * bool
(** [read t mem p size] reads [size] bytes ([1], [4] or [8]) at [p]
    (aligned by [size]), fetching from main memory on a read-set miss.
    Returns the raw bits zero-extended, and whether the access hit an
    existing buffer entry (hits are much cheaper than insert-and-fetch
    misses — the data-reuse benefit the paper emphasises for matmult).
    @raise Overflow when a hash conflict cannot be parked (spill tier
    off) or the spill tier is exhausted (spill tier on). *)

val write : t -> Memio.t -> int -> int -> int64 -> bool
(** Buffered write; marks exactly the written bytes.  Returns the hit
    flag.  @raise Overflow as for {!read}. *)

val validate : t -> Memio.t -> int
(** Value-based conflict detection: compare every read-set word against
    current main memory (home shards, then parked and spilled read
    entries).  Returns the number of words checked — independent of
    sharding and line granularity, so virtual time is too.
    @raise Invalid_read on the first mismatch. *)

val commit : t -> Memio.t -> int
(** Write every marked byte of the write set to main memory (whole
    words — or whole lines, in line mode — at once when fully marked).
    Returns the word count. *)

val finalize : t -> int
(** Reset both maps, the park buffer and the spill tier for reuse;
    returns the number of slots cleared. *)

val read_set_size : t -> int
val write_set_size : t -> int

val conflict_pending : t -> bool
(** A hash conflict parked into the temporary buffer: the thread
    should wait to be joined at its next check point.  Never set when
    the spill tier is on — spilling is a latency penalty, not a stall
    request. *)

val parks : t -> int
(** Cumulative hash conflicts parked in the temporary buffer over this
    buffer's lifetime (pooled buffers are reused across threads). *)

val spills : t -> int
(** Cumulative spill-tier insertions over this buffer's lifetime. *)

val spill_capacity : t -> int
(** The spill tier's slot count; [0] when the tier is off. *)

val spill_size : t -> int
(** Spill-tier entries currently occupied. *)

val shard_count : t -> int

val shard_occupancy : t -> int -> int
(** [shard_occupancy t s] is the occupied home-map slot count (read
    plus write set) of shard [s]. *)

val set_park_hook : t -> (int -> unit) option -> unit
(** Observability hook, called with the word address whenever a hash
    conflict parks an entry in the temporary buffer.  The ThreadManager
    installs it when tracing is enabled; pooled buffers serve
    successive threads, so it is re-bound per occupant. *)

val set_spill_hook : t -> (int -> unit) option -> unit
(** Same, for real spill-tier insertions (only fires when the tier is
    enabled).  Before the spill tier existed this name denoted today's
    {!set_park_hook}. *)

(** {1 Nested speculation support}

    When a speculative thread joins its own child, the child must be
    validated against the parent's view of memory (memory overlaid with
    the parent's uncommitted writes) and its effects merged into the
    parent's buffers; only the non-speculative thread writes main
    memory. *)

val view : t -> Memio.t -> int -> int64
(** This thread's view of an aligned word: main memory overlaid with
    its own marked write bytes. *)

val iter_read_words : t -> (int -> int64 -> Bytes.t option -> unit) -> unit
(** [(address, observed word, mask)] per read-set entry (home shards,
    parked and spilled); the mask, when present, flags bytes locally
    overwritten after the fetch (excluded from validation). *)

val iter_write_words : t -> (int -> Bytes.t -> int -> Bytes.t -> int -> unit) -> unit
(** [(address, data bytes, data pos, mark bytes, mark pos)] per
    write-set entry (home shards, parked and spilled). *)

val merge_read : t -> int -> int64 -> unit
(** Record that this thread observed [value] at an address (adopting a
    committed child's read set for later re-validation); words already
    present are left alone.
    @raise Overflow as for {!read}. *)

val merge_write : t -> Memio.t -> int -> Bytes.t -> int -> Bytes.t -> int -> unit
(** Merge one committed-child word's marked bytes into this buffer.
    @raise Overflow as for {!write}. *)
