(* LocalBuffer (paper §IV-G3): transfer of local (register and stack)
   variables between parent and child threads at fork and join.  It is
   organized as an array of stack frames; each frame holds a
   RegisterBuffer (static array of register values, indexed by the
   offsets the speculator pass assigned) and a StackBuffer (copies of
   stack variables plus their speculative addresses, for the pointer
   mapping mechanism). *)

type v = Vi of int64 | Vf of float

(* A register/address slot that was never written.  Distinct from
   Invalid_argument (out-of-range offset = speculator-pass/API misuse)
   because the ThreadManager's validate_local legitimately probes
   fork-time slots the parent may not have populated: an unset slot
   there means misspeculation, not a caller bug. *)
exception Unset of string

type stackvar = {
  sv_spec_addr : int; (* address in the speculative thread *)
  sv_size : int;
  sv_data : Bytes.t option; (* None: bottom frame, data lives in place *)
}

type frame = {
  mutable counter : int; (* synchronization block that saved this frame *)
  regs : v option array;
  stackvars : (int, stackvar) Hashtbl.t; (* offset -> copy *)
}

type t = {
  max_locals : int;
  mutable frames : frame list; (* head = innermost (top) *)
  fork_regs : v option array; (* fork-time register transfer, parent->child *)
  fork_orig : v option array; (* pre-prediction originals, for stride learning *)
  mutable fork_addrs : (int * int) list; (* offset -> parent address *)
  mutable stack_base : int; (* speculative thread's own stack range *)
  mutable stack_limit : int;
  mutable on_frame : (push:bool -> depth:int -> unit) option;
  (* Observability hook: frame push/pop with the resulting depth, for
     the §IV-H reconstruction trace.  Installed by the ThreadManager
     when tracing is on. *)
}
(* [fork_regs] is kept apart from the bottom frame's RegisterBuffer so
   that the child's commit-time saves cannot clobber the fork-time
   values the parent still needs for MUTLS_validate_local. *)

let create ~max_locals =
  {
    max_locals;
    frames = [];
    fork_regs = Array.make max_locals None;
    fork_orig = Array.make max_locals None;
    fork_addrs = [];
    stack_base = 0;
    stack_limit = 0;
    on_frame = None;
  }

let set_frame_hook t hook = t.on_frame <- hook

let make_frame max_locals =
  { counter = 0; regs = Array.make max_locals None; stackvars = Hashtbl.create 8 }

let push_frame t =
  let f = make_frame t.max_locals in
  t.frames <- f :: t.frames;
  (match t.on_frame with
  | Some hook -> hook ~push:true ~depth:(List.length t.frames)
  | None -> ());
  f

let pop_frame t =
  match t.frames with
  | _ :: rest ->
    t.frames <- rest;
    (match t.on_frame with
    | Some hook -> hook ~push:false ~depth:(List.length rest)
    | None -> ())
  | [] -> invalid_arg "Local_buffer.pop_frame: empty"

let depth t = List.length t.frames

let top t =
  match t.frames with
  | f :: _ -> f
  | [] -> invalid_arg "Local_buffer.top: no frame"

let bottom t =
  match List.rev t.frames with
  | f :: _ -> f
  | [] -> invalid_arg "Local_buffer.bottom: no frame"

(* Frames from the speculative entry function inwards, for the
   non-speculative thread's stack frame reconstruction. *)
let frames_bottom_up t = List.rev t.frames

let check_offset t off =
  (* The paper's RegisterBuffer is a static array: exceeding it is a
     speculator-pass error, reported before execution. *)
  if off < 0 || off >= t.max_locals then
    invalid_arg (Printf.sprintf "Local_buffer: register offset %d out of range" off)

let set_reg frame t off value =
  check_offset t off;
  frame.regs.(off) <- Some value

let get_reg frame t off =
  check_offset t off;
  match frame.regs.(off) with
  | Some v -> v
  | None ->
    raise (Unset (Printf.sprintf "Local_buffer: register offset %d not set" off))

let get_reg_opt frame t off =
  check_offset t off;
  frame.regs.(off)

(* --- fork-time register transfer ----------------------------------- *)

let set_fork_reg t off value =
  check_offset t off;
  t.fork_regs.(off) <- Some value

let get_fork_reg t off =
  check_offset t off;
  match t.fork_regs.(off) with
  | Some v -> v
  | None ->
    raise (Unset (Printf.sprintf "Local_buffer: fork register %d not set" off))

let set_fork_orig t off value =
  check_offset t off;
  t.fork_orig.(off) <- Some value

let get_fork_orig t off =
  check_offset t off;
  t.fork_orig.(off)

(* --- fork-time bottom-frame stack addresses ------------------------ *)

(* The speculative entry function accesses the parent's stack variables
   in place (through the GlobalBuffer), so the fork records their
   addresses rather than copying them. *)
let set_fork_addr t off addr = t.fork_addrs <- (off, addr) :: t.fork_addrs

let get_fork_addr t off =
  match List.assoc_opt off t.fork_addrs with
  | Some a -> a
  | None ->
    raise (Unset (Printf.sprintf "Local_buffer: no fork stack address %d" off))

(* --- speculative thread's own stack range -------------------------- *)

let set_stack_range t ~base ~limit =
  t.stack_base <- base;
  t.stack_limit <- limit

let in_own_stack t addr = addr >= t.stack_base && addr < t.stack_limit

(* --- stack variable save (speculative side, commit path) ----------- *)

(* Copy [size] bytes at [addr] (in the speculative thread's own stack)
   into the top frame.  When [addr] is not in the thread's own stack it
   belongs to the parent (bottom-frame variable accessed in place via
   the GlobalBuffer) and no copy is taken. *)
let save_stackvar t frame ~read_byte ~off ~addr ~size =
  if in_own_stack t addr then begin
    let data = Bytes.create size in
    for k = 0 to size - 1 do
      Bytes.set data k (Char.chr (read_byte (addr + k) land 0xff))
    done;
    Hashtbl.replace frame.stackvars off
      { sv_spec_addr = addr; sv_size = size; sv_data = Some data }
  end
  else
    Hashtbl.replace frame.stackvars off
      { sv_spec_addr = addr; sv_size = size; sv_data = None }

let find_stackvar frame off = Hashtbl.find_opt frame.stackvars off
