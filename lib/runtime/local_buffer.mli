(** LocalBuffer (paper §IV-G3): transfer of local (register and stack)
    variables between parent and child threads at fork and join.
    Organized as a stack of frames, each holding a RegisterBuffer
    (static array indexed by the offsets the speculator pass assigned)
    and a StackBuffer (copies of stack variables plus their speculative
    addresses, for the pointer-mapping mechanism). *)

(** Register values in transfer: integers/pointers and floats. *)
type v = Vi of int64 | Vf of float

exception Unset of string
(** Raised when reading a register or fork-address slot that was never
    written.  Distinct from [Invalid_argument] (offset out of range =
    API misuse): the ThreadManager's local validation legitimately
    probes slots the parent may not have populated and treats [Unset]
    as misspeculation. *)

type stackvar = {
  sv_spec_addr : int;  (** address in the speculative thread *)
  sv_size : int;
  sv_data : Bytes.t option;
      (** [None]: bottom-frame variable updated in place via the
          GlobalBuffer at the parent's address *)
}

type frame = {
  mutable counter : int;  (** synchronization block that saved this frame *)
  regs : v option array;
  stackvars : (int, stackvar) Hashtbl.t;
}

type t

val create : max_locals:int -> t

(** {1 Frames} *)

val push_frame : t -> frame
val pop_frame : t -> unit
val depth : t -> int
val top : t -> frame
val bottom : t -> frame

val frames_bottom_up : t -> frame list
(** From the speculative entry function inwards — the order the
    non-speculative thread reconstructs the call chain in (§IV-H). *)

val set_frame_hook : t -> (push:bool -> depth:int -> unit) option -> unit
(** Observability hook: frame push/pop with the resulting depth.  The
    ThreadManager installs it when tracing is enabled. *)

(** {1 RegisterBuffer} *)

val set_reg : frame -> t -> int -> v -> unit
(** @raise Invalid_argument when the offset exceeds [max_locals] — the
    paper's static-array RegisterBuffer limit. *)

val get_reg : frame -> t -> int -> v
val get_reg_opt : frame -> t -> int -> v option

(** {1 Fork-time transfer}

    Kept apart from the bottom frame's RegisterBuffer so commit-time
    saves cannot clobber the fork-time values the parent still needs
    for MUTLS_validate_local. *)

val set_fork_reg : t -> int -> v -> unit
val get_fork_reg : t -> int -> v

val set_fork_orig : t -> int -> v -> unit
(** Pre-prediction original, for stride learning (§VI extension). *)

val get_fork_orig : t -> int -> v option

val set_fork_addr : t -> int -> int -> unit
(** Bottom-frame stack variables are accessed at the parent's address
    through the GlobalBuffer; the fork records those addresses. *)

val get_fork_addr : t -> int -> int

(** {1 Speculative stack range} *)

val set_stack_range : t -> base:int -> limit:int -> unit
val in_own_stack : t -> int -> bool

(** {1 StackBuffer} *)

val save_stackvar :
  t -> frame -> read_byte:(int -> int) -> off:int -> addr:int -> size:int -> unit
(** Copy a stack variable into the frame when it lives in this thread's
    own stack; record it address-only otherwise (bottom frame). *)

val find_stackvar : frame -> int -> stackvar option
