(* Speculation policy engine: the pure fork-decision core, extracted
   out of Thread_manager so that strategy (when to fork, at what level)
   and mechanism (how to fork, validate, commit, roll back) live behind
   a narrow interface.

   A policy is consulted once per MUTLS_get_CPU with a [request]
   describing the fork point and returns a [decision]:

   - [Deny]          — do not speculate here now (subsumes the old
                       backoff veto and degrade fallback);
   - [Expand]        — Level-1 "zero-risk" parallelism: the child runs
                       with plain-cost accounting and NO GlobalBuffer
                       read/write-set tracking, legal only where the
                       static store-free analysis proved the region
                       performs no shared stores (see DESIGN.md);
   - [Speculate m]   — Level-2 full speculation under fork model [m].

   Feedback flows the other way as commit/rollback/overflow/retire
   notifications; a notification may return an [event] which the
   Thread_manager maps onto a [Trace.Sched] record (state updates never
   depend on whether tracing is enabled).

   Three implementations ship: [static] replicates the seed behaviour
   exactly (per-point exponential backoff, global overflow degrade —
   byte-identical traces), [adaptive] is the closed-loop engine driven
   by the profiler's payoff arithmetic ({!Mutls_obs.Profile.Acc})
   applied in-process, and [hostile] is a chaos-harness adversary that
   rotates worst-case decisions to exercise the mechanism-level safety
   gates.  [make] builds custom policies (tests use it to pin corner
   behaviours such as always-Expand). *)

module Profile = Mutls_obs.Profile

type decision = Deny | Expand | Speculate of Config.model

type request = {
  rq_point : int;
  rq_model : Config.model;
  rq_expandable : bool;
  rq_parent_main : bool;
  rq_parent_expand : bool;
}

type event = { ev_what : string; ev_info : int }

(* Memory-pressure severity ladder (see Global_buffer): a [Park] is a
   hash conflict absorbed by the temporary buffer, a [Spill] is an
   insertion into the spill tier (latency penalty, no squash), and
   [Exhaust] is true overflow-region exhaustion — the only level that
   forces a rollback and therefore the only one the shipped policies
   count against their degrade streak. *)
type pressure = Park | Spill | Exhaust

type t = {
  p_name : string;
  p_decide : request -> decision;
  p_on_commit : point:int -> unit;
  p_on_rollback : point:int -> event option;
  p_on_overflow : point:int -> pressure:pressure -> event option;
  p_on_retire : point:int -> committed:float -> wasted:float -> event option;
  p_on_expand_store : point:int -> unit;
  p_degraded : unit -> bool;
}

let make ?(on_commit = fun ~point:_ -> ())
    ?(on_rollback = fun ~point:_ -> None)
    ?(on_overflow = fun ~point:_ ~pressure:_ -> None)
    ?(on_retire = fun ~point:_ ~committed:_ ~wasted:_ -> None)
    ?(on_expand_store = fun ~point:_ -> ()) ?(degraded = fun () -> false)
    ~name decide =
  {
    p_name = name;
    p_decide = decide;
    p_on_commit = on_commit;
    p_on_rollback = on_rollback;
    p_on_overflow = on_overflow;
    p_on_retire = on_retire;
    p_on_expand_store = on_expand_store;
    p_degraded = degraded;
  }

let name t = t.p_name
let decide t rq = t.p_decide rq
let on_commit t ~point = t.p_on_commit ~point
let on_rollback t ~point = t.p_on_rollback ~point
let on_overflow t ~point ~pressure = t.p_on_overflow ~point ~pressure

let on_retire t ~point ~committed ~wasted =
  t.p_on_retire ~point ~committed ~wasted

let on_expand_store t ~point = t.p_on_expand_store ~point
let degraded t = t.p_degraded ()

(* --- static: the seed behaviour, verbatim ----------------------------- *)

(* Per-fork-point exponential backoff: after a rollback the point sits
   out the next [skip] fork opportunities, the penalty doubling on each
   further rollback (bounded) and halving on a commit.  A global
   overflow streak with no intervening commit degrades the whole run to
   sequential.  Event order and arithmetic replicate the pre-policy
   Thread_manager exactly, so static-policy traces stay byte-identical
   with the seed. *)

let max_penalty = 64

type backoff = { mutable bk_penalty : int; mutable bk_skip : int }

let static (cp : Config.Policy.t) =
  let backoffs : (int, backoff) Hashtbl.t = Hashtbl.create 16 in
  let overflow_streak = ref 0 in
  let degraded = ref false in
  let state point =
    match Hashtbl.find_opt backoffs point with
    | Some b -> b
    | None ->
      let b = { bk_penalty = 0; bk_skip = 0 } in
      Hashtbl.add backoffs point b;
      b
  in
  make ~name:"static"
    ~on_commit:(fun ~point ->
      overflow_streak := 0;
      if cp.Config.Policy.backoff && point >= 0 then
        match Hashtbl.find_opt backoffs point with
        | Some b -> b.bk_penalty <- b.bk_penalty / 2
        | None -> ())
    ~on_rollback:(fun ~point ->
      if cp.Config.Policy.backoff && point >= 0 then begin
        let b = state point in
        b.bk_penalty <- min max_penalty (max 1 (2 * b.bk_penalty));
        b.bk_skip <- b.bk_penalty;
        Some { ev_what = "backoff"; ev_info = b.bk_penalty }
      end
      else None)
    ~on_overflow:(fun ~point:_ ~pressure ->
      (* parks and spills are graceful (no rollback happened): they
         never feed the degrade streak, so the seed event stream is
         untouched *)
      match pressure with
      | Park | Spill -> None
      | Exhaust ->
        incr overflow_streak;
        if
          cp.Config.Policy.degrade_after > 0
          && !overflow_streak >= cp.Config.Policy.degrade_after
          && not !degraded
        then begin
          degraded := true;
          Some { ev_what = "degrade"; ev_info = !overflow_streak }
        end
        else None)
    ~degraded:(fun () -> !degraded)
    (fun rq ->
      if !degraded then Deny
      else if
        cp.Config.Policy.backoff && rq.rq_point >= 0
        &&
        let b = state rq.rq_point in
        if b.bk_skip > 0 then begin
          b.bk_skip <- b.bk_skip - 1;
          true
        end
        else false
      then Deny
      else Speculate rq.rq_model)

(* --- adaptive: closed-loop Deny / Expand / Speculate ------------------ *)

(* Per-point state machine.  Trouble (a genuine rollback) bumps a
   streak; [deny_after] consecutive troubles with no commit turn the
   point off ([denying]).  A denied point re-probes after
   [reprobe_after] denied requests — one fork is let through with the
   streak re-armed at [deny_after - 1], so a single further rollback
   re-denies while a commit fully rehabilitates.  Independently, the
   profiler-advisor criterion applies online: once [min_samples]
   threads have retired at the point, a wasted-work ratio above
   [payoff_threshold] also denies it.  Points proven store-free by the
   static analysis are run at Level 1 ([Expand]) until a dynamic store
   demotes them.

   Cascade limiting: once a point has rolled back at all, forks at it
   are granted only to the non-speculative thread (or inside an Expand
   region) — a troubled point degenerates to in-order-style forking
   instead of growing speculative subtrees whose abort cost dwarfs the
   single rollback that seeded them.  Clean points cascade freely.

   Unified trouble counting (the old double count): an overflow
   rollback reaches the engine twice — [on_overflow] then
   [on_rollback] — but only [on_rollback] counts it against the point;
   [on_overflow] feeds solely the global degrade streak. *)

type astate = {
  acc : Profile.Acc.t;
  mutable streak : int; (* consecutive trouble events, reset on commit *)
  mutable denying : bool;
  mutable denied : int; (* requests denied since denying began *)
  mutable demoted : bool; (* Expand revoked by a dynamic store *)
}

let adaptive (cp : Config.Policy.t) =
  let points : (int, astate) Hashtbl.t = Hashtbl.create 16 in
  let overflow_streak = ref 0 in
  let degraded = ref false in
  let state point =
    match Hashtbl.find_opt points point with
    | Some s -> s
    | None ->
      let s =
        { acc = Profile.Acc.create (); streak = 0; denying = false;
          denied = 0; demoted = false }
      in
      Hashtbl.add points point s;
      s
  in
  let allow rq st =
    if
      cp.Config.Policy.expand && rq.rq_expandable && not st.demoted
      && (rq.rq_parent_main || rq.rq_parent_expand)
    then Expand
    else Speculate rq.rq_model
  in
  make ~name:"adaptive"
    ~on_commit:(fun ~point ->
      overflow_streak := 0;
      if point >= 0 then begin
        let st = state point in
        st.streak <- 0;
        (* a committed probe rehabilitates the point *)
        st.denying <- false;
        st.denied <- 0;
        Profile.Acc.commit st.acc
      end)
    ~on_rollback:(fun ~point ->
      if point < 0 then None
      else begin
        let st = state point in
        st.streak <- st.streak + 1;
        Profile.Acc.rollback st.acc;
        if
          cp.Config.Policy.deny_after > 0
          && (not st.denying)
          && st.streak >= cp.Config.Policy.deny_after
        then begin
          st.denying <- true;
          st.denied <- 0;
          Some { ev_what = "deny"; ev_info = st.streak }
        end
        else None
      end)
    ~on_overflow:(fun ~point:_ ~pressure ->
      (* global resource pressure only; the per-point trouble is counted
         once, by the accompanying on_rollback.  Graceful parks/spills
         carry no squash and do not count. *)
      match pressure with
      | Park | Spill -> None
      | Exhaust ->
        incr overflow_streak;
        if
          cp.Config.Policy.degrade_after > 0
          && !overflow_streak >= cp.Config.Policy.degrade_after
          && not !degraded
        then begin
          degraded := true;
          Some { ev_what = "degrade"; ev_info = !overflow_streak }
        end
        else None)
    ~on_retire:(fun ~point ~committed ~wasted ->
      if point < 0 then None
      else begin
        let st = state point in
        Profile.Acc.retire st.acc ~committed ~wasted;
        let ratio = Profile.Acc.wasted_ratio st.acc in
        if
          (not st.denying)
          && Profile.Acc.retires st.acc >= cp.Config.Policy.min_samples
          && ratio > cp.Config.Policy.payoff_threshold
        then begin
          st.denying <- true;
          st.denied <- 0;
          Some
            { ev_what = "deny"; ev_info = int_of_float (100.0 *. ratio) }
        end
        else None
      end)
    ~on_expand_store:(fun ~point ->
      if point >= 0 then (state point).demoted <- true)
    ~degraded:(fun () -> !degraded)
    (fun rq ->
      if !degraded then Deny
      else if rq.rq_point < 0 then Speculate rq.rq_model
      else begin
        let st = state rq.rq_point in
        if
          (not rq.rq_parent_main)
          && (not rq.rq_parent_expand)
          && Profile.Acc.rollbacks st.acc > 0
        then
          (* cascade limit: the point has a rollback history, so only
             the non-speculative thread may fork here (does not count
             toward the re-probe window — these are extra requests the
             in-order shape would never have made) *)
          Deny
        else if st.denying then begin
          st.denied <- st.denied + 1;
          if st.denied >= cp.Config.Policy.reprobe_after then begin
            (* let one probe fork through; one more rollback re-denies,
               a commit rehabilitates *)
            st.denying <- false;
            st.denied <- 0;
            st.streak <- max 0 (cp.Config.Policy.deny_after - 1);
            let d = allow rq st in
            Profile.Acc.fork st.acc;
            d
          end
          else Deny
        end
        else begin
          let d = allow rq st in
          Profile.Acc.fork st.acc;
          d
        end
      end)

(* --- hostile: chaos-harness adversary --------------------------------- *)

(* Rotates through the worst decision sequence a policy could make —
   deny for no reason, force the in-order model, demand Expand
   everywhere, then behave — so the chaos oracle checks that the
   mechanism-level gates (Expand legality in get_cpu, model override,
   fork-model enforcement) keep any policy sound. *)

let hostile () =
  let n = ref 0 in
  make ~name:"hostile" (fun rq ->
      incr n;
      match !n mod 4 with
      | 0 -> Deny
      | 1 -> Speculate Config.In_order
      | 2 -> Expand
      | _ -> Speculate rq.rq_model)

let of_config (cfg : Config.t) =
  let p = Config.effective_policy cfg in
  match p.Config.Policy.kind with
  | Config.Policy.Static -> static p
  | Config.Policy.Adaptive -> adaptive p
  | Config.Policy.Hostile -> hostile ()
