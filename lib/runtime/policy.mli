(** Speculation policy engine: the pure fork-decision core behind a
    narrow interface, so Thread_manager keeps only mechanism
    (fork/validate/commit/rollback) and strategy is pluggable.

    One MUTLS_get_CPU request yields one {!decision}; the runtime feeds
    commit/rollback/overflow/retire notifications back.  The three STU
    levels map onto the decisions: level 0 (bypass) is {!Deny}, level 1
    (zero-risk parallelism) is {!Expand}, level 2 (full optimistic
    speculation) is {!Speculate}.

    Safety is layered: a policy may {i request} [Expand], but the
    Thread_manager only honours it where the static store-free analysis
    marked the fork point expandable and the parent's view equals main
    memory (parent is the main thread or itself an Expand thread) —
    a hostile policy cannot break soundness, only performance. *)

(** What to do with one fork request. *)
type decision =
  | Deny  (** no speculation here now (backoff veto, hopeless point) *)
  | Expand
      (** Level-1 store-free region: plain-cost accounting, no
          GlobalBuffer read/write-set tracking *)
  | Speculate of Config.model  (** Level-2, under the given fork model *)

type request = {
  rq_point : int;  (** fork point id *)
  rq_model : Config.model;
      (** the requested model, after [Config.model_override] *)
  rq_expandable : bool;
      (** the static analysis proved the enclosing region store-free *)
  rq_parent_main : bool;  (** requester is the non-speculative thread *)
  rq_parent_expand : bool;  (** requester is itself an Expand thread *)
}

(** A scheduling event for the trace ([Trace.Sched {what; info}]);
    returned by feedback hooks so state updates stay independent of
    whether tracing is enabled. *)
type event = { ev_what : string; ev_info : int }

(** Memory-pressure severity reported through {!on_overflow}: a [Park]
    is a hash conflict absorbed by the GlobalBuffer's temporary buffer,
    a [Spill] is a spill-tier insertion (latency penalty, no squash),
    and [Exhaust] is true overflow-region exhaustion — the only level
    that forces a rollback, and the only one the shipped policies count
    against their degrade streak. *)
type pressure = Park | Spill | Exhaust

type t
(** A policy instance.  Stateful: one per Thread_manager. *)

val make :
  ?on_commit:(point:int -> unit) ->
  ?on_rollback:(point:int -> event option) ->
  ?on_overflow:(point:int -> pressure:pressure -> event option) ->
  ?on_retire:(point:int -> committed:float -> wasted:float -> event option) ->
  ?on_expand_store:(point:int -> unit) ->
  ?degraded:(unit -> bool) ->
  name:string ->
  (request -> decision) ->
  t
(** Build a custom policy from a decision function and optional
    feedback hooks (all default to no-ops).  The shipped policies are
    ordinary [make] clients. *)

val name : t -> string

val decide : t -> request -> decision
(** Consulted once per MUTLS_get_CPU (after the mechanism-level
    doomed/fork-model checks). *)

val on_commit : t -> point:int -> unit
(** A thread forked at [point] validated and committed. *)

val on_rollback : t -> point:int -> event option
(** A genuine misspeculation at [point] (conflict, stale local,
    overflow, bad access — not an abandoned subtree). *)

val on_overflow : t -> point:int -> pressure:pressure -> event option
(** Memory-pressure feedback at [point].  [Exhaust] means a
    buffer-overflow rollback is about to happen and is called in
    addition to {!on_rollback} (which does the per-point counting —
    this hook tracks global resource pressure only); [Park] and
    [Spill] are graceful notifications that carry no rollback. *)

val on_retire : t -> point:int -> committed:float -> wasted:float -> event option
(** A thread forked at [point] retired with the given committed
    (useful) and rollback-discarded cycles. *)

val on_expand_store : t -> point:int -> unit
(** An Expand thread attempted a store to registered memory: the
    static store-free judgement was optimistic at runtime (the dynamic
    backstop rolled the thread back); the point must not Expand
    again. *)

val degraded : t -> bool
(** The policy has permanently fallen back to sequential execution. *)

(** {1 Shipped policies} *)

val static : Config.Policy.t -> t
(** The seed behaviour, verbatim: per-fork-point exponential backoff
    ([backoff]) and global overflow degrade ([degrade_after]) with the
    exact event order and arithmetic of the pre-policy Thread_manager —
    static-policy traces are byte-identical with the seed. *)

val adaptive : Config.Policy.t -> t
(** Closed-loop per-point engine: [deny_after] consecutive rollbacks
    deny a point, a denied point re-probes after [reprobe_after]
    requests, the profiler-advisor payoff criterion
    ([payoff_threshold] over [min_samples] retires) denies online, and
    store-free points run at Level 1 until a dynamic store demotes
    them.  Rollback streaks are counted once (the engine owns both the
    backoff-successor and advisor-successor logic). *)

val hostile : unit -> t
(** Chaos-harness adversary rotating worst-case decisions (spurious
    Deny, forced in-order, Expand everywhere); exercises the
    mechanism-level safety gates. *)

val of_config : Config.t -> t
(** Instantiate from [Config.effective_policy] (the structured policy
    with the deprecated flat fields folded in). *)
