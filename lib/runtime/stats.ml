(* Per-thread virtual-time accounting.  Categories follow the paper's
   execution breakdowns: Figure 8 (critical path: work / join / idle /
   fork / find CPU) and Figure 9 (speculative path: wasted work /
   finalize / commit / validation / overflow / idle / fork / find CPU).

   The record is abstract so the counter layout can evolve without
   breaking callers: readers go through [get]/[count]/[to_assoc],
   writers through [add]/[incr]. *)

type category =
  | Work
  | Join
  | Idle
  | Fork
  | Find_cpu
  | Validation
  | Commit
  | Finalize
  | Wasted_work
  | Overflow

let n_categories = 10

let category_index = function
  | Work -> 0
  | Join -> 1
  | Idle -> 2
  | Fork -> 3
  | Find_cpu -> 4
  | Validation -> 5
  | Commit -> 6
  | Finalize -> 7
  | Wasted_work -> 8
  | Overflow -> 9

let category_name = function
  | Work -> "work"
  | Join -> "join"
  | Idle -> "idle"
  | Fork -> "fork"
  | Find_cpu -> "find CPU"
  | Validation -> "validation"
  | Commit -> "commit"
  | Finalize -> "finalize"
  | Wasted_work -> "wasted work"
  | Overflow -> "overflow"

let all_categories =
  [ Work; Join; Idle; Fork; Find_cpu; Validation; Commit; Finalize;
    Wasted_work; Overflow ]

type counter =
  | Forks
  | Commits
  | Rollbacks
  | Loads
  | Stores
  | Checkpoints
  | Overflows
  | Conflict_stalls

let n_counters = 8

let counter_index = function
  | Forks -> 0
  | Commits -> 1
  | Rollbacks -> 2
  | Loads -> 3
  | Stores -> 4
  | Checkpoints -> 5
  | Overflows -> 6
  | Conflict_stalls -> 7

let counter_name = function
  | Forks -> "forks"
  | Commits -> "commits"
  | Rollbacks -> "rollbacks"
  | Loads -> "loads"
  | Stores -> "stores"
  | Checkpoints -> "checkpoints"
  | Overflows -> "overflows"
  | Conflict_stalls -> "conflict stalls"

let all_counters =
  [ Forks; Commits; Rollbacks; Loads; Stores; Checkpoints; Overflows;
    Conflict_stalls ]

type t = { time : float array; counts : int array }

let create () =
  { time = Array.make n_categories 0.0; counts = Array.make n_counters 0 }

let add t cat dt = t.time.(category_index cat) <- t.time.(category_index cat) +. dt
let get t cat = t.time.(category_index cat)
let total t = Array.fold_left ( +. ) 0.0 t.time

let incr t c = t.counts.(counter_index c) <- t.counts.(counter_index c) + 1
let add_count t c n = t.counts.(counter_index c) <- t.counts.(counter_index c) + n
let count t c = t.counts.(counter_index c)

(* A rolled-back thread's useful work was wasted: reclassify. *)
let work_to_wasted t =
  let w = get t Work in
  t.time.(category_index Work) <- 0.0;
  add t Wasted_work w

let merge ~into src =
  Array.iteri (fun i v -> into.time.(i) <- into.time.(i) +. v) src.time;
  Array.iteri (fun i v -> into.counts.(i) <- into.counts.(i) + v) src.counts

let to_assoc t = List.map (fun c -> (category_name c, get t c)) all_categories

let counters_assoc t = List.map (fun c -> (counter_name c, count t c)) all_counters
