(** Per-thread virtual-time accounting in the categories of the paper's
    execution breakdowns: Fig. 8 (critical path: work / join / idle /
    fork / find CPU) and Fig. 9 (speculative path: wasted work /
    finalize / commit / validation / overflow / idle / fork /
    find CPU).

    The record is abstract so the counter layout can evolve without
    breaking callers: read through {!get} / {!count} / {!to_assoc},
    write through {!add} / {!incr}. *)

type category =
  | Work
  | Join
  | Idle
  | Fork
  | Find_cpu
  | Validation
  | Commit
  | Finalize
  | Wasted_work
  | Overflow

val n_categories : int
val category_index : category -> int
val category_name : category -> string
val all_categories : category list

(** Event counters, kept alongside the per-category times. *)
type counter =
  | Forks
  | Commits
  | Rollbacks
  | Loads
  | Stores
  | Checkpoints
  | Overflows
  | Conflict_stalls

val counter_name : counter -> string
val all_counters : counter list

type t

val create : unit -> t
val add : t -> category -> float -> unit
val get : t -> category -> float
val total : t -> float

val incr : t -> counter -> unit

(** [add_count t c n] bumps counter [c] by [n]; used to fold batched
    per-thread pending counts in at accounting boundaries. *)
val add_count : t -> counter -> int -> unit
val count : t -> counter -> int

val work_to_wasted : t -> unit
(** A rolled-back thread's useful work was wasted: reclassify. *)

val merge : into:t -> t -> unit

val to_assoc : t -> (string * float) list
(** Category name to accumulated time, in {!all_categories} order —
    the export the JSON trace sinks embed in [Retire] records. *)

val counters_assoc : t -> (string * int) list
