(* ThreadData (paper §IV): per-thread speculation state.  The two
   one-shot flags mirror the paper's volatile sync_status /
   valid_status variables; the children stack implements the tree-form
   mixed forking model of §IV-F. *)

let sync = 1
let nosync = 2
let commit = 1
let rollback = 2

type t = {
  id : int; (* globally unique; disambiguates rank reuse *)
  rank : int; (* virtual CPU, 1..ncpus; 0 for the non-speculative thread *)
  fork_point : int; (* fork/join point id this thread speculates on *)
  is_main : bool;
  sync_status : Exec.flag; (* NULL -> SYNC | NOSYNC *)
  valid_status : Exec.flag; (* NULL -> COMMIT | ROLLBACK *)
  children : t Stack.t;
  gbuf : Global_buffer.t;
  lbuf : Local_buffer.t;
  stats : Stats.t;
  mutable alive : bool;
  mutable local_invalid : bool; (* failed MUTLS_validate_local *)
  mutable bad_access : bool; (* touched an unregistered address *)
  mutable commit_counter : int; (* sync block where the thread stopped *)
  mutable restore : restore option; (* set on the PARENT after a commit *)
  mutable entry_counter : int; (* join point block for speculative entry *)
  mutable acc_cost : float; (* locally accumulated, not yet advanced *)
  mutable pending_loads : int; (* Loads/Stores bumps batched like *)
  mutable pending_stores : int; (* [acc_cost]; folded into [stats] at flush *)
  mutable parent : t option; (* current parent; updated on inheritance *)
  mutable last_sync_counter : int; (* result of the last MUTLS_synchronize *)
  mutable last_sync_rank : int;
  mutable expand : bool; (* Level-1 Expand thread: no GlobalBuffer tracking *)
  mutable buffered : int; (* GlobalBuffer-tracked accesses (0 for Expand) *)
}

and restore = {
  mutable r_pending : Local_buffer.frame list; (* frames not yet entered *)
  mutable r_cur : Local_buffer.frame;
  mutable r_mappings : (int * int * int) list; (* spec addr, parent addr, size *)
}

(* [new_flag] comes from the manager's execution layer (Exec.t), so a
   thread's flags match the engine that will wait on them. *)
let create ?gbuf ?(shards = 1) ?(spill_slots = 0) ?(line_words = 1) ~new_flag
    ~id ~rank ~fork_point ~is_main ~buffer_slots ~temp_slots ~max_locals () =
  {
    id;
    rank;
    fork_point;
    is_main;
    sync_status = new_flag ();
    valid_status = new_flag ();
    children = Stack.create ();
    gbuf =
      (match gbuf with
      | Some g -> g
      | None ->
        Global_buffer.create ~shards ~spill_slots ~line_words
          ~slots:buffer_slots ~temp_slots ());
    lbuf = Local_buffer.create ~max_locals;
    stats = Stats.create ();
    alive = true;
    local_invalid = false;
    bad_access = false;
    commit_counter = 0;
    restore = None;
    entry_counter = 0;
    acc_cost = 0.0;
    pending_loads = 0;
    pending_stores = 0;
    parent = None;
    last_sync_counter = 0;
    last_sync_rank = 0;
    expand = false;
    buffered = 0;
  }

(* Map a pointer value through the parent-side stack mapping table
   (paper §IV-G3): a committed pointer into the speculative stack must
   be redirected to the corresponding non-speculative variable. *)
let map_pointer restore_state addr =
  let rec go = function
    | [] -> None
    | (spec, parent, size) :: rest ->
      if addr >= spec && addr < spec + size then Some (parent + (addr - spec))
      else go rest
  in
  go restore_state.r_mappings
