(** ThreadData (paper §IV): per-thread speculation state.  The two
    one-shot flags mirror the paper's volatile [sync_status] /
    [valid_status] variables; the children stack implements the
    tree-form mixed forking model of §IV-F. *)

(** Flag encodings. *)

val sync : int
val nosync : int
val commit : int
val rollback : int

type t = {
  id : int;  (** globally unique; disambiguates rank reuse *)
  rank : int;  (** virtual CPU, 1..ncpus-1; 0 = the non-speculative thread *)
  fork_point : int;  (** fork/join point id this thread speculates on *)
  is_main : bool;
  sync_status : Exec.flag;  (** NULL -> SYNC | NOSYNC *)
  valid_status : Exec.flag;  (** NULL -> COMMIT | ROLLBACK *)
  children : t Stack.t;
  gbuf : Global_buffer.t;
  lbuf : Local_buffer.t;
  stats : Stats.t;
  mutable alive : bool;
  mutable local_invalid : bool;  (** failed MUTLS_validate_local *)
  mutable bad_access : bool;  (** touched an unregistered address *)
  mutable commit_counter : int;  (** sync block where the thread stopped *)
  mutable restore : restore option;  (** set on the PARENT after a commit *)
  mutable entry_counter : int;  (** join-point block of the speculative entry *)
  mutable acc_cost : float;  (** locally accumulated, not yet advanced *)
  mutable pending_loads : int;
      (** {!Stats.Loads} bumps batched like [acc_cost], folded in at flush *)
  mutable pending_stores : int;
  mutable parent : t option;  (** current parent; updated on inheritance *)
  mutable last_sync_counter : int;  (** result of the last MUTLS_synchronize *)
  mutable last_sync_rank : int;
  mutable expand : bool;
      (** Level-1 Expand thread: reads go straight to memory, no
          GlobalBuffer read/write-set tracking (see {!Policy.Expand}) *)
  mutable buffered : int;
      (** GlobalBuffer-tracked accesses performed by this thread;
          asserted [0] for Expand threads *)
}

(** Stack-frame reconstruction state held by a parent while it
    re-descends a committed child's call chain (§IV-H). *)
and restore = {
  mutable r_pending : Local_buffer.frame list;
  mutable r_cur : Local_buffer.frame;
  mutable r_mappings : (int * int * int) list;
      (** speculative address, parent address, size *)
}

val create :
  ?gbuf:Global_buffer.t ->
  ?shards:int ->
  ?spill_slots:int ->
  ?line_words:int ->
  new_flag:(unit -> Exec.flag) ->
  id:int ->
  rank:int ->
  fork_point:int ->
  is_main:bool ->
  buffer_slots:int ->
  temp_slots:int ->
  max_locals:int ->
  unit ->
  t
(** [gbuf] lets the manager pool one GlobalBuffer per CPU rank, as in
    the paper; the geometry options (defaults [1]/[0]/[1] — the seed
    layout) are forwarded to {!Global_buffer.create} when no pooled
    buffer is supplied.  [new_flag] supplies the backend-specific flag
    representation (see {!Exec}). *)

val map_pointer : restore -> int -> int option
(** Map a committed pointer into the speculative stack to the
    corresponding non-speculative variable (§IV-G3). *)
