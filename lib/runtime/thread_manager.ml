(* ThreadManager (paper §IV): virtual CPU management, fork model
   enforcement, speculation, synchronization with the tree-form mixed
   model (§IV-F), validation/commit/rollback and stack frame
   reconstruction (§IV-H).  All timing goes through the execution
   layer (Exec); the category accounting feeds Figures 8 and 9.

   This module is the pure fork-model core: it never names a concrete
   engine.  The Exec record decides whether threads are simulator
   fibers on one systhread (Exec.of_sim — deterministic, the oracle)
   or real fibers scheduled across OCaml 5 domains (Mutls_par.Sched).
   On the parallel path Exec.lock is Some, and every touch of shared
   manager state (CPU table, speculation order, policy engine, retired
   list, foreign children stacks) goes through [with_lock]; the hot
   paths — spec_load/spec_store, tick, check-point polls — stay
   lock-free by construction (per-thread state plus one-shot flag
   peeks).  On the sim path the lock is None and [with_lock] is a
   direct call, so simulator behaviour and traces are unchanged.

   Every lifecycle transition and every accounting charge is also
   reported to the trace sink configured in [Config.trace_sink]
   (Mutls_obs.Trace); the [Report] module folds the charge stream back
   into the same Fig. 8/9 breakdowns, so the trace is a faithful
   superset of [Stats]. *)

module Trace = Mutls_obs.Trace
module Telemetry = Mutls_obs.Telemetry

(* The deterministic PRNG is backend-neutral (pure state machine); only
   the engine itself is abstracted behind Exec. *)
module Rng = Mutls_sim.Rng

exception Spec_finished
(* Raised inside a speculative thread's fiber after it has committed or
   rolled back; unwinds the interpreter back to the fiber body. *)

type cpu_state = Idle | Busy of Thread_data.t

type retired = {
  r_stats : Stats.t;
  r_runtime : float;
  r_committed : bool;
  r_buffered : int; (* GlobalBuffer-tracked accesses; 0 for Expand *)
  r_expand : bool; (* ran as a Level-1 Expand thread *)
}

(* Telemetry handles, resolved once at [create] so the record paths
   (a single guarded store each) never touch the registry's Hashtbl.
   Recording never charges virtual time and never touches the
   injection RNG, so telemetry on/off cannot perturb traces. *)
type tele = {
  on : bool;
  t_forks : Telemetry.counter;
  t_denied_model : Telemetry.counter;
  t_denied_policy : Telemetry.counter;
  t_denied_no_cpu : Telemetry.counter;
  t_denied_fault : Telemetry.counter;
  t_dec_deny : Telemetry.counter;
  t_dec_expand : Telemetry.counter;
  t_dec_speculate : Telemetry.counter;
  t_commits : Telemetry.counter;
  t_rb_conflict : Telemetry.counter;
  t_rb_stale : Telemetry.counter;
  t_rb_abandoned : Telemetry.counter;
  t_rb_overflow : Telemetry.counter;
  t_rb_bad_access : Telemetry.counter;
  t_nosyncs : Telemetry.counter;
  t_overflows : Telemetry.counter;
  t_checkpoints : Telemetry.counter;
  t_validations_ok : Telemetry.counter;
  t_validations_fail : Telemetry.counter;
  t_joins_ok : Telemetry.counter;
  t_joins_fail : Telemetry.counter;
  t_loads : Telemetry.counter;
  t_stores : Telemetry.counter;
  t_spills : Telemetry.counter;
  t_parks : Telemetry.counter;
  t_gbuf_spills : Telemetry.counter;
  t_frames : Telemetry.counter;
  t_live_spec : Telemetry.gauge;
  t_vtime : Telemetry.gauge;
  t_degraded : Telemetry.gauge;
  t_spill_depth : Telemetry.gauge;
  t_h_runtime : Telemetry.histogram;
  t_h_validate_words : Telemetry.histogram;
  t_h_commit_words : Telemetry.histogram;
  t_h_occupancy : Telemetry.histogram;
  t_h_shard_occupancy : Telemetry.histogram;
  t_h_frame_depth : Telemetry.histogram;
}

let make_tele reg =
  let c ?help ?labels name = Telemetry.counter ?help ?labels reg name
  and g ?help ?labels name = Telemetry.gauge ?help ?labels reg name
  and h ?help ?labels name = Telemetry.histogram ?help ?labels reg name in
  {
    on = Telemetry.enabled reg;
    t_forks = c ~help:"speculative threads forked" "mutls_forks_total";
    t_denied_model =
      c ~help:"fork requests refused" ~labels:[ ("reason", "model") ]
        "mutls_fork_denied_total";
    t_denied_policy =
      c ~labels:[ ("reason", "policy") ] "mutls_fork_denied_total";
    t_denied_no_cpu =
      c ~labels:[ ("reason", "no_cpu") ] "mutls_fork_denied_total";
    t_denied_fault = c ~labels:[ ("reason", "fault") ] "mutls_fork_denied_total";
    t_dec_deny =
      c ~help:"policy engine decisions" ~labels:[ ("decision", "deny") ]
        "mutls_policy_decisions_total";
    t_dec_expand =
      c ~labels:[ ("decision", "expand") ] "mutls_policy_decisions_total";
    t_dec_speculate =
      c ~labels:[ ("decision", "speculate") ] "mutls_policy_decisions_total";
    t_commits = c ~help:"threads validated and committed" "mutls_commits_total";
    t_rb_conflict =
      c ~help:"threads rolled back" ~labels:[ ("reason", "conflict") ]
        "mutls_rollbacks_total";
    t_rb_stale =
      c ~labels:[ ("reason", "stale-local") ] "mutls_rollbacks_total";
    t_rb_abandoned =
      c ~labels:[ ("reason", "abandoned") ] "mutls_rollbacks_total";
    t_rb_overflow =
      c ~labels:[ ("reason", "buffer-overflow") ] "mutls_rollbacks_total";
    t_rb_bad_access =
      c ~labels:[ ("reason", "bad-access") ] "mutls_rollbacks_total";
    t_nosyncs = c ~help:"subtrees abandoned (NOSYNC)" "mutls_nosyncs_total";
    t_overflows = c ~help:"GlobalBuffer overflows" "mutls_overflows_total";
    t_checkpoints = c ~help:"check-point polls" "mutls_checkpoints_total";
    t_validations_ok =
      c ~help:"read-set validations" ~labels:[ ("ok", "true") ]
        "mutls_validations_total";
    t_validations_fail =
      c ~labels:[ ("ok", "false") ] "mutls_validations_total";
    t_joins_ok =
      c ~help:"parent-side joins" ~labels:[ ("committed", "true") ]
        "mutls_joins_total";
    t_joins_fail = c ~labels:[ ("committed", "false") ] "mutls_joins_total";
    t_loads = c ~help:"speculative loads" "mutls_loads_total";
    t_stores = c ~help:"speculative stores" "mutls_stores_total";
    t_spills =
      c
        ~help:
          "GlobalBuffer hash conflicts parked in the temp buffer \
           (deprecated alias of mutls_gbuf_parks_total)"
        "mutls_spills_total";
    t_parks =
      c ~help:"GlobalBuffer hash conflicts parked in the temp buffer"
        "mutls_gbuf_parks_total";
    t_gbuf_spills =
      c ~help:"GlobalBuffer spill-tier insertions" "mutls_gbuf_spills_total";
    t_frames = c ~help:"LocalBuffer frames pushed" "mutls_frames_total";
    t_live_spec =
      g ~help:"live speculative threads" "mutls_live_spec_threads";
    t_vtime = g ~help:"virtual clock, cycles" "mutls_virtual_time_cycles";
    t_degraded =
      g ~help:"1 after the policy degraded to sequential" "mutls_policy_degraded";
    t_spill_depth =
      g ~help:"GlobalBuffer spill-tier entries in use" "mutls_gbuf_spill_depth";
    t_h_runtime =
      h ~help:"speculative thread lifetime, cycles" "mutls_thread_runtime_cycles";
    t_h_validate_words =
      h ~help:"read-set words per validation" "mutls_validate_words";
    t_h_commit_words =
      h ~help:"write-set words per commit" "mutls_commit_words";
    t_h_occupancy =
      h ~help:"GlobalBuffer slots occupied at finalize"
        "mutls_buffer_occupancy_words";
    t_h_shard_occupancy =
      h ~help:"GlobalBuffer home-map slots occupied per shard at finalize"
        "mutls_gbuf_shard_occupancy_words";
    t_h_frame_depth =
      h ~help:"LocalBuffer depth at frame push" "mutls_frame_depth";
  }

type t = {
  cfg : Config.t;
  exec : Exec.t;
  mem : Memio.t;
  addr_space : Address_space.t;
  cpus : cpu_state array; (* ranks 1..ncpus; slot 0 unused *)
  mutable next_id : int;
  mutable spec_order : Thread_data.t list; (* newest speculation first *)
  mutable live_spec : int;
  rng : Rng.t;
  main : Thread_data.t;
  mutable retired : retired list;
  (* §VI future work: last-stride value predictor for fork-time
     register transfer, keyed by (fork point id, register offset). *)
  strides : (int * int, int64) Hashtbl.t;
  (* Per-CPU GlobalBuffer pool, as in the paper ("the ThreadManager
     module maintains for each CPU one ThreadData, one GlobalBuffer and
     one LocalBuffer object"): the buffers are by far the largest
     allocation, and every thread finalizes its buffer before dying, so
     the next occupant of the rank can reuse it. *)
  buffer_pool : Global_buffer.t array;
  fault : Fault.t option; (* chaos testing: deterministic injection at
                             the runtime's failure sites (Config.fault) *)
  policy : Policy.t; (* the fork-decision strategy (Config.policy with
                        the deprecated flat fields folded in); this
                        module keeps only mechanism *)
  tele : tele; (* pre-resolved handles into Config.telemetry *)
  aux_lock : Mutex.t option;
  (* Leaf-level lock for the small shared leaves — the injection RNGs
     (fault + rollback_probability) and the value-prediction strides
     table — taken while the main lock may already be held (order:
     main, then aux; never the reverse).  None on the sim path. *)
}

(* --- locking ---------------------------------------------------------- *)

(* The main shared-state lock lives in the Exec record: None on the sim
   path (single systhread — a direct call), Some under the parallel
   backend.  Critical sections never block on a flag wait, so the two
   locks cannot participate in a cycle with the scheduler. *)
let[@inline] with_lock mgr f =
  match mgr.exec.Exec.lock with
  | None -> f ()
  | Some mu -> (
    Mutex.lock mu;
    match f () with
    | v ->
      Mutex.unlock mu;
      v
    | exception e ->
      Mutex.unlock mu;
      raise e)

let[@inline] with_aux mgr f =
  match mgr.aux_lock with
  | None -> f ()
  | Some mu -> (
    Mutex.lock mu;
    match f () with
    | v ->
      Mutex.unlock mu;
      v
    | exception e ->
      Mutex.unlock mu;
      raise e)

(* --- tracing --------------------------------------------------------- *)

(* Call sites guard on [tracing] before building an event, so disabled
   tracing allocates nothing on the hot paths. *)
let tracing mgr = mgr.cfg.Config.trace_sink.Trace.enabled

let emit mgr (td : Thread_data.t) event =
  mgr.cfg.Config.trace_sink.Trace.emit
    {
      Trace.time = mgr.exec.Exec.now ();
      thread = td.id;
      rank = td.rank;
      main = td.is_main;
      event;
    }

(* The GlobalBuffer pool serves successive threads on a rank, so the
   observability hooks are re-bound to each new occupant.  The hooks
   serve both the trace sink and the telemetry registry; [observing]
   says whether either wants them. *)
let observing mgr = tracing mgr || mgr.tele.on

let install_hooks mgr (td : Thread_data.t) =
  Global_buffer.set_park_hook td.gbuf
    (Some
       (fun addr ->
         if mgr.tele.on then begin
           (* mutls_spills_total is the deprecated alias of parks. *)
           Telemetry.incr mgr.tele.t_spills;
           Telemetry.incr mgr.tele.t_parks
         end;
         if tracing mgr then emit mgr td (Trace.Park { addr })));
  Global_buffer.set_spill_hook td.gbuf
    (Some
       (fun addr ->
         if mgr.tele.on then begin
           Telemetry.incr mgr.tele.t_gbuf_spills;
           Telemetry.set mgr.tele.t_spill_depth
             (float_of_int (Global_buffer.spill_size td.gbuf))
         end;
         if tracing mgr then emit mgr td (Trace.Spill { addr })));
  Local_buffer.set_frame_hook td.lbuf
    (Some
       (fun ~push ~depth ->
         if mgr.tele.on && push then begin
           Telemetry.incr mgr.tele.t_frames;
           Telemetry.observe mgr.tele.t_h_frame_depth depth
         end;
         if tracing mgr then emit mgr td (Trace.Frame { push; depth })))

let create_exec ?policy (cfg : Config.t) (exec : Exec.t) mem =
  Config.validate cfg;
  let bufs = Config.effective_buffers cfg in
  let main =
    Thread_data.create ~new_flag:exec.Exec.new_flag ~id:0 ~rank:0
      ~fork_point:(-1) ~is_main:true
      ~buffer_slots:bufs.Config.Buffers.slots
      ~temp_slots:bufs.Config.Buffers.temp_slots
      ~shards:bufs.Config.Buffers.shards
      ~spill_slots:bufs.Config.Buffers.spill_slots
      ~line_words:bufs.Config.Buffers.line_words ~max_locals:cfg.max_locals ()
  in
  let mgr =
    {
      cfg;
      exec;
      mem;
      addr_space = Address_space.create ();
      cpus = Array.make (max 1 cfg.ncpus) Idle;
      next_id = 1;
      spec_order = [];
      live_spec = 0;
      rng = Rng.create cfg.seed;
      main;
      retired = [];
      strides = Hashtbl.create 64;
      buffer_pool =
        Array.init (max 1 cfg.ncpus) (fun _ ->
            Global_buffer.create ~slots:bufs.Config.Buffers.slots
              ~temp_slots:bufs.Config.Buffers.temp_slots
              ~shards:bufs.Config.Buffers.shards
              ~spill_slots:bufs.Config.Buffers.spill_slots
              ~line_words:bufs.Config.Buffers.line_words ());
      fault = Option.map (Fault.create ~seed:cfg.seed) cfg.fault;
      policy =
        (match policy with Some p -> p | None -> Policy.of_config cfg);
      tele = make_tele cfg.telemetry;
      aux_lock = Option.map (fun _ -> Mutex.create ()) exec.Exec.lock;
    }
  in
  if observing mgr then install_hooks mgr main;
  mgr

let create ?policy cfg engine mem =
  create_exec ?policy cfg (Exec.of_sim engine) mem

(* --- accessors ------------------------------------------------------- *)

(* Loads/Stores counter bumps are batched per thread like [acc_cost]
   and folded in at flush; the accessors below fold too, so a caller
   reading stats mid-run (the main thread never retires) still sees
   exact totals. *)
let fold_counters mgr (td : Thread_data.t) =
  if td.pending_loads > 0 then begin
    Stats.add_count td.stats Stats.Loads td.pending_loads;
    if mgr.tele.on then Telemetry.add mgr.tele.t_loads td.pending_loads;
    td.pending_loads <- 0
  end;
  if td.pending_stores > 0 then begin
    Stats.add_count td.stats Stats.Stores td.pending_stores;
    if mgr.tele.on then Telemetry.add mgr.tele.t_stores td.pending_stores;
    td.pending_stores <- 0
  end

let main mgr =
  fold_counters mgr mgr.main;
  mgr.main

let retired mgr = mgr.retired
let cfg mgr = mgr.cfg
let now mgr = mgr.exec.Exec.now ()
let degraded mgr = Policy.degraded mgr.policy
let injector mgr = mgr.fault

(* --- fault injection -------------------------------------------------- *)

(* The injector's RNG streams are shared mutable state; [with_aux]
   (leaf lock, may nest inside the main lock) keeps their draws atomic
   under the parallel backend. *)
let inject mgr site =
  match mgr.fault with
  | None -> false
  | Some f -> with_aux mgr (fun () -> Fault.fire f site)

(* --- policy feedback -------------------------------------------------- *)

(* The policy owns all strategy state (backoff penalties, overflow
   streaks, payoff accumulators); these wrappers forward the mechanism
   events and map any returned scheduling event onto the trace.  Policy
   state updates never depend on whether tracing is enabled. *)

let emit_sched mgr (td : Thread_data.t) = function
  | None -> ()
  | Some { Policy.ev_what; ev_info } ->
    if tracing mgr then
      emit mgr td (Trace.Sched { what = ev_what; info = ev_info })

(* A genuine misspeculation (conflict, stale local, overflow — not an
   abandoned subtree, which says nothing about the point itself).  The
   policy engine is stateful and shared, so every feedback call is a
   critical section under the parallel backend. *)
let note_rollback mgr (td : Thread_data.t) =
  emit_sched mgr td
    (with_lock mgr (fun () -> Policy.on_rollback mgr.policy ~point:td.fork_point))

let note_commit mgr (td : Thread_data.t) =
  with_lock mgr (fun () -> Policy.on_commit mgr.policy ~point:td.fork_point)

let note_overflow mgr (td : Thread_data.t) ~pressure =
  emit_sched mgr td
    (with_lock mgr (fun () ->
         Policy.on_overflow mgr.policy ~point:td.fork_point ~pressure))

(* --- virtual-time accounting --------------------------------------- *)

let flush mgr (td : Thread_data.t) =
  fold_counters mgr td;
  if td.acc_cost > 0.0 then begin
    Stats.add td.stats Stats.Work td.acc_cost;
    let c = td.acc_cost in
    td.acc_cost <- 0.0;
    mgr.exec.Exec.advance c;
    if mgr.tele.on then
      Telemetry.set mgr.tele.t_vtime (mgr.exec.Exec.now ());
    if tracing mgr then
      emit mgr td
        (Trace.Charge { category = Stats.category_name Stats.Work; cost = c })
  end

(* Accumulate interpreter work cost; yields to the scheduler once per
   quantum so cross-thread interleaving stays fine-grained. *)
let tick mgr (td : Thread_data.t) c =
  td.acc_cost <- td.acc_cost +. c;
  if td.acc_cost >= mgr.cfg.quantum then flush mgr td

(* Batched [tick] for the compiled engine: [n] pending per-op costs of
   a straight-line segment.  Replaying them from the current
   accumulator tells whether any per-op [tick] would have flushed; if
   none would, the final accumulator is committed in one write and the
   per-op calls are skipped — same float additions in the same order,
   so the committed value is bit-identical, and with no flush there is
   no scheduler yield and no Charge event to reorder.  Otherwise
   nothing is committed and the caller interleaves per-op [tick]s with
   execution exactly like the reference engine. *)
let tick_batch mgr (td : Thread_data.t) (costs : float array) n =
  let q = mgr.cfg.quantum in
  let acc = ref td.acc_cost in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    acc := !acc +. Array.unsafe_get costs !i;
    if !acc >= q then ok := false;
    incr i
  done;
  if !ok then td.acc_cost <- !acc;
  !ok

let charge mgr (td : Thread_data.t) cat c =
  flush mgr td;
  Stats.add td.stats cat c;
  mgr.exec.Exec.advance c;
  if tracing mgr then
    emit mgr td (Trace.Charge { category = Stats.category_name cat; cost = c })

(* Waiting time already accounted by the engine: record it in [cat]
   without advancing the clock again. *)
let charge_elapsed mgr (td : Thread_data.t) cat dt =
  Stats.add td.stats cat dt;
  if tracing mgr && dt > 0.0 then
    emit mgr td (Trace.Charge { category = Stats.category_name cat; cost = dt })

(* Join-waits on the critical path are "join"; on a speculative path
   the paper reports them as idle time. *)
let join_cat (td : Thread_data.t) = if td.is_main then Stats.Join else Stats.Idle

(* --- address space -------------------------------------------------- *)

let register_range mgr start size = Address_space.register mgr.addr_space start size
let unregister_range mgr start size = Address_space.unregister mgr.addr_space start size
let registered mgr addr size = Address_space.contains_range mgr.addr_space addr size

(* --- forking model policy ------------------------------------------- *)

let rec first_alive = function
  | [] -> None
  | (td : Thread_data.t) :: rest -> if td.alive then Some td else first_alive rest

let may_fork mgr (td : Thread_data.t) = function
  | Config.Mixed -> true
  | Config.Out_of_order -> td.is_main
  | Config.In_order -> (
    match first_alive mgr.spec_order with
    | None -> td.is_main
    | Some most_speculative -> most_speculative.id = td.id)

(* --- fork (§IV-D) ---------------------------------------------------- *)

let find_idle mgr =
  let rec go r =
    if r >= mgr.cfg.ncpus then None
    else match mgr.cpus.(r) with Idle -> Some r | Busy _ -> go (r + 1)
  in
  go 1

(* MUTLS_get_CPU: assign a rank to a new speculative thread, or 0 when
   speculation is not possible.  The policy decides Deny / Expand /
   Speculate; this function enforces the mechanism-level invariants a
   policy cannot be trusted with: the fork-model rules, and the Expand
   legality gate — Level 1 is only honoured where the static analysis
   marked the point expandable AND the parent's view of memory equals
   main memory (the parent is the main thread, or itself an Expand
   thread and therefore bufferless).  A hostile policy can thus cost
   performance but never soundness. *)
let get_cpu mgr (td : Thread_data.t) ~model ~expandable ~point =
  charge mgr td Stats.Find_cpu mgr.cfg.cost.find_cpu;
  (* Everything below reads and writes shared manager state (CPU table,
     speculation order, policy engine), so the whole decision is one
     critical section under the parallel backend.  Nothing inside
     blocks: the injection draw takes only the aux leaf lock. *)
  with_lock mgr (fun () ->
  let model = Option.value mgr.cfg.model_override ~default:model in
  (* A thread already asked to synchronize or roll back must not fork:
     its children would be orphaned. *)
  let doomed = mgr.exec.Exec.peek td.sync_status <> None in
  if doomed || not (may_fork mgr td model) then begin
    if mgr.tele.on then Telemetry.incr mgr.tele.t_denied_model;
    0
  end
  else begin
    let rq =
      {
        Policy.rq_point = point;
        rq_model = model;
        rq_expandable = expandable;
        rq_parent_main = td.is_main;
        rq_parent_expand = td.expand;
      }
    in
    let decision =
      match Policy.decide mgr.policy rq with
      | Policy.Expand when not (expandable && (td.is_main || td.expand)) ->
        Policy.Speculate model (* illegal Expand: downgrade to Level 2 *)
      | d -> d
    in
    (if mgr.tele.on then
       match decision with
       | Policy.Deny -> Telemetry.incr mgr.tele.t_dec_deny
       | Policy.Expand -> Telemetry.incr mgr.tele.t_dec_expand
       | Policy.Speculate _ -> Telemetry.incr mgr.tele.t_dec_speculate);
    match decision with
    | Policy.Deny ->
      if mgr.tele.on then Telemetry.incr mgr.tele.t_denied_policy;
      0
    | (Policy.Expand | Policy.Speculate _) as d -> (
      let expand, model' =
        match d with
        | Policy.Speculate m -> (false, m)
        | _ -> (true, model)
      in
      (* a policy-overridden model still obeys the fork-model rules *)
      if model' <> model && not (may_fork mgr td model') then begin
        if mgr.tele.on then Telemetry.incr mgr.tele.t_denied_model;
        0
      end
      else
        match find_idle mgr with
        | None ->
          if mgr.tele.on then Telemetry.incr mgr.tele.t_denied_no_cpu;
          0
        | Some rank ->
          if inject mgr Fault.Fork_denial then begin
            if mgr.tele.on then Telemetry.incr mgr.tele.t_denied_fault;
            0
          end
          else begin
      let child =
        Thread_data.create ~gbuf:mgr.buffer_pool.(rank)
          ~new_flag:mgr.exec.Exec.new_flag ~id:mgr.next_id ~rank
          ~fork_point:point ~is_main:false ~buffer_slots:mgr.cfg.buffer_slots
          ~temp_slots:mgr.cfg.temp_slots ~max_locals:mgr.cfg.max_locals ()
      in
      mgr.next_id <- mgr.next_id + 1;
      child.parent <- Some td;
      child.expand <- expand;
      if observing mgr then install_hooks mgr child;
      ignore (Local_buffer.push_frame child.lbuf);
      mgr.cpus.(rank) <- Busy child;
      Stack.push child td.children;
      (* keep the speculation-order list from growing without bound *)
      if List.length mgr.spec_order > 4 * mgr.cfg.ncpus then
        mgr.spec_order <-
          List.filter (fun (t : Thread_data.t) -> t.alive) mgr.spec_order;
      mgr.spec_order <- child :: mgr.spec_order;
      mgr.live_spec <- mgr.live_spec + 1;
      Stats.incr td.stats Stats.Forks;
      if mgr.tele.on then begin
        Telemetry.incr mgr.tele.t_forks;
        Telemetry.set mgr.tele.t_live_spec (float_of_int mgr.live_spec)
      end;
      if tracing mgr then
        emit mgr td (Trace.Fork { child = child.id; child_rank = rank; point });
      rank
          end)
  end)

let busy_exn mgr rank =
  match mgr.cpus.(rank) with
  | Busy td -> td
  | Idle -> invalid_arg (Printf.sprintf "Thread_manager: CPU %d is idle" rank)

(* --- fork-time local transfer (proxy side) -------------------------- *)

let set_fork_reg mgr (parent : Thread_data.t) ~rank ~off value =
  charge mgr parent Stats.Fork mgr.cfg.cost.per_local;
  let child = busy_exn mgr rank in
  (* With value prediction enabled, a local whose value changes between
     fork and join by a stable stride is transferred pre-advanced by the
     learned stride (the paper's §VI: induction variables "can also be
     made live"); the original is kept for learning at the join. *)
  let value =
    if mgr.cfg.value_prediction then begin
      Local_buffer.set_fork_orig child.lbuf off value;
      match value with
      | Local_buffer.Vi v -> (
        match
          with_aux mgr (fun () ->
              Hashtbl.find_opt mgr.strides (child.fork_point, off))
        with
        | Some stride -> Local_buffer.Vi (Int64.add v stride)
        | None -> value)
      | Local_buffer.Vf _ -> value
    end
    else value
  in
  Local_buffer.set_fork_reg child.lbuf off value

let set_fork_addr mgr (parent : Thread_data.t) ~rank ~off addr =
  charge mgr parent Stats.Fork mgr.cfg.cost.per_local;
  let child = busy_exn mgr rank in
  Local_buffer.set_fork_addr child.lbuf off addr

(* MUTLS_speculate: launch the speculative thread.  [body] runs the
   interpreter on the stub/speculative function; the wrapper records
   runtime and releases the CPU no matter how the thread ends. *)
let speculate mgr (parent : Thread_data.t) ~rank ~counter body =
  charge mgr parent Stats.Fork mgr.cfg.cost.fork;
  let child = busy_exn mgr rank in
  child.entry_counter <- counter;
  if tracing mgr then
    emit mgr parent (Trace.Speculate { child_rank = rank; counter });
  mgr.exec.Exec.spawn (fun () ->
      let t0 = mgr.exec.Exec.now () in
      let committed =
        match body child with
        | () -> false (* body returned without commit: treat as rollback *)
        | exception Spec_finished ->
          mgr.exec.Exec.peek child.valid_status = Some Thread_data.commit
      in
      flush mgr child;
      (* Retirement releases the rank: the locked section here
         happens-before the locked claim in [get_cpu], so the next
         occupant of the rank sees every plain write this thread made. *)
      with_lock mgr (fun () ->
          child.alive <- false;
          (match mgr.cpus.(rank) with
          | Busy td when td.id = child.id -> mgr.cpus.(rank) <- Idle
          | _ -> ());
          mgr.live_spec <- mgr.live_spec - 1);
      let runtime = mgr.exec.Exec.now () -. t0 in
      if mgr.tele.on then begin
        Telemetry.observe mgr.tele.t_h_runtime (int_of_float runtime);
        Telemetry.set mgr.tele.t_live_spec (float_of_int mgr.live_spec);
        Telemetry.set mgr.tele.t_degraded
          (if Policy.degraded mgr.policy then 1.0 else 0.0)
      end;
      if tracing mgr then
        emit mgr child
          (Trace.Retire
             { committed; runtime; stats = Stats.to_assoc child.stats });
      (* feed the policy's payoff accumulator — the same committed /
         wasted split the profiler books from the Retire record *)
      let sched_ev =
        with_lock mgr (fun () ->
            let ev =
              Policy.on_retire mgr.policy ~point:child.fork_point
                ~committed:(Stats.get child.stats Stats.Work)
                ~wasted:(Stats.get child.stats Stats.Wasted_work)
            in
            mgr.retired <-
              { r_stats = child.stats; r_runtime = runtime;
                r_committed = committed; r_buffered = child.buffered;
                r_expand = child.expand }
              :: mgr.retired;
            ev)
      in
      emit_sched mgr child sched_ev)

(* --- speculative entry (stub side) ----------------------------------- *)

let get_fork_reg mgr (td : Thread_data.t) ~off =
  charge mgr td Stats.Work mgr.cfg.cost.per_local;
  Local_buffer.get_fork_reg td.lbuf off

(* Bottom-frame stack variables are accessed at the parent's addresses
   (through the GlobalBuffer); nested entries use the local alloca. *)
let pick_stackaddr mgr (td : Thread_data.t) ~counter ~off ~own_addr =
  charge mgr td Stats.Work mgr.cfg.cost.per_local;
  if counter <> 0 then Local_buffer.get_fork_addr td.lbuf off else own_addr

(* --- validation & commit -------------------------------------------- *)

(* The parent's view of memory: main memory for the non-speculative
   thread, memory overlaid with its own uncommitted writes for a
   speculative parent. *)
let parent_view mgr (parent : Thread_data.t) np =
  if parent.is_main then mgr.mem.Memio.read_word np
  else Global_buffer.view parent.gbuf mgr.mem np

exception Validation_failed

let validate_against_parent mgr (td : Thread_data.t) (parent : Thread_data.t) =
  let checked = ref 0 in
  (* First conflicting word address, for attribution: a per-address
     histogram over Validate failures ranks the hot words behind
     Conflict rollbacks (Mutls_obs.Profile). *)
  let conflict_addr = ref None in
  let ok =
    try
      Global_buffer.iter_read_words td.gbuf (fun addr observed mask ->
          incr checked;
          let actual = parent_view mgr parent addr in
          match mask with
          | None ->
            if actual <> observed then begin
              conflict_addr := Some addr;
              raise Validation_failed
            end
          | Some mark ->
            (* skip locally overwritten bytes *)
            for b = 0 to 7 do
              if Bytes.get mark b <> '\xff' then begin
                let shift = 8 * b in
                let byte_of w = Int64.to_int (Int64.shift_right_logical w shift) land 0xff in
                if byte_of actual <> byte_of observed then begin
                  conflict_addr := Some addr;
                  raise Validation_failed
                end
              end
            done);
      true
    with Validation_failed -> false
  in
  charge mgr td Stats.Validation
    (float_of_int (max 1 !checked) *. mgr.cfg.cost.validate_word);
  let ok =
    if ok && td.local_invalid then false
    else if ok && inject mgr Fault.Validation_failure then false
    else if ok && mgr.cfg.rollback_probability > 0.0 then
      with_aux mgr (fun () -> Rng.next_float mgr.rng)
      >= mgr.cfg.rollback_probability
    else ok
  in
  (* stale-local and injected failures have no conflicting address *)
  let addr = if ok then None else !conflict_addr in
  if mgr.tele.on then begin
    Telemetry.incr
      (if ok then mgr.tele.t_validations_ok else mgr.tele.t_validations_fail);
    Telemetry.observe mgr.tele.t_h_validate_words !checked
  end;
  if tracing mgr then emit mgr td (Trace.Validate { words = !checked; ok; addr });
  ok

(* Commit the child's effects into the parent's world: main memory for
   a non-speculative parent, the parent's buffers otherwise.  Returns
   the number of words written. *)
let commit_into_parent mgr (td : Thread_data.t) (parent : Thread_data.t) =
  let words = ref 0 in
  if parent.is_main then words := Global_buffer.commit td.gbuf mgr.mem
  else begin
    (try
       (* Reads MUST merge before writes.  A read-modify-write address
          sits in both of the child's sets; once the child's write lands
          in the parent's write set, merge_read would take the hit as
          "satisfied by an earlier parent write" and drop the entry —
          losing the stale observation and letting the conflict escape
          re-validation at the next join up the chain. *)
       Global_buffer.iter_read_words td.gbuf (fun addr observed _mask ->
           Global_buffer.merge_read parent.gbuf addr observed);
       Global_buffer.iter_write_words td.gbuf (fun addr data pos mark mpos ->
           incr words;
           Global_buffer.merge_write parent.gbuf mgr.mem addr data pos mark mpos)
     with Global_buffer.Overflow ->
       (* The parent's buffers cannot absorb the child; poison the
          parent so it rolls back (safe, conservative). *)
       parent.local_invalid <- true)
  end;
  charge mgr td Stats.Commit (float_of_int (max 1 !words) *. mgr.cfg.cost.commit_word);
  !words

let finalize_buffers mgr (td : Thread_data.t) =
  if mgr.tele.on then begin
    let g = td.gbuf in
    for s = 0 to Global_buffer.shard_count g - 1 do
      Telemetry.observe mgr.tele.t_h_shard_occupancy
        (Global_buffer.shard_occupancy g s)
    done
  end;
  let n = Global_buffer.finalize td.gbuf in
  if mgr.tele.on then Telemetry.observe mgr.tele.t_h_occupancy n;
  charge mgr td Stats.Finalize (float_of_int (max 1 n) *. mgr.cfg.cost.finalize_word)

let tele_rollback mgr reason =
  if mgr.tele.on then
    Telemetry.incr
      (match reason with
      | Trace.Conflict -> mgr.tele.t_rb_conflict
      | Trace.Stale_local -> mgr.tele.t_rb_stale
      | Trace.Abandoned -> mgr.tele.t_rb_abandoned
      | Trace.Buffer_overflow -> mgr.tele.t_rb_overflow
      | Trace.Bad_access -> mgr.tele.t_rb_bad_access)

(* Terminal commit/rollback of a speculative thread that has been asked
   to synchronize.  Sets valid_status and ends the fiber. *)
let commit_or_rollback mgr (td : Thread_data.t) ~counter =
  let parent = match td.parent with Some p -> p | None -> mgr.main in
  let ok = validate_against_parent mgr td parent in
  if ok then begin
    let words = commit_into_parent mgr td parent in
    td.commit_counter <- counter;
    (Local_buffer.top td.lbuf).counter <- counter;
    finalize_buffers mgr td;
    Stats.incr td.stats Stats.Commits;
    note_commit mgr td;
    if mgr.tele.on then begin
      Telemetry.incr mgr.tele.t_commits;
      Telemetry.observe mgr.tele.t_h_commit_words words
    end;
    if tracing mgr then emit mgr td (Trace.Commit { words; counter });
    (* Setting the flag publishes the buffer merges above: the waiting
       parent's read of the verdict happens-after this set. *)
    mgr.exec.Exec.set td.valid_status Thread_data.commit
  end
  else begin
    (* The Rollback record must precede the finalize charge: the Report
       replay reclassifies work->wasted exactly where the runtime does,
       and the finalize cost accrues after the reclassification. *)
    Stats.work_to_wasted td.stats;
    tele_rollback mgr
      (if td.local_invalid then Trace.Stale_local else Trace.Conflict);
    if tracing mgr then
      emit mgr td
        (Trace.Rollback
           {
             reason =
               (if td.local_invalid then Trace.Stale_local else Trace.Conflict);
             point = td.fork_point;
           });
    finalize_buffers mgr td;
    Stats.incr td.stats Stats.Rollbacks;
    note_rollback mgr td;
    mgr.exec.Exec.set td.valid_status Thread_data.rollback
  end;
  raise Spec_finished

(* Kill an entire abandoned subtree: these threads will never be
   joined, so they must be told to roll back (tree-form cascading
   rollback, confined to the subtree).  Callers hold the main lock:
   two killers can otherwise race the peek-before-set on a shared
   descendant, and the children stacks being walked are mutated under
   the same lock. *)
let rec nosync_subtree mgr (td : Thread_data.t) =
  (match mgr.exec.Exec.peek td.sync_status with
  | None ->
    if mgr.tele.on then Telemetry.incr mgr.tele.t_nosyncs;
    if tracing mgr then emit mgr td (Trace.Nosync { point = td.fork_point });
    mgr.exec.Exec.set td.sync_status Thread_data.nosync
  | Some _ -> ());
  Stack.iter (nosync_subtree mgr) td.children

(* Rollback without a waiting parent (NOSYNC, overflow, bad address). *)
let rollback_self mgr (td : Thread_data.t) ~reason ~kill_subtree =
  Stats.work_to_wasted td.stats;
  tele_rollback mgr reason;
  if tracing mgr then
    emit mgr td (Trace.Rollback { reason; point = td.fork_point });
  finalize_buffers mgr td;
  Stats.incr td.stats Stats.Rollbacks;
  if reason <> Trace.Abandoned then note_rollback mgr td;
  if kill_subtree then
    with_lock mgr (fun () -> Stack.iter (nosync_subtree mgr) td.children);
  (* valid_status is only ever set by the thread itself, so the
     peek-then-set below cannot race. *)
  (match mgr.exec.Exec.peek td.valid_status with
  | None -> mgr.exec.Exec.set td.valid_status Thread_data.rollback
  | Some _ -> ());
  raise Spec_finished

(* [spill_cap] is the spill-tier capacity for genuine exhaustion (the
   oracle checks that the tier really was full first) and [-1] for
   injected overflows and spill-off runs, where no such promise holds.
   At [-1] (or [0]) the Overflow record carries no arguments, so
   spill-off traces keep their seed-era bytes. *)
let rollback_overflow ?(spill_cap = -1) mgr (td : Thread_data.t) =
  Stats.incr td.stats Stats.Overflows;
  Stats.add td.stats Stats.Overflow 0.0;
  if mgr.tele.on then Telemetry.incr mgr.tele.t_overflows;
  if tracing mgr then emit mgr td (Trace.Overflow { spill_cap });
  note_overflow mgr td ~pressure:Policy.Exhaust;
  rollback_self mgr td ~reason:Trace.Buffer_overflow ~kill_subtree:false

(* --- speculative memory access --------------------------------------- *)

(* Graceful-degradation feedback for a buffered access that hit
   capacity pressure.  A spill-tier insertion pays the configured
   latency penalty (booked as overflow time, the category the paper
   charges buffer pressure to) and notifies the policy at [Spill]
   severity; a temporary-buffer park is free (it is the seed-era
   mechanism) but still notifies at [Park] severity.  Shipped policies
   ignore both, so default-config traces are unchanged.  The cost on
   the hot path is two counter loads per access. *)
let note_pressure mgr (td : Thread_data.t) ~parks0 ~spills0 =
  if Global_buffer.spills td.gbuf > spills0 then begin
    charge mgr td Stats.Overflow mgr.cfg.cost.spill;
    note_overflow mgr td ~pressure:Policy.Spill
  end;
  if Global_buffer.parks td.gbuf > parks0 then
    note_overflow mgr td ~pressure:Policy.Park

let plain_load mgr addr size =
  match size with
  | 8 -> mgr.mem.Memio.read_word addr
  | _ ->
    let x = ref 0L in
    for k = size - 1 downto 0 do
      x := Int64.logor (Int64.shift_left !x 8)
             (Int64.of_int (mgr.mem.Memio.read_byte (addr + k)))
    done;
    !x

let plain_store mgr addr size v =
  match size with
  | 8 -> mgr.mem.Memio.write_word addr v
  | _ ->
    for k = 0 to size - 1 do
      mgr.mem.Memio.write_byte (addr + k)
        (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xff)
    done

let spec_load mgr (td : Thread_data.t) ~addr ~size =
  td.pending_loads <- td.pending_loads + 1;
  if Local_buffer.in_own_stack td.lbuf addr then begin
    tick mgr td mgr.cfg.cost.mem;
    plain_load mgr addr size
  end
  else if registered mgr addr size then begin
    if td.expand then begin
      (* Level-1 Expand: the store-free analysis proved the region
         performs no shared stores during the fork window, so the read
         goes straight to memory at plain cost — no read-set tracking,
         nothing to validate, nothing to overflow *)
      tick mgr td mgr.cfg.cost.mem;
      plain_load mgr addr size
    end
    else if (not td.is_main) && inject mgr Fault.Buffer_overflow then
      rollback_overflow mgr td
    else if
      (not td.is_main)
      && Global_buffer.spill_capacity td.gbuf > 0
      && inject mgr Fault.Spill_exhaust
    then rollback_overflow mgr td
    else
      let parks0 = Global_buffer.parks td.gbuf in
      let spills0 = Global_buffer.spills td.gbuf in
      match Global_buffer.read td.gbuf mgr.mem addr size with
      | v, hit ->
        td.buffered <- td.buffered + 1;
        tick mgr td (if hit then mgr.cfg.cost.spec_hit else mgr.cfg.cost.spec_miss);
        note_pressure mgr td ~parks0 ~spills0;
        v
      | exception Global_buffer.Overflow ->
        rollback_overflow mgr td
          ~spill_cap:(Global_buffer.spill_capacity td.gbuf)
  end
  else begin
    td.bad_access <- true;
    rollback_self mgr td ~reason:Trace.Bad_access ~kill_subtree:false
  end

let spec_store mgr (td : Thread_data.t) ~addr ~size v =
  td.pending_stores <- td.pending_stores + 1;
  if Local_buffer.in_own_stack td.lbuf addr then begin
    tick mgr td mgr.cfg.cost.mem;
    plain_store mgr addr size v
  end
  else if registered mgr addr size then begin
    if td.expand then begin
      (* Dynamic backstop for the Expand judgement: the static analysis
         said this region never stores to shared memory, yet it did.
         Demote the point (it will never Expand again) and roll back —
         no buffered state exists, so nothing has escaped. *)
      Policy.on_expand_store mgr.policy ~point:td.fork_point;
      td.bad_access <- true;
      rollback_self mgr td ~reason:Trace.Bad_access ~kill_subtree:false
    end
    else if (not td.is_main) && inject mgr Fault.Buffer_overflow then
      rollback_overflow mgr td
    else if
      (not td.is_main)
      && Global_buffer.spill_capacity td.gbuf > 0
      && inject mgr Fault.Spill_exhaust
    then rollback_overflow mgr td
    else
      let parks0 = Global_buffer.parks td.gbuf in
      let spills0 = Global_buffer.spills td.gbuf in
      match Global_buffer.write td.gbuf mgr.mem addr size v with
      | hit ->
        td.buffered <- td.buffered + 1;
        tick mgr td (if hit then mgr.cfg.cost.spec_hit else mgr.cfg.cost.spec_miss);
        note_pressure mgr td ~parks0 ~spills0
      | exception Global_buffer.Overflow ->
        rollback_overflow mgr td
          ~spill_cap:(Global_buffer.spill_capacity td.gbuf)
  end
  else begin
    td.bad_access <- true;
    rollback_self mgr td ~reason:Trace.Bad_access ~kill_subtree:false
  end

(* --- synchronization points (speculative side) ------------------------ *)

(* Wait to be joined (terminate points, barriers, conflicts).  Never
   returns normally unless the verdict allows continuing. *)
let await_join mgr (td : Thread_data.t) ~counter =
  flush mgr td;
  let t0 = mgr.exec.Exec.now () in
  let v = mgr.exec.Exec.wait td.sync_status in
  charge_elapsed mgr td Stats.Idle (mgr.exec.Exec.now () -. t0);
  if v = Thread_data.sync then commit_or_rollback mgr td ~counter
  else rollback_self mgr td ~reason:Trace.Abandoned ~kill_subtree:true

(* MUTLS_check_point: true = the parent wants to join; the caller saves
   live locals and then calls MUTLS_commit.  Only check points that
   stop the thread are traced — "continue" polls are the hot path. *)
let check_point mgr (td : Thread_data.t) ~counter =
  Stats.incr td.stats Stats.Checkpoints;
  if mgr.tele.on then Telemetry.incr mgr.tele.t_checkpoints;
  tick mgr td mgr.cfg.cost.check_point;
  match mgr.exec.Exec.peek td.sync_status with
  | Some s when s = Thread_data.nosync ->
    if tracing mgr then emit mgr td (Trace.Check { counter; stop = true });
    rollback_self mgr td ~reason:Trace.Abandoned ~kill_subtree:true
  | Some _ ->
    if tracing mgr then emit mgr td (Trace.Check { counter; stop = true });
    true
  | None ->
    (* Injected spurious rollback: poison the locals so the eventual
       validation fails stale-local — the same path a genuine local
       mismatch takes, so oracle invariants are preserved. *)
    if (not td.is_main) && inject mgr Fault.Spurious_rollback then
      td.local_invalid <- true;
    if Global_buffer.conflict_pending td.gbuf then begin
      (* hash conflict spilled to the temporary buffer: wait to be
         joined here (paper §IV-G2) *)
      Stats.incr td.stats Stats.Conflict_stalls;
      if tracing mgr then emit mgr td (Trace.Check { counter; stop = true });
      await_join mgr td ~counter
    end
    else false

(* MUTLS_commit: called after the check point's commit block saved the
   live locals. *)
let commit mgr (td : Thread_data.t) ~counter = commit_or_rollback mgr td ~counter

(* MUTLS_terminate_point: speculation cannot proceed past this point. *)
let terminate_point mgr (td : Thread_data.t) ~counter = await_join mgr td ~counter

(* MUTLS_barrier_point: stop only at the speculative entry level. *)
let barrier_point mgr (td : Thread_data.t) ~counter =
  if Local_buffer.depth td.lbuf <= 1 then begin
    if tracing mgr then emit mgr td (Trace.Barrier { counter });
    (await_join mgr td ~counter : unit)
  end

(* MUTLS_ptr_int_cast: pointer/integer casts are only safe for values
   inside the registered global address space. *)
let ptr_int_cast mgr (td : Thread_data.t) ~counter value =
  if
    Address_space.contains mgr.addr_space value
    || Local_buffer.in_own_stack td.lbuf value
  then ()
  else begin
    if tracing mgr then emit mgr td (Trace.Barrier { counter });
    await_join mgr td ~counter
  end

(* MUTLS_enter_point / MUTLS_return_point: explicit stack frame
   tracking for reconstruction (§IV-H). *)
let enter_point mgr (td : Thread_data.t) ~counter =
  tick mgr td mgr.cfg.cost.call;
  (Local_buffer.top td.lbuf).counter <- counter;
  ignore (Local_buffer.push_frame td.lbuf)

let return_point mgr (td : Thread_data.t) ~counter =
  tick mgr td mgr.cfg.cost.call;
  if Local_buffer.depth td.lbuf <= 1 then (await_join mgr td ~counter : unit)
  else Local_buffer.pop_frame td.lbuf

(* --- commit-time local save (speculative side) ------------------------ *)

let save_regvar mgr (td : Thread_data.t) ~off value =
  tick mgr td mgr.cfg.cost.per_local;
  Local_buffer.set_reg (Local_buffer.top td.lbuf) td.lbuf off value

let save_stackvar mgr (td : Thread_data.t) ~off ~addr ~size =
  tick mgr td (mgr.cfg.cost.per_local +. float_of_int size *. 0.25);
  Local_buffer.save_stackvar td.lbuf (Local_buffer.top td.lbuf)
    ~read_byte:mgr.mem.Memio.read_byte ~off ~addr ~size

(* --- join (parent side, §IV-E/F) -------------------------------------- *)

(* MUTLS_validate_local: compare the parent's live value at the join
   point with the value speculated at fork time. *)
let validate_local mgr (parent : Thread_data.t) ~rank ~point ~off value =
  charge mgr parent (join_cat parent) mgr.cfg.cost.per_local;
  let found = ref None in
  Stack.iter
    (fun (c : Thread_data.t) ->
      if !found = None && c.rank = rank && c.fork_point = point then found := Some c)
    parent.children;
  match !found with
  | None -> ()
  | Some child ->
    (* Learn the stride between the original fork-time value and the
       actual value at the join, so the next speculation on this point
       predicts correctly (accumulators, induction variables). *)
    (if mgr.cfg.value_prediction then
       match (Local_buffer.get_fork_orig child.lbuf off, value) with
       | Some (Local_buffer.Vi orig), Local_buffer.Vi actual ->
         with_aux mgr (fun () ->
             Hashtbl.replace mgr.strides (child.fork_point, off)
               (Int64.sub actual orig))
       | _ -> ());
    (match Local_buffer.get_fork_reg child.lbuf off with
    | v when v = value -> ()
    | _ -> child.local_invalid <- true
    (* an unset slot is misspeculation; Invalid_argument (offset out of
       range) is genuine API misuse and propagates *)
    | exception Local_buffer.Unset _ -> child.local_invalid <- true)

(* Pop children until the expected one is found, NOSYNCing mismatches
   and their subtrees; inherit the joined child's children. *)
let synchronize mgr (parent : Thread_data.t) ~point ~rank =
  charge mgr parent (join_cat parent) mgr.cfg.cost.sync_fixed;
  let rec pop_until () =
    if Stack.is_empty parent.children then None
    else begin
      let c = Stack.pop parent.children in
      if
        c.rank = rank && c.fork_point = point
        && mgr.exec.Exec.peek c.sync_status = None
        (* injected NOSYNC: treat the matching child as a mismatch *)
        && not (inject mgr Fault.Nosync_join)
      then Some c
      else begin
        nosync_subtree mgr c;
        pop_until ()
      end
    end
  in
  (* Popping under the lock removes the child from every path an
     ancestor's NOSYNC sweep could reach it by, so the SYNC request
     below (outside the lock — it precedes a wait) cannot race a
     concurrent NOSYNC on the same flag. *)
  match with_lock mgr pop_until with
  | None -> false
  | Some child ->
    let verdict =
      match mgr.exec.Exec.peek child.valid_status with
      | Some v -> v (* unilateral rollback already decided *)
      | None ->
        mgr.exec.Exec.set child.sync_status Thread_data.sync;
        let t0 = mgr.exec.Exec.now () in
        let v = mgr.exec.Exec.wait child.valid_status in
        charge_elapsed mgr parent (join_cat parent)
          (mgr.exec.Exec.now () -. t0);
        v
    in
    (* Inherit grandchildren only now that the child has stopped: it
       may have been joining or forking until the moment it noticed the
       synchronization request.  They represent execution following the
       child's region and are joined by this thread next, whatever the
       child's verdict (local conflicts do not incur global rollbacks).
       Under the Linear_cascade ablation, a rolled-back child squashes
       its whole subtree instead — the behaviour of previous linear
       mixed-model systems the paper improves on. *)
    with_lock mgr (fun () ->
        if
          mgr.cfg.cascade = Config.Linear_cascade
          && verdict <> Thread_data.commit
        then Stack.iter (nosync_subtree mgr) child.children
        else begin
          let inherited = ref [] in
          while not (Stack.is_empty child.children) do
            inherited := Stack.pop child.children :: !inherited
          done;
          List.iter
            (fun (g : Thread_data.t) ->
              g.parent <- Some parent;
              Stack.push g parent.children)
            !inherited
        end);
    let committed = verdict = Thread_data.commit in
    if mgr.tele.on then
      Telemetry.incr
        (if committed then mgr.tele.t_joins_ok else mgr.tele.t_joins_fail);
    if tracing mgr then
      emit mgr parent (Trace.Join { child = child.id; committed });
    if committed then begin
      match Local_buffer.frames_bottom_up child.lbuf with
      | [] -> invalid_arg "Thread_manager.synchronize: no frames"
      | bottom :: rest ->
        parent.restore <-
          Some { Thread_data.r_pending = rest; r_cur = bottom; r_mappings = [] };
        parent.last_sync_counter <- bottom.Local_buffer.counter;
        parent.last_sync_rank <- child.rank;
        true
    end
    else false

(* --- restore (parent side, after a successful join) ------------------- *)

let restore_state_exn (parent : Thread_data.t) =
  match parent.restore with
  | Some r -> r
  | None -> invalid_arg "Thread_manager: restore outside of a join"

let restore_regvar mgr (parent : Thread_data.t) ~off ~is_ptr =
  charge mgr parent (join_cat parent) mgr.cfg.cost.per_local;
  let r = restore_state_exn parent in
  let v = Local_buffer.get_reg r.Thread_data.r_cur parent.lbuf off in
  if is_ptr then
    match v with
    | Local_buffer.Vi addr -> (
      match Thread_data.map_pointer r (Int64.to_int addr) with
      | Some mapped -> Local_buffer.Vi (Int64.of_int mapped)
      | None -> v)
    | Local_buffer.Vf _ -> v
  else v

(* Copy a saved nested-frame stack variable into the parent's fresh
   alloca and record the pointer mapping.  Bottom-frame variables were
   updated in place through the GlobalBuffer and need no copy. *)
let restore_stackvar mgr (parent : Thread_data.t) ~off ~addr ~size =
  charge mgr parent (join_cat parent)
    (mgr.cfg.cost.per_local +. (float_of_int size *. 0.25));
  let r = restore_state_exn parent in
  match Local_buffer.find_stackvar r.Thread_data.r_cur off with
  | None -> ()
  | Some sv -> (
    match sv.Local_buffer.sv_data with
    | None -> () (* in-place bottom-frame variable *)
    | Some data ->
      for k = 0 to sv.Local_buffer.sv_size - 1 do
        mgr.mem.Memio.write_byte (addr + k) (Char.code (Bytes.get data k))
      done;
      r.Thread_data.r_mappings <-
        (sv.Local_buffer.sv_spec_addr, addr, sv.Local_buffer.sv_size)
        :: r.Thread_data.r_mappings)

(* MUTLS_sync_entry: stack-frame reconstruction dispatch at the top of
   every non-speculative function reachable from a speculative one.
   Returns 0 for normal entry, otherwise the synchronization counter of
   the next recorded frame. *)
let sync_entry mgr (parent : Thread_data.t) =
  match parent.restore with
  | None -> 0
  | Some r -> (
    match r.Thread_data.r_pending with
    | [] -> 0
    | f :: rest ->
      charge mgr parent (join_cat parent) mgr.cfg.cost.call;
      r.Thread_data.r_cur <- f;
      r.Thread_data.r_pending <- rest;
      f.Local_buffer.counter)

(* --- end of program --------------------------------------------------- *)

(* The main thread finished: any still-live speculative thread is
   abandoned (its region was re-executed or never needed). *)
let shutdown mgr =
  flush mgr mgr.main;
  with_lock mgr (fun () ->
      Stack.iter (nosync_subtree mgr) mgr.main.children;
      Stack.clear mgr.main.children);
  if mgr.tele.on then begin
    Telemetry.set mgr.tele.t_vtime (mgr.exec.Exec.now ());
    Telemetry.set mgr.tele.t_live_spec (float_of_int mgr.live_spec);
    Telemetry.set mgr.tele.t_degraded
      (if Policy.degraded mgr.policy then 1.0 else 0.0)
  end;
  if tracing mgr then emit mgr mgr.main Trace.Run_end
