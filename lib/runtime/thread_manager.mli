(** ThreadManager (paper §IV): virtual CPU management, fork-model
    enforcement, speculation, the tree-form synchronization protocol of
    §IV-F, validation/commit/rollback, and stack-frame reconstruction
    (§IV-H).  All timing flows through the execution layer ({!Exec});
    the per-category accounting feeds Figures 8 and 9.

    This module is the pure fork-model core: it never names a concrete
    engine.  {!create_exec} accepts any {!Exec.t} — the deterministic
    simulator ({!Exec.of_sim}, the oracle) or the parallel
    domains-backed scheduler ([Mutls_par.Sched]).  When the backend
    supplies a lock ([Exec.lock]), all shared manager state is guarded
    by it; on the sim path the guards compile to direct calls and
    behaviour (including trace bytes) is unchanged.

    Every lifecycle transition and accounting charge is also reported
    to the trace sink configured in [Config.trace_sink] (see
    {!Mutls_obs.Trace}); with the default {!Mutls_obs.Trace.null} sink
    tracing is disabled and costs nothing. *)

exception Spec_finished
(** Raised inside a speculative thread's fiber once it has committed or
    rolled back; unwinds the interpreter back to the fiber body. *)

(** Record of a finished speculative thread, for the metrics. *)
type retired = {
  r_stats : Stats.t;
  r_runtime : float;
  r_committed : bool;
  r_buffered : int;
      (** GlobalBuffer-tracked accesses the thread performed; [0] for a
          Level-1 Expand thread by construction (the acceptance
          assertion for zero tracking) *)
  r_expand : bool;  (** ran as a Level-1 Expand thread *)
}

type t

val create_exec : ?policy:Policy.t -> Config.t -> Exec.t -> Memio.t -> t
(** [policy] overrides the policy engine instance ({!Policy.of_config}
    on the configuration otherwise) — tests use it to pin corner
    behaviours with {!Policy.make}.
    @raise Invalid_argument on a malformed configuration
    (see {!Config.validate}). *)

val create : ?policy:Policy.t -> Config.t -> Mutls_sim.Engine.t -> Memio.t -> t
(** [create cfg engine mem] is
    [create_exec cfg (Exec.of_sim engine) mem]. *)

(** {1 Accessors} *)

val main : t -> Thread_data.t
(** The non-speculative thread. *)

val retired : t -> retired list
(** Finished speculative threads, newest first. *)

val cfg : t -> Config.t

val now : t -> float
(** Current virtual time of the underlying engine. *)

val degraded : t -> bool
(** [true] once the policy has permanently fallen back to sequential
    execution (sustained buffer overflow under [degrade_after]): every
    later [MUTLS_get_CPU] returns 0. *)

val injector : t -> Fault.t option
(** The fault injector built from [Config.fault], for inspecting
    injected-fault counts after a run. *)

(** {1 Virtual-time accounting} *)

val flush : t -> Thread_data.t -> unit
val tick : t -> Thread_data.t -> float -> unit
(** Accumulate interpreter work cost; yields to the scheduler once per
    quantum. *)

val tick_batch : t -> Thread_data.t -> float array -> int -> bool
(** [tick_batch mgr td costs n] attempts to account the first [n]
    entries of [costs] (a straight-line segment's per-op costs) in one
    accumulator write.  Returns [true] on success — replaying the
    additions never reached the quantum, so the equivalent per-{!tick}
    sequence would not have flushed and skipping it is unobservable
    (bit-identical accumulator, no yield, no trace event).  Returns
    [false] without changing anything when a flush would occur; the
    caller must then fall back to per-op {!tick} calls interleaved with
    execution. *)

val charge : t -> Thread_data.t -> Stats.category -> float -> unit

(** {1 Address space} *)

val register_range : t -> int -> int -> unit
val unregister_range : t -> int -> int -> unit
val registered : t -> int -> int -> bool

(** {1 Fork (§IV-D)} *)

val get_cpu :
  t -> Thread_data.t -> model:Config.model -> expandable:bool -> point:int -> int
(** MUTLS_get_CPU: assign a rank to a new speculative thread, or 0 when
    speculation is not possible (no idle CPU, the forking-model rules
    forbid it, the would-be parent is already asked to stop, or the
    policy returns {!Policy.Deny}).  [expandable] is the static
    store-free judgement for the fork point (bit 2 of the front-end
    model argument); a {!Policy.Expand} decision is only honoured when
    it is set and the parent's view equals main memory (main thread or
    Expand parent) — otherwise it is downgraded to full speculation. *)

val set_fork_reg : t -> Thread_data.t -> rank:int -> off:int -> Local_buffer.v -> unit
(** Fork-time register transfer; applies stride value prediction when
    the configuration enables it. *)

val set_fork_addr : t -> Thread_data.t -> rank:int -> off:int -> int -> unit

val speculate :
  t -> Thread_data.t -> rank:int -> counter:int -> (Thread_data.t -> unit) -> unit
(** MUTLS_speculate: launch the child fiber; [body] runs the
    interpreter on the stub function.  The wrapper records the thread's
    runtime and releases its CPU however the fiber ends. *)

(** {1 Speculative entry (stub side)} *)

val get_fork_reg : t -> Thread_data.t -> off:int -> Local_buffer.v
val pick_stackaddr : t -> Thread_data.t -> counter:int -> off:int -> own_addr:int -> int
(** Bottom-frame stack variables resolve to the parent's addresses;
    nested entries use the local alloca. *)

(** {1 Speculative memory access} *)

val spec_load : t -> Thread_data.t -> addr:int -> size:int -> int64
(** Own-stack accesses go straight to memory; registered global
    addresses through the GlobalBuffer; anything else rolls the thread
    back.  Never returns on a rollback path. *)

val spec_store : t -> Thread_data.t -> addr:int -> size:int -> int64 -> unit

(** {1 Synchronization points (speculative side)} *)

val check_point : t -> Thread_data.t -> counter:int -> bool
(** Poll the sync flag; [true] means the parent wants to join — the
    caller saves its live locals and calls {!commit}. *)

val commit : t -> Thread_data.t -> counter:int -> 'a
(** Validate against the parent's view, then commit into the parent's
    world (main memory, or the parent's buffers when the parent is
    itself speculative) or roll back.  @raise Spec_finished always. *)

val terminate_point : t -> Thread_data.t -> counter:int -> 'a
(** Speculation cannot proceed: wait to be joined, then commit or roll
    back.  @raise Spec_finished always. *)

val barrier_point : t -> Thread_data.t -> counter:int -> unit
(** Stop only at the speculative entry level (paper Fig. 1 barriers). *)

val ptr_int_cast : t -> Thread_data.t -> counter:int -> int -> unit
(** Barrier unless the value lies in the registered global space or the
    thread's own stack (§IV-G3 pointer/integer casts). *)

val enter_point : t -> Thread_data.t -> counter:int -> unit
val return_point : t -> Thread_data.t -> counter:int -> unit
(** Frame tracking for reconstruction; a return at entry depth behaves
    like {!terminate_point}. *)

val save_regvar : t -> Thread_data.t -> off:int -> Local_buffer.v -> unit
val save_stackvar : t -> Thread_data.t -> off:int -> addr:int -> size:int -> unit

(** {1 Join (parent side, §IV-E/F)} *)

val validate_local :
  t -> Thread_data.t -> rank:int -> point:int -> off:int -> Local_buffer.v -> unit
(** Compare the parent's live value at the join point with the value
    speculated at fork time; a mismatch marks the child invalid.  Also
    the stride-learning hook of the value-prediction extension. *)

val synchronize : t -> Thread_data.t -> point:int -> rank:int -> bool
(** The §IV-F protocol: pop mismatched children (NOSYNC their
    subtrees), stop and await the matching child, inherit its children
    once it stopped, and report commit/rollback.  On commit the
    parent's restore state and [last_sync_counter]/[last_sync_rank] are
    set. *)

val restore_regvar : t -> Thread_data.t -> off:int -> is_ptr:bool -> Local_buffer.v
(** Read a committed local from the current restore frame, applying the
    pointer mapping for pointer-typed values. *)

val restore_stackvar : t -> Thread_data.t -> off:int -> addr:int -> size:int -> unit

val sync_entry : t -> Thread_data.t -> int
(** Stack-frame reconstruction dispatch at the top of every
    non-speculative function reachable from a speculative one: 0 for a
    normal entry, otherwise the synchronization counter of the next
    recorded frame. *)

(** {1 End of program} *)

val shutdown : t -> unit
(** NOSYNC any still-live speculative threads (their regions were
    re-executed or never needed), then emit the final [Run_end] trace
    record. *)
